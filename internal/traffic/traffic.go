// Package traffic generates the workloads of the paper's evaluation:
// uniform random traffic (the §6 default), ToR-skewed traffic (80% of flows
// to 25% of ToRs, Fig. 8), hot-ToR sink traffic (Fig. 9) and a replay-style
// heavy-tailed workload standing in for the production traces of §7.
package traffic

import (
	"fmt"

	"vigil/internal/ecmp"
	"vigil/internal/par"
	"vigil/internal/stats"
	"vigil/internal/topology"
)

// Flow is one TCP connection for an epoch: endpoints, the five-tuple that
// determines its ECMP path, and how many packets it sends.
type Flow struct {
	Src, Dst topology.HostID
	Tuple    ecmp.FiveTuple
	Packets  int
}

// IntRange is an inclusive integer range; Lo == Hi makes it a constant.
type IntRange struct{ Lo, Hi int }

// Sample draws from the range.
func (r IntRange) Sample(rng *stats.RNG) int {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return rng.IntRange(r.Lo, r.Hi)
}

// Pattern chooses a destination host for a given source. Implementations
// must never return a host under the source's own ToR (the paper's traffic
// model: hosts talk to hosts "under a different ToR").
type Pattern interface {
	Pick(rng *stats.RNG, topo *topology.Topology, src topology.HostID) topology.HostID
	Name() string
}

// Uniform is the paper's default model: destination ToR uniform among all
// other ToRs, destination host uniform under it.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Pick implements Pattern.
func (Uniform) Pick(rng *stats.RNG, topo *topology.Topology, src topology.HostID) topology.HostID {
	return pickUnderOtherToR(rng, topo, src, nil)
}

func pickUnderOtherToR(rng *stats.RNG, topo *topology.Topology, src topology.HostID, tors []topology.SwitchID) topology.HostID {
	srcToR := topo.Hosts[src].ToR
	for {
		var tor topology.SwitchID
		if tors == nil {
			p := rng.Intn(topo.Cfg.Pods)
			tor = topo.ToR(p, rng.Intn(topo.Cfg.ToRsPerPod))
		} else {
			tor = tors[rng.Intn(len(tors))]
		}
		if tor == srcToR {
			continue
		}
		return hostUnderToR(rng, topo, tor)
	}
}

// hostUnderToR picks a uniform host below ToR tor without materializing the
// host list: hosts under a ToR are a contiguous ID range, so the draw —
// identical to indexing topo.HostsUnderToR(tor) — reduces to arithmetic.
// This keeps the per-flow generation path allocation-free.
func hostUnderToR(rng *stats.RNG, topo *topology.Topology, tor topology.SwitchID) topology.HostID {
	sw := &topo.Switches[tor]
	if sw.Tier != topology.TierToR {
		panic("traffic: destination switch is not a ToR")
	}
	return topo.HostAt(sw.Pod, sw.Index, rng.Intn(topo.Cfg.HostsPerToR))
}

// SkewedToRs sends Frac of the flows to hosts under the Hot ToR set and the
// rest uniformly (Fig. 8: Frac=0.8 to 25% of the ToRs).
type SkewedToRs struct {
	Hot  []topology.SwitchID
	Frac float64
}

// Name implements Pattern.
func (s SkewedToRs) Name() string { return fmt.Sprintf("skewed-%d-tors", len(s.Hot)) }

// Pick implements Pattern.
func (s SkewedToRs) Pick(rng *stats.RNG, topo *topology.Topology, src topology.HostID) topology.HostID {
	if len(s.Hot) > 0 && rng.Bool(s.Frac) {
		// Retry elsewhere when the source sits in the hot set's only rack.
		if len(s.Hot) > 1 || s.Hot[0] != topo.Hosts[src].ToR {
			return pickUnderOtherToR(rng, topo, src, s.Hot)
		}
	}
	return pickUnderOtherToR(rng, topo, src, nil)
}

// RandomToRs picks n distinct ToRs for use as a hot set.
func RandomToRs(rng *stats.RNG, topo *topology.Topology, n int) []topology.SwitchID {
	total := topo.Cfg.Pods * topo.Cfg.ToRsPerPod
	if n > total {
		n = total
	}
	perm := rng.Perm(total)
	out := make([]topology.SwitchID, n)
	for i := 0; i < n; i++ {
		p := perm[i] / topo.Cfg.ToRsPerPod
		out[i] = topo.ToR(p, perm[i]%topo.Cfg.ToRsPerPod)
	}
	return out
}

// HotToR sends Frac of all flows into a single sink ToR (Fig. 9).
type HotToR struct {
	Sink topology.SwitchID
	Frac float64
}

// Name implements Pattern.
func (h HotToR) Name() string { return fmt.Sprintf("hot-tor-%.0f%%", h.Frac*100) }

// Pick implements Pattern.
func (h HotToR) Pick(rng *stats.RNG, topo *topology.Topology, src topology.HostID) topology.HostID {
	if rng.Bool(h.Frac) && topo.Hosts[src].ToR != h.Sink {
		return hostUnderToR(rng, topo, h.Sink)
	}
	return pickUnderOtherToR(rng, topo, src, nil)
}

// Workload describes one epoch of traffic.
type Workload struct {
	Pattern        Pattern
	ConnsPerHost   IntRange // paper default: 60 per 30 s epoch (2/s)
	PacketsPerFlow IntRange // paper default: "up to 100 packets per flow"
	// Hosts restricts sources to a subset (the §7 cluster controls 40 of
	// the hosts); nil means every host originates traffic.
	Hosts []topology.HostID
}

// DefaultWorkload is the §6 simulation default.
func DefaultWorkload() Workload {
	return Workload{
		Pattern:        Uniform{},
		ConnsPerHost:   IntRange{60, 60},
		PacketsPerFlow: IntRange{100, 100},
	}
}

// Generate produces the epoch's flows. Five-tuples use ephemeral source
// ports and port 443, mirroring the storage-service traffic the paper
// monitors.
func (w Workload) Generate(rng *stats.RNG, topo *topology.Topology) []Flow {
	return w.GenerateInto(nil, rng, topo)
}

// GenerateInto appends the epoch's flows to buf — the draw order, and so
// the produced flow list, is exactly Generate's — reusing buf's capacity.
// Callers that hand back the same buffer every epoch (the packet-plane
// cluster) generate steady-state epochs without allocating.
func (w Workload) GenerateInto(buf []Flow, rng *stats.RNG, topo *topology.Topology) []Flow {
	if w.Hosts != nil {
		for _, src := range w.Hosts {
			buf = w.appendSourceFlows(buf, rng, topo, src)
		}
		return buf
	}
	for i := range topo.Hosts {
		buf = w.appendSourceFlows(buf, rng, topo, topology.HostID(i))
	}
	return buf
}

// appendSourceFlows draws one source's epoch flows from rng. It allocates
// only when flows runs out of capacity, so callers that recycle buffers
// (GenerateParallelInto) generate steady-state epochs allocation-free.
func (w Workload) appendSourceFlows(flows []Flow, rng *stats.RNG, topo *topology.Topology, src topology.HostID) []Flow {
	n := w.ConnsPerHost.Sample(rng)
	for c := 0; c < n; c++ {
		dst := w.Pattern.Pick(rng, topo, src)
		flows = append(flows, Flow{
			Src: src,
			Dst: dst,
			Tuple: ecmp.FiveTuple{
				SrcIP:   topo.Hosts[src].IP,
				DstIP:   topo.Hosts[dst].IP,
				SrcPort: uint16(rng.IntRange(32768, 65535)),
				DstPort: 443,
				Proto:   ecmp.ProtoTCP,
			},
			Packets: w.PacketsPerFlow.Sample(rng),
		})
	}
	return flows
}

// ConstantConns reports whether every source draws the same flow count, in
// which case per-source flow counts — and so the global flow-index bases of
// a fused generate-and-simulate pipeline — are pure arithmetic, no RNG
// derivation needed.
func (w Workload) ConstantConns() bool { return w.ConnsPerHost.Hi <= w.ConnsPerHost.Lo }

// FlowsOf returns how many flows source index si contributes to the epoch
// seeded by seed: the connection-count draw at the head of the source's
// generation stream. It consumes nothing from any other stream, so callers
// can prefix-sum per-source counts into global flow-index bases before a
// single flow is generated — the counting pass of netem's fused epoch
// pipeline.
func (w Workload) FlowsOf(seed uint64, si int) int {
	if w.ConstantConns() {
		return w.ConnsPerHost.Lo
	}
	var rng stats.RNG
	rng.Derive(seed, uint64(si))
	return w.ConnsPerHost.Sample(&rng)
}

// AppendFlowsOf appends source index si's epoch flows to buf, drawing from
// the same (seed, si) stream GenerateParallelInto derives, so a consumer
// that generates source by source produces exactly the flow list the
// materializing path would — grouped by source, in source order. rng is
// caller-owned scratch, reseeded here; src is the originating host that
// source index si resolves to. len(result)-len(buf) always equals
// FlowsOf(seed, si).
func (w Workload) AppendFlowsOf(buf []Flow, rng *stats.RNG, seed uint64, si int, topo *topology.Topology, src topology.HostID) []Flow {
	rng.Derive(seed, uint64(si))
	return w.appendSourceFlows(buf, rng, topo, src)
}

// srcChunk is the fan-out granularity of parallel generation: boundaries
// depend only on the source count, so chunk-ordered concatenation yields
// the same flow list at any worker count.
const srcChunk = 64

// GenScratch holds the reusable buffers of GenerateParallelInto: the
// per-chunk generation buffers, the source list and the concatenated flow
// slice. A simulator owns one GenScratch and hands it back every epoch, so
// steady-state generation reuses capacity instead of reallocating ~100k
// Flow structs per epoch. The zero value is ready to use.
type GenScratch struct {
	chunks [][]Flow
	srcs   []topology.HostID
	flows  []Flow
}

// sourcesInto resolves the originating host set like sources, reusing sc's
// buffer when the workload does not restrict hosts.
func (w Workload) sourcesInto(sc *GenScratch, topo *topology.Topology) []topology.HostID {
	if w.Hosts != nil {
		return w.Hosts
	}
	if cap(sc.srcs) < len(topo.Hosts) {
		sc.srcs = make([]topology.HostID, len(topo.Hosts))
		for i := range sc.srcs {
			sc.srcs[i] = topology.HostID(i)
		}
	}
	return sc.srcs[:len(topo.Hosts)]
}

// GenerateParallel produces an epoch like Generate, but fans sources out
// over workers, each source drawing from its own RNG stream derived from
// (seed, source index). The flow list — grouped by source in source order,
// like Generate's — is bit-identical at every worker count, though it is a
// different (equally distributed) draw than Generate's single-stream walk.
func (w Workload) GenerateParallel(seed uint64, topo *topology.Topology, workers int) []Flow {
	return w.GenerateParallelInto(new(GenScratch), seed, topo, workers)
}

// GenerateParallelInto is GenerateParallel resolving into sc's reusable
// buffers: the draw discipline — and therefore the produced flow list — is
// identical, but a scratch that has seen an epoch of similar size serves the
// next one without allocating. The returned slice aliases sc and is valid
// until the next call with the same scratch.
func (w Workload) GenerateParallelInto(sc *GenScratch, seed uint64, topo *topology.Topology, workers int) []Flow {
	srcs := w.sourcesInto(sc, topo)
	nchunks := par.Chunks(len(srcs), srcChunk)
	if cap(sc.chunks) < nchunks {
		sc.chunks = append(sc.chunks[:cap(sc.chunks)], make([][]Flow, nchunks-cap(sc.chunks))...)
	}
	sc.chunks = sc.chunks[:nchunks]
	par.ForEachChunk(len(srcs), srcChunk, workers, func(c, lo, hi int) {
		buf := sc.chunks[c][:0]
		var rng stats.RNG
		for si := lo; si < hi; si++ {
			rng.Derive(seed, uint64(si))
			buf = w.appendSourceFlows(buf, &rng, topo, srcs[si])
		}
		sc.chunks[c] = buf
	})
	total := 0
	for _, ch := range sc.chunks {
		total += len(ch)
	}
	flows := sc.flows[:0]
	if cap(flows) < total {
		flows = make([]Flow, 0, total)
	}
	for _, ch := range sc.chunks {
		flows = append(flows, ch...)
	}
	sc.flows = flows
	return flows
}

// Replay approximates the 6-hour production replay of §7: heavy-tailed flow
// sizes (bounded Pareto) and bursty per-host connection counts.
type Replay struct {
	MeanConns int // mean connections per host per epoch
}

// GenerateReplay produces a replay-style epoch.
func (r Replay) GenerateReplay(rng *stats.RNG, topo *topology.Topology, hosts []topology.HostID) []Flow {
	w := Workload{
		Pattern:        Uniform{},
		ConnsPerHost:   IntRange{1, 2*r.MeanConns - 1},
		PacketsPerFlow: IntRange{1, 1}, // replaced below
		Hosts:          hosts,
	}
	flows := w.Generate(rng, topo)
	for i := range flows {
		flows[i].Packets = int(rng.Pareto(1.2, 4, 2000))
	}
	return flows
}
