package traffic

import (
	"reflect"
	"testing"
)

// GenerateParallelInto must produce exactly the flow list GenerateParallel
// does — same seed, same draws, any worker count — while reusing the
// scratch's buffers across epochs.
func TestGenerateParallelIntoMatchesGenerateParallel(t *testing.T) {
	tp := topo(t)
	w := Workload{
		Pattern:        Uniform{},
		ConnsPerHost:   IntRange{Lo: 5, Hi: 9},
		PacketsPerFlow: IntRange{Lo: 10, Hi: 100},
	}
	var sc GenScratch
	for seed := uint64(1); seed <= 4; seed++ {
		want := w.GenerateParallel(seed, tp, 1)
		got := w.GenerateParallelInto(&sc, seed, tp, 4)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: scratch generation diverged (%d vs %d flows)", seed, len(got), len(want))
		}
	}
}

// A warmed scratch must serve steady-state epochs without allocating: the
// buffers are the Sim-owned reusable flow storage of the epoch hot path.
func TestGenerateParallelIntoReusesScratch(t *testing.T) {
	tp := topo(t)
	w := Workload{
		Pattern:        Uniform{},
		ConnsPerHost:   IntRange{Lo: 8, Hi: 8},
		PacketsPerFlow: IntRange{Lo: 100, Hi: 100},
	}
	var sc GenScratch
	w.GenerateParallelInto(&sc, 1, tp, 1) // warm the buffers
	avg := testing.AllocsPerRun(10, func() {
		w.GenerateParallelInto(&sc, 2, tp, 1)
	})
	// The fan-out closures cost a few fixed allocations per epoch; what
	// must not appear is anything proportional to the flow count (~1000
	// flows here).
	if avg > 6 {
		t.Fatalf("warmed scratch generation allocates %.1f times per epoch, want O(1)", avg)
	}
}
