package traffic

import (
	"math"
	"reflect"
	"testing"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

func topo(t testing.TB) *topology.Topology {
	t.Helper()
	tp, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 2, T2: 2, HostsPerToR: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestUniformNeverSameToR(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(1)
	for i := 0; i < 2000; i++ {
		src := topology.HostID(rng.Intn(len(tp.Hosts)))
		dst := Uniform{}.Pick(rng, tp, src)
		if tp.SameToR(src, dst) {
			t.Fatal("uniform pattern picked a destination in the source rack")
		}
	}
}

func TestUniformToRDistribution(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(2)
	src := tp.HostAt(0, 0, 0)
	counts := map[topology.SwitchID]int{}
	const n = 35000
	for i := 0; i < n; i++ {
		dst := Uniform{}.Pick(rng, tp, src)
		counts[tp.Hosts[dst].ToR]++
	}
	nToRs := tp.Cfg.Pods*tp.Cfg.ToRsPerPod - 1 // all but the source rack
	if len(counts) != nToRs {
		t.Fatalf("covered %d ToRs, want %d", len(counts), nToRs)
	}
	want := float64(n) / float64(nToRs)
	for tor, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("ToR %d got %d flows, want ~%v", tor, c, want)
		}
	}
}

func TestSkewedToRs(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(3)
	hot := []topology.SwitchID{tp.ToR(0, 1), tp.ToR(1, 2)}
	p := SkewedToRs{Hot: hot, Frac: 0.8}
	src := tp.HostAt(0, 0, 0)
	inHot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		dst := p.Pick(rng, tp, src)
		if tp.SameToR(src, dst) {
			t.Fatal("skewed pattern picked the source rack")
		}
		for _, h := range hot {
			if tp.Hosts[dst].ToR == h {
				inHot++
				break
			}
		}
	}
	frac := float64(inHot) / n
	// 80% targeted plus the uniform remainder's occasional hot picks.
	if frac < 0.78 || frac > 0.90 {
		t.Fatalf("hot fraction = %v, want ~0.8-0.85", frac)
	}
}

func TestHotToR(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(4)
	sink := tp.ToR(1, 3)
	p := HotToR{Sink: sink, Frac: 0.5}
	inSink := 0
	const n = 20000
	for i := 0; i < n; i++ {
		src := topology.HostID(rng.Intn(len(tp.Hosts)))
		dst := p.Pick(rng, tp, src)
		if tp.SameToR(src, dst) {
			t.Fatal("hot-tor pattern picked the source rack")
		}
		if tp.Hosts[dst].ToR == sink {
			inSink++
		}
	}
	frac := float64(inSink) / n
	if frac < 0.48 || frac > 0.60 {
		t.Fatalf("sink fraction = %v, want ~0.5-0.56", frac)
	}
}

func TestRandomToRsDistinct(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(5)
	tors := RandomToRs(rng, tp, 5)
	if len(tors) != 5 {
		t.Fatalf("%d ToRs", len(tors))
	}
	seen := map[topology.SwitchID]bool{}
	for _, tor := range tors {
		if seen[tor] {
			t.Fatal("duplicate ToR")
		}
		seen[tor] = true
		if tp.Switches[tor].Tier != topology.TierToR {
			t.Fatal("non-ToR switch in hot set")
		}
	}
	// Request more than exist: clamps.
	all := RandomToRs(rng, tp, 100)
	if len(all) != tp.Cfg.Pods*tp.Cfg.ToRsPerPod {
		t.Fatalf("clamp failed: %d", len(all))
	}
}

func TestWorkloadGenerate(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(6)
	w := Workload{
		Pattern:        Uniform{},
		ConnsPerHost:   IntRange{10, 60},
		PacketsPerFlow: IntRange{100, 100},
	}
	flows := w.Generate(rng, tp)
	perHost := map[topology.HostID]int{}
	for _, f := range flows {
		if f.Packets != 100 {
			t.Fatalf("packets = %d", f.Packets)
		}
		if f.Tuple.SrcIP != tp.Hosts[f.Src].IP || f.Tuple.DstIP != tp.Hosts[f.Dst].IP {
			t.Fatal("tuple addresses mismatch endpoints")
		}
		if f.Tuple.SrcPort < 32768 {
			t.Fatalf("non-ephemeral source port %d", f.Tuple.SrcPort)
		}
		perHost[f.Src]++
	}
	if len(perHost) != len(tp.Hosts) {
		t.Fatalf("only %d/%d hosts generated traffic", len(perHost), len(tp.Hosts))
	}
	for h, n := range perHost {
		if n < 10 || n > 60 {
			t.Fatalf("host %d generated %d conns, want [10,60]", h, n)
		}
	}
}

func TestWorkloadRestrictedHosts(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(7)
	only := []topology.HostID{0, 5}
	w := Workload{Pattern: Uniform{}, ConnsPerHost: IntRange{3, 3}, PacketsPerFlow: IntRange{1, 1}, Hosts: only}
	flows := w.Generate(rng, tp)
	if len(flows) != 6 {
		t.Fatalf("%d flows, want 6", len(flows))
	}
	for _, f := range flows {
		if f.Src != 0 && f.Src != 5 {
			t.Fatalf("unexpected source %d", f.Src)
		}
	}
}

func TestIntRange(t *testing.T) {
	rng := stats.NewRNG(8)
	if (IntRange{7, 7}).Sample(rng) != 7 {
		t.Fatal("constant range broken")
	}
	for i := 0; i < 100; i++ {
		v := (IntRange{3, 9}).Sample(rng)
		if v < 3 || v > 9 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestReplayHeavyTail(t *testing.T) {
	tp := topo(t)
	rng := stats.NewRNG(9)
	flows := Replay{MeanConns: 10}.GenerateReplay(rng, tp, nil)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	small, large := 0, 0
	for _, f := range flows {
		if f.Packets < 4 || f.Packets > 2000 {
			t.Fatalf("replay packets %d out of Pareto bounds", f.Packets)
		}
		if f.Packets < 20 {
			small++
		}
		if f.Packets > 400 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("replay tail not heavy: small=%d large=%d of %d", small, large, len(flows))
	}
}

func TestPatternNames(t *testing.T) {
	if (Uniform{}).Name() != "uniform" {
		t.Fatal("uniform name")
	}
	if (HotToR{Frac: 0.5}).Name() != "hot-tor-50%" {
		t.Fatalf("hot name = %q", HotToR{Frac: 0.5}.Name())
	}
	if (SkewedToRs{Hot: make([]topology.SwitchID, 10)}).Name() != "skewed-10-tors" {
		t.Fatal("skewed name")
	}
}

// GenerateParallel must emit a bit-identical flow list at every worker
// count: each source draws from its own (seed, source index) stream and
// chunks concatenate in source order.
func TestGenerateParallelWorkerCountIndependent(t *testing.T) {
	tp := topo(t)
	w := Workload{
		Pattern:        Uniform{},
		ConnsPerHost:   IntRange{Lo: 10, Hi: 30},
		PacketsPerFlow: IntRange{Lo: 50, Hi: 100},
	}
	want := w.GenerateParallel(123, tp, 1)
	if len(want) == 0 {
		t.Fatal("no flows generated")
	}
	for _, workers := range []int{2, 3, 8} {
		got := w.GenerateParallel(123, tp, workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("flow list diverged at %d workers (%d vs %d flows)", workers, len(want), len(got))
		}
	}
	// Flows stay grouped by source in source order, like Generate's output.
	last := topology.HostID(-1)
	seen := map[topology.HostID]bool{}
	for _, f := range want {
		if f.Src != last {
			if seen[f.Src] {
				t.Fatalf("source %d appears in two separate runs", f.Src)
			}
			seen[f.Src] = true
			last = f.Src
		}
	}
}

// The per-source streams must respect the workload knobs exactly as the
// sequential generator does.
func TestGenerateParallelRespectsKnobs(t *testing.T) {
	tp := topo(t)
	w := Workload{
		Pattern:        Uniform{},
		ConnsPerHost:   IntRange{Lo: 5, Hi: 15},
		PacketsPerFlow: IntRange{Lo: 10, Hi: 20},
		Hosts:          []topology.HostID{0, 3, 9},
	}
	flows := w.GenerateParallel(9, tp, 4)
	perSrc := map[topology.HostID]int{}
	for _, f := range flows {
		perSrc[f.Src]++
		if f.Packets < 10 || f.Packets > 20 {
			t.Fatalf("flow packets %d out of range", f.Packets)
		}
		if tp.SameToR(f.Src, f.Dst) {
			t.Fatal("destination under the source rack")
		}
	}
	if len(perSrc) != 3 {
		t.Fatalf("flows from %d sources, want the 3 restricted hosts", len(perSrc))
	}
	for src, n := range perSrc {
		if n < 5 || n > 15 {
			t.Fatalf("source %d generated %d conns, want 5..15", src, n)
		}
	}
}

// FlowsOf and AppendFlowsOf are the counting and generating halves of the
// fused epoch pipeline: source by source they must reproduce exactly the
// flow list GenerateParallel materializes, and FlowsOf must predict each
// source's contribution without consuming any generation draw.
func TestFlowsOfAppendFlowsOfMatchGenerateParallel(t *testing.T) {
	tp := topo(t)
	for _, w := range []Workload{
		{Pattern: Uniform{}, ConnsPerHost: IntRange{Lo: 10, Hi: 30}, PacketsPerFlow: IntRange{Lo: 50, Hi: 100}},
		{Pattern: Uniform{}, ConnsPerHost: IntRange{Lo: 20, Hi: 20}, PacketsPerFlow: IntRange{Lo: 100, Hi: 100}},
	} {
		const seed = 321
		want := w.GenerateParallel(seed, tp, 3)
		var got []Flow
		var rng stats.RNG
		for si := 0; si < len(tp.Hosts); si++ {
			n := w.FlowsOf(seed, si)
			before := len(got)
			got = w.AppendFlowsOf(got, &rng, seed, si, tp, topology.HostID(si))
			if len(got)-before != n {
				t.Fatalf("source %d: FlowsOf predicted %d flows, AppendFlowsOf produced %d", si, n, len(got)-before)
			}
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("source-by-source generation diverged from GenerateParallel (%d vs %d flows)", len(want), len(got))
		}
		if w.ConstantConns() != (w.ConnsPerHost.Lo == w.ConnsPerHost.Hi) {
			t.Fatalf("ConstantConns misreports %+v", w.ConnsPerHost)
		}
	}
}
