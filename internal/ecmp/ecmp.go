// Package ecmp implements equal-cost multi-path routing over the Clos
// topology: per-switch seeded five-tuple hashing, next-hop selection and
// full path resolution.
//
// Two properties matter to 007 and are preserved here exactly as the paper
// describes (§4.2, §9.1): all packets of a five-tuple follow one path, so a
// traceroute probe carrying the flow's five-tuple traces the data path; and
// the hash functions are per-switch and seeded, with seeds that change when
// a switch reboots, so paths are not predictable from the topology alone.
package ecmp

import (
	"fmt"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

// FiveTuple identifies a flow. ECMP hashing is directional: the forward and
// reverse directions of a connection may take different physical paths.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Protocol numbers used by the emulation.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
)

// String renders the tuple in "ip:port>ip:port/proto" form.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%d",
		topology.FormatIP(t.SrcIP), t.SrcPort,
		topology.FormatIP(t.DstIP), t.DstPort, t.Proto)
}

// Reverse returns the tuple of the opposite direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: t.DstIP, DstIP: t.SrcIP,
		SrcPort: t.DstPort, DstPort: t.SrcPort,
		Proto: t.Proto,
	}
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash maps a five-tuple to a 64-bit value under a switch seed. Switch
// vendors keep these functions proprietary (§9.1); any hash with good
// avalanche reproduces the behaviour 007 depends on, which is only that the
// map is deterministic per switch and uniform across flows.
func Hash(t FiveTuple, seed uint64) uint64 {
	a := uint64(t.SrcIP)<<32 | uint64(t.DstIP)
	b := uint64(t.SrcPort)<<32 | uint64(t.DstPort)<<16 | uint64(t.Proto)
	h := mix64(seed ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ a)
	h = mix64(h ^ b)
	return h
}

// Seeds holds the per-switch ECMP hash seeds.
type Seeds struct {
	bySwitch []uint64
}

// NewSeeds draws an independent seed for every switch.
func NewSeeds(topo *topology.Topology, rng *stats.RNG) *Seeds {
	s := &Seeds{bySwitch: make([]uint64, len(topo.Switches))}
	for i := range s.bySwitch {
		s.bySwitch[i] = rng.Uint64()
	}
	return s
}

// Seed returns the seed of switch sw.
func (s *Seeds) Seed(sw topology.SwitchID) uint64 { return s.bySwitch[sw] }

// Reboot re-seeds switch sw, modelling the ECMP function change the paper
// notes happens "with every reboot of the switch" (§9.1).
func (s *Seeds) Reboot(sw topology.SwitchID, rng *stats.RNG) {
	s.bySwitch[sw] = rng.Uint64()
}
