package ecmp

import (
	"errors"
	"fmt"

	"vigil/internal/topology"
)

// Path is a resolved route between two hosts.
type Path struct {
	Links    []topology.LinkID   // in traversal order, host uplink first
	Switches []topology.SwitchID // switches visited, in order
}

// Len returns the number of links, the h of the paper's 1/h vote value.
func (p Path) Len() int { return len(p.Links) }

// Router resolves paths over a topology using per-switch ECMP hashing.
type Router struct {
	Topo  *topology.Topology
	Seeds *Seeds
}

// NewRouter builds a Router.
func NewRouter(topo *topology.Topology, seeds *Seeds) *Router {
	return &Router{Topo: topo, Seeds: seeds}
}

// ErrNoRoute is returned when forwarding cannot reach the destination.
var ErrNoRoute = errors.New("ecmp: no route to destination")

// NextHopLink picks the egress link at switch sw for a packet with tuple t
// destined to host dst, using the switch's seeded hash for upward choices.
// Downward forwarding is deterministic (a Clos has exactly one down path
// from any switch to a host in its subtree).
func (r *Router) NextHopLink(sw topology.SwitchID, t FiveTuple, dst topology.HostID) (topology.LinkID, error) {
	topo := r.Topo
	s := &topo.Switches[sw]
	d := &topo.Hosts[dst]
	h := Hash(t, r.Seeds.Seed(sw))
	switch s.Tier {
	case topology.TierToR:
		if d.ToR == sw {
			return s.Downlinks[d.Index], nil
		}
		if len(s.Uplinks) == 0 {
			return topology.NoLink, ErrNoRoute
		}
		return s.Uplinks[int(h%uint64(len(s.Uplinks)))], nil
	case topology.TierT1:
		if d.Pod == s.Pod {
			dstToR := topo.Switches[d.ToR]
			return s.Downlinks[dstToR.Index], nil
		}
		if len(s.Uplinks) == 0 {
			return topology.NoLink, ErrNoRoute
		}
		return s.Uplinks[int(h%uint64(len(s.Uplinks)))], nil
	case topology.TierT2:
		n1 := topo.Cfg.T1PerPod
		j := int(h % uint64(n1))
		return s.Downlinks[d.Pod*n1+j], nil
	}
	return topology.NoLink, fmt.Errorf("ecmp: unknown tier %v", s.Tier)
}

// maxHops bounds path resolution; a Clos host-to-host path has at most 6
// links, so hitting the bound means the forwarding state is inconsistent.
const maxHops = 8

// MaxPathLinks bounds the link count of any resolved path: a Clos
// host-to-host route has at most 6 links (host→ToR→T1→T2→T1→ToR→host), and
// resolution aborts past maxHops switch hops regardless. Fixed-size per-flow
// scratch (PathBuf, per-link drop vectors) is sized by this constant.
const MaxPathLinks = maxHops + 1

// PathBuf is a caller-owned, reusable buffer that PathInto resolves into.
// It exists so the epoch hot path can route millions of flows without a
// single heap allocation: each simulator worker keeps one PathBuf and
// overwrites it per flow. The Links/Switches accessors return views into the
// buffer — valid only until the next PathInto call on the same buffer;
// callers that keep a path must copy it out (see netem's outcome arenas).
type PathBuf struct {
	links    [MaxPathLinks]topology.LinkID
	switches [MaxPathLinks]topology.SwitchID
	nl, ns   int
}

// Links returns the resolved links in traversal order, host uplink first.
// The slice aliases the buffer.
func (b *PathBuf) Links() []topology.LinkID { return b.links[:b.nl] }

// Switches returns the switches visited in order. The slice aliases the
// buffer.
func (b *PathBuf) Switches() []topology.SwitchID { return b.switches[:b.ns] }

// Len returns the number of links, the h of the paper's 1/h vote value.
func (b *PathBuf) Len() int { return b.nl }

// PathInto resolves the full route from src to dst for tuple t into buf,
// overwriting its previous contents. It performs no heap allocation on the
// success path and resolves the exact same route as Path.
// Same-host src/dst is an error; the paper's traffic model never produces it.
func (r *Router) PathInto(src, dst topology.HostID, t FiveTuple, buf *PathBuf) error {
	if src == dst {
		buf.nl, buf.ns = 0, 0
		return fmt.Errorf("ecmp: src and dst are both host %d", src)
	}
	topo := r.Topo
	buf.links[0] = topo.Hosts[src].Uplink
	buf.nl, buf.ns = 1, 0
	cur := topo.Hosts[src].ToR
	for hop := 0; hop < maxHops; hop++ {
		buf.switches[buf.ns] = cur
		buf.ns++
		link, err := r.NextHopLink(cur, t, dst)
		if err != nil {
			buf.nl, buf.ns = 0, 0
			return err
		}
		buf.links[buf.nl] = link
		buf.nl++
		to := topo.Links[link].To
		if to.Kind == topology.NodeHost {
			if topology.HostID(to.ID) != dst {
				buf.nl, buf.ns = 0, 0
				return fmt.Errorf("ecmp: delivered to host %d, want %d", to.ID, dst)
			}
			return nil
		}
		cur = topology.SwitchID(to.ID)
	}
	buf.nl, buf.ns = 0, 0
	return fmt.Errorf("ecmp: path from %d to %d exceeded %d hops", src, dst, maxHops)
}

// Path resolves the full route from src to dst for tuple t. It is the
// allocating convenience form of PathInto — cold paths (traceroute CLIs, the
// packet plane) keep using it; the simulator hot path uses PathInto.
func (r *Router) Path(src, dst topology.HostID, t FiveTuple) (Path, error) {
	var buf PathBuf
	if err := r.PathInto(src, dst, t, &buf); err != nil {
		return Path{}, err
	}
	p := Path{
		Links:    make([]topology.LinkID, buf.nl),
		Switches: make([]topology.SwitchID, buf.ns),
	}
	copy(p.Links, buf.links[:buf.nl])
	copy(p.Switches, buf.switches[:buf.ns])
	return p, nil
}
