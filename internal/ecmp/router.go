package ecmp

import (
	"errors"
	"fmt"

	"vigil/internal/topology"
)

// Path is a resolved route between two hosts.
type Path struct {
	Links    []topology.LinkID   // in traversal order, host uplink first
	Switches []topology.SwitchID // switches visited, in order
}

// Len returns the number of links, the h of the paper's 1/h vote value.
func (p Path) Len() int { return len(p.Links) }

// Router resolves paths over a topology using per-switch ECMP hashing.
type Router struct {
	Topo  *topology.Topology
	Seeds *Seeds
}

// NewRouter builds a Router.
func NewRouter(topo *topology.Topology, seeds *Seeds) *Router {
	return &Router{Topo: topo, Seeds: seeds}
}

// ErrNoRoute is returned when forwarding cannot reach the destination.
var ErrNoRoute = errors.New("ecmp: no route to destination")

// NextHopLink picks the egress link at switch sw for a packet with tuple t
// destined to host dst, using the switch's seeded hash for upward choices.
// Downward forwarding is deterministic (a Clos has exactly one down path
// from any switch to a host in its subtree).
func (r *Router) NextHopLink(sw topology.SwitchID, t FiveTuple, dst topology.HostID) (topology.LinkID, error) {
	topo := r.Topo
	s := &topo.Switches[sw]
	d := &topo.Hosts[dst]
	h := Hash(t, r.Seeds.Seed(sw))
	switch s.Tier {
	case topology.TierToR:
		if d.ToR == sw {
			return s.Downlinks[d.Index], nil
		}
		if len(s.Uplinks) == 0 {
			return topology.NoLink, ErrNoRoute
		}
		return s.Uplinks[int(h%uint64(len(s.Uplinks)))], nil
	case topology.TierT1:
		if d.Pod == s.Pod {
			dstToR := topo.Switches[d.ToR]
			return s.Downlinks[dstToR.Index], nil
		}
		if len(s.Uplinks) == 0 {
			return topology.NoLink, ErrNoRoute
		}
		return s.Uplinks[int(h%uint64(len(s.Uplinks)))], nil
	case topology.TierT2:
		n1 := topo.Cfg.T1PerPod
		j := int(h % uint64(n1))
		return s.Downlinks[d.Pod*n1+j], nil
	}
	return topology.NoLink, fmt.Errorf("ecmp: unknown tier %v", s.Tier)
}

// maxHops bounds path resolution; a Clos host-to-host path has at most 6
// links, so hitting the bound means the forwarding state is inconsistent.
const maxHops = 8

// Path resolves the full route from src to dst for tuple t.
// Same-host src/dst is an error; the paper's traffic model never produces it.
func (r *Router) Path(src, dst topology.HostID, t FiveTuple) (Path, error) {
	if src == dst {
		return Path{}, fmt.Errorf("ecmp: src and dst are both host %d", src)
	}
	topo := r.Topo
	p := Path{
		Links:    make([]topology.LinkID, 0, 6),
		Switches: make([]topology.SwitchID, 0, 5),
	}
	p.Links = append(p.Links, topo.Hosts[src].Uplink)
	cur := topo.Hosts[src].ToR
	for hop := 0; hop < maxHops; hop++ {
		p.Switches = append(p.Switches, cur)
		link, err := r.NextHopLink(cur, t, dst)
		if err != nil {
			return Path{}, err
		}
		p.Links = append(p.Links, link)
		to := topo.Links[link].To
		if to.Kind == topology.NodeHost {
			if topology.HostID(to.ID) != dst {
				return Path{}, fmt.Errorf("ecmp: delivered to host %d, want %d", to.ID, dst)
			}
			return p, nil
		}
		cur = topology.SwitchID(to.ID)
	}
	return Path{}, fmt.Errorf("ecmp: path from %d to %d exceeded %d hops", src, dst, maxHops)
}
