package ecmp

import (
	"testing"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

// PathInto must resolve the exact route Path does — it is the same
// algorithm writing into caller-owned storage — and a single PathBuf must
// be safely reusable across flows, as each simulator worker reuses one.
func TestPathIntoMatchesPath(t *testing.T) {
	r := buildRouter(t, topology.Config{Pods: 3, ToRsPerPod: 4, T1PerPod: 3, T2: 4, HostsPerToR: 4}, 7)
	topo := r.Topo
	rng := stats.NewRNG(11)
	var buf PathBuf
	for i := 0; i < 2000; i++ {
		src := topology.HostID(rng.Intn(len(topo.Hosts)))
		dst := topology.HostID(rng.Intn(len(topo.Hosts)))
		if src == dst {
			continue
		}
		tuple := FiveTuple{
			SrcIP: topo.Hosts[src].IP, DstIP: topo.Hosts[dst].IP,
			SrcPort: uint16(rng.IntRange(1024, 65535)), DstPort: 443,
			Proto: ProtoTCP,
		}
		want, err := r.Path(src, dst, tuple)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.PathInto(src, dst, tuple, &buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != want.Len() {
			t.Fatalf("flow %d: PathInto %d links, Path %d", i, buf.Len(), want.Len())
		}
		for j, l := range buf.Links() {
			if l != want.Links[j] {
				t.Fatalf("flow %d: link %d differs: %d vs %d", i, j, l, want.Links[j])
			}
		}
		gotSw := buf.Switches()
		if len(gotSw) != len(want.Switches) {
			t.Fatalf("flow %d: PathInto %d switches, Path %d", i, len(gotSw), len(want.Switches))
		}
		for j, sw := range gotSw {
			if sw != want.Switches[j] {
				t.Fatalf("flow %d: switch %d differs", i, j)
			}
		}
	}
}

func TestPathIntoErrors(t *testing.T) {
	r := buildRouter(t, topology.TestClusterConfig, 3)
	var buf PathBuf
	if err := r.PathInto(1, 1, FiveTuple{}, &buf); err == nil {
		t.Fatal("same-host path did not error")
	}
	if buf.Len() != 0 || len(buf.Switches()) != 0 {
		t.Fatal("failed resolution left stale contents in the buffer")
	}
}

// The hot path budget: resolving into a PathBuf must not allocate.
func TestPathIntoDoesNotAllocate(t *testing.T) {
	r := buildRouter(t, topology.DefaultSimConfig, 5)
	topo := r.Topo
	tuple := FiveTuple{
		SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[len(topo.Hosts)-1].IP,
		SrcPort: 40000, DstPort: 443, Proto: ProtoTCP,
	}
	dst := topology.HostID(len(topo.Hosts) - 1)
	var buf PathBuf
	avg := testing.AllocsPerRun(100, func() {
		if err := r.PathInto(0, dst, tuple, &buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("PathInto allocates %.1f times per call, want 0", avg)
	}
}
