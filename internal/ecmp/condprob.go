package ecmp

import (
	"vigil/internal/topology"
)

// This file computes link on-path probabilities under the paper's traffic
// and routing model (Remark 1): the source host is uniform, the destination
// is a uniform host under a uniformly chosen *different* ToR, and every
// upward ECMP choice is uniform and independent.
//
// Algorithm 1 adjusts the votes of links that share paths with the
// top-voted link lmax by "finding what fraction of these flows go through k
// by assuming ECMP distributes flows uniformly at random" (§5.1). That
// fraction is the conditional probability P(k on path | lmax on path)
// computed here in closed form per (source ToR, destination ToR) pair.

// linkCond captures the constraints a link places on a flow between a fixed
// ToR pair: which host endpoints it pins and which ECMP choices it fixes.
// Choice dimensions: c1 = T1 index picked at the source ToR, c2 = T2 index
// picked at the source-side T1 (cross-pod flows only), c3 = T1 index picked
// at the T2 toward the destination pod (cross-pod flows only).
type linkCond struct {
	ok               bool
	srcHost, dstHost int32 // pinned host IDs, -1 if free
	c1, c2, c3       int   // pinned choice indices, -1 if free
}

var freeCond = linkCond{ok: true, srcHost: -1, dstHost: -1, c1: -1, c2: -1, c3: -1}

// condFor returns the constraints link id places on flows from ToR s to
// ToR d (s != d). ok=false means the link cannot lie on any such flow.
func condFor(topo *topology.Topology, id topology.LinkID, s, d topology.SwitchID) linkCond {
	link := &topo.Links[id]
	sToR := &topo.Switches[s]
	dToR := &topo.Switches[d]
	cross := sToR.Pod != dToR.Pod
	c := freeCond
	switch link.Class {
	case topology.HostUp:
		h := &topo.Hosts[link.From.ID]
		if h.ToR != s {
			return linkCond{}
		}
		c.srcHost = int32(h.ID)
	case topology.HostDown:
		h := &topo.Hosts[link.To.ID]
		if h.ToR != d {
			return linkCond{}
		}
		c.dstHost = int32(h.ID)
	case topology.L1Up:
		if topology.SwitchID(link.From.ID) != s {
			return linkCond{}
		}
		c.c1 = topo.Switches[link.To.ID].Index
	case topology.L1Down:
		if topology.SwitchID(link.To.ID) != d {
			return linkCond{}
		}
		j := topo.Switches[link.From.ID].Index
		if cross {
			c.c3 = j
		} else {
			c.c1 = j
		}
	case topology.L2Up:
		if !cross || topo.Switches[link.From.ID].Pod != sToR.Pod {
			return linkCond{}
		}
		c.c1 = topo.Switches[link.From.ID].Index
		c.c2 = topo.Switches[link.To.ID].Index
	case topology.L2Down:
		if !cross || topo.Switches[link.To.ID].Pod != dToR.Pod {
			return linkCond{}
		}
		c.c2 = topo.Switches[link.From.ID].Index
		c.c3 = topo.Switches[link.To.ID].Index
	}
	return c
}

// merge combines two constraint sets; ok=false on conflict.
func merge(a, b linkCond) linkCond {
	if !a.ok || !b.ok {
		return linkCond{}
	}
	pick32 := func(x, y int32) (int32, bool) {
		if x == -1 {
			return y, true
		}
		if y == -1 || x == y {
			return x, true
		}
		return 0, false
	}
	pick := func(x, y int) (int, bool) {
		if x == -1 {
			return y, true
		}
		if y == -1 || x == y {
			return x, true
		}
		return 0, false
	}
	var out linkCond
	var ok bool
	out.ok = true
	if out.srcHost, ok = pick32(a.srcHost, b.srcHost); !ok {
		return linkCond{}
	}
	if out.dstHost, ok = pick32(a.dstHost, b.dstHost); !ok {
		return linkCond{}
	}
	if out.c1, ok = pick(a.c1, b.c1); !ok {
		return linkCond{}
	}
	if out.c2, ok = pick(a.c2, b.c2); !ok {
		return linkCond{}
	}
	if out.c3, ok = pick(a.c3, b.c3); !ok {
		return linkCond{}
	}
	return out
}

// prob returns the probability that a random flow between the fixed ToR
// pair satisfies the constraints.
func (c linkCond) prob(cfg topology.Config) float64 {
	if !c.ok {
		return 0
	}
	p := 1.0
	if c.srcHost != -1 {
		p /= float64(cfg.HostsPerToR)
	}
	if c.dstHost != -1 {
		p /= float64(cfg.HostsPerToR)
	}
	if c.c1 != -1 {
		p /= float64(cfg.T1PerPod)
	}
	if c.c2 != -1 {
		p /= float64(cfg.T2)
	}
	if c.c3 != -1 {
		p /= float64(cfg.T1PerPod)
	}
	return p
}

// CondCalc computes P(k on path | a on path) for a fixed link a under the
// uniform traffic and ECMP model. Build one per Algorithm 1 iteration.
type CondCalc struct {
	topo *topology.Topology
	a    topology.LinkID
	// conds[s*nToR+d] caches a's constraint for each ordered ToR pair.
	conds []linkCond
	tors  []topology.SwitchID
	pa    float64 // unnormalized P(a on path)
}

// NewCondCalc prepares the calculator for link a.
func NewCondCalc(topo *topology.Topology, a topology.LinkID) *CondCalc {
	nPods := topo.Cfg.Pods
	n0 := topo.Cfg.ToRsPerPod
	cc := &CondCalc{topo: topo, a: a}
	cc.tors = make([]topology.SwitchID, 0, nPods*n0)
	for p := 0; p < nPods; p++ {
		for i := 0; i < n0; i++ {
			cc.tors = append(cc.tors, topo.ToR(p, i))
		}
	}
	n := len(cc.tors)
	cc.conds = make([]linkCond, n*n)
	for si, s := range cc.tors {
		for di, d := range cc.tors {
			if s == d {
				continue
			}
			c := condFor(topo, a, s, d)
			cc.conds[si*n+di] = c
			cc.pa += c.prob(topo.Cfg)
		}
	}
	return cc
}

// OnPathProb returns P(a on path) for a uniformly random flow.
func (cc *CondCalc) OnPathProb() float64 {
	n := len(cc.tors)
	pairs := float64(n * (n - 1))
	if pairs == 0 {
		return 0
	}
	return cc.pa / pairs
}

// Cond returns P(b on path | a on path); 0 when a is never on a path.
func (cc *CondCalc) Cond(b topology.LinkID) float64 {
	if cc.pa == 0 {
		return 0
	}
	if b == cc.a {
		return 1
	}
	n := len(cc.tors)
	var joint float64
	for si, s := range cc.tors {
		row := cc.conds[si*n:]
		for di, d := range cc.tors {
			ca := row[di]
			if !ca.ok || s == d {
				continue
			}
			cb := condFor(cc.topo, b, s, d)
			if !cb.ok {
				continue
			}
			joint += merge(ca, cb).prob(cc.topo.Cfg)
		}
	}
	return joint / cc.pa
}

// SharesPath reports whether some flow path can contain both a and b, the
// membership test on line 10 of Algorithm 1.
func (cc *CondCalc) SharesPath(b topology.LinkID) bool {
	return b == cc.a || cc.Cond(b) > 0
}
