package ecmp

import (
	"math"
	"testing"
	"testing/quick"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

func buildRouter(t testing.TB, cfg topology.Config, seed uint64) *Router {
	t.Helper()
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewRouter(topo, NewSeeds(topo, stats.NewRNG(seed)))
}

func randomTuple(rng *stats.RNG, topo *topology.Topology, src, dst topology.HostID) FiveTuple {
	return FiveTuple{
		SrcIP:   topo.Hosts[src].IP,
		DstIP:   topo.Hosts[dst].IP,
		SrcPort: uint16(rng.IntRange(1024, 65535)),
		DstPort: 443,
		Proto:   ProtoTCP,
	}
}

func TestPathDeterminism(t *testing.T) {
	r := buildRouter(t, topology.DefaultSimConfig, 1)
	rng := stats.NewRNG(2)
	for i := 0; i < 200; i++ {
		src := topology.HostID(rng.Intn(len(r.Topo.Hosts)))
		dst := topology.HostID(rng.Intn(len(r.Topo.Hosts)))
		if r.Topo.SameToR(src, dst) {
			continue
		}
		tuple := randomTuple(rng, r.Topo, src, dst)
		p1, err := r.Path(src, dst, tuple)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := r.Path(src, dst, tuple)
		if err != nil {
			t.Fatal(err)
		}
		if len(p1.Links) != len(p2.Links) {
			t.Fatal("same tuple resolved to different path lengths")
		}
		for k := range p1.Links {
			if p1.Links[k] != p2.Links[k] {
				t.Fatal("same tuple resolved to different paths")
			}
		}
	}
}

func TestPathStructure(t *testing.T) {
	r := buildRouter(t, topology.DefaultSimConfig, 3)
	topo := r.Topo
	rng := stats.NewRNG(4)
	for i := 0; i < 500; i++ {
		src := topology.HostID(rng.Intn(len(topo.Hosts)))
		dst := topology.HostID(rng.Intn(len(topo.Hosts)))
		if topo.SameToR(src, dst) {
			continue
		}
		p, err := r.Path(src, dst, randomTuple(rng, topo, src, dst))
		if err != nil {
			t.Fatal(err)
		}
		// Same pod: host,L1up,L1down,host = 4 links / 3 switches.
		// Cross pod: 6 links / 5 switches (the paper's "hop count of 5").
		wantLinks, wantSwitches := 6, 5
		if topo.SamePod(src, dst) {
			wantLinks, wantSwitches = 4, 3
		}
		if len(p.Links) != wantLinks || len(p.Switches) != wantSwitches {
			t.Fatalf("path %d→%d: %d links / %d switches, want %d/%d",
				src, dst, len(p.Links), len(p.Switches), wantLinks, wantSwitches)
		}
		// Contiguity: each link starts where the previous ended.
		if topo.Links[p.Links[0]].From != topology.HostNode(src) {
			t.Fatal("path does not start at src")
		}
		for k := 1; k < len(p.Links); k++ {
			if topo.Links[p.Links[k]].From != topo.Links[p.Links[k-1]].To {
				t.Fatal("path links not contiguous")
			}
		}
		if topo.Links[p.Links[len(p.Links)-1]].To != topology.HostNode(dst) {
			t.Fatal("path does not end at dst")
		}
		// Loop-free switches.
		seen := map[topology.SwitchID]bool{}
		for _, sw := range p.Switches {
			if seen[sw] {
				t.Fatal("path visits a switch twice")
			}
			seen[sw] = true
		}
	}
}

func TestPathSameHostRejected(t *testing.T) {
	r := buildRouter(t, topology.TestClusterConfig, 5)
	if _, err := r.Path(0, 0, FiveTuple{}); err == nil {
		t.Fatal("Path(src=dst) should fail")
	}
}

func TestHashUniformity(t *testing.T) {
	// Chi-square over 10 buckets for random tuples under one seed.
	rng := stats.NewRNG(9)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		tuple := FiveTuple{
			SrcIP: uint32(rng.Uint64()), DstIP: uint32(rng.Uint64()),
			SrcPort: uint16(rng.Uint64()), DstPort: uint16(rng.Uint64()),
			Proto: ProtoTCP,
		}
		counts[Hash(tuple, 12345)%buckets]++
	}
	want := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 9 degrees of freedom; 99.9th percentile ~ 27.9.
	if chi2 > 27.9 {
		t.Fatalf("hash not uniform: chi2 = %v, counts %v", chi2, counts)
	}
}

func TestHashSensitivity(t *testing.T) {
	base := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	h := Hash(base, 7)
	variants := []FiveTuple{
		{SrcIP: 2, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		{SrcIP: 1, DstIP: 3, SrcPort: 3, DstPort: 4, Proto: 6},
		{SrcIP: 1, DstIP: 2, SrcPort: 4, DstPort: 4, Proto: 6},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 5, Proto: 6},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
	}
	for i, v := range variants {
		if Hash(v, 7) == h {
			t.Errorf("variant %d hashed identically", i)
		}
	}
	if Hash(base, 8) == h {
		t.Error("different seed hashed identically")
	}
}

func TestRebootChangesPaths(t *testing.T) {
	r := buildRouter(t, topology.DefaultSimConfig, 11)
	topo := r.Topo
	rng := stats.NewRNG(12)
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(1, 5, 3)
	changed := 0
	const n = 100
	for i := 0; i < n; i++ {
		tuple := randomTuple(rng, topo, src, dst)
		before, err := r.Path(src, dst, tuple)
		if err != nil {
			t.Fatal(err)
		}
		r.Seeds.Reboot(topo.Hosts[src].ToR, rng)
		after, err := r.Path(src, dst, tuple)
		if err != nil {
			t.Fatal(err)
		}
		if before.Links[1] != after.Links[1] {
			changed++
		}
	}
	// With 10 T1 choices, ~90% of flows should shift to another uplink.
	if changed < n/2 {
		t.Fatalf("reboot changed only %d/%d first hops", changed, n)
	}
}

func TestECMPChoiceUniformity(t *testing.T) {
	r := buildRouter(t, topology.DefaultSimConfig, 13)
	topo := r.Topo
	rng := stats.NewRNG(14)
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(1, 0, 0)
	n1 := topo.Cfg.T1PerPod
	counts := make(map[topology.LinkID]int)
	const n = 20000
	for i := 0; i < n; i++ {
		tuple := randomTuple(rng, topo, src, dst)
		p, err := r.Path(src, dst, tuple)
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Links[1]]++
	}
	if len(counts) != n1 {
		t.Fatalf("used %d uplinks, want %d", len(counts), n1)
	}
	want := float64(n) / float64(n1)
	for link, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("uplink %d used %d times, want ~%v", link, c, want)
		}
	}
}

func TestReverseTuple(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16) bool {
		tu := FiveTuple{SrcIP: a, DstIP: b, SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		return tu.Reverse().Reverse() == tu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCondProbMatchesMonteCarlo validates the closed-form conditional
// on-path probabilities against direct simulation.
func TestCondProbMatchesMonteCarlo(t *testing.T) {
	cfg := topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 4, HostsPerToR: 3}
	r := buildRouter(t, cfg, 21)
	topo := r.Topo
	rng := stats.NewRNG(22)

	// Pick a few probe links of each class.
	probes := []topology.LinkID{
		topo.LinksOfClass(topology.HostUp)[2],
		topo.LinksOfClass(topology.HostDown)[5],
		topo.LinksOfClass(topology.L1Up)[3],
		topo.LinksOfClass(topology.L1Down)[7],
		topo.LinksOfClass(topology.L2Up)[1],
		topo.LinksOfClass(topology.L2Down)[4],
	}

	// Monte Carlo: sample uniform flows per the paper's model.
	const samples = 300000
	hosts := len(topo.Hosts)
	onA := make([]int, len(probes))
	onBoth := make([][]int, len(probes))
	for i := range onBoth {
		onBoth[i] = make([]int, len(probes))
	}
	for s := 0; s < samples; s++ {
		src := topology.HostID(rng.Intn(hosts))
		dst := topology.HostID(rng.Intn(hosts))
		if topo.SameToR(src, dst) {
			continue
		}
		p, err := r.Path(src, dst, randomTuple(rng, topo, src, dst))
		if err != nil {
			t.Fatal(err)
		}
		on := map[topology.LinkID]bool{}
		for _, l := range p.Links {
			on[l] = true
		}
		for i, a := range probes {
			if !on[a] {
				continue
			}
			onA[i]++
			for j, b := range probes {
				if on[b] {
					onBoth[i][j]++
				}
			}
		}
	}

	for i, a := range probes {
		calc := NewCondCalc(topo, a)
		if onA[i] < 200 {
			t.Fatalf("probe %d saw too few conditioned samples (%d)", i, onA[i])
		}
		for j, b := range probes {
			want := float64(onBoth[i][j]) / float64(onA[i])
			got := calc.Cond(b)
			se := math.Sqrt(want*(1-want)/float64(onA[i])) + 0.01
			if math.Abs(got-want) > 4*se {
				t.Errorf("Cond(%s | %s) = %v, Monte Carlo %v (n=%d)",
					topo.LinkName(b), topo.LinkName(a), got, want, onA[i])
			}
		}
	}
}

func TestCondSelf(t *testing.T) {
	topo, err := topology.New(topology.DefaultSimConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []topology.LinkClass{topology.HostUp, topology.L1Up, topology.L2Down} {
		a := topo.LinksOfClass(class)[0]
		if got := NewCondCalc(topo, a).Cond(a); got != 1 {
			t.Fatalf("Cond(a|a) = %v for class %v", got, class)
		}
	}
}

func TestCondDisjointLinks(t *testing.T) {
	topo, err := topology.New(topology.DefaultSimConfig)
	if err != nil {
		t.Fatal(err)
	}
	// Two different uplinks of the same ToR can never share a flow.
	tor := topo.Switches[topo.ToR(0, 0)]
	calc := NewCondCalc(topo, tor.Uplinks[0])
	if got := calc.Cond(tor.Uplinks[1]); got != 0 {
		t.Fatalf("Cond over mutually exclusive uplinks = %v", got)
	}
	if calc.SharesPath(tor.Uplinks[1]) {
		t.Fatal("mutually exclusive uplinks report a shared path")
	}
	// Host uplinks of two different hosts can never share a flow.
	calc = NewCondCalc(topo, topo.Hosts[0].Uplink)
	if got := calc.Cond(topo.Hosts[1].Uplink); got != 0 {
		t.Fatalf("Cond over two src host links = %v", got)
	}
}

func TestOnPathProbSumsToPathLength(t *testing.T) {
	// Sum over all links of P(link on path) equals E[path length].
	cfg := topology.Config{Pods: 2, ToRsPerPod: 3, T1PerPod: 2, T2: 2, HostsPerToR: 2}
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for id := range topo.Links {
		sum += NewCondCalc(topo, topology.LinkID(id)).OnPathProb()
	}
	// E[len] = 4*P(same pod) + 6*P(cross pod).
	nTor := float64(cfg.Pods * cfg.ToRsPerPod)
	pSame := float64(cfg.ToRsPerPod-1) / (nTor - 1)
	want := 4*pSame + 6*(1-pSame)
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum of on-path probs = %v, want %v", sum, want)
	}
}

func BenchmarkPath(b *testing.B) {
	topo, _ := topology.New(topology.DefaultSimConfig)
	r := NewRouter(topo, NewSeeds(topo, stats.NewRNG(1)))
	rng := stats.NewRNG(2)
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(1, 5, 3)
	tuple := randomTuple(rng, topo, src, dst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuple.SrcPort++
		if _, err := r.Path(src, dst, tuple); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCondCalc(b *testing.B) {
	topo, _ := topology.New(topology.DefaultSimConfig)
	a := topo.LinksOfClass(topology.L1Up)[0]
	k := topo.LinksOfClass(topology.L2Up)[0]
	calc := NewCondCalc(topo, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.Cond(k)
	}
}
