// Package slb models the Ananta-style software load balancer of §4.2: TCP
// connections are established to a virtual IP (VIP); the SLB assigns each
// new flow a physical destination IP (DIP) from the VIP's pool and
// registers the mapping with the source hypervisor's vSwitch, after which
// data packets carry the DIP and bypass the SLB.
//
// 007's path discovery cares about one thing here: before tracing a flow it
// must learn the flow's DIP, and the paper argues the SLB (not the vSwitch)
// is the reliable place to ask — a failure that kills the connection may
// already have flushed the vSwitch entry. Both query paths are modelled,
// along with injectable query failures ("path discovery is not triggered
// when the query to the SLB fails, to avoid tracerouting the internet").
package slb

import (
	"fmt"

	"vigil/internal/ecmp"
	"vigil/internal/stats"
	"vigil/internal/topology"
)

// FlowKey identifies a load-balanced connection from a source host to a
// VIP-fronted service.
type FlowKey struct {
	SrcIP   uint32
	SrcPort uint16
	VIP     uint32
	VIPPort uint16
}

// SLB is the load balancer control plane plus the per-host vSwitch tables.
type SLB struct {
	topo *topology.Topology
	rng  *stats.RNG

	pools map[uint32][]topology.HostID // VIP → DIP pool (as hosts)
	// assignments is the SLB's authoritative flow table.
	assignments map[FlowKey]topology.HostID
	// vswitch is each source host's local mapping table; entries vanish
	// when a connection terminates (see RemoveConn).
	vswitch map[topology.HostID]map[FlowKey]topology.HostID

	// QueryFailRate injects SLB query failures.
	QueryFailRate float64
	// Queries counts DIP lookups served (for overhead accounting).
	Queries int64
}

// New builds an SLB over the topology.
func New(topo *topology.Topology, rng *stats.RNG) *SLB {
	return &SLB{
		topo:        topo,
		rng:         rng,
		pools:       make(map[uint32][]topology.HostID),
		assignments: make(map[FlowKey]topology.HostID),
		vswitch:     make(map[topology.HostID]map[FlowKey]topology.HostID),
	}
}

// RegisterVIP announces a service VIP backed by the given hosts. VIPs live
// in 10.255.0.0/16, outside the topology's physical address plan.
func (s *SLB) RegisterVIP(vip uint32, backends []topology.HostID) error {
	if _, clash := s.topo.LookupIP(vip); clash {
		return fmt.Errorf("slb: VIP %s collides with a physical address", topology.FormatIP(vip))
	}
	if len(backends) == 0 {
		return fmt.Errorf("slb: VIP %s has no backends", topology.FormatIP(vip))
	}
	s.pools[vip] = append([]topology.HostID(nil), backends...)
	return nil
}

// VIP returns a conventional VIP address for service index i.
func VIP(i int) uint32 { return 10<<24 | 255<<16 | uint32(i>>8)<<8 | uint32(i&0xff) }

// Connect handles a SYN to a VIP: pick a DIP for the flow, record the
// assignment and program the source host's vSwitch. It returns the DIP
// host. This is the paper's connection-establishment path.
func (s *SLB) Connect(src topology.HostID, srcPort uint16, vip uint32, vipPort uint16) (topology.HostID, error) {
	pool, ok := s.pools[vip]
	if !ok {
		return 0, fmt.Errorf("slb: unknown VIP %s", topology.FormatIP(vip))
	}
	key := FlowKey{SrcIP: s.topo.Hosts[src].IP, SrcPort: srcPort, VIP: vip, VIPPort: vipPort}
	dip := pool[int(ecmp.Hash(ecmp.FiveTuple{
		SrcIP: key.SrcIP, DstIP: vip, SrcPort: srcPort, DstPort: vipPort, Proto: ecmp.ProtoTCP,
	}, 0x5b5b5b5b)%uint64(len(pool)))]
	s.assignments[key] = dip
	vs := s.vswitch[src]
	if vs == nil {
		vs = make(map[FlowKey]topology.HostID)
		s.vswitch[src] = vs
	}
	vs[key] = dip
	return dip, nil
}

// RemoveConn tears down a connection's vSwitch state (connection
// termination); the SLB's own table keeps the assignment for a while,
// which is why querying the SLB is the reliable path.
func (s *SLB) RemoveConn(src topology.HostID, key FlowKey) {
	if vs := s.vswitch[src]; vs != nil {
		delete(vs, key)
	}
}

// QuerySLB asks the load balancer for a flow's DIP — 007's preferred
// lookup (§4.2). ok is false if the query failed (injected failure or
// unknown flow); 007 must then skip the traceroute.
func (s *SLB) QuerySLB(key FlowKey) (topology.HostID, bool) {
	s.Queries++
	if s.QueryFailRate > 0 && s.rng.Bool(s.QueryFailRate) {
		return 0, false
	}
	dip, ok := s.assignments[key]
	return dip, ok
}

// QueryVSwitch asks the source host's vSwitch instead — the less reliable
// alternative the paper warns about.
func (s *SLB) QueryVSwitch(src topology.HostID, key FlowKey) (topology.HostID, bool) {
	vs := s.vswitch[src]
	if vs == nil {
		return 0, false
	}
	dip, ok := vs[key]
	return dip, ok
}

// IsVIP reports whether addr is a registered VIP.
func (s *SLB) IsVIP(addr uint32) bool {
	_, ok := s.pools[addr]
	return ok
}
