package slb

import (
	"testing"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

func newSLB(t testing.TB) (*SLB, *topology.Topology) {
	t.Helper()
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	return New(topo, stats.NewRNG(1)), topo
}

func TestConnectAssignsFromPool(t *testing.T) {
	s, topo := newSLB(t)
	backends := []topology.HostID{topo.HostAt(0, 5, 0), topo.HostAt(0, 5, 1), topo.HostAt(0, 6, 0)}
	vip := VIP(1)
	if err := s.RegisterVIP(vip, backends); err != nil {
		t.Fatal(err)
	}
	inPool := map[topology.HostID]bool{}
	for _, b := range backends {
		inPool[b] = true
	}
	seen := map[topology.HostID]bool{}
	for port := uint16(40000); port < 40200; port++ {
		dip, err := s.Connect(topo.HostAt(0, 0, 0), port, vip, 443)
		if err != nil {
			t.Fatal(err)
		}
		if !inPool[dip] {
			t.Fatalf("assigned DIP %d outside the pool", dip)
		}
		seen[dip] = true
	}
	if len(seen) != len(backends) {
		t.Fatalf("only %d/%d backends used", len(seen), len(backends))
	}
}

func TestConnectUnknownVIP(t *testing.T) {
	s, topo := newSLB(t)
	if _, err := s.Connect(topo.HostAt(0, 0, 0), 40000, VIP(9), 443); err == nil {
		t.Fatal("unknown VIP accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	s, topo := newSLB(t)
	if err := s.RegisterVIP(topo.Hosts[0].IP, []topology.HostID{1}); err == nil {
		t.Fatal("VIP colliding with a host address accepted")
	}
	if err := s.RegisterVIP(VIP(1), nil); err == nil {
		t.Fatal("empty backend pool accepted")
	}
}

func TestQuerySLBSurvivesConnTeardown(t *testing.T) {
	s, topo := newSLB(t)
	vip := VIP(2)
	if err := s.RegisterVIP(vip, []topology.HostID{topo.HostAt(0, 7, 0)}); err != nil {
		t.Fatal(err)
	}
	src := topo.HostAt(0, 0, 1)
	dip, err := s.Connect(src, 41000, vip, 443)
	if err != nil {
		t.Fatal(err)
	}
	key := FlowKey{SrcIP: topo.Hosts[src].IP, SrcPort: 41000, VIP: vip, VIPPort: 443}

	// Both paths resolve while the connection lives.
	if got, ok := s.QueryVSwitch(src, key); !ok || got != dip {
		t.Fatal("vSwitch lookup failed on a live connection")
	}
	if got, ok := s.QuerySLB(key); !ok || got != dip {
		t.Fatal("SLB lookup failed on a live connection")
	}

	// After teardown the vSwitch entry is gone — the paper's reason to
	// query the SLB instead (§4.2).
	s.RemoveConn(src, key)
	if _, ok := s.QueryVSwitch(src, key); ok {
		t.Fatal("vSwitch entry survived teardown")
	}
	if got, ok := s.QuerySLB(key); !ok || got != dip {
		t.Fatal("SLB entry should survive teardown")
	}
}

func TestQueryFailureInjection(t *testing.T) {
	s, topo := newSLB(t)
	vip := VIP(3)
	if err := s.RegisterVIP(vip, []topology.HostID{topo.HostAt(0, 8, 0)}); err != nil {
		t.Fatal(err)
	}
	src := topo.HostAt(0, 1, 0)
	if _, err := s.Connect(src, 42000, vip, 443); err != nil {
		t.Fatal(err)
	}
	key := FlowKey{SrcIP: topo.Hosts[src].IP, SrcPort: 42000, VIP: vip, VIPPort: 443}
	s.QueryFailRate = 1.0
	if _, ok := s.QuerySLB(key); ok {
		t.Fatal("query succeeded despite 100% failure injection")
	}
	s.QueryFailRate = 0
	if _, ok := s.QuerySLB(key); !ok {
		t.Fatal("query failed with injection off")
	}
	if s.Queries != 2 {
		t.Fatalf("query counter = %d", s.Queries)
	}
}

func TestIsVIP(t *testing.T) {
	s, topo := newSLB(t)
	vip := VIP(4)
	if s.IsVIP(vip) {
		t.Fatal("unregistered VIP recognized")
	}
	if err := s.RegisterVIP(vip, []topology.HostID{0}); err != nil {
		t.Fatal(err)
	}
	if !s.IsVIP(vip) || s.IsVIP(topo.Hosts[0].IP) {
		t.Fatal("IsVIP wrong")
	}
}

func TestStickyAssignment(t *testing.T) {
	s, topo := newSLB(t)
	vip := VIP(5)
	backends := []topology.HostID{topo.HostAt(0, 5, 2), topo.HostAt(0, 6, 2)}
	if err := s.RegisterVIP(vip, backends); err != nil {
		t.Fatal(err)
	}
	src := topo.HostAt(0, 2, 0)
	a, _ := s.Connect(src, 43000, vip, 443)
	b, _ := s.Connect(src, 43000, vip, 443) // same five-tuple: same DIP
	if a != b {
		t.Fatal("assignment not deterministic per flow key")
	}
}
