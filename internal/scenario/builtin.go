package scenario

import (
	"vigil/internal/schedule"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
)

// The named scenarios of the dynamic-failure suite. Each is the quick-scale
// embodiment of a regime the paper (and its arXiv:1802.07222 extension)
// evaluates 007 under: transient/intermittent failures, flapping links,
// rolling failure waves, congestion under skewed traffic, and overlapping
// failure churn.
func init() {
	Register(Spec{
		Name:   "intermittent-failure",
		Title:  "One link drops at a low rate in a random ~60% of epochs (transient failure, arXiv:1802.07222 §V)",
		Epochs: 16,
		Script: func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
			l := pickLinks(rng, topo, 1, topology.L1Up)[0]
			return []LinkSchedule{{
				Link: l,
				Schedule: schedule.Intermittent{
					Rate: rng.Uniform(0.002, 0.008),
					Prob: 0.6,
					Seed: rng.Uint64(),
				},
			}}
		},
	})

	Register(Spec{
		Name:   "link-flap",
		Title:  "Two links flap with staggered on/off duty cycles",
		Epochs: 16,
		Script: func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
			up := pickLinks(rng, topo, 1, topology.L1Up)[0]
			down := pickLinks(rng, topo, 1, topology.L2Down)[0]
			return []LinkSchedule{
				{Link: up, Schedule: schedule.Flap{Rate: rng.Uniform(0.004, 0.01), Period: 4, On: 2}},
				{Link: down, Schedule: schedule.Flap{Rate: rng.Uniform(0.003, 0.008), Period: 6, On: 3, Phase: 1}},
			}
		},
	})

	Register(Spec{
		Name:   "failure-wave",
		Title:  "A rolling wave of four failures marching across the fabric with overlapping windows",
		Epochs: 16,
		Script: func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
			links := pickLinks(rng, topo, 4, topology.L1Up, topology.L1Down)
			out := make([]LinkSchedule, len(links))
			for i, l := range links {
				out[i] = LinkSchedule{
					Link:     l,
					Schedule: schedule.Window{Rate: rng.Uniform(0.004, 0.01), Start: i * 3, End: i*3 + 5},
				}
			}
			return out
		},
	})

	Register(Spec{
		Name:   "congestion-burst",
		Title:  "Hot-ToR traffic (Fig. 9) with periodic congestion-loss bursts on the sink's downlinks",
		Epochs: 15,
		Workload: func(rng *stats.RNG, topo *topology.Topology) traffic.Workload {
			w := traffic.DefaultWorkload()
			w.Pattern = traffic.HotToR{Sink: randomToR(rng, topo), Frac: 0.6}
			return w
		},
		Script: func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
			// Workload and Script receive copies of the same stream, so this
			// first draw yields the exact sink the workload floods — the
			// burst lands on the congested downlinks.
			sink := randomToR(rng, topo)
			into := linksInto(topo, sink, topology.L1Down)
			rng.Shuffle(len(into), func(i, j int) { into[i], into[j] = into[j], into[i] })
			n := min(2, len(into))
			out := make([]LinkSchedule, n)
			for i := 0; i < n; i++ {
				out[i] = LinkSchedule{
					Link:     into[i],
					Schedule: schedule.Flap{Rate: rng.Uniform(0.003, 0.008), Period: 5, On: 2, Phase: i},
				}
			}
			return out
		},
	})

	Register(Spec{
		Name:   "overlap-churn",
		Title:  "Five failures of mixed classes overlapping and churning (intermittent + windows + flap)",
		Epochs: 18,
		Script: func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
			links := pickLinks(rng, topo, 5, topology.L1Up, topology.L1Down, topology.L2Up, topology.L2Down)
			return []LinkSchedule{
				{Link: links[0], Schedule: schedule.Intermittent{Rate: rng.Uniform(0.003, 0.008), Prob: 0.45, Seed: rng.Uint64()}},
				{Link: links[1], Schedule: schedule.Intermittent{Rate: rng.Uniform(0.003, 0.008), Prob: 0.45, Seed: rng.Uint64()}},
				{Link: links[2], Schedule: schedule.Window{Rate: rng.Uniform(0.004, 0.01), Start: 2, End: 9}},
				{Link: links[3], Schedule: schedule.Window{Rate: rng.Uniform(0.004, 0.01), Start: 6, End: 13}},
				{Link: links[4], Schedule: schedule.Flap{Rate: rng.Uniform(0.004, 0.01), Period: 6, On: 2, Phase: 3}},
			}
		},
	})
}

// pickLinks draws n distinct links uniformly from the union of the given
// classes, sorted by LinkID for a deterministic script order.
func pickLinks(rng *stats.RNG, topo *topology.Topology, n int, classes ...topology.LinkClass) []topology.LinkID {
	var pool []topology.LinkID
	for _, c := range classes {
		pool = append(pool, topo.LinksOfClass(c)...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		n = len(pool)
	}
	out := append([]topology.LinkID(nil), pool[:n]...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// randomToR picks a uniform ToR.
func randomToR(rng *stats.RNG, topo *topology.Topology) topology.SwitchID {
	p := rng.Intn(topo.Cfg.Pods)
	return topo.ToR(p, rng.Intn(topo.Cfg.ToRsPerPod))
}

// linksInto returns the class-c links whose destination is switch sw.
func linksInto(topo *topology.Topology, sw topology.SwitchID, c topology.LinkClass) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range topo.LinksOfClass(c) {
		if topo.Links[l].To == topology.SwitchNode(sw) {
			out = append(out, l)
		}
	}
	return out
}
