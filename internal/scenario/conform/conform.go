// Package conform is the statistical conformance suite of the dynamic
// failure-scenario engine: it runs a named scenario across independent
// seeds, pools the binomial counts behind each paper-level metric
// (detection precision/recall, per-flow accuracy, quiet-epoch cleanliness)
// and asserts envelope bounds through Wilson confidence intervals instead
// of brittle exact goldens.
//
// A check passes while the data remains statistically consistent with the
// bound: it fails only when the pooled interval's upper limit drops below
// it. One unlucky seed cannot fail the suite; a real regression across
// seeds cannot pass it. Tightening z widens the tolerance, adding seeds
// narrows it — both without ever touching a golden file.
package conform

import (
	"context"
	"fmt"
	"strings"

	"vigil/internal/engine"
	"vigil/internal/ingest"
	"vigil/internal/par"
	"vigil/internal/scenario"
	"vigil/internal/stats"
)

// Envelope bounds a scenario's aggregate metrics. A zero Min* leaves that
// metric unchecked.
type Envelope struct {
	// Scenario names a registered scenario.
	Scenario string
	// Plane selects the substrate the scenario runs on (engine.Flow or
	// engine.Packet); empty defers to the spec (and ultimately the flow
	// plane). Packet-plane repetitions are independent single-threaded DES
	// replicas fanned out across the worker pool.
	Plane engine.Plane
	// Seeds is how many independent repetitions to pool; 0 means 8.
	Seeds int
	// BaseSeed/SeedStride generate repetition i's seed as
	// BaseSeed + i*SeedStride; zero values mean 1 and 7919.
	BaseSeed, SeedStride uint64
	// Epochs overrides the spec's scripted duration when positive.
	Epochs int
	// Z is the Wilson critical value; 0 means 2.576 (a 99% interval).
	Z float64
	// ReportLoss, when positive, routes every repetition through the
	// streaming ingest service with this seeded report-drop probability on
	// the agent→collector path (no retries) instead of the batch epoch
	// loop — the degradation envelopes: how far do the paper-level metrics
	// fall when this share of votes never reaches the analyzer?
	ReportLoss float64

	// MinPrecision/MinRecall bound Algorithm 1's pooled detection scores
	// over active epochs; MinAccuracy bounds pooled per-flow attribution;
	// MinQuietClean bounds the fraction of quiet epochs (no scripted
	// failure live) in which nothing was detected.
	MinPrecision  float64
	MinRecall     float64
	MinAccuracy   float64
	MinQuietClean float64
}

func (e Envelope) seeds() int {
	if e.Seeds > 0 {
		return e.Seeds
	}
	return 8
}

func (e Envelope) seedAt(i int) uint64 {
	base, stride := e.BaseSeed, e.SeedStride
	if base == 0 {
		base = 1
	}
	if stride == 0 {
		stride = 7919
	}
	return base + uint64(i)*stride
}

func (e Envelope) z() float64 {
	if e.Z > 0 {
		return e.Z
	}
	return 2.576
}

// Check is one metric's verdict.
type Check struct {
	Metric            string
	Successes, Trials int
	// Point is the pooled proportion; Lo/Hi its Wilson interval.
	Point, Lo, Hi float64
	Bound         float64
	Pass          bool
}

// Report is one envelope evaluation.
type Report struct {
	Scenario string
	Plane    engine.Plane
	Seeds    int
	Checks   []Check
}

// Pass reports whether every check passed.
func (r *Report) Pass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// String renders the report one check per line, for test failure messages.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (%s plane) over %d seeds:\n", r.Scenario, r.Plane, r.Seeds)
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  %-12s %s  %d/%d = %.3f  CI [%.3f, %.3f]  bound >= %.3f\n",
			c.Metric, verdict, c.Successes, c.Trials, c.Point, c.Lo, c.Hi, c.Bound)
	}
	return b.String()
}

// check builds one metric's verdict: the bound must not be statistically
// excluded (interval upper limit >= bound). A bounded metric with zero
// trials fails — the scenario produced no opportunity to measure it, which
// a conformance envelope should treat as a defect, not a pass.
func check(metric string, successes, trials int, bound, z float64) Check {
	c := Check{Metric: metric, Successes: successes, Trials: trials, Bound: bound}
	c.Lo, c.Hi = stats.WilsonInterval(successes, trials, z)
	if trials > 0 {
		c.Point = float64(successes) / float64(trials)
		c.Pass = c.Hi >= bound
	}
	return c
}

// Evaluate runs the envelope's scenario across its seeds (fanned out over
// parallelism workers, pooled in seed order) and scores every bounded
// metric. The result is deterministic for a fixed envelope.
func Evaluate(env Envelope, parallelism int) (*Report, error) {
	spec, ok := scenario.Find(env.Scenario)
	if !ok {
		return nil, fmt.Errorf("conform: unknown scenario %q", env.Scenario)
	}
	n := env.seeds()
	results := make([]*scenario.Result, n)
	err := par.ForEachErr(n, parallelism, func(i int) error {
		cfg := scenario.Config{
			Seed:        env.seedAt(i),
			Epochs:      env.Epochs,
			Plane:       env.Plane,
			Parallelism: 1, // the seed sweep already saturates the pool
		}
		var (
			res *scenario.Result
			err error
		)
		if env.ReportLoss > 0 {
			res, err = runDegraded(spec, cfg, env.ReportLoss)
		} else {
			res, err = scenario.Run(spec, cfg)
		}
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	var tp, fp, fn, correct, considered, quietClean, quiet int
	for _, res := range results {
		tp += res.TruePos
		fp += res.FalsePos
		fn += res.FalseNeg
		correct += res.Correct
		considered += res.Considered
		quietClean += res.QuietClean
		quiet += res.QuietEpochs
	}
	rep := &Report{Scenario: env.Scenario, Plane: results[0].Plane, Seeds: n}
	z := env.z()
	if env.MinPrecision > 0 {
		rep.Checks = append(rep.Checks, check("precision", tp, tp+fp, env.MinPrecision, z))
	}
	if env.MinRecall > 0 {
		rep.Checks = append(rep.Checks, check("recall", tp, tp+fn, env.MinRecall, z))
	}
	if env.MinAccuracy > 0 {
		rep.Checks = append(rep.Checks, check("accuracy", correct, considered, env.MinAccuracy, z))
	}
	if env.MinQuietClean > 0 {
		rep.Checks = append(rep.Checks, check("quiet-clean", quietClean, quiet, env.MinQuietClean, z))
	}
	return rep, nil
}

// lossDomain separates the degradation runs' fault seed from the scenario
// seed it derives from.
const lossDomain = 0x6a09e667f3bcc908

// runDegraded drives one prepared scenario repetition through the
// streaming ingest service with seeded report loss and no retries, scoring
// the settled epochs through the same Scorer the batch loop uses. With
// loss 0 this would reproduce scenario.Run bit for bit (the service's
// fault-free contract); with loss > 0 the difference in the pooled
// envelopes IS the measured degradation.
func runDegraded(spec scenario.Spec, cfg scenario.Config, loss float64) (*scenario.Result, error) {
	p, err := scenario.Prepare(spec, cfg)
	if err != nil {
		return nil, err
	}
	sc := p.Scorer()
	svc, err := ingest.New(ingest.Config{
		Engine: p.Engine,
		Faults: ingest.FaultConfig{Seed: cfg.Seed ^ lossDomain, Drop: loss},
		Sink:   sc.Add,
	})
	if err != nil {
		return nil, err
	}
	if err := svc.Run(context.Background(), p.Epochs); err != nil {
		return nil, err
	}
	return sc.Finish(), nil
}

// CrossReport pairs one scenario's conformance reports on the two planes.
type CrossReport struct {
	Flow, Packet *Report
}

// Pass reports whether both planes hold their envelopes.
func (cr *CrossReport) Pass() bool { return cr.Flow.Pass() && cr.Packet.Pass() }

// String renders both planes' reports, for test failure messages.
func (cr *CrossReport) String() string {
	return cr.Flow.String() + cr.Packet.String()
}

// EvaluateCross runs the envelope's scenario on BOTH planes — the flow
// plane as configured, the packet plane with packetEnv's overrides (plus
// any unset field inherited from env) — and scores each against its
// bounds. This is the cross-plane conformance check of the extended paper
// (arXiv:1802.07222 §V): the same scripted regime, validated on the
// flow-level simulator and the packet-level emulation through one
// scenario code path, must hold comparable statistical envelopes.
// packetEnv exists because the two substrates run at different operating
// points (the packet plane's DES replicas are orders of magnitude more
// expensive per epoch, so they pool fewer seeds, and ICMP rate limiting
// plus TCP recovery genuinely shift some metrics); a zero packetEnv reuses
// env's bounds verbatim.
func EvaluateCross(env, packetEnv Envelope, parallelism int) (*CrossReport, error) {
	env.Plane = engine.Flow
	flowRep, err := Evaluate(env, parallelism)
	if err != nil {
		return nil, err
	}
	p := packetEnv
	p.Scenario = env.Scenario
	p.Plane = engine.Packet
	if p.Seeds == 0 {
		p.Seeds = env.Seeds
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = env.BaseSeed
	}
	if p.SeedStride == 0 {
		p.SeedStride = env.SeedStride
	}
	if p.Epochs == 0 {
		p.Epochs = env.Epochs
	}
	if p.Z == 0 {
		p.Z = env.Z
	}
	if p.MinPrecision == 0 {
		p.MinPrecision = env.MinPrecision
	}
	if p.MinRecall == 0 {
		p.MinRecall = env.MinRecall
	}
	if p.MinAccuracy == 0 {
		p.MinAccuracy = env.MinAccuracy
	}
	if p.MinQuietClean == 0 {
		p.MinQuietClean = env.MinQuietClean
	}
	packetRep, err := Evaluate(p, parallelism)
	if err != nil {
		return nil, err
	}
	return &CrossReport{Flow: flowRep, Packet: packetRep}, nil
}
