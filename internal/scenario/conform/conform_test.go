package conform

import (
	"testing"
)

// Paper-level envelopes for the named dynamic scenarios, at fixed seeds.
// Bounds sit below the pooled point estimates with enough margin that seed
// noise cannot fail them (the Wilson upper limit must drop below the bound),
// yet close enough that a real regression — recall collapsing, precision
// halving, attribution drifting — statistically excludes the bound and
// fails the suite.
//
// Reference pooled estimates (30 seeds, quick topology): intermittent
// precision ~0.63 (the low-rate regime genuinely pulls noise links over
// Algorithm 1's relative threshold), link-flap ~0.90, failure-wave ~0.91,
// congestion-burst ~1.0, overlap-churn ~0.97; recall ~1.0 and accuracy
// ~0.996+ everywhere; quiet epochs detect the top noise link whenever a
// noise drop lands, leaving quiet-clean low (~0.13).
var envelopes = []Envelope{
	{
		Scenario:      "intermittent-failure",
		MinPrecision:  0.45,
		MinRecall:     0.95,
		MinAccuracy:   0.97,
		MinQuietClean: 0.02,
	},
	{
		Scenario:     "link-flap",
		MinPrecision: 0.75,
		MinRecall:    0.95,
		MinAccuracy:  0.97,
	},
	{
		Scenario:     "failure-wave",
		MinPrecision: 0.75,
		MinRecall:    0.95,
		MinAccuracy:  0.97,
	},
	{
		Scenario:     "congestion-burst",
		MinPrecision: 0.85,
		MinRecall:    0.95,
		MinAccuracy:  0.97,
	},
	{
		Scenario:     "overlap-churn",
		MinPrecision: 0.8,
		MinRecall:    0.95,
		MinAccuracy:  0.95,
	},
}

// The conformance suite proper: every named scenario must hold its
// precision/recall/accuracy envelope across the pooled seed runs.
func TestScenarioEnvelopes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed statistical sweep; skipped in -short mode")
	}
	for _, env := range envelopes {
		env := env
		t.Run(env.Scenario, func(t *testing.T) {
			t.Parallel()
			rep, err := Evaluate(env, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Checks) == 0 {
				t.Fatal("envelope produced no checks")
			}
			if !rep.Pass() {
				t.Fatalf("conformance envelope violated:\n%s", rep)
			}
			t.Log("\n" + rep.String())
		})
	}
}

// An impossible bound must fail — the suite is statistical, not vacuous.
func TestEnvelopeCanFail(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed statistical sweep; skipped in -short mode")
	}
	rep, err := Evaluate(Envelope{
		Scenario:      "link-flap",
		Seeds:         4,
		MinQuietClean: 0.999, // quiet epochs flag noise links routinely
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatalf("absurd bound passed:\n%s", rep)
	}
}

func TestEvaluateUnknownScenario(t *testing.T) {
	if _, err := Evaluate(Envelope{Scenario: "no-such"}, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// Evaluation must be deterministic: same envelope, same report.
func TestEvaluateDeterministic(t *testing.T) {
	env := Envelope{Scenario: "intermittent-failure", Seeds: 3, MinRecall: 0.9}
	a, err := Evaluate(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("parallelism changed the report:\n%s\nvs\n%s", a, b)
	}
}

func TestCheckZeroTrialsFails(t *testing.T) {
	c := check("recall", 0, 0, 0.9, 2.576)
	if c.Pass {
		t.Fatal("bounded metric with zero trials passed")
	}
}
