package conform

import "testing"

// Degradation envelopes: the intermittent-failure scenario driven through
// the streaming ingest service under seeded report loss. The paper argues
// the voting scheme tolerates noise; these points measure it. Calibration
// (8 seeds, quick topology): recall stays 1.0 at every loss point up to
// 20% — a lost vote removes evidence but the surviving votes still
// concentrate on the failed link — while precision erodes from ~0.66
// fault-free to ~0.55 at 20% loss (noise links gain relative weight as
// real votes thin out) and the verdict-considered count shrinks with the
// lost reports. Bounds sit below those measurements with seed-noise
// margin; recall is the headline claim and keeps the tight bound.
var degradationEnvelopes = []Envelope{
	{Scenario: "intermittent-failure", ReportLoss: 0.01, MinRecall: 0.95, MinPrecision: 0.45, MinAccuracy: 0.97},
	{Scenario: "intermittent-failure", ReportLoss: 0.05, MinRecall: 0.95, MinPrecision: 0.45, MinAccuracy: 0.97},
	{Scenario: "intermittent-failure", ReportLoss: 0.20, MinRecall: 0.95, MinPrecision: 0.35, MinAccuracy: 0.97},
}

// TestDegradationEnvelopes asserts ranking recall (and the secondary
// metrics) hold their Wilson envelopes while 1%, 5% and 20% of reports
// never reach the analyzer.
func TestDegradationEnvelopes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed statistical sweep; skipped in -short mode")
	}
	for _, env := range degradationEnvelopes {
		env := env
		t.Run(pct(env.ReportLoss), func(t *testing.T) {
			t.Parallel()
			rep, err := Evaluate(env, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass() {
				t.Fatalf("degradation envelope violated at %s loss:\n%s", pct(env.ReportLoss), rep)
			}
			t.Log("\n" + rep.String())
		})
	}
}

// Loss must actually bite: the degraded path is only a measurement if the
// 20% run sees fewer verdict opportunities than the fault-free run.
func TestDegradationLosesReports(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed statistical sweep; skipped in -short mode")
	}
	base := Envelope{Scenario: "intermittent-failure", Seeds: 3, MinAccuracy: 0.5}
	lossy := base
	lossy.ReportLoss = 0.20
	a, err := Evaluate(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(lossy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checks[0].Trials <= b.Checks[0].Trials {
		t.Fatalf("20%% report loss did not reduce scored flows: %d vs %d",
			a.Checks[0].Trials, b.Checks[0].Trials)
	}
}

func pct(p float64) string {
	switch {
	case p >= 0.20:
		return "20pct"
	case p >= 0.05:
		return "5pct"
	default:
		return "1pct"
	}
}
