package conform

import (
	"testing"

	"vigil/internal/engine"
)

// The cross-plane conformance suite: the shared dynamic scenarios must
// hold their statistical envelopes on BOTH planes through one scenario
// code path — the extended paper's claim (arXiv:1802.07222 §V) that 007's
// hardest regimes hold in flow-level simulation and packet-level
// emulation alike.
//
// The packet plane runs the flow plane's bounds verbatim: calibration
// (6 seeds, full epochs) put its pooled points at precision 0.47/0.74,
// recall 0.93/0.99 and accuracy 0.98/0.97 for intermittent-failure and
// link-flap respectively — inside every flow bound's Wilson tolerance.
// Two operating-point differences are genuine and documented here rather
// than bound away:
//
//   - Noise drops are ~40x rarer per epoch (the packet plane moves ~10^5
//     packets/epoch against the simulator's ~10^7 link crossings), so
//     quiet epochs are usually clean: quiet-clean pools near 0.8 against
//     the flow plane's ~0.13. The shared 0.02 bound holds trivially.
//   - Recall and accuracy carry more per-seed variance: DES replicas run
//     two orders of magnitude fewer flows, and ICMP rate limiting plus
//     TCP recovery can leave a marginally-active epoch with no traced
//     failure-crossing flow. The envelopes absorb this statistically —
//     the Wilson interval prices in the smaller pools — instead of
//     lowering any bound. Per-seed error clustering (one bad epoch can
//     cost several attribution trials at once) makes 4-seed pools swing
//     wide, so the packet plane pools 8 seeds per scenario.
//
// Packet repetitions pool 8 seeds over 12 epochs (a ~4s DES budget per
// scenario on one core); each repetition is an independent single-threaded
// replica fanned out across the worker pool.
var crossEnvelopes = []struct {
	flow   Envelope
	packet Envelope
}{
	{
		flow: Envelope{
			Scenario:      "intermittent-failure",
			MinPrecision:  0.45,
			MinRecall:     0.95,
			MinAccuracy:   0.97,
			MinQuietClean: 0.02,
		},
		packet: Envelope{Seeds: 8, Epochs: 12},
	},
	{
		flow: Envelope{
			Scenario:     "link-flap",
			MinPrecision: 0.75,
			MinRecall:    0.95,
			MinAccuracy:  0.97,
		},
		packet: Envelope{Seeds: 8, Epochs: 12},
	},
}

func TestCrossPlaneEnvelopes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed statistical sweep over both planes; skipped in -short mode")
	}
	for _, ce := range crossEnvelopes {
		ce := ce
		t.Run(ce.flow.Scenario, func(t *testing.T) {
			t.Parallel()
			cr, err := EvaluateCross(ce.flow, ce.packet, 0)
			if err != nil {
				t.Fatal(err)
			}
			if cr.Flow.Plane != engine.Flow || cr.Packet.Plane != engine.Packet {
				t.Fatalf("planes mislabeled: %q / %q", cr.Flow.Plane, cr.Packet.Plane)
			}
			if len(cr.Flow.Checks) == 0 || len(cr.Packet.Checks) == 0 {
				t.Fatal("cross evaluation produced no checks")
			}
			if len(cr.Flow.Checks) != len(cr.Packet.Checks) {
				t.Fatalf("check sets diverged: %d flow vs %d packet", len(cr.Flow.Checks), len(cr.Packet.Checks))
			}
			if !cr.Pass() {
				t.Fatalf("cross-plane conformance violated:\n%s", cr)
			}
			t.Log("\n" + cr.String())
		})
	}
}

func TestEvaluateCrossUnknownScenario(t *testing.T) {
	if _, err := EvaluateCross(Envelope{Scenario: "no-such"}, Envelope{}, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// The packet envelope must inherit every unset field from the flow
// envelope, so the suite compares like with like unless a difference is
// explicit.
func TestEvaluateCrossInheritsBounds(t *testing.T) {
	env := Envelope{
		Scenario:     "link-flap",
		Seeds:        2,
		Epochs:       3,
		MinPrecision: 0.01,
	}
	cr, err := EvaluateCross(env, Envelope{Epochs: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Flow.Seeds != 2 || cr.Packet.Seeds != 2 {
		t.Fatalf("seeds not inherited: %d / %d", cr.Flow.Seeds, cr.Packet.Seeds)
	}
	if len(cr.Packet.Checks) != 1 || cr.Packet.Checks[0].Metric != "precision" {
		t.Fatalf("bounds not inherited: %+v", cr.Packet.Checks)
	}
	if cr.Packet.Checks[0].Bound != 0.01 {
		t.Fatalf("bound not inherited: %v", cr.Packet.Checks[0].Bound)
	}
}
