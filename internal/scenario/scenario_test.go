package scenario

import (
	"reflect"
	"strings"
	"testing"

	"vigil/internal/engine"
	"vigil/internal/par"
	"vigil/internal/schedule"
	"vigil/internal/stats"
	"vigil/internal/topology"
)

func TestRegistryHasTheNamedScenarios(t *testing.T) {
	want := []string{
		"intermittent-failure", "link-flap", "failure-wave",
		"congestion-burst", "overlap-churn",
	}
	for _, name := range want {
		spec, ok := Find(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		if spec.Title == "" || spec.Epochs <= 0 {
			t.Fatalf("scenario %q has no title or epochs: %+v", name, spec)
		}
	}
	if got := len(All()); got < len(want) {
		t.Fatalf("All() returned %d scenarios, want at least %d", got, len(want))
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("no-such-scenario"); ok {
		t.Fatal("Find accepted an unknown name")
	}
}

// Every built-in scenario must run end to end, produce active epochs with
// ground truth, and keep its aggregate counts consistent with the per-epoch
// scores.
func TestBuiltinsRunAndAggregateConsistently(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(spec, Config{Seed: 21, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Epochs) != spec.Epochs {
				t.Fatalf("got %d epoch scores, want %d", len(res.Epochs), spec.Epochs)
			}
			if res.ActiveEpochs == 0 {
				t.Fatal("scenario scripted no active epochs")
			}
			var tp, fp, fn, correct, considered, active, quiet int
			for _, es := range res.Epochs {
				if len(es.ActiveLinks) > 0 {
					active++
					tp += es.Detection.TruePos
					fp += es.Detection.FalsePos
					fn += es.Detection.FalseNeg
				} else {
					quiet++
				}
				considered += es.FlowsScored
				correct += int(es.Accuracy*float64(es.FlowsScored) + 0.5)
			}
			if active != res.ActiveEpochs || quiet != res.QuietEpochs {
				t.Fatalf("epoch counts: active %d/%d quiet %d/%d", active, res.ActiveEpochs, quiet, res.QuietEpochs)
			}
			if tp != res.TruePos || fp != res.FalsePos || fn != res.FalseNeg {
				t.Fatalf("detection counts drifted: %d/%d %d/%d %d/%d", tp, res.TruePos, fp, res.FalsePos, fn, res.FalseNeg)
			}
			if considered != res.Considered || correct != res.Correct {
				t.Fatalf("accuracy counts drifted: %d/%d %d/%d", considered, res.Considered, correct, res.Correct)
			}
			if res.Precision < 0 || res.Precision > 1 || res.Recall < 0 || res.Recall > 1 || res.Accuracy < 0 || res.Accuracy > 1 {
				t.Fatalf("ratios out of range: %+v", res)
			}
		})
	}
}

// The determinism contract, extended to scripted scenarios: a named
// scenario's full multi-epoch result must be bit-identical at every
// Parallelism setting. (Acceptance criterion: at least two named scenarios.)
func TestScenarioBitIdenticalAcrossParallelism(t *testing.T) {
	for _, name := range []string{"intermittent-failure", "link-flap", "congestion-burst"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, ok := Find(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			run := func(p int) *Result {
				res, err := Run(spec, Config{Seed: 4242, Parallelism: p})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(1)
			drops := 0
			for _, es := range want.Epochs {
				drops += es.TotalDrops
			}
			if drops == 0 {
				t.Fatal("scenario produced no drops to compare")
			}
			for _, p := range []int{2, 8} {
				if got := run(p); !reflect.DeepEqual(want, got) {
					t.Fatalf("Parallelism %d changed the scenario result", p)
				}
			}
		})
	}
}

// Acceptance criterion of the plane-agnostic engine: every named scenario
// runs unmodified on the packet plane through the same Run code path, with
// active epochs and consistent aggregates.
func TestAllScenariosRunOnPacketPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-plane DES sweep; skipped in -short mode")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(spec, Config{Seed: 7, Epochs: 4, Plane: engine.Packet})
			if err != nil {
				t.Fatal(err)
			}
			if res.Plane != engine.Packet {
				t.Fatalf("result plane = %q", res.Plane)
			}
			if len(res.Epochs) != 4 {
				t.Fatalf("got %d epoch scores, want 4", len(res.Epochs))
			}
			if res.ActiveEpochs+res.QuietEpochs != 4 {
				t.Fatalf("epoch counts inconsistent: %+v", res)
			}
			if res.ActiveEpochs == 0 {
				t.Fatal("no active epochs on the packet plane")
			}
			drops := 0
			for _, es := range res.Epochs {
				drops += es.TotalDrops
			}
			if drops == 0 {
				t.Fatal("packet plane produced no drops")
			}
		})
	}
}

// sevenScaleTopo is §7 scale (40 servers) spread over two pods, with a T2
// spine so every named scenario's link picks resolve — the sharded DES
// path engages (TestClusterConfig itself is one pod with no spine, so it
// cannot host the L2-picking scenarios).
var sevenScaleTopo = topology.Config{Pods: 2, ToRsPerPod: 5, T1PerPod: 4, T2: 2, HostsPerToR: 4}

// The intra-replica mirror of the fan-out test below, and the tentpole's
// golden-hash gate at the scenario layer: every named scenario, on both
// the quick and §7-scale topologies, must land a bit-identical Result at
// every PacketWorkers setting of the pod-sharded DES — the single-threaded
// scheduler (workers 0) is the golden reference.
func TestPacketScenariosBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-plane DES sweep; skipped in -short mode")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, topoCfg := range []topology.Config{{}, sevenScaleTopo} {
				s := spec
				s.Topo = topoCfg // zero value defers to PacketQuickTopo
				run := func(workers int) *Result {
					res, err := Run(s, Config{Seed: 4242, Epochs: 3, Plane: engine.Packet, PacketWorkers: workers})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				want := run(0)
				drops := 0
				for _, es := range want.Epochs {
					drops += es.TotalDrops
				}
				if drops == 0 {
					t.Fatalf("pods=%d: scenario produced no drops to compare", s.Topo.Pods)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					if got := run(workers); !reflect.DeepEqual(want, got) {
						t.Fatalf("pods=%d PacketWorkers=%d changed the scenario result", s.Topo.Pods, workers)
					}
				}
			}
		})
	}
}

// The packet-plane determinism contract, mirror of
// TestScenarioBitIdenticalAcrossParallelism: the same seed and schedules
// must give bit-identical results across repeated runs AND across replica
// fan-out orderings — replicas run concurrently through the par pool at
// different worker counts must land exactly what sequential runs land.
func TestPacketScenarioBitIdenticalAcrossReplicaFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-plane DES sweep; skipped in -short mode")
	}
	spec, ok := Find("link-flap")
	if !ok {
		t.Fatal("link-flap not registered")
	}
	const replicas = 3
	sweep := func(workers int) []*Result {
		out := make([]*Result, replicas)
		err := par.ForEachErr(replicas, workers, func(i int) error {
			res, err := Run(spec, Config{Seed: 100 + uint64(i), Epochs: 5, Plane: engine.Packet})
			out[i] = res
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := sweep(1)
	drops := 0
	for _, res := range want {
		for _, es := range res.Epochs {
			drops += es.TotalDrops
		}
	}
	if drops == 0 {
		t.Fatal("packet replicas produced no drops to compare")
	}
	for _, workers := range []int{2, 4} {
		if got := sweep(workers); !reflect.DeepEqual(want, got) {
			t.Fatalf("replica fan-out over %d workers changed packet-plane results", workers)
		}
	}
}

// Same seed twice: identical result. Different seed: different script.
func TestScenarioSeedDiscipline(t *testing.T) {
	spec, _ := Find("link-flap")
	a, err := Run(spec, Config{Seed: 7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, Config{Seed: 7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different results")
	}
	c, err := Run(spec, Config{Seed: 8, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Epochs, c.Epochs) {
		t.Fatal("different seeds produced identical epoch scores")
	}
}

// The congestion-burst script must land on the downlinks of the ToR the
// workload actually floods.
func TestCongestionBurstTargetsTheHotSink(t *testing.T) {
	spec, _ := Find("congestion-burst")
	topo, err := topology.New(QuickTopo)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	w := spec.Workload(stats.DeriveRNG(seed, specDomain), topo)
	hot, ok := w.Pattern.(interface{ Name() string })
	if !ok || !strings.HasPrefix(hot.Name(), "hot-tor") {
		t.Fatalf("workload pattern is %T, want HotToR", w.Pattern)
	}
	script := spec.Script(stats.DeriveRNG(seed, specDomain), topo)
	if len(script) == 0 {
		t.Fatal("empty script")
	}
	// Recover the sink the workload drew by replaying its stream.
	rng := stats.DeriveRNG(seed, specDomain)
	sink := topo.ToR(rng.Intn(topo.Cfg.Pods), rng.Intn(topo.Cfg.ToRsPerPod))
	for _, ls := range script {
		if topo.Links[ls.Link].To != topology.SwitchNode(sink) {
			t.Fatalf("burst link %v does not terminate at the hot sink %v", ls.Link, sink)
		}
	}
}

func TestRunErrors(t *testing.T) {
	good := Spec{
		Name:   "t",
		Epochs: 2,
		Script: func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
			return []LinkSchedule{{Link: topo.LinksOfClass(topology.L1Up)[0], Schedule: schedule.ConstantRate{Rate: 0.01}}}
		},
	}
	cases := []struct {
		name string
		spec Spec
		cfg  Config
	}{
		{"zero epochs", func() Spec { s := good; s.Epochs = 0; return s }(), Config{}},
		{"bad topology", func() Spec { s := good; s.Topo = topology.Config{Pods: -1}; return s }(), Config{}},
		{"nil script", func() Spec { s := good; s.Script = nil; return s }(), Config{}},
		{"empty script", func() Spec {
			s := good
			s.Script = func(*stats.RNG, *topology.Topology) []LinkSchedule { return nil }
			return s
		}(), Config{}},
		{"unknown link", func() Spec {
			s := good
			s.Script = func(*stats.RNG, *topology.Topology) []LinkSchedule {
				return []LinkSchedule{{Link: 1 << 30, Schedule: schedule.ConstantRate{Rate: 0.01}}}
			}
			return s
		}(), Config{}},
		{"rate above 1", func() Spec {
			s := good
			s.Script = func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
				return []LinkSchedule{{Link: 0, Schedule: schedule.ConstantRate{Rate: 1.5}}}
			}
			return s
		}(), Config{}},
		{"negative rate", func() Spec {
			s := good
			s.Script = func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule {
				return []LinkSchedule{{Link: 0, Schedule: schedule.ConstantRate{Rate: -0.1}}}
			}
			return s
		}(), Config{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.spec, tc.cfg); err == nil {
				t.Fatal("error not reported")
			}
		})
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"empty name", Spec{}},
		{"duplicate", Spec{Name: "link-flap"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Register did not panic")
				}
			}()
			Register(tc.spec)
		})
	}
}
