// Package scenario is the dynamic failure-scenario engine: it scripts
// time-varying network conditions — link flaps, intermittent low-rate
// drops, rolling multi-link failure waves, congestion bursts under skewed
// traffic, failure churn — on top of the shared epoch-indexed rate
// schedules (internal/schedule), runs the full 007 cycle over the scripted
// epochs and scores every epoch against its own ground truth.
//
// Scenarios are plane-agnostic: the same Spec runs unmodified on the
// flow-level simulation plane (§6) or the packet-level cluster emulation
// (§7/§8) through one plane-agnostic epoch engine (internal/engine) —
// matching the extended paper (arXiv:1802.07222 §V), which validates the
// hardest dynamic regimes on both substrates. A Spec is a deterministic
// function of (seed, topology): running the same named scenario with the
// same seed yields bit-identical results at every Parallelism setting on
// the flow plane, at every PacketWorkers setting of the pod-sharded DES on
// the packet plane, and across repeated runs and replica fan-out orderings
// on either (DESIGN.md).
package scenario

import (
	"fmt"

	"vigil/internal/engine"
	"vigil/internal/metrics"
	"vigil/internal/schedule"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// LinkSchedule scripts one link's time-varying drop rate.
type LinkSchedule struct {
	Link     topology.LinkID
	Schedule schedule.RateSchedule
}

// Spec is a named, reusable scenario: a topology, a workload and a script
// of per-link rate schedules. The Workload and Script callbacks receive a
// scenario-private RNG derived from the run seed plus the built topology,
// so a Spec can pick random links/ToRs per run while staying deterministic
// for a fixed seed.
type Spec struct {
	Name  string
	Title string
	// Plane is the default substrate the scenario runs on when Config does
	// not choose one; empty means the flow plane.
	Plane engine.Plane
	// Epochs is the scripted duration; Config.Epochs can override it.
	Epochs int
	// Topo sizes the Clos; the zero value means the plane's quick-scale
	// evaluation topology (QuickTopo on the flow plane, PacketQuickTopo on
	// the packet plane — both fast enough for the conformance suite to
	// sweep seeds inside go test).
	Topo topology.Config
	// NoiseLo/NoiseHi bound good-link noise rates; both zero means the
	// paper's (0, 1e-6).
	NoiseLo, NoiseHi float64
	// TracerouteCap limits traced flows per host per epoch (0 = unlimited).
	TracerouteCap int
	// Workload builds the epoch workload; nil means the paper default
	// (uniform pattern, 60 conns/host, 100 packets/flow).
	Workload func(rng *stats.RNG, topo *topology.Topology) traffic.Workload
	// Script builds the scenario's link schedules.
	Script func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule
	// Detect overrides Algorithm 1 options; the zero value means the
	// paper's 1% threshold.
	Detect vote.DetectOptions
}

// QuickTopo is the default flow-plane scenario topology: the quick-scale
// Clos the experiment harness uses for smoke tests, small enough that a
// multi-seed conformance sweep fits in a test run.
var QuickTopo = topology.Config{Pods: 2, ToRsPerPod: 8, T1PerPod: 8, T2: 4, HostsPerToR: 8}

// PacketQuickTopo is the default packet-plane scenario topology: a two-pod
// Clos with every link class present (so every scenario's link picks
// resolve), sized so that a DES replica — which emulates each packet, ACK,
// probe and ICMP reply individually — runs a scripted multi-epoch scenario
// in well under a second.
var PacketQuickTopo = topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 2}

// Config parametrizes one scenario run.
type Config struct {
	// Seed drives every random choice of the run (workload, script, drops).
	Seed uint64
	// Epochs overrides Spec.Epochs when positive.
	Epochs int
	// Plane overrides the spec's substrate: engine.Flow or engine.Packet.
	// Empty defers to Spec.Plane (and ultimately the flow plane).
	Plane engine.Plane
	// Parallelism is the flow plane's epoch worker count; 0 means all
	// cores. Results are bit-identical at every setting. The packet plane
	// ignores it (replicas parallelize across seeds, not within).
	Parallelism int
	// PacketWorkers is the packet plane's pod-sharded DES worker count
	// (0 = single-threaded scheduler); results are bit-identical at every
	// setting. The flow plane ignores it.
	PacketWorkers int
}

// specDomain derives the scenario-construction stream from the run seed.
// Workload and Script receive *independent copies* of the same stream: a
// spec that must coordinate the two (e.g. congestion-burst floods the same
// ToR its script bursts) draws the shared choice first in both callbacks
// and gets identical values.
const specDomain = 0x9b1f0c4de2a7c1b5

// EpochScore is one epoch's outcome, scored against that epoch's ground
// truth (the links active under the script during the epoch).
type EpochScore struct {
	Epoch int
	// ActiveLinks are the scripted failures live this epoch, sorted.
	ActiveLinks []topology.LinkID
	// Detected is Algorithm 1's output, in blame order.
	Detected []topology.LinkID
	// Detection scores Detected against ActiveLinks.
	Detection metrics.Detection
	// Accuracy is the share of failure-crossing flows blamed correctly; 1
	// when no flow crossed an active failure.
	Accuracy float64
	// FlowsScored counts the failure-crossing flows behind Accuracy.
	FlowsScored int
	FailedFlows int
	TotalDrops  int
}

// Result aggregates a full scenario run. The binomial counts (TruePos,
// FalsePos, FalseNeg, Correct, Considered, QuietClean/QuietEpochs) are the
// conformance suite's raw material: summing them across seeds gives the
// trials behind each statistical envelope.
type Result struct {
	Name string
	// Plane records the substrate the run executed on.
	Plane  engine.Plane
	Epochs []EpochScore

	// ActiveEpochs counts epochs with at least one scripted failure live;
	// QuietEpochs the rest. QuietClean counts quiet epochs in which
	// Algorithm 1 correctly detected nothing.
	ActiveEpochs int
	QuietEpochs  int
	QuietClean   int

	// Detection counts summed over epochs.
	TruePos, FalsePos, FalseNeg int
	// Flow-attribution counts summed over epochs.
	Correct, Considered int

	// Precision/Recall/Accuracy are the aggregate ratios of the counts
	// above (1 when the denominator is empty).
	Precision, Recall, Accuracy float64
}

// ratio returns num/den, or 1 for an empty denominator (no opportunity to
// be wrong), matching metrics' conventions.
func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Prepared is a scenario built and scripted but not yet driven: the epoch
// engine with every schedule attached, ready for any driver — Run's batch
// loop, or a streaming service that settles the same engine's epochs
// downstream (internal/ingest).
type Prepared struct {
	Name   string
	Plane  engine.Plane
	Epochs int
	Engine engine.Engine
}

// Prepare builds a scenario run up to (but not including) its first epoch:
// topology, workload, engine, validated script.
func Prepare(spec Spec, cfg Config) (*Prepared, error) {
	plane := cfg.Plane
	if plane == "" {
		plane = spec.Plane
	}
	if plane == "" {
		plane = engine.Flow
	}
	if !plane.Valid() {
		return nil, fmt.Errorf("scenario %q: unknown plane %q", spec.Name, plane)
	}
	epochs := spec.Epochs
	if cfg.Epochs > 0 {
		epochs = cfg.Epochs
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("scenario %q: non-positive epoch count %d", spec.Name, epochs)
	}
	topoCfg := spec.Topo
	if topoCfg == (topology.Config{}) {
		topoCfg = QuickTopo
		if plane == engine.Packet {
			topoCfg = PacketQuickTopo
		}
	}
	topo, err := topology.New(topoCfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	var w traffic.Workload // zero Pattern: the engine's plane default
	if spec.Workload != nil {
		w = spec.Workload(stats.DeriveRNG(cfg.Seed, specDomain), topo)
	}
	eng, err := engine.New(engine.Config{
		Plane:         plane,
		Topo:          topo,
		Workload:      w,
		NoiseLo:       spec.NoiseLo,
		NoiseHi:       spec.NoiseHi,
		TracerouteCap: spec.TracerouteCap,
		Seed:          cfg.Seed,
		Parallelism:   cfg.Parallelism,
		PacketWorkers: cfg.PacketWorkers,
		Detect:        spec.Detect,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	if spec.Script == nil {
		return nil, fmt.Errorf("scenario %q: nil Script", spec.Name)
	}
	script := spec.Script(stats.DeriveRNG(cfg.Seed, specDomain), topo)
	if len(script) == 0 {
		return nil, fmt.Errorf("scenario %q: empty script", spec.Name)
	}
	// Validate the whole script up front: every scheduled rate over the
	// scripted horizon must be a probability, and every link must exist.
	// RateSchedules are pure, so probing costs nothing but arithmetic.
	for _, ls := range script {
		if ls.Link < 0 || int(ls.Link) >= len(topo.Links) {
			return nil, fmt.Errorf("scenario %q: schedule on unknown link %d", spec.Name, ls.Link)
		}
		if err := schedule.Probe(ls.Schedule, epochs); err != nil {
			return nil, fmt.Errorf("scenario %q: link %d: %w", spec.Name, ls.Link, err)
		}
		if err := eng.Schedule(ls.Link, ls.Schedule); err != nil {
			return nil, fmt.Errorf("scenario %q: link %d: %w", spec.Name, ls.Link, err)
		}
	}
	return &Prepared{Name: spec.Name, Plane: plane, Epochs: epochs, Engine: eng}, nil
}

// Scorer folds a run's EpochResults into a Result — the scoring half of
// Run, split out so any epoch driver (the batch loop here, or a streaming
// ingest service feeding settled epochs) scores through one code path.
// Feed epochs in order; a Scorer is not safe for concurrent Add.
type Scorer struct {
	res *Result
}

// Scorer returns a fresh scorer for this prepared run.
func (p *Prepared) Scorer() *Scorer {
	return &Scorer{res: &Result{
		Name:   p.Name,
		Plane:  p.Plane,
		Epochs: make([]EpochScore, 0, p.Epochs),
	}}
}

// Add scores one epoch against its own ground truth and folds it in.
func (s *Scorer) Add(er *engine.EpochResult) {
	res := s.res
	score := metrics.ScoreVerdicts(er.Verdicts, er.Truth)
	det := metrics.ScoreDetection(er.Detected, er.FailedLinks)
	active := make([]topology.LinkID, len(er.FailedLinks))
	copy(active, er.FailedLinks)
	es := EpochScore{
		Epoch:       er.Epoch,
		ActiveLinks: active,
		Detected:    er.Detected,
		Detection:   det,
		Accuracy:    score.Accuracy(),
		FlowsScored: score.Considered,
		FailedFlows: er.FailedFlows,
		TotalDrops:  er.TotalDrops,
	}
	res.Epochs = append(res.Epochs, es)
	if len(active) > 0 {
		res.ActiveEpochs++
		res.TruePos += det.TruePos
		res.FalsePos += det.FalsePos
		res.FalseNeg += det.FalseNeg
	} else {
		res.QuietEpochs++
		if len(er.Detected) == 0 {
			res.QuietClean++
		}
	}
	res.Correct += score.Correct
	res.Considered += score.Considered
}

// Finish computes the aggregate ratios and returns the result.
func (s *Scorer) Finish() *Result {
	res := s.res
	res.Precision = ratio(res.TruePos, res.TruePos+res.FalsePos)
	res.Recall = ratio(res.TruePos, res.TruePos+res.FalseNeg)
	res.Accuracy = ratio(res.Correct, res.Considered)
	return res
}

// Run executes one scenario: build the topology, derive the workload and
// script from the seed, construct the epoch engine for the chosen plane,
// then drive, analyze and score Epochs rounds — one code path for both the
// flow-level simulator and the packet-level cluster emulation.
func Run(spec Spec, cfg Config) (*Result, error) {
	p, err := Prepare(spec, cfg)
	if err != nil {
		return nil, err
	}
	sc := p.Scorer()
	for e := 0; e < p.Epochs; e++ {
		sc.Add(p.Engine.RunEpoch())
	}
	return sc.Finish(), nil
}

// ---- registry ----

var registry []Spec

// Register adds a named scenario. It panics on a duplicate or empty name —
// registration happens from init functions, where a bad registry is a
// programming error.
func Register(spec Spec) {
	if spec.Name == "" {
		panic("scenario: Register with empty name")
	}
	for _, s := range registry {
		if s.Name == spec.Name {
			panic("scenario: duplicate registration of " + spec.Name)
		}
	}
	registry = append(registry, spec)
}

// All returns every registered scenario in registration order.
func All() []Spec { return append([]Spec(nil), registry...) }

// Find returns the scenario with the given name.
func Find(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
