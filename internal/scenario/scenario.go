// Package scenario is the dynamic failure-scenario engine: it scripts
// time-varying network conditions — link flaps, intermittent low-rate
// drops, rolling multi-link failure waves, congestion bursts under skewed
// traffic, failure churn — on top of netem's epoch-indexed rate schedules,
// runs the full 007 cycle over the scripted epochs and scores every epoch
// against its own ground truth.
//
// The paper's evaluation (§6.3, Figs. 8–9) and the extended version
// (arXiv:1802.07222) judge 007 exactly on these regimes; a static one-epoch
// drop-rate sweep cannot reproduce them. A Spec is a deterministic function
// of (seed, topology): running the same named scenario with the same seed
// yields bit-identical results at every Parallelism setting, inheriting the
// epoch engine's determinism contract (DESIGN.md).
package scenario

import (
	"fmt"
	"math"

	"vigil/internal/analysis"
	"vigil/internal/metrics"
	"vigil/internal/netem"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// LinkSchedule scripts one link's time-varying drop rate.
type LinkSchedule struct {
	Link     topology.LinkID
	Schedule netem.RateSchedule
}

// Spec is a named, reusable scenario: a topology, a workload and a script
// of per-link rate schedules. The Workload and Script callbacks receive a
// scenario-private RNG derived from the run seed plus the built topology,
// so a Spec can pick random links/ToRs per run while staying deterministic
// for a fixed seed.
type Spec struct {
	Name  string
	Title string
	// Epochs is the scripted duration; Config.Epochs can override it.
	Epochs int
	// Topo sizes the simulated Clos; the zero value means the quick-scale
	// evaluation topology (2 pods, 8 ToRs/pod — fast enough for the
	// conformance suite to sweep seeds inside go test).
	Topo topology.Config
	// NoiseLo/NoiseHi bound good-link noise rates; both zero means the
	// paper's (0, 1e-6).
	NoiseLo, NoiseHi float64
	// TracerouteCap limits traced flows per host per epoch (0 = unlimited).
	TracerouteCap int
	// Workload builds the epoch workload; nil means the paper default
	// (uniform pattern, 60 conns/host, 100 packets/flow).
	Workload func(rng *stats.RNG, topo *topology.Topology) traffic.Workload
	// Script builds the scenario's link schedules.
	Script func(rng *stats.RNG, topo *topology.Topology) []LinkSchedule
	// Detect overrides Algorithm 1 options; the zero value means the
	// paper's 1% threshold.
	Detect vote.DetectOptions
}

// QuickTopo is the default scenario topology: the quick-scale Clos the
// experiment harness uses for smoke tests, small enough that a multi-seed
// conformance sweep fits in a test run.
var QuickTopo = topology.Config{Pods: 2, ToRsPerPod: 8, T1PerPod: 8, T2: 4, HostsPerToR: 8}

// Config parametrizes one scenario run.
type Config struct {
	// Seed drives every random choice of the run (workload, script, drops).
	Seed uint64
	// Epochs overrides Spec.Epochs when positive.
	Epochs int
	// Parallelism is the epoch engine worker count; 0 means all cores.
	// Results are bit-identical at every setting.
	Parallelism int
}

// specDomain derives the scenario-construction stream from the run seed.
// Workload and Script receive *independent copies* of the same stream: a
// spec that must coordinate the two (e.g. congestion-burst floods the same
// ToR its script bursts) draws the shared choice first in both callbacks
// and gets identical values.
const specDomain = 0x9b1f0c4de2a7c1b5

// EpochScore is one epoch's outcome, scored against that epoch's ground
// truth (the links active under the script during the epoch).
type EpochScore struct {
	Epoch int
	// ActiveLinks are the scripted failures live this epoch, sorted.
	ActiveLinks []topology.LinkID
	// Detected is Algorithm 1's output, in blame order.
	Detected []topology.LinkID
	// Detection scores Detected against ActiveLinks.
	Detection metrics.Detection
	// Accuracy is the share of failure-crossing flows blamed correctly; 1
	// when no flow crossed an active failure.
	Accuracy float64
	// FlowsScored counts the failure-crossing flows behind Accuracy.
	FlowsScored int
	FailedFlows int
	TotalDrops  int
}

// Result aggregates a full scenario run. The binomial counts (TruePos,
// FalsePos, FalseNeg, Correct, Considered, QuietClean/QuietEpochs) are the
// conformance suite's raw material: summing them across seeds gives the
// trials behind each statistical envelope.
type Result struct {
	Name   string
	Epochs []EpochScore

	// ActiveEpochs counts epochs with at least one scripted failure live;
	// QuietEpochs the rest. QuietClean counts quiet epochs in which
	// Algorithm 1 correctly detected nothing.
	ActiveEpochs int
	QuietEpochs  int
	QuietClean   int

	// Detection counts summed over epochs.
	TruePos, FalsePos, FalseNeg int
	// Flow-attribution counts summed over epochs.
	Correct, Considered int

	// Precision/Recall/Accuracy are the aggregate ratios of the counts
	// above (1 when the denominator is empty).
	Precision, Recall, Accuracy float64
}

// ratio returns num/den, or 1 for an empty denominator (no opportunity to
// be wrong), matching metrics' conventions.
func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Run executes one scenario: build the topology, derive the workload and
// script from the seed, then simulate, analyze and score Epochs rounds.
func Run(spec Spec, cfg Config) (*Result, error) {
	epochs := spec.Epochs
	if cfg.Epochs > 0 {
		epochs = cfg.Epochs
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("scenario %q: non-positive epoch count %d", spec.Name, epochs)
	}
	topoCfg := spec.Topo
	if topoCfg == (topology.Config{}) {
		topoCfg = QuickTopo
	}
	topo, err := topology.New(topoCfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	w := traffic.DefaultWorkload()
	if spec.Workload != nil {
		w = spec.Workload(stats.DeriveRNG(cfg.Seed, specDomain), topo)
	}
	noiseHi := spec.NoiseHi
	if noiseHi == 0 && spec.NoiseLo == 0 {
		noiseHi = 1e-6
	}
	sim, err := netem.New(netem.Config{
		Topo:          topo,
		Workload:      w,
		NoiseLo:       spec.NoiseLo,
		NoiseHi:       noiseHi,
		TracerouteCap: spec.TracerouteCap,
		Seed:          cfg.Seed,
		Parallelism:   cfg.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	if spec.Script == nil {
		return nil, fmt.Errorf("scenario %q: nil Script", spec.Name)
	}
	script := spec.Script(stats.DeriveRNG(cfg.Seed, specDomain), topo)
	if len(script) == 0 {
		return nil, fmt.Errorf("scenario %q: empty script", spec.Name)
	}
	// Validate the whole script up front: every scheduled rate over the
	// scripted horizon must be a probability, and every link must exist.
	// RateSchedules are pure, so probing costs nothing but arithmetic.
	for _, ls := range script {
		if ls.Link < 0 || int(ls.Link) >= len(topo.Links) {
			return nil, fmt.Errorf("scenario %q: schedule on unknown link %d", spec.Name, ls.Link)
		}
		for e := 0; e < epochs; e++ {
			rate, active := ls.Schedule.RateAt(e)
			if active && (math.IsNaN(rate) || rate < 0 || rate > 1) {
				return nil, fmt.Errorf("scenario %q: link %d epoch %d: drop rate %v outside [0,1]", spec.Name, ls.Link, e, rate)
			}
		}
		sim.Schedule(ls.Link, ls.Schedule)
	}

	detect := spec.Detect
	if detect.ThresholdFrac == 0 {
		detect.ThresholdFrac = 0.01
	}

	res := &Result{Name: spec.Name, Epochs: make([]EpochScore, 0, epochs)}
	for e := 0; e < epochs; e++ {
		ep := sim.RunEpoch()
		an := analysis.Analyze(ep.Reports, analysis.Options{Detect: detect, Parallelism: cfg.Parallelism})
		score := metrics.ScoreVerdicts(an.Verdicts, ep.Truth())
		det := metrics.ScoreDetection(an.Detected, ep.FailedLinks)
		active := make([]topology.LinkID, len(ep.FailedLinks))
		copy(active, ep.FailedLinks)
		es := EpochScore{
			Epoch:       e,
			ActiveLinks: active,
			Detected:    an.Detected,
			Detection:   det,
			Accuracy:    score.Accuracy(),
			FlowsScored: score.Considered,
			FailedFlows: len(ep.Failed),
			TotalDrops:  ep.TotalDrops,
		}
		res.Epochs = append(res.Epochs, es)
		if len(active) > 0 {
			res.ActiveEpochs++
			res.TruePos += det.TruePos
			res.FalsePos += det.FalsePos
			res.FalseNeg += det.FalseNeg
		} else {
			res.QuietEpochs++
			if len(an.Detected) == 0 {
				res.QuietClean++
			}
		}
		res.Correct += score.Correct
		res.Considered += score.Considered
	}
	res.Precision = ratio(res.TruePos, res.TruePos+res.FalsePos)
	res.Recall = ratio(res.TruePos, res.TruePos+res.FalseNeg)
	res.Accuracy = ratio(res.Correct, res.Considered)
	return res, nil
}

// ---- registry ----

var registry []Spec

// Register adds a named scenario. It panics on a duplicate or empty name —
// registration happens from init functions, where a bad registry is a
// programming error.
func Register(spec Spec) {
	if spec.Name == "" {
		panic("scenario: Register with empty name")
	}
	for _, s := range registry {
		if s.Name == spec.Name {
			panic("scenario: duplicate registration of " + spec.Name)
		}
	}
	registry = append(registry, spec)
}

// All returns every registered scenario in registration order.
func All() []Spec { return append([]Spec(nil), registry...) }

// Find returns the scenario with the given name.
func Find(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
