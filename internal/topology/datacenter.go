package topology

import "fmt"

// DatacenterConfig sizes a multi-cluster Clos: Clusters groups of
// PodsPerCluster pods, every pod a standard two-tier (ToR/T1) unit, all
// pods meshed through the shared global T2 spine. This is the datacenter
// shape of the paper's §7 deployment — many per-cluster Clos fabrics whose
// T1 switches uplink into one spine layer — as opposed to the single
// evaluation fabric of §6.
//
// Structurally a cluster is a named contiguous pod range: the flat Clos
// builder already supports arbitrarily many pods on a shared spine, so
// Flatten produces the equivalent single-fabric Config and NewDatacenter
// builds it through the ordinary constructor. What the type adds is the
// datacenter vocabulary (cluster count, pods per cluster, cluster-of-pod
// arithmetic) and a scale: DatacenterSimConfig crosses the 100k directed
// link mark that the incremental flow plane (netem.Config.Incremental) and
// the datacenter benchmarks target.
type DatacenterConfig struct {
	Clusters       int // pod groups sharing the global spine
	PodsPerCluster int
	ToRsPerPod     int // n0
	T1PerPod       int // n1
	T2             int // n2 (global spine width)
	HostsPerToR    int // H
}

// DatacenterSimConfig is the reference datacenter fabric of the scaling
// benchmarks: 8 clusters × 3 pods = 24 pods, 34,560 hosts, 142,848
// directed links, and — at the paper's default 60 connections per host —
// 2,073,600 flows per epoch.
var DatacenterSimConfig = DatacenterConfig{
	Clusters:       8,
	PodsPerCluster: 3,
	ToRsPerPod:     48,
	T1PerPod:       16,
	T2:             48,
	HostsPerToR:    30,
}

// DatacenterPacketConfig is the packet plane's scale target: the same
// multi-cluster address plan as DatacenterSimConfig, resized for
// packet-granularity emulation. 8 clusters × 4 pods = 32 pods (so the
// sharded DES gets 32 shards and worker counts up to the core count have
// real work), 256 hosts, 3,584 directed links. The flow plane scores
// ~2M flows per epoch on DatacenterSimConfig by sampling per-flow
// outcomes; the packet plane emulates every data packet and ACK, so its
// datacenter fabric trades radix for pod count — the dimension the
// conservative window protocol actually shards on.
var DatacenterPacketConfig = DatacenterConfig{
	Clusters:       8,
	PodsPerCluster: 4,
	ToRsPerPod:     4,
	T1PerPod:       4,
	T2:             8,
	HostsPerToR:    2,
}

// Validate reports whether the configuration describes a buildable
// datacenter: positive cluster sizing, and the flattened fabric within the
// flat builder's address-plan limits.
func (c DatacenterConfig) Validate() error {
	if c.Clusters < 1 {
		return fmt.Errorf("topology: need at least 1 cluster, have %d", c.Clusters)
	}
	if c.PodsPerCluster < 1 {
		return fmt.Errorf("topology: need at least 1 pod per cluster, have %d", c.PodsPerCluster)
	}
	return c.Flatten().Validate()
}

// Flatten returns the single-fabric Config equivalent to the datacenter:
// cluster k owns the contiguous pods [k·PodsPerCluster, (k+1)·PodsPerCluster).
func (c DatacenterConfig) Flatten() Config {
	return Config{
		Pods:        c.Clusters * c.PodsPerCluster,
		ToRsPerPod:  c.ToRsPerPod,
		T1PerPod:    c.T1PerPod,
		T2:          c.T2,
		HostsPerToR: c.HostsPerToR,
	}
}

// Pods returns the total pod count.
func (c DatacenterConfig) Pods() int { return c.Clusters * c.PodsPerCluster }

// Hosts returns the total host count.
func (c DatacenterConfig) Hosts() int { return c.Flatten().Hosts() }

// DirectedLinks returns the closed-form number of directed links.
func (c DatacenterConfig) DirectedLinks() int { return c.Flatten().DirectedLinks() }

// ClusterOfPod returns which cluster owns pod p.
func (c DatacenterConfig) ClusterOfPod(p int) int { return p / c.PodsPerCluster }

// PodRange returns the half-open pod index range [lo, hi) of cluster k.
func (c DatacenterConfig) PodRange(k int) (lo, hi int) {
	return k * c.PodsPerCluster, (k + 1) * c.PodsPerCluster
}

// NewDatacenter builds the multi-cluster fabric. The result is an ordinary
// *Topology — every consumer (routing, traffic, both planes) works
// unchanged; Cfg holds the flattened pod view.
func NewDatacenter(cfg DatacenterConfig) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return New(cfg.Flatten())
}
