package topology_test

import (
	"testing"

	"vigil/internal/ecmp"
	"vigil/internal/stats"
	"vigil/internal/topology"
)

// The reference datacenter fabric must actually be datacenter-scale: past
// the 100k directed-link mark the scaling work targets, with the closed
// forms agreeing with the flattened view.
func TestDatacenterSimConfigScale(t *testing.T) {
	c := topology.DatacenterSimConfig
	if got := c.DirectedLinks(); got != 142848 {
		t.Fatalf("DatacenterSimConfig.DirectedLinks() = %d, want 142848", got)
	}
	if c.DirectedLinks() < 100_000 {
		t.Fatalf("reference datacenter below the 100k-link mark: %d", c.DirectedLinks())
	}
	if got, want := c.Hosts(), 34560; got != want {
		t.Fatalf("Hosts() = %d, want %d", got, want)
	}
	if got, want := c.Pods(), 24; got != want {
		t.Fatalf("Pods() = %d, want %d", got, want)
	}
	if got, want := c.DirectedLinks(), c.Flatten().DirectedLinks(); got != want {
		t.Fatalf("DirectedLinks disagrees with flattened view: %d vs %d", got, want)
	}
}

// The packet plane's datacenter target keeps the multi-cluster shape but
// trades radix for pod count: 32 pods is 32 DES shards, the axis the
// conservative window protocol parallelizes over, while 256 hosts keeps a
// full packet-granularity epoch tractable in CI.
func TestDatacenterPacketConfigScale(t *testing.T) {
	c := topology.DatacenterPacketConfig
	if err := c.Validate(); err != nil {
		t.Fatalf("packet config rejected: %v", err)
	}
	if got := c.Pods(); got < 32 {
		t.Fatalf("Pods() = %d, want >= 32 (the sharding scale target)", got)
	}
	if got, want := c.Hosts(), 256; got != want {
		t.Fatalf("Hosts() = %d, want %d", got, want)
	}
	if got, want := c.DirectedLinks(), 3584; got != want {
		t.Fatalf("DirectedLinks() = %d, want %d", got, want)
	}
	topo, err := topology.NewDatacenter(c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := topo.Cfg.Pods, c.Pods(); got != want {
		t.Fatalf("flattened pods = %d, want %d", got, want)
	}
	// Every pod must land on its own shard at full width, so a 32-worker
	// scheduler gets 32 singleton shards.
	hostShard, _ := topo.ShardMap(c.Pods())
	seen := make(map[int32]bool)
	for _, sh := range hostShard {
		seen[sh] = true
	}
	if len(seen) != c.Pods() {
		t.Fatalf("host shards span %d shards, want %d", len(seen), c.Pods())
	}
}

func TestDatacenterValidate(t *testing.T) {
	bad := []topology.DatacenterConfig{
		{Clusters: 0, PodsPerCluster: 1, ToRsPerPod: 2, T1PerPod: 2, T2: 2, HostsPerToR: 2},
		{Clusters: 1, PodsPerCluster: 0, ToRsPerPod: 2, T1PerPod: 2, T2: 2, HostsPerToR: 2},
		// Flattened pod count over the address plan's 199-pod limit.
		{Clusters: 100, PodsPerCluster: 2, ToRsPerPod: 2, T1PerPod: 2, T2: 2, HostsPerToR: 2},
		// Invalid inner fabric.
		{Clusters: 2, PodsPerCluster: 2, ToRsPerPod: 0, T1PerPod: 2, T2: 2, HostsPerToR: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid datacenter config accepted: %+v", i, c)
		}
		if _, err := topology.NewDatacenter(c); err == nil {
			t.Errorf("case %d: NewDatacenter accepted %+v", i, c)
		}
	}
	if err := topology.DatacenterSimConfig.Validate(); err != nil {
		t.Fatalf("reference config rejected: %v", err)
	}
}

func TestDatacenterClusterArithmetic(t *testing.T) {
	c := topology.DatacenterConfig{Clusters: 4, PodsPerCluster: 3, ToRsPerPod: 2, T1PerPod: 2, T2: 2, HostsPerToR: 2}
	for k := 0; k < c.Clusters; k++ {
		lo, hi := c.PodRange(k)
		if hi-lo != c.PodsPerCluster {
			t.Fatalf("cluster %d spans %d pods, want %d", k, hi-lo, c.PodsPerCluster)
		}
		for p := lo; p < hi; p++ {
			if got := c.ClusterOfPod(p); got != k {
				t.Fatalf("ClusterOfPod(%d) = %d, want %d", p, got, k)
			}
		}
	}
	if _, hi := c.PodRange(c.Clusters - 1); hi != c.Pods() {
		t.Fatalf("last cluster ends at pod %d, want %d", hi, c.Pods())
	}
}

// Build the full reference datacenter once and check the structural
// invariants at scale: link count, per-tier radix, and the arithmetic
// LookupIP inverse round-tripping every node's address.
func TestDatacenterBuildInvariants(t *testing.T) {
	c := topology.DatacenterSimConfig
	topo, err := topology.NewDatacenter(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Links); got != c.DirectedLinks() {
		t.Fatalf("built %d directed links, want closed-form %d", got, c.DirectedLinks())
	}
	if got := len(topo.Hosts); got != c.Hosts() {
		t.Fatalf("built %d hosts, want %d", got, c.Hosts())
	}
	// Radix: every ToR uplinks to each of its pod's T1s and downlinks to
	// its hosts; every T1 uplinks to the whole shared spine; every T2
	// downlinks to every pod's T1s — the property that makes the cluster
	// fabrics one datacenter rather than disjoint islands.
	for _, sw := range topo.Switches {
		var wantUp, wantDown int
		switch sw.Tier {
		case topology.TierToR:
			wantUp, wantDown = c.T1PerPod, c.HostsPerToR
		case topology.TierT1:
			wantUp, wantDown = c.T2, c.ToRsPerPod
		case topology.TierT2:
			wantUp, wantDown = 0, c.Pods()*c.T1PerPod
		}
		if len(sw.Uplinks) != wantUp || len(sw.Downlinks) != wantDown {
			t.Fatalf("%s radix %d up / %d down, want %d/%d",
				sw.Name, len(sw.Uplinks), len(sw.Downlinks), wantUp, wantDown)
		}
	}
	// LookupIP round-trip over every node at datacenter scale.
	for i := range topo.Hosts {
		h := topology.HostID(i)
		n, ok := topo.LookupIP(topo.Hosts[h].IP)
		if !ok || n != topology.HostNode(h) {
			t.Fatalf("host %d failed the LookupIP round-trip", h)
		}
	}
	for _, sw := range topo.Switches {
		n, ok := topo.LookupIP(sw.IP)
		if !ok || n != topology.SwitchNode(sw.ID) {
			t.Fatalf("%s failed the LookupIP round-trip", sw.Name)
		}
	}
}

// Cross-cluster routing sanity: an ECMP path between hosts in different
// clusters traverses the shared spine (host→ToR→T1→T2→T1→ToR→host), and
// every hop is a real consecutive link.
func TestDatacenterCrossClusterRouting(t *testing.T) {
	c := topology.DatacenterConfig{Clusters: 3, PodsPerCluster: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 4, HostsPerToR: 3}
	topo, err := topology.NewDatacenter(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	router := ecmp.NewRouter(topo, ecmp.NewSeeds(topo, rng.Split()))
	src := topo.HostAt(0, 0, 0) // cluster 0
	lo, _ := c.PodRange(2)
	dst := topo.HostAt(lo, 1, 2) // cluster 2
	tuple := ecmp.FiveTuple{SrcIP: topo.Hosts[src].IP, DstIP: topo.Hosts[dst].IP, SrcPort: 40000, DstPort: 443, Proto: ecmp.ProtoTCP}
	var buf ecmp.PathBuf
	if err := router.PathInto(src, dst, tuple, &buf); err != nil {
		t.Fatal(err)
	}
	links := buf.Links()
	if len(links) != 6 {
		t.Fatalf("cross-cluster path has %d links, want 6 (up through the spine and down)", len(links))
	}
	for i := 1; i < len(links); i++ {
		if topo.Links[links[i]].From != topo.Links[links[i-1]].To {
			t.Fatalf("path hop %d does not continue from hop %d", i, i-1)
		}
	}
	spine := topo.Links[links[2]].To
	if spine.Kind != topology.NodeSwitch || topo.Switches[spine.ID].Tier != topology.TierT2 {
		t.Fatalf("cross-cluster path does not peak at the shared T2 spine (peak %v)", spine)
	}
}
