// Package topology models the Clos datacenter topology of the 007 paper
// (Definition 1): npod pods, each with n0 top-of-rack (ToR) switches and n1
// tier-1 switches connected as a complete bipartite graph ("level 1" links),
// and n2 tier-2 switches connected to every tier-1 switch of every pod
// ("level 2" links). H hosts sit under each ToR.
//
// All links are directed: the paper's voting scheme, failure injection and
// evaluation (Figure 11) distinguish, e.g., a ToR→T1 link from its T1→ToR
// reverse. The paper's default simulator topology — 2 pods, 20 ToRs per pod,
// 10 T1s per pod, 20 T2s and 32 hosts per ToR — yields the 4160 directed
// links quoted in §6.
package topology

import (
	"fmt"
)

// Tier identifies a switch layer.
type Tier uint8

// Switch tiers, bottom-up.
const (
	TierToR Tier = iota
	TierT1
	TierT2
)

// String returns the conventional name for the tier.
func (t Tier) String() string {
	switch t {
	case TierToR:
		return "ToR"
	case TierT1:
		return "T1"
	case TierT2:
		return "T2"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// SwitchID indexes Topology.Switches.
type SwitchID int32

// HostID indexes Topology.Hosts.
type HostID int32

// LinkID indexes Topology.Links.
type LinkID int32

// NoLink marks an absent link.
const NoLink LinkID = -1

// NodeKind distinguishes link endpoints.
type NodeKind uint8

// Link endpoint kinds.
const (
	NodeHost NodeKind = iota
	NodeSwitch
)

// Node is a link endpoint: either a host or a switch.
type Node struct {
	Kind NodeKind
	ID   int32 // HostID or SwitchID, per Kind
}

// HostNode returns the Node for host h.
func HostNode(h HostID) Node { return Node{Kind: NodeHost, ID: int32(h)} }

// SwitchNode returns the Node for switch s.
func SwitchNode(s SwitchID) Node { return Node{Kind: NodeSwitch, ID: int32(s)} }

// LinkClass identifies a directed link's position in the Clos fabric.
type LinkClass uint8

// Directed link classes: "Up" points away from hosts, "Down" toward them.
const (
	HostUp   LinkClass = iota // host → ToR
	HostDown                  // ToR → host
	L1Up                      // ToR → T1 (the paper's "level 1", upward)
	L1Down                    // T1 → ToR
	L2Up                      // T1 → T2 (the paper's "level 2", upward)
	L2Down                    // T2 → T1
)

// String names the link class the way the paper's Figure 11 does.
func (c LinkClass) String() string {
	switch c {
	case HostUp:
		return "host-ToR"
	case HostDown:
		return "ToR-host"
	case L1Up:
		return "ToR-T1"
	case L1Down:
		return "T1-ToR"
	case L2Up:
		return "T1-T2"
	case L2Down:
		return "T2-T1"
	}
	return fmt.Sprintf("LinkClass(%d)", uint8(c))
}

// Switch is one network switch.
type Switch struct {
	ID    SwitchID
	Tier  Tier
	Pod   int // -1 for tier-2 switches, which belong to no pod
	Index int // index within the pod (ToR, T1) or globally (T2)
	Name  string
	IP    uint32 // loopback address; the source of ICMP TTL-exceeded replies

	// Uplinks lists links toward higher tiers, ordered by peer index:
	// ToR.Uplinks[j] reaches the pod's j-th T1; T1.Uplinks[l] reaches T2 l.
	// T2 switches have none.
	Uplinks []LinkID
	// Downlinks lists links toward lower tiers, ordered by peer index:
	// ToR.Downlinks[h] reaches host h under it; T1.Downlinks[i] reaches the
	// pod's i-th ToR; T2.Downlinks[s*T1PerPod+j] reaches T1 j of pod s.
	Downlinks []LinkID
}

// Host is one end host (a hypervisor in the paper's setting).
type Host struct {
	ID       HostID
	ToR      SwitchID
	Pod      int
	Index    int // index under the ToR
	Name     string
	IP       uint32
	Uplink   LinkID // host → ToR
	Downlink LinkID // ToR → host
}

// Link is one directed link.
type Link struct {
	ID       LinkID
	Class    LinkClass
	From, To Node
	Reverse  LinkID // the opposite direction of the same physical link
}

// Config sizes a Clos topology using the paper's notation.
type Config struct {
	Pods        int // npod
	ToRsPerPod  int // n0
	T1PerPod    int // n1
	T2          int // n2 (global)
	HostsPerToR int // H
}

// DefaultSimConfig is the topology of the paper's §6 simulations: "4160
// links, 2 pods, and 20 ToRs per pod". The paper does not spell out n1, n2
// and H; this decomposition reproduces the 4160 directed links while
// satisfying Theorem 3's structural conditions (n0 ≥ 2·n2,
// npod ≥ 1 + n0/n1) with the detectable-failure cap k < 15.6 covering the
// paper's 2-14 failure sweeps.
var DefaultSimConfig = Config{Pods: 2, ToRsPerPod: 20, T1PerPod: 20, T2: 8, HostsPerToR: 24}

// TestClusterConfig matches the §7 test cluster: one pod, 10 ToRs, 80
// physical links (here 160 directed), with 40 controllable hosts.
var TestClusterConfig = Config{Pods: 1, ToRsPerPod: 10, T1PerPod: 4, T2: 0, HostsPerToR: 4}

// Validate reports whether the configuration describes a buildable Clos.
func (c Config) Validate() error {
	switch {
	case c.Pods < 1:
		return fmt.Errorf("topology: need at least 1 pod, have %d", c.Pods)
	case c.Pods > 199:
		return fmt.Errorf("topology: at most 199 pods supported by the address plan, have %d", c.Pods)
	case c.ToRsPerPod < 1 || c.ToRsPerPod > 255:
		return fmt.Errorf("topology: ToRsPerPod %d out of range [1,255]", c.ToRsPerPod)
	case c.T1PerPod < 1 || c.T1PerPod > 255:
		return fmt.Errorf("topology: T1PerPod %d out of range [1,255]", c.T1PerPod)
	case c.T2 < 0 || c.T2 > 255:
		return fmt.Errorf("topology: T2 %d out of range [0,255]", c.T2)
	case c.Pods > 1 && c.T2 == 0:
		return fmt.Errorf("topology: %d pods need tier-2 switches", c.Pods)
	case c.HostsPerToR < 1 || c.HostsPerToR > 254:
		return fmt.Errorf("topology: HostsPerToR %d out of range [1,254]", c.HostsPerToR)
	}
	return nil
}

// DirectedLinks returns the closed-form number of directed links.
func (c Config) DirectedLinks() int {
	hosts := c.Pods * c.ToRsPerPod * c.HostsPerToR
	level1 := c.Pods * c.ToRsPerPod * c.T1PerPod
	level2 := c.Pods * c.T1PerPod * c.T2
	return 2 * (hosts + level1 + level2)
}

// Hosts returns the total host count.
func (c Config) Hosts() int { return c.Pods * c.ToRsPerPod * c.HostsPerToR }

// Topology is an immutable, fully built Clos network.
type Topology struct {
	Cfg      Config
	Switches []Switch
	Hosts    []Host
	Links    []Link

	tors [][]SwitchID // [pod][i]
	t1s  [][]SwitchID // [pod][j]
	t2s  []SwitchID   // [l]

	ipToNode map[uint32]Node
	byClass  [6][]LinkID
	byPair   map[[2]Node]LinkID
}

// New builds the topology for cfg.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		Cfg:      cfg,
		tors:     make([][]SwitchID, cfg.Pods),
		t1s:      make([][]SwitchID, cfg.Pods),
		ipToNode: make(map[uint32]Node),
	}

	addSwitch := func(tier Tier, pod, index int, name string, ip uint32) SwitchID {
		id := SwitchID(len(t.Switches))
		t.Switches = append(t.Switches, Switch{
			ID: id, Tier: tier, Pod: pod, Index: index, Name: name, IP: ip,
		})
		t.ipToNode[ip] = SwitchNode(id)
		return id
	}
	for p := 0; p < cfg.Pods; p++ {
		t.tors[p] = make([]SwitchID, cfg.ToRsPerPod)
		for i := 0; i < cfg.ToRsPerPod; i++ {
			t.tors[p][i] = addSwitch(TierToR, p, i,
				fmt.Sprintf("tor-p%d-%d", p, i), ipToR(p, i))
		}
		t.t1s[p] = make([]SwitchID, cfg.T1PerPod)
		for j := 0; j < cfg.T1PerPod; j++ {
			t.t1s[p][j] = addSwitch(TierT1, p, j,
				fmt.Sprintf("t1-p%d-%d", p, j), ipT1(p, j))
		}
	}
	t.t2s = make([]SwitchID, cfg.T2)
	for l := 0; l < cfg.T2; l++ {
		t.t2s[l] = addSwitch(TierT2, -1, l, fmt.Sprintf("t2-%d", l), ipT2(l))
	}

	t.byPair = make(map[[2]Node]LinkID)
	addPair := func(up, down LinkClass, lo, hi Node) (LinkID, LinkID) {
		u := LinkID(len(t.Links))
		d := u + 1
		t.Links = append(t.Links,
			Link{ID: u, Class: up, From: lo, To: hi, Reverse: d},
			Link{ID: d, Class: down, From: hi, To: lo, Reverse: u},
		)
		t.byClass[up] = append(t.byClass[up], u)
		t.byClass[down] = append(t.byClass[down], d)
		t.byPair[[2]Node{lo, hi}] = u
		t.byPair[[2]Node{hi, lo}] = d
		return u, d
	}

	// Hosts and host links.
	for p := 0; p < cfg.Pods; p++ {
		for i := 0; i < cfg.ToRsPerPod; i++ {
			tor := t.tors[p][i]
			t.Switches[tor].Downlinks = make([]LinkID, cfg.HostsPerToR)
			for h := 0; h < cfg.HostsPerToR; h++ {
				id := HostID(len(t.Hosts))
				ip := ipHost(p, i, h)
				up, down := addPair(HostUp, HostDown, HostNode(id), SwitchNode(tor))
				t.Hosts = append(t.Hosts, Host{
					ID: id, ToR: tor, Pod: p, Index: h,
					Name: fmt.Sprintf("host-p%d-t%d-%d", p, i, h),
					IP:   ip, Uplink: up, Downlink: down,
				})
				t.Switches[tor].Downlinks[h] = down
				t.ipToNode[ip] = HostNode(id)
			}
		}
	}
	// Level 1: complete bipartite ToR×T1 within each pod.
	for p := 0; p < cfg.Pods; p++ {
		for i := 0; i < cfg.ToRsPerPod; i++ {
			t.Switches[t.tors[p][i]].Uplinks = make([]LinkID, cfg.T1PerPod)
		}
		for j := 0; j < cfg.T1PerPod; j++ {
			t.Switches[t.t1s[p][j]].Downlinks = make([]LinkID, cfg.ToRsPerPod)
		}
		for i := 0; i < cfg.ToRsPerPod; i++ {
			for j := 0; j < cfg.T1PerPod; j++ {
				up, down := addPair(L1Up, L1Down,
					SwitchNode(t.tors[p][i]), SwitchNode(t.t1s[p][j]))
				t.Switches[t.tors[p][i]].Uplinks[j] = up
				t.Switches[t.t1s[p][j]].Downlinks[i] = down
			}
		}
	}
	// Level 2: every T1 of every pod connects to every T2.
	if cfg.T2 > 0 {
		for l := 0; l < cfg.T2; l++ {
			t.Switches[t.t2s[l]].Downlinks = make([]LinkID, cfg.Pods*cfg.T1PerPod)
		}
		for p := 0; p < cfg.Pods; p++ {
			for j := 0; j < cfg.T1PerPod; j++ {
				t.Switches[t.t1s[p][j]].Uplinks = make([]LinkID, cfg.T2)
				for l := 0; l < cfg.T2; l++ {
					up, down := addPair(L2Up, L2Down,
						SwitchNode(t.t1s[p][j]), SwitchNode(t.t2s[l]))
					t.Switches[t.t1s[p][j]].Uplinks[l] = up
					t.Switches[t.t2s[l]].Downlinks[p*cfg.T1PerPod+j] = down
				}
			}
		}
	}
	return t, nil
}

// Address plan: hosts at 10.pod.tor.(h+1); ToRs at 10.200+pod/? — switch
// loopbacks live in 10.200-10.202 to stay clear of host space (pods < 200).
func ipHost(pod, tor, h int) uint32 {
	return 10<<24 | uint32(pod)<<16 | uint32(tor)<<8 | uint32(h+1)
}
func ipToR(pod, i int) uint32 { return 10<<24 | 200<<16 | uint32(pod)<<8 | uint32(i) }
func ipT1(pod, j int) uint32  { return 10<<24 | 201<<16 | uint32(pod)<<8 | uint32(j) }
func ipT2(l int) uint32       { return 10<<24 | 202<<16 | uint32(l) }

// FormatIP renders a uint32 IPv4 address in dotted-quad form.
func FormatIP(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ToR returns the i-th ToR switch of pod p.
func (t *Topology) ToR(p, i int) SwitchID { return t.tors[p][i] }

// T1 returns the j-th tier-1 switch of pod p.
func (t *Topology) T1(p, j int) SwitchID { return t.t1s[p][j] }

// T2 returns the l-th tier-2 switch.
func (t *Topology) T2(l int) SwitchID { return t.t2s[l] }

// HostAt returns the h-th host under the i-th ToR of pod p.
func (t *Topology) HostAt(p, i, h int) HostID {
	return HostID((p*t.Cfg.ToRsPerPod+i)*t.Cfg.HostsPerToR + h)
}

// HostsUnderToR returns the IDs of all hosts below ToR sw.
func (t *Topology) HostsUnderToR(sw SwitchID) []HostID {
	s := t.Switches[sw]
	if s.Tier != TierToR {
		return nil
	}
	out := make([]HostID, t.Cfg.HostsPerToR)
	base := t.HostAt(s.Pod, s.Index, 0)
	for h := range out {
		out[h] = base + HostID(h)
	}
	return out
}

// LinksOfClass returns all links of the given class, in construction order.
func (t *Topology) LinksOfClass(c LinkClass) []LinkID { return t.byClass[c] }

// LookupIP resolves an address from the topology's address plan. The plan
// is arithmetic (hosts at 10.pod.tor.(h+1), switch loopbacks in
// 10.200-10.202), so the inverse is computed directly — this sits on the
// packet fabric's per-hop path, where a map lookup per forwarded packet
// is measurable. lookupIPSlow is the map-backed oracle the tests compare
// against.
func (t *Topology) LookupIP(ip uint32) (Node, bool) {
	if ip>>24 != 10 {
		return Node{}, false
	}
	b2 := int(ip>>16) & 0xff
	b1 := int(ip>>8) & 0xff
	b0 := int(ip) & 0xff
	switch {
	case b2 < t.Cfg.Pods:
		// Host 10.pod.tor.(h+1).
		if b1 >= t.Cfg.ToRsPerPod || b0 < 1 || b0 > t.Cfg.HostsPerToR {
			return Node{}, false
		}
		return HostNode(HostID((b2*t.Cfg.ToRsPerPod+b1)*t.Cfg.HostsPerToR + b0 - 1)), true
	case b2 == 200:
		if b1 >= t.Cfg.Pods || b0 >= t.Cfg.ToRsPerPod {
			return Node{}, false
		}
		return SwitchNode(t.tors[b1][b0]), true
	case b2 == 201:
		if b1 >= t.Cfg.Pods || b0 >= t.Cfg.T1PerPod {
			return Node{}, false
		}
		return SwitchNode(t.t1s[b1][b0]), true
	case b2 == 202:
		if l := int(ip & 0xffff); l < len(t.t2s) {
			return SwitchNode(t.t2s[l]), true
		}
	}
	return Node{}, false
}

// lookupIPSlow is the address-plan map the topology was built with;
// LookupIP must agree with it everywhere.
func (t *Topology) lookupIPSlow(ip uint32) (Node, bool) {
	n, ok := t.ipToNode[ip]
	return n, ok
}

// NodeIP returns the address of a node.
func (t *Topology) NodeIP(n Node) uint32 {
	if n.Kind == NodeHost {
		return t.Hosts[n.ID].IP
	}
	return t.Switches[n.ID].IP
}

// NodeName returns the human-readable name of a node.
func (t *Topology) NodeName(n Node) string {
	if n.Kind == NodeHost {
		return t.Hosts[n.ID].Name
	}
	return t.Switches[n.ID].Name
}

// LinkName renders a link as "from→to".
func (t *Topology) LinkName(id LinkID) string {
	l := t.Links[id]
	return t.NodeName(l.From) + "→" + t.NodeName(l.To)
}

// CheckLink validates a link identifier against the topology — the one
// bounds check both planes' validated injection paths share.
func (t *Topology) CheckLink(id LinkID) error {
	if id < 0 || int(id) >= len(t.Links) {
		return fmt.Errorf("topology: link %d not in topology (%d links)", id, len(t.Links))
	}
	return nil
}

// LinkBetween returns the directed link from one node to another, if the
// two are adjacent. Path discovery uses it to turn a traceroute's switch
// sequence back into link IDs (router aliasing is a non-problem in a
// datacenter whose topology and addressing are known, §4.2).
func (t *Topology) LinkBetween(from, to Node) (LinkID, bool) {
	id, ok := t.byPair[[2]Node{from, to}]
	return id, ok
}

// SamePod reports whether hosts a and b live in the same pod.
func (t *Topology) SamePod(a, b HostID) bool { return t.Hosts[a].Pod == t.Hosts[b].Pod }

// SameToR reports whether hosts a and b share a ToR.
func (t *Topology) SameToR(a, b HostID) bool { return t.Hosts[a].ToR == t.Hosts[b].ToR }

// ShardMap partitions every node onto one of shards execution shards for
// the parallel packet-plane DES: hosts, ToRs and T1s go to their pod's
// shard, and the podless tier-2 spine switches are spread round-robin by
// index. Pod p maps to shard p%shards, so shards == Pods gives the natural
// one-shard-per-pod partition and smaller counts fold pods together while
// keeping every node's assignment deterministic.
func (t *Topology) ShardMap(shards int) (host, sw []int32) {
	if shards < 1 {
		shards = 1
	}
	host = make([]int32, len(t.Hosts))
	for i := range t.Hosts {
		host[i] = int32(t.Hosts[i].Pod % shards)
	}
	sw = make([]int32, len(t.Switches))
	for i := range t.Switches {
		if s := &t.Switches[i]; s.Pod >= 0 {
			sw[i] = int32(s.Pod % shards)
		} else {
			sw[i] = int32(s.Index % shards)
		}
	}
	return host, sw
}
