package topology

import (
	"testing"
	"testing/quick"
)

func TestDefaultSimConfigLinkCount(t *testing.T) {
	// The paper's §6 simulator: "4160 links, 2 pods, and 20 ToRs per pod".
	if got := DefaultSimConfig.DirectedLinks(); got != 4160 {
		t.Fatalf("DefaultSimConfig.DirectedLinks() = %d, want 4160", got)
	}
}

func TestTestClusterConfigLinkCount(t *testing.T) {
	// §7 test cluster: 80 physical links = 160 directed.
	if got := TestClusterConfig.DirectedLinks(); got != 160 {
		t.Fatalf("TestClusterConfig.DirectedLinks() = %d, want 160", got)
	}
}

func TestBuildMatchesClosedForms(t *testing.T) {
	cfgs := []Config{
		DefaultSimConfig,
		TestClusterConfig,
		{Pods: 1, ToRsPerPod: 2, T1PerPod: 2, T2: 2, HostsPerToR: 2},
		{Pods: 4, ToRsPerPod: 8, T1PerPod: 4, T2: 8, HostsPerToR: 8},
	}
	for _, cfg := range cfgs {
		topo, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		if got, want := len(topo.Links), cfg.DirectedLinks(); got != want {
			t.Errorf("%+v: %d links, want %d", cfg, got, want)
		}
		if got, want := len(topo.Hosts), cfg.Hosts(); got != want {
			t.Errorf("%+v: %d hosts, want %d", cfg, got, want)
		}
		wantSw := cfg.Pods*(cfg.ToRsPerPod+cfg.T1PerPod) + cfg.T2
		if got := len(topo.Switches); got != wantSw {
			t.Errorf("%+v: %d switches, want %d", cfg, got, wantSw)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Pods: 0, ToRsPerPod: 1, T1PerPod: 1, T2: 1, HostsPerToR: 1},
		{Pods: 2, ToRsPerPod: 1, T1PerPod: 1, T2: 0, HostsPerToR: 1}, // multi-pod needs T2
		{Pods: 1, ToRsPerPod: 0, T1PerPod: 1, T2: 1, HostsPerToR: 1},
		{Pods: 1, ToRsPerPod: 1, T1PerPod: 0, T2: 1, HostsPerToR: 1},
		{Pods: 1, ToRsPerPod: 1, T1PerPod: 1, T2: 1, HostsPerToR: 0},
		{Pods: 300, ToRsPerPod: 1, T1PerPod: 1, T2: 1, HostsPerToR: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
	if err := (Config{Pods: 1, ToRsPerPod: 4, T1PerPod: 2, T2: 0, HostsPerToR: 2}).Validate(); err != nil {
		t.Errorf("single-pod config without T2 should validate: %v", err)
	}
}

func TestReverseLinks(t *testing.T) {
	topo, err := New(DefaultSimConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range topo.Links {
		r := topo.Links[l.Reverse]
		if r.Reverse != l.ID {
			t.Fatalf("link %d: reverse of reverse is %d", l.ID, r.Reverse)
		}
		if r.From != l.To || r.To != l.From {
			t.Fatalf("link %d: reverse endpoints mismatch", l.ID)
		}
	}
}

func TestLinkClassCounts(t *testing.T) {
	cfg := DefaultSimConfig
	topo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[LinkClass]int{
		HostUp:   cfg.Pods * cfg.ToRsPerPod * cfg.HostsPerToR,
		HostDown: cfg.Pods * cfg.ToRsPerPod * cfg.HostsPerToR,
		L1Up:     cfg.Pods * cfg.ToRsPerPod * cfg.T1PerPod,
		L1Down:   cfg.Pods * cfg.ToRsPerPod * cfg.T1PerPod,
		L2Up:     cfg.Pods * cfg.T1PerPod * cfg.T2,
		L2Down:   cfg.Pods * cfg.T1PerPod * cfg.T2,
	}
	for class, n := range want {
		if got := len(topo.LinksOfClass(class)); got != n {
			t.Errorf("class %v: %d links, want %d", class, got, n)
		}
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	topo, err := New(Config{Pods: 3, ToRsPerPod: 4, T1PerPod: 3, T2: 5, HostsPerToR: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range topo.Switches {
		for j, id := range sw.Uplinks {
			l := topo.Links[id]
			if l.From != SwitchNode(sw.ID) {
				t.Fatalf("%s uplink %d does not originate at the switch", sw.Name, j)
			}
			peer := topo.Switches[l.To.ID]
			if peer.Index != j {
				t.Fatalf("%s uplink %d reaches index %d", sw.Name, j, peer.Index)
			}
			if peer.Tier != sw.Tier+1 {
				t.Fatalf("%s uplink reaches tier %v", sw.Name, peer.Tier)
			}
		}
		for i, id := range sw.Downlinks {
			l := topo.Links[id]
			if l.From != SwitchNode(sw.ID) {
				t.Fatalf("%s downlink %d does not originate at the switch", sw.Name, i)
			}
			switch sw.Tier {
			case TierToR:
				if l.To.Kind != NodeHost {
					t.Fatalf("%s downlink %d is not a host link", sw.Name, i)
				}
			case TierT1:
				peer := topo.Switches[l.To.ID]
				if peer.Tier != TierToR || peer.Pod != sw.Pod || peer.Index != i {
					t.Fatalf("%s downlink %d reaches %s", sw.Name, i, peer.Name)
				}
			case TierT2:
				peer := topo.Switches[l.To.ID]
				pod, j := i/topo.Cfg.T1PerPod, i%topo.Cfg.T1PerPod
				if peer.Tier != TierT1 || peer.Pod != pod || peer.Index != j {
					t.Fatalf("%s downlink %d reaches %s, want t1-p%d-%d", sw.Name, i, peer.Name, pod, j)
				}
			}
		}
	}
}

func TestHostIndexing(t *testing.T) {
	cfg := Config{Pods: 2, ToRsPerPod: 3, T1PerPod: 2, T2: 2, HostsPerToR: 4}
	topo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < cfg.Pods; p++ {
		for i := 0; i < cfg.ToRsPerPod; i++ {
			for h := 0; h < cfg.HostsPerToR; h++ {
				id := topo.HostAt(p, i, h)
				host := topo.Hosts[id]
				if host.Pod != p || host.Index != h || host.ToR != topo.ToR(p, i) {
					t.Fatalf("HostAt(%d,%d,%d) = %+v", p, i, h, host)
				}
			}
		}
	}
	under := topo.HostsUnderToR(topo.ToR(1, 2))
	if len(under) != cfg.HostsPerToR {
		t.Fatalf("HostsUnderToR: %d hosts", len(under))
	}
	for _, h := range under {
		if topo.Hosts[h].ToR != topo.ToR(1, 2) {
			t.Fatalf("host %d not under expected ToR", h)
		}
	}
	if topo.HostsUnderToR(topo.T1(0, 0)) != nil {
		t.Fatal("HostsUnderToR of a T1 should be nil")
	}
}

func TestIPUniquenessAndLookup(t *testing.T) {
	topo, err := New(DefaultSimConfig)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]string)
	check := func(ip uint32, name string, n Node) {
		if prev, dup := seen[ip]; dup {
			t.Fatalf("IP %s assigned to both %s and %s", FormatIP(ip), prev, name)
		}
		seen[ip] = name
		got, ok := topo.LookupIP(ip)
		if !ok || got != n {
			t.Fatalf("LookupIP(%s) = %+v, %v", FormatIP(ip), got, ok)
		}
	}
	for _, h := range topo.Hosts {
		check(h.IP, h.Name, HostNode(h.ID))
	}
	for _, s := range topo.Switches {
		check(s.IP, s.Name, SwitchNode(s.ID))
	}
	if _, ok := topo.LookupIP(0xC0A80101); ok {
		t.Fatal("LookupIP of a foreign address succeeded")
	}
}

func TestSamePodSameToR(t *testing.T) {
	topo, err := New(Config{Pods: 2, ToRsPerPod: 2, T1PerPod: 2, T2: 2, HostsPerToR: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := topo.HostAt(0, 0, 0)
	b := topo.HostAt(0, 0, 1)
	c := topo.HostAt(0, 1, 0)
	d := topo.HostAt(1, 0, 0)
	if !topo.SameToR(a, b) || !topo.SamePod(a, c) || topo.SameToR(a, c) || topo.SamePod(a, d) {
		t.Fatal("pod/ToR relations wrong")
	}
}

func TestNames(t *testing.T) {
	topo, err := New(TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	l := topo.Links[topo.Switches[topo.ToR(0, 3)].Uplinks[1]]
	if got := topo.LinkName(l.ID); got != "tor-p0-3→t1-p0-1" {
		t.Fatalf("LinkName = %q", got)
	}
	if TierToR.String() != "ToR" || TierT1.String() != "T1" || TierT2.String() != "T2" {
		t.Fatal("tier names wrong")
	}
	if L1Down.String() != "T1-ToR" || HostUp.String() != "host-ToR" {
		t.Fatal("link class names wrong")
	}
}

func TestFormatIP(t *testing.T) {
	if got := FormatIP(ipHost(1, 2, 3)); got != "10.1.2.4" {
		t.Fatalf("FormatIP = %q, want 10.1.2.4", got)
	}
}

// Property: every valid small config builds a topology whose per-node link
// lists reference links that exist and point back correctly.
func TestBuildPropertyQuick(t *testing.T) {
	f := func(p, n0, n1, n2, h uint8) bool {
		cfg := Config{
			Pods:        int(p%3) + 1,
			ToRsPerPod:  int(n0%4) + 1,
			T1PerPod:    int(n1%3) + 1,
			T2:          int(n2%3) + 1,
			HostsPerToR: int(h%3) + 1,
		}
		topo, err := New(cfg)
		if err != nil {
			return false
		}
		if len(topo.Links) != cfg.DirectedLinks() {
			return false
		}
		for _, l := range topo.Links {
			if topo.Links[l.Reverse].Reverse != l.ID {
				return false
			}
		}
		for _, host := range topo.Hosts {
			up := topo.Links[host.Uplink]
			if up.Class != HostUp || up.From != HostNode(host.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The arithmetic LookupIP inverse must agree with the address-plan map it
// replaced on the fabric's per-hop path: every assigned address resolves
// identically, and a sweep of unassigned neighbours rejects identically.
func TestLookupIPMatchesAddressPlan(t *testing.T) {
	for _, cfg := range []Config{
		TestClusterConfig,
		DefaultSimConfig,
		{Pods: 3, ToRsPerPod: 2, T1PerPod: 2, T2: 2, HostsPerToR: 3},
	} {
		topo, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check := func(ip uint32) {
			got, gok := topo.LookupIP(ip)
			want, wok := topo.lookupIPSlow(ip)
			if gok != wok || got != want {
				t.Fatalf("cfg %+v ip %s: fast (%+v,%v) != map (%+v,%v)", cfg, FormatIP(ip), got, gok, want, wok)
			}
		}
		for _, h := range topo.Hosts {
			check(h.IP)
		}
		for _, sw := range topo.Switches {
			check(sw.IP)
		}
		// Probe the plan's edges and beyond: off-by-one neighbours of every
		// assigned block and foreign prefixes.
		for _, h := range topo.Hosts {
			check(h.IP + 1)
			check(h.IP - 1)
		}
		for _, probe := range []uint32{
			0, 1<<31 | 1, 11 << 24, 10<<24 | 199<<16, 10<<24 | 203<<16,
			10<<24 | 200<<16 | 255<<8 | 255, 10<<24 | 202<<16 | 0xffff,
		} {
			check(probe)
		}
	}
}
