// Epoch-indexed rate schedules: the dynamic-failure layer of the simulator.
//
// A RateSchedule scripts one link's drop rate as a function of the epoch
// index, which is what the scenario engine (internal/scenario) builds
// time-varying conditions from — link flaps, intermittent low-rate drops,
// rolling failure waves, congestion bursts. Schedules are applied
// sequentially at the top of RunEpoch, before any parallel fan-out, so they
// add nothing to the survival-gated hot path and cannot perturb the
// cross-parallelism determinism contract: by the time workers start, the
// per-link rate/logq/isFailed vectors are fixed for the epoch.
package netem

import (
	"fmt"
	"math"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

// RateSchedule gives a link's drop rate for each epoch.
//
// RateAt returns the rate the link drops at during the given epoch and
// whether the link counts as *failed* (injected, part of detection ground
// truth) that epoch. When active is false the rate is ignored and the link
// runs at its noise rate. Implementations must be pure functions of the
// epoch index: the scenario engine relies on RateAt(e) being identical
// however many times and in whatever order it is called.
type RateSchedule interface {
	RateAt(epoch int) (rate float64, active bool)
}

// ConstantRate fails the link at Rate in every epoch — the static injection
// of InjectFailure in schedule form.
type ConstantRate struct {
	Rate float64
}

// RateAt implements RateSchedule.
func (c ConstantRate) RateAt(int) (float64, bool) { return c.Rate, true }

// Window fails the link at Rate during epochs [Start, End) and leaves it
// healthy outside. Staggered windows across links compose into rolling
// failure waves.
type Window struct {
	Rate       float64
	Start, End int
}

// RateAt implements RateSchedule.
func (w Window) RateAt(epoch int) (float64, bool) {
	return w.Rate, epoch >= w.Start && epoch < w.End
}

// Flap cycles the link through an on/off duty cycle: within each Period-long
// cycle the link is failed at Rate for the first On epochs (shifted by
// Phase). Flap{Rate, Period: 4, On: 2} is a 50% duty-cycle flap; a nonzero
// Phase staggers several flapping links against each other.
type Flap struct {
	Rate              float64
	Period, On, Phase int
}

// RateAt implements RateSchedule.
func (f Flap) RateAt(epoch int) (float64, bool) {
	if f.Period <= 0 || f.On <= 0 {
		return f.Rate, false
	}
	p := (epoch + f.Phase) % f.Period
	if p < 0 {
		p += f.Period
	}
	return f.Rate, p < f.On
}

// Intermittent fails the link at Rate in a random Prob fraction of epochs.
// Epoch membership is a counter-based draw on (Seed, epoch) — deterministic,
// order-free and independent of every other RNG stream in the simulator, so
// an intermittent link neither consumes simulator randomness nor changes any
// other link's draws.
type Intermittent struct {
	Rate float64
	Prob float64
	Seed uint64
}

// RateAt implements RateSchedule.
func (i Intermittent) RateAt(epoch int) (float64, bool) {
	return i.Rate, stats.DeriveUniform(i.Seed, uint64(epoch)) < i.Prob
}

// linkSchedule pairs a scheduled link with its script.
type linkSchedule struct {
	link  topology.LinkID
	sched RateSchedule
}

// Schedule attaches sched to link l, to be applied at the start of every
// subsequent epoch. A scheduled link is owned by its schedule: each epoch it
// is re-injected (active) or restored to its noise rate (inactive),
// overriding any manual InjectFailure/ClearFailure on the same link. If a
// link is scheduled twice the later registration wins (it is applied last).
func (s *Sim) Schedule(l topology.LinkID, sched RateSchedule) {
	s.schedules = append(s.schedules, linkSchedule{link: l, sched: sched})
}

// ClearSchedules detaches every schedule and restores the scheduled links to
// their noise rates. Manually injected failures on unscheduled links are
// untouched.
func (s *Sim) ClearSchedules() {
	for _, ls := range s.schedules {
		if s.isFailed[ls.link] {
			s.ClearFailure(ls.link)
		}
	}
	s.schedules = nil
}

// EpochIndex returns the index the next RunEpoch call will simulate (the
// number of epochs run so far).
func (s *Sim) EpochIndex() int { return s.epochIdx }

// applySchedules moves every scheduled link to its scripted state for epoch
// s.epochIdx. It runs sequentially before the epoch's parallel fan-out;
// rate/logq/isFailed and the failure snapshot are all settled through the
// ordinary Inject/Clear paths, so the hot path sees a fixed rate vector.
// Re-injection is skipped when the link already runs at the scripted rate,
// so a steady schedule (ConstantRate, a Window's interior) does not
// invalidate the cached sorted failure snapshot every epoch.
//
// A schedule returning a rate outside [0, 1] is a broken script — there is
// no epoch result to attach an error to, and feeding it to log1p would
// silently corrupt every later draw — so it panics, loudly, here.
func (s *Sim) applySchedules() {
	for _, ls := range s.schedules {
		rate, active := ls.sched.RateAt(s.epochIdx)
		switch {
		case !active:
			if s.isFailed[ls.link] {
				s.ClearFailure(ls.link)
			}
		case math.IsNaN(rate) || rate < 0 || rate > 1:
			panic(fmt.Sprintf("netem: schedule on link %d returned drop rate %v outside [0, 1] for epoch %d", ls.link, rate, s.epochIdx))
		case !s.isFailed[ls.link] || s.failures[ls.link] != rate:
			s.InjectFailure(ls.link, rate)
		}
	}
}
