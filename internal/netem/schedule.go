// Dynamic-failure layer of the flow-level simulator: epoch-indexed rate
// schedules, shared with the packet plane through internal/schedule.
//
// The shapes (ConstantRate, Window, Flap, Intermittent) live in package
// schedule so both planes script dynamics from one vocabulary; the aliases
// below keep netem's public surface unchanged. Schedules are applied
// sequentially at the top of RunEpoch, before any parallel fan-out, so they
// add nothing to the survival-gated hot path and cannot perturb the
// cross-parallelism determinism contract: by the time workers start, the
// per-link rate/logq/isFailed vectors are fixed for the epoch.
package netem

import (
	"fmt"

	"vigil/internal/schedule"
	"vigil/internal/topology"
)

// Schedule shapes, re-exported from the shared plane-agnostic package so
// existing netem call sites keep compiling unchanged.
type (
	// RateSchedule gives a link's drop rate for each epoch.
	RateSchedule = schedule.RateSchedule
	// ConstantRate fails the link at Rate in every epoch.
	ConstantRate = schedule.ConstantRate
	// Window fails the link at Rate during epochs [Start, End).
	Window = schedule.Window
	// Flap cycles the link through an on/off duty cycle.
	Flap = schedule.Flap
	// Intermittent fails the link in a random Prob fraction of epochs.
	Intermittent = schedule.Intermittent
)

// linkSchedule pairs a scheduled link with its script.
type linkSchedule struct {
	link  topology.LinkID
	sched RateSchedule
}

// Schedule attaches sched to link l, to be applied at the start of every
// subsequent epoch. A scheduled link is owned by its schedule: each epoch it
// is re-injected (active) or restored to its noise rate (inactive),
// overriding any manual InjectFailure/ClearFailure on the same link. If a
// link is scheduled twice the later registration wins (it is applied last).
func (s *Sim) Schedule(l topology.LinkID, sched RateSchedule) {
	s.schedules = append(s.schedules, linkSchedule{link: l, sched: sched})
}

// ClearSchedules detaches every schedule and restores the scheduled links to
// their noise rates. Manually injected failures on unscheduled links are
// untouched.
func (s *Sim) ClearSchedules() {
	for _, ls := range s.schedules {
		if s.isFailed[ls.link] {
			s.ClearFailure(ls.link)
		}
	}
	s.schedules = nil
}

// EpochIndex returns the index the next RunEpoch call will simulate (the
// number of epochs run so far).
func (s *Sim) EpochIndex() int { return s.epochIdx }

// applySchedules moves every scheduled link to its scripted state for epoch
// s.epochIdx. It runs sequentially before the epoch's parallel fan-out;
// rate/logq/isFailed and the failure snapshot are all settled through the
// ordinary Inject/Clear paths, so the hot path sees a fixed rate vector.
// Re-injection is skipped when the link already runs at the scripted rate,
// so a steady schedule (ConstantRate, a Window's interior) does not
// invalidate the cached sorted failure snapshot every epoch.
//
// A schedule returning a rate outside [0, 1] is a broken script — there is
// no epoch result to attach an error to, and feeding it to log1p would
// silently corrupt every later draw — so it panics, loudly, here.
func (s *Sim) applySchedules() {
	for _, ls := range s.schedules {
		rate, active := ls.sched.RateAt(s.epochIdx)
		switch {
		case !active:
			if s.isFailed[ls.link] {
				s.ClearFailure(ls.link)
			}
		case !schedule.ValidRate(rate):
			panic(fmt.Sprintf("netem: schedule on link %d returned drop rate %v outside [0, 1] for epoch %d", ls.link, rate, s.epochIdx))
		case !s.isFailed[ls.link] || s.failures[ls.link] != rate:
			s.InjectFailure(ls.link, rate)
		}
	}
}
