package netem

import (
	"reflect"
	"testing"

	"vigil/internal/topology"
	"vigil/internal/traffic"
)

// incrementalSim builds an incremental simulator on the parallel-test
// topology with a traceroute cap, so delta epochs exercise the budget
// overlay too.
func incrementalSim(t testing.TB, seed uint64, workers int) *Sim {
	t.Helper()
	topo, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 6, T1PerPod: 4, T2: 4, HostsPerToR: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo:    topo,
		NoiseLo: 0, NoiseHi: 1e-6,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 40, Hi: 40},
			PacketsPerFlow: traffic.IntRange{Lo: 80, Hi: 120},
		},
		TracerouteCap: 4,
		Seed:          seed,
		Parallelism:   workers,
		Incremental:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// churn applies the same evolving failure scenario to a sim: a flapping
// scheduled link, an injection that appears mid-run and is later cleared,
// and a rate change on an already-failed link.
func churn(s *Sim, epoch int) {
	topo := s.Topology()
	l1 := topo.LinksOfClass(topology.L1Up)[2]
	l2 := topo.LinksOfClass(topology.L2Down)[1]
	switch epoch {
	case 0:
		s.Schedule(l2, Flap{Rate: 0.05, Period: 2, On: 1})
		s.InjectFailure(l1, 0.02)
	case 2:
		s.InjectFailure(l1, 0.06) // rate change on a failed link
	case 3:
		s.ClearFailure(l1)
	}
}

// The exact-equivalence contract of incremental mode: every delta epoch is
// bit-identical to re-scoring the whole frozen workload from scratch
// (RescoreAll before each epoch forces the full pipeline on the same frozen
// seed).
func TestIncrementalMatchesFullRescore(t *testing.T) {
	delta := incrementalSim(t, 7, 3)
	full := incrementalSim(t, 7, 3)
	for e := 0; e < 6; e++ {
		churn(delta, e)
		churn(full, e)
		full.RescoreAll()
		de, fe := delta.RunEpoch(), full.RunEpoch()
		if !reflect.DeepEqual(de, fe) {
			t.Fatalf("epoch %d: delta diverged from full rescore: drops %d/%d, failed %d/%d, reports %d/%d",
				e, de.TotalDrops, fe.TotalDrops, len(de.Failed), len(fe.Failed), len(de.Reports), len(fe.Reports))
		}
	}
}

// Delta epochs keep the parallelism determinism contract: bit-identical
// results at every worker count, including the parallel re-score fan-out
// and the merge.
func TestIncrementalBitIdenticalAcrossParallelism(t *testing.T) {
	base := incrementalSim(t, 11, 1)
	var want []*Epoch
	for e := 0; e < 5; e++ {
		churn(base, e)
		want = append(want, base.RunEpoch())
	}
	for _, workers := range []int{2, 4, 16} {
		s := incrementalSim(t, 11, workers)
		for e := 0; e < 5; e++ {
			churn(s, e)
			if got := s.RunEpoch(); !reflect.DeepEqual(want[e], got) {
				t.Fatalf("epoch %d diverged at Parallelism=%d", e, workers)
			}
		}
	}
}

// stripEpochStamp zeroes the report identity epoch — the one field that
// legitimately differs when the same epoch content is reproduced at a
// different epoch index (reports are stamped with the epoch they are
// emitted in). Everything else, sequence numbers included, must still
// match bit for bit.
func stripEpochStamp(ep *Epoch) {
	for i := range ep.Reports {
		ep.Reports[i].Epoch = 0
	}
}

// With a frozen workload and no rate changes, every delta epoch must
// reproduce the first epoch's ground truth exactly — the carried-forward
// cache IS the result.
func TestIncrementalSteadyStateRepeats(t *testing.T) {
	s := incrementalSim(t, 3, 2)
	bad := s.Topology().LinksOfClass(topology.L1Up)[0]
	s.InjectFailure(bad, 0.03)
	first := s.RunEpoch()
	stripEpochStamp(first)
	for e := 0; e < 3; e++ {
		got := s.RunEpoch()
		stripEpochStamp(got)
		if !reflect.DeepEqual(first, got) {
			t.Fatalf("steady-state delta epoch %d diverged from the frozen first epoch", e)
		}
	}
}

// Clearing the only failure must walk the carried counters all the way back
// to the baseline epoch: subtract-old/add-new cannot leak drops.
func TestIncrementalClearRestoresBaseline(t *testing.T) {
	s := incrementalSim(t, 5, 2)
	baseline := s.RunEpoch() // epoch of pure noise, builds the cache
	bad := s.Topology().LinksOfClass(topology.L2Up)[3]
	s.InjectFailure(bad, 0.04)
	failedEp := s.RunEpoch()
	if failedEp.TotalDrops <= baseline.TotalDrops {
		t.Fatalf("injection did not raise drops (%d -> %d)", baseline.TotalDrops, failedEp.TotalDrops)
	}
	s.ClearFailure(bad)
	restored := s.RunEpoch()
	stripEpochStamp(baseline)
	stripEpochStamp(restored)
	if !reflect.DeepEqual(baseline, restored) {
		t.Fatalf("clearing the failure did not restore the baseline epoch: drops %d vs %d, failed %d vs %d",
			baseline.TotalDrops, restored.TotalDrops, len(baseline.Failed), len(restored.Failed))
	}
}

// The short-mode datacenter epoch: a scaled-down multi-cluster fabric
// through the same NewDatacenter constructor and the same fused + delta
// code paths, small enough for `go test -race -short` to exercise the
// parallel shard loop, the parallel dense-counter merge and the delta
// re-score under the race detector.
func TestDatacenterEpochShort(t *testing.T) {
	topo, err := topology.NewDatacenter(topology.DatacenterConfig{
		Clusters: 3, PodsPerCluster: 2, ToRsPerPod: 6, T1PerPod: 4, T2: 6, HostsPerToR: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(incremental bool) *Sim {
		s, err := New(Config{
			Topo:    topo,
			NoiseLo: 0, NoiseHi: 1e-6,
			Workload: traffic.Workload{
				Pattern:        traffic.Uniform{},
				ConnsPerHost:   traffic.IntRange{Lo: 10, Hi: 10},
				PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
			},
			TracerouteCap: 3,
			Seed:          19,
			Parallelism:   4,
			Incremental:   incremental,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	delta, full := mk(true), mk(true)
	l := topo.LinksOfClass(topology.L2Down)[5]
	for _, s := range []*Sim{delta, full} {
		s.Schedule(l, Flap{Rate: 0.05, Period: 2, On: 1})
	}
	for e := 0; e < 3; e++ {
		full.RescoreAll()
		de, fe := delta.RunEpoch(), full.RunEpoch()
		if !reflect.DeepEqual(de, fe) {
			t.Fatalf("datacenter epoch %d: delta diverged from full rescore", e)
		}
		if de.TotalFlows != topo.Cfg.Hosts()*10 {
			t.Fatalf("epoch %d: %d flows, want %d", e, de.TotalFlows, topo.Cfg.Hosts()*10)
		}
	}
}

// RescoreAll on a non-incremental sim is a harmless no-op.
func TestRescoreAllNonIncremental(t *testing.T) {
	s := parallelSim(t, 13, 2)
	a := s.RunEpoch()
	s.RescoreAll()
	b := s.RunEpoch()
	if a.TotalFlows != b.TotalFlows {
		t.Fatalf("flow count changed across RescoreAll: %d -> %d", a.TotalFlows, b.TotalFlows)
	}
}
