package netem

import (
	"math"
	"reflect"
	"testing"

	"vigil/internal/topology"
)

func TestScheduleShapes(t *testing.T) {
	cases := []struct {
		name  string
		sched RateSchedule
		// active[i] is the wanted activity flag for epoch i.
		active []bool
	}{
		{"constant", ConstantRate{Rate: 0.1}, []bool{true, true, true, true}},
		{"window", Window{Rate: 0.1, Start: 1, End: 3}, []bool{false, true, true, false, false}},
		{"flap-50", Flap{Rate: 0.1, Period: 4, On: 2}, []bool{true, true, false, false, true, true, false, false}},
		{"flap-phase", Flap{Rate: 0.1, Period: 4, On: 2, Phase: 3}, []bool{false, true, true, false, false, true}},
		{"flap-degenerate-period", Flap{Rate: 0.1, Period: 0, On: 1}, []bool{false, false}},
		{"flap-degenerate-on", Flap{Rate: 0.1, Period: 4, On: 0}, []bool{false, false}},
		{"intermittent-always", Intermittent{Rate: 0.1, Prob: 1, Seed: 9}, []bool{true, true, true}},
		{"intermittent-never", Intermittent{Rate: 0.1, Prob: 0, Seed: 9}, []bool{false, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for e, want := range tc.active {
				rate, active := tc.sched.RateAt(e)
				if active != want {
					t.Fatalf("epoch %d: active = %v, want %v", e, active, want)
				}
				if rate != 0.1 {
					t.Fatalf("epoch %d: rate = %v, want 0.1", e, rate)
				}
			}
		})
	}
}

// Intermittent epochs must be a pure function of (Seed, epoch): re-querying
// in any order yields the same membership, and the empirical on-fraction
// tracks Prob.
func TestIntermittentIsPureAndCalibrated(t *testing.T) {
	s := Intermittent{Rate: 0.01, Prob: 0.3, Seed: 42}
	const n = 10000
	on := 0
	for e := n - 1; e >= 0; e-- { // reverse order on purpose
		_, a1 := s.RateAt(e)
		_, a2 := s.RateAt(e)
		if a1 != a2 {
			t.Fatalf("epoch %d: RateAt not pure", e)
		}
		if a1 {
			on++
		}
	}
	frac := float64(on) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("on-fraction %v far from Prob 0.3", frac)
	}
}

// A scheduled epoch sequence must follow the script: the link appears in
// FailedLinks and drops packets exactly during its active epochs.
func TestScheduledEpochsFollowScript(t *testing.T) {
	s := smallSim(t, 11)
	bad := s.Topology().LinksOfClass(topology.L1Up)[1]
	s.Schedule(bad, Window{Rate: 0.2, Start: 1, End: 3})
	for e := 0; e < 5; e++ {
		if got := s.EpochIndex(); got != e {
			t.Fatalf("EpochIndex = %d before epoch %d", got, e)
		}
		ep := s.RunEpoch()
		active := e >= 1 && e < 3
		if active {
			if len(ep.FailedLinks) != 1 || ep.FailedLinks[0] != bad {
				t.Fatalf("epoch %d: FailedLinks = %v, want [%v]", e, ep.FailedLinks, bad)
			}
			if ep.LinkDrops[bad] == 0 {
				t.Fatalf("epoch %d: active scheduled link dropped nothing at 20%%", e)
			}
		} else {
			if len(ep.FailedLinks) != 0 {
				t.Fatalf("epoch %d: FailedLinks = %v, want none", e, ep.FailedLinks)
			}
		}
	}
}

// A schedule owns its link: manual injections on a scheduled link are
// overridden at the next epoch, and ClearSchedules restores the noise rate.
func TestScheduleOwnsLink(t *testing.T) {
	s := smallSim(t, 12)
	bad := s.Topology().LinksOfClass(topology.L1Down)[0]
	s.Schedule(bad, Window{Rate: 0.1, Start: 10, End: 11}) // inactive for epochs 0..9
	s.InjectFailure(bad, 0.5)                              // manual injection, overridden
	ep := s.RunEpoch()
	if len(ep.FailedLinks) != 0 {
		t.Fatalf("inactive schedule kept manual injection: %v", ep.FailedLinks)
	}
	s.ClearSchedules()
	if got := s.FailedLinks(); len(got) != 0 {
		t.Fatalf("ClearSchedules left failures: %v", got)
	}
	// After clearing, manual control works again.
	s.InjectFailure(bad, 0.5)
	ep = s.RunEpoch()
	if len(ep.FailedLinks) != 1 || ep.FailedLinks[0] != bad {
		t.Fatalf("manual injection after ClearSchedules: FailedLinks = %v", ep.FailedLinks)
	}
}

// The last of two schedules on the same link wins.
func TestScheduleLastRegistrationWins(t *testing.T) {
	s := smallSim(t, 13)
	bad := s.Topology().LinksOfClass(topology.L1Up)[3]
	s.Schedule(bad, ConstantRate{Rate: 0.3})
	s.Schedule(bad, Window{Rate: 0.3, Start: 5, End: 6}) // inactive now
	ep := s.RunEpoch()
	if len(ep.FailedLinks) != 0 {
		t.Fatalf("earlier schedule won: FailedLinks = %v", ep.FailedLinks)
	}
}

// badSchedule returns an out-of-range rate from epoch 1 on.
type badSchedule struct{ rate float64 }

func (b badSchedule) RateAt(epoch int) (float64, bool) { return b.rate, epoch >= 1 }

// A schedule emitting a rate outside [0, 1] must fail loudly when applied,
// not corrupt the survival-gate terms.
func TestScheduleBadRatePanics(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.5, math.NaN()} {
		s := smallSim(t, 14)
		s.Schedule(s.Topology().LinksOfClass(topology.L1Up)[0], badSchedule{rate: rate})
		s.RunEpoch() // epoch 0: inactive, fine
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %v applied without panic", rate)
				}
			}()
			s.RunEpoch()
		}()
	}
}

// A steady schedule (same rate, still active) must not re-dirty the cached
// failure snapshot: consecutive epochs share the same backing array.
func TestSteadyScheduleKeepsSnapshotCache(t *testing.T) {
	s := smallSim(t, 15)
	s.Schedule(s.Topology().LinksOfClass(topology.L1Up)[0], ConstantRate{Rate: 0.05})
	ep1 := s.RunEpoch()
	ep2 := s.RunEpoch()
	if len(ep1.FailedLinks) != 1 || len(ep2.FailedLinks) != 1 {
		t.Fatalf("FailedLinks = %v / %v", ep1.FailedLinks, ep2.FailedLinks)
	}
	if &ep1.FailedLinks[0] != &ep2.FailedLinks[0] {
		t.Fatal("steady schedule rebuilt the failure snapshot between epochs")
	}
}

// A scheduled multi-epoch run must be bit-identical at every Parallelism:
// the dynamic layer only moves rates between epochs and must not interact
// with the fan-out.
func TestScheduledEpochSequenceBitIdenticalAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []*Epoch {
		topo, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 4, HostsPerToR: 4})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Topo: topo, NoiseLo: 0, NoiseHi: 1e-6, Seed: 77, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		s.Schedule(topo.LinksOfClass(topology.L1Up)[2], Flap{Rate: 0.02, Period: 3, On: 1})
		s.Schedule(topo.LinksOfClass(topology.L2Down)[1], Intermittent{Rate: 0.01, Prob: 0.5, Seed: 5})
		var eps []*Epoch
		for e := 0; e < 6; e++ {
			eps = append(eps, s.RunEpoch())
		}
		return eps
	}
	want := run(1)
	signal := 0
	for _, ep := range want {
		signal += ep.TotalDrops
	}
	if signal == 0 {
		t.Fatal("scheduled run produced no drops to compare")
	}
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("Parallelism %d changed the scheduled epoch sequence", p)
		}
	}
}
