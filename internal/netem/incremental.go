// Incremental delta epochs for datacenter-scale topologies
// (Config.Incremental).
//
// The first epoch runs the full fused pipeline once, freezing the epoch
// seed and with it the flow set, and builds the delta cache: every flow,
// its resolved path (flow→links CSR), the inverted link→flows index, the
// sorted failed-outcome list and the dense ground-truth counters. Every
// later epoch re-scores only the flows whose paths touch links whose rate
// or failure flag changed since the previous epoch — setRate records dirty
// links as schedules, injections and clears land — and carries every other
// flow's cached outcome forward.
//
// The skip is exact, not approximate: each flow draws its drops from its
// private (epochSeed, flow index) stream, and with the seed frozen,
// re-scoring a flow none of whose links changed would reproduce its cached
// outcome bit for bit. RescoreAll invalidates the cache (the seed stays
// frozen) so the next epoch recomputes everything through the full
// pipeline — the equivalence oracle the tests compare delta epochs
// against.
package netem

import (
	"slices"

	"vigil/internal/ecmp"
	"vigil/internal/par"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// incState is the delta cache of an incremental simulation. It freezes the
// epoch's inputs (seed, flows, paths) and carries the previous epoch's
// outputs (failed outcomes, counters) forward so a delta epoch touches only
// the flows crossing changed links.
type incState struct {
	seeded    bool   // epochSeed drawn: the workload is frozen
	valid     bool   // cache live: the next epoch may run the delta path
	epochSeed uint64 // frozen seed shared by every incremental epoch

	flows []traffic.Flow // frozen flow set, dense by flow index

	// Flow → path, CSR: flow fi crosses pathLinks[pathOff[fi]:pathOff[fi+1]].
	// pathLinks is stable for the cache's lifetime, so delta outcomes alias
	// it as their Path instead of copying.
	pathOff   []int32
	pathLinks []topology.LinkID

	// Link → flows, CSR: link l is crossed by the ascending flow indexes
	// linkFlows[linkOff[l]:linkOff[l+1]].
	linkOff   []int32
	linkFlows []int32

	// Previous epoch's outputs. failed is sorted by FlowID with Traced
	// normalized to true — the traceroute budget is a per-epoch overlay
	// applied to each epoch's own copy, never to the cache.
	failed       []FlowOutcome
	linkDrops    []int64
	totalPackets int
	totalDrops   int

	// dirty accumulates the links whose rate or failure flag changed since
	// the last epoch (recorded by setRate); linkStamp dedupes insertions and
	// flowStamp marks the current round's affected flows, so membership
	// tests are O(1) and neither array is ever cleared — round advances
	// past all stamps after every delta epoch.
	dirty     []topology.LinkID
	linkStamp []int32
	flowStamp []int32
	affected  []int32
	round     int32

	// Shard-loop scratch of the cache build and the delta re-score.
	lensByChunk  [][]uint8
	linksByChunk [][]topology.LinkID
	newByChunk   [][]FlowOutcome
	newFlat      []FlowOutcome
}

// prepareBuild sizes the cache-build scratch that the shard loop writes
// into: the dense flow table (workers fill disjoint [flowBase[si],
// flowBase[si+1]) ranges) and the per-chunk path-length and link buffers.
func (inc *incState) prepareBuild(nchunks, nflows int) {
	if cap(inc.flows) < nflows {
		inc.flows = make([]traffic.Flow, nflows)
	}
	inc.flows = inc.flows[:nflows]
	if cap(inc.lensByChunk) < nchunks {
		inc.lensByChunk = make([][]uint8, nchunks)
		inc.linksByChunk = make([][]topology.LinkID, nchunks)
	}
	inc.lensByChunk = inc.lensByChunk[:nchunks]
	inc.linksByChunk = inc.linksByChunk[:nchunks]
}

// buildIncCache finalizes the delta cache from a just-completed full epoch:
// concatenate the per-chunk path records into the flow→links CSR, invert it
// into the link→flows CSR, and snapshot the epoch's outputs. The build is a
// one-time sequential cost per (re)validation — a few linear scans over
// O(flows + Σ path length) — amortized over every delta epoch that follows.
func (s *Sim) buildIncCache(ep *Epoch) {
	inc := &s.inc
	nflows := len(inc.flows)
	nlinks := len(s.topo.Links)

	// Flow → path CSR, concatenating per-chunk buffers in chunk order (=
	// flow order).
	totalLinks := 0
	for _, clinks := range inc.linksByChunk {
		totalLinks += len(clinks)
	}
	if cap(inc.pathOff) < nflows+1 {
		inc.pathOff = make([]int32, nflows+1)
	}
	inc.pathOff = inc.pathOff[:nflows+1]
	if cap(inc.pathLinks) < totalLinks {
		inc.pathLinks = make([]topology.LinkID, totalLinks)
	}
	inc.pathLinks = inc.pathLinks[:totalLinks]
	inc.pathOff[0] = 0
	off := int32(0)
	fi := 0
	pos := 0
	for c, lens := range inc.lensByChunk {
		pos += copy(inc.pathLinks[pos:], inc.linksByChunk[c])
		for _, n := range lens {
			off += int32(n)
			fi++
			inc.pathOff[fi] = off
		}
	}

	// Link → flows CSR by counting sort: count, prefix, fill (the fill
	// advances linkOff in place, then one shift restores the offsets).
	// Filling in flow order keeps every row's flow indexes ascending, which
	// gatherAffected's merge order relies on.
	if cap(inc.linkOff) < nlinks+1 {
		inc.linkOff = make([]int32, nlinks+1)
	}
	inc.linkOff = inc.linkOff[:nlinks+1]
	clear(inc.linkOff)
	for _, l := range inc.pathLinks {
		inc.linkOff[l+1]++
	}
	for l := 0; l < nlinks; l++ {
		inc.linkOff[l+1] += inc.linkOff[l]
	}
	if cap(inc.linkFlows) < totalLinks {
		inc.linkFlows = make([]int32, totalLinks)
	}
	inc.linkFlows = inc.linkFlows[:totalLinks]
	for f := 0; f < nflows; f++ {
		for _, l := range inc.pathLinks[inc.pathOff[f]:inc.pathOff[f+1]] {
			inc.linkFlows[inc.linkOff[l]] = int32(f)
			inc.linkOff[l]++
		}
	}
	for l := nlinks; l > 0; l-- {
		inc.linkOff[l] = inc.linkOff[l-1]
	}
	inc.linkOff[0] = 0

	// Snapshot the epoch's outputs. The cached outcomes share Path and
	// DropsByLink storage with ep.Failed (read-only from here on); Traced is
	// per-copy state and is normalized in the cache.
	inc.failed = append(inc.failed[:0], ep.Failed...)
	for i := range inc.failed {
		inc.failed[i].Traced = true
	}
	if cap(inc.linkDrops) < nlinks {
		inc.linkDrops = make([]int64, nlinks)
	}
	inc.linkDrops = inc.linkDrops[:nlinks]
	copy(inc.linkDrops, ep.LinkDrops)
	inc.totalPackets = ep.TotalPackets
	inc.totalDrops = ep.TotalDrops

	// Fresh stamps: a rebuild after RescoreAll may find stale stamps at or
	// past any restarted round counter, so both arrays reset to zero and the
	// round restarts above them.
	if cap(inc.linkStamp) < nlinks {
		inc.linkStamp = make([]int32, nlinks)
	}
	inc.linkStamp = inc.linkStamp[:nlinks]
	clear(inc.linkStamp)
	if cap(inc.flowStamp) < nflows {
		inc.flowStamp = make([]int32, nflows)
	}
	inc.flowStamp = inc.flowStamp[:nflows]
	clear(inc.flowStamp)
	inc.dirty = inc.dirty[:0]
	inc.round = 1
	inc.valid = true
}

// gatherAffected turns the dirty-link set into the sorted list of flow
// indexes to re-score: the union of the dirty links' link→flows rows,
// deduplicated by stamping each flow with the current round. The stamps
// stay set through the epoch — the merge uses them as the retirement
// membership test for cached outcomes.
func (s *Sim) gatherAffected() []int32 {
	inc := &s.inc
	aff := inc.affected[:0]
	for _, l := range inc.dirty {
		for _, fi := range inc.linkFlows[inc.linkOff[l]:inc.linkOff[l+1]] {
			if inc.flowStamp[fi] != inc.round {
				inc.flowStamp[fi] = inc.round
				aff = append(aff, fi)
			}
		}
	}
	inc.dirty = inc.dirty[:0]
	slices.Sort(aff)
	inc.affected = aff
	return aff
}

// deltaScratch sizes the worker shards (drop-stream RNG and outcome arena;
// the dense counters are unused on the delta path and left untouched) and
// the per-chunk outcome table of the delta re-score.
func (s *Sim) deltaScratch(nchunks int) (shards []epochShard, newByChunk [][]FlowOutcome) {
	nworkers := par.Workers(s.cfg.Parallelism)
	if len(s.shards) != nworkers {
		s.shards = make([]epochShard, nworkers)
		for w := range s.shards {
			s.shards[w].drops = make([]int64, len(s.topo.Links))
		}
	}
	inc := &s.inc
	if cap(inc.newByChunk) < nchunks {
		inc.newByChunk = make([][]FlowOutcome, nchunks)
	}
	clear(inc.newByChunk[:cap(inc.newByChunk)])
	inc.newByChunk = inc.newByChunk[:nchunks]
	return s.shards, inc.newByChunk
}

// runEpochDelta is the incremental epoch: gather the flows affected by
// dirty links, re-score just those in parallel from their stored paths and
// frozen draw streams, and three-way-merge the new outcomes into the cached
// epoch outputs — retire the affected flows' old outcomes (subtracting
// their drops from the carried counters), keep every unaffected outcome,
// add the new ones. The merged failed list stays in flow-index order, so a
// delta epoch is bit-identical to re-scoring every flow of the frozen
// workload against the current rates (see TestIncrementalMatchesFullRescore).
func (s *Sim) runEpochDelta() *Epoch {
	inc := &s.inc
	phaseDelta.Begin()
	defer phaseDelta.End()
	aff := s.gatherAffected()

	grain := par.Grain(len(aff), flowGrainLo, flowGrainHi, grainTarget)
	nchunks := par.Chunks(len(aff), grain)
	shards, newByChunk := s.deltaScratch(nchunks)
	par.ForEachChunkWorker(len(aff), grain, s.cfg.Parallelism, func(w, c, lo, hi int) {
		sh := &shards[w]
		var outs []FlowOutcome
		for i := lo; i < hi; i++ {
			if out, failedFlow := s.rescoreFlow(sh, int64(aff[i])); failedFlow {
				outs = append(outs, out)
			}
		}
		newByChunk[c] = outs
	})
	news := inc.newFlat[:0]
	for _, outs := range newByChunk {
		news = append(news, outs...)
	}
	inc.newFlat = news[:0]

	// Merge: cached outcomes and new outcomes are both sorted by FlowID
	// (chunk order over the sorted affected list preserves it), and an
	// affected flow's cached outcome — stamped with this round — always
	// retires, whether or not a new outcome replaces it.
	merged := inc.failed[:0]
	if len(news) > 0 {
		// The walk reads inc.failed while rewriting it in place, which is
		// safe only when nothing shifts left past the read cursor; new
		// outcomes can shift entries right, so merge into a fresh slice.
		merged = make([]FlowOutcome, 0, len(inc.failed)+len(news))
	}
	old := inc.failed
	i, j := 0, 0
	for i < len(old) || j < len(news) {
		if i < len(old) && (j >= len(news) || old[i].FlowID <= news[j].FlowID) {
			o := old[i]
			i++
			if inc.flowStamp[o.FlowID] == inc.round {
				inc.totalDrops -= o.Drops
				for k, l := range o.Path {
					if d := o.DropsByLink[k]; d != 0 {
						inc.linkDrops[l] -= int64(d)
					}
				}
				continue
			}
			merged = append(merged, o)
		} else {
			n := news[j]
			j++
			inc.totalDrops += n.Drops
			for k, l := range n.Path {
				if d := n.DropsByLink[k]; d != 0 {
					inc.linkDrops[l] += int64(d)
				}
			}
			merged = append(merged, n)
		}
	}
	inc.failed = merged

	nlinks := len(s.topo.Links)
	ep := &Epoch{
		LinkDrops:    make([]int64, nlinks),
		FailedLinks:  s.failedSnapshot(),
		TotalFlows:   len(inc.flows),
		TotalPackets: inc.totalPackets,
		TotalDrops:   inc.totalDrops,
	}
	copy(ep.LinkDrops, inc.linkDrops)
	if len(merged) > 0 {
		ep.Failed = make([]FlowOutcome, len(merged))
		copy(ep.Failed, merged)
		ep.Reports = make([]vote.Report, 0, len(merged))
	}
	// Budget and reports are per-epoch overlays on the epoch's own copy;
	// the failed set is tiny relative to the flow count, so the sequential
	// resolution is cheap here.
	s.resolveBudget(ep)
	inc.round++
	return ep
}

// rescoreFlow re-scores one frozen flow from its stored path against the
// current link rates, drawing from the same private stream the full
// pipeline would, and returns its outcome and whether it lost packets. The
// outcome's Path aliases the stable flow→links CSR — no copy.
func (s *Sim) rescoreFlow(sh *epochShard, fi int64) (FlowOutcome, bool) {
	inc := &s.inc
	f := inc.flows[fi]
	if f.Packets <= 0 {
		return FlowOutcome{}, false
	}
	links := inc.pathLinks[inc.pathOff[fi]:inc.pathOff[fi+1]]
	var perLink [ecmp.MaxPathLinks]uint16
	drops := s.sampleFlowDrops(inc.epochSeed, fi, &sh.rng, links, f.Packets, &perLink)
	if drops == 0 {
		return FlowOutcome{}, false
	}
	out := FlowOutcome{
		FlowID:      fi,
		Flow:        f,
		Path:        links,
		Drops:       drops,
		DropsByLink: sh.arena.copyDrops(perLink[:len(links)]),
		Culprit:     culprit(links, perLink[:len(links)]),
		Traced:      true,
	}
	for _, l := range links {
		if s.isFailed[l] {
			out.CrossedFailure = true
			break
		}
	}
	return out, true
}

// RescoreAll invalidates the delta cache: the next RunEpoch re-scores every
// flow of the frozen workload through the full pipeline and rebuilds the
// cache. Results are bit-identical either way — this is the equivalence
// oracle delta epochs are tested against, and an escape hatch for long
// experiments that want a periodic from-scratch epoch. It is a no-op on
// non-incremental simulations.
func (s *Sim) RescoreAll() { s.inc.valid = false }
