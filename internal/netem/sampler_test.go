package netem

import (
	"math"
	"testing"

	"vigil/internal/ecmp"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
)

// singleFailureSim builds a zero-noise simulator with exactly one link of
// the first host pair's path dropping at rate p, and returns the sim and
// that path. Every drop the sampler produces must come from that link, so
// the flow's total-drop distribution is Binomial(packets, p) — directly
// comparable against stats.BinomialExact.
func singleFailureSim(t testing.TB, p float64) (*Sim, []topology.LinkID) {
	t.Helper()
	topo, err := topology.New(topology.Config{Pods: 1, ToRsPerPod: 2, T1PerPod: 1, T2: 0, HostsPerToR: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo:    topo,
		NoiseLo: 0, NoiseHi: 0,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 1, Hi: 1},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	path, err := s.router.Path(0, 1, ecmp.FiveTuple{
		SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[1].IP,
		SrcPort: 33333, DstPort: 443, Proto: ecmp.ProtoTCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Put the failure mid-path so links before and after it exercise the
	// conditional walk's clean-link branches.
	s.InjectFailure(path.Links[1], p)
	return s, path.Links
}

// gatedSamples draws n total-drop samples through the production sampler —
// survival gate, conditional first-drop walk, unconditional tail cascade —
// each sample from its own per-flow stream, exactly as an epoch would.
func gatedSamples(s *Sim, links []topology.LinkID, packets, n int, epochSeed uint64) []int {
	out := make([]int, n)
	var rng stats.RNG
	var perLink [ecmp.MaxPathLinks]uint16
	for i := range out {
		out[i] = s.sampleFlowDrops(epochSeed, int64(i), &rng, links, packets, &perLink)
		for li := range links {
			if perLink[li] != 0 && links[li] != links[1] {
				panic("drops recorded on a zero-rate link")
			}
		}
	}
	return out
}

// chiSquaredTwoSample computes the two-sample chi-squared statistic between
// integer sample sets a and b, pooling outcome bins until each pooled bin
// holds at least 10 combined observations. Returns the statistic and the
// pooled degrees of freedom.
func chiSquaredTwoSample(a, b []int) (chi2 float64, df int) {
	max := 0
	for _, v := range a {
		if v > max {
			max = v
		}
	}
	for _, v := range b {
		if v > max {
			max = v
		}
	}
	ca := make([]float64, max+1)
	cb := make([]float64, max+1)
	for _, v := range a {
		ca[v]++
	}
	for _, v := range b {
		cb[v]++
	}
	k1 := math.Sqrt(float64(len(b)) / float64(len(a)))
	k2 := math.Sqrt(float64(len(a)) / float64(len(b)))
	var px, py float64
	flush := func() {
		if px+py > 0 {
			d := k1*px - k2*py
			chi2 += d * d / (px + py)
			df++
		}
		px, py = 0, 0
	}
	for i := 0; i <= max; i++ {
		px += ca[i]
		py += cb[i]
		if px+py >= 10 {
			flush()
		}
	}
	flush()
	if df > 0 {
		df--
	}
	return chi2, df
}

// The survival-gated sampler must agree in distribution with the n-trial
// reference BinomialExact across the paper's whole drop-rate regime, from
// noise-floor rates (where the gate all but always short-circuits and the
// conditional machinery handles the 1-in-10⁶ tail) to heavy failure rates
// (where nearly every flow cascades).
func TestGatedSamplerMatchesBinomialExact(t *testing.T) {
	const packets = 100
	for _, tc := range []struct {
		p       float64
		samples int
	}{
		{1e-8, 400000},
		{1e-6, 400000},
		{1e-3, 60000},
		{0.3, 20000},
	} {
		if testing.Short() {
			// The race job runs -short: a tenth of the samples keeps the
			// distributional guard while the full-sample run stays on the
			// ordinary test job. df (and so the bound) adapts to the pooled
			// bin counts, so the smaller sample needs no retuning.
			tc.samples /= 10
		}
		s, links := singleFailureSim(t, tc.p)
		got := gatedSamples(s, links, packets, tc.samples, 23)
		ref := stats.NewRNG(29)
		want := make([]int, tc.samples)
		for i := range want {
			want[i] = ref.BinomialExact(packets, tc.p)
		}
		chi2, df := chiSquaredTwoSample(got, want)
		// Deterministic seeds make this a regression bound rather than a
		// flaky hypothesis test; 3·df+15 is far beyond any plausible
		// quantile of chi-squared(df).
		if limit := 3*float64(df) + 15; chi2 > limit {
			t.Fatalf("p=%g: chi2=%.1f (df=%d) exceeds %.1f", tc.p, chi2, df, limit)
		}
		// Cross-check the nonzero mass directly: with both samplers it must
		// sit within Poisson-scale noise of n·P(X>=1).
		gn, wn := 0, 0
		for i := range got {
			if got[i] > 0 {
				gn++
			}
			if want[i] > 0 {
				wn++
			}
		}
		pAny := -math.Expm1(float64(packets) * math.Log1p(-tc.p))
		expect := float64(tc.samples) * pAny
		slack := 6*math.Sqrt(expect) + 6
		if math.Abs(float64(gn)-expect) > slack || math.Abs(float64(wn)-expect) > slack {
			t.Fatalf("p=%g: nonzero counts gated=%d exact=%d, want %.1f±%.1f", tc.p, gn, wn, expect, slack)
		}
	}
}

// A dropping flow's per-link vector must still conserve packets and stay on
// the path when several links fail at once (first-drop link conditional,
// tail links unconditional).
func TestGatedSamplerMultiFailureConservation(t *testing.T) {
	s, links := singleFailureSim(t, 0.05)
	s.InjectFailure(links[2], 0.1)
	var rng stats.RNG
	var perLink [ecmp.MaxPathLinks]uint16
	const packets = 100
	seen := 0
	for fi := int64(0); fi < 20000; fi++ {
		total := s.sampleFlowDrops(31, fi, &rng, links, packets, &perLink)
		sum := 0
		for li := range links {
			sum += int(perLink[li])
		}
		if total > 0 {
			seen++
			if sum != total {
				t.Fatalf("flow %d: per-link sum %d != total %d", fi, sum, total)
			}
			if total > packets {
				t.Fatalf("flow %d: dropped %d of %d packets", fi, total, packets)
			}
		}
	}
	if seen < 19000 {
		t.Fatalf("only %d of 20000 flows dropped at 5%%+10%%", seen)
	}
}

// The steady-state per-flow path must be allocation-free: a warmed Sim's
// epoch cost is O(1) allocations however many flows it simulates. This is
// the regression guard for the zero-allocation hot path.
func TestSteadyStateEpochAllocs(t *testing.T) {
	topo, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 8, T1PerPod: 3, T2: 4, HostsPerToR: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo: topo,
		// Noise so low the gate is exercised on every flow but essentially
		// never fires: the epoch stays on the zero-allocation path.
		NoiseLo: 0, NoiseHi: 1e-12,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 50, Hi: 50},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		Seed:        3,
		Parallelism: 1, // inline: no goroutine bookkeeping in the count
	})
	if err != nil {
		t.Fatal(err)
	}
	warm := s.RunEpoch() // allocate and retain the reusable scratch
	flows := warm.TotalFlows
	if flows < 5000 {
		t.Fatalf("want a multi-chunk epoch, got %d flows", flows)
	}
	avg := testing.AllocsPerRun(10, func() {
		ep := s.RunEpoch()
		if len(ep.Failed) > 0 {
			t.Fatalf("steady-state epoch dropped packets (%d failed flows)", len(ep.Failed))
		}
	})
	// The fixed per-epoch cost (Epoch struct, dense LinkDrops, fan-out
	// closures) stays under a dozen allocations; per-flow that must round
	// to zero.
	if avg > 16 {
		t.Fatalf("steady-state epoch allocates %.1f times (%d flows)", avg, flows)
	}
	if perFlow := avg / float64(flows); perFlow > 0.005 {
		t.Fatalf("steady-state per-flow allocations %.4f, want ~0", perFlow)
	}
}
