// Package netem is the flow-level network simulator of the paper's §6
// evaluation (the Go equivalent of the authors' MATLAB simulator [25]).
//
// Each epoch it generates flows, resolves their ECMP paths, and samples
// every flow's packet drops: link i sees only the packets that survived
// links 1..i-1, and drops of them a Binomial(survivors, rate_i) share. Good
// links drop at a noise rate drawn uniformly from (0, 1e-6) by default;
// failed links at injected rates. The simulator records complete ground
// truth — which link dropped how many of which flow's packets — against
// which 007 and the optimization baselines are scored.
//
// The per-flow hot path is survival-gated and allocation-free: a single
// uniform draw against the precomputed whole-path survival probability
// pNoDrop = exp(packets · Σ log(1-rate_l)) decides whether the flow loses
// anything at all, and only the rare flow that does falls through to the
// exact per-link conditional Binomial cascade (rejection-resampled until
// nonzero, which leaves the joint drop distribution unchanged). Paths
// resolve into per-worker fixed-size buffers, failed-flow state is copied
// into per-worker arenas, and all per-epoch scratch is owned by the Sim —
// see DESIGN.md ("Hot-path memory model").
//
// Epochs run as a deterministic parallel pipeline fused end to end: sources
// are split into chunks whose size depends only on the source count, and
// each worker generates a source's flows and simulates them in the same
// pass — the full flow list is never materialized. Every source generates
// from its own (epoch seed, source index) RNG stream and every flow draws
// its drops from its own (epoch seed, flow index) stream, with global flow
// indexes prefix-summed from per-source counts before the fan-out. Ground
// truth accumulates into shard-local dense counters merged over disjoint
// link ranges in parallel, per-chunk outcome and report lists concatenate
// in chunk order, and the traceroute budget resolves inside the shard loop
// (a host's flows are contiguous in flow order, so the budget is
// per-source-local). Because no draw and no reduction depends on worker
// interleaving, a seeded epoch is bit-identical at any parallelism — see
// DESIGN.md ("Determinism contract", "Scaling the flow plane").
//
// Config.Incremental adds the datacenter-scale delta mode: the flow set and
// per-flow draw streams freeze after the first epoch, and later epochs
// re-score only the flows whose paths touch links whose rates changed,
// carrying every other flow's outcome forward — see incremental.go.
package netem

import (
	"fmt"
	"math"
	"sort"

	"vigil/internal/ecmp"
	"vigil/internal/metrics"
	"vigil/internal/par"
	"vigil/internal/prof"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Config parametrizes a simulation.
type Config struct {
	Topo     *topology.Topology
	Workload traffic.Workload
	// NoiseLo/NoiseHi bound the per-link noise drop rate of good links;
	// each good link's rate is drawn uniformly from [NoiseLo, NoiseHi).
	// The paper's default is (0, 1e-6).
	NoiseLo, NoiseHi float64
	// TracerouteCap limits how many flows per host per epoch get their path
	// discovered (the host-side Ct rate limit of Theorem 1, times the epoch
	// length). 0 means unlimited. Flows over the cap still count as failed
	// but produce no report, exactly like 007 past its ICMP budget (§9.1).
	TracerouteCap int
	// Seed fixes the noise-rate draw and all epoch randomness derivation.
	Seed uint64
	// Parallelism is the epoch worker count; 0 means runtime.GOMAXPROCS(0).
	// Epoch results are bit-identical at every setting — the knob trades
	// cores for wall-clock only.
	Parallelism int
	// Incremental enables delta epochs for datacenter-scale topologies: the
	// epoch seed and flow set freeze after the first epoch, and every later
	// epoch re-scores only the flows whose paths touch links whose rates
	// changed since the previous epoch (schedules, injections and clears all
	// count), carrying the cached outcome of every untouched flow forward.
	// Results are bit-identical to re-scoring all flows against the frozen
	// draws (see RescoreAll and DESIGN.md "Scaling the flow plane"); the
	// trade is O(flows + Σ path length) cache memory and epoch-to-epoch
	// statistical independence, which a frozen workload no longer has.
	Incremental bool
}

// Sim is a ready-to-run simulator. Failures are injected per directed link
// and can be changed between epochs.
type Sim struct {
	cfg      Config
	topo     *topology.Topology
	router   *ecmp.Router
	rng      *stats.RNG
	noise    []float64 // per-link noise rate
	rate     []float64 // per-link effective rate (noise or failure)
	logq     []float64 // per-link log1p(-rate), the survival-gate summands
	isFailed []bool    // dense failure flags, indexed by LinkID
	failures map[topology.LinkID]float64

	// failedSorted caches the sorted failure snapshot; failedDirty marks it
	// stale after Inject/Clear. The cached slice is never mutated in place —
	// invalidation rebuilds a fresh slice — so epochs may hold it by
	// reference.
	failedSorted []topology.LinkID
	failedDirty  bool

	// schedules scripts time-varying link rates (see schedule.go); epochIdx
	// is the index of the next epoch, fed to RateSchedule.RateAt.
	schedules []linkSchedule
	epochIdx  int

	// Per-epoch scratch, reused across RunEpoch calls (a Sim is not safe for
	// concurrent RunEpoch anyway): worker shards, the per-chunk outcome and
	// report tables, the per-source flow-index bases, the dense traceroute
	// budget and the cached dense source list.
	shards         []epochShard
	failedByChunk  [][]FlowOutcome
	reportsByChunk [][]vote.Report
	flowBase       []int32 // per-source global flow-index prefix sums
	budget         []int32 // per-host traced-flow counts, dense by HostID
	srcs           []topology.HostID

	// budgetLocal marks that the traceroute budget can be resolved inside
	// the shard loop: every source host appears exactly once, so a host's
	// flows are contiguous in flow order and the first-Cap-failed-flows rule
	// is per-source-local. It is false only for workloads that list the same
	// host twice in Workload.Hosts, which fall back to the sequential
	// post-pass.
	budgetLocal bool

	// inc is the incremental-delta state (Config.Incremental; incremental.go).
	inc incState
}

// New builds a simulator, drawing per-link noise rates.
func New(cfg Config) (*Sim, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("netem: Config.Topo is required")
	}
	if cfg.NoiseHi < cfg.NoiseLo || cfg.NoiseLo < 0 {
		return nil, fmt.Errorf("netem: bad noise range [%g,%g)", cfg.NoiseLo, cfg.NoiseHi)
	}
	if cfg.Workload.Pattern == nil {
		cfg.Workload = traffic.DefaultWorkload()
	}
	rng := stats.NewRNG(cfg.Seed)
	nlinks := len(cfg.Topo.Links)
	s := &Sim{
		cfg:      cfg,
		topo:     cfg.Topo,
		router:   ecmp.NewRouter(cfg.Topo, ecmp.NewSeeds(cfg.Topo, rng.Split())),
		rng:      rng,
		noise:    make([]float64, nlinks),
		rate:     make([]float64, nlinks),
		logq:     make([]float64, nlinks),
		isFailed: make([]bool, nlinks),
		failures: make(map[topology.LinkID]float64),
		budget:   make([]int32, len(cfg.Topo.Hosts)),
	}
	s.budgetLocal = uniqueHosts(cfg.Workload.Hosts)
	for i := range s.noise {
		s.noise[i] = rng.Uniform(cfg.NoiseLo, cfg.NoiseHi)
		s.rate[i] = s.noise[i]
		s.logq[i] = math.Log1p(-s.noise[i])
	}
	return s, nil
}

// uniqueHosts reports whether no host appears twice in the source list; a
// nil list means "every host once" and is trivially unique.
func uniqueHosts(hosts []topology.HostID) bool {
	if len(hosts) < 2 {
		return true
	}
	seen := make(map[topology.HostID]struct{}, len(hosts))
	for _, h := range hosts {
		if _, dup := seen[h]; dup {
			return false
		}
		seen[h] = struct{}{}
	}
	return true
}

// Topology returns the simulated topology.
func (s *Sim) Topology() *topology.Topology { return s.topo }

// Router returns the simulator's ECMP router.
func (s *Sim) Router() *ecmp.Router { return s.router }

// setRate updates every per-link view of link l's drop rate: the effective
// rate, the survival-gate log term and the dense failure flag. When a live
// delta cache exists, a change to either the rate (new draws) or the
// failure flag (new CrossedFailure truth) marks the link dirty, scheduling
// every flow whose path touches it for re-scoring next epoch.
func (s *Sim) setRate(l topology.LinkID, rate float64, failed bool) {
	if s.inc.valid && (s.rate[l] != rate || s.isFailed[l] != failed) && s.inc.linkStamp[l] != s.inc.round {
		s.inc.linkStamp[l] = s.inc.round
		s.inc.dirty = append(s.inc.dirty, l)
	}
	s.rate[l] = rate
	s.logq[l] = math.Log1p(-rate)
	s.isFailed[l] = failed
	s.failedDirty = true
}

// InjectFailure sets link l's drop rate, replacing its noise rate.
func (s *Sim) InjectFailure(l topology.LinkID, rate float64) {
	s.failures[l] = rate
	s.setRate(l, rate, true)
}

// ClearFailure restores link l to its noise rate.
func (s *Sim) ClearFailure(l topology.LinkID) {
	delete(s.failures, l)
	s.setRate(l, s.noise[l], false)
}

// ClearAllFailures restores every link to its noise rate.
func (s *Sim) ClearAllFailures() {
	for l := range s.failures {
		s.setRate(l, s.noise[l], false)
		delete(s.failures, l)
	}
}

// failedSnapshot returns the cached sorted failure set, rebuilding it only
// after an Inject/Clear. The returned slice must not be mutated: it is
// shared with every Epoch simulated until the next invalidation.
func (s *Sim) failedSnapshot() []topology.LinkID {
	if s.failedDirty || s.failedSorted == nil {
		out := make([]topology.LinkID, 0, len(s.failures))
		for l := range s.failures {
			out = append(out, l)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		s.failedSorted = out
		s.failedDirty = false
	}
	return s.failedSorted
}

// FailedLinks returns the injected failures, sorted by link for stability.
// The caller owns the returned slice.
func (s *Sim) FailedLinks() []topology.LinkID {
	snap := s.failedSnapshot()
	out := make([]topology.LinkID, len(snap))
	copy(out, snap)
	return out
}

// FlowOutcome is the ground truth for one flow that lost packets.
type FlowOutcome struct {
	FlowID      int64 // matches the Report's FlowID
	Flow        traffic.Flow
	Path        []topology.LinkID
	Drops       int      // total packets lost = retransmissions seen by TCP
	DropsByLink []uint16 // aligned with Path
	Culprit     topology.LinkID
	// CrossedFailure records whether the path contains an injected failure:
	// the flows for which ground truth attribution is meaningful (§7.2).
	CrossedFailure bool
	Traced         bool // false when the host's traceroute budget ran out
}

// Epoch is one 30-second simulation round.
type Epoch struct {
	// Failed lists every flow that lost at least one packet, in flow-index
	// order regardless of how many workers simulated the epoch.
	Failed []FlowOutcome
	// Reports carries what 007's analysis agent receives: one report per
	// failed flow whose path was discovered.
	Reports []vote.Report
	// LinkDrops is the ground-truth number of packets each link dropped,
	// dense and indexed by LinkID (merged from the per-shard counters).
	LinkDrops []int64
	// FailedLinks snapshots the injected failures during this epoch. It may
	// share storage with other epochs of the same Sim; treat it as
	// read-only.
	FailedLinks []topology.LinkID

	TotalFlows   int
	TotalPackets int
	TotalDrops   int
}

// Fan-out granularities of the epoch pipeline, all chosen by par.Grain from
// item counts alone (never the worker count) so chunk boundaries — and with
// them the chunk-ordered merges — are identical at any parallelism.
//
//   - Source chunks drive the fused generate-and-simulate shard loop: the
//     floor keeps test-sized topologies from sharding into per-host
//     confetti, the ceiling keeps a datacenter epoch from concentrating
//     into too few chunks to load-balance.
//   - Link chunks drive the parallel merge of the per-worker dense drop
//     counters over disjoint LinkID ranges; the floor keeps small
//     topologies on a single inline chunk where the merge is a memcpy-rate
//     scan.
//   - Flow chunks drive the incremental delta re-score fan-out
//     (incremental.go), whose items are individual affected flows.
const (
	srcGrainLo  = 16
	srcGrainHi  = 2048
	linkGrainLo = 4096
	linkGrainHi = 1 << 16
	flowGrainLo = 64
	flowGrainHi = 8192
	grainTarget = 64 // aim for ~64 chunks: headroom over any realistic core count
)

// Epoch phases for pprof attribution: a CPU profile of any epoch driver
// (`go test -cpuprofile`, or -cpuprofile on a vigil tool) splits by
// `pprof -tags` into count/shard/merge/delta. Workers spawned inside a
// phase inherit its label; Begin/End themselves are allocation-free, which
// keeps the zero-alloc steady-state epoch contract intact.
var (
	phaseCount = prof.NewPhase("count")
	phaseShard = prof.NewPhase("shard")
	phaseMerge = prof.NewPhase("merge")
	phaseDelta = prof.NewPhase("delta")
)

// dropDomain separates the per-flow drop streams from the per-source
// generation streams that share the epoch seed: DeriveRNG(epochSeed, si)
// generates source si's flows while DeriveRNG(epochSeed^dropDomain, fi)
// drives flow fi's drop draws, so a flow never replays the draw sequence
// that generated it.
const dropDomain = 0xd6e8feb86659fd93

// arenaBlock sizes the outcome arenas' allocation blocks, in path links.
// One block holds the Path+DropsByLink storage of ~80 failed flows, so an
// epoch's rare failures cost a handful of block allocations instead of two
// slice allocations per outcome.
const arenaBlock = 512

// outcomeArena block-allocates the Path and DropsByLink storage of failed
// flows. Each worker owns one; alloc hands out stable sub-slices of the
// current block and starts a fresh block when full, so previously returned
// slices are never moved or aliased. Blocks escape into the Epoch with the
// outcomes that point into them, which is why reset drops the block
// reference instead of rewinding it.
type outcomeArena struct {
	links []topology.LinkID
	drops []uint16
}

// reset forgets the current blocks. The previous epoch's outcomes keep the
// old blocks alive; the new epoch starts clean.
func (a *outcomeArena) reset() { a.links, a.drops = nil, nil }

// copyPath copies src into arena-backed storage and returns the copy.
func (a *outcomeArena) copyPath(src []topology.LinkID) []topology.LinkID {
	n := len(src)
	if len(a.links)+n > cap(a.links) {
		a.links = make([]topology.LinkID, 0, arenaBlock)
	}
	dst := a.links[len(a.links) : len(a.links)+n : len(a.links)+n]
	a.links = a.links[:len(a.links)+n]
	copy(dst, src)
	return dst
}

// copyDrops copies src into arena-backed storage and returns the copy.
func (a *outcomeArena) copyDrops(src []uint16) []uint16 {
	n := len(src)
	if len(a.drops)+n > cap(a.drops) {
		a.drops = make([]uint16, 0, arenaBlock)
	}
	dst := a.drops[len(a.drops) : len(a.drops)+n : len(a.drops)+n]
	a.drops = a.drops[:len(a.drops)+n]
	copy(dst, src)
	return dst
}

// epochShard accumulates one worker's slice of the epoch ground truth plus
// the worker's reusable scratch (path buffer, per-flow and generation RNGs,
// one-source flow buffer, outcome arena). The counters are order-free
// integer sums, so one shard per *worker* suffices (O(workers × links)
// memory, not O(chunks × links)); only the per-chunk FlowOutcome and Report
// lists are order-sensitive and those are keyed by chunk. Padding keeps
// adjacent workers' hot counters off a shared cache line.
type epochShard struct {
	drops   []int64 // dense by LinkID
	packets int
	dropped int
	pathBuf ecmp.PathBuf
	rng     stats.RNG // drop-stream generator, reseeded per dropping flow
	genRNG  stats.RNG // generation-stream generator, reseeded per source
	flowBuf []traffic.Flow
	arena   outcomeArena
	_       [64]byte
}

// sources resolves the epoch's originating hosts: Workload.Hosts when the
// workload restricts them, otherwise every host, cached densely in s.srcs.
func (s *Sim) sources() []topology.HostID {
	if s.cfg.Workload.Hosts != nil {
		return s.cfg.Workload.Hosts
	}
	if len(s.srcs) != len(s.topo.Hosts) {
		s.srcs = make([]topology.HostID, len(s.topo.Hosts))
		for i := range s.srcs {
			s.srcs[i] = topology.HostID(i)
		}
	}
	return s.srcs
}

// flowBases prefix-sums the per-source flow counts of the epoch into
// s.flowBase: source si's flows occupy the global flow indexes
// [flowBase[si], flowBase[si+1]), which is what lets workers generate and
// simulate sources independently while drawing every flow's drops from the
// same (epoch seed, flow index) stream the materializing pipeline would.
// Constant-connection workloads — the benchmark and paper defaults — skip
// the per-source count draws entirely; the bases are pure arithmetic.
// Returns the epoch's total flow count.
func (s *Sim) flowBases(epochSeed uint64, nsrc int) int {
	if cap(s.flowBase) < nsrc+1 {
		s.flowBase = make([]int32, nsrc+1)
	}
	s.flowBase = s.flowBase[:nsrc+1]
	fb := s.flowBase
	fb[0] = 0
	w := s.cfg.Workload
	if w.ConstantConns() {
		c := w.ConnsPerHost.Lo
		if c < 0 {
			c = 0
		}
		for i := 1; i <= nsrc; i++ {
			fb[i] = fb[i-1] + int32(c)
		}
		return int(fb[nsrc])
	}
	// Count in parallel (each source's count is the head draw of its private
	// generation stream, so counting consumes nothing the generators need),
	// then prefix-sum sequentially — a trivial scan even at datacenter scale.
	par.ForEachChunk(nsrc, par.Grain(nsrc, srcGrainLo, srcGrainHi, grainTarget), s.cfg.Parallelism, func(_, lo, hi int) {
		for si := lo; si < hi; si++ {
			n := w.FlowsOf(epochSeed, si)
			if n < 0 {
				n = 0
			}
			fb[si+1] = int32(n)
		}
	})
	total := int64(0)
	for i := 1; i <= nsrc; i++ {
		total += int64(fb[i])
		if total > math.MaxInt32 {
			panic("netem: epoch flow count overflows int32 flow-index bases")
		}
		fb[i] = int32(total)
	}
	return int(total)
}

// epochScratch (re)sizes the Sim-owned shard and chunk scratch for an epoch
// of nchunks source chunks, zeroing the counters carried over from the last
// epoch.
func (s *Sim) epochScratch(nchunks int) (shards []epochShard, failedByChunk [][]FlowOutcome, reportsByChunk [][]vote.Report) {
	nworkers := par.Workers(s.cfg.Parallelism)
	if len(s.shards) != nworkers {
		s.shards = make([]epochShard, nworkers)
	}
	nlinks := len(s.topo.Links)
	for w := range s.shards {
		sh := &s.shards[w]
		if sh.drops == nil {
			sh.drops = make([]int64, nlinks)
		} else {
			clear(sh.drops)
		}
		sh.packets, sh.dropped = 0, 0
		sh.arena.reset()
	}
	if cap(s.failedByChunk) < nchunks {
		s.failedByChunk = make([][]FlowOutcome, nchunks)
		s.reportsByChunk = make([][]vote.Report, nchunks)
	}
	// Clear through cap, not just nchunks: a shorter epoch must not leave
	// stale tail entries pinning the previous epoch's outcomes and arena
	// blocks.
	clear(s.failedByChunk[:cap(s.failedByChunk)])
	clear(s.reportsByChunk[:cap(s.reportsByChunk)])
	s.failedByChunk = s.failedByChunk[:nchunks]
	s.reportsByChunk = s.reportsByChunk[:nchunks]
	return s.shards, s.failedByChunk, s.reportsByChunk
}

// RunEpoch simulates one epoch through the fused pipeline (runEpochFull) —
// or, when Config.Incremental has a live cache, through the delta path that
// re-scores only the flows touched by link-rate changes (incremental.go).
// Steady-state epochs (no failed flows) allocate O(1) memory regardless of
// flow count.
func (s *Sim) RunEpoch() *Epoch {
	// Settle scripted link rates for this epoch before any randomness is
	// drawn or any worker starts (see schedule.go).
	s.applySchedules()
	s.epochIdx++
	if s.cfg.Incremental {
		if s.inc.valid {
			return s.runEpochDelta()
		}
		if !s.inc.seeded {
			// The one epoch-seed draw of the simulation: incremental mode
			// freezes the workload, so every epoch re-scores the same flows
			// against the same per-flow streams.
			s.inc.epochSeed = s.rng.Uint64()
			s.inc.seeded = true
		}
		return s.runEpochFull(s.inc.epochSeed, true)
	}
	// One draw per epoch advances the per-epoch stream.
	return s.runEpochFull(s.rng.Uint64(), false)
}

// runEpochFull is the fused generate-and-simulate pipeline: prefix-sum the
// per-source flow counts into global flow-index bases, fan source chunks
// out to workers that generate each source's flows and simulate them in the
// same pass (the full flow list is never materialized), then merge — shard
// counters over disjoint link ranges in parallel, per-chunk outcome and
// report lists concatenated in chunk order. The traceroute budget resolves
// inside the shard loop: a host's flows are contiguous in flow order, so
// the first-Cap-failed-flows rule is per-source-local whenever no host
// appears twice in the source list (s.budgetLocal); the rare duplicate-host
// workload falls back to the sequential post-pass.
//
// buildCache additionally records every flow and its resolved path into the
// incremental-delta cache (incremental.go).
func (s *Sim) runEpochFull(epochSeed uint64, buildCache bool) *Epoch {
	phaseCount.Begin()
	srcs := s.sources()
	nsrc := len(srcs)
	total := s.flowBases(epochSeed, nsrc)
	phaseCount.End()

	nlinks := len(s.topo.Links)
	ep := &Epoch{
		LinkDrops:   make([]int64, nlinks),
		FailedLinks: s.failedSnapshot(),
		TotalFlows:  total,
	}
	grain := par.Grain(nsrc, srcGrainLo, srcGrainHi, grainTarget)
	nchunks := par.Chunks(nsrc, grain)
	shards, failedByChunk, reportsByChunk := s.epochScratch(nchunks)
	tcap := s.cfg.TracerouteCap
	budgetInShard := tcap > 0 && s.budgetLocal
	emitReports := tcap == 0 || s.budgetLocal
	epoch := int32(s.epochIdx - 1)
	if buildCache {
		s.inc.prepareBuild(nchunks, total)
	}

	phaseShard.Begin()
	par.ForEachChunkWorker(nsrc, grain, s.cfg.Parallelism, func(w, c, lo, hi int) {
		sh := &shards[w]
		var failed []FlowOutcome
		var reports []vote.Report
		var lens []uint8
		var clinks []topology.LinkID
		if buildCache {
			lens = s.inc.lensByChunk[c][:0]
			clinks = s.inc.linksByChunk[c][:0]
		}
		for si := lo; si < hi; si++ {
			buf := s.cfg.Workload.AppendFlowsOf(sh.flowBuf[:0], &sh.genRNG, epochSeed, si, s.topo, srcs[si])
			sh.flowBuf = buf
			base := int64(s.flowBase[si])
			traced := 0
			// Per-agent report sequence: one source's flows are contiguous,
			// so counting emissions per source slot yields dense per-agent
			// sequences whenever hosts are unique (the duplicate-host
			// fallback restamps after the merge).
			seq := int32(0)
			for j := range buf {
				fi := base + int64(j)
				out, failedFlow := s.simFlow(sh, epochSeed, fi, buf[j])
				if buildCache {
					links := sh.pathBuf.Links()
					s.inc.flows[fi] = buf[j]
					lens = append(lens, uint8(len(links)))
					clinks = append(clinks, links...)
				}
				if !failedFlow {
					continue
				}
				if budgetInShard {
					if traced >= tcap {
						out.Traced = false
					} else {
						traced++
					}
				}
				if emitReports && out.Traced {
					reports = append(reports, vote.Report{
						FlowID: out.FlowID,
						Src:    out.Flow.Src, Dst: out.Flow.Dst,
						Path:  out.Path,
						Retx:  out.Drops,
						Epoch: epoch,
						Seq:   seq,
					})
					seq++
				}
				failed = append(failed, out)
			}
		}
		failedByChunk[c] = failed
		reportsByChunk[c] = reports
		if buildCache {
			s.inc.lensByChunk[c] = lens
			s.inc.linksByChunk[c] = clinks
		}
	})
	phaseShard.End()

	phaseMerge.Begin()
	totalFailed := 0
	for _, failed := range failedByChunk {
		totalFailed += len(failed)
	}
	for w := range shards {
		sh := &shards[w]
		ep.TotalPackets += sh.packets
		ep.TotalDrops += sh.dropped
	}
	// Dense counter merge: integer sums over disjoint link ranges are
	// order-free, so the ranges fan out to workers; a single-worker epoch is
	// a straight copy. Skipping zero entries keeps the merge read-dominated
	// in the common all-but-quiet epoch.
	if len(shards) == 1 {
		copy(ep.LinkDrops, shards[0].drops)
	} else {
		par.ForEachChunk(nlinks, par.Grain(nlinks, linkGrainLo, linkGrainHi, grainTarget), s.cfg.Parallelism, func(_, lo, hi int) {
			for w := range shards {
				drops := shards[w].drops
				for l := lo; l < hi; l++ {
					if d := drops[l]; d != 0 {
						ep.LinkDrops[l] += d
					}
				}
			}
		})
	}
	// Per-chunk outcome and report lists concatenate in chunk order,
	// restoring ascending flow-index order. Sizing happens up front so
	// Failed and Reports never regrow.
	if totalFailed > 0 {
		ep.Failed = make([]FlowOutcome, 0, totalFailed)
		for _, failed := range failedByChunk {
			ep.Failed = append(ep.Failed, failed...)
		}
		if emitReports {
			nrep := 0
			for _, reports := range reportsByChunk {
				nrep += len(reports)
			}
			ep.Reports = make([]vote.Report, 0, nrep)
			for _, reports := range reportsByChunk {
				ep.Reports = append(ep.Reports, reports...)
			}
			if !s.budgetLocal {
				// Duplicate-host workload without a budget cap: a host's
				// reports span several source slots, so the per-slot
				// counters collide. Restamp densely per agent in merged
				// (flow) order, reusing the budget vector as the counter.
				clear(s.budget)
				for i := range ep.Reports {
					r := &ep.Reports[i]
					r.Seq = s.budget[r.Src]
					s.budget[r.Src]++
				}
			}
		} else {
			ep.Reports = make([]vote.Report, 0, totalFailed)
		}
	}
	if !emitReports {
		// Duplicate-host fallback: the budget is order-sensitive across the
		// host's scattered flow blocks, so it runs as a sequential post-pass
		// over the merged outcomes, counting per host in the dense reusable
		// budget vector.
		s.resolveBudget(ep)
	}
	phaseMerge.End()

	if buildCache {
		s.buildIncCache(ep)
	}
	return ep
}

// resolveBudget applies the traceroute budget to ep.Failed in flow order
// and emits the reports of traced flows — the sequential resolution used by
// duplicate-host workloads and by delta epochs (whose failed set is small).
// The budget vector doubles as the per-agent sequence counter: only emitted
// reports increment it, so sequences come out dense per (agent, epoch).
func (s *Sim) resolveBudget(ep *Epoch) {
	epoch := int32(s.epochIdx - 1)
	tcap := s.cfg.TracerouteCap
	if len(ep.Failed) > 0 {
		clear(s.budget)
	}
	for i := range ep.Failed {
		out := &ep.Failed[i]
		if tcap > 0 && int(s.budget[out.Flow.Src]) >= tcap {
			out.Traced = false
			continue
		}
		seq := s.budget[out.Flow.Src]
		s.budget[out.Flow.Src]++
		ep.Reports = append(ep.Reports, vote.Report{
			FlowID: out.FlowID,
			Src:    out.Flow.Src, Dst: out.Flow.Dst,
			Path:  out.Path,
			Retx:  out.Drops,
			Epoch: epoch,
			Seq:   seq,
		})
	}
}

// simFlow routes one flow and samples its drops into sh, drawing from the
// flow's private RNG stream so the result is independent of which worker
// runs it and in what order. It returns the flow's outcome and whether the
// flow lost packets; surviving flows — the overwhelming majority — return
// a zero outcome and perform no heap allocation. On return sh.pathBuf still
// holds the flow's resolved path (the cache build reads it).
func (s *Sim) simFlow(sh *epochShard, epochSeed uint64, fi int64, f traffic.Flow) (FlowOutcome, bool) {
	if err := s.router.PathInto(f.Src, f.Dst, f.Tuple, &sh.pathBuf); err != nil {
		// Unreachable by construction; surface loudly if it happens.
		panic(fmt.Sprintf("netem: routing %v: %v", f.Tuple, err))
	}
	links := sh.pathBuf.Links()
	sh.packets += f.Packets
	if f.Packets <= 0 {
		return FlowOutcome{}, false
	}
	var perLink [ecmp.MaxPathLinks]uint16
	drops := s.sampleFlowDrops(epochSeed, fi, &sh.rng, links, f.Packets, &perLink)
	if drops == 0 {
		return FlowOutcome{}, false
	}
	for li, l := range links {
		if d := perLink[li]; d != 0 {
			sh.drops[l] += int64(d)
		}
	}
	sh.dropped += drops
	out := FlowOutcome{
		FlowID:      fi,
		Flow:        f,
		Path:        sh.arena.copyPath(links),
		Drops:       drops,
		DropsByLink: sh.arena.copyDrops(perLink[:len(links)]),
		Culprit:     culprit(links, perLink[:len(links)]),
		Traced:      true,
	}
	for _, l := range links {
		if s.isFailed[l] {
			out.CrossedFailure = true
			break
		}
	}
	return out, true
}

// sampleFlowDrops samples one flow's per-link drop vector into perLink and
// returns the total, drawing only from the flow's private (epochSeed, fi)
// streams so the result is identical whichever worker runs it. rng is the
// caller's reusable generator; it is reseeded here and touched only when
// the flow actually drops. The non-dropping path — the overwhelming
// majority of flows — costs one counter-based uniform draw and no heap
// allocation.
//
// Survival gate: pNoDrop = Π_l (1-rate_l)^packets = exp(packets · Σ logq_l)
// is the probability that none of the flow's packets is dropped anywhere on
// the path. One uniform draw against it replaces the per-link Binomial walk.
// The comparison avoids math.Exp outside a ~x²/2-wide window using the
// bracket 1+x ≤ eˣ ≤ 1+x+x²/2 (x ≤ 0).
//
// Dropping flows sample the per-link cascade — d_i ~ Binomial(survivors,
// rate_i) down the path — conditioned on a nonzero total, exactly and in
// O(path) time: while no drop has happened yet the survivor count is still
// the full packet count, so the chain rule gives closed-form odds that link
// i stays clean given that some link from i onward must drop,
//
//	P(d_i = 0 | drop in i..k) = (1-p_i)^n · P(drop in i+1..k) / P(drop in i..k)
//
// with P(drop in j..k) = -expm1(n·suf[j]). The first link that fails this
// draw takes its count from stats.BinomialNonzero (Binomial conditioned
// >= 1); every later link runs the ordinary unconditional cascade over the
// reduced survivor count. Naively rejection-resampling the whole cascade
// until nonzero would cost an expected 1/P(drop) passes — this costs one.
func (s *Sim) sampleFlowDrops(epochSeed uint64, fi int64, rng *stats.RNG, links []topology.LinkID, packets int, perLink *[ecmp.MaxPathLinks]uint16) int {
	// suf[i] holds the suffix sums Σ_{j>=i} logq, shared by the gate
	// (i = 0) and the conditional walk of the rare dropping flow.
	var suf [ecmp.MaxPathLinks + 1]float64
	for i := len(links) - 1; i >= 0; i-- {
		suf[i] = suf[i+1] + s.logq[links[i]]
	}
	if suf[0] == 0 {
		// Every link has rate exactly 0; the flow cannot drop and costs no
		// draw at all.
		return 0
	}
	n := float64(packets)
	x := n * suf[0] // log pNoDrop, <= 0
	u := stats.DeriveUniform(epochSeed^dropDomain, uint64(fi))
	if u < 1+x {
		return 0 // below the lower bound of pNoDrop: survives for sure
	}
	if u < 1+x+0.5*x*x && u < math.Exp(x) {
		return 0
	}
	rng.Derive(epochSeed^dropDomain, uint64(fi))
	drops := 0
	surviving := packets
	i := 0
	for ; i < len(links); i++ {
		perLink[i] = 0
		pZeroHere := math.Exp(n * s.logq[links[i]])
		num := pZeroHere * -math.Expm1(n*suf[i+1])
		den := -math.Expm1(n * suf[i])
		if rng.Float64()*den < num {
			continue // clean link; a later link must drop instead
		}
		d := rng.BinomialNonzero(surviving, s.rate[links[i]])
		perLink[i] = uint16(d)
		surviving -= d
		drops = d
		i++
		break
	}
	for ; i < len(links); i++ {
		perLink[i] = 0
		if surviving == 0 {
			continue
		}
		rate := s.rate[links[i]]
		if rate == 0 {
			continue
		}
		d := rng.Binomial(surviving, rate)
		if d == 0 {
			continue
		}
		perLink[i] = uint16(d)
		surviving -= d
		drops += d
	}
	return drops
}

// Truth builds the ground-truth map that package metrics scores against.
func (ep *Epoch) Truth() map[int64]metrics.FlowTruth {
	m := make(map[int64]metrics.FlowTruth, len(ep.Failed))
	for _, f := range ep.Failed {
		m[f.FlowID] = metrics.FlowTruth{
			Culprit:        f.Culprit,
			CrossedFailure: f.CrossedFailure,
		}
	}
	return m
}

// culprit returns the link that dropped the most of the flow's packets,
// ties broken toward the earlier link (it saw the packet first).
func culprit(path []topology.LinkID, perLink []uint16) topology.LinkID {
	best := topology.NoLink
	var bestDrops uint16
	for i, d := range perLink {
		if d > bestDrops {
			bestDrops = d
			best = path[i]
		}
	}
	return best
}
