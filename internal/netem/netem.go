// Package netem is the flow-level network simulator of the paper's §6
// evaluation (the Go equivalent of the authors' MATLAB simulator [25]).
//
// Each epoch it generates flows, resolves their ECMP paths, and walks every
// flow's packets down its path sampling per-link drops: link i sees only
// the packets that survived links 1..i-1, and drops of them a
// Binomial(survivors, rate_i) share. Good links drop at a noise rate drawn
// uniformly from (0, 1e-6) by default; failed links at injected rates. The
// simulator records complete ground truth — which link dropped how many of
// which flow's packets — against which 007 and the optimization baselines
// are scored.
//
// Epochs run as a deterministic parallel pipeline: flows are split into
// fixed-size chunks fanned out over Config.Parallelism workers, every flow
// draws its drops from its own RNG stream derived from (epoch seed, flow
// index), and each chunk accumulates ground truth into shard-local dense
// counters that merge in chunk order at epoch close. Because no draw and no
// reduction depends on worker interleaving, a seeded epoch is bit-identical
// at any parallelism — see DESIGN.md ("Determinism contract").
package netem

import (
	"fmt"
	"sort"

	"vigil/internal/ecmp"
	"vigil/internal/metrics"
	"vigil/internal/par"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Config parametrizes a simulation.
type Config struct {
	Topo     *topology.Topology
	Workload traffic.Workload
	// NoiseLo/NoiseHi bound the per-link noise drop rate of good links;
	// each good link's rate is drawn uniformly from [NoiseLo, NoiseHi).
	// The paper's default is (0, 1e-6).
	NoiseLo, NoiseHi float64
	// TracerouteCap limits how many flows per host per epoch get their path
	// discovered (the host-side Ct rate limit of Theorem 1, times the epoch
	// length). 0 means unlimited. Flows over the cap still count as failed
	// but produce no report, exactly like 007 past its ICMP budget (§9.1).
	TracerouteCap int
	// Seed fixes the noise-rate draw and all epoch randomness derivation.
	Seed uint64
	// Parallelism is the epoch worker count; 0 means runtime.GOMAXPROCS(0).
	// Epoch results are bit-identical at every setting — the knob trades
	// cores for wall-clock only.
	Parallelism int
}

// Sim is a ready-to-run simulator. Failures are injected per directed link
// and can be changed between epochs.
type Sim struct {
	cfg      Config
	topo     *topology.Topology
	router   *ecmp.Router
	rng      *stats.RNG
	noise    []float64 // per-link noise rate
	rate     []float64 // per-link effective rate (noise or failure)
	failures map[topology.LinkID]float64
}

// New builds a simulator, drawing per-link noise rates.
func New(cfg Config) (*Sim, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("netem: Config.Topo is required")
	}
	if cfg.NoiseHi < cfg.NoiseLo || cfg.NoiseLo < 0 {
		return nil, fmt.Errorf("netem: bad noise range [%g,%g)", cfg.NoiseLo, cfg.NoiseHi)
	}
	if cfg.Workload.Pattern == nil {
		cfg.Workload = traffic.DefaultWorkload()
	}
	rng := stats.NewRNG(cfg.Seed)
	s := &Sim{
		cfg:      cfg,
		topo:     cfg.Topo,
		router:   ecmp.NewRouter(cfg.Topo, ecmp.NewSeeds(cfg.Topo, rng.Split())),
		rng:      rng,
		noise:    make([]float64, len(cfg.Topo.Links)),
		rate:     make([]float64, len(cfg.Topo.Links)),
		failures: make(map[topology.LinkID]float64),
	}
	for i := range s.noise {
		s.noise[i] = rng.Uniform(cfg.NoiseLo, cfg.NoiseHi)
		s.rate[i] = s.noise[i]
	}
	return s, nil
}

// Topology returns the simulated topology.
func (s *Sim) Topology() *topology.Topology { return s.topo }

// Router returns the simulator's ECMP router.
func (s *Sim) Router() *ecmp.Router { return s.router }

// InjectFailure sets link l's drop rate, replacing its noise rate.
func (s *Sim) InjectFailure(l topology.LinkID, rate float64) {
	s.failures[l] = rate
	s.rate[l] = rate
}

// ClearFailure restores link l to its noise rate.
func (s *Sim) ClearFailure(l topology.LinkID) {
	delete(s.failures, l)
	s.rate[l] = s.noise[l]
}

// ClearAllFailures restores every link to its noise rate.
func (s *Sim) ClearAllFailures() {
	for l := range s.failures {
		s.rate[l] = s.noise[l]
		delete(s.failures, l)
	}
}

// FailedLinks returns the injected failures, sorted by link for stability.
func (s *Sim) FailedLinks() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(s.failures))
	for l := range s.failures {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FlowOutcome is the ground truth for one flow that lost packets.
type FlowOutcome struct {
	FlowID      int64 // matches the Report's FlowID
	Flow        traffic.Flow
	Path        []topology.LinkID
	Drops       int      // total packets lost = retransmissions seen by TCP
	DropsByLink []uint16 // aligned with Path
	Culprit     topology.LinkID
	// CrossedFailure records whether the path contains an injected failure:
	// the flows for which ground truth attribution is meaningful (§7.2).
	CrossedFailure bool
	Traced         bool // false when the host's traceroute budget ran out
}

// Epoch is one 30-second simulation round.
type Epoch struct {
	// Failed lists every flow that lost at least one packet, in flow-index
	// order regardless of how many workers simulated the epoch.
	Failed []FlowOutcome
	// Reports carries what 007's analysis agent receives: one report per
	// failed flow whose path was discovered.
	Reports []vote.Report
	// LinkDrops is the ground-truth number of packets each link dropped,
	// dense and indexed by LinkID (merged from the per-shard counters).
	LinkDrops []int64
	// FailedLinks snapshots the injected failures during this epoch.
	FailedLinks []topology.LinkID

	TotalFlows   int
	TotalPackets int
	TotalDrops   int
}

// flowChunk is the fan-out granularity of the epoch pipeline. Chunk
// boundaries depend only on the flow count, never on the worker count, so
// the chunk-ordered merge below reduces identically at any parallelism.
const flowChunk = 1024

// dropDomain separates the per-flow drop streams from the per-source
// generation streams that share the epoch seed: DeriveRNG(epochSeed, si)
// generates source si's flows while DeriveRNG(epochSeed^dropDomain, fi)
// drives flow fi's drop draws, so a flow never replays the draw sequence
// that generated it.
const dropDomain = 0xd6e8feb86659fd93

// epochShard accumulates one worker's slice of the epoch ground truth.
// The counters are order-free integer sums, so one shard per *worker*
// suffices (O(workers × links) memory, not O(chunks × links)); only the
// per-chunk FlowOutcome lists are order-sensitive and those are keyed by
// chunk. Padding keeps adjacent workers' hot counters off a shared cache
// line.
type epochShard struct {
	drops   []int64 // dense by LinkID
	packets int
	dropped int
	_       [104]byte
}

// RunEpoch simulates one epoch: generate flows sequentially, fan chunks out
// to workers that sample each flow from its own (epoch seed, flow index)
// RNG stream, merge the shard-local counters in chunk order, then apply the
// order-sensitive traceroute budget in a sequential flow-order pass.
func (s *Sim) RunEpoch() *Epoch {
	// One draw advances the per-epoch stream exactly like the old Split().
	epochSeed := s.rng.Uint64()
	flows := s.cfg.Workload.GenerateParallel(epochSeed, s.topo, s.cfg.Parallelism)
	nlinks := len(s.topo.Links)
	ep := &Epoch{
		LinkDrops:   make([]int64, nlinks),
		FailedLinks: s.FailedLinks(),
		TotalFlows:  len(flows),
	}
	shards := make([]epochShard, par.Workers(s.cfg.Parallelism))
	failedByChunk := make([][]FlowOutcome, par.Chunks(len(flows), flowChunk))
	par.ForEachChunkWorker(len(flows), flowChunk, s.cfg.Parallelism, func(w, c, lo, hi int) {
		sh := &shards[w]
		if sh.drops == nil {
			sh.drops = make([]int64, nlinks)
		}
		var failed []FlowOutcome
		for fi := lo; fi < hi; fi++ {
			failed = s.simFlow(sh, failed, epochSeed, int64(fi), flows[fi])
		}
		failedByChunk[c] = failed
	})
	// Merge: integer counter sums are order-free across workers, and the
	// per-chunk outcome lists concatenate in chunk order, restoring
	// ascending flow-index order.
	for w := range shards {
		sh := &shards[w]
		if sh.drops == nil {
			continue
		}
		ep.TotalPackets += sh.packets
		ep.TotalDrops += sh.dropped
		for l, d := range sh.drops {
			ep.LinkDrops[l] += d
		}
	}
	for _, failed := range failedByChunk {
		ep.Failed = append(ep.Failed, failed...)
	}
	// The traceroute budget is inherently sequential — whether flow i gets
	// traced depends on how many earlier failed flows its host already
	// traced — so it runs as a post-pass over the merged, ordered outcomes.
	budget := make(map[topology.HostID]int)
	for i := range ep.Failed {
		out := &ep.Failed[i]
		if s.cfg.TracerouteCap > 0 {
			if budget[out.Flow.Src] >= s.cfg.TracerouteCap {
				out.Traced = false
				continue
			}
			budget[out.Flow.Src]++
		}
		ep.Reports = append(ep.Reports, vote.Report{
			FlowID: out.FlowID,
			Src:    out.Flow.Src, Dst: out.Flow.Dst,
			Path: out.Path,
			Retx: out.Drops,
		})
	}
	return ep
}

// simFlow routes one flow and samples its per-link drops into sh, drawing
// from the flow's private RNG stream so the result is independent of which
// worker runs it and in what order. A failed flow's outcome is appended to
// failed (the caller's per-chunk list) and the grown list returned.
func (s *Sim) simFlow(sh *epochShard, failed []FlowOutcome, epochSeed uint64, fi int64, f traffic.Flow) []FlowOutcome {
	path, err := s.router.Path(f.Src, f.Dst, f.Tuple)
	if err != nil {
		// Unreachable by construction; surface loudly if it happens.
		panic(fmt.Sprintf("netem: routing %v: %v", f.Tuple, err))
	}
	sh.packets += f.Packets
	surviving := f.Packets
	var drops int
	var perLink []uint16
	var rng *stats.RNG
	for li, l := range path.Links {
		if surviving == 0 {
			break
		}
		rate := s.rate[l]
		if rate == 0 {
			continue
		}
		if rng == nil {
			// Lazily derived: flows over all-zero-rate paths cost no seeding.
			rng = stats.DeriveRNG(epochSeed^dropDomain, uint64(fi))
		}
		d := rng.Binomial(surviving, rate)
		if d == 0 {
			continue
		}
		if perLink == nil {
			perLink = make([]uint16, len(path.Links))
		}
		perLink[li] = uint16(d)
		sh.drops[l] += int64(d)
		surviving -= d
		drops += d
	}
	if drops == 0 {
		return failed
	}
	sh.dropped += drops
	out := FlowOutcome{
		FlowID:      fi,
		Flow:        f,
		Path:        path.Links,
		Drops:       drops,
		DropsByLink: perLink,
		Culprit:     culprit(path.Links, perLink),
		Traced:      true,
	}
	for _, l := range path.Links {
		if _, bad := s.failures[l]; bad {
			out.CrossedFailure = true
			break
		}
	}
	return append(failed, out)
}

// Truth builds the ground-truth map that package metrics scores against.
func (ep *Epoch) Truth() map[int64]metrics.FlowTruth {
	m := make(map[int64]metrics.FlowTruth, len(ep.Failed))
	for _, f := range ep.Failed {
		m[f.FlowID] = metrics.FlowTruth{
			Culprit:        f.Culprit,
			CrossedFailure: f.CrossedFailure,
		}
	}
	return m
}

// culprit returns the link that dropped the most of the flow's packets,
// ties broken toward the earlier link (it saw the packet first).
func culprit(path []topology.LinkID, perLink []uint16) topology.LinkID {
	best := topology.NoLink
	var bestDrops uint16
	for i, d := range perLink {
		if d > bestDrops {
			bestDrops = d
			best = path[i]
		}
	}
	return best
}
