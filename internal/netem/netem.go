// Package netem is the flow-level network simulator of the paper's §6
// evaluation (the Go equivalent of the authors' MATLAB simulator [25]).
//
// Each epoch it generates flows, resolves their ECMP paths, and samples
// every flow's packet drops: link i sees only the packets that survived
// links 1..i-1, and drops of them a Binomial(survivors, rate_i) share. Good
// links drop at a noise rate drawn uniformly from (0, 1e-6) by default;
// failed links at injected rates. The simulator records complete ground
// truth — which link dropped how many of which flow's packets — against
// which 007 and the optimization baselines are scored.
//
// The per-flow hot path is survival-gated and allocation-free: a single
// uniform draw against the precomputed whole-path survival probability
// pNoDrop = exp(packets · Σ log(1-rate_l)) decides whether the flow loses
// anything at all, and only the rare flow that does falls through to the
// exact per-link conditional Binomial cascade (rejection-resampled until
// nonzero, which leaves the joint drop distribution unchanged). Paths
// resolve into per-worker fixed-size buffers, failed-flow state is copied
// into per-worker arenas, and all per-epoch scratch is owned by the Sim —
// see DESIGN.md ("Hot-path memory model").
//
// Epochs run as a deterministic parallel pipeline: flows are split into
// fixed-size chunks fanned out over Config.Parallelism workers, every flow
// draws its drops from its own RNG stream derived from (epoch seed, flow
// index), and each chunk accumulates ground truth into shard-local dense
// counters that merge in chunk order at epoch close. Because no draw and no
// reduction depends on worker interleaving, a seeded epoch is bit-identical
// at any parallelism — see DESIGN.md ("Determinism contract").
package netem

import (
	"fmt"
	"math"
	"sort"

	"vigil/internal/ecmp"
	"vigil/internal/metrics"
	"vigil/internal/par"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Config parametrizes a simulation.
type Config struct {
	Topo     *topology.Topology
	Workload traffic.Workload
	// NoiseLo/NoiseHi bound the per-link noise drop rate of good links;
	// each good link's rate is drawn uniformly from [NoiseLo, NoiseHi).
	// The paper's default is (0, 1e-6).
	NoiseLo, NoiseHi float64
	// TracerouteCap limits how many flows per host per epoch get their path
	// discovered (the host-side Ct rate limit of Theorem 1, times the epoch
	// length). 0 means unlimited. Flows over the cap still count as failed
	// but produce no report, exactly like 007 past its ICMP budget (§9.1).
	TracerouteCap int
	// Seed fixes the noise-rate draw and all epoch randomness derivation.
	Seed uint64
	// Parallelism is the epoch worker count; 0 means runtime.GOMAXPROCS(0).
	// Epoch results are bit-identical at every setting — the knob trades
	// cores for wall-clock only.
	Parallelism int
}

// Sim is a ready-to-run simulator. Failures are injected per directed link
// and can be changed between epochs.
type Sim struct {
	cfg      Config
	topo     *topology.Topology
	router   *ecmp.Router
	rng      *stats.RNG
	noise    []float64 // per-link noise rate
	rate     []float64 // per-link effective rate (noise or failure)
	logq     []float64 // per-link log1p(-rate), the survival-gate summands
	isFailed []bool    // dense failure flags, indexed by LinkID
	failures map[topology.LinkID]float64

	// failedSorted caches the sorted failure snapshot; failedDirty marks it
	// stale after Inject/Clear. The cached slice is never mutated in place —
	// invalidation rebuilds a fresh slice — so epochs may hold it by
	// reference.
	failedSorted []topology.LinkID
	failedDirty  bool

	// schedules scripts time-varying link rates (see schedule.go); epochIdx
	// is the index of the next epoch, fed to RateSchedule.RateAt.
	schedules []linkSchedule
	epochIdx  int

	// Per-epoch scratch, reused across RunEpoch calls (a Sim is not safe for
	// concurrent RunEpoch anyway): worker shards, the per-chunk outcome
	// table, the dense traceroute budget and the flow-generation buffers.
	shards        []epochShard
	failedByChunk [][]FlowOutcome
	budget        []int32 // per-host traced-flow counts, dense by HostID
	gen           traffic.GenScratch
}

// New builds a simulator, drawing per-link noise rates.
func New(cfg Config) (*Sim, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("netem: Config.Topo is required")
	}
	if cfg.NoiseHi < cfg.NoiseLo || cfg.NoiseLo < 0 {
		return nil, fmt.Errorf("netem: bad noise range [%g,%g)", cfg.NoiseLo, cfg.NoiseHi)
	}
	if cfg.Workload.Pattern == nil {
		cfg.Workload = traffic.DefaultWorkload()
	}
	rng := stats.NewRNG(cfg.Seed)
	nlinks := len(cfg.Topo.Links)
	s := &Sim{
		cfg:      cfg,
		topo:     cfg.Topo,
		router:   ecmp.NewRouter(cfg.Topo, ecmp.NewSeeds(cfg.Topo, rng.Split())),
		rng:      rng,
		noise:    make([]float64, nlinks),
		rate:     make([]float64, nlinks),
		logq:     make([]float64, nlinks),
		isFailed: make([]bool, nlinks),
		failures: make(map[topology.LinkID]float64),
		budget:   make([]int32, len(cfg.Topo.Hosts)),
	}
	for i := range s.noise {
		s.noise[i] = rng.Uniform(cfg.NoiseLo, cfg.NoiseHi)
		s.rate[i] = s.noise[i]
		s.logq[i] = math.Log1p(-s.noise[i])
	}
	return s, nil
}

// Topology returns the simulated topology.
func (s *Sim) Topology() *topology.Topology { return s.topo }

// Router returns the simulator's ECMP router.
func (s *Sim) Router() *ecmp.Router { return s.router }

// setRate updates every per-link view of link l's drop rate: the effective
// rate, the survival-gate log term and the dense failure flag.
func (s *Sim) setRate(l topology.LinkID, rate float64, failed bool) {
	s.rate[l] = rate
	s.logq[l] = math.Log1p(-rate)
	s.isFailed[l] = failed
	s.failedDirty = true
}

// InjectFailure sets link l's drop rate, replacing its noise rate.
func (s *Sim) InjectFailure(l topology.LinkID, rate float64) {
	s.failures[l] = rate
	s.setRate(l, rate, true)
}

// ClearFailure restores link l to its noise rate.
func (s *Sim) ClearFailure(l topology.LinkID) {
	delete(s.failures, l)
	s.setRate(l, s.noise[l], false)
}

// ClearAllFailures restores every link to its noise rate.
func (s *Sim) ClearAllFailures() {
	for l := range s.failures {
		s.setRate(l, s.noise[l], false)
		delete(s.failures, l)
	}
}

// failedSnapshot returns the cached sorted failure set, rebuilding it only
// after an Inject/Clear. The returned slice must not be mutated: it is
// shared with every Epoch simulated until the next invalidation.
func (s *Sim) failedSnapshot() []topology.LinkID {
	if s.failedDirty || s.failedSorted == nil {
		out := make([]topology.LinkID, 0, len(s.failures))
		for l := range s.failures {
			out = append(out, l)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		s.failedSorted = out
		s.failedDirty = false
	}
	return s.failedSorted
}

// FailedLinks returns the injected failures, sorted by link for stability.
// The caller owns the returned slice.
func (s *Sim) FailedLinks() []topology.LinkID {
	snap := s.failedSnapshot()
	out := make([]topology.LinkID, len(snap))
	copy(out, snap)
	return out
}

// FlowOutcome is the ground truth for one flow that lost packets.
type FlowOutcome struct {
	FlowID      int64 // matches the Report's FlowID
	Flow        traffic.Flow
	Path        []topology.LinkID
	Drops       int      // total packets lost = retransmissions seen by TCP
	DropsByLink []uint16 // aligned with Path
	Culprit     topology.LinkID
	// CrossedFailure records whether the path contains an injected failure:
	// the flows for which ground truth attribution is meaningful (§7.2).
	CrossedFailure bool
	Traced         bool // false when the host's traceroute budget ran out
}

// Epoch is one 30-second simulation round.
type Epoch struct {
	// Failed lists every flow that lost at least one packet, in flow-index
	// order regardless of how many workers simulated the epoch.
	Failed []FlowOutcome
	// Reports carries what 007's analysis agent receives: one report per
	// failed flow whose path was discovered.
	Reports []vote.Report
	// LinkDrops is the ground-truth number of packets each link dropped,
	// dense and indexed by LinkID (merged from the per-shard counters).
	LinkDrops []int64
	// FailedLinks snapshots the injected failures during this epoch. It may
	// share storage with other epochs of the same Sim; treat it as
	// read-only.
	FailedLinks []topology.LinkID

	TotalFlows   int
	TotalPackets int
	TotalDrops   int
}

// flowChunk is the fan-out granularity of the epoch pipeline. Chunk
// boundaries depend only on the flow count, never on the worker count, so
// the chunk-ordered merge below reduces identically at any parallelism.
const flowChunk = 1024

// dropDomain separates the per-flow drop streams from the per-source
// generation streams that share the epoch seed: DeriveRNG(epochSeed, si)
// generates source si's flows while DeriveRNG(epochSeed^dropDomain, fi)
// drives flow fi's drop draws, so a flow never replays the draw sequence
// that generated it.
const dropDomain = 0xd6e8feb86659fd93

// arenaBlock sizes the outcome arenas' allocation blocks, in path links.
// One block holds the Path+DropsByLink storage of ~80 failed flows, so an
// epoch's rare failures cost a handful of block allocations instead of two
// slice allocations per outcome.
const arenaBlock = 512

// outcomeArena block-allocates the Path and DropsByLink storage of failed
// flows. Each worker owns one; alloc hands out stable sub-slices of the
// current block and starts a fresh block when full, so previously returned
// slices are never moved or aliased. Blocks escape into the Epoch with the
// outcomes that point into them, which is why reset drops the block
// reference instead of rewinding it.
type outcomeArena struct {
	links []topology.LinkID
	drops []uint16
}

// reset forgets the current blocks. The previous epoch's outcomes keep the
// old blocks alive; the new epoch starts clean.
func (a *outcomeArena) reset() { a.links, a.drops = nil, nil }

// copyPath copies src into arena-backed storage and returns the copy.
func (a *outcomeArena) copyPath(src []topology.LinkID) []topology.LinkID {
	n := len(src)
	if len(a.links)+n > cap(a.links) {
		a.links = make([]topology.LinkID, 0, arenaBlock)
	}
	dst := a.links[len(a.links) : len(a.links)+n : len(a.links)+n]
	a.links = a.links[:len(a.links)+n]
	copy(dst, src)
	return dst
}

// copyDrops copies src into arena-backed storage and returns the copy.
func (a *outcomeArena) copyDrops(src []uint16) []uint16 {
	n := len(src)
	if len(a.drops)+n > cap(a.drops) {
		a.drops = make([]uint16, 0, arenaBlock)
	}
	dst := a.drops[len(a.drops) : len(a.drops)+n : len(a.drops)+n]
	a.drops = a.drops[:len(a.drops)+n]
	copy(dst, src)
	return dst
}

// epochShard accumulates one worker's slice of the epoch ground truth plus
// the worker's reusable scratch (path buffer, per-flow RNG, outcome arena).
// The counters are order-free integer sums, so one shard per *worker*
// suffices (O(workers × links) memory, not O(chunks × links)); only the
// per-chunk FlowOutcome lists are order-sensitive and those are keyed by
// chunk. Padding keeps adjacent workers' hot counters off a shared cache
// line.
type epochShard struct {
	drops   []int64 // dense by LinkID
	packets int
	dropped int
	pathBuf ecmp.PathBuf
	rng     stats.RNG
	arena   outcomeArena
	_       [64]byte
}

// epochScratch (re)sizes the Sim-owned shard and chunk scratch for an epoch
// of nflows flows, zeroing the counters carried over from the last epoch.
func (s *Sim) epochScratch(nflows int) (shards []epochShard, failedByChunk [][]FlowOutcome) {
	nworkers := par.Workers(s.cfg.Parallelism)
	if len(s.shards) != nworkers {
		s.shards = make([]epochShard, nworkers)
	}
	nlinks := len(s.topo.Links)
	for w := range s.shards {
		sh := &s.shards[w]
		if sh.drops == nil {
			sh.drops = make([]int64, nlinks)
		} else {
			clear(sh.drops)
		}
		sh.packets, sh.dropped = 0, 0
		sh.arena.reset()
	}
	nchunks := par.Chunks(nflows, flowChunk)
	if cap(s.failedByChunk) < nchunks {
		s.failedByChunk = make([][]FlowOutcome, nchunks)
	}
	// Clear through cap, not just nchunks: a shorter epoch must not leave
	// stale tail entries pinning the previous epoch's outcomes and arena
	// blocks.
	clear(s.failedByChunk[:cap(s.failedByChunk)])
	s.failedByChunk = s.failedByChunk[:nchunks]
	return s.shards, s.failedByChunk
}

// RunEpoch simulates one epoch: generate flows into the reusable scratch,
// fan chunks out to workers that sample each flow from its own (epoch seed,
// flow index) RNG stream, merge the shard-local counters in chunk order,
// then apply the order-sensitive traceroute budget in a sequential
// flow-order pass. Steady-state epochs (no failed flows) allocate O(1)
// memory regardless of flow count.
func (s *Sim) RunEpoch() *Epoch {
	// Settle scripted link rates for this epoch before any randomness is
	// drawn or any worker starts (see schedule.go).
	s.applySchedules()
	s.epochIdx++
	// One draw advances the per-epoch stream exactly like the old Split().
	epochSeed := s.rng.Uint64()
	flows := s.cfg.Workload.GenerateParallelInto(&s.gen, epochSeed, s.topo, s.cfg.Parallelism)
	nlinks := len(s.topo.Links)
	ep := &Epoch{
		LinkDrops:   make([]int64, nlinks),
		FailedLinks: s.failedSnapshot(),
		TotalFlows:  len(flows),
	}
	shards, failedByChunk := s.epochScratch(len(flows))
	par.ForEachChunkWorker(len(flows), flowChunk, s.cfg.Parallelism, func(w, c, lo, hi int) {
		sh := &shards[w]
		var failed []FlowOutcome
		for fi := lo; fi < hi; fi++ {
			failed = s.simFlow(sh, failed, epochSeed, int64(fi), flows[fi])
		}
		failedByChunk[c] = failed
	})
	// Merge: integer counter sums are order-free across workers, and the
	// per-chunk outcome lists concatenate in chunk order, restoring
	// ascending flow-index order. Sizing happens in one pass up front so
	// Failed and Reports never regrow.
	totalFailed := 0
	for _, failed := range failedByChunk {
		totalFailed += len(failed)
	}
	for w := range shards {
		sh := &shards[w]
		ep.TotalPackets += sh.packets
		ep.TotalDrops += sh.dropped
		for l, d := range sh.drops {
			ep.LinkDrops[l] += d
		}
	}
	if totalFailed > 0 {
		ep.Failed = make([]FlowOutcome, 0, totalFailed)
		for _, failed := range failedByChunk {
			ep.Failed = append(ep.Failed, failed...)
		}
		ep.Reports = make([]vote.Report, 0, totalFailed)
	}
	// The traceroute budget is inherently sequential — whether flow i gets
	// traced depends on how many earlier failed flows its host already
	// traced — so it runs as a post-pass over the merged, ordered outcomes,
	// counting per host in the Sim's dense reusable budget vector.
	if s.cfg.TracerouteCap > 0 && totalFailed > 0 {
		clear(s.budget)
	}
	for i := range ep.Failed {
		out := &ep.Failed[i]
		if s.cfg.TracerouteCap > 0 {
			if int(s.budget[out.Flow.Src]) >= s.cfg.TracerouteCap {
				out.Traced = false
				continue
			}
			s.budget[out.Flow.Src]++
		}
		ep.Reports = append(ep.Reports, vote.Report{
			FlowID: out.FlowID,
			Src:    out.Flow.Src, Dst: out.Flow.Dst,
			Path: out.Path,
			Retx: out.Drops,
		})
	}
	return ep
}

// simFlow routes one flow and samples its drops into sh, drawing from the
// flow's private RNG stream so the result is independent of which worker
// runs it and in what order. A failed flow's outcome is appended to failed
// (the caller's per-chunk list) and the grown list returned. The
// steady-state path — flow survives — performs no heap allocation.
func (s *Sim) simFlow(sh *epochShard, failed []FlowOutcome, epochSeed uint64, fi int64, f traffic.Flow) []FlowOutcome {
	if err := s.router.PathInto(f.Src, f.Dst, f.Tuple, &sh.pathBuf); err != nil {
		// Unreachable by construction; surface loudly if it happens.
		panic(fmt.Sprintf("netem: routing %v: %v", f.Tuple, err))
	}
	links := sh.pathBuf.Links()
	sh.packets += f.Packets
	if f.Packets <= 0 {
		return failed
	}
	var perLink [ecmp.MaxPathLinks]uint16
	drops := s.sampleFlowDrops(epochSeed, fi, &sh.rng, links, f.Packets, &perLink)
	if drops == 0 {
		return failed
	}
	for li, l := range links {
		if d := perLink[li]; d != 0 {
			sh.drops[l] += int64(d)
		}
	}
	sh.dropped += drops
	out := FlowOutcome{
		FlowID:      fi,
		Flow:        f,
		Path:        sh.arena.copyPath(links),
		Drops:       drops,
		DropsByLink: sh.arena.copyDrops(perLink[:len(links)]),
		Culprit:     culprit(links, perLink[:len(links)]),
		Traced:      true,
	}
	for _, l := range links {
		if s.isFailed[l] {
			out.CrossedFailure = true
			break
		}
	}
	return append(failed, out)
}

// sampleFlowDrops samples one flow's per-link drop vector into perLink and
// returns the total, drawing only from the flow's private (epochSeed, fi)
// streams so the result is identical whichever worker runs it. rng is the
// caller's reusable generator; it is reseeded here and touched only when
// the flow actually drops. The non-dropping path — the overwhelming
// majority of flows — costs one counter-based uniform draw and no heap
// allocation.
//
// Survival gate: pNoDrop = Π_l (1-rate_l)^packets = exp(packets · Σ logq_l)
// is the probability that none of the flow's packets is dropped anywhere on
// the path. One uniform draw against it replaces the per-link Binomial walk.
// The comparison avoids math.Exp outside a ~x²/2-wide window using the
// bracket 1+x ≤ eˣ ≤ 1+x+x²/2 (x ≤ 0).
//
// Dropping flows sample the per-link cascade — d_i ~ Binomial(survivors,
// rate_i) down the path — conditioned on a nonzero total, exactly and in
// O(path) time: while no drop has happened yet the survivor count is still
// the full packet count, so the chain rule gives closed-form odds that link
// i stays clean given that some link from i onward must drop,
//
//	P(d_i = 0 | drop in i..k) = (1-p_i)^n · P(drop in i+1..k) / P(drop in i..k)
//
// with P(drop in j..k) = -expm1(n·suf[j]). The first link that fails this
// draw takes its count from stats.BinomialNonzero (Binomial conditioned
// >= 1); every later link runs the ordinary unconditional cascade over the
// reduced survivor count. Naively rejection-resampling the whole cascade
// until nonzero would cost an expected 1/P(drop) passes — this costs one.
func (s *Sim) sampleFlowDrops(epochSeed uint64, fi int64, rng *stats.RNG, links []topology.LinkID, packets int, perLink *[ecmp.MaxPathLinks]uint16) int {
	// suf[i] holds the suffix sums Σ_{j>=i} logq, shared by the gate
	// (i = 0) and the conditional walk of the rare dropping flow.
	var suf [ecmp.MaxPathLinks + 1]float64
	for i := len(links) - 1; i >= 0; i-- {
		suf[i] = suf[i+1] + s.logq[links[i]]
	}
	if suf[0] == 0 {
		// Every link has rate exactly 0; the flow cannot drop and costs no
		// draw at all.
		return 0
	}
	n := float64(packets)
	x := n * suf[0] // log pNoDrop, <= 0
	u := stats.DeriveUniform(epochSeed^dropDomain, uint64(fi))
	if u < 1+x {
		return 0 // below the lower bound of pNoDrop: survives for sure
	}
	if u < 1+x+0.5*x*x && u < math.Exp(x) {
		return 0
	}
	rng.Derive(epochSeed^dropDomain, uint64(fi))
	drops := 0
	surviving := packets
	i := 0
	for ; i < len(links); i++ {
		perLink[i] = 0
		pZeroHere := math.Exp(n * s.logq[links[i]])
		num := pZeroHere * -math.Expm1(n*suf[i+1])
		den := -math.Expm1(n * suf[i])
		if rng.Float64()*den < num {
			continue // clean link; a later link must drop instead
		}
		d := rng.BinomialNonzero(surviving, s.rate[links[i]])
		perLink[i] = uint16(d)
		surviving -= d
		drops = d
		i++
		break
	}
	for ; i < len(links); i++ {
		perLink[i] = 0
		if surviving == 0 {
			continue
		}
		rate := s.rate[links[i]]
		if rate == 0 {
			continue
		}
		d := rng.Binomial(surviving, rate)
		if d == 0 {
			continue
		}
		perLink[i] = uint16(d)
		surviving -= d
		drops += d
	}
	return drops
}

// Truth builds the ground-truth map that package metrics scores against.
func (ep *Epoch) Truth() map[int64]metrics.FlowTruth {
	m := make(map[int64]metrics.FlowTruth, len(ep.Failed))
	for _, f := range ep.Failed {
		m[f.FlowID] = metrics.FlowTruth{
			Culprit:        f.Culprit,
			CrossedFailure: f.CrossedFailure,
		}
	}
	return m
}

// culprit returns the link that dropped the most of the flow's packets,
// ties broken toward the earlier link (it saw the packet first).
func culprit(path []topology.LinkID, perLink []uint16) topology.LinkID {
	best := topology.NoLink
	var bestDrops uint16
	for i, d := range perLink {
		if d > bestDrops {
			bestDrops = d
			best = path[i]
		}
	}
	return best
}
