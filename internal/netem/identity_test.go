package netem

import (
	"testing"

	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// checkDenseSeqs asserts the invariant ingest's gap detection is built on:
// within one epoch, each agent's reports carry sequences 0..k-1 in emission
// order, and every report is stamped with the epoch it was emitted in.
func checkDenseSeqs(t *testing.T, reports []vote.Report, epoch int32, nhosts int) {
	t.Helper()
	next := make([]int32, nhosts)
	for i, r := range reports {
		if r.Epoch != epoch {
			t.Fatalf("report %d (agent %d): epoch stamp %d, want %d", i, r.Src, r.Epoch, epoch)
		}
		if r.Seq != next[r.Src] {
			t.Fatalf("report %d: agent %d sequence gap: got seq %d, want %d", i, r.Src, r.Seq, next[r.Src])
		}
		next[r.Src]++
	}
}

// The batch flow plane assigns dense, gap-free per-(agent, epoch)
// sequences on every emission path: the in-shard budgeted path, the
// uncapped path, and the incremental delta path.
func TestFlowPlaneReportSequencesDense(t *testing.T) {
	topo, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 6, T1PerPod: 4, T2: 4, HostsPerToR: 8})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tcap int, incremental bool, hosts []topology.HostID) *Sim {
		s, err := New(Config{
			Topo:    topo,
			NoiseLo: 0, NoiseHi: 1e-5,
			Workload: traffic.Workload{
				Pattern:        traffic.Uniform{},
				ConnsPerHost:   traffic.IntRange{Lo: 40, Hi: 40},
				PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
				Hosts:          hosts,
			},
			TracerouteCap: tcap,
			Seed:          23,
			Parallelism:   4,
			Incremental:   incremental,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	nhosts := len(topo.Hosts)
	bad := topo.LinksOfClass(topology.L1Up)[1]

	run := func(name string, s *Sim) {
		s.InjectFailure(bad, 0.03)
		for e := 0; e < 3; e++ {
			ep := s.RunEpoch()
			if len(ep.Reports) == 0 {
				t.Fatalf("%s epoch %d: no reports — the fixture is not exercising anything", name, e)
			}
			checkDenseSeqs(t, ep.Reports, int32(e), nhosts)
		}
	}
	run("budgeted", mk(5, false, nil))
	run("uncapped", mk(0, false, nil))
	run("delta", mk(5, true, nil)) // epoch 0 builds the cache; 1..2 take the delta path

	// Duplicate-host workloads scatter one agent's flows over several source
	// slots, forcing the sequential restamp/resolve fallbacks — both the
	// capped and uncapped variants.
	dup := make([]topology.HostID, 0, 24)
	for i := 0; i < 12; i++ {
		dup = append(dup, topology.HostID(i), topology.HostID(i))
	}
	run("dup-hosts-capped", mk(5, false, dup))
	run("dup-hosts-uncapped", mk(0, false, dup))
}
