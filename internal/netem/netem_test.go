package netem

import (
	"math"
	"reflect"
	"testing"

	"vigil/internal/topology"
	"vigil/internal/traffic"
)

func smallSim(t testing.TB, seed uint64) *Sim {
	t.Helper()
	topo, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 4, HostsPerToR: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo:    topo,
		NoiseLo: 0, NoiseHi: 1e-6,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 20, Hi: 20},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	topo, _ := topology.New(topology.TestClusterConfig)
	if _, err := New(Config{Topo: topo, NoiseLo: 1e-3, NoiseHi: 1e-6}); err == nil {
		t.Fatal("inverted noise range accepted")
	}
}

// Conservation: ground-truth per-link drops must sum to the epoch total,
// and every failed flow's per-link drops must sum to its retransmissions.
func TestDropConservation(t *testing.T) {
	s := smallSim(t, 1)
	bad := s.Topology().LinksOfClass(topology.L1Up)[0]
	s.InjectFailure(bad, 0.01)
	ep := s.RunEpoch()
	var sumLinks int
	for _, d := range ep.LinkDrops {
		sumLinks += int(d)
	}
	if sumLinks != ep.TotalDrops {
		t.Fatalf("link drops sum %d != total %d", sumLinks, ep.TotalDrops)
	}
	var sumFlows int
	for _, f := range ep.Failed {
		sumFlows += f.Drops
		var per int
		for _, d := range f.DropsByLink {
			per += int(d)
		}
		if per != f.Drops {
			t.Fatalf("flow %d per-link drops %d != %d", f.FlowID, per, f.Drops)
		}
		if f.Drops > f.Flow.Packets {
			t.Fatalf("flow %d dropped more packets than it sent", f.FlowID)
		}
	}
	if sumFlows != ep.TotalDrops {
		t.Fatalf("flow drops sum %d != total %d", sumFlows, ep.TotalDrops)
	}
}

func TestFailureInjectionRaisesDrops(t *testing.T) {
	s := smallSim(t, 2)
	bad := s.Topology().LinksOfClass(topology.L1Up)[2]
	base := s.RunEpoch()
	s.InjectFailure(bad, 0.05)
	failed := s.RunEpoch()
	if failed.TotalDrops <= base.TotalDrops {
		t.Fatalf("failure did not raise drops: %d vs %d", failed.TotalDrops, base.TotalDrops)
	}
	if failed.LinkDrops[bad] == 0 {
		t.Fatal("injected link dropped nothing at 5%")
	}
	if len(failed.FailedLinks) != 1 || failed.FailedLinks[0] != bad {
		t.Fatalf("FailedLinks = %v", failed.FailedLinks)
	}
	// Clearing restores the noise floor.
	s.ClearFailure(bad)
	cleared := s.RunEpoch()
	if int(cleared.LinkDrops[bad]) > cleared.TotalDrops/2 && cleared.TotalDrops > 10 {
		t.Fatal("cleared link still dominates drops")
	}
	if len(cleared.FailedLinks) != 0 {
		t.Fatal("FailedLinks not cleared")
	}
}

func TestCulpritIsHeaviestLink(t *testing.T) {
	s := smallSim(t, 3)
	bad := s.Topology().LinksOfClass(topology.L1Down)[1]
	s.InjectFailure(bad, 0.2)
	ep := s.RunEpoch()
	for _, f := range ep.Failed {
		if f.Culprit == topology.NoLink {
			t.Fatal("failed flow without culprit")
		}
		var max uint16
		for _, d := range f.DropsByLink {
			if d > max {
				max = d
			}
		}
		for i, l := range f.Path {
			if l == f.Culprit && f.DropsByLink[i] != max {
				t.Fatalf("culprit is not the heaviest link for flow %d", f.FlowID)
			}
		}
	}
}

func TestCrossedFailureFlag(t *testing.T) {
	s := smallSim(t, 4)
	bad := s.Topology().LinksOfClass(topology.L1Up)[0]
	s.InjectFailure(bad, 0.1)
	ep := s.RunEpoch()
	crossed, uncrossed := 0, 0
	for _, f := range ep.Failed {
		onPath := false
		for _, l := range f.Path {
			if l == bad {
				onPath = true
			}
		}
		if onPath != f.CrossedFailure {
			t.Fatalf("CrossedFailure flag wrong for flow %d", f.FlowID)
		}
		if f.CrossedFailure {
			crossed++
		} else {
			uncrossed++
		}
	}
	if crossed == 0 {
		t.Fatal("no flow crossed a 10% failure")
	}
}

func TestReportsMatchFailedTracedFlows(t *testing.T) {
	s := smallSim(t, 5)
	s.InjectFailure(s.Topology().LinksOfClass(topology.L2Up)[0], 0.05)
	ep := s.RunEpoch()
	traced := 0
	for _, f := range ep.Failed {
		if f.Traced {
			traced++
		}
	}
	if len(ep.Reports) != traced {
		t.Fatalf("%d reports, %d traced flows", len(ep.Reports), traced)
	}
	for i, r := range ep.Reports {
		if r.Retx < 1 {
			t.Fatalf("report %d with %d retx", i, r.Retx)
		}
		if len(r.Path) < 4 || len(r.Path) > 6 {
			t.Fatalf("report %d path length %d", i, len(r.Path))
		}
	}
}

func TestTracerouteCap(t *testing.T) {
	topo, err := topology.New(topology.Config{Pods: 1, ToRsPerPod: 4, T1PerPod: 2, T2: 0, HostsPerToR: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo: topo,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 50, Hi: 50},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		TracerouteCap: 2,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every flow fails: all links drop heavily.
	for id := range topo.Links {
		s.InjectFailure(topology.LinkID(id), 0.5)
	}
	ep := s.RunEpoch()
	perHost := map[topology.HostID]int{}
	for _, r := range ep.Reports {
		perHost[r.Src]++
	}
	for h, n := range perHost {
		if n > 2 {
			t.Fatalf("host %d traced %d flows, cap is 2", h, n)
		}
	}
	if len(ep.Failed) <= len(ep.Reports) {
		t.Fatal("cap did not suppress any traceroutes")
	}
}

func TestDeterministicEpochs(t *testing.T) {
	a, b := smallSim(t, 77), smallSim(t, 77)
	bad := a.Topology().LinksOfClass(topology.L1Up)[1]
	a.InjectFailure(bad, 0.01)
	b.InjectFailure(bad, 0.01)
	ea, eb := a.RunEpoch(), b.RunEpoch()
	if ea.TotalDrops != eb.TotalDrops || len(ea.Failed) != len(eb.Failed) {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d drops/flows",
			ea.TotalDrops, len(ea.Failed), eb.TotalDrops, len(eb.Failed))
	}
}

// parallelSim builds a mid-size simulator (several flow chunks per epoch)
// with an explicit worker count.
func parallelSim(t testing.TB, seed uint64, workers int) *Sim {
	t.Helper()
	topo, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 6, T1PerPod: 4, T2: 4, HostsPerToR: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo:    topo,
		NoiseLo: 0, NoiseHi: 1e-6,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 40, Hi: 40},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		TracerouteCap: 5, // exercise the order-sensitive budget pass too
		Seed:          seed,
		Parallelism:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The determinism contract of the parallel pipeline: a seeded epoch is
// bit-identical at every worker count, including ground truth, dense link
// drops, report order and the traceroute-budget decisions.
func TestEpochBitIdenticalAcrossParallelism(t *testing.T) {
	base := parallelSim(t, 41, 1)
	bad := base.Topology().LinksOfClass(topology.L1Up)[2]
	base.InjectFailure(bad, 0.02)
	want := base.RunEpoch()
	for _, workers := range []int{2, 3, 4, 8, 16} {
		s := parallelSim(t, 41, workers)
		s.InjectFailure(bad, 0.02)
		got := s.RunEpoch()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("epoch diverged at Parallelism=%d: %d/%d drops, %d/%d failed, %d/%d reports",
				workers, want.TotalDrops, got.TotalDrops,
				len(want.Failed), len(got.Failed),
				len(want.Reports), len(got.Reports))
		}
	}
}

// Successive epochs must stay deterministic too: the epoch-seed stream
// advances identically whatever the parallelism of the previous epochs.
func TestEpochSequenceIdenticalAcrossParallelism(t *testing.T) {
	a, b := parallelSim(t, 42, 1), parallelSim(t, 42, 8)
	bad := a.Topology().LinksOfClass(topology.L2Up)[1]
	a.InjectFailure(bad, 0.01)
	b.InjectFailure(bad, 0.01)
	for e := 0; e < 3; e++ {
		ea, eb := a.RunEpoch(), b.RunEpoch()
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("epoch %d diverged between Parallelism 1 and 8", e)
		}
	}
}

func TestDropRateMatchesInjection(t *testing.T) {
	s := smallSim(t, 8)
	bad := s.Topology().LinksOfClass(topology.L1Up)[0]
	const rate = 0.01
	s.InjectFailure(bad, rate)
	var dropped, offered int
	for e := 0; e < 20; e++ {
		ep := s.RunEpoch()
		dropped += int(ep.LinkDrops[bad])
		for _, f := range ep.Failed {
			_ = f
		}
		// Offered load on the link: estimate from reports is biased; use
		// ground truth conservation instead — drops/rate ≈ offered.
	}
	if dropped == 0 {
		t.Fatal("no drops at 1%")
	}
	// With ~0.5M packet-link traversals we can sanity-check the magnitude:
	// the measured rate over all epochs should be within 3x of nominal
	// given the flow mix (this guards against double-drop accounting).
	_ = offered
	if dropped < 10 {
		t.Fatalf("implausibly few drops: %d", dropped)
	}
}

func TestTruthMap(t *testing.T) {
	s := smallSim(t, 9)
	bad := s.Topology().LinksOfClass(topology.L1Up)[3]
	s.InjectFailure(bad, 0.1)
	ep := s.RunEpoch()
	truth := ep.Truth()
	if len(truth) != len(ep.Failed) {
		t.Fatalf("truth has %d entries, %d failed flows", len(truth), len(ep.Failed))
	}
	for _, f := range ep.Failed {
		tr := truth[f.FlowID]
		if tr.Culprit != f.Culprit || tr.CrossedFailure != f.CrossedFailure {
			t.Fatal("truth map mismatch")
		}
	}
}

// At a 50% drop rate on the first path link, roughly half of all packets
// through it must die — a coarse statistical check on binomial sampling in
// path order.
func TestSequentialSampling(t *testing.T) {
	topo, err := topology.New(topology.Config{Pods: 1, ToRsPerPod: 2, T1PerPod: 1, T2: 0, HostsPerToR: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo: topo,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 100, Hi: 100},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Host 0's uplink drops half; the following L1Up link sees only
	// survivors, so its noise-level drops can't exceed them.
	up := topo.Hosts[0].Uplink
	s.InjectFailure(up, 0.5)
	ep := s.RunEpoch()
	sent := 100 * 100 // host 0's share
	got := ep.LinkDrops[up]
	if math.Abs(float64(got)-float64(sent)/2) > 500 {
		t.Fatalf("uplink dropped %d of %d, want ~half", got, sent)
	}
}

func BenchmarkRunEpochDefaultTopology(b *testing.B) {
	topo, err := topology.New(topology.DefaultSimConfig)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Topo: topo, NoiseLo: 0, NoiseHi: 1e-6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s.InjectFailure(topo.LinksOfClass(topology.L1Up)[0], 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunEpoch()
	}
}
