package everflow

import (
	"testing"

	"vigil/internal/ecmp"
	"vigil/internal/fabric"
	"vigil/internal/topology"
	"vigil/internal/wire"
)

func tup(srcIP uint32) ecmp.FiveTuple {
	return ecmp.FiveTuple{SrcIP: srcIP, DstIP: 99, SrcPort: 1000, DstPort: 443, Proto: ecmp.ProtoTCP}
}

func ev(t ecmp.FiveTuple, seq uint32, egress topology.LinkID, dropped bool) fabric.TapEvent {
	return fabric.TapEvent{
		IP:      wire.IPv4{Src: t.SrcIP, Dst: t.DstIP, Protocol: t.Proto},
		SrcPort: t.SrcPort, DstPort: t.DstPort,
		Seq: seq, Egress: egress, Dropped: dropped,
	}
}

func testTopo(t *testing.T) *topology.Topology {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPathReconstruction(t *testing.T) {
	topo := testTopo(t)
	c := New(topo, nil)
	tap := c.Tap()
	flow := tup(topo.Hosts[0].IP)
	// Packet 0 observed at three switches.
	tap(ev(flow, 0, 200, false))
	tap(ev(flow, 0, 201, false))
	tap(ev(flow, 0, 202, false))
	path, ok := c.PathOf(flow)
	if !ok {
		t.Fatal("path not found")
	}
	want := []topology.LinkID{topo.Hosts[0].Uplink, 200, 201, 202}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// A retransmitted packet re-walks the same path; the chain must not
// duplicate, and a dropped first attempt must be completed by the retry.
func TestPathSurvivesRetransmission(t *testing.T) {
	topo := testTopo(t)
	c := New(topo, nil)
	tap := c.Tap()
	flow := tup(topo.Hosts[0].IP)
	// First attempt dies after one hop.
	tap(ev(flow, 0, 300, false))
	tap(ev(flow, 0, 301, true))
	// Retransmission completes.
	tap(ev(flow, 0, 300, false))
	tap(ev(flow, 0, 301, false))
	tap(ev(flow, 0, 302, false))
	path, ok := c.PathOf(flow)
	if !ok || len(path) != 4 {
		t.Fatalf("path = %v (ok=%v), want 4 links", path, ok)
	}
}

func TestDropSiteAndCulprit(t *testing.T) {
	topo := testTopo(t)
	c := New(topo, nil)
	tap := c.Tap()
	flow := tup(topo.Hosts[1].IP)
	tap(ev(flow, 5, 400, true))
	tap(ev(flow, 6, 400, true))
	tap(ev(flow, 7, 410, true))
	if l, ok := c.DropSite(flow, 5); !ok || l != 400 {
		t.Fatalf("DropSite = %v/%v", l, ok)
	}
	if _, ok := c.DropSite(flow, 99); ok {
		t.Fatal("phantom drop found")
	}
	culprit, ok := c.Culprit(flow)
	if !ok || culprit != 400 {
		t.Fatalf("Culprit = %v/%v, want 400", culprit, ok)
	}
	drops := c.DropsByLink(flow)
	if drops[400] != 2 || drops[410] != 1 {
		t.Fatalf("DropsByLink = %v", drops)
	}
}

func TestSourceHostFilter(t *testing.T) {
	topo := testTopo(t)
	filter := SourceHostFilter(topo, []topology.HostID{2})
	c := New(topo, filter)
	tap := c.Tap()
	tap(ev(tup(topo.Hosts[2].IP), 0, 100, false)) // mirrored
	tap(ev(tup(topo.Hosts[3].IP), 0, 100, false)) // filtered out
	if c.Observations != 1 {
		t.Fatalf("observations = %d, want 1", c.Observations)
	}
	if _, ok := c.PathOf(tup(topo.Hosts[3].IP)); ok {
		t.Fatal("unmirrored flow has a path")
	}
}

func TestProbesNotMirrored(t *testing.T) {
	topo := testTopo(t)
	c := New(topo, nil)
	tap := c.Tap()
	e := ev(tup(topo.Hosts[0].IP), 0, 100, false)
	e.IP.ID = 3 // 007 probe: TTL echoed in IP ID
	tap(e)
	if c.Observations != 0 {
		t.Fatal("probe was mirrored")
	}
}
