// Package everflow reproduces the EverFlow-style packet mirroring the
// paper uses as ground truth (§7, §8.2): selected switches mirror matching
// packets to a collector, which can then reconstruct any mirrored flow's
// exact switch-level path and, for packets that never reached the
// destination, the link on which they died.
//
// The paper's point — and the reason 007 exists — is that this is far too
// expensive to run always-on for all traffic ("it is expensive to run for
// extended periods"; they captured 9 hosts for 5 hours). The collector
// therefore takes a filter and accounts its own observation volume.
package everflow

import (
	"vigil/internal/ecmp"
	"vigil/internal/fabric"
	"vigil/internal/topology"
)

// PacketKey identifies one mirrored packet: its flow and sequence number.
type PacketKey struct {
	Tuple ecmp.FiveTuple
	Seq   uint32
}

// Collector accumulates mirror observations.
type Collector struct {
	topo *topology.Topology
	// filter selects which packets to mirror; nil mirrors everything.
	filter func(ev fabric.TapEvent) bool

	// lastEgress records each packet's most recent forwarding decision.
	lastEgress map[PacketKey]topology.LinkID
	// chains collects the ordered egress links of each of a flow's first
	// few packets; the longest chain is the complete data path even when
	// some of those packets died en route (ECMP keeps all of them on one
	// path).
	chains map[PacketKey][]topology.LinkID
	// dropped records mirror-confirmed drop sites.
	dropped map[PacketKey]topology.LinkID

	Observations int64
}

// chainSeqs is how many of a flow's leading sequence numbers have their
// full egress chains retained for path reconstruction.
const chainSeqs = 4

// New builds a collector. filter limits mirroring (e.g. to the 9 sampled
// hosts of §8.2); nil mirrors all traffic.
func New(topo *topology.Topology, filter func(ev fabric.TapEvent) bool) *Collector {
	return &Collector{
		topo:       topo,
		filter:     filter,
		lastEgress: make(map[PacketKey]topology.LinkID),
		chains:     make(map[PacketKey][]topology.LinkID),
		dropped:    make(map[PacketKey]topology.LinkID),
	}
}

// SourceHostFilter mirrors only packets originating at the given hosts —
// the §8.2 configuration ("capture all outgoing IP traffic from 9 random
// hosts").
func SourceHostFilter(topo *topology.Topology, hosts []topology.HostID) func(fabric.TapEvent) bool {
	ips := make(map[uint32]bool, len(hosts))
	for _, h := range hosts {
		ips[topo.Hosts[h].IP] = true
	}
	return func(ev fabric.TapEvent) bool { return ips[ev.IP.Src] }
}

// Tap returns the fabric tap feeding this collector.
func (c *Collector) Tap() fabric.Tap {
	return func(ev fabric.TapEvent) {
		if c.filter != nil && !c.filter(ev) {
			return
		}
		if ev.IP.ID != 0 {
			return // 007 probe (TTL echoed in IP ID); mirror data only
		}
		tuple := ecmp.FiveTuple{
			SrcIP: ev.IP.Src, DstIP: ev.IP.Dst,
			SrcPort: ev.SrcPort, DstPort: ev.DstPort, Proto: ev.IP.Protocol,
		}
		key := PacketKey{Tuple: tuple, Seq: ev.Seq}
		c.Observations++
		if ev.Dropped {
			c.dropped[key] = ev.Egress
			return
		}
		c.lastEgress[key] = ev.Egress
		if ev.Seq < chainSeqs {
			// ECMP paths are loop-free, so a link already on the chain
			// means a retransmission of this sequence number re-walking
			// the same path; recording each link once reconstructs the
			// path even across partial first attempts.
			chain := c.chains[key]
			seen := false
			for _, l := range chain {
				if l == ev.Egress {
					seen = true
					break
				}
			}
			if !seen {
				c.chains[key] = append(chain, ev.Egress)
			}
		}
	}
}

// PathOf reconstructs the flow's full link path from the mirrors: the
// source host's uplink, then the longest observed egress chain among the
// flow's leading packets. ok is false when the flow was never mirrored.
func (c *Collector) PathOf(tuple ecmp.FiveTuple) ([]topology.LinkID, bool) {
	var egress []topology.LinkID
	ok := false
	for seq := uint32(0); seq < chainSeqs; seq++ {
		if chain, have := c.chains[PacketKey{Tuple: tuple, Seq: seq}]; have {
			ok = true
			if len(chain) > len(egress) {
				egress = chain
			}
		}
	}
	if !ok {
		return nil, false
	}
	src, ok := c.topo.LookupIP(tuple.SrcIP)
	if !ok || src.Kind != topology.NodeHost {
		return nil, false
	}
	path := make([]topology.LinkID, 0, len(egress)+1)
	path = append(path, c.topo.Hosts[src.ID].Uplink)
	path = append(path, egress...)
	return path, true
}

// DropSite returns the link on which a specific packet died. ok is false
// when the packet was delivered or never mirrored.
func (c *Collector) DropSite(tuple ecmp.FiveTuple, seq uint32) (topology.LinkID, bool) {
	l, ok := c.dropped[PacketKey{Tuple: tuple, Seq: seq}]
	return l, ok
}

// DropsByLink aggregates mirror-confirmed drops per link for one flow —
// the per-flow ground truth 007's verdicts are compared against in §8.2.
func (c *Collector) DropsByLink(tuple ecmp.FiveTuple) map[topology.LinkID]int {
	out := make(map[topology.LinkID]int)
	for key, l := range c.dropped {
		if key.Tuple == tuple {
			out[l]++
		}
	}
	return out
}

// Culprit returns the link that dropped the most of the flow's packets.
func (c *Collector) Culprit(tuple ecmp.FiveTuple) (topology.LinkID, bool) {
	best := topology.NoLink
	bestN := 0
	for l, n := range c.DropsByLink(tuple) {
		if n > bestN || (n == bestN && best != topology.NoLink && l < best) {
			best, bestN = l, n
		}
	}
	return best, best != topology.NoLink
}
