package pathdisc

import (
	"testing"

	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/topology"
	"vigil/internal/vote"
	"vigil/internal/wire"
)

func testTopo(t *testing.T) *topology.Topology {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// The probes must carry the flow's exact five-tuple, the TTL echoed in the
// IP ID, and a bad TCP checksum — §4.2's three crafting requirements.
func TestProbeCrafting(t *testing.T) {
	topo := testTopo(t)
	sched := &des.Scheduler{}
	var sent [][]byte
	a := New(Config{
		Topo: topo, Host: 0, Sched: sched,
		Send:         func(d []byte) { sent = append(sent, d) },
		ProbesPerTTL: 1,
	})
	flow := ecmp.FiveTuple{
		SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[20].IP,
		SrcPort: 44444, DstPort: 443, Proto: ecmp.ProtoTCP,
	}
	a.Discover(flow)
	if len(sent) != MaxTTL {
		t.Fatalf("sent %d probes, want %d", len(sent), MaxTTL)
	}
	for i, data := range sent {
		var ip wire.IPv4
		seg, err := wire.DecodeIPv4(data, &ip)
		if err != nil {
			t.Fatal(err)
		}
		if int(ip.TTL) != i+1 || int(ip.ID) != i+1 {
			t.Fatalf("probe %d: TTL=%d ID=%d", i, ip.TTL, ip.ID)
		}
		if ip.Src != flow.SrcIP || ip.Dst != flow.DstIP {
			t.Fatal("probe addresses differ from the flow")
		}
		var tcp wire.TCP
		if _, err := wire.DecodeTCP(seg, &tcp); err != nil {
			t.Fatal(err)
		}
		if tcp.SrcPort != flow.SrcPort || tcp.DstPort != flow.DstPort {
			t.Fatal("probe ports differ from the flow")
		}
		if wire.VerifyTCPChecksum(seg, ip.Src, ip.Dst) {
			t.Fatal("probe checksum is valid; it must be deliberately bad")
		}
	}
}

func TestProbesPerTTLDefault(t *testing.T) {
	topo := testTopo(t)
	sched := &des.Scheduler{}
	n := 0
	a := New(Config{Topo: topo, Host: 0, Sched: sched, Send: func([]byte) { n++ }})
	a.Discover(ecmp.FiveTuple{SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[10].IP, SrcPort: 1, DstPort: 2, Proto: 6})
	if n != 2*MaxTTL {
		t.Fatalf("default redundancy sent %d probes, want %d", n, 2*MaxTTL)
	}
}

func TestOncePerFlowPerEpoch(t *testing.T) {
	topo := testTopo(t)
	sched := &des.Scheduler{}
	n := 0
	a := New(Config{Topo: topo, Host: 0, Sched: sched, Send: func([]byte) { n++ }, ProbesPerTTL: 1})
	flow := ecmp.FiveTuple{SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[10].IP, SrcPort: 1, DstPort: 2, Proto: 6}
	a.Discover(flow)
	a.Discover(flow) // same epoch: suppressed
	if n != MaxTTL {
		t.Fatalf("re-discovery in the same epoch sent probes: %d", n)
	}
	a.NewEpoch()
	a.Discover(flow)
	if n != 2*MaxTTL {
		t.Fatalf("discovery after epoch roll did not probe: %d", n)
	}
}

func TestCtRateLimit(t *testing.T) {
	topo := testTopo(t)
	sched := &des.Scheduler{}
	n := 0
	a := New(Config{Topo: topo, Host: 0, Sched: sched, Ct: 2, Send: func([]byte) { n++ }, ProbesPerTTL: 1})
	for i := 0; i < 10; i++ {
		a.Discover(ecmp.FiveTuple{
			SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[10].IP,
			SrcPort: uint16(i + 1), DstPort: 443, Proto: 6,
		})
	}
	if a.Traces != 2 || a.RateLimited != 8 {
		t.Fatalf("traces=%d limited=%d, want 2/8", a.Traces, a.RateLimited)
	}
	// Tokens refill with virtual time (drain past the pending probe
	// timeouts up to the 2-second mark).
	sched.At(2*des.Second, func() {})
	sched.Drain(100)
	a.Discover(ecmp.FiveTuple{SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[10].IP, SrcPort: 99, DstPort: 443, Proto: 6})
	if a.Traces != 3 {
		t.Fatalf("budget did not refill: traces=%d", a.Traces)
	}
}

// Synthetic ICMP replies must assemble into the right link path, and a
// missing middle hop must truncate to the adjacent prefix.
func TestAssemblyFromReplies(t *testing.T) {
	topo := testTopo(t)
	sched := &des.Scheduler{}
	var reports []vote.Report
	a := New(Config{
		Topo: topo, Host: 0, Sched: sched, ProbesPerTTL: 1,
		Send:     func([]byte) {},
		OnReport: func(r vote.Report) { reports = append(reports, r) },
	})
	dst := topology.HostID(10)
	flow := ecmp.FiveTuple{SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[dst].IP, SrcPort: 7, DstPort: 443, Proto: 6}
	a.Discover(flow)

	reply := func(ttl uint8, from topology.SwitchID) {
		// Build the expired probe the way the fabric would echo it back.
		probe := buildProbe(flow, ttl)
		ic := wire.TimeExceeded(probe)
		buf := wire.NewBuffer(64)
		ic.SerializeTo(buf)
		var parsed wire.ICMP
		if err := wire.DecodeICMP(buf.Bytes(), &parsed); err != nil {
			t.Fatal(err)
		}
		if !a.HandleICMP(topo.Switches[from].IP, &parsed) {
			t.Fatalf("reply for TTL %d not matched", ttl)
		}
	}
	tor := topo.Hosts[0].ToR
	t1 := topo.T1(0, 2)
	dstToR := topo.Hosts[dst].ToR
	reply(1, tor)
	reply(2, t1)
	reply(3, dstToR)
	sched.Drain(10) // fire the probe timeout

	if len(reports) != 1 {
		t.Fatalf("%d reports", len(reports))
	}
	r := reports[0]
	if r.Partial {
		t.Fatalf("complete trace marked partial: %+v", r)
	}
	want := []topology.LinkID{topo.Hosts[0].Uplink}
	l1, _ := topo.LinkBetween(topology.SwitchNode(tor), topology.SwitchNode(t1))
	l2, _ := topo.LinkBetween(topology.SwitchNode(t1), topology.SwitchNode(dstToR))
	want = append(want, l1, l2, topo.Hosts[dst].Downlink)
	if len(r.Path) != len(want) {
		t.Fatalf("path = %v, want %v", r.Path, want)
	}
	for i := range want {
		if r.Path[i] != want[i] {
			t.Fatalf("path[%d] = %v, want %v", i, r.Path[i], want[i])
		}
	}
}

func TestPartialOnMissingHop(t *testing.T) {
	topo := testTopo(t)
	sched := &des.Scheduler{}
	var reports []vote.Report
	a := New(Config{
		Topo: topo, Host: 0, Sched: sched, ProbesPerTTL: 1,
		Send:     func([]byte) {},
		OnReport: func(r vote.Report) { reports = append(reports, r) },
	})
	dst := topology.HostID(10)
	flow := ecmp.FiveTuple{SrcIP: topo.Hosts[0].IP, DstIP: topo.Hosts[dst].IP, SrcPort: 8, DstPort: 443, Proto: 6}
	a.Discover(flow)
	// Only the first hop answers (probes beyond died on a blackhole).
	probe := buildProbe(flow, 1)
	ic := wire.TimeExceeded(probe)
	buf := wire.NewBuffer(64)
	ic.SerializeTo(buf)
	var parsed wire.ICMP
	if err := wire.DecodeICMP(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	a.HandleICMP(topo.Switches[topo.Hosts[0].ToR].IP, &parsed)
	sched.Drain(10)
	if len(reports) != 1 || !reports[0].Partial {
		t.Fatalf("expected a partial report, got %+v", reports)
	}
	if len(reports[0].Path) != 1 || reports[0].Path[0] != topo.Hosts[0].Uplink {
		t.Fatalf("partial path = %v", reports[0].Path)
	}
	if a.PartialPaths != 1 {
		t.Fatalf("PartialPaths = %d", a.PartialPaths)
	}
}

func TestForeignICMPIgnored(t *testing.T) {
	topo := testTopo(t)
	a := New(Config{Topo: topo, Host: 0, Sched: &des.Scheduler{}, Send: func([]byte) {}})
	ic := wire.ICMP{Type: wire.ICMPTypeEchoReply}
	if a.HandleICMP(1234, &ic) {
		t.Fatal("echo reply matched a traceroute")
	}
	te := wire.TimeExceeded([]byte{1, 2, 3})
	if a.HandleICMP(1234, &te) {
		t.Fatal("garbage time-exceeded matched")
	}
}
