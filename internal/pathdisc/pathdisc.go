// Package pathdisc implements 007's path discovery agent (§4): when the
// monitoring agent reports a retransmitting flow, it resolves the flow's
// DIP through the SLB, then emits 15 crafted TCP probes with TTLs 1-15 that
// carry the flow's exact five-tuple (so ECMP hashes them onto the data
// path), the TTL echoed in the IP ID field (so concurrent traceroutes
// disambiguate), and a deliberately bad TCP checksum (so the destination
// stack ignores them). ICMP time-exceeded replies are matched back to
// probes and assembled into a link-level path; partial traceroutes — the
// probe itself died on the faulty link — are reported as such and still
// vote on their prefix.
//
// Two rate limits protect the switch control planes (§4.1): the per-host
// Ct bound from Theorem 1 enforced here, and the per-switch Tmax token
// bucket enforced by the fabric.
//
// On the hot path the agent is allocation-free apart from the report it
// emits: probes serialize into pooled packet buffers (Config.NewPacket /
// SendPacket), trace state is recycled through a free list, and the probe
// timeout is a typed DES event.
package pathdisc

import (
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/slb"
	"vigil/internal/topology"
	"vigil/internal/vote"
	"vigil/internal/wire"
)

// MaxTTL is the deepest hop probed; a Clos host path has at most 5
// switches, the paper sends 15 probes to be safe.
const MaxTTL = 15

// evFinish is the agent's typed DES event: a trace's probe timeout
// expiring (payload = the trace).
const evFinish int32 = 1

// Config assembles an agent for one host.
type Config struct {
	Topo *topology.Topology
	Host topology.HostID
	// SLB resolves VIP flows to DIPs; may be nil when the workload
	// addresses DIPs directly (infrastructure traffic).
	SLB *slb.SLB
	// Send injects a serialized probe onto the host's uplink. Each probe
	// is built into a fresh byte slice; prefer the pooled pair below on
	// hot paths.
	Send func(data []byte)
	// NewPacket and SendPacket, when both set, replace Send: probes build
	// into pooled wire buffers and SendPacket takes ownership of each.
	NewPacket  func() *wire.Buffer
	SendPacket func(pkt *wire.Buffer)
	// Sched provides virtual time for probe timeouts and rate limiting. On
	// a sharded emulation this must be the scheduler of the host's shard.
	Sched *des.Scheduler
	// EventKey is the origin key the agent's timer events carry (see
	// des.Scheduler.PostKeyed); the embedding layer derives it from the
	// host identity so simultaneous timeouts on different hosts order
	// deterministically. Zero keeps unkeyed posting.
	EventKey uint64
	// Ct is the host traceroute budget in traceroutes/second (Theorem 1);
	// zero disables the limit.
	Ct float64
	// ProbesPerTTL sends redundant probes per hop (default 2, like
	// classical traceroute's retries): the probe tracing a lossy link is
	// itself exposed to that link's drop rate, and a lost critical probe
	// truncates the path. Duplicate replies are idempotent.
	ProbesPerTTL int
	// ProbeTimeout is how long to wait for ICMP replies before assembling
	// the path; zero means 20ms (datacenter RTTs are well under 2ms).
	ProbeTimeout des.Time
	// OnReport receives the finished path report.
	OnReport func(r vote.Report)
	// Retx returns the flow's current retransmission count (wired to the
	// monitoring agent) at report-assembly time.
	Retx func(flow ecmp.FiveTuple) int
	// FlowID optionally supplies stable flow identifiers (for scoring
	// against ground truth); when nil the agent numbers traces itself.
	FlowID func(flow ecmp.FiveTuple) int64
}

// Agent is one host's path discovery agent.
type Agent struct {
	cfg Config

	nextFlowID int64
	epoch      int64
	// cache remembers flows already traced this epoch ("the agent triggers
	// path discovery for a given connection no more than once every
	// epoch", §4.1). Cleared — not reallocated — on epoch roll, so its
	// memory is bounded by the busiest epoch.
	cache map[ecmp.FiveTuple]bool

	pending map[probeKey]*trace
	// freeTraces recycles trace state across discoveries.
	freeTraces []*trace
	// pathScratch is reused to assemble the answering-switch prefix.
	pathScratch [MaxTTL + 1]topology.SwitchID

	tokens     float64
	lastRefill des.Time

	// Stats.
	Traces       int64 // traceroutes launched
	RateLimited  int64 // discoveries skipped by the Ct budget
	SLBFailures  int64 // discoveries skipped because the DIP query failed
	PartialPaths int64
}

// probeKey matches an ICMP reply's embedded probe back to its traceroute:
// the probe's destination and ports identify the flow (the source is this
// host).
type probeKey struct {
	dst     uint32
	srcPort uint16
	dstPort uint16
}

type trace struct {
	flow ecmp.FiveTuple // DIP-rewritten tuple actually probed
	orig ecmp.FiveTuple // as seen by TCP (may carry the VIP)
	// flowID is resolved at Discover time, while the triggering flow is
	// certainly still registered — by the probe timeout the epoch may have
	// rolled and recycled the registry.
	flowID int64
	hops   [MaxTTL + 1]uint32
	maxID  int
}

// New builds the agent.
func New(cfg Config) *Agent {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 20 * des.Millisecond
	}
	if cfg.ProbesPerTTL <= 0 {
		cfg.ProbesPerTTL = 2
	}
	return &Agent{
		cfg:     cfg,
		cache:   make(map[ecmp.FiveTuple]bool),
		pending: make(map[probeKey]*trace),
		tokens:  cfg.Ct, // start with one second of budget
	}
}

// NewEpoch resets the per-epoch trace cache.
func (a *Agent) NewEpoch() {
	a.epoch++
	clear(a.cache)
}

// Discover traces the path of flow (as seen by TCP, possibly VIP-bound).
// It silently skips when the flow was already traced this epoch, the Ct
// budget is exhausted, or the SLB query fails.
func (a *Agent) Discover(flow ecmp.FiveTuple) {
	if a.cache[flow] {
		return
	}
	a.cache[flow] = true
	if !a.allow() {
		a.RateLimited++
		return
	}
	probed := flow
	if a.cfg.SLB != nil && a.cfg.SLB.IsVIP(flow.DstIP) {
		dip, ok := a.cfg.SLB.QuerySLB(slb.FlowKey{
			SrcIP: flow.SrcIP, SrcPort: flow.SrcPort,
			VIP: flow.DstIP, VIPPort: flow.DstPort,
		})
		if !ok {
			a.SLBFailures++
			return // never traceroute toward an unresolved VIP (§4.2)
		}
		probed.DstIP = a.cfg.Topo.Hosts[dip].IP
	}
	a.Traces++
	tr := a.getTrace()
	tr.flow = probed
	tr.orig = flow
	tr.flowID = -1
	if a.cfg.FlowID != nil {
		tr.flowID = a.cfg.FlowID(flow)
	}
	a.pending[probeKey{dst: probed.DstIP, srcPort: probed.SrcPort, dstPort: probed.DstPort}] = tr
	pooled := a.cfg.NewPacket != nil && a.cfg.SendPacket != nil
	for ttl := 1; ttl <= MaxTTL; ttl++ {
		for i := 0; i < a.cfg.ProbesPerTTL; i++ {
			if pooled {
				pkt := a.cfg.NewPacket()
				buildProbeInto(pkt, probed, uint8(ttl))
				a.cfg.SendPacket(pkt)
			} else {
				a.cfg.Send(buildProbe(probed, uint8(ttl)))
			}
		}
	}
	a.cfg.Sched.PostKeyedAfter(a.cfg.ProbeTimeout, a.cfg.EventKey, a, evFinish, 0, tr)
}

// getTrace produces zeroed trace state, recycling finished traces.
func (a *Agent) getTrace() *trace {
	if n := len(a.freeTraces); n > 0 {
		tr := a.freeTraces[n-1]
		a.freeTraces[n-1] = nil
		a.freeTraces = a.freeTraces[:n-1]
		*tr = trace{}
		return tr
	}
	return &trace{}
}

// HandleEvent fires a trace's probe timeout (the agent's typed DES event).
func (a *Agent) HandleEvent(kind int32, _ int64, p any) {
	_ = kind // evFinish is the only kind the agent schedules
	a.finish(p.(*trace))
}

// buildProbeInto crafts one traceroute packet into buf: the flow's
// five-tuple, the TTL echoed in the IP ID, and a bad TCP checksum.
func buildProbeInto(buf *wire.Buffer, flow ecmp.FiveTuple, ttl uint8) {
	tcp := wire.TCP{
		SrcPort: flow.SrcPort, DstPort: flow.DstPort,
		Flags: wire.FlagACK, Window: 1, BadChecksum: true,
	}
	ip := wire.IPv4{
		ID: uint16(ttl), TTL: ttl, Protocol: wire.ProtoTCP,
		Src: flow.SrcIP, Dst: flow.DstIP,
	}
	tcp.SerializeTo(buf, &ip)
	ip.SerializeTo(buf)
}

// buildProbe crafts one probe into a fresh byte slice (the Send fallback).
func buildProbe(flow ecmp.FiveTuple, ttl uint8) []byte {
	buf := wire.NewBuffer(wire.IPv4HeaderLen + wire.TCPHeaderLen)
	buildProbeInto(buf, flow, ttl)
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

// HandleICMP feeds the agent an ICMP message received by the host. It
// returns true when the message matched one of this agent's traceroutes.
func (a *Agent) HandleICMP(from uint32, ic *wire.ICMP) bool {
	if ic.Type != wire.ICMPTypeTimeExceeded {
		return false
	}
	emb, srcPort, dstPort, hasPorts, err := wire.ExpiredProbe(ic.Body)
	if err != nil || !hasPorts {
		return false
	}
	tr, ok := a.pending[probeKey{dst: emb.Dst, srcPort: srcPort, dstPort: dstPort}]
	if !ok {
		return false
	}
	ttl := int(emb.ID) // the encoded probe TTL
	if ttl < 1 || ttl > MaxTTL {
		return false
	}
	tr.hops[ttl] = from
	if ttl > tr.maxID {
		tr.maxID = ttl
	}
	return true
}

// finish assembles the trace into a vote.Report and recycles the trace.
func (a *Agent) finish(tr *trace) {
	delete(a.pending, probeKey{dst: tr.flow.DstIP, srcPort: tr.flow.SrcPort, dstPort: tr.flow.DstPort})
	topo := a.cfg.Topo
	a.nextFlowID++

	r := vote.Report{
		FlowID: int64(a.cfg.Host)<<32 | a.nextFlowID,
		Src:    a.cfg.Host,
		Retx:   1,
	}
	if a.cfg.FlowID != nil {
		r.FlowID = tr.flowID
	}
	if a.cfg.Retx != nil {
		if n := a.cfg.Retx(tr.orig); n > 0 {
			r.Retx = n
		}
	}

	// Contiguous prefix of answering hops.
	switches := a.pathScratch[:0]
	for ttl := 1; ttl <= tr.maxID; ttl++ {
		node, ok := topo.LookupIP(tr.hops[ttl])
		if !ok || node.Kind != topology.NodeSwitch {
			break
		}
		switches = append(switches, topology.SwitchID(node.ID))
	}
	prev := topology.HostNode(a.cfg.Host)
	adjacent := true
	for _, sw := range switches {
		l, ok := topo.LinkBetween(prev, topology.SwitchNode(sw))
		if !ok {
			adjacent = false
			break // non-adjacent hop: path changed mid-trace, keep prefix
		}
		r.Path = append(r.Path, l)
		prev = topology.SwitchNode(sw)
	}
	// The trace is complete when the answering switches form an adjacent
	// chain ending at the destination's ToR; the final host downlink is
	// then known without probing it.
	complete := false
	if dstNode, ok := topo.LookupIP(tr.flow.DstIP); ok && dstNode.Kind == topology.NodeHost {
		dst := topology.HostID(dstNode.ID)
		r.Dst = dst
		if adjacent && len(switches) > 0 && switches[len(switches)-1] == topo.Hosts[dst].ToR {
			if l, ok := topo.LinkBetween(prev, topology.HostNode(dst)); ok {
				r.Path = append(r.Path, l)
				complete = true
			}
		}
	}
	if !complete {
		// Did not reach the destination rack: partial traceroute. The
		// analysis engine still uses the prefix (§4.2).
		r.Partial = true
		a.PartialPaths++
	}
	a.freeTraces = append(a.freeTraces, tr)
	if a.cfg.OnReport != nil {
		a.cfg.OnReport(r)
	}
}

// allow enforces the Ct traceroute budget.
func (a *Agent) allow() bool {
	if a.cfg.Ct <= 0 {
		return true
	}
	now := a.cfg.Sched.Now()
	a.tokens += float64(now-a.lastRefill) / float64(des.Second) * a.cfg.Ct
	a.lastRefill = now
	if burst := a.cfg.Ct; a.tokens > burst {
		a.tokens = burst
	}
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}
