package vote

import (
	"sort"

	"vigil/internal/topology"
)

// This file implements the §5.1 extension the paper sketches: "007 can
// also be used to detect switch failures in a similar fashion by applying
// votes to switches instead of links." A failed flow votes 1/s on each of
// the s switches of its path; a switch whose silent drops span all its
// links (a bad ASIC, the §7.1 repaved-cluster ToR) then accumulates votes
// that no single link would.

// SwitchVotes pairs a switch with its tally.
type SwitchVotes struct {
	Switch topology.SwitchID
	Votes  float64
}

// SwitchTally accumulates per-switch votes over one epoch.
type SwitchTally struct {
	topo  *topology.Topology
	votes map[topology.SwitchID]float64
	flows int
}

// NewSwitchTally returns an empty tally over topo.
func NewSwitchTally(topo *topology.Topology) *SwitchTally {
	return &SwitchTally{topo: topo, votes: make(map[topology.SwitchID]float64)}
}

// SwitchesOnPath extracts the ordered switch sequence from a link path.
func SwitchesOnPath(topo *topology.Topology, path []topology.LinkID) []topology.SwitchID {
	var out []topology.SwitchID
	for _, l := range path {
		if to := topo.Links[l].To; to.Kind == topology.NodeSwitch {
			out = append(out, topology.SwitchID(to.ID))
		}
	}
	return out
}

// Add casts r's votes: 1/s per path switch.
func (t *SwitchTally) Add(r Report) {
	t.flows++
	switches := SwitchesOnPath(t.topo, r.Path)
	if len(switches) == 0 {
		return
	}
	v := 1.0 / float64(len(switches))
	for _, sw := range switches {
		t.votes[sw] += v
	}
}

// AddAll casts votes for every report.
func (t *SwitchTally) AddAll(rs []Report) {
	for _, r := range rs {
		t.Add(r)
	}
}

// Votes returns switch sw's tally.
func (t *SwitchTally) Votes(sw topology.SwitchID) float64 { return t.votes[sw] }

// Flows returns the number of reports received.
func (t *SwitchTally) Flows() int { return t.flows }

// Ranking returns switches by descending votes, ties toward lower IDs.
func (t *SwitchTally) Ranking() []SwitchVotes {
	out := make([]SwitchVotes, 0, len(t.votes))
	for sw, v := range t.votes {
		if v > 0 {
			out = append(out, SwitchVotes{Switch: sw, Votes: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Switch < out[j].Switch
	})
	return out
}

// FindProblemSwitches mirrors Algorithm 1 at switch granularity: pick the
// most-voted switch, discount the votes its failed flows spilled onto
// other switches (measured from the observed reports), repeat while the
// leader holds at least thresholdFrac of the epoch's initial votes.
func FindProblemSwitches(t *SwitchTally, reports []Report, thresholdFrac float64) []topology.SwitchID {
	if thresholdFrac <= 0 {
		thresholdFrac = 0.01
	}
	votes := make(map[topology.SwitchID]float64, len(t.votes))
	var total float64
	for sw, v := range t.votes {
		votes[sw] = v
		total += v
	}
	// Index reports by switch for the overlap estimates.
	bySwitch := make(map[topology.SwitchID][]int)
	paths := make([][]topology.SwitchID, len(reports))
	for i, r := range reports {
		paths[i] = SwitchesOnPath(t.topo, r.Path)
		for _, sw := range paths[i] {
			bySwitch[sw] = append(bySwitch[sw], i)
		}
	}
	cutoff := thresholdFrac * total
	inB := make(map[topology.SwitchID]bool)
	var b []topology.SwitchID
	for {
		best := topology.SwitchID(-1)
		bestV := 0.0
		for sw, v := range votes {
			if inB[sw] {
				continue
			}
			if v > bestV || (v == bestV && v > 0 && (best == -1 || sw < best)) {
				best, bestV = sw, v
			}
		}
		if best == -1 || bestV < cutoff {
			return b
		}
		inB[best] = true
		b = append(b, best)
		through := bySwitch[best]
		if len(through) == 0 {
			continue
		}
		onBest := make(map[int]bool, len(through))
		for _, i := range through {
			onBest[i] = true
		}
		for sw := range votes {
			if inB[sw] {
				continue
			}
			shared := 0
			for _, i := range bySwitch[sw] {
				if onBest[i] {
					shared++
				}
			}
			if shared == 0 {
				continue
			}
			votes[sw] -= bestV * float64(shared) / float64(len(through))
			if votes[sw] < 0 {
				votes[sw] = 0
			}
		}
	}
}
