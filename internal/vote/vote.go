// Package vote implements 007's core contribution: the voting-based fault
// localization scheme of §5.
//
// Every flow that suffers a retransmission casts a vote of 1/h on each of
// the h links of its path (good flows vote 0 and are never traced). Votes
// are tallied per 30-second epoch; the tally ranks links by likely drop
// rate (Theorem 2), names the most likely cause of each individual flow's
// drops, and — via Algorithm 1 — yields the set of problematic links.
package vote

import (
	"sort"

	"vigil/internal/topology"
)

// Report is what one host's 007 agent tells the analysis agent about one
// flow that retransmitted: the flow, its discovered path, and how many
// retransmissions it saw.
type Report struct {
	FlowID   int64
	Src, Dst topology.HostID
	Path     []topology.LinkID
	Retx     int
	// Partial marks a traceroute that did not reach the destination (the
	// probe itself was lost); Path then holds the reached prefix.
	Partial bool
}

// LinkVotes pairs a link with its tally.
type LinkVotes struct {
	Link  topology.LinkID
	Votes float64
}

// Tally accumulates votes over one epoch.
type Tally struct {
	votes map[topology.LinkID]float64
	flows int
	total float64
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{votes: make(map[topology.LinkID]float64)}
}

// Add casts r's votes: 1/h per path link, h = len(Path). Reports with empty
// paths (a traceroute that produced nothing) are counted but vote nowhere.
func (t *Tally) Add(r Report) {
	t.flows++
	h := len(r.Path)
	if h == 0 {
		return
	}
	v := 1.0 / float64(h)
	for _, l := range r.Path {
		t.votes[l] += v
	}
	t.total += 1
}

// AddAll casts votes for each report.
func (t *Tally) AddAll(rs []Report) {
	for _, r := range rs {
		t.Add(r)
	}
}

// Votes returns link l's tally.
func (t *Tally) Votes(l topology.LinkID) float64 { return t.votes[l] }

// Total returns the sum of all votes cast. Each fully traced failed flow
// contributes exactly 1 (h links × 1/h each).
func (t *Tally) Total() float64 { return t.total }

// Flows returns the number of reports received.
func (t *Tally) Flows() int { return t.flows }

// Len returns the number of links with non-zero tallies.
func (t *Tally) Len() int { return len(t.votes) }

// Snapshot copies the tally map, for mutation by Algorithm 1.
func (t *Tally) Snapshot() map[topology.LinkID]float64 {
	m := make(map[topology.LinkID]float64, len(t.votes))
	for l, v := range t.votes {
		m[l] = v
	}
	return m
}

// Ranking returns links sorted by descending votes; ties break toward the
// lower link ID so results are deterministic.
func (t *Tally) Ranking() []LinkVotes {
	return rankVotes(t.votes)
}

func rankVotes(votes map[topology.LinkID]float64) []LinkVotes {
	out := make([]LinkVotes, 0, len(votes))
	for l, v := range votes {
		if v > 0 {
			out = append(out, LinkVotes{Link: l, Votes: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// BlameOnPath returns the most-voted link of path, the most likely cause of
// that flow's drops (§5.2: links ranked higher have higher drop rates).
// ok is false when no path link received any vote.
func (t *Tally) BlameOnPath(path []topology.LinkID) (blame topology.LinkID, ok bool) {
	return blameOnPath(t.votes, path)
}

func blameOnPath(votes map[topology.LinkID]float64, path []topology.LinkID) (topology.LinkID, bool) {
	best := topology.NoLink
	bestV := 0.0
	for _, l := range path {
		v := votes[l]
		if v > bestV || (v == bestV && v > 0 && (best == topology.NoLink || l < best)) {
			best, bestV = l, v
		}
	}
	return best, best != topology.NoLink
}
