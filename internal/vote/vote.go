// Package vote implements 007's core contribution: the voting-based fault
// localization scheme of §5.
//
// Every flow that suffers a retransmission casts a vote of 1/h on each of
// the h links of its path (good flows vote 0 and are never traced). Votes
// are tallied per 30-second epoch; the tally ranks links by likely drop
// rate (Theorem 2), names the most likely cause of each individual flow's
// drops, and — via Algorithm 1 — yields the set of problematic links.
//
// Tallies are slice-backed (dense by LinkID) and mergeable: shard-local
// tallies built by concurrent workers combine with Merge without a global
// lock. Merging partials in a fixed shard order makes the floating-point
// sums worker-count-independent (identical for identical shard splits);
// they are the fixed-chunk reduction's sums, which can differ from a flat
// sequential AddAll by reassociation at the 1-ulp level.
package vote

import (
	"sort"

	"vigil/internal/topology"
)

// Report is what one host's 007 agent tells the analysis agent about one
// flow that retransmitted: the flow, its discovered path, and how many
// retransmissions it saw.
type Report struct {
	FlowID   int64
	Src, Dst topology.HostID
	Path     []topology.LinkID
	Retx     int
	// Partial marks a traceroute that did not reach the destination (the
	// probe itself was lost); Path then holds the reached prefix.
	Partial bool
	// Epoch and Seq give the report a stable identity under streaming
	// ingest: (Src, Epoch, Seq) names this report uniquely across the run.
	// Every batch producer assigns Seq densely per agent per epoch — an
	// agent's k reports in epoch e carry sequences 0..k-1 in emission order
	// — which is the invariant the ingest collector's gap detection,
	// duplicate suppression and loss accounting are built on.
	Epoch int32
	Seq   int32
}

// ReportID is a report's stable identity on the agent→collector path.
type ReportID struct {
	Agent topology.HostID
	Epoch int32
	Seq   int32
}

// ID returns the report's identity. The reporting agent is the source host:
// 007 agents report the flows of their own host.
func (r Report) ID() ReportID { return ReportID{Agent: r.Src, Epoch: r.Epoch, Seq: r.Seq} }

// CanonicalLess orders reports by identity: agent, then epoch, then
// sequence. Within one epoch this is a total order (identities are unique),
// independent of arrival interleaving — the order settled epochs are
// analyzed in, and the order batch engines emit in.
func CanonicalLess(a, b Report) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	return a.Seq < b.Seq
}

// SortCanonical sorts reports into canonical identity order in place. It is
// a no-op (single ordered scan) when the input is already canonical — the
// common case for batch epochs, whose producers emit agents in ascending
// order with dense sequences.
func SortCanonical(reports []Report) {
	for i := 1; i < len(reports); i++ {
		if CanonicalLess(reports[i], reports[i-1]) {
			sort.SliceStable(reports, func(i, j int) bool { return CanonicalLess(reports[i], reports[j]) })
			return
		}
	}
}

// LinkVotes pairs a link with its tally.
type LinkVotes struct {
	Link  topology.LinkID
	Votes float64
}

// Tally accumulates votes over one epoch. It is backed by a dense slice
// indexed by LinkID, grown on demand, so lookups are branch-plus-load and
// two tallies merge with one elementwise pass. A Tally is not safe for
// concurrent use; build one per shard and Merge them.
type Tally struct {
	votes []float64 // dense by LinkID
	voted int       // links with non-zero tallies
	flows int
	total float64
}

// NewTally returns an empty tally that grows as links are voted on.
func NewTally() *Tally { return &Tally{} }

// grow ensures the dense slice covers link l, doubling capacity so a
// stream of ascending link IDs costs amortized O(1) per element instead of
// a full copy per new maximum.
func (t *Tally) grow(l topology.LinkID) {
	need := int(l) + 1
	if need <= len(t.votes) {
		return
	}
	if need <= cap(t.votes) {
		old := len(t.votes)
		t.votes = t.votes[:need]
		clear(t.votes[old:])
		return
	}
	newcap := 2 * cap(t.votes)
	if newcap < need {
		newcap = need
	}
	votes := make([]float64, need, newcap)
	copy(votes, t.votes)
	t.votes = votes
}

// Add casts r's votes: 1/h per path link, h = len(Path). Reports with empty
// paths (a traceroute that produced nothing) are counted but vote nowhere.
func (t *Tally) Add(r Report) {
	t.flows++
	h := len(r.Path)
	if h == 0 {
		return
	}
	v := 1.0 / float64(h)
	for _, l := range r.Path {
		if l < 0 {
			continue // NoLink placeholders vote nowhere
		}
		t.grow(l)
		if t.votes[l] == 0 {
			t.voted++
		}
		t.votes[l] += v
	}
	t.total += 1
}

// AddAll casts votes for each report.
func (t *Tally) AddAll(rs []Report) {
	for _, r := range rs {
		t.Add(r)
	}
}

// Merge folds o's votes into t. Merging per-shard tallies in shard order
// yields worker-count-independent sums: each link's total is the ordered
// sum of its per-shard partials. o is left unmodified.
func (t *Tally) Merge(o *Tally) {
	if o == nil {
		return
	}
	if n := len(o.votes); n > 0 {
		t.grow(topology.LinkID(n - 1))
	}
	for l, v := range o.votes {
		if v == 0 {
			continue
		}
		if t.votes[l] == 0 {
			t.voted++
		}
		t.votes[l] += v
	}
	t.flows += o.flows
	t.total += o.total
}

// Votes returns link l's tally.
func (t *Tally) Votes(l topology.LinkID) float64 {
	if l < 0 || int(l) >= len(t.votes) {
		return 0
	}
	return t.votes[l]
}

// Total returns the sum of all votes cast. Each fully traced failed flow
// contributes exactly 1 (h links × 1/h each).
func (t *Tally) Total() float64 { return t.total }

// Flows returns the number of reports received.
func (t *Tally) Flows() int { return t.flows }

// Len returns the number of links with non-zero tallies.
func (t *Tally) Len() int { return t.voted }

// Snapshot copies the dense vote vector, for mutation by Algorithm 1.
// Index i holds LinkID i's tally; links beyond the highest voted ID are
// simply absent.
func (t *Tally) Snapshot() []float64 {
	m := make([]float64, len(t.votes))
	copy(m, t.votes)
	return m
}

// Ranking returns links sorted by descending votes; ties break toward the
// lower link ID so results are deterministic.
func (t *Tally) Ranking() []LinkVotes {
	return rankVotes(t.votes)
}

func rankVotes(votes []float64) []LinkVotes {
	out := make([]LinkVotes, 0, len(votes))
	for l, v := range votes {
		if v > 0 {
			out = append(out, LinkVotes{Link: topology.LinkID(l), Votes: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// BlameOnPath returns the most-voted link of path, the most likely cause of
// that flow's drops (§5.2: links ranked higher have higher drop rates).
// ok is false when no path link received any vote.
func (t *Tally) BlameOnPath(path []topology.LinkID) (blame topology.LinkID, ok bool) {
	return blameOnPath(t.votes, path)
}

func blameOnPath(votes []float64, path []topology.LinkID) (topology.LinkID, bool) {
	best := topology.NoLink
	bestV := 0.0
	for _, l := range path {
		var v float64
		if l >= 0 && int(l) < len(votes) {
			v = votes[l]
		}
		if v > bestV || (v == bestV && v > 0 && (best == topology.NoLink || l < best)) {
			best, bestV = l, v
		}
	}
	return best, best != topology.NoLink
}
