package vote

import (
	"math"
	"testing"
	"testing/quick"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

func report(id int64, retx int, path ...topology.LinkID) Report {
	return Report{FlowID: id, Path: path, Retx: retx}
}

func TestTallyVoteValues(t *testing.T) {
	tl := NewTally()
	tl.Add(report(1, 2, 10, 11, 12, 13)) // h=4 → 1/4 each
	tl.Add(report(2, 1, 10, 20, 21, 22, 23, 24))
	if got := tl.Votes(10); math.Abs(got-(0.25+1.0/6)) > 1e-12 {
		t.Fatalf("Votes(10) = %v", got)
	}
	if got := tl.Votes(11); got != 0.25 {
		t.Fatalf("Votes(11) = %v", got)
	}
	if got := tl.Votes(99); got != 0 {
		t.Fatalf("Votes(99) = %v", got)
	}
	if tl.Flows() != 2 {
		t.Fatalf("Flows = %d", tl.Flows())
	}
}

// Conservation: each fully traced failed flow contributes exactly 1 vote in
// total (h links × 1/h), so the tally total equals the number of reports
// with non-empty paths.
func TestTallyConservation(t *testing.T) {
	rng := stats.NewRNG(1)
	f := func(nFlows uint8) bool {
		tl := NewTally()
		withPath := 0
		for i := 0; i < int(nFlows%50); i++ {
			h := rng.Intn(7)
			path := make([]topology.LinkID, h)
			for j := range path {
				path[j] = topology.LinkID(rng.Intn(100))
			}
			tl.Add(report(int64(i), 1, path...))
			if h > 0 {
				withPath++
			}
		}
		var sum float64
		for _, lv := range tl.Ranking() {
			sum += lv.Votes
		}
		return math.Abs(sum-float64(withPath)) < 1e-9 &&
			math.Abs(tl.Total()-float64(withPath)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Shard-local tallies merged in shard order must reproduce a sequential
// pass: same flows, same totals, and vote sums equal to within the
// reassociation of per-shard partials (exact when links don't straddle
// shards, 1-ulp-class otherwise).
func TestTallyMergeMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(7)
	var reports []Report
	for i := 0; i < 200; i++ {
		h := 1 + rng.Intn(6)
		path := make([]topology.LinkID, h)
		for j := range path {
			path[j] = topology.LinkID(rng.Intn(50))
		}
		reports = append(reports, report(int64(i), 1, path...))
	}
	seq := NewTally()
	seq.AddAll(reports)
	for _, nshards := range []int{1, 2, 3, 7} {
		merged := NewTally()
		size := (len(reports) + nshards - 1) / nshards
		for lo := 0; lo < len(reports); lo += size {
			hi := min(lo+size, len(reports))
			shard := NewTally()
			shard.AddAll(reports[lo:hi])
			merged.Merge(shard)
		}
		if merged.Flows() != seq.Flows() || merged.Len() != seq.Len() {
			t.Fatalf("%d shards: flows/len %d/%d, want %d/%d",
				nshards, merged.Flows(), merged.Len(), seq.Flows(), seq.Len())
		}
		if math.Abs(merged.Total()-seq.Total()) > 1e-9 {
			t.Fatalf("%d shards: total %v, want %v", nshards, merged.Total(), seq.Total())
		}
		for l := topology.LinkID(0); l < 50; l++ {
			if math.Abs(merged.Votes(l)-seq.Votes(l)) > 1e-9 {
				t.Fatalf("%d shards: link %d votes %v, want %v", nshards, l, merged.Votes(l), seq.Votes(l))
			}
		}
	}
}

// Merging identical shard splits must be bit-exact — the property the
// fixed-chunk analysis pipeline relies on for cross-parallelism determinism.
func TestTallyMergeBitExactForFixedChunks(t *testing.T) {
	rng := stats.NewRNG(8)
	var reports []Report
	for i := 0; i < 300; i++ {
		h := 1 + rng.Intn(6)
		path := make([]topology.LinkID, h)
		for j := range path {
			path[j] = topology.LinkID(rng.Intn(40))
		}
		reports = append(reports, report(int64(i), 1, path...))
	}
	build := func() *Tally {
		const chunk = 64
		merged := NewTally()
		for lo := 0; lo < len(reports); lo += chunk {
			hi := min(lo+chunk, len(reports))
			shard := NewTally()
			shard.AddAll(reports[lo:hi])
			merged.Merge(shard)
		}
		return merged
	}
	a, b := build(), build()
	for l := topology.LinkID(0); l < 40; l++ {
		if a.Votes(l) != b.Votes(l) {
			t.Fatalf("link %d: fixed-chunk merge not bit-exact", l)
		}
	}
}

// A merged observed adjuster must hand Algorithm 1 the same overlap
// fractions as one built sequentially.
func TestObservedAdjusterShardMerge(t *testing.T) {
	rng := stats.NewRNG(9)
	var reports []Report
	for i := 0; i < 120; i++ {
		path := []topology.LinkID{
			topology.LinkID(rng.Intn(5)),
			topology.LinkID(10 + rng.Intn(5)),
			topology.LinkID(20 + rng.Intn(5)),
		}
		reports = append(reports, report(int64(i), 1, path...))
	}
	seq := NewObservedAdjuster(reports)
	merged := NewObservedAdjusterShard(nil, 0)
	const chunk = 32
	for lo := 0; lo < len(reports); lo += chunk {
		hi := min(lo+chunk, len(reports))
		merged.Merge(NewObservedAdjusterShard(reports[lo:hi], lo))
	}
	for lmax := topology.LinkID(0); lmax < 25; lmax++ {
		seq.Begin(lmax)
		merged.Begin(lmax)
		for k := topology.LinkID(0); k < 25; k++ {
			if seq.Fraction(k) != merged.Fraction(k) {
				t.Fatalf("Begin(%d).Fraction(%d): merged %v, sequential %v",
					lmax, k, merged.Fraction(k), seq.Fraction(k))
			}
		}
	}
}

func TestRankingOrderAndTies(t *testing.T) {
	tl := NewTally()
	tl.Add(report(1, 1, 5, 6))       // 0.5 each
	tl.Add(report(2, 1, 5, 7, 8, 9)) // 0.25 each
	r := tl.Ranking()
	if r[0].Link != 5 || math.Abs(r[0].Votes-0.75) > 1e-12 {
		t.Fatalf("top of ranking = %+v", r[0])
	}
	if r[1].Link != 6 {
		t.Fatalf("second = %+v", r[1])
	}
	// 7,8,9 tie at 0.25: deterministic ID order.
	if r[2].Link != 7 || r[3].Link != 8 || r[4].Link != 9 {
		t.Fatalf("tie order wrong: %+v", r[2:])
	}
}

func TestBlameOnPath(t *testing.T) {
	tl := NewTally()
	tl.Add(report(1, 1, 1, 2, 3))
	tl.Add(report(2, 1, 2, 4, 5))
	blame, ok := tl.BlameOnPath([]topology.LinkID{1, 2, 3})
	if !ok || blame != 2 {
		t.Fatalf("blame = %d, %v; want 2", blame, ok)
	}
	if _, ok := tl.BlameOnPath([]topology.LinkID{77, 78}); ok {
		t.Fatal("blame on unvoted path should fail")
	}
	if _, ok := tl.BlameOnPath(nil); ok {
		t.Fatal("blame on empty path should fail")
	}
}

func TestEmptyPathReportVotesNowhere(t *testing.T) {
	tl := NewTally()
	tl.Add(Report{FlowID: 1, Retx: 3})
	if tl.Total() != 0 || tl.Len() != 0 || tl.Flows() != 1 {
		t.Fatalf("empty-path report changed tallies: total=%v len=%d", tl.Total(), tl.Len())
	}
}

func TestFindProblemLinksSingleFailure(t *testing.T) {
	// 20 flows through bad link 100 on otherwise distinct paths, plus one
	// lone noise flow. The bad link must rank first, and with the observed
	// adjuster none of the co-path links may be blamed.
	tl := NewTally()
	var reports []Report
	id := int64(0)
	for i := 0; i < 20; i++ {
		id++
		r := report(id, 1, 100, topology.LinkID(200+i), topology.LinkID(300+i), topology.LinkID(400+i))
		reports = append(reports, r)
		tl.Add(r)
	}
	noise := report(id+1, 1, 500, 501, 502, 503)
	reports = append(reports, noise)
	tl.Add(noise)

	raw := FindProblemLinks(tl, DetectOptions{ThresholdFrac: 0.01, Adjuster: NoAdjuster{}})
	if len(raw) == 0 || raw[0] != 100 {
		t.Fatalf("without adjustment detected = %v, want 100 first", raw)
	}
	adj := FindProblemLinks(tl, DetectOptions{ThresholdFrac: 0.01, Adjuster: NewObservedAdjuster(reports)})
	if len(adj) == 0 || adj[0] != 100 {
		t.Fatalf("with adjustment detected = %v, want 100 first", adj)
	}
	for _, l := range adj {
		if l >= 200 && l < 500 {
			t.Fatalf("co-path link %d blamed despite adjustment: %v", l, adj)
		}
	}
}

func TestObservedAdjusterSuppressesSpill(t *testing.T) {
	// All failed flows share both links A and B (A truly bad). Without
	// adjustment, B ties A and gets blamed too; the observed adjuster
	// removes B's spill-over votes after blaming A.
	tl := NewTally()
	var reports []Report
	for i := 0; i < 30; i++ {
		r := report(int64(i), 1, 1, 2, topology.LinkID(100+i), topology.LinkID(200+i))
		reports = append(reports, r)
		tl.Add(r)
	}
	noAdj := FindProblemLinks(tl, DetectOptions{ThresholdFrac: 0.01, Adjuster: NoAdjuster{}})
	adj := FindProblemLinks(tl, DetectOptions{ThresholdFrac: 0.01, Adjuster: NewObservedAdjuster(reports)})
	if len(adj) != 1 || adj[0] != 1 {
		t.Fatalf("with adjustment detected %v, want exactly [1]", adj)
	}
	if len(noAdj) < 2 {
		t.Fatalf("without adjustment expected spill-over detections, got %v", noAdj)
	}
}

func TestFindProblemLinksThreshold(t *testing.T) {
	tl := NewTally()
	for i := 0; i < 100; i++ {
		tl.Add(report(int64(i), 1, topology.LinkID(i), topology.LinkID(1000+i)))
	}
	// Perfectly flat tally at 1% each: threshold 5% detects nothing.
	b := FindProblemLinks(tl, DetectOptions{ThresholdFrac: 0.05, Adjuster: NoAdjuster{}})
	if len(b) != 0 {
		t.Fatalf("flat tally detected %v", b)
	}
}

func TestFindProblemLinksMaxLinks(t *testing.T) {
	tl := NewTally()
	for i := 0; i < 10; i++ {
		tl.Add(report(int64(i), 1, topology.LinkID(i)))
	}
	b := FindProblemLinks(tl, DetectOptions{ThresholdFrac: 0.01, Adjuster: NoAdjuster{}, MaxLinks: 3})
	if len(b) != 3 {
		t.Fatalf("MaxLinks ignored: %v", b)
	}
}

func TestFindProblemLinksEmpty(t *testing.T) {
	if b := FindProblemLinks(NewTally(), DetectOptions{ThresholdFrac: 0.01}); b != nil {
		t.Fatalf("empty tally detected %v", b)
	}
}

// Votes must never go negative under adjustment.
func TestAdjustmentClampsAtZero(t *testing.T) {
	tl := NewTally()
	var reports []Report
	for i := 0; i < 10; i++ {
		r := report(int64(i), 1, 1, 2)
		reports = append(reports, r)
		tl.Add(r)
	}
	adj := NewObservedAdjuster(reports)
	b := FindProblemLinks(tl, DetectOptions{ThresholdFrac: 0.01, Adjuster: adj})
	if len(b) != 1 {
		t.Fatalf("detected %v, want single link", b)
	}
}

func TestClassifyFlows(t *testing.T) {
	tl := NewTally()
	rs := []Report{
		report(1, 1, 10, 11, 12),
		report(2, 1, 10, 13, 14),
		report(3, 1, 20, 21, 22),
	}
	tl.AddAll(rs)
	verdicts := ClassifyFlows(tl, []topology.LinkID{10}, rs)
	if len(verdicts) != 3 {
		t.Fatalf("%d verdicts", len(verdicts))
	}
	if verdicts[0].Noise || verdicts[0].Link != 10 {
		t.Fatalf("flow 1 verdict: %+v", verdicts[0])
	}
	if verdicts[1].Noise || verdicts[1].Link != 10 {
		t.Fatalf("flow 2 verdict: %+v", verdicts[1])
	}
	if !verdicts[2].Noise {
		t.Fatalf("flow 3 should be noise: %+v", verdicts[2])
	}
	if verdicts[2].Link == topology.NoLink {
		t.Fatal("noise verdict should still carry a best guess")
	}
}

func TestClassifyPicksHighestVotedDetected(t *testing.T) {
	tl := NewTally()
	rs := []Report{
		report(1, 1, 10, 11),
		report(2, 1, 10, 12),
		report(3, 1, 11, 13),
		report(4, 1, 10, 11), // path with both detected links
	}
	tl.AddAll(rs)
	// 10 has 1.5 votes, 11 has 1.0.
	verdicts := ClassifyFlows(tl, []topology.LinkID{10, 11}, rs)
	if verdicts[3].Link != 10 {
		t.Fatalf("flow 4 blamed %d, want the higher-voted 10", verdicts[3].Link)
	}
}

func BenchmarkTallyAdd(b *testing.B) {
	path := []topology.LinkID{1, 2, 3, 4, 5, 6}
	tl := NewTally()
	r := Report{FlowID: 1, Path: path, Retx: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Add(r)
	}
}
