package vote

import (
	"vigil/internal/ecmp"
	"vigil/internal/topology"
)

// Adjuster estimates, for the top-voted link lmax, the fraction of the
// failed flows through lmax that also traverse link k — the quantity
// Algorithm 1 subtracts from k's tally after blaming lmax.
type Adjuster interface {
	// Begin is called once per Algorithm 1 iteration with the newly blamed
	// link; Fraction is then queried for other links.
	Begin(lmax topology.LinkID)
	// Fraction returns the estimated P(k on path | lmax on path) for failed
	// flows, or 0 when no path can contain both.
	Fraction(k topology.LinkID) float64
}

// AnalyticAdjuster implements the paper's adjustment: assume ECMP spreads
// flows uniformly at random and derive the overlap fraction from the
// topology alone (§5.1). This is the production-faithful variant — the
// centralized agent needs only vote tallies, not retained paths.
type AnalyticAdjuster struct {
	Topo *topology.Topology
	calc *ecmp.CondCalc
}

// Begin implements Adjuster.
func (a *AnalyticAdjuster) Begin(lmax topology.LinkID) {
	a.calc = ecmp.NewCondCalc(a.Topo, lmax)
}

// Fraction implements Adjuster.
func (a *AnalyticAdjuster) Fraction(k topology.LinkID) float64 {
	return a.calc.Cond(k)
}

// ObservedAdjuster computes the overlap fraction exactly from the epoch's
// observed failed-flow paths. It is the ablation counterpart of
// AnalyticAdjuster (DESIGN.md, abl-adjust).
//
// The index is mergeable: concurrent analysis workers each build a partial
// adjuster over their report shard (with a base offset into the global
// report order) and the shards combine with Merge. Because shards cover
// disjoint, ascending index ranges and are merged in shard order, the
// per-link index lists come out identical to a sequential build.
type ObservedAdjuster struct {
	byLink map[topology.LinkID][]int32 // link -> indices of reports through it
	nmax   int                         // reports through current lmax
	onMax  map[int32]bool
}

// NewObservedAdjuster indexes the epoch's reports.
func NewObservedAdjuster(reports []Report) *ObservedAdjuster {
	return NewObservedAdjusterShard(reports, 0)
}

// NewObservedAdjusterShard indexes one shard of the epoch's reports, whose
// first report sits at global index base. Shards merge with Merge.
func NewObservedAdjusterShard(reports []Report, base int) *ObservedAdjuster {
	o := &ObservedAdjuster{byLink: make(map[topology.LinkID][]int32)}
	for i, r := range reports {
		for _, l := range r.Path {
			o.byLink[l] = append(o.byLink[l], int32(base+i))
		}
	}
	return o
}

// Merge folds shard other into o. Call in ascending-base order to reproduce
// the sequential index layout (Fraction itself is order-insensitive, so any
// order gives the same ratios — ascending order just keeps lists sorted).
func (o *ObservedAdjuster) Merge(other *ObservedAdjuster) {
	if other == nil {
		return
	}
	for l, idx := range other.byLink {
		o.byLink[l] = append(o.byLink[l], idx...)
	}
}

// Begin implements Adjuster.
func (o *ObservedAdjuster) Begin(lmax topology.LinkID) {
	idx := o.byLink[lmax]
	o.nmax = len(idx)
	o.onMax = make(map[int32]bool, len(idx))
	for _, i := range idx {
		o.onMax[i] = true
	}
}

// Fraction implements Adjuster.
func (o *ObservedAdjuster) Fraction(k topology.LinkID) float64 {
	if o.nmax == 0 {
		return 0
	}
	shared := 0
	for _, i := range o.byLink[k] {
		if o.onMax[i] {
			shared++
		}
	}
	return float64(shared) / float64(o.nmax)
}

// NoAdjuster disables the adjustment step (ablation baseline).
type NoAdjuster struct{}

// Begin implements Adjuster.
func (NoAdjuster) Begin(topology.LinkID) {}

// Fraction implements Adjuster.
func (NoAdjuster) Fraction(topology.LinkID) float64 { return 0 }

// DetectOptions configures Algorithm 1.
type DetectOptions struct {
	// ThresholdFrac stops the loop once the top remaining tally falls below
	// this fraction of the total outstanding votes. The paper uses 1%,
	// chosen by a precision/recall sweep (§5.1).
	ThresholdFrac float64
	// Adjuster estimates vote spill-over; nil means the paper's analytic
	// adjustment when Topo is set, and no adjustment otherwise.
	Adjuster Adjuster
	// Topo enables the default AnalyticAdjuster.
	Topo *topology.Topology
	// MaxLinks caps |B| as a safety valve; 0 means no cap.
	MaxLinks int
}

// DefaultDetectOptions returns the paper's parameters.
func DefaultDetectOptions(topo *topology.Topology) DetectOptions {
	return DetectOptions{ThresholdFrac: 0.01, Topo: topo}
}

// FindProblemLinks is Algorithm 1: iteratively pick the most-voted link,
// blame it, discount the votes its failed flows spilled onto other links,
// and repeat while the top link holds at least ThresholdFrac of the
// outstanding votes. Returns the blamed set B in blame order.
func FindProblemLinks(t *Tally, opts DetectOptions) []topology.LinkID {
	if opts.ThresholdFrac <= 0 {
		opts.ThresholdFrac = 0.01
	}
	adj := opts.Adjuster
	if adj == nil {
		if opts.Topo != nil {
			adj = &AnalyticAdjuster{Topo: opts.Topo}
		} else {
			adj = NoAdjuster{}
		}
	}
	votes := t.Snapshot()
	// The 1% cutoff is anchored to the epoch's initial vote total. Anchoring
	// to the running (adjusted) total instead lets the base collapse after
	// each subtraction, so adjustment residuals cascade into false
	// positives; the initial total is the stable reading of line 6 of
	// Algorithm 1.
	var total float64
	for _, v := range votes {
		total += v
	}
	cutoff := opts.ThresholdFrac * total
	inB := make([]bool, len(votes))
	var b []topology.LinkID
	for {
		if opts.MaxLinks > 0 && len(b) >= opts.MaxLinks {
			return b
		}
		// Ascending index scan keeps the old tie-break: equal votes go to
		// the lower link ID.
		lmax := topology.NoLink
		vmax := 0.0
		for l, v := range votes {
			if inB[l] || v <= 0 {
				continue
			}
			if v > vmax {
				lmax, vmax = topology.LinkID(l), v
			}
		}
		if lmax == topology.NoLink || total <= 0 || vmax < cutoff {
			return b
		}
		inB[lmax] = true
		b = append(b, lmax)
		adj.Begin(lmax)
		for l := range votes {
			if inB[l] || votes[l] == 0 {
				continue
			}
			if f := adj.Fraction(topology.LinkID(l)); f > 0 {
				votes[l] -= vmax * f
				if votes[l] < 0 {
					votes[l] = 0
				}
			}
		}
	}
}

// Verdict is 007's per-flow conclusion.
type Verdict struct {
	FlowID int64
	// Link is the blamed link (the most likely cause of this flow's drops).
	Link topology.LinkID
	// Noise marks flows whose drops 007 attributes to background noise:
	// no detected problem link lies on the flow's path (§6: "noise drops").
	Noise bool
}

// ClassifyFlows produces verdicts for every report. Blame follows §5.1:
// the ranking names the most likely cause of each flow's drops, so the
// verdict is the highest-voted link on the flow's path. The Noise flag
// marks flows whose path avoids every detected problem link — drops 007
// attributes to background noise rather than a failure.
func ClassifyFlows(t *Tally, detected []topology.LinkID, reports []Report) []Verdict {
	out := make([]Verdict, len(reports))
	ClassifyFlowsInto(out, t, detected, reports)
	return out
}

// ClassifyFlowsInto writes reports' verdicts into dst (which must have
// len(reports) slots) — the allocation-free form parallel classification
// uses to let each chunk fill its own slice of a shared verdict vector.
func ClassifyFlowsInto(dst []Verdict, t *Tally, detected []topology.LinkID, reports []Report) {
	inB := make(map[topology.LinkID]bool, len(detected))
	for _, l := range detected {
		inB[l] = true
	}
	for i, r := range reports {
		v := Verdict{FlowID: r.FlowID, Link: topology.NoLink, Noise: true}
		if blame, ok := t.BlameOnPath(r.Path); ok {
			v.Link = blame
		}
		for _, l := range r.Path {
			if inB[l] {
				v.Noise = false
				break
			}
		}
		dst[i] = v
	}
}
