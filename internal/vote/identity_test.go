package vote

import (
	"reflect"
	"testing"

	"vigil/internal/topology"
)

func TestReportID(t *testing.T) {
	r := Report{FlowID: 99, Src: 7, Dst: 3, Epoch: 4, Seq: 12}
	want := ReportID{Agent: 7, Epoch: 4, Seq: 12}
	if got := r.ID(); got != want {
		t.Fatalf("ID() = %+v, want %+v", got, want)
	}
}

func TestCanonicalLess(t *testing.T) {
	mk := func(a topology.HostID, e, s int32) Report { return Report{Src: a, Epoch: e, Seq: s} }
	cases := []struct {
		a, b Report
		want bool
	}{
		{mk(1, 0, 0), mk(2, 0, 0), true},  // agent dominates
		{mk(2, 0, 9), mk(1, 5, 0), false}, // agent dominates epoch
		{mk(1, 1, 9), mk(1, 2, 0), true},  // epoch dominates seq
		{mk(1, 1, 3), mk(1, 1, 4), true},  // seq breaks the tie
		{mk(1, 1, 4), mk(1, 1, 4), false}, // equal is not less
	}
	for i, c := range cases {
		if got := CanonicalLess(c.a, c.b); got != c.want {
			t.Errorf("case %d: CanonicalLess(%v, %v) = %v, want %v", i, c.a.ID(), c.b.ID(), got, c.want)
		}
	}
}

func TestSortCanonical(t *testing.T) {
	mk := func(a topology.HostID, e, s int32) Report { return Report{Src: a, Epoch: e, Seq: s} }
	in := []Report{mk(2, 0, 1), mk(0, 1, 0), mk(2, 0, 0), mk(0, 0, 2), mk(1, 0, 0)}
	want := []Report{mk(0, 0, 2), mk(0, 1, 0), mk(1, 0, 0), mk(2, 0, 0), mk(2, 0, 1)}
	SortCanonical(in)
	if !reflect.DeepEqual(in, want) {
		t.Fatalf("SortCanonical: got %v, want %v", in, want)
	}
	// Already-canonical input must come through untouched (the fast path).
	again := append([]Report(nil), want...)
	SortCanonical(again)
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("SortCanonical reordered a canonical slice")
	}
	SortCanonical(nil) // must not panic
}
