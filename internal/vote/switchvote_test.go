package vote

import (
	"math"
	"testing"

	"vigil/internal/topology"
)

func switchTopo(t *testing.T) *topology.Topology {
	topo, err := topology.New(topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 4, HostsPerToR: 4})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSwitchesOnPath(t *testing.T) {
	topo := switchTopo(t)
	// Build a same-pod path by hand: host0 → ToR(0,0) → T1(0,1) → ToR(0,2) → host.
	tor0 := topo.ToR(0, 0)
	t1 := topo.T1(0, 1)
	tor2 := topo.ToR(0, 2)
	dst := topo.HostAt(0, 2, 1)
	l1 := topo.Hosts[0].Uplink
	l2, _ := topo.LinkBetween(topology.SwitchNode(tor0), topology.SwitchNode(t1))
	l3, _ := topo.LinkBetween(topology.SwitchNode(t1), topology.SwitchNode(tor2))
	l4 := topo.Hosts[dst].Downlink
	sws := SwitchesOnPath(topo, []topology.LinkID{l1, l2, l3, l4})
	if len(sws) != 3 || sws[0] != tor0 || sws[1] != t1 || sws[2] != tor2 {
		t.Fatalf("switches = %v, want [%v %v %v]", sws, tor0, t1, tor2)
	}
}

func TestSwitchTallyValues(t *testing.T) {
	topo := switchTopo(t)
	tor0 := topo.ToR(0, 0)
	t1 := topo.T1(0, 1)
	tor2 := topo.ToR(0, 2)
	dst := topo.HostAt(0, 2, 1)
	l2, _ := topo.LinkBetween(topology.SwitchNode(tor0), topology.SwitchNode(t1))
	l3, _ := topo.LinkBetween(topology.SwitchNode(t1), topology.SwitchNode(tor2))
	path := []topology.LinkID{topo.Hosts[0].Uplink, l2, l3, topo.Hosts[dst].Downlink}

	st := NewSwitchTally(topo)
	st.Add(Report{FlowID: 1, Path: path, Retx: 1})
	// 3 switches on the path → 1/3 each.
	for _, sw := range []topology.SwitchID{tor0, t1, tor2} {
		if v := st.Votes(sw); math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("switch %v votes = %v, want 1/3", sw, v)
		}
	}
	if st.Flows() != 1 {
		t.Fatalf("flows = %d", st.Flows())
	}
	r := st.Ranking()
	if len(r) != 3 {
		t.Fatalf("ranking has %d entries", len(r))
	}
}

// A failing switch (all its links dropping) must top the switch tally and
// be the sole detection — the §5.1 switch-granularity extension, and the
// §7.1 repaved-cluster anecdote (a ToR whose arriving links all had
// abnormally high votes).
func TestFindProblemSwitches(t *testing.T) {
	topo := switchTopo(t)
	badSwitch := topo.T1(0, 1)
	// Synthesize reports: every flow through the bad switch retransmits.
	var reports []Report
	id := int64(0)
	for i := 0; i < 4; i++ { // src ToR index
		for j := 0; j < 4; j++ { // dst ToR index
			if i == j {
				continue
			}
			src := topo.HostAt(0, i, 0)
			dst := topo.HostAt(0, j, 1)
			l2, _ := topo.LinkBetween(topology.SwitchNode(topo.ToR(0, i)), topology.SwitchNode(badSwitch))
			l3, _ := topo.LinkBetween(topology.SwitchNode(badSwitch), topology.SwitchNode(topo.ToR(0, j)))
			id++
			reports = append(reports, Report{
				FlowID: id,
				Path:   []topology.LinkID{topo.Hosts[src].Uplink, l2, l3, topo.Hosts[dst].Downlink},
				Retx:   1,
			})
		}
	}
	st := NewSwitchTally(topo)
	st.AddAll(reports)
	if top := st.Ranking()[0]; top.Switch != badSwitch {
		t.Fatalf("top switch = %v (%s), want %s",
			top.Switch, topo.Switches[top.Switch].Name, topo.Switches[badSwitch].Name)
	}
	detected := FindProblemSwitches(st, reports, 0.01)
	if len(detected) == 0 || detected[0] != badSwitch {
		t.Fatalf("detected = %v, want [%v ...]", detected, badSwitch)
	}
	// The overlap adjustment must suppress the co-path ToRs.
	for _, sw := range detected[1:] {
		if topo.Switches[sw].Tier == topology.TierToR {
			t.Fatalf("co-path ToR %s wrongly detected: %v", topo.Switches[sw].Name, detected)
		}
	}
}

func TestFindProblemSwitchesEmpty(t *testing.T) {
	topo := switchTopo(t)
	st := NewSwitchTally(topo)
	if got := FindProblemSwitches(st, nil, 0.01); len(got) != 0 {
		t.Fatalf("empty tally detected %v", got)
	}
}
