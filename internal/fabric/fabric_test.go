package fabric

import (
	"testing"

	"math"

	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/schedule"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/wire"
)

type rig struct {
	topo   *topology.Topology
	router *ecmp.Router
	sched  *des.Scheduler
	net    *Net
}

func newRig(t testing.TB, cfg topology.Config, seed uint64) *rig {
	t.Helper()
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	sched := &des.Scheduler{}
	router := ecmp.NewRouter(topo, ecmp.NewSeeds(topo, rng.Split()))
	net, err := New(Config{Topo: topo, Router: router, Sched: sched, RNG: rng.Split()})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{topo: topo, router: router, sched: sched, net: net}
}

func tcpPacket(srcIP, dstIP uint32, srcPort, dstPort uint16, seq uint32, ttl uint8, id uint16) []byte {
	buf := wire.NewBuffer(64)
	ip := wire.IPv4{ID: id, TTL: ttl, Protocol: wire.ProtoTCP, Src: srcIP, Dst: dstIP}
	tcp := wire.TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: wire.FlagPSH | wire.FlagACK}
	tcp.SerializeTo(buf, &ip)
	ip.SerializeTo(buf)
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

func TestDeliveryAcrossFabric(t *testing.T) {
	r := newRig(t, topology.Config{Pods: 2, ToRsPerPod: 3, T1PerPod: 2, T2: 2, HostsPerToR: 2}, 1)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(1, 2, 1)
	var got []byte
	// Host handlers borrow the pooled packet bytes; retaining needs a copy.
	r.net.OnHostPacket(dst, func(data []byte) { got = append([]byte(nil), data...) })
	pkt := tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, 40000, 443, 7, 64, 0)
	r.net.SendFromHost(src, pkt)
	r.sched.Drain(1000)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	var ip wire.IPv4
	seg, err := wire.DecodeIPv4(got, &ip)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod path: 5 switches, so TTL decremented 5 times.
	if ip.TTL != 64-5 {
		t.Fatalf("TTL = %d, want 59", ip.TTL)
	}
	if !wire.VerifyTCPChecksum(seg, ip.Src, ip.Dst) {
		t.Fatal("checksum broken in flight (TTL patch must fix the header checksum)")
	}
	var tcp wire.TCP
	if _, err := wire.DecodeTCP(seg, &tcp); err != nil || tcp.Seq != 7 {
		t.Fatalf("payload corrupted: %v seq=%d", err, tcp.Seq)
	}
}

func TestPacketFollowsECMPPath(t *testing.T) {
	r := newRig(t, topology.DefaultSimConfig, 2)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(1, 5, 3)
	tuple := ecmp.FiveTuple{
		SrcIP: r.topo.Hosts[src].IP, DstIP: r.topo.Hosts[dst].IP,
		SrcPort: 40001, DstPort: 443, Proto: ecmp.ProtoTCP,
	}
	want, err := r.router.Path(src, dst, tuple)
	if err != nil {
		t.Fatal(err)
	}
	var got []topology.LinkID
	r.net.AddTap(func(ev TapEvent) {
		if !ev.Dropped {
			got = append(got, ev.Egress)
		}
	})
	r.net.SendFromHost(src, tcpPacket(tuple.SrcIP, tuple.DstIP, tuple.SrcPort, tuple.DstPort, 0, 64, 0))
	r.sched.Drain(1000)
	// Tap sees egress decisions at switches: want.Links minus the host uplink.
	if len(got) != len(want.Links)-1 {
		t.Fatalf("observed %d hops, want %d", len(got), len(want.Links)-1)
	}
	for i, l := range got {
		if l != want.Links[i+1] {
			t.Fatalf("hop %d: fabric took %s, ECMP says %s", i, r.topo.LinkName(l), r.topo.LinkName(want.Links[i+1]))
		}
	}
}

func TestDropInjection(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 3)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(0, 5, 1)
	delivered := 0
	r.net.OnHostPacket(dst, func([]byte) { delivered++ })
	r.net.SetDropRate(r.topo.Hosts[src].Uplink, 1.0)
	for i := 0; i < 50; i++ {
		r.net.SendFromHost(src, tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, 40002, 443, uint32(i), 64, 0))
	}
	r.sched.Drain(10000)
	if delivered != 0 {
		t.Fatalf("%d packets survived a 100%% drop link", delivered)
	}
	if r.net.LinkDropped[r.topo.Hosts[src].Uplink] != 50 {
		t.Fatalf("drop counter = %d", r.net.LinkDropped[r.topo.Hosts[src].Uplink])
	}
}

func TestTTLExpiryGeneratesICMP(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 4)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(0, 5, 1)
	var replies [][]byte
	r.net.OnHostPacket(src, func(data []byte) { replies = append(replies, append([]byte(nil), data...)) })
	// TTL=1 expires at the ToR; TTL=2 at the T1.
	for ttl := uint8(1); ttl <= 2; ttl++ {
		r.net.SendFromHost(src, tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, 40003, 443, 0, ttl, uint16(ttl)))
	}
	r.sched.Drain(10000)
	if len(replies) != 2 {
		t.Fatalf("got %d ICMP replies, want 2", len(replies))
	}
	wantFrom := []uint32{
		r.topo.Switches[r.topo.Hosts[src].ToR].IP,
		0, // any T1; checked by tier below
	}
	for i, data := range replies {
		var ip wire.IPv4
		payload, err := wire.DecodeIPv4(data, &ip)
		if err != nil || ip.Protocol != wire.ProtoICMP {
			t.Fatalf("reply %d not ICMP: %v", i, err)
		}
		var ic wire.ICMP
		if err := wire.DecodeICMP(payload, &ic); err != nil {
			t.Fatal(err)
		}
		if ic.Type != wire.ICMPTypeTimeExceeded {
			t.Fatalf("reply %d type %d", i, ic.Type)
		}
		emb, _, _, hasPorts, err := wire.ExpiredProbe(ic.Body)
		if err != nil || !hasPorts {
			t.Fatalf("reply %d: embedded probe unreadable: %v", i, err)
		}
		if int(emb.ID) != i+1 {
			t.Fatalf("reply %d: embedded IP ID = %d, want %d", i, emb.ID, i+1)
		}
		if i == 0 && ip.Src != wantFrom[0] {
			t.Fatalf("TTL=1 reply from %s, want the ToR", topology.FormatIP(ip.Src))
		}
		if i == 1 {
			node, ok := r.topo.LookupIP(ip.Src)
			if !ok || r.topo.Switches[node.ID].Tier != topology.TierT1 {
				t.Fatalf("TTL=2 reply not from a T1 switch")
			}
		}
	}
}

// The control-plane token bucket must cap ICMP generation at Tmax per
// second per switch — Theorem 1's hard constraint, validated empirically
// in Table 1.
func TestICMPRateLimiting(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 5)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(0, 5, 1)
	tor := r.topo.Hosts[src].ToR
	received := 0
	r.net.OnHostPacket(src, func([]byte) { received++ })
	// Blast 500 TTL=1 probes in one virtual second at one switch.
	for i := 0; i < 500; i++ {
		r.net.SendFromHost(src, tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, uint16(40000+i), 443, 0, 1, 1))
	}
	r.sched.Drain(100000)
	if got := r.net.ICMPSent[tor]; got > 100 {
		t.Fatalf("switch sent %d ICMP in a burst, Tmax is 100", got)
	}
	if r.net.ICMPSuppressed[tor] < 390 {
		t.Fatalf("suppressed = %d, want ~400", r.net.ICMPSuppressed[tor])
	}
	if received > 100 {
		t.Fatalf("host received %d replies", received)
	}
	// The budget refills over time.
	r.sched.RunUntil(r.sched.Now() + 2*des.Second)
	for i := 0; i < 10; i++ {
		r.net.SendFromHost(src, tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, uint16(50000+i), 443, 0, 1, 1))
	}
	r.sched.Drain(10000)
	if got := r.net.ICMPSent[tor]; got < 105 {
		t.Fatalf("bucket did not refill: sent=%d", got)
	}
}

func TestICMPSecondStats(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 6)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(0, 5, 1)
	for i := 0; i < 5; i++ {
		r.net.SendFromHost(src, tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, uint16(41000+i), 443, 0, 1, 1))
	}
	r.sched.Drain(1000)
	zero, low, high, max := r.net.ICMPSecondStats(10)
	if max > 5 || max < 1 {
		t.Fatalf("max = %d", max)
	}
	if high != 0 && max <= 3 {
		t.Fatalf("high fraction %v inconsistent with max %d", high, max)
	}
	if zero+low+high < 0.999 || zero+low+high > 1.001 {
		t.Fatalf("fractions don't sum to 1: %v %v %v", zero, low, high)
	}
	if zero >= 1 {
		t.Fatal("zero fraction should be below 1 after ICMP activity")
	}
}

func TestNoICMPAboutICMP(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 7)
	src := r.topo.HostAt(0, 0, 0)
	// Hand-craft an ICMP packet with TTL=1: it must die silently.
	buf := wire.NewBuffer(64)
	ic := wire.ICMP{Type: wire.ICMPTypeEchoReply, Body: []byte{1, 2, 3, 4}}
	ic.SerializeTo(buf)
	ip := wire.IPv4{TTL: 1, Protocol: wire.ProtoICMP, Src: r.topo.Hosts[src].IP, Dst: r.topo.Hosts[r.topo.HostAt(0, 5, 0)].IP}
	ip.SerializeTo(buf)
	got := 0
	r.net.OnHostPacket(src, func([]byte) { got++ })
	r.net.SendFromHost(src, buf.Bytes())
	r.sched.Drain(1000)
	if got != 0 {
		t.Fatal("received ICMP about ICMP")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fabric config accepted")
	}
}

// LAG (§4.2): one bad member of an aggregation bundle hurts only the flows
// hashed onto it, and the logical L3 link stays the visible drop site.
func TestLAGMemberFailure(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 8)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(0, 5, 1)
	link := r.topo.Hosts[src].Uplink
	// Four members, one black-holed.
	r.net.SetLAG(link, []float64{1.0, 0, 0, 0})

	delivered, blocked := 0, 0
	r.net.OnHostPacket(dst, func([]byte) { delivered++ })
	const flows = 200
	for i := 0; i < flows; i++ {
		// One packet per flow: distinct headers hash to distinct members.
		pkt := tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP,
			uint16(42000+i), 443, 0, 64, 0)
		before := delivered
		r.net.SendFromHost(src, pkt)
		r.sched.Drain(100)
		if delivered == before {
			blocked++
		}
	}
	// Roughly a quarter of the flows should hit the dead member.
	if blocked < flows/8 || blocked > flows/2 {
		t.Fatalf("%d/%d flows black-holed, want ~1/4", blocked, flows)
	}
	if r.net.LinkDropped[link] != int64(blocked) {
		t.Fatalf("drops attributed to the logical link: %d, want %d",
			r.net.LinkDropped[link], blocked)
	}
	// A given flow is deterministic: always dead or always alive.
	pkt := tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, 42000, 443, 1, 64, 0)
	base := delivered
	for i := 0; i < 5; i++ {
		r.net.SendFromHost(src, pkt)
		r.sched.Drain(100)
	}
	got := delivered - base
	if got != 0 && got != 5 {
		t.Fatalf("flow pinning broken: %d/5 delivered", got)
	}
	// Clearing the LAG restores the plain link.
	r.net.SetLAG(link, nil)
	base = delivered
	r.net.SendFromHost(src, tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, 42000, 443, 2, 64, 0))
	r.sched.Drain(100)
	if delivered != base+1 {
		t.Fatal("clearing LAG did not restore delivery")
	}
}

// The rate setters must validate their inputs: out-of-range links and
// non-probability rates come back as errors, never as silent corruption of
// the drop vector.
func TestRateValidation(t *testing.T) {
	r := newRig(t, topology.Config{Pods: 1, ToRsPerPod: 2, T1PerPod: 2, HostsPerToR: 2}, 5)
	nlinks := len(r.topo.Links)
	for _, l := range []topology.LinkID{-1, topology.LinkID(nlinks)} {
		if err := r.net.SetDropRate(l, 0.1); err == nil {
			t.Fatalf("SetDropRate accepted link %d", l)
		}
		if err := r.net.SetBaseRate(l, 0.1); err == nil {
			t.Fatalf("SetBaseRate accepted link %d", l)
		}
		if err := r.net.ResetDropRate(l); err == nil {
			t.Fatalf("ResetDropRate accepted link %d", l)
		}
		if err := r.net.SetLAG(l, []float64{0.1}); err == nil {
			t.Fatalf("SetLAG accepted link %d", l)
		}
		if err := r.net.Schedule(l, schedule.ConstantRate{Rate: 0.1}); err == nil {
			t.Fatalf("Schedule accepted link %d", l)
		}
	}
	good := topology.LinkID(0)
	for _, rate := range []float64{-0.1, 1.0000001, math.NaN()} {
		if err := r.net.SetDropRate(good, rate); err == nil {
			t.Fatalf("SetDropRate accepted rate %v", rate)
		}
		if err := r.net.SetBaseRate(good, rate); err == nil {
			t.Fatalf("SetBaseRate accepted rate %v", rate)
		}
		if err := r.net.SetLAG(good, []float64{0.1, rate}); err == nil {
			t.Fatalf("SetLAG accepted member rate %v", rate)
		}
		if err := r.net.Schedule(good, schedule.ConstantRate{Rate: rate}); err == nil {
			t.Fatalf("Schedule accepted shape rate %v", rate)
		}
	}
	if err := r.net.Schedule(good, nil); err == nil {
		t.Fatal("Schedule accepted a nil schedule")
	}
	if err := r.net.SetDropRate(good, 1); err != nil {
		t.Fatalf("boundary rate 1 rejected: %v", err)
	}
	if err := r.net.SetDropRate(good, 0); err != nil {
		t.Fatalf("boundary rate 0 rejected: %v", err)
	}
}

// Base (noise) rates are what a link returns to: SetDropRate overrides
// them, ResetDropRate restores them, and ClearSchedules restores every
// scheduled link.
func TestBaseRateRestore(t *testing.T) {
	r := newRig(t, topology.Config{Pods: 1, ToRsPerPod: 2, T1PerPod: 2, HostsPerToR: 2}, 6)
	l := topology.LinkID(3)
	if err := r.net.SetBaseRate(l, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := r.net.SetDropRate(l, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := r.net.DropRate(l); got != 0.5 {
		t.Fatalf("DropRate = %v after injection", got)
	}
	if err := r.net.ResetDropRate(l); err != nil {
		t.Fatal(err)
	}
	if got := r.net.DropRate(l); got != 1e-6 {
		t.Fatalf("DropRate = %v after reset, want the 1e-6 baseline", got)
	}
}

// epochSchedule flips between two custom rates to exercise the non-shape
// validation path.
type epochSchedule struct{ rates []float64 }

func (s epochSchedule) RateAt(epoch int) (float64, bool) {
	if epoch >= len(s.rates) {
		return 0, false
	}
	return s.rates[epoch], true
}

// ApplySchedules settles scheduled links per epoch: active epochs apply the
// scripted rate, inactive epochs restore the baseline, and a custom
// schedule emitting an out-of-range rate errors before any rate changes.
func TestApplySchedules(t *testing.T) {
	r := newRig(t, topology.Config{Pods: 1, ToRsPerPod: 2, T1PerPod: 2, HostsPerToR: 2}, 7)
	a, b := topology.LinkID(1), topology.LinkID(2)
	if err := r.net.SetBaseRate(a, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := r.net.Schedule(a, schedule.Window{Rate: 0.2, Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.net.Schedule(b, schedule.Flap{Rate: 0.3, Period: 2, On: 1, Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.net.Schedules()); got != 2 {
		t.Fatalf("Schedules() returned %d entries", got)
	}
	if err := r.net.ApplySchedules(0); err != nil {
		t.Fatal(err)
	}
	if r.net.DropRate(a) != 0.2 || r.net.DropRate(b) != 0 {
		t.Fatalf("epoch 0 rates: %v/%v", r.net.DropRate(a), r.net.DropRate(b))
	}
	if err := r.net.ApplySchedules(1); err != nil {
		t.Fatal(err)
	}
	if r.net.DropRate(a) != 1e-6 || r.net.DropRate(b) != 0.3 {
		t.Fatalf("epoch 1 rates: %v/%v", r.net.DropRate(a), r.net.DropRate(b))
	}
	// A broken custom schedule must error with no rates half-applied.
	if err := r.net.Schedule(b, epochSchedule{rates: []float64{0.1, 1.7}}); err != nil {
		t.Fatal(err)
	}
	before := r.net.DropRate(a)
	if err := r.net.ApplySchedules(1); err == nil {
		t.Fatal("out-of-range custom rate accepted")
	}
	if r.net.DropRate(a) != before {
		t.Fatal("failed ApplySchedules mutated rates")
	}
	r.net.ClearSchedules()
	if got := len(r.net.Schedules()); got != 0 {
		t.Fatalf("ClearSchedules left %d entries", got)
	}
	if r.net.DropRate(a) != 1e-6 || r.net.DropRate(b) != 0 {
		t.Fatalf("ClearSchedules did not restore baselines: %v/%v", r.net.DropRate(a), r.net.DropRate(b))
	}
}

// The per-(switch, second) ICMP accounting must stay bounded however long
// the run: the old map grew one entry per busy switch-second for the life
// of the run, a leak on long scenario timelines. The folded distribution
// must still match a brute-force tally of the same traffic.
func TestICMPAccountingBounded(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 9)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(0, 5, 1)
	tor := r.topo.Hosts[src].ToR

	// Drive one expiring probe per virtual second for far longer than the
	// retained ring: every (tor, second) bucket holds exactly one message.
	seconds := icmpRingCap + 500
	for sec := 0; sec < seconds; sec++ {
		r.net.SendFromHost(src, tcpPacket(r.topo.Hosts[src].IP, r.topo.Hosts[dst].IP, 40000, 443, 0, 1, 1))
		r.sched.Drain(100)
		r.sched.RunUntil(des.Time(sec+1) * des.Second)
	}
	if got := r.net.ICMPSent[tor]; got != int64(seconds) {
		t.Fatalf("sent %d ICMP, want %d", got, seconds)
	}
	// Bounded: the retained history cannot exceed the ring plus the live
	// per-switch counters.
	if got := len(r.net.ICMPPerSecond()); got > icmpRingCap+len(r.topo.Switches) {
		t.Fatalf("ICMP history grew to %d entries (ring cap %d)", got, icmpRingCap)
	}
	// The folded distribution still covers the whole run: every busy
	// switch-second had exactly one message.
	zero, low, high, max := r.net.ICMPSecondStats(int64(seconds))
	if max != 1 || high != 0 {
		t.Fatalf("distribution wrong: max=%d high=%v", max, high)
	}
	wantLow := float64(seconds) / float64(seconds*len(r.topo.Switches))
	if diff := low - wantLow; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("low fraction %v, want %v", low, wantLow)
	}
	if zero+low+high < 0.999 || zero+low+high > 1.001 {
		t.Fatalf("fractions don't sum to 1: %v %v %v", zero, low, high)
	}
}

// The incremental TTL checksum patch (RFC 1624) must agree with a full
// header recompute for every TTL and random header contents.
func TestDecrementTTLMatchesRecompute(t *testing.T) {
	rng := stats.NewRNG(11)
	for i := 0; i < 20000; i++ {
		buf := wire.NewBuffer(64)
		ip := wire.IPv4{
			TOS: uint8(rng.Intn(256)), ID: uint16(rng.Intn(65536)),
			TTL: uint8(rng.IntRange(2, 255)), Protocol: uint8(rng.Intn(256)),
			Src: uint32(rng.Uint64()), Dst: uint32(rng.Uint64()),
		}
		ip.SerializeTo(buf)
		data := buf.Bytes()
		want := append([]byte(nil), data...)
		want[8]--
		want[10], want[11] = 0, 0
		sum := wire.Checksum(want[:wire.IPv4HeaderLen])
		want[10], want[11] = byte(sum>>8), byte(sum)
		decrementTTL(data)
		if data[10] != want[10] || data[11] != want[11] {
			t.Fatalf("ttl %d: incremental %02x%02x, recompute %02x%02x",
				ip.TTL+1, data[10], data[11], want[10], want[11])
		}
		if wire.Checksum(data[:wire.IPv4HeaderLen]) != 0 {
			t.Fatalf("patched header does not verify")
		}
	}
}

// Packet buffers must actually recycle: a steady packet stream leaves the
// pool at its high-water mark instead of growing, and a warmed fabric
// forwards without allocating.
func TestPacketPoolRecycles(t *testing.T) {
	r := newRig(t, topology.TestClusterConfig, 12)
	src := r.topo.HostAt(0, 0, 0)
	dst := r.topo.HostAt(0, 5, 1)
	delivered := 0
	r.net.OnHostPacket(dst, func([]byte) { delivered++ })
	send := func() {
		pkt := r.net.NewPacket()
		ip := wire.IPv4{TTL: 64, Protocol: wire.ProtoTCP, Src: r.topo.Hosts[src].IP, Dst: r.topo.Hosts[dst].IP}
		tcp := wire.TCP{SrcPort: 40000, DstPort: 443, Flags: wire.FlagPSH | wire.FlagACK}
		tcp.SerializeTo(pkt, &ip)
		ip.SerializeTo(pkt)
		r.net.Send(src, pkt)
		r.sched.Drain(100)
	}
	send() // warm the pool and the scheduler lanes
	avg := testing.AllocsPerRun(100, send)
	if avg > 0 {
		t.Fatalf("warmed forwarding allocates %.1f times per packet", avg)
	}
	if delivered < 100 {
		t.Fatalf("delivered %d packets", delivered)
	}
}
