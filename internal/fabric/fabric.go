// Package fabric emulates the datacenter's data plane at packet level:
// switches forward serialized IPv4 packets hop by hop under ECMP, decrement
// TTLs, and answer expired probes with ICMP time-exceeded messages from a
// control plane whose ICMP generation is capped by a token bucket — the
// Tmax = 100/s limit that Theorem 1 is built around. Links drop packets
// with injectable probabilities, and mirror taps provide the
// EverFlow-style observation points used for ground truth.
//
// The fabric runs on virtual time (package des), either on one scheduler
// or sharded by pod across a des.ShardedScheduler (Config.Sharded): each
// shard owns its pods' links, switches and hosts, drop decisions are
// per-link counter-derived draws (order-independent across shards), and
// cross-pod deliveries ride the sharded scheduler's boundary queues.
// Determinism comes from the explicit seeding and the scheduler's
// (time, key, seq) ordering — epochs are bit-identical at any worker
// count, including against the single-scheduler build.
//
// Packet memory is pooled: a packet lives in a wire.Buffer obtained from
// the fabric's free list (NewPacket), is carried by reference through
// send → hop → deliver, and returns to the pool the moment it dies — on a
// link drop, a corrupt or unroutable header, a TTL expiry (after the ICMP
// reply is built), or right after the destination host's receive callback
// returns. Host callbacks therefore only borrow the packet bytes and must
// not retain them. Pools are per shard; a buffer that crosses a pod
// boundary is released into the pool of the shard where it dies, so no
// pool is ever touched by two goroutines. Steady-state forwarding
// allocates nothing.
package fabric

import (
	"encoding/binary"
	"fmt"

	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/schedule"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/wire"
)

// PacketHeadroom is the prepend room NewPacket reserves: enough for the
// deepest header stack the emulation builds (outer IPv4 + ICMP + embedded
// IPv4 header + 8 payload bytes).
const PacketHeadroom = 64

// DefaultLinkDelay is the one-hop propagation+processing delay used when
// Config.LinkDelay is zero — and the natural conservative lookahead for a
// sharded scheduler driving this fabric.
const DefaultLinkDelay = 5 * des.Microsecond

// evDeliver is the fabric's one typed event: a packet arriving at the far
// end of a link (arg = link id, payload = the packet buffer).
const evDeliver int32 = 1

// keyClassDeliver is the high-byte class of deliver events' origin keys
// (key = class | link id). Key classes are a repo-wide convention keeping
// simultaneous events from different subsystems in one deterministic
// order: 1 = cluster flow starts, 2 = connection timers, 3 = path
// discovery timeouts, 4 = fabric deliveries.
const keyClassDeliver uint64 = 4 << 56

// deliverKey is the origin key of link l's deliver events. One link's
// sends always execute on the shard owning the link's From node, so the
// key identifies a single sequential producer — the property the
// (time, key, seq) determinism argument needs.
func deliverKey(l topology.LinkID) uint64 { return keyClassDeliver | uint64(l) }

// Config assembles a fabric.
type Config struct {
	Topo   *topology.Topology
	Router *ecmp.Router
	// Sched is the single-scheduler build's clock and queue. Exactly one
	// of Sched and Sharded must be set.
	Sched *des.Scheduler
	// Sharded runs the fabric pod-sharded: nodes partition across the
	// sharded scheduler's shards via Topo.ShardMap, intra-shard deliveries
	// post to the owning shard's scheduler and cross-shard deliveries ride
	// the boundary queues. The scheduler's lookahead must not exceed
	// LinkDelay — every delivery is scheduled at least LinkDelay (plus the
	// link's non-negative extra delay) in the future, which is exactly the
	// conservative-window guarantee.
	Sharded *des.ShardedScheduler
	RNG     *stats.RNG
	// Tmax caps each switch's ICMP generation rate (messages/second).
	// The paper's operators set 100. Zero means the paper's default.
	Tmax float64
	// LinkDelay is the one-hop propagation+processing delay; zero means
	// the 5µs default (datacenter RTTs are "less than 1 or 2 ms", §4.2).
	LinkDelay des.Time
}

// TapEvent is one observation from a mirror tap (EverFlow-style) or a drop
// notification used as ground truth by tests.
type TapEvent struct {
	Time    des.Time
	Switch  topology.SwitchID // -1 when the event happened on a host link
	Egress  topology.LinkID
	// Shard is the execution shard the event fired on (always 0 on a
	// single-scheduler fabric). Taps are invoked from that shard's
	// goroutine; a tap shared across shards must partition any state it
	// writes by Shard.
	Shard   int32
	Dropped bool // true: the packet died on Egress
	IP      wire.IPv4
	SrcPort uint16
	DstPort uint16
	Seq     uint32
}

// Tap observes forwarded and dropped packets.
type Tap func(TapEvent)

// icmpSecCount is one switch's live ICMP counter for the current virtual
// second; finished seconds fold into the aggregate distribution.
type icmpSecCount struct {
	sec int64
	n   int32
}

// icmpRingCap bounds the retained per-(switch, second) history: the
// distribution (ICMPSecondStats) is folded incrementally, so only a window
// of recent raw counts is kept for inspection. The old map grew by one
// entry per busy switch-second for the life of the run — a leak on long
// scenario timelines.
const icmpRingCap = 4096

// netShard is one shard's execution context: the des.Handler delivery
// events target, the shard's private packet pool, and the shard-local
// slice of the bounded ICMP accounting. Everything a shard's goroutine
// writes during a window lives either here or at indices (links, switches,
// hosts) the partition assigns to exactly one shard. A single-scheduler
// fabric has one shard.
type netShard struct {
	n    *Net
	id   int32
	pool wire.Pool

	// Shard-local slice of the bounded ICMP distribution; aggregated
	// across shards by ICMPPerSecond / ICMPSecondStats.
	icmpLow  int64 // finished switch-seconds with 1-3 messages
	icmpHigh int64 // finished switch-seconds with >3 messages
	icmpMax  int
	icmpRing []int32
	icmpPos  int
}

// Net is the running fabric.
type Net struct {
	cfg        Config
	topo       *topology.Topology
	dropRate   []float64
	baseRate   []float64 // per-link baseline (noise) rate a cleared link returns to
	extraDelay []des.Time
	lag        map[topology.LinkID][]float64
	hostRx     []func(data []byte)
	buckets    []tokenBucket
	taps       []Tap
	dropTaps   []Tap
	schedules  []ScheduledLink

	// Shard plumbing. scheds[i] is shard i's scheduler (all the same
	// *des.Scheduler on a single-scheduler fabric, where ss is nil).
	// hostShard/swShard place every node; linkTo is the shard owning each
	// link's To node — the shard its deliver events execute on. A link's
	// sends run on its From node's shard, which therefore owns dropCtr,
	// LinkForwarded and LinkDropped at that index.
	shards    []*netShard
	scheds    []*des.Scheduler
	ss        *des.ShardedScheduler
	hostShard []int32
	swShard   []int32
	linkTo    []int32

	// dropSeed/dropCtr drive the per-link counter-derived drop draws: the
	// decision for link l's k-th packet is DeriveUniform(dropSeed, l◦k),
	// a pure function of the link and its local send count. Unlike a
	// shared RNG stream, the outcome cannot depend on how sends on
	// different links interleave — which is what keeps sharded and
	// single-scheduler runs bit-identical.
	dropSeed uint64
	dropCtr  []uint64

	// Counters, indexed by link and switch respectively.
	LinkForwarded  []int64
	LinkDropped    []int64
	ICMPSent       []int64
	ICMPSuppressed []int64

	// icmpCur is the live per-switch ICMP counter for the current virtual
	// second; finished seconds fold into the owning shard's aggregates.
	icmpCur []icmpSecCount
}

// New builds a fabric over the topology.
func New(cfg Config) (*Net, error) {
	if cfg.Topo == nil || cfg.Router == nil || cfg.RNG == nil {
		return nil, fmt.Errorf("fabric: Topo, Router and RNG are all required")
	}
	if (cfg.Sched == nil) == (cfg.Sharded == nil) {
		return nil, fmt.Errorf("fabric: exactly one of Sched and Sharded is required")
	}
	if cfg.Tmax <= 0 {
		cfg.Tmax = 100
	}
	if cfg.LinkDelay <= 0 {
		cfg.LinkDelay = DefaultLinkDelay
	}
	n := &Net{
		cfg:            cfg,
		topo:           cfg.Topo,
		dropRate:       make([]float64, len(cfg.Topo.Links)),
		baseRate:       make([]float64, len(cfg.Topo.Links)),
		extraDelay:     make([]des.Time, len(cfg.Topo.Links)),
		hostRx:         make([]func([]byte), len(cfg.Topo.Hosts)),
		buckets:        make([]tokenBucket, len(cfg.Topo.Switches)),
		dropSeed:       cfg.RNG.Uint64(),
		dropCtr:        make([]uint64, len(cfg.Topo.Links)),
		LinkForwarded:  make([]int64, len(cfg.Topo.Links)),
		LinkDropped:    make([]int64, len(cfg.Topo.Links)),
		ICMPSent:       make([]int64, len(cfg.Topo.Switches)),
		ICMPSuppressed: make([]int64, len(cfg.Topo.Switches)),
		icmpCur:        make([]icmpSecCount, len(cfg.Topo.Switches)),
	}
	nShards := 1
	if cfg.Sharded != nil {
		if la := cfg.Sharded.Lookahead(); la > cfg.LinkDelay {
			return nil, fmt.Errorf("fabric: sharded lookahead %d exceeds LinkDelay %d — deliveries would land inside open windows", la, cfg.LinkDelay)
		}
		n.ss = cfg.Sharded
		nShards = cfg.Sharded.Shards()
	}
	n.shards = make([]*netShard, nShards)
	n.scheds = make([]*des.Scheduler, nShards)
	for i := range n.shards {
		n.shards[i] = &netShard{n: n, id: int32(i)}
		if n.ss != nil {
			n.scheds[i] = n.ss.Shard(i)
		} else {
			n.scheds[i] = cfg.Sched
		}
	}
	n.hostShard, n.swShard = cfg.Topo.ShardMap(nShards)
	n.linkTo = make([]int32, len(cfg.Topo.Links))
	for l := range cfg.Topo.Links {
		to := cfg.Topo.Links[l].To
		if to.Kind == topology.NodeHost {
			n.linkTo[l] = n.hostShard[to.ID]
		} else {
			n.linkTo[l] = n.swShard[to.ID]
		}
	}
	for i := range n.buckets {
		n.buckets[i] = tokenBucket{tokens: cfg.Tmax, rate: cfg.Tmax, burst: cfg.Tmax}
	}
	for i := range n.icmpCur {
		n.icmpCur[i].sec = -1
	}
	return n, nil
}

// ShardOfHost returns the execution shard host h lives on.
func (n *Net) ShardOfHost(h topology.HostID) int { return int(n.hostShard[h]) }

// SchedOfHost returns the scheduler driving host h's shard — the clock a
// host's stack and agents must read and the queue their timers must post
// to (with origin keys) so sharded and single-scheduler runs stay
// bit-identical.
func (n *Net) SchedOfHost(h topology.HostID) *des.Scheduler { return n.scheds[n.hostShard[h]] }

// ShardOfLink returns the execution shard that owns directed link l: the
// shard of its From node, the only shard whose event handlers may read or
// mutate the link's state (drop rate, extra delay, LAG) during a run.
func (n *Net) ShardOfLink(l topology.LinkID) (int, error) {
	if err := n.checkLink(l); err != nil {
		return 0, err
	}
	from := n.topo.Links[l].From
	if from.Kind == topology.NodeHost {
		return int(n.hostShard[from.ID]), nil
	}
	return int(n.swShard[from.ID]), nil
}

// SchedOfLink returns the scheduler driving ShardOfLink(l) — the queue a
// mid-run link mutation (e.g. a scripted SetExtraDelay) must be posted to
// so it executes on the owning shard. On a single-scheduler fabric this is
// simply the shared scheduler.
func (n *Net) SchedOfLink(l topology.LinkID) (*des.Scheduler, error) {
	sh, err := n.ShardOfLink(l)
	if err != nil {
		return nil, err
	}
	return n.scheds[sh], nil
}

// checkLink validates a link identifier against the topology.
func (n *Net) checkLink(l topology.LinkID) error {
	return n.topo.CheckLink(l)
}

// SetDropRate injects a drop probability on a directed link. The rate must
// be a probability in [0, 1] and the link must exist in the topology.
func (n *Net) SetDropRate(l topology.LinkID, rate float64) error {
	if err := n.checkLink(l); err != nil {
		return err
	}
	if !schedule.ValidRate(rate) {
		return fmt.Errorf("fabric: drop rate %v outside [0, 1]", rate)
	}
	n.dropRate[l] = rate
	return nil
}

// SetBaseRate sets a link's baseline (noise) drop rate — the rate the link
// returns to when a failure is cleared or a schedule goes inactive — and
// applies it immediately. Injected failures overwrite the applied rate but
// never the baseline.
func (n *Net) SetBaseRate(l topology.LinkID, rate float64) error {
	if err := n.SetDropRate(l, rate); err != nil {
		return err
	}
	n.baseRate[l] = rate
	return nil
}

// ResetDropRate restores a link to its baseline (noise) rate.
func (n *Net) ResetDropRate(l topology.LinkID) error {
	if err := n.checkLink(l); err != nil {
		return err
	}
	n.dropRate[l] = n.baseRate[l]
	return nil
}

// DropRate returns a link's current drop probability.
func (n *Net) DropRate(l topology.LinkID) float64 { return n.dropRate[l] }

// ScheduledLink pairs a scheduled link with its script.
type ScheduledLink struct {
	Link     topology.LinkID
	Schedule schedule.RateSchedule
}

// Schedule attaches an epoch-indexed rate schedule to a link: each call to
// ApplySchedules re-injects the link at its scripted rate (active) or
// restores its baseline rate (inactive). The known schedule shapes'
// rates are validated here; custom shapes are validated as each epoch
// applies them. If a link is scheduled twice the later registration wins
// (it is applied last).
func (n *Net) Schedule(l topology.LinkID, s schedule.RateSchedule) error {
	if err := n.checkLink(l); err != nil {
		return err
	}
	if s == nil {
		return fmt.Errorf("fabric: nil RateSchedule")
	}
	if err := schedule.CheckRate(s); err != nil {
		return err
	}
	n.schedules = append(n.schedules, ScheduledLink{Link: l, Schedule: s})
	return nil
}

// Schedules returns the schedule registry in registration order. The caller
// must not mutate it; the epoch-aware layer above (internal/cluster) reads
// it to mirror scripted failures into detection ground truth.
func (n *Net) Schedules() []ScheduledLink { return n.schedules }

// ClearSchedules detaches every schedule and restores the scheduled links
// to their baseline rates.
func (n *Net) ClearSchedules() {
	for _, ls := range n.schedules {
		n.dropRate[ls.Link] = n.baseRate[ls.Link]
	}
	n.schedules = nil
}

// ApplySchedules settles every scheduled link's drop rate for the given
// epoch. It must run before the epoch's traffic flies — the fabric has no
// epoch clock of its own, so the layer above (internal/cluster) calls this
// at the top of each epoch, mirroring netem's sequential settle-then-run
// discipline. A schedule emitting a rate outside [0, 1] is a broken script
// and is reported as an error before any rate is half-applied.
func (n *Net) ApplySchedules(epoch int) error {
	for _, ls := range n.schedules {
		rate, active := ls.Schedule.RateAt(epoch)
		if active && !schedule.ValidRate(rate) {
			return fmt.Errorf("fabric: schedule on link %d returned drop rate %v outside [0, 1] for epoch %d", ls.Link, rate, epoch)
		}
	}
	for _, ls := range n.schedules {
		if rate, active := ls.Schedule.RateAt(epoch); active {
			n.dropRate[ls.Link] = rate
		} else {
			n.dropRate[ls.Link] = n.baseRate[ls.Link]
		}
	}
	return nil
}

// SetExtraDelay injects additional one-way latency on a directed link —
// the "large queue buildups" and latency failures of §9.2 that 007's
// RTT-threshold extension diagnoses. Like every other link mutator the
// link is validated (an out-of-range id used to panic on the slice index),
// and the delay must be non-negative: a negative value would clamp
// deliveries to "now", reordering the scheduler's FIFO lane — and, on a
// sharded fabric, would break the conservative-window guarantee that every
// delivery lands at least LinkDelay in the future. On a sharded fabric the
// call is only safe between runs or from an event handler executing on the
// shard that owns the link's From node.
func (n *Net) SetExtraDelay(l topology.LinkID, d des.Time) error {
	if err := n.checkLink(l); err != nil {
		return err
	}
	if d < 0 {
		return fmt.Errorf("fabric: negative extra delay %d on link %d", d, l)
	}
	n.extraDelay[l] = d
	return nil
}

// SetLAG models link aggregation (§4.2): the directed link becomes a
// bundle of members, each with its own drop rate, and every flow is
// pinned to one member by its packet hash. A single bad member then hurts
// only the flows hashed onto it, while the L3 path — and therefore 007's
// traceroute and votes — still names the one logical link, exactly the
// paper's observation that "unless all the links in the aggregation group
// fail, the L3 path is not affected". Every member rate must be a
// probability; an empty member list dissolves the bundle.
func (n *Net) SetLAG(l topology.LinkID, memberDrop []float64) error {
	if err := n.checkLink(l); err != nil {
		return err
	}
	for i, r := range memberDrop {
		if !schedule.ValidRate(r) {
			return fmt.Errorf("fabric: LAG member %d drop rate %v outside [0, 1]", i, r)
		}
	}
	if n.lag == nil {
		n.lag = make(map[topology.LinkID][]float64)
	}
	if len(memberDrop) == 0 {
		delete(n.lag, l)
		return nil
	}
	n.lag[l] = append([]float64(nil), memberDrop...)
	return nil
}

// lagDropRate resolves the drop probability a specific packet sees on a
// LAG bundle: the rate of the member its five-tuple hashes onto (the IP
// header plus the transport ports, as LAG hashing does in practice).
func (n *Net) lagDropRate(l topology.LinkID, data []byte) float64 {
	members := n.lag[l]
	end := wire.IPv4HeaderLen + 4 // header + src/dst ports
	if end > len(data) {
		end = len(data)
	}
	// Skip the mutable TTL (byte 8) and header checksum (bytes 10-11) so a
	// flow's member choice is identical at every hop.
	var h uint32 = 2166136261
	for i, b := range data[:end] {
		if i == 8 || i == 10 || i == 11 {
			continue
		}
		h = (h ^ uint32(b)) * 16777619
	}
	return members[int(h%uint32(len(members)))]
}

// OnHostPacket registers the receive handler for host h. The handler
// borrows data only for the duration of the call: the backing buffer
// returns to the packet pool as soon as it returns, so retaining callers
// must copy.
func (n *Net) OnHostPacket(h topology.HostID, fn func(data []byte)) { n.hostRx[h] = fn }

// AddTap installs a mirror tap observing every switch forwarding decision
// and every link drop.
func (n *Net) AddTap(t Tap) { n.taps = append(n.taps, t) }

// AddDropTap installs a tap that only observes link drops. Drop-only
// consumers (the cluster's ground-truth harvest) register here so the
// per-hop forwarding path does not pay for building their events.
func (n *Net) AddDropTap(t Tap) { n.dropTaps = append(n.dropTaps, t) }

// NewPacket returns an empty pooled buffer with standard headroom, from
// shard 0's pool. On a sharded fabric hot paths must use NewPacketFor so
// the buffer comes from the calling host's shard pool.
func (n *Net) NewPacket() *wire.Buffer { return n.shards[0].pool.Get(PacketHeadroom) }

// NewPacketFor returns an empty pooled buffer from host h's shard pool —
// the form host stacks and agents use, since their code runs on that
// shard's goroutine. Fill it payload-first (wire's prepend discipline) and
// hand it to Send, which takes ownership.
func (n *Net) NewPacketFor(h topology.HostID) *wire.Buffer {
	return n.shards[n.hostShard[h]].pool.Get(PacketHeadroom)
}

// Send injects a serialized packet from host h onto its uplink, taking
// ownership of pkt: the fabric releases it back to a shard pool when the
// packet dies. The buffer must have come from NewPacket/NewPacketFor.
func (n *Net) Send(h topology.HostID, pkt *wire.Buffer) {
	n.send(n.shards[n.hostShard[h]], n.topo.Hosts[h].Uplink, pkt)
}

// SendFromHost injects a packet from host h onto its uplink. The bytes are
// copied into a pooled buffer, so the caller keeps ownership of data; hot
// paths should build into NewPacketFor and use Send instead.
func (n *Net) SendFromHost(h topology.HostID, data []byte) {
	sh := n.shards[n.hostShard[h]]
	pkt := sh.pool.Get(0)
	pkt.Append(data)
	n.send(sh, n.topo.Hosts[h].Uplink, pkt)
}

// release returns a dead packet's buffer to the executing shard's pool.
// Buffers migrate: one that crossed a pod boundary retires into the pool
// of the shard where it died, never touching two pools at once.
func (sh *netShard) release(pkt *wire.Buffer) { sh.pool.Put(pkt) }

// send carries pkt across link l: maybe drop, else deliver to the far
// end after the link delay. Ownership of pkt passes to the fabric. It
// always executes on the shard owning l's From node — hosts inject on
// their own shard, and a switch forwards on its own shard — so dropCtr,
// LinkDropped and LinkForwarded at l are single-writer.
func (n *Net) send(sh *netShard, l topology.LinkID, pkt *wire.Buffer) {
	r := n.dropRate[l]
	if n.lag != nil {
		if _, isLAG := n.lag[l]; isLAG {
			r = n.lagDropRate(l, pkt.Bytes())
		}
	}
	if r > 0 {
		ctr := n.dropCtr[l]
		n.dropCtr[l] = ctr + 1
		if stats.DeriveUniform(n.dropSeed, uint64(l)<<40|ctr) < r {
			n.LinkDropped[l]++
			n.notifyDrop(sh, l, pkt.Bytes())
			sh.release(pkt)
			return
		}
	}
	n.LinkForwarded[l]++
	at := n.scheds[sh.id].Now() + n.cfg.LinkDelay + n.extraDelay[l]
	to := n.linkTo[l]
	if n.ss == nil || to == sh.id {
		n.scheds[to].PostKeyed(at, deliverKey(l), n.shards[to], evDeliver, int64(l), pkt)
	} else {
		n.ss.PostCross(int(sh.id), int(to), at, deliverKey(l), n.shards[to], evDeliver, int64(l), pkt)
	}
}

// HandleEvent delivers a packet at the far end of its link (the fabric's
// one typed DES event, targeted at the To node's shard).
func (sh *netShard) HandleEvent(kind int32, arg int64, p any) {
	_ = kind // evDeliver is the only kind the fabric schedules
	n := sh.n
	pkt := p.(*wire.Buffer)
	to := n.topo.Links[arg].To
	if to.Kind == topology.NodeHost {
		if fn := n.hostRx[to.ID]; fn != nil {
			fn(pkt.Bytes())
		}
		sh.release(pkt)
		return
	}
	n.switchHandle(sh, topology.SwitchID(to.ID), pkt)
}

// switchHandle is a switch's forwarding path. It owns pkt: every exit
// either forwards it onward or releases it.
func (n *Net) switchHandle(sh *netShard, sw topology.SwitchID, pkt *wire.Buffer) {
	data := pkt.Bytes()
	var ip wire.IPv4
	payload, err := wire.DecodeIPv4(data, &ip)
	if err != nil {
		sh.release(pkt) // corrupt header: silently dropped, as hardware would
		return
	}
	if ip.TTL <= 1 {
		n.ttlExpired(sh, sw, data, ip)
		sh.release(pkt)
		return
	}
	dstNode, ok := n.topo.LookupIP(ip.Dst)
	if !ok || dstNode.Kind != topology.NodeHost {
		sh.release(pkt) // not routable (switch loopbacks are never packet sinks)
		return
	}
	decrementTTL(data)
	tuple := ecmp.FiveTuple{SrcIP: ip.Src, DstIP: ip.Dst, Proto: ip.Protocol}
	var seq uint32
	if ip.Protocol == wire.ProtoTCP && len(payload) >= 8 {
		tuple.SrcPort = uint16(payload[0])<<8 | uint16(payload[1])
		tuple.DstPort = uint16(payload[2])<<8 | uint16(payload[3])
		seq = uint32(payload[4])<<24 | uint32(payload[5])<<16 | uint32(payload[6])<<8 | uint32(payload[7])
	}
	egress, err := n.cfg.Router.NextHopLink(sw, tuple, topology.HostID(dstNode.ID))
	if err != nil {
		sh.release(pkt)
		return
	}
	n.notifyForward(sh, sw, egress, ip, tuple, seq)
	n.send(sh, egress, pkt)
}

// ttlExpired runs the switch control plane: generate an ICMP time-exceeded
// reply if the token bucket allows, else silently drop (the switch CPU is
// protected; this is exactly the behaviour 007's Ct bound must respect).
// It borrows data; the caller still owns (and releases) the expired packet.
func (n *Net) ttlExpired(sh *netShard, sw topology.SwitchID, data []byte, ip wire.IPv4) {
	if ip.Protocol == wire.ProtoICMP {
		return // never ICMP about ICMP (RFC 792 discipline)
	}
	srcNode, ok := n.topo.LookupIP(ip.Src)
	if !ok || srcNode.Kind != topology.NodeHost {
		return
	}
	now := n.scheds[sh.id].Now()
	if !n.buckets[sw].allow(now) {
		n.ICMPSuppressed[sw]++
		return
	}
	n.ICMPSent[sw]++
	n.countICMP(sh, sw, int64(now/des.Second))

	// RFC 792 body: the expired packet's IP header plus its first 8 payload
	// bytes, copied straight into a pooled reply buffer.
	k := wire.IPv4HeaderLen + 8
	if k > len(data) {
		k = len(data)
	}
	reply := sh.pool.Get(PacketHeadroom)
	reply.Append(data[:k])
	ic := wire.ICMP{Type: wire.ICMPTypeTimeExceeded, Code: wire.ICMPCodeTTLExpired}
	ic.SerializeHeaderTo(reply)
	replyIP := wire.IPv4{
		TTL: 64, Protocol: wire.ProtoICMP,
		Src: n.topo.Switches[sw].IP, Dst: ip.Src,
	}
	replyIP.SerializeTo(reply)

	tuple := ecmp.FiveTuple{SrcIP: replyIP.Src, DstIP: replyIP.Dst, Proto: wire.ProtoICMP}
	egress, err := n.cfg.Router.NextHopLink(sw, tuple, topology.HostID(srcNode.ID))
	if err != nil {
		sh.release(reply)
		return
	}
	n.send(sh, egress, reply)
}

// decrementTTL patches the TTL and updates the header checksum
// incrementally (RFC 1624): the TTL sits in the high byte of word 4, so
// the word drops by 0x0100 and HC' = ~(~HC + ~m + m').
func decrementTTL(data []byte) {
	m := binary.BigEndian.Uint16(data[8:])
	data[8]--
	m1 := binary.BigEndian.Uint16(data[8:])
	hc := binary.BigEndian.Uint16(data[10:])
	sum := uint32(^hc) + uint32(^m) + uint32(m1)
	sum = sum&0xffff + sum>>16
	sum = sum&0xffff + sum>>16
	binary.BigEndian.PutUint16(data[10:], ^uint16(sum))
}

func (n *Net) notifyForward(sh *netShard, sw topology.SwitchID, egress topology.LinkID, ip wire.IPv4, t ecmp.FiveTuple, seq uint32) {
	if len(n.taps) == 0 {
		return
	}
	ev := TapEvent{
		Time: n.scheds[sh.id].Now(), Switch: sw, Egress: egress, Shard: sh.id,
		IP: ip, SrcPort: t.SrcPort, DstPort: t.DstPort, Seq: seq,
	}
	for _, tap := range n.taps {
		tap(ev)
	}
}

func (n *Net) notifyDrop(sh *netShard, l topology.LinkID, data []byte) {
	if len(n.taps) == 0 && len(n.dropTaps) == 0 {
		return
	}
	var ip wire.IPv4
	payload, err := wire.DecodeIPv4(data, &ip)
	if err != nil {
		return
	}
	ev := TapEvent{Time: n.scheds[sh.id].Now(), Switch: -1, Egress: l, Shard: sh.id, Dropped: true, IP: ip}
	if from := n.topo.Links[l].From; from.Kind == topology.NodeSwitch {
		ev.Switch = topology.SwitchID(from.ID)
	}
	if ip.Protocol == wire.ProtoTCP && len(payload) >= 8 {
		ev.SrcPort = uint16(payload[0])<<8 | uint16(payload[1])
		ev.DstPort = uint16(payload[2])<<8 | uint16(payload[3])
		ev.Seq = uint32(payload[4])<<24 | uint32(payload[5])<<16 | uint32(payload[6])<<8 | uint32(payload[7])
	}
	for _, tap := range n.taps {
		tap(ev)
	}
	for _, tap := range n.dropTaps {
		tap(ev)
	}
}

// countICMP advances a switch's live second counter, folding the finished
// second into the executing shard's bounded distribution state. A switch's
// ICMP generation always runs on its own shard, so the live counter is
// single-writer; the folded aggregates live per shard and are summed at
// query time.
func (n *Net) countICMP(sh *netShard, sw topology.SwitchID, sec int64) {
	cur := &n.icmpCur[sw]
	if cur.sec != sec {
		if cur.n > 0 {
			sh.foldICMPSecond(cur.n)
		}
		cur.sec = sec
		cur.n = 0
	}
	cur.n++
}

// foldICMPSecond retires one finished (switch, second) count into the
// shard's aggregates and its bounded recent-history ring.
func (sh *netShard) foldICMPSecond(c int32) {
	if c > 3 {
		sh.icmpHigh++
	} else {
		sh.icmpLow++
	}
	if int(c) > sh.icmpMax {
		sh.icmpMax = int(c)
	}
	if len(sh.icmpRing) < icmpRingCap {
		sh.icmpRing = append(sh.icmpRing, c)
	} else {
		sh.icmpRing[sh.icmpPos] = c
		sh.icmpPos = (sh.icmpPos + 1) % icmpRingCap
	}
}

// ICMPPerSecond returns the non-zero (switch, second) ICMP counts the
// fabric still tracks: every live per-switch counter plus each shard's
// bounded ring of the most recent icmpRingCap finished switch-seconds. The
// distribution over the whole run is folded incrementally — see
// ICMPSecondStats — so memory stays O(switches + shards·ring) however long
// the run. Only call between runs: it reads shard-local state.
func (n *Net) ICMPPerSecond() []int {
	out := make([]int, 0, len(n.topo.Switches))
	for _, sh := range n.shards {
		for _, c := range sh.icmpRing {
			out = append(out, int(c))
		}
	}
	for i := range n.icmpCur {
		if n.icmpCur[i].n > 0 {
			out = append(out, int(n.icmpCur[i].n))
		}
	}
	return out
}

// ICMPSecondStats summarizes the per-switch per-second ICMP distribution
// over an observation window, Table 1's format: the fraction of
// switch-seconds with zero, 1-3, and >3 messages, plus the maximum. Only
// call between runs: it aggregates shard-local state.
func (n *Net) ICMPSecondStats(seconds int64) (zero, low, high float64, max int) {
	total := seconds * int64(len(n.topo.Switches))
	if total == 0 {
		return 1, 0, 0, 0
	}
	var nLow, nHigh int64
	maxC := 0
	for _, sh := range n.shards {
		nLow += sh.icmpLow
		nHigh += sh.icmpHigh
		if sh.icmpMax > maxC {
			maxC = sh.icmpMax
		}
	}
	for i := range n.icmpCur {
		c := int(n.icmpCur[i].n)
		if c == 0 {
			continue
		}
		if c > maxC {
			maxC = c
		}
		if c > 3 {
			nHigh++
		} else {
			nLow++
		}
	}
	max = maxC
	nZero := total - nLow - nHigh
	return float64(nZero) / float64(total), float64(nLow) / float64(total),
		float64(nHigh) / float64(total), max
}

// tokenBucket enforces the control-plane ICMP cap.
type tokenBucket struct {
	tokens float64
	rate   float64 // tokens per virtual second
	burst  float64
	last   des.Time
}

func (b *tokenBucket) allow(now des.Time) bool {
	elapsed := float64(now-b.last) / float64(des.Second)
	b.last = now
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
