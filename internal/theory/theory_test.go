package theory

import (
	"math"
	"testing"

	"vigil/internal/topology"
)

func TestCtBoundHandComputed(t *testing.T) {
	// Default sim topology: n0=20, n1=20, n2=8, npod=2, H=24, Tmax=100.
	// min[n1, n2(n0·npod−1)/(n0(npod−1))] = min[20, 8·39/20] = 15.6.
	// Ct ≤ 100/(20·24)·15.6 = 3.25.
	got := CtBound(topology.DefaultSimConfig, 100)
	if math.Abs(got-3.25) > 1e-12 {
		t.Fatalf("CtBound = %v, want 3.25", got)
	}
}

func TestCtBoundSinglePod(t *testing.T) {
	// One pod: only the n1 term. Ct ≤ 100/(10·4)·4 = 10.
	got := CtBound(topology.TestClusterConfig, 100)
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("CtBound = %v, want 10", got)
	}
}

func TestCtBoundScalesWithTmax(t *testing.T) {
	a := CtBound(topology.DefaultSimConfig, 100)
	b := CtBound(topology.DefaultSimConfig, 200)
	if math.Abs(b-2*a) > 1e-12 {
		t.Fatalf("CtBound not linear in Tmax: %v vs %v", a, b)
	}
}

func TestMaxBadLinks(t *testing.T) {
	// n2(n0·npod−1)/(n0(npod−1)) = 8·39/20 = 15.6.
	if got := MaxBadLinks(topology.DefaultSimConfig); math.Abs(got-15.6) > 1e-12 {
		t.Fatalf("MaxBadLinks = %v, want 15.6", got)
	}
	if got := MaxBadLinks(topology.TestClusterConfig); got != 160 {
		t.Fatalf("single-pod MaxBadLinks = %v, want all links", got)
	}
}

func TestAlphaHandComputed(t *testing.T) {
	// k=1: α = 20(80−1)(1) / (8·39 − 20·1) = 1580/292 ≈ 5.411.
	got := Alpha(topology.DefaultSimConfig, 1)
	if math.Abs(got-1580.0/292.0) > 1e-12 {
		t.Fatalf("Alpha = %v, want %v", got, 1580.0/292.0)
	}
}

func TestAlphaMonotoneInK(t *testing.T) {
	cfg := topology.DefaultSimConfig
	prev := Alpha(cfg, 0)
	for k := 1; k < 39; k++ {
		a := Alpha(cfg, k)
		if a < prev {
			t.Fatalf("Alpha(k=%d)=%v < Alpha(k=%d)=%v; more failures should need more signal", k, a, k-1, prev)
		}
		prev = a
	}
	if !math.IsInf(Alpha(cfg, 39), 1) {
		t.Fatal("Alpha at the k cap should be +Inf")
	}
}

func TestRetxProb(t *testing.T) {
	if RetxProb(0, 100) != 0 || RetxProb(1, 5) != 1 || RetxProb(0.5, 0) != 0 {
		t.Fatal("RetxProb edge cases wrong")
	}
	// 1 − 0.995^100 ≈ 0.3942.
	if got := RetxProb(0.005, 100); math.Abs(got-0.39423) > 1e-4 {
		t.Fatalf("RetxProb(0.005,100) = %v", got)
	}
	// Monotone in both arguments.
	if RetxProb(0.01, 10) >= RetxProb(0.01, 100) || RetxProb(0.001, 50) >= RetxProb(0.01, 50) {
		t.Fatal("RetxProb not monotone")
	}
}

// The paper's §5.2 worked example: with pb ≥ 0.05% the tolerable noise
// is on the order of 1e-6 — far above real datacenter noise (1e-8).
func TestPgBoundPaperExample(t *testing.T) {
	cfg := topology.DefaultSimConfig
	pg := PgBound(cfg, 1, 0.0005, 10, 90)
	if pg < 1e-7 || pg > 1e-4 {
		t.Fatalf("PgBound = %v, want order 1e-6..1e-5", pg)
	}
	if pg <= 1e-8 {
		t.Fatal("bound should comfortably exceed production noise rates")
	}
}

func TestPgBoundMonotoneInPb(t *testing.T) {
	cfg := topology.DefaultSimConfig
	if PgBound(cfg, 2, 0.001, 10, 90) >= PgBound(cfg, 2, 0.01, 10, 90) {
		t.Fatal("worse failures should tolerate more noise")
	}
}

func TestConditions(t *testing.T) {
	if ok, v := Conditions(topology.DefaultSimConfig, 5); !ok {
		t.Fatalf("default sim config should satisfy Theorem 3: %v", v)
	}
	// n0 < n2 violates.
	bad := topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 4, T2: 8, HostsPerToR: 4}
	if ok, _ := Conditions(bad, 1); ok {
		t.Fatal("n0 < n2 accepted")
	}
	// k at the cap violates.
	if ok, _ := Conditions(topology.DefaultSimConfig, 40); ok {
		t.Fatal("k beyond the cap accepted")
	}
	// Too few pods: npod=2 but n0/n1 = 20/2 = 10 needs npod >= 11.
	few := topology.Config{Pods: 2, ToRsPerPod: 20, T1PerPod: 2, T2: 10, HostsPerToR: 4}
	if ok, _ := Conditions(few, 1); ok {
		t.Fatal("insufficient pods accepted")
	}
}

func TestVoteProbBounds(t *testing.T) {
	cfg := topology.DefaultSimConfig
	vb, vg := VoteProbBounds(cfg, 0.4, 1e-4, 1)
	if vb <= 0 || vg <= 0 {
		t.Fatalf("bounds not positive: %v %v", vb, vg)
	}
	// With rb >> rg the separation must hold — this is what makes 007 work.
	if vb <= vg {
		t.Fatalf("vb bound %v not above vg bound %v", vb, vg)
	}
	// vb ≥ rb/(n0·n1·npod) = 0.4/800 = 5e-4.
	if math.Abs(vb-5e-4) > 1e-15 {
		t.Fatalf("vb = %v, want 5e-4", vb)
	}
}

func TestEpsilonBoundDecaysExponentially(t *testing.T) {
	cfg := topology.DefaultSimConfig
	vb, vg := VoteProbBounds(cfg, 0.4, 1e-4, 1)
	e1 := EpsilonBound(10000, vg, vb, 0)
	e2 := EpsilonBound(20000, vg, vb, 0)
	e3 := EpsilonBound(40000, vg, vb, 0)
	if !(e1 > e2 && e2 > e3) {
		t.Fatalf("epsilon not decreasing: %v %v %v", e1, e2, e3)
	}
	// Doubling N should at least square the bound (up to the additive mix):
	// check log-linear decay within slack.
	if e3 > e2*e2*10 {
		t.Fatalf("decay slower than exponential: e2=%v e3=%v", e2, e3)
	}
	// Degenerate: no separation.
	if EpsilonBound(1000, 0.5, 0.4, 0) != 1 {
		t.Fatal("vb <= vg should give the trivial bound")
	}
}

func TestEpsilonBoundExplicitDelta(t *testing.T) {
	cfg := topology.DefaultSimConfig
	vb, vg := VoteProbBounds(cfg, 0.4, 1e-4, 1)
	mid := (vb - vg) / (vb + vg) / 2
	e := EpsilonBound(50000, vg, vb, mid)
	opt := EpsilonBound(50000, vg, vb, 0)
	if e < opt-1e-12 {
		t.Fatalf("optimizer worse than a fixed delta: %v vs %v", opt, e)
	}
	if e <= 0 || e > 1 {
		t.Fatalf("epsilon out of range: %v", e)
	}
}
