// Package theory implements the analytical results of the paper: the
// ICMP-safe traceroute rate of Theorem 1, and the accuracy machinery of
// Theorem 2 / Theorem 3 (α, the signal-to-noise condition on drop rates,
// and the large-deviation error bound ε).
//
// These are used three ways: the path discovery agent derives its host-side
// rate limit from CtBound; tests cross-check the emulated fabric against
// the bounds; and cmd/vigil-theory prints them for a given topology.
package theory

import (
	"math"

	"vigil/internal/stats"
	"vigil/internal/topology"
)

// CtBound returns Theorem 1's upper bound on the per-host traceroute rate
// Ct (traceroutes per second) that keeps every switch's ICMP generation
// below tmax per second:
//
//	Ct ≤ (Tmax / (n0·H)) · min[ n1, n2(n0·npod−1) / (n0(npod−1)) ]
//
// For a single-pod topology no traffic crosses level 2, so only the n1 term
// applies.
func CtBound(cfg topology.Config, tmax float64) float64 {
	n0 := float64(cfg.ToRsPerPod)
	n1 := float64(cfg.T1PerPod)
	n2 := float64(cfg.T2)
	npod := float64(cfg.Pods)
	h := float64(cfg.HostsPerToR)
	m := n1
	if cfg.Pods > 1 {
		l2 := n2 * (n0*npod - 1) / (n0 * (npod - 1))
		if l2 < m {
			m = l2
		}
	}
	return tmax / (n0 * h) * m
}

// MaxBadLinks returns Theorem 2's cap on the number of simultaneously
// detectable bad links, k < n2(n0·npod−1)/(n0(npod−1)). For one pod the
// constraint is vacuous and the total link count is returned.
func MaxBadLinks(cfg topology.Config) float64 {
	if cfg.Pods <= 1 {
		return float64(cfg.DirectedLinks())
	}
	n0 := float64(cfg.ToRsPerPod)
	n2 := float64(cfg.T2)
	npod := float64(cfg.Pods)
	return n2 * (n0*npod - 1) / (n0 * (npod - 1))
}

// Alpha returns eq. (8):
//
//	α = n0(4n0−k)(npod−1) / (n2(n0·npod−1) − n0(npod−1)k)
//
// the required ratio between bad- and good-link retransmission
// probabilities. It returns +Inf when k reaches MaxBadLinks (the
// denominator's zero) or the topology has a single pod.
func Alpha(cfg topology.Config, k int) float64 {
	n0 := float64(cfg.ToRsPerPod)
	n2 := float64(cfg.T2)
	npod := float64(cfg.Pods)
	kf := float64(k)
	den := n2*(n0*npod-1) - n0*(npod-1)*kf
	if den <= 0 || cfg.Pods <= 1 {
		return math.Inf(1)
	}
	return n0 * (4*n0 - kf) * (npod - 1) / den
}

// RetxProb returns r = 1 − (1−p)^c, the probability that a link with drop
// rate p causes at least one retransmission in a c-packet connection.
func RetxProb(p float64, c int) float64 {
	if p <= 0 || c <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return 1 - math.Pow(1-p, float64(c))
}

// PgBound returns eq. (7): the largest good-link drop rate pg under which
// Theorem 2 still separates k bad links dropping at rate pb, for
// connections of cl to cu packets:
//
//	pg ≤ (1 − (1−pb)^cl) / (α·cu)
func PgBound(cfg topology.Config, k int, pb float64, cl, cu int) float64 {
	a := Alpha(cfg, k)
	if math.IsInf(a, 1) || cu <= 0 {
		return 0
	}
	return RetxProb(pb, cl) / (a * float64(cu))
}

// Conditions reports whether Theorem 3's structural preconditions hold for
// the topology and failure count: n0 ≥ n2, k below MaxBadLinks, and
// npod ≥ 1 + max[n0/n1, n2(n0−1)/(n0(n0−n2)), 1].
func Conditions(cfg topology.Config, k int) (ok bool, violations []string) {
	n0 := float64(cfg.ToRsPerPod)
	n1 := float64(cfg.T1PerPod)
	n2 := float64(cfg.T2)
	npod := float64(cfg.Pods)
	if n0 < n2 {
		violations = append(violations, "n0 < n2")
	}
	if float64(k) >= MaxBadLinks(cfg) {
		violations = append(violations, "k >= n2(n0·npod-1)/(n0(npod-1))")
	}
	need := 1.0
	if n0/n1 > need {
		need = n0 / n1
	}
	if n0 > n2 { // avoid the n0==n2 division by zero; that case already failed above
		if v := n2 * (n0 - 1) / (n0 * (n0 - n2)); v > need {
			need = v
		}
	}
	if npod < 1+need {
		violations = append(violations, "npod < 1 + max[n0/n1, n2(n0-1)/(n0(n0-n2)), 1]")
	}
	return len(violations) == 0, violations
}

// VoteProbBounds returns eq. (10): a lower bound on a bad link's
// per-connection vote probability and an upper bound on a good link's,
// given the retransmission probabilities rb and rg and failure count k.
func VoteProbBounds(cfg topology.Config, rb, rg float64, k int) (vbLo, vgHi float64) {
	n0 := float64(cfg.ToRsPerPod)
	n1 := float64(cfg.T1PerPod)
	n2 := float64(cfg.T2)
	npod := float64(cfg.Pods)
	kf := float64(k)
	vbLo = rb / (n0 * n1 * npod)
	if cfg.Pods > 1 {
		vgHi = n0 * (npod - 1) / (n0*npod - 1) / (n1 * n2 * npod) *
			((4-kf/n0)*rg + kf/n0*rb)
	} else {
		// Single pod: every path is host-ToR-T1-ToR-host; a good link sees
		// spill from at most 4 co-path links, one of which may be bad.
		vgHi = (4*rg + rb) / (n0 * n1)
	}
	return vbLo, vgHi
}

// EpsilonBound returns eq. (9): the probability that 007 misranks any good
// link above a bad one after N connections,
//
//	ε ≤ e^(−N·D((1+δ)vg ‖ vg)) + e^(−N·D((1−δ)vb ‖ vb)),
//
// minimized over the valid δ range when delta <= 0 is passed.
func EpsilonBound(n int, vg, vb, delta float64) float64 {
	if vb <= vg || n <= 0 {
		return 1
	}
	if delta <= 0 {
		// Optimize δ over (0, (vb−vg)/(vb+vg)] by golden-section search.
		lo, hi := 1e-9, (vb-vg)/(vb+vg)
		best := 1.0
		for i := 0; i < 64; i++ {
			m1 := lo + (hi-lo)/3
			m2 := hi - (hi-lo)/3
			e1, e2 := epsilonAt(n, vg, vb, m1), epsilonAt(n, vg, vb, m2)
			if e1 < e2 {
				hi = m2
			} else {
				lo = m1
			}
			if e1 < best {
				best = e1
			}
			if e2 < best {
				best = e2
			}
		}
		return best
	}
	return epsilonAt(n, vg, vb, delta)
}

func epsilonAt(n int, vg, vb, delta float64) float64 {
	up := (1 + delta) * vg
	dn := (1 - delta) * vb
	if up >= 1 || dn <= 0 || up >= dn {
		return 1
	}
	e := math.Exp(-float64(n)*stats.BernoulliKL(up, vg)) +
		math.Exp(-float64(n)*stats.BernoulliKL(dn, vb))
	if e > 1 {
		return 1
	}
	return e
}
