package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestEpochExporterWritesTopLinksAndConformance(t *testing.T) {
	e := NewEpochExporter(2)
	var buf strings.Builder
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty exporter wrote: %q", buf.String())
	}

	e.ObserveEpoch(7, []RankedLink{
		{Link: "pod0/t1_2-t2_5", Votes: 13.5, Detected: true},
		{Link: "pod1/tor0-t1_1", Votes: 4},
		{Link: "pod2/host3-tor1", Votes: 1}, // beyond K, must be dropped
	})
	e.ObserveConformance("flap", Detection{Precision: 1, Recall: 0.5, TruePos: 1, FalseNeg: 1})
	e.ObserveConformance("flap", Detection{Precision: 0.5, Recall: 1, TruePos: 2, FalsePos: 2})
	e.ObserveConformance("burst", Detection{Precision: 1, Recall: 1, TruePos: 3})

	buf.Reset()
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"vigil_epoch_last_settled 7",
		`vigil_epoch_top_link_votes{rank="1",link="pod0/t1_2-t2_5"} 13.5`,
		`vigil_epoch_top_link_votes{rank="2",link="pod1/tor0-t1_1"} 4`,
		`vigil_epoch_top_link_detected{rank="1",link="pod0/t1_2-t2_5"} 1`,
		`vigil_epoch_top_link_detected{rank="2",link="pod1/tor0-t1_1"} 0`,
		// Gauges carry the NEWEST epoch's score, counters the cumulative sums.
		`vigil_scenario_precision{scenario="flap"} 0.5`,
		`vigil_scenario_recall{scenario="flap"} 1`,
		`vigil_scenario_epochs_total{scenario="flap"} 2`,
		`vigil_scenario_true_positives_total{scenario="flap"} 3`,
		`vigil_scenario_false_positives_total{scenario="flap"} 2`,
		`vigil_scenario_false_negatives_total{scenario="flap"} 1`,
		`vigil_scenario_precision{scenario="burst"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing series %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "pod2/host3-tor1") {
		t.Fatalf("rank beyond K exported:\n%s", out)
	}
	// Scenario order must be sorted for stable scrapes.
	if strings.Index(out, `scenario="burst"`) > strings.Index(out, `scenario="flap"`) {
		t.Fatalf("scenario series not sorted:\n%s", out)
	}

	if s := e.Snapshot(); s == nil || s.Epoch != 7 || len(s.TopLinks) != 2 {
		t.Fatalf("snapshot: %+v", e.Snapshot())
	}
}

func TestEpochExporterLabelEscaping(t *testing.T) {
	e := NewEpochExporter(1)
	e.ObserveEpoch(1, []RankedLink{{Link: "we\"ird\\na\nme", Votes: 1}})
	var buf strings.Builder
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `link="we\"ird\\na\nme"`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}

// Scrapes must be safe against concurrent epoch settles — the exporter is
// written by the ingest sink goroutine while HTTP handlers read it.
func TestEpochExporterConcurrentScrape(t *testing.T) {
	e := NewEpochExporter(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.ObserveEpoch(int64(i), []RankedLink{{Link: "l", Votes: float64(i)}})
				e.ObserveConformance("soak", Detection{Precision: 1, Recall: 1, TruePos: 1})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var buf strings.Builder
				if err := e.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
