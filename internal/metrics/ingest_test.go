package metrics

import (
	"strings"
	"testing"
)

// WritePrometheus must render every series exactly once, with the right
// TYPE kind and the live counter value — the format a Prometheus scraper
// (and vigild's /metrics endpoint) consumes.
func TestWritePrometheus(t *testing.T) {
	var c IngestCounters
	c.Received.Store(123)
	c.Lost.Store(7)
	c.QueueDepth.Store(42)

	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, m := range ingestMetrics {
		if got := strings.Count(out, "# HELP "+m.name+" "); got != 1 {
			t.Errorf("series %s: %d HELP lines, want 1", m.name, got)
		}
		kind := "counter"
		if m.gauge {
			kind = "gauge"
		}
		if !strings.Contains(out, "# TYPE "+m.name+" "+kind+"\n") {
			t.Errorf("series %s: missing TYPE %s line", m.name, kind)
		}
	}
	for _, want := range []string{
		"vigil_ingest_received_total 123\n",
		"vigil_ingest_lost_total 7\n",
		"vigil_ingest_queue_depth 42\n",
		"vigil_ingest_accepted_total 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// Every series name must be unique and carry the vigil_ingest_ prefix;
// counters end in _total, gauges do not.
func TestIngestMetricNames(t *testing.T) {
	seen := make(map[string]bool)
	for _, m := range ingestMetrics {
		if seen[m.name] {
			t.Errorf("duplicate series name %s", m.name)
		}
		seen[m.name] = true
		if !strings.HasPrefix(m.name, "vigil_ingest_") {
			t.Errorf("series %s: missing vigil_ingest_ prefix", m.name)
		}
		if m.gauge == strings.HasSuffix(m.name, "_total") {
			t.Errorf("series %s: _total suffix must match counter kind", m.name)
		}
	}
}
