package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// RankedLink is one entry of a settled epoch's vote ranking, resolved to a
// printable link name by the caller (this package deliberately knows
// nothing about fabrics or engines).
type RankedLink struct {
	Link     string
	Votes    float64
	Detected bool // named by Algorithm 1's detected set
}

// EpochSnapshot is the last settled epoch's detection state, swapped in
// whole so a scrape never sees half an epoch.
type EpochSnapshot struct {
	Epoch    int64
	TopLinks []RankedLink // highest votes first, capped at the exporter's K
}

// scenarioScore accumulates one scenario's conformance: the newest
// epoch's precision/recall (gauges) plus cumulative confusion counters
// (monotone, so dashboards can rate() them).
type scenarioScore struct {
	last     Detection
	epochs   int64
	truePos  int64
	falsePos int64
	falseNeg int64
}

// EpochExporter publishes what the ingest counters cannot: the last
// settled epoch's top-K ranked links and per-scenario conformance, in
// Prometheus text format. Writers (the ingest sink goroutine) and readers
// (HTTP scrapes) never block each other: the epoch snapshot is an atomic
// pointer swap, and the scenario map takes a mutex only long enough to
// copy.
type EpochExporter struct {
	topK int
	snap atomic.Pointer[EpochSnapshot]

	mu   sync.Mutex
	scen map[string]*scenarioScore
}

// NewEpochExporter returns an exporter keeping the top k ranked links per
// epoch (k <= 0 defaults to 10).
func NewEpochExporter(k int) *EpochExporter {
	if k <= 0 {
		k = 10
	}
	return &EpochExporter{topK: k, scen: make(map[string]*scenarioScore)}
}

// ObserveEpoch records a settled epoch's ranking, highest votes first.
// The slice is copied and truncated to the exporter's K; callers may
// reuse their backing array.
func (e *EpochExporter) ObserveEpoch(epoch int64, ranked []RankedLink) {
	if len(ranked) > e.topK {
		ranked = ranked[:e.topK]
	}
	s := &EpochSnapshot{Epoch: epoch, TopLinks: append([]RankedLink(nil), ranked...)}
	e.snap.Store(s)
}

// ObserveConformance folds one epoch's detection score into the named
// scenario's gauges and cumulative confusion counters.
func (e *EpochExporter) ObserveConformance(scenario string, d Detection) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sc := e.scen[scenario]
	if sc == nil {
		sc = &scenarioScore{}
		e.scen[scenario] = sc
	}
	sc.last = d
	sc.epochs++
	sc.truePos += int64(d.TruePos)
	sc.falsePos += int64(d.FalsePos)
	sc.falseNeg += int64(d.FalseNeg)
}

// Snapshot returns the last observed epoch state, or nil before the first
// settle.
func (e *EpochExporter) Snapshot() *EpochSnapshot { return e.snap.Load() }

// escapeLabel escapes a Prometheus label value.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// WritePrometheus renders the epoch and scenario series. Scenario order
// is sorted so scrapes are stable.
func (e *EpochExporter) WritePrometheus(w io.Writer) error {
	if s := e.snap.Load(); s != nil {
		if _, err := fmt.Fprintf(w,
			"# HELP vigil_epoch_last_settled Newest epoch with a settled detection result.\n"+
				"# TYPE vigil_epoch_last_settled gauge\nvigil_epoch_last_settled %d\n", s.Epoch); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"# HELP vigil_epoch_top_link_votes Vote mass of the last settled epoch's top-ranked links.\n"+
				"# TYPE vigil_epoch_top_link_votes gauge\n"); err != nil {
			return err
		}
		for i, l := range s.TopLinks {
			if _, err := fmt.Fprintf(w, "vigil_epoch_top_link_votes{rank=\"%d\",link=\"%s\"} %g\n",
				i+1, escapeLabel(l.Link), l.Votes); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"# HELP vigil_epoch_top_link_detected Whether the ranked link is in Algorithm 1's detected set.\n"+
				"# TYPE vigil_epoch_top_link_detected gauge\n"); err != nil {
			return err
		}
		for i, l := range s.TopLinks {
			v := 0
			if l.Detected {
				v = 1
			}
			if _, err := fmt.Fprintf(w, "vigil_epoch_top_link_detected{rank=\"%d\",link=\"%s\"} %d\n",
				i+1, escapeLabel(l.Link), v); err != nil {
				return err
			}
		}
	}
	type scenEntry struct {
		name string
		sc   scenarioScore
	}
	e.mu.Lock()
	entries := make([]scenEntry, 0, len(e.scen))
	for name, sc := range e.scen {
		entries = append(entries, scenEntry{name, *sc})
	}
	e.mu.Unlock()
	if len(entries) == 0 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	series := []struct {
		name, help, kind string
		load             func(sc *scenarioScore) string
	}{
		{"vigil_scenario_precision", "Detection precision of the scenario's newest settled epoch.", "gauge",
			func(sc *scenarioScore) string { return fmt.Sprintf("%g", sc.last.Precision) }},
		{"vigil_scenario_recall", "Detection recall of the scenario's newest settled epoch.", "gauge",
			func(sc *scenarioScore) string { return fmt.Sprintf("%g", sc.last.Recall) }},
		{"vigil_scenario_epochs_total", "Epochs scored against this scenario.", "counter",
			func(sc *scenarioScore) string { return fmt.Sprintf("%d", sc.epochs) }},
		{"vigil_scenario_true_positives_total", "Cumulative correctly detected failed links.", "counter",
			func(sc *scenarioScore) string { return fmt.Sprintf("%d", sc.truePos) }},
		{"vigil_scenario_false_positives_total", "Cumulative links detected that had not failed.", "counter",
			func(sc *scenarioScore) string { return fmt.Sprintf("%d", sc.falsePos) }},
		{"vigil_scenario_false_negatives_total", "Cumulative failed links that went undetected.", "counter",
			func(sc *scenarioScore) string { return fmt.Sprintf("%d", sc.falseNeg) }},
	}
	for _, m := range series {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		for i := range entries {
			if _, err := fmt.Fprintf(w, "%s{scenario=\"%s\"} %s\n",
				m.name, escapeLabel(entries[i].name), m.load(&entries[i].sc)); err != nil {
				return err
			}
		}
	}
	return nil
}
