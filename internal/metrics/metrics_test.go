package metrics

import (
	"testing"

	"vigil/internal/topology"
	"vigil/internal/vote"
)

func TestScoreVerdicts(t *testing.T) {
	truth := map[int64]FlowTruth{
		1: {Culprit: 10, CrossedFailure: true},
		2: {Culprit: 10, CrossedFailure: true},
		3: {Culprit: 20, CrossedFailure: false}, // noise flow: not considered
		4: {Culprit: 30, CrossedFailure: true},
	}
	verdicts := []vote.Verdict{
		{FlowID: 1, Link: 10},              // correct
		{FlowID: 2, Link: 11},              // wrong link
		{FlowID: 3, Link: 20},              // not considered
		{FlowID: 4, Link: 30, Noise: true}, // correct link but flagged noise
		{FlowID: 5, Link: 1},               // no truth entry: ignored
	}
	s := ScoreVerdicts(verdicts, truth)
	if s.Considered != 3 {
		t.Fatalf("considered = %d, want 3", s.Considered)
	}
	if s.Correct != 2 {
		t.Fatalf("correct = %d, want 2", s.Correct)
	}
	if s.NoiseErrors != 1 {
		t.Fatalf("noise errors = %d, want 1", s.NoiseErrors)
	}
	if acc := s.Accuracy(); acc < 0.66 || acc > 0.67 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestAccuracyEmptyIsOne(t *testing.T) {
	if (FlowScore{}).Accuracy() != 1 {
		t.Fatal("empty score should read as vacuously perfect")
	}
}

type fixedBlamer struct{ link topology.LinkID }

func (f fixedBlamer) BlameOnPath(path []topology.LinkID) (topology.LinkID, bool) {
	for _, l := range path {
		if l == f.link {
			return l, true
		}
	}
	if len(path) == 0 {
		return topology.NoLink, false
	}
	return path[0], true
}

func TestScoreBlamer(t *testing.T) {
	truth := map[int64]FlowTruth{
		1: {Culprit: 7, CrossedFailure: true},
		2: {Culprit: 7, CrossedFailure: true},
	}
	reports := []vote.Report{
		{FlowID: 1, Path: []topology.LinkID{5, 7, 9}},
		{FlowID: 2, Path: []topology.LinkID{4, 6, 8}}, // blamer falls back to 4
	}
	s := ScoreBlamer(fixedBlamer{link: 7}, reports, truth)
	if s.Considered != 2 || s.Correct != 1 {
		t.Fatalf("score = %+v", s)
	}
}

func TestScoreBlamerEmptyPath(t *testing.T) {
	truth := map[int64]FlowTruth{1: {Culprit: 7, CrossedFailure: true}}
	s := ScoreBlamer(fixedBlamer{}, []vote.Report{{FlowID: 1}}, truth)
	if s.NoiseErrors != 1 || s.Correct != 0 {
		t.Fatalf("score = %+v", s)
	}
}

func TestScoreDetectionCounts(t *testing.T) {
	d := ScoreDetection([]topology.LinkID{1, 2, 3}, []topology.LinkID{2, 3, 4, 5})
	if d.TruePos != 2 || d.FalsePos != 1 || d.FalseNeg != 2 {
		t.Fatalf("detection = %+v", d)
	}
	if d.Precision != 2.0/3 || d.Recall != 0.5 {
		t.Fatalf("p/r = %v/%v", d.Precision, d.Recall)
	}
}
