package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// IngestCounters is the observable state of a streaming ingest service
// (internal/ingest): what arrived, what the robustness machinery did about
// it, and what the fault injector claims it did. All fields are atomics so
// the ingest pipeline's goroutines update them without locks and a metrics
// endpoint can render them mid-run.
//
// The paired design — observed counters next to injected counters — is the
// service's self-check: with retries disabled, every injected fault is
// observable (`Duplicates == InjDuplicates`, `Late == InjLateInGrace`,
// `LateDropped == InjLatePastGrace`, `Lost == InjDrops + InjBurstDrops +
// InjCrashDrops + InjLatePastGrace` — a report past the grace window is
// lost to its epoch even though it physically arrived), and the chaos
// tests assert exactly that.
type IngestCounters struct {
	// Observed at the collector.
	Received      atomic.Int64 // reports that reached the collector (incl. duplicates)
	Accepted      atomic.Int64 // reports admitted into a not-yet-settled epoch
	Duplicates    atomic.Int64 // suppressed as already-seen (agent, epoch, seq)
	Late          atomic.Int64 // accepted inside the grace window after their epoch closed
	LateDropped   atomic.Int64 // arrived after their epoch settled; discarded
	Lost          atomic.Int64 // expected but missing when their epoch settled
	Retries       atomic.Int64 // re-requests issued for detected sequence gaps
	Recovered     atomic.Int64 // gap reports recovered by a retry before settle
	ShedPaths     atomic.Int64 // reports stripped of traceroute paths under queue pressure
	SettledEpochs atomic.Int64 // epochs settled and emitted
	DetectedLinks atomic.Int64 // links named by Algorithm 1 across settled epochs
	Verdicts      atomic.Int64 // per-flow verdicts issued across settled epochs

	// Gauges.
	WatermarkLag atomic.Int64 // current epoch minus newest settled epoch
	OpenEpochs   atomic.Int64 // epochs accepted but not yet settled
	QueueDepth   atomic.Int64 // reports sitting in ingest queues right now

	// Injected by the fault layer (ground truth for the observed side).
	InjDrops        atomic.Int64 // reports dropped outright
	InjDuplicates   atomic.Int64 // reports delivered twice
	InjLateInGrace  atomic.Int64 // reports delayed but within the grace window
	InjLatePastGrace atomic.Int64 // reports delayed past the grace window
	InjBurstDrops   atomic.Int64 // reports lost to burst-loss windows
	InjCrashDrops   atomic.Int64 // reports lost to agent crashes
}

// ingestMetric is one exported series: name, help, kind and a loader.
type ingestMetric struct {
	name, help string
	gauge      bool
	load       func(c *IngestCounters) int64
}

var ingestMetrics = []ingestMetric{
	{"vigil_ingest_received_total", "Reports that reached the collector, duplicates included.", false, func(c *IngestCounters) int64 { return c.Received.Load() }},
	{"vigil_ingest_accepted_total", "Reports admitted into a not-yet-settled epoch.", false, func(c *IngestCounters) int64 { return c.Accepted.Load() }},
	{"vigil_ingest_duplicates_total", "Reports suppressed as duplicates of an already-seen identity.", false, func(c *IngestCounters) int64 { return c.Duplicates.Load() }},
	{"vigil_ingest_late_total", "Reports accepted inside the grace window after their epoch closed.", false, func(c *IngestCounters) int64 { return c.Late.Load() }},
	{"vigil_ingest_late_dropped_total", "Reports discarded because their epoch had already settled.", false, func(c *IngestCounters) int64 { return c.LateDropped.Load() }},
	{"vigil_ingest_lost_total", "Reports still missing when their epoch settled.", false, func(c *IngestCounters) int64 { return c.Lost.Load() }},
	{"vigil_ingest_retries_total", "Gap re-requests issued to agents.", false, func(c *IngestCounters) int64 { return c.Retries.Load() }},
	{"vigil_ingest_recovered_total", "Gap reports recovered by a retry before settle.", false, func(c *IngestCounters) int64 { return c.Recovered.Load() }},
	{"vigil_ingest_shed_paths_total", "Reports stripped of their traceroute path under queue pressure.", false, func(c *IngestCounters) int64 { return c.ShedPaths.Load() }},
	{"vigil_ingest_settled_epochs_total", "Epochs settled and emitted.", false, func(c *IngestCounters) int64 { return c.SettledEpochs.Load() }},
	{"vigil_ingest_detected_links_total", "Links named by Algorithm 1 across settled epochs.", false, func(c *IngestCounters) int64 { return c.DetectedLinks.Load() }},
	{"vigil_ingest_verdicts_total", "Per-flow verdicts issued across settled epochs.", false, func(c *IngestCounters) int64 { return c.Verdicts.Load() }},
	{"vigil_ingest_watermark_lag_epochs", "Current epoch minus newest settled epoch.", true, func(c *IngestCounters) int64 { return c.WatermarkLag.Load() }},
	{"vigil_ingest_open_epochs", "Epochs accepted but not yet settled.", true, func(c *IngestCounters) int64 { return c.OpenEpochs.Load() }},
	{"vigil_ingest_queue_depth", "Reports sitting in ingest queues.", true, func(c *IngestCounters) int64 { return c.QueueDepth.Load() }},
	{"vigil_ingest_fault_drops_total", "Reports the fault injector dropped outright.", false, func(c *IngestCounters) int64 { return c.InjDrops.Load() }},
	{"vigil_ingest_fault_duplicates_total", "Reports the fault injector delivered twice.", false, func(c *IngestCounters) int64 { return c.InjDuplicates.Load() }},
	{"vigil_ingest_fault_late_in_grace_total", "Reports the fault injector delayed within the grace window.", false, func(c *IngestCounters) int64 { return c.InjLateInGrace.Load() }},
	{"vigil_ingest_fault_late_past_grace_total", "Reports the fault injector delayed past the grace window.", false, func(c *IngestCounters) int64 { return c.InjLatePastGrace.Load() }},
	{"vigil_ingest_fault_burst_drops_total", "Reports the fault injector lost to burst windows.", false, func(c *IngestCounters) int64 { return c.InjBurstDrops.Load() }},
	{"vigil_ingest_fault_crash_drops_total", "Reports the fault injector lost to agent crashes.", false, func(c *IngestCounters) int64 { return c.InjCrashDrops.Load() }},
}

// WritePrometheus renders the counters in the Prometheus text exposition
// format (one HELP/TYPE pair per series). It reads each counter exactly
// once, so a scrape is a consistent-enough snapshot for monotonic counters.
func (c *IngestCounters) WritePrometheus(w io.Writer) error {
	for _, m := range ingestMetrics {
		kind := "counter"
		if m.gauge {
			kind = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, kind, m.name, m.load(c)); err != nil {
			return err
		}
	}
	return nil
}
