// Package metrics scores 007 and the optimization baselines against ground
// truth, using the paper's three measures (§6): per-flow accuracy, and
// precision/recall for Algorithm 1's detected link set.
package metrics

import (
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// FlowTruth is the ground truth for one failed flow.
type FlowTruth struct {
	Culprit topology.LinkID
	// CrossedFailure is true when the flow's path contained an injected
	// failure — the flows on which attribution accuracy is defined (§7.2).
	CrossedFailure bool
}

// Blamer abstracts a per-flow verdict source so 007 and the integer
// program score through the same code.
type Blamer interface {
	BlameOnPath(path []topology.LinkID) (topology.LinkID, bool)
}

// FlowScore is the per-flow accuracy result.
type FlowScore struct {
	Considered int // failed flows that crossed an injected failure
	Correct    int // of those, blamed on their true culprit
	// NoiseErrors counts flows 007 classified as noise whose drops were in
	// fact caused by an injected failure ("marked noisy incorrectly").
	NoiseErrors int
}

// Accuracy returns Correct/Considered (1 when nothing was considered, so
// empty epochs do not read as failures).
func (s FlowScore) Accuracy() float64 {
	if s.Considered == 0 {
		return 1
	}
	return float64(s.Correct) / float64(s.Considered)
}

// ScoreVerdicts scores 007's per-flow verdicts against ground truth.
// truth maps FlowID to FlowTruth; verdicts without truth entries are
// ignored (they correspond to flows that lost no packets). A verdict is
// correct when it blames the flow's true culprit; flows that crossed a
// failure but were flagged as noise drops additionally count as noise
// errors (the paper claims there are none).
func ScoreVerdicts(verdicts []vote.Verdict, truth map[int64]FlowTruth) FlowScore {
	var s FlowScore
	for _, v := range verdicts {
		tr, ok := truth[v.FlowID]
		if !ok || !tr.CrossedFailure {
			continue
		}
		s.Considered++
		if v.Noise {
			s.NoiseErrors++
		}
		if v.Link == tr.Culprit {
			s.Correct++
		}
	}
	return s
}

// ScoreBlamer scores a baseline's per-flow blame over the same flows.
func ScoreBlamer(b Blamer, reports []vote.Report, truth map[int64]FlowTruth) FlowScore {
	var s FlowScore
	for _, r := range reports {
		tr, ok := truth[r.FlowID]
		if !ok || !tr.CrossedFailure {
			continue
		}
		s.Considered++
		blame, ok := b.BlameOnPath(r.Path)
		if !ok {
			s.NoiseErrors++
			continue
		}
		if blame == tr.Culprit {
			s.Correct++
		}
	}
	return s
}

// Detection holds precision and recall of a predicted failed-link set.
type Detection struct {
	Precision float64 // predicted links that really failed
	Recall    float64 // real failures that were predicted
	TruePos   int
	FalsePos  int
	FalseNeg  int
}

// ScoreDetection compares a predicted link set to the injected failures.
// An empty prediction has precision 1 (no false positives) and recall 0
// when failures exist.
func ScoreDetection(predicted, actual []topology.LinkID) Detection {
	pset := make(map[topology.LinkID]bool, len(predicted))
	for _, l := range predicted {
		pset[l] = true
	}
	aset := make(map[topology.LinkID]bool, len(actual))
	for _, l := range actual {
		aset[l] = true
	}
	var d Detection
	for l := range pset {
		if aset[l] {
			d.TruePos++
		} else {
			d.FalsePos++
		}
	}
	for l := range aset {
		if !pset[l] {
			d.FalseNeg++
		}
	}
	if d.TruePos+d.FalsePos == 0 {
		d.Precision = 1
	} else {
		d.Precision = float64(d.TruePos) / float64(d.TruePos+d.FalsePos)
	}
	if d.TruePos+d.FalseNeg == 0 {
		d.Recall = 1
	} else {
		d.Recall = float64(d.TruePos) / float64(d.TruePos+d.FalseNeg)
	}
	return d
}
