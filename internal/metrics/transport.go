package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// TransportCounters is the observable state of the networked ingest
// transport (internal/transport): what the resumable agent sessions did on
// the wire and what the collector's durability machinery did about it. One
// struct serves both ends — an agent process leaves the server-side fields
// at zero and vice versa — so a single /metrics endpoint can render
// whichever role the process plays.
//
// Like the ingest counters, these are designed to be checked against the
// fault injector: the wire-level chaos proxy counts what it injected, and
// the chaos tests assert that (for example) every injected connection cut
// maps to exactly one successful session resume.
type TransportCounters struct {
	// Client side (resumable agent sessions).
	Dials        atomic.Int64 // TCP dial attempts, successful or not
	DialFailures atomic.Int64 // dial attempts that failed (e.g. during a partition)
	Reconnects   atomic.Int64 // re-established TCP connections after a session loss
	Resumes      atomic.Int64 // completed resume handshakes after a session loss
	FramesSent   atomic.Int64 // sequenced frames sent for the first time
	FramesResent atomic.Int64 // sequenced frames replayed after a resume
	TokenResends atomic.Int64 // cycle tokens re-sent while waiting on a lost cycle-end
	Pings        atomic.Int64 // liveness probes sent while waiting on the collector

	// Server side (collector).
	FramesReceived  atomic.Int64 // sequenced frames that reached the collector
	FramesDropped   atomic.Int64 // stale/duplicate frames dropped by the session watermark
	AcksSent        atomic.Int64 // durable acknowledgement frames sent
	CycleEndsSent   atomic.Int64 // cycle-end frames sent (including re-sends)
	SendWindowDrops atomic.Int64 // outbound frames shed because a connection's send window was full
	AcceptRetries   atomic.Int64 // transient accept-loop errors survived with backoff
	Checkpoints     atomic.Int64 // collector state checkpoints written

	// Gauges.
	SessionsConnected atomic.Int64 // sessions with a live connection right now
	// CheckpointUnixNano is the wall-clock stamp of the newest checkpoint
	// (0 = never); the exporter renders it as an age in seconds.
	CheckpointUnixNano atomic.Int64
}

// CheckpointAgeSeconds returns the age of the newest checkpoint, or -1 if
// none has ever been written.
func (c *TransportCounters) CheckpointAgeSeconds() int64 {
	stamp := c.CheckpointUnixNano.Load()
	if stamp == 0 {
		return -1
	}
	age := (time.Now().UnixNano() - stamp) / int64(time.Second)
	if age < 0 {
		age = 0
	}
	return age
}

type transportMetric struct {
	name, help string
	gauge      bool
	load       func(c *TransportCounters) int64
}

var transportMetrics = []transportMetric{
	{"vigil_transport_dials_total", "TCP dial attempts by agent sessions.", false, func(c *TransportCounters) int64 { return c.Dials.Load() }},
	{"vigil_transport_dial_failures_total", "Dial attempts that failed (connection refused, timeout, partition).", false, func(c *TransportCounters) int64 { return c.DialFailures.Load() }},
	{"vigil_transport_reconnects_total", "TCP connections re-established after a session loss.", false, func(c *TransportCounters) int64 { return c.Reconnects.Load() }},
	{"vigil_transport_resumes_total", "Resume handshakes completed after a session loss.", false, func(c *TransportCounters) int64 { return c.Resumes.Load() }},
	{"vigil_transport_frames_sent_total", "Sequenced frames sent for the first time.", false, func(c *TransportCounters) int64 { return c.FramesSent.Load() }},
	{"vigil_transport_frames_resent_total", "Sequenced frames replayed after a resume.", false, func(c *TransportCounters) int64 { return c.FramesResent.Load() }},
	{"vigil_transport_token_resends_total", "Cycle tokens re-sent while waiting on a lost cycle-end.", false, func(c *TransportCounters) int64 { return c.TokenResends.Load() }},
	{"vigil_transport_pings_total", "Liveness probes sent while waiting on the collector.", false, func(c *TransportCounters) int64 { return c.Pings.Load() }},
	{"vigil_transport_frames_received_total", "Sequenced frames that reached the collector.", false, func(c *TransportCounters) int64 { return c.FramesReceived.Load() }},
	{"vigil_transport_frames_dropped_total", "Stale or duplicate frames dropped by the session watermark.", false, func(c *TransportCounters) int64 { return c.FramesDropped.Load() }},
	{"vigil_transport_acks_total", "Durable acknowledgement frames sent to agents.", false, func(c *TransportCounters) int64 { return c.AcksSent.Load() }},
	{"vigil_transport_cycle_ends_total", "Cycle-end frames sent to agents, re-sends included.", false, func(c *TransportCounters) int64 { return c.CycleEndsSent.Load() }},
	{"vigil_transport_send_window_drops_total", "Outbound frames shed because a connection's bounded send window was full.", false, func(c *TransportCounters) int64 { return c.SendWindowDrops.Load() }},
	{"vigil_transport_accept_retries_total", "Transient accept-loop errors survived with backoff.", false, func(c *TransportCounters) int64 { return c.AcceptRetries.Load() }},
	{"vigil_transport_checkpoints_total", "Collector state checkpoints written.", false, func(c *TransportCounters) int64 { return c.Checkpoints.Load() }},
	{"vigil_transport_sessions_connected", "Sessions with a live connection.", true, func(c *TransportCounters) int64 { return c.SessionsConnected.Load() }},
	{"vigil_transport_checkpoint_age_seconds", "Seconds since the newest checkpoint (-1 = never written).", true, func(c *TransportCounters) int64 { return c.CheckpointAgeSeconds() }},
}

// WritePrometheus renders the counters in the Prometheus text exposition
// format, one HELP/TYPE pair per series, reading each counter exactly once.
func (c *TransportCounters) WritePrometheus(w io.Writer) error {
	for _, m := range transportMetrics {
		kind := "counter"
		if m.gauge {
			kind = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, kind, m.name, m.load(c)); err != nil {
			return err
		}
	}
	return nil
}
