package des

import (
	"testing"

	"vigil/internal/stats"
)

func TestOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Drain(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Drain(100)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var s Scheduler
	var fired []Time
	s.After(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Drain(100)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPastEventsRunNow(t *testing.T) {
	var s Scheduler
	s.At(100, func() {})
	s.Step()
	ran := false
	s.At(50, func() { ran = true }) // in the past
	s.Step()
	if !ran || s.Now() != 100 {
		t.Fatalf("past event handling wrong: ran=%v now=%v", ran, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*Second, func() { count++ })
	}
	s.RunUntil(5 * Second)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if s.Now() != 5*Second {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Deadline with no events advances the clock.
	s.RunUntil(20 * Second)
	if count != 10 || s.Now() != 20*Second {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
}

func TestDrainCap(t *testing.T) {
	var s Scheduler
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		s.After(1, reschedule)
	}
	s.After(1, reschedule)
	ran, complete := s.Drain(50)
	if ran != 50 || complete {
		t.Fatalf("Drain ran %d events, complete=%v", ran, complete)
	}
	// The self-rescheduling chain keeps the queue non-empty forever; a
	// bounded drain must report the cap was hit, and a drain over a finite
	// queue must report completion.
	var fin Scheduler
	fin.After(1, func() {})
	if ran, complete := fin.Drain(50); ran != 1 || !complete {
		t.Fatalf("finite Drain ran %d events, complete=%v", ran, complete)
	}
}

func TestStepEmpty(t *testing.T) {
	var s Scheduler
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// recorder is a typed-event handler that logs (kind, arg) execution order.
type recorder struct {
	s    *Scheduler
	got  []int64
	time []Time
}

func (r *recorder) HandleEvent(kind int32, arg int64, p any) {
	r.got = append(r.got, arg)
	r.time = append(r.time, r.s.Now())
}

func TestTypedEventDelivery(t *testing.T) {
	var s Scheduler
	r := &recorder{s: &s}
	s.Post(30, r, 1, 3, nil)
	s.Post(10, r, 1, 1, nil)
	s.PostAfter(20, r, 1, 2, nil)
	s.Drain(100)
	if len(r.got) != 3 || r.got[0] != 1 || r.got[1] != 2 || r.got[2] != 3 {
		t.Fatalf("typed order = %v", r.got)
	}
	if r.time[0] != 10 || r.time[1] != 20 || r.time[2] != 30 {
		t.Fatalf("typed times = %v", r.time)
	}
}

func TestPostNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Post with nil handler did not panic")
		}
	}()
	var s Scheduler
	s.Post(1, nil, 0, 0, nil)
}

// TestPastTimeClampTyped pins the past-time rule for the typed path: an
// event posted behind the clock runs "now" and the clock never rewinds.
func TestPastTimeClampTyped(t *testing.T) {
	var s Scheduler
	r := &recorder{s: &s}
	s.Post(100, r, 1, 1, nil)
	s.Step()
	s.Post(50, r, 1, 2, nil) // in the past
	s.Step()
	if len(r.got) != 2 || r.got[1] != 2 {
		t.Fatalf("past typed event did not run: %v", r.got)
	}
	if s.Now() != 100 {
		t.Fatalf("clock rewound to %v", s.Now())
	}
}

// TestOrderingMatchesReferenceModel is the property test for the two-lane
// queue: a seeded mix of near deliveries, far timers, clamped past events
// and closure events — the exact shapes the packet fabric schedules — must
// run in the (time, submission order) sequence a single sorted queue
// would produce, including run-until-idle from nested handlers.
func TestOrderingMatchesReferenceModel(t *testing.T) {
	type ref struct {
		at  Time
		seq int64
	}
	for trial := uint64(0); trial < 20; trial++ {
		rng := stats.NewRNG(trial + 1)
		var s Scheduler
		r := &recorder{s: &s}
		var want []ref
		seq := int64(0)
		post := func(at Time) {
			if at < s.Now() {
				at = s.Now() // the scheduler clamps; the model must too
			}
			seq++
			want = append(want, ref{at: at, seq: seq})
			if rng.Bool(0.3) {
				id := seq
				s.At(at, func() { r.got = append(r.got, id); r.time = append(r.time, s.Now()) })
			} else {
				s.Post(at, r, 1, seq, nil)
			}
		}
		// Seed a burst, then let a fraction of events reschedule from
		// inside handlers (nested posts, like hops scheduling hops).
		for i := 0; i < 200; i++ {
			switch rng.Intn(4) {
			case 0:
				post(s.Now() + Time(rng.Intn(8))) // same-tick and near deliveries
			case 1:
				post(s.Now() + Time(rng.Intn(int(nearWindow))))
			case 2:
				post(s.Now() + nearWindow + Time(rng.Intn(int(Second)))) // far timers
			case 3:
				post(s.Now() - Time(rng.Intn(50))) // past: clamps to now
			}
			for rng.Bool(0.5) && s.Step() {
			}
		}
		s.Drain(10000)
		if len(r.got) != len(want) {
			t.Fatalf("trial %d: ran %d of %d events", trial, len(r.got), len(want))
		}
		// The model's execution order: stable sort by (at, seq). Events
		// executed before later ones were posted still compare correctly
		// because seq increases with post order.
		ordered := append([]ref(nil), want...)
		for i := 1; i < len(ordered); i++ {
			for j := i; j > 0 && (ordered[j].at < ordered[j-1].at ||
				(ordered[j].at == ordered[j-1].at && ordered[j].seq < ordered[j-1].seq)); j-- {
				ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
			}
		}
		for i, id := range r.got {
			if ordered[i].seq != id {
				t.Fatalf("trial %d: position %d ran event %d, reference says %d", trial, i, id, ordered[i].seq)
			}
			if r.time[i] != ordered[i].at {
				t.Fatalf("trial %d: event %d ran at %v, reference says %v", trial, id, r.time[i], ordered[i].at)
			}
		}
	}
}

// TestFIFOAmongSimultaneousMixed pins the FIFO tie-break across the typed
// and closure paths and across the two internal lanes: same-time events
// run in submission order no matter how they were scheduled or which
// structure held them.
func TestFIFOAmongSimultaneousMixed(t *testing.T) {
	var s Scheduler
	r := &recorder{s: &s}
	// Force same-time events into different lanes: event 1 opens the FIFO
	// lane at 5ms and event 2 (a closure) extends its tail to 6ms, so
	// event 3 — 5ms again, behind the tail — and the far-future event 4
	// must take the heap, while event 5 at 6ms ties with the tail and
	// rides the lane. The 5ms tie (lane 1 vs heap 3) and the 6ms tie
	// (lane 2 and 5) must both resolve by submission order.
	s.Post(5*Millisecond, r, 1, 1, nil)                      // fifo
	s.At(6*Millisecond, func() { r.got = append(r.got, 2) }) // fifo (closure)
	s.Post(5*Millisecond, r, 1, 3, nil)                      // heap: behind the lane tail
	s.Post(nearWindow+Second, r, 1, 4, nil)                  // heap: far future
	s.Post(6*Millisecond, r, 1, 5, nil)                      // fifo: ties with the tail
	s.Drain(100)
	want := []int64{1, 3, 2, 5, 4}
	if len(r.got) != len(want) {
		t.Fatalf("ran %d events, want %d: %v", len(r.got), len(want), r.got)
	}
	for i := range want {
		if r.got[i] != want[i] {
			t.Fatalf("mixed-lane tie-break order = %v, want %v", r.got, want)
		}
	}
}

// TestTypedPostAllocFree is the zero-allocation contract: scheduling and
// running typed events allocates nothing once the queue's backing arrays
// are warm.
func TestTypedPostAllocFree(t *testing.T) {
	var s Scheduler
	r := &recorder{s: &s}
	r.got = make([]int64, 0, 4096)
	r.time = make([]Time, 0, 4096)
	warm := func() {
		for i := 0; i < 100; i++ {
			s.PostAfter(Time(i%7), r, 1, int64(i), nil)
			s.PostAfter(nearWindow+Time(i), r, 2, int64(i), nil)
		}
		s.Drain(1000)
		r.got = r.got[:0]
		r.time = r.time[:0]
	}
	warm()
	avg := testing.AllocsPerRun(10, warm)
	if avg > 0 {
		t.Fatalf("typed scheduling allocates %.1f times per cycle", avg)
	}
}

// BenchmarkScheduler measures the raw event churn of the rewritten queue:
// a fabric-like mix of near deliveries (FIFO lane) and far timers (heap),
// pushed from inside handlers exactly like packet hops scheduling packet
// hops.
func BenchmarkScheduler(b *testing.B) {
	var s Scheduler
	n := 0
	var h Handler
	h = handlerFunc(func(kind int32, arg int64, p any) {
		if n <= 0 {
			return
		}
		n--
		// Each event reschedules itself: mostly a 5µs hop, sometimes a
		// 20ms timer — the emulation's two shapes.
		if arg%16 == 0 {
			s.PostAfter(20*Millisecond, h, 1, arg+1, nil)
		} else {
			s.PostAfter(5*Microsecond, h, 1, arg+1, nil)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = 10000
		for j := int64(0); j < 64; j++ {
			s.PostAfter(Time(j), h, 1, j, nil)
		}
		for s.Step() {
		}
	}
}

// handlerFunc adapts a function to Handler for tests.
type handlerFunc func(kind int32, arg int64, p any)

func (f handlerFunc) HandleEvent(kind int32, arg int64, p any) { f(kind, arg, p) }
