package des

import "testing"

func TestOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Drain(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Drain(100)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var s Scheduler
	var fired []Time
	s.After(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Drain(100)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPastEventsRunNow(t *testing.T) {
	var s Scheduler
	s.At(100, func() {})
	s.Step()
	ran := false
	s.At(50, func() { ran = true }) // in the past
	s.Step()
	if !ran || s.Now() != 100 {
		t.Fatalf("past event handling wrong: ran=%v now=%v", ran, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*Second, func() { count++ })
	}
	s.RunUntil(5 * Second)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if s.Now() != 5*Second {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Deadline with no events advances the clock.
	s.RunUntil(20 * Second)
	if count != 10 || s.Now() != 20*Second {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
}

func TestDrainCap(t *testing.T) {
	var s Scheduler
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		s.After(1, reschedule)
	}
	s.After(1, reschedule)
	if ran := s.Drain(50); ran != 50 {
		t.Fatalf("Drain ran %d events", ran)
	}
}

func TestStepEmpty(t *testing.T) {
	var s Scheduler
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}
