package des

import (
	"fmt"
	"runtime"
	"testing"
)

// runChurnTrace is runTrace plus scheduled runtime.GOMAXPROCS churn: churn
// value i is applied at virtual time (i+1)*deadline/(len(churn)+1) from an
// event handler, so the parallelism of the host changes mid-epoch while
// windows are in flight. Identical traces to the unchurned single-scheduler
// run prove the pool protocol is independent of how many OS threads the
// runtime gives it.
func runChurnTrace(t *testing.T, shards, workers int, gate gateKind, look, deadline Time, churn []int) [][]string {
	t.Helper()
	const nodesPerShard = 3
	sys := &traceSys{look: look}
	if workers == 0 {
		sys.single = &Scheduler{}
	} else {
		ss, err := newShardedGate(shards, look, workers, gate)
		if err != nil {
			t.Fatal(err)
		}
		sys.ss = ss
		defer ss.Close()
	}
	for i := 0; i < shards*nodesPerShard; i++ {
		sys.nodes = append(sys.nodes, &traceNode{id: i, shard: i % shards, budget: 200, sys: sys})
	}
	for _, n := range sys.nodes {
		at := Time(1 + n.id*7)
		if sys.ss == nil {
			sys.single.PostKeyed(at, n.key(), n, 0, 0, nil)
		} else {
			sys.ss.Shard(n.shard).PostKeyed(at, n.key(), n, 0, 0, nil)
		}
	}
	churnKey := uint64(0xC0FFEE) << 40
	churnH := HandlerFunc(func(_ int32, arg int64, _ any) {
		runtime.GOMAXPROCS(int(arg))
	})
	step := deadline / Time(len(churn)+1)
	for ci, v := range churn {
		at := step * Time(ci+1)
		if sys.ss == nil {
			sys.single.PostKeyed(at, churnKey, churnH, 9, int64(v), nil)
		} else {
			sys.ss.Shard(0).PostKeyed(at, churnKey, churnH, 9, int64(v), nil)
		}
	}
	if sys.ss == nil {
		sys.single.RunUntil(deadline)
	} else {
		sys.ss.RunUntil(deadline)
	}
	out := make([][]string, len(sys.nodes))
	for i, n := range sys.nodes {
		out[i] = n.trace
	}
	return out
}

// The pooled scheduler's per-node traces must be bit-identical while
// runtime.GOMAXPROCS churns 1→8→2 mid-epoch: parked workers, half-woken
// windows and barrier merges all keep executing correctly whatever thread
// budget the runtime grants, on both parking gates.
func TestShardedTraceIdentityUnderGOMAXPROCSChurn(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	churn := []int{1, 8, 2}
	for _, shards := range []int{3, 8} {
		ref := runChurnTrace(t, shards, 0, gateChan, 5, 100000, churn)
		for _, gate := range []gateKind{gateChan, gateCond} {
			for _, workers := range []int{2, 4, 8} {
				runtime.GOMAXPROCS(orig)
				got := runChurnTrace(t, shards, workers, gate, 5, 100000, churn)
				for nd := range ref {
					if len(got[nd]) != len(ref[nd]) {
						t.Fatalf("shards=%d gate=%d workers=%d node=%d: %d events vs %d single",
							shards, gate, workers, nd, len(got[nd]), len(ref[nd]))
					}
					for i := range ref[nd] {
						if got[nd][i] != ref[nd][i] {
							t.Fatalf("shards=%d gate=%d workers=%d node=%d: diverges at %d:\n  single:  %s\n  sharded: %s",
								shards, gate, workers, nd, i, ref[nd][i], got[nd][i])
						}
					}
				}
			}
		}
	}
}

// collideNode drives the adversarial same-time/different-key case: every
// sender shard fires in lockstep and posts TWO cross events into shard 0
// at the exact same virtual time — keys submitted in descending order, so
// the barrier must both re-order within one source queue and interleave
// across queues purely by key to match the single scheduler.
type collideNode struct {
	sys   *collideSys
	id    int
	shard int
	left  int
}

type collideSys struct {
	ss     *ShardedScheduler
	single *Scheduler
	look   Time
	period Time
	nodes  []*collideNode
	traces [][]string
}

func (c *collideNode) now() Time {
	if c.sys.ss != nil {
		return c.sys.ss.Shard(c.shard).Now()
	}
	return c.sys.single.Now()
}

func (c *collideNode) keyBase() uint64 { return uint64(c.id+1) << 32 }

func (c *collideNode) post(dst *collideNode, at Time, key uint64, kind int32, arg int64) {
	s := c.sys
	if s.ss == nil {
		s.single.PostKeyed(at, key, dst, kind, arg, nil)
	} else if dst.shard == c.shard {
		s.ss.Shard(c.shard).PostKeyed(at, key, dst, kind, arg, nil)
	} else {
		s.ss.PostCross(c.shard, dst.shard, at, key, dst, kind, arg, nil)
	}
}

func (c *collideNode) HandleEvent(kind int32, arg int64, _ any) {
	s := c.sys
	s.traces[c.id] = append(s.traces[c.id], fmt.Sprintf("t=%d id=%d kind=%d arg=%d", c.now(), c.id, kind, arg))
	if kind != 0 || c.left <= 0 {
		return
	}
	c.left--
	now := c.now()
	at := now + s.look
	recv := s.nodes[0]
	// Descending key submission at one collision instant.
	c.post(recv, at, c.keyBase()|2, 2, int64(c.id))
	c.post(recv, at, c.keyBase()|1, 1, int64(c.id))
	c.post(c, now+s.period, c.keyBase(), 0, arg+1)
}

func runCollideTrace(t *testing.T, shards, workers int, gate gateKind, rounds int) [][]string {
	t.Helper()
	const look, period = 8, 16
	s := &collideSys{look: look, period: period}
	if workers == 0 {
		s.single = &Scheduler{}
	} else {
		ss, err := newShardedGate(shards, look, workers, gate)
		if err != nil {
			t.Fatal(err)
		}
		s.ss = ss
		defer ss.Close()
	}
	// Node 0 is the receiver on shard 0; every other shard hosts one
	// lockstep sender.
	s.nodes = append(s.nodes, &collideNode{sys: s, id: 0, shard: 0})
	for sh := 1; sh < shards; sh++ {
		s.nodes = append(s.nodes, &collideNode{sys: s, id: sh, shard: sh, left: rounds})
	}
	s.traces = make([][]string, len(s.nodes))
	for _, n := range s.nodes[1:] {
		if s.ss == nil {
			s.single.PostKeyed(period, n.keyBase(), n, 0, 0, nil)
		} else {
			s.ss.Shard(n.shard).PostKeyed(period, n.keyBase(), n, 0, 0, nil)
		}
	}
	deadline := Time(rounds+4) * period
	if s.ss == nil {
		s.single.RunUntil(deadline)
	} else {
		s.ss.RunUntil(deadline)
	}
	return s.traces
}

// Same-time, different-key cross events from many shards into one — the
// worst case for the barrier's k-way merge — must land in exactly the
// single scheduler's (time, key) order at every worker count and gate.
func TestShardedCollidingCrossOrder(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		ref := runCollideTrace(t, shards, 0, gateChan, 120)
		if len(ref[0]) < 2*120 {
			t.Fatalf("shards=%d: receiver too quiet (%d events)", shards, len(ref[0]))
		}
		for _, gate := range []gateKind{gateChan, gateCond} {
			for _, workers := range []int{1, 2, 4, 8} {
				got := runCollideTrace(t, shards, workers, gate, 120)
				for nd := range ref {
					if len(got[nd]) != len(ref[nd]) {
						t.Fatalf("shards=%d gate=%d workers=%d node=%d: %d events vs %d single",
							shards, gate, workers, nd, len(got[nd]), len(ref[nd]))
					}
					for i := range ref[nd] {
						if got[nd][i] != ref[nd][i] {
							t.Fatalf("shards=%d gate=%d workers=%d node=%d: diverges at %d:\n  single:  %s\n  sharded: %s",
								shards, gate, workers, nd, i, ref[nd][i], got[nd][i])
						}
					}
				}
			}
		}
	}
}

// TestShardedPoolChurnSoak is the -race CI job's pooled-scheduler soak:
// window batching and barrier merges under GOMAXPROCS churn and colliding
// cross traffic, on both gates, at full concurrency.
func TestShardedPoolChurnSoak(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, gate := range []gateKind{gateChan, gateCond} {
		runChurnTrace(t, 8, 8, gate, 5, 150000, []int{1, 8, 2, 8, 1, 4})
		runtime.GOMAXPROCS(orig)
		runCollideTrace(t, 8, 8, gate, 200)
	}
}

// Close must release the pool, and the scheduler must keep working after
// it (a fresh pool spins up on demand).
func TestShardedClose(t *testing.T) {
	for _, gate := range []gateKind{gateChan, gateCond} {
		ss, err := newShardedGate(4, 5, 4, gate)
		if err != nil {
			t.Fatal(err)
		}
		relay := newRelayRing(ss)
		ss.RunUntil(10000)
		if ss.pool == nil {
			t.Fatalf("gate=%d: pool never started", gate)
		}
		ss.Close()
		if ss.pool != nil {
			t.Fatalf("gate=%d: pool survives Close", gate)
		}
		ss.RunUntil(20000)
		if ss.pool == nil {
			t.Fatalf("gate=%d: pool not recreated after Close", gate)
		}
		if relay.total() == 0 {
			t.Fatalf("gate=%d: relay ring never ran", gate)
		}
		ss.Close()
		ss.Close() // idempotent
	}
}

// relayRing seeds every shard with a self-perpetuating cross-relay to its
// neighbour at exactly the lookahead bound — the densest possible window
// cadence, with every window busy on all shards and every barrier
// carrying cross traffic. It is the pool's worst case and the gate
// benchmark's workload.
type relayRing struct {
	ss        *ShardedScheduler
	ringNodes []*relayNode
}

type relayNode struct {
	ring  *relayRing
	shard int
	hops  int64 // per-node, single-writer: only this shard's goroutine
}

func (r *relayNode) HandleEvent(kind int32, arg int64, _ any) {
	r.hops++
	ss := r.ring.ss
	next := (r.shard + 1) % ss.Shards()
	at := ss.Shard(r.shard).Now() + ss.Lookahead()
	ss.PostCross(r.shard, next, at, uint64(r.shard+1)<<32, r.ring.ringNodes[next], kind, arg+1, nil)
}

// total sums per-node hop counts; only valid between RunUntil calls.
func (rr *relayRing) total() int64 {
	var n int64
	for _, nd := range rr.ringNodes {
		n += nd.hops
	}
	return n
}

func newRelayRing(ss *ShardedScheduler) *relayRing {
	rr := &relayRing{ss: ss}
	rr.ringNodes = make([]*relayNode, ss.Shards())
	for i := range rr.ringNodes {
		rr.ringNodes[i] = &relayNode{ring: rr, shard: i}
	}
	for i := range rr.ringNodes {
		ss.Shard(i).PostKeyed(Time(1), uint64(i+1)<<32, rr.ringNodes[i], 0, 0, nil)
	}
	return rr
}

// Steady-state windows and barriers must be allocation-free: after warmup
// the relay ring's cross queues, merge scratch and scheduler lanes are all
// recycled, so a full window cadence runs at zero allocs per window.
func TestShardedWindowAllocs(t *testing.T) {
	ss, err := NewSharded(4, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	newRelayRing(ss)
	var deadline Time = 20000
	ss.RunUntil(deadline) // warm pool, queues, lanes
	const span = 5000     // ~1000 windows per run
	allocs := testing.AllocsPerRun(5, func() {
		deadline += span
		ss.RunUntil(deadline)
	})
	if allocs > 8 {
		t.Fatalf("sharded window steady state allocates: %.1f allocs per %d-window run", allocs, span/5)
	}
	t.Logf("steady-state allocs per ~%d windows: %.1f", span/5, allocs)
}

// BenchmarkShardedGate compares the two pool parking primitives on the
// relay ring: every op is ~200 windows, each waking workers, claiming
// four shards, and merging four cross queues. The winner is the default
// gate in NewSharded; DESIGN.md records the measured numbers.
func BenchmarkShardedGate(b *testing.B) {
	for _, bc := range []struct {
		name string
		gate gateKind
	}{{"chan", gateChan}, {"cond", gateCond}} {
		b.Run(bc.name, func(b *testing.B) {
			ss, err := newShardedGate(4, 5, 4, bc.gate)
			if err != nil {
				b.Fatal(err)
			}
			defer ss.Close()
			newRelayRing(ss)
			ss.RunUntil(1000)
			b.ReportAllocs()
			b.ResetTimer()
			deadline := Time(1000)
			for i := 0; i < b.N; i++ {
				deadline += 1000
				ss.RunUntil(deadline)
			}
		})
	}
}
