package des

import (
	"fmt"
	"testing"
)

// traceNode is a deterministic little state machine living on one shard:
// each event it handles appends to its own per-node trace and posts
// follow-up events — some to its own shard, some to a peer at >= lookahead
// — from a counter-based pseudo-random sequence. Running the same node set
// on a single scheduler and on a sharded one must produce identical
// per-node traces: same events at the same virtual times in the same
// causal order. (A global wall-clock interleaving across shards is NOT
// part of the contract — parallel windows run shard-local state only, and
// the packet plane merges shard state canonically at barriers.)
type traceNode struct {
	id     int
	shard  int
	budget int
	trace  []string
	sys    *traceSys
}

type traceSys struct {
	nodes  []*traceNode
	single *Scheduler
	ss     *ShardedScheduler
	look   Time
}

func (n *traceNode) key() uint64 { return uint64(n.id+1) << 32 }

func (n *traceNode) now() Time {
	if n.sys.ss != nil {
		return n.sys.ss.Shard(n.shard).Now()
	}
	return n.sys.single.Now()
}

// post sends a keyed event to dst at absolute time t, routing through the
// right scheduler for the current mode. The key is the POSTING node's —
// the contract keys encode origin, not destination: every key must have a
// single posting shard, or the barrier merge could order same-key events
// from different shards differently than a single scheduler's seq numbers
// would (the fabric keys deliveries by link, whose upstream switch is one
// shard; the cluster keys timers and starts by the owning host).
func (n *traceNode) post(dst *traceNode, t Time, kind int32, arg int64) {
	if n.sys.ss == nil {
		n.sys.single.PostKeyed(t, n.key(), dst, kind, arg, nil)
	} else if dst.shard == n.shard {
		n.sys.ss.Shard(n.shard).PostKeyed(t, n.key(), dst, kind, arg, nil)
	} else {
		n.sys.ss.PostCross(n.shard, dst.shard, t, n.key(), dst, kind, arg, nil)
	}
}

func (n *traceNode) HandleEvent(kind int32, arg int64, _ any) {
	s := n.sys
	n.trace = append(n.trace, fmt.Sprintf("t=%d node=%d kind=%d arg=%d", n.now(), n.id, kind, arg))
	if n.budget <= 0 {
		return
	}
	n.budget--
	// Counter-based branching: derived from (node, kind, arg) only, so both
	// modes take identical decisions.
	h := uint64(n.id)*0x9e3779b97f4a7c15 + uint64(kind)*0x632be59bd9b4e019 + uint64(arg)*0xd6e8feb86659fd93
	now := n.now()
	switch h % 4 {
	case 0: // same-shard follow-up, sub-lookahead gap
		n.post(n, now+1, 1, arg+1)
	case 1: // same-shard simultaneous event on a peer of the same shard
		peer := s.nodes[(n.id+2)%len(s.nodes)]
		if peer.shard == n.shard {
			n.post(peer, now+2, 2, arg+1)
		} else {
			n.post(n, now+2, 2, arg+1)
		}
	case 2: // cross-shard post at exactly the lookahead bound
		peer := s.nodes[(n.id+1)%len(s.nodes)]
		n.post(peer, now+s.look, 3, arg+1)
	case 3: // cross-shard post well beyond the lookahead
		peer := s.nodes[(n.id+3)%len(s.nodes)]
		n.post(peer, now+3*s.look+1, 4, arg+1)
	}
}

// runTrace executes the node system to the deadline in the requested mode
// and returns the per-node traces.
func runTrace(t *testing.T, shards, workers int, look Time, deadline Time) [][]string {
	t.Helper()
	const nodesPerShard = 3
	sys := &traceSys{look: look}
	if workers == 0 {
		sys.single = &Scheduler{}
	} else {
		ss, err := NewSharded(shards, look, workers)
		if err != nil {
			t.Fatal(err)
		}
		sys.ss = ss
	}
	for i := 0; i < shards*nodesPerShard; i++ {
		sys.nodes = append(sys.nodes, &traceNode{id: i, shard: i % shards, budget: 200, sys: sys})
	}
	// Seed every node with one initial event; stagger times so shards start
	// at different clocks.
	for _, n := range sys.nodes {
		at := Time(1 + n.id*7)
		if sys.ss == nil {
			sys.single.PostKeyed(at, n.key(), n, 0, 0, nil)
		} else {
			sys.ss.Shard(n.shard).PostKeyed(at, n.key(), n, 0, 0, nil)
		}
	}
	if sys.ss == nil {
		sys.single.RunUntil(deadline)
		if got := sys.single.Now(); got != deadline {
			t.Fatalf("single clock %d after RunUntil(%d)", got, deadline)
		}
	} else {
		sys.ss.RunUntil(deadline)
		if got := sys.ss.Now(); got != deadline {
			t.Fatalf("sharded clock %d after RunUntil(%d)", got, deadline)
		}
	}
	out := make([][]string, len(sys.nodes))
	for i, n := range sys.nodes {
		out[i] = n.trace
	}
	return out
}

// The sharded scheduler must hand every node the exact event sequence a
// single scheduler would — same events, same virtual times, same causal
// order per node — at every worker count, for several shard counts and
// lookaheads.
func TestShardedTraceIdentity(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		for _, look := range []Time{5, 64} {
			ref := runTrace(t, shards, 0, look, 100000)
			total := 0
			for _, tr := range ref {
				total += len(tr)
			}
			if total < 100*shards {
				t.Fatalf("shards=%d look=%d: fixture too quiet (%d events)", shards, look, total)
			}
			for _, workers := range []int{1, 2, 4} {
				got := runTrace(t, shards, workers, look, 100000)
				for nd := range ref {
					if len(got[nd]) != len(ref[nd]) {
						t.Fatalf("shards=%d look=%d workers=%d node=%d: %d events vs %d single",
							shards, look, workers, nd, len(got[nd]), len(ref[nd]))
					}
					for i := range ref[nd] {
						if got[nd][i] != ref[nd][i] {
							t.Fatalf("shards=%d look=%d workers=%d node=%d: trace diverges at %d:\n  single:  %s\n  sharded: %s",
								shards, look, workers, nd, i, ref[nd][i], got[nd][i])
						}
					}
				}
			}
		}
	}
}

func TestNewShardedRejectsBadConfig(t *testing.T) {
	if _, err := NewSharded(0, 5, 1); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewSharded(2, 0, 1); err == nil {
		t.Fatal("zero lookahead accepted")
	}
	if _, err := NewSharded(2, -3, 1); err == nil {
		t.Fatal("negative lookahead accepted")
	}
	ss, err := NewSharded(2, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Workers() != 2 {
		t.Fatalf("workers not clamped: %d", ss.Workers())
	}
	if ss.Shards() != 2 || ss.Lookahead() != 5 {
		t.Fatalf("accessors: shards=%d lookahead=%d", ss.Shards(), ss.Lookahead())
	}
}

// A cross-shard event landing exactly on a shard's window horizon must not
// run inside that window (RunBefore is strict): seed two shards where B's
// only event sits exactly at A's next-event + lookahead and check order.
func TestShardedWindowEdge(t *testing.T) {
	ss, err := NewSharded(2, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	a := HandlerFunc(func(kind int32, arg int64, _ any) {
		order = append(order, fmt.Sprintf("a@%d", ss.Shard(0).Now()))
		if kind == 0 {
			// Cross post at exactly now+lookahead: the earliest legal time.
			ss.PostCross(0, 1, ss.Shard(0).Now()+10, 7, HandlerFunc(func(int32, int64, any) {
				order = append(order, fmt.Sprintf("b@%d", ss.Shard(1).Now()))
			}), 1, 0, nil)
		}
	})
	ss.Shard(0).PostKeyed(5, 3, a, 0, 0, nil)
	// B also holds its own event at the same time the cross event will land
	// (15), with a higher key — the cross event must run first.
	ss.Shard(1).PostKeyed(15, 9, HandlerFunc(func(int32, int64, any) {
		order = append(order, fmt.Sprintf("b2@%d", ss.Shard(1).Now()))
	}), 2, 0, nil)
	ss.RunUntil(100)
	want := []string{"a@5", "b@15", "b2@15"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestShardedSoak drives a dense eight-shard trace at full concurrency —
// chiefly for the -race CI job, which runs it short to hunt interleavings
// in the window/barrier protocol.
func TestShardedSoak(t *testing.T) {
	runTrace(t, 8, 8, 5, 200000)
}

// HandlerFunc adapts a func to the Handler interface for tests.
type HandlerFunc func(kind int32, arg int64, p any)

func (f HandlerFunc) HandleEvent(kind int32, arg int64, p any) { f(kind, arg, p) }
