package des

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedScheduler runs N inner Schedulers under conservative parallel
// discrete-event simulation. The caller partitions the emulated system into
// shards (the packet plane shards by pod) such that every cross-shard
// interaction is an event posted at least `lookahead` after the event that
// caused it — in the fabric, the link propagation delay on every
// inter-pod hop. That guaranteed gap is what lets each shard advance
// independently inside a delay-bounded window and synchronize only at
// window boundaries.
//
// The window protocol, per RunUntil iteration:
//
//  1. Every shard i gets its own horizon from its peers' earliest possible
//     activity. A peer j cannot execute anything before
//     lbts_j = min(nextAt_j, m+lookahead), where m is the global minimum
//     next-event time: either its own queue head fires, or the earliest
//     cross event any shard could emit this cycle (≥ m+lookahead) reaches
//     it. Everything j emits lands ≥ lookahead later still, so
//     horizon_i = min over j≠i of lbts_j + lookahead (capped at the
//     deadline) bounds every future arrival into i. The lbts cap is what
//     keeps relay chains safe: a shard with an empty or far-future queue
//     can still be WOKEN by a cross event and answer — bounding it by its
//     own queue alone would let its peers run past the reply. With a
//     single shard no cross traffic exists and the window is unbounded.
//  2. Shards with work strictly before their horizon run concurrently
//     (RunBefore); each buffers its cross-shard posts into a private
//     per-(src,dst) queue — single writer, no locks.
//  3. At the barrier the driver drains the queues into the destination
//     shards in deterministic (time, key, source submission) order. Keys
//     make the merge unambiguous: simultaneous same-key events always come
//     from one origin, and one origin lives on one shard, so the stable
//     sort by (time, key) is a total order independent of which goroutine
//     finished first — and identical to the order a single scheduler
//     would have used.
//
// Worker count only bounds concurrency; it never affects the event order,
// which is why epochs are bit-identical at any worker count.
type ShardedScheduler struct {
	shards    []*Scheduler
	lookahead Time
	workers   int

	// cross[src*n+dst] buffers shard src's posts into shard dst during a
	// window; only src's goroutine appends, only the barrier drains.
	cross [][]xevent
	// merge is the barrier's scratch: per-destination collected posts,
	// insertion-sorted by (at, key) — stable, so same-origin posts keep
	// their source submission order.
	merge []xevent
	// busy is the window scratch of shards scheduled to run.
	busy []int32
	// horizons[i] is shard i's current window horizon.
	horizons []Time
}

// NewSharded builds a sharded scheduler. lookahead must be positive: a
// zero-lookahead system has no guaranteed gap between cause and cross-shard
// effect, so no window is safe to run concurrently and conservative
// parallel execution is impossible — reject it loudly rather than produce
// subtly reordered epochs. workers is clamped to [1, shards].
func NewSharded(shards int, lookahead Time, workers int) (*ShardedScheduler, error) {
	if shards < 1 {
		return nil, fmt.Errorf("des: NewSharded needs at least 1 shard, got %d", shards)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("des: NewSharded needs positive lookahead, got %d", lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	ss := &ShardedScheduler{
		shards:    make([]*Scheduler, shards),
		lookahead: lookahead,
		workers:   workers,
		cross:     make([][]xevent, shards*shards),
		horizons:  make([]Time, shards),
	}
	for i := range ss.shards {
		ss.shards[i] = &Scheduler{}
	}
	return ss, nil
}

// xevent is one buffered cross-shard post.
type xevent struct {
	at   Time
	key  uint64
	arg  int64
	h    Handler
	p    any
	kind int32
}

// Shards returns the shard count.
func (ss *ShardedScheduler) Shards() int { return len(ss.shards) }

// Workers returns the concurrency bound.
func (ss *ShardedScheduler) Workers() int { return ss.workers }

// Lookahead returns the guaranteed cross-shard delay the windows rely on.
func (ss *ShardedScheduler) Lookahead() Time { return ss.lookahead }

// Shard returns inner scheduler i, for setup-time posting and per-shard
// clock reads. During RunUntil a shard's scheduler may only be touched
// from that shard's own event handlers.
func (ss *ShardedScheduler) Shard(i int) *Scheduler { return ss.shards[i] }

// Now returns the globally safe virtual time: the minimum shard clock.
// Between RunUntil calls all clocks agree (the driver advances every shard
// to the deadline), so this is simply "the" time.
func (ss *ShardedScheduler) Now() Time {
	now := ss.shards[0].Now()
	for _, s := range ss.shards[1:] {
		if t := s.Now(); t < now {
			now = t
		}
	}
	return now
}

// PostCross buffers a keyed typed event from shard src's execution context
// into shard dst. It must only be called from an event handler currently
// running on shard src (or between RunUntil calls), and t must be at least
// lookahead after src's clock — the conservative contract. Same-shard
// posts should go directly to Shard(src).
func (ss *ShardedScheduler) PostCross(src, dst int, t Time, key uint64, h Handler, kind int32, arg int64, p any) {
	if h == nil {
		panic("des: PostCross with nil Handler")
	}
	q := src*len(ss.shards) + dst
	ss.cross[q] = append(ss.cross[q], xevent{at: t, key: key, arg: arg, h: h, p: p, kind: kind})
}

// RunUntil executes events on every shard until no shard holds an event at
// or before deadline, then advances every shard clock to the deadline —
// the sharded equivalent of Scheduler.RunUntil.
func (ss *ShardedScheduler) RunUntil(deadline Time) {
	for {
		// Global minimum next-event time decides whether work remains.
		var m Time
		found := false
		for _, s := range ss.shards {
			if t, ok := s.NextEventAt(); ok && (!found || t < m) {
				m, found = t, true
			}
		}
		if !found || m > deadline {
			break
		}
		// Per-shard horizons: min over peers of lbts_j + lookahead, where
		// lbts_j = min(nextAt_j, m+lookahead) is the earliest time shard j
		// could execute anything this cycle — its own queue head, or a
		// relayed cross event. deadline+1 caps the window (RunBefore is
		// strict, so events at exactly deadline still run, matching
		// RunUntil). The global-min shard's horizon is always at least
		// m+lookahead > m, so every window makes progress.
		wake := m + ss.lookahead
		ss.busy = ss.busy[:0]
		for i, s := range ss.shards {
			t, ok := s.NextEventAt()
			if !ok || t > deadline {
				continue
			}
			h := deadline + 1
			for j, o := range ss.shards {
				if j == i {
					continue
				}
				lb := wake
				if ot, ok := o.NextEventAt(); ok && ot < lb {
					lb = ot
				}
				if lb+ss.lookahead < h {
					h = lb + ss.lookahead
				}
			}
			if t < h {
				ss.horizons[i] = h
				ss.busy = append(ss.busy, int32(i))
			}
		}
		if len(ss.busy) == 0 {
			// Every runnable shard is blocked at its horizon; cannot happen
			// (the global-min shard's horizon is > its next event), but a
			// stall here would loop forever — fail loudly instead.
			panic("des: sharded window stalled")
		}
		ss.runWindow()
		ss.flush()
	}
	for _, s := range ss.shards {
		if s.now < deadline {
			s.now = deadline
		}
	}
}

// runWindow executes every busy shard up to its horizon, concurrently when
// more than one shard has work and workers allow.
func (ss *ShardedScheduler) runWindow() {
	if len(ss.busy) == 1 || ss.workers == 1 {
		for _, i := range ss.busy {
			ss.shards[i].RunBefore(ss.horizons[i])
		}
		return
	}
	var next atomic.Int32
	run := func() {
		for {
			k := int(next.Add(1)) - 1
			if k >= len(ss.busy) {
				return
			}
			i := ss.busy[k]
			ss.shards[i].RunBefore(ss.horizons[i])
		}
	}
	w := ss.workers
	if w > len(ss.busy) {
		w = len(ss.busy)
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 0; g < w-1; g++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}

// flush drains the window's cross-shard buffers into their destination
// shards in deterministic (time, key, source submission) order.
func (ss *ShardedScheduler) flush() {
	n := len(ss.shards)
	for dst := 0; dst < n; dst++ {
		ss.merge = ss.merge[:0]
		for src := 0; src < n; src++ {
			q := src*n + dst
			if len(ss.cross[q]) == 0 {
				continue
			}
			// Stable insertion by (at, key): simultaneous same-key events
			// come from one origin and therefore one source queue, so
			// preserving per-queue order under the stable insert yields the
			// same total order a single scheduler's seq numbers would.
			for _, e := range ss.cross[q] {
				k := len(ss.merge)
				ss.merge = append(ss.merge, e)
				for k > 0 && (e.at < ss.merge[k-1].at ||
					(e.at == ss.merge[k-1].at && e.key < ss.merge[k-1].key)) {
					ss.merge[k] = ss.merge[k-1]
					k--
				}
				ss.merge[k] = e
			}
			// Zero the drained queue so buffers are not pinned.
			for j := range ss.cross[q] {
				ss.cross[q][j] = xevent{}
			}
			ss.cross[q] = ss.cross[q][:0]
		}
		d := ss.shards[dst]
		for _, e := range ss.merge {
			if e.at < d.now {
				panic(fmt.Sprintf("des: flush into past: event at %d, dst clock %d", e.at, d.now))
			}
			d.push(e.at, e.key, e.h, e.kind, e.arg, e.p)
		}
	}
	for j := range ss.merge {
		ss.merge[j] = xevent{}
	}
	ss.merge = ss.merge[:0]
}
