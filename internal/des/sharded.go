package des

import (
	"fmt"
)

// ShardedScheduler runs N inner Schedulers under conservative parallel
// discrete-event simulation. The caller partitions the emulated system into
// shards (the packet plane shards by pod) such that every cross-shard
// interaction is an event posted at least `lookahead` after the event that
// caused it — in the fabric, the link propagation delay on every
// inter-pod hop. That guaranteed gap is what lets each shard advance
// independently inside a delay-bounded window and synchronize only at
// window boundaries.
//
// The window protocol, per RunUntil iteration:
//
//  1. Every shard i gets its own horizon from its peers' earliest possible
//     activity. A peer j cannot execute anything before
//     lbts_j = min(nextAt_j, m+lookahead), where m is the global minimum
//     next-event time: either its own queue head fires, or the earliest
//     cross event any shard could emit this cycle (≥ m+lookahead) reaches
//     it. Everything j emits lands ≥ lookahead later still, so
//     horizon_i = min over j≠i of lbts_j + lookahead (capped at the
//     deadline) bounds every future arrival into i. The lbts cap is what
//     keeps relay chains safe: a shard with an empty or far-future queue
//     can still be WOKEN by a cross event and answer — bounding it by its
//     own queue alone would let its peers run past the reply. With a
//     single shard no cross traffic exists and the window is unbounded.
//     The min-over-peers is computed once per window from the global min
//     and second-min of lbts (horizon_i is m1+lookahead for every shard
//     except the argmin, which gets m2+lookahead), and nextAt is cached
//     incrementally: only shards that ran in the last window or received
//     its flushed cross events can have changed their queue head, so the
//     driver refreshes exactly those entries instead of rescanning all
//     shards every window.
//  2. Shards with work strictly before their horizon run concurrently
//     (RunBefore) on a persistent worker pool — workers park on a wake
//     gate between windows and claim busy shards from a shared atomic
//     ticket, so a window costs two atomic ops per shard instead of a
//     goroutine spawn. RunBefore is itself the batch step: a shard runs
//     every event inside its horizon without re-checking any global
//     state. Each shard buffers its cross-shard posts into a private
//     per-(src,dst) queue — single writer, no locks.
//  3. At the barrier the same pool drains the queues into the destination
//     shards in deterministic (time, key, source submission) order, one
//     worker per destination. Keys make the merge unambiguous:
//     simultaneous same-key events always come from one origin, and one
//     origin lives on one shard, so a k-way merge of the per-source
//     queues by (time, key) — each queue first stable-sorted by the same
//     relation, preserving submission order on ties — is a total order
//     independent of which goroutine finished first, and identical to
//     the order a single scheduler's seq numbers would have produced.
//
// Worker count only bounds concurrency; it never affects the event order,
// which is why epochs are bit-identical at any worker count.
type ShardedScheduler struct {
	shards    []*Scheduler
	lookahead Time
	workers   int
	gate      gateKind

	// cross[src*n+dst] buffers shard src's posts into shard dst during a
	// window; only src's goroutine appends, only the barrier drains.
	cross [][]xevent
	// touched[src] lists the destinations src posted to since the last
	// barrier (appended on first post into an empty queue), so the flush
	// does work proportional to actual cross traffic instead of scanning
	// all n² queues; cross-free windows skip the barrier entirely.
	touched [][]int32
	// inbound[dst] is the barrier's per-destination source list, built
	// serially from touched before the parallel merge phase.
	inbound [][]int32
	// mhead[dst] is merge scratch: the per-source queue cursor.
	mhead [][]int32
	// flushDst is the window's list of destinations with inbound events.
	flushDst []int32
	// busy is the window scratch of shards scheduled to run.
	busy []int32
	// horizons[i] is shard i's current window horizon.
	horizons []Time

	// nextAt/hasNext cache each shard's queue-head time between windows;
	// refreshed in full at RunUntil entry and incrementally afterwards.
	nextAt  []Time
	hasNext []bool

	// pool is the persistent worker pool, created on the first window that
	// can actually use more than one goroutine. Its workers are daemons:
	// they park on the gate between windows and live until Close.
	pool *shardPool
}

// NewSharded builds a sharded scheduler. lookahead must be positive: a
// zero-lookahead system has no guaranteed gap between cause and cross-shard
// effect, so no window is safe to run concurrently and conservative
// parallel execution is impossible — reject it loudly rather than produce
// subtly reordered epochs. workers is clamped to [1, shards].
func NewSharded(shards int, lookahead Time, workers int) (*ShardedScheduler, error) {
	return newShardedGate(shards, lookahead, workers, gateChan)
}

// newShardedGate is NewSharded with an explicit pool parking primitive,
// used by benchmarks to compare the channel and sync.Cond gates.
func newShardedGate(shards int, lookahead Time, workers int, gate gateKind) (*ShardedScheduler, error) {
	if shards < 1 {
		return nil, fmt.Errorf("des: NewSharded needs at least 1 shard, got %d", shards)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("des: NewSharded needs positive lookahead, got %d", lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	ss := &ShardedScheduler{
		shards:    make([]*Scheduler, shards),
		lookahead: lookahead,
		workers:   workers,
		gate:      gate,
		cross:     make([][]xevent, shards*shards),
		touched:   make([][]int32, shards),
		inbound:   make([][]int32, shards),
		mhead:     make([][]int32, shards),
		horizons:  make([]Time, shards),
		nextAt:    make([]Time, shards),
		hasNext:   make([]bool, shards),
	}
	for i := range ss.shards {
		ss.shards[i] = &Scheduler{}
	}
	return ss, nil
}

// xevent is one buffered cross-shard post.
type xevent struct {
	at   Time
	key  uint64
	arg  int64
	h    Handler
	p    any
	kind int32
}

// Shards returns the shard count.
func (ss *ShardedScheduler) Shards() int { return len(ss.shards) }

// Workers returns the concurrency bound.
func (ss *ShardedScheduler) Workers() int { return ss.workers }

// Lookahead returns the guaranteed cross-shard delay the windows rely on.
func (ss *ShardedScheduler) Lookahead() Time { return ss.lookahead }

// Shard returns inner scheduler i, for setup-time posting and per-shard
// clock reads. During RunUntil a shard's scheduler may only be touched
// from that shard's own event handlers.
func (ss *ShardedScheduler) Shard(i int) *Scheduler { return ss.shards[i] }

// Close releases the persistent worker pool, if one was ever started. The
// scheduler remains usable afterwards (a new pool is created on demand);
// Close exists so tests and short-lived embedders do not accumulate parked
// daemon goroutines. It must not be called concurrently with RunUntil.
func (ss *ShardedScheduler) Close() {
	if ss.pool != nil {
		ss.pool.close()
		ss.pool = nil
	}
}

// Now returns the globally safe virtual time: the minimum shard clock.
// Between RunUntil calls all clocks agree (the driver advances every shard
// to the deadline), so this is simply "the" time.
func (ss *ShardedScheduler) Now() Time {
	now := ss.shards[0].Now()
	for _, s := range ss.shards[1:] {
		if t := s.Now(); t < now {
			now = t
		}
	}
	return now
}

// PostCross buffers a keyed typed event from shard src's execution context
// into shard dst. It must only be called from an event handler currently
// running on shard src (or between RunUntil calls), and t must be at least
// lookahead after src's clock — the conservative contract. Same-shard
// posts should go directly to Shard(src).
func (ss *ShardedScheduler) PostCross(src, dst int, t Time, key uint64, h Handler, kind int32, arg int64, p any) {
	if h == nil {
		panic("des: PostCross with nil Handler")
	}
	q := src*len(ss.shards) + dst
	if len(ss.cross[q]) == 0 {
		ss.touched[src] = append(ss.touched[src], int32(dst))
	}
	ss.cross[q] = append(ss.cross[q], xevent{at: t, key: key, arg: arg, h: h, p: p, kind: kind})
}

// tMax is an unreachable virtual time, used as the min-scan sentinel.
const tMax = Time(1) << 62

// RunUntil executes events on every shard until no shard holds an event at
// or before deadline, then advances every shard clock to the deadline —
// the sharded equivalent of Scheduler.RunUntil.
func (ss *ShardedScheduler) RunUntil(deadline Time) {
	// Seed the queue-head cache; the loop maintains it incrementally.
	for i, s := range ss.shards {
		ss.nextAt[i], ss.hasNext[i] = s.NextEventAt()
	}
	for {
		// Global minimum next-event time decides whether work remains.
		m := tMax
		for i := range ss.shards {
			if ss.hasNext[i] && ss.nextAt[i] < m {
				m = ss.nextAt[i]
			}
		}
		if m == tMax || m > deadline {
			break
		}
		// Per-shard horizons from the min and second-min of lbts over all
		// shards: horizon_i = (min over j≠i of lbts_j) + lookahead, which
		// is m1+lookahead for every i except the argmin of lbts, which
		// gets m2+lookahead. deadline+1 caps the window (RunBefore is
		// strict, so events at exactly deadline still run, matching
		// RunUntil). The global-min shard's horizon is always at least
		// m+lookahead > m, so every window makes progress.
		wake := m + ss.lookahead
		m1, m2 := tMax, tMax
		arg1 := -1
		for j := range ss.shards {
			lb := wake
			if ss.hasNext[j] && ss.nextAt[j] < lb {
				lb = ss.nextAt[j]
			}
			if lb < m1 {
				m1, m2, arg1 = lb, m1, j
			} else if lb < m2 {
				m2 = lb
			}
		}
		ss.busy = ss.busy[:0]
		for i := range ss.shards {
			if !ss.hasNext[i] || ss.nextAt[i] > deadline {
				continue
			}
			peer := m1
			if i == arg1 {
				peer = m2
			}
			h := deadline + 1
			if peer != tMax && peer+ss.lookahead < h {
				h = peer + ss.lookahead
			}
			if ss.nextAt[i] < h {
				ss.horizons[i] = h
				ss.busy = append(ss.busy, int32(i))
			}
		}
		if len(ss.busy) == 0 {
			// Every runnable shard is blocked at its horizon; cannot happen
			// (the global-min shard's horizon is > its next event), but a
			// stall here would loop forever — fail loudly instead.
			panic("des: sharded window stalled")
		}
		ss.runWindow()
		ss.flush()
		// Only shards that ran or received flushed events can have a
		// changed queue head; refresh exactly those cache entries.
		for _, i := range ss.busy {
			ss.nextAt[i], ss.hasNext[i] = ss.shards[i].NextEventAt()
		}
		for _, d := range ss.flushDst {
			ss.nextAt[d], ss.hasNext[d] = ss.shards[d].NextEventAt()
		}
	}
	for _, s := range ss.shards {
		if s.now < deadline {
			s.now = deadline
		}
	}
}

// runWindow executes every busy shard up to its horizon, on the persistent
// pool when more than one shard has work and workers allow.
func (ss *ShardedScheduler) runWindow() {
	if len(ss.busy) == 1 || ss.workers == 1 {
		for _, i := range ss.busy {
			ss.shards[i].RunBefore(ss.horizons[i])
		}
		return
	}
	ss.ensurePool()
	ss.pool.dispatch(phaseWindow, len(ss.busy))
}

// flush drains the window's cross-shard buffers into their destination
// shards in deterministic (time, key, source submission) order. The
// per-destination merges touch disjoint state (the destination's scheduler
// and its inbound queues), so they run on the pool when several
// destinations have traffic.
func (ss *ShardedScheduler) flush() {
	ss.flushDst = ss.flushDst[:0]
	for src := range ss.touched {
		lst := ss.touched[src]
		if len(lst) == 0 {
			continue
		}
		for _, dst := range lst {
			if len(ss.inbound[dst]) == 0 {
				ss.flushDst = append(ss.flushDst, dst)
			}
			ss.inbound[dst] = append(ss.inbound[dst], int32(src))
		}
		ss.touched[src] = lst[:0]
	}
	switch {
	case len(ss.flushDst) == 0:
		return
	case len(ss.flushDst) == 1 || ss.workers == 1:
		for _, d := range ss.flushDst {
			ss.mergeInto(int(d))
		}
	default:
		ss.ensurePool()
		ss.pool.dispatch(phaseFlush, len(ss.flushDst))
	}
}

// mergeInto k-way merges every pending source queue for destination dst
// into its scheduler, in (time, key, source submission) order. Only one
// goroutine merges a given destination per barrier, so pushes into the
// destination scheduler are single-writer. Drained queue entries keep
// their value fields and only drop the pointer fields (h, p) — the
// backing arrays are recycled, and unpinning the payloads is all the
// zeroing that matters.
func (ss *ShardedScheduler) mergeInto(dst int) {
	n := len(ss.shards)
	srcs := ss.inbound[dst]
	d := ss.shards[dst]
	if len(srcs) == 1 {
		q := int(srcs[0])*n + dst
		ev := ss.cross[q]
		sortXQueue(ev)
		for i := range ev {
			e := &ev[i]
			if e.at < d.now {
				panic(fmt.Sprintf("des: flush into past: event at %d, dst clock %d", e.at, d.now))
			}
			d.push(e.at, e.key, e.h, e.kind, e.arg, e.p)
			e.h, e.p = nil, nil
		}
		ss.cross[q] = ev[:0]
		ss.inbound[dst] = srcs[:0]
		return
	}
	// Sort each source queue by (at, key) — stable, preserving submission
	// order on ties — then merge across queue heads. Same-(at,key) events
	// always share an origin and therefore a queue, so the cross-queue
	// comparison never ties and the merge is a total order.
	heads := ss.mhead[dst][:0]
	for _, src := range srcs {
		sortXQueue(ss.cross[int(src)*n+dst])
		heads = append(heads, 0)
	}
	for {
		best := -1
		var bt Time
		var bk uint64
		for si, src := range srcs {
			q := ss.cross[int(src)*n+dst]
			hd := int(heads[si])
			if hd >= len(q) {
				continue
			}
			e := &q[hd]
			if best < 0 || e.at < bt || (e.at == bt && e.key < bk) {
				best, bt, bk = si, e.at, e.key
			}
		}
		if best < 0 {
			break
		}
		q := ss.cross[int(srcs[best])*n+dst]
		e := &q[heads[best]]
		if e.at < d.now {
			panic(fmt.Sprintf("des: flush into past: event at %d, dst clock %d", e.at, d.now))
		}
		d.push(e.at, e.key, e.h, e.kind, e.arg, e.p)
		e.h, e.p = nil, nil
		heads[best]++
	}
	for _, src := range srcs {
		q := int(src)*n + dst
		ss.cross[q] = ss.cross[q][:0]
	}
	ss.mhead[dst] = heads
	ss.inbound[dst] = srcs[:0]
}

// sortXQueue stable insertion-sorts a cross queue by (at, key). Queues are
// nearly time-ordered already (a shard's clock only advances while it
// posts), so the adaptive sort is close to a single verification pass.
func sortXQueue(q []xevent) {
	for i := 1; i < len(q); i++ {
		e := q[i]
		j := i
		for j > 0 && (e.at < q[j-1].at ||
			(e.at == q[j-1].at && e.key < q[j-1].key)) {
			q[j] = q[j-1]
			j--
		}
		if j != i {
			q[j] = e
		}
	}
}
