package des

import (
	"sync"
	"sync/atomic"
)

// gateKind selects the parking primitive pool workers block on between
// windows. Both gates implement the same protocol; they differ only in
// wake cost. The channel gate wakes exactly the workers a window needs
// with one buffered send each; the cond gate broadcasts to every worker
// and lets the surplus fail to claim a task and park again. The channel
// gate benchmarks faster (see BenchmarkShardedGate) and is the default.
type gateKind int32

const (
	gateChan gateKind = iota
	gateCond
)

// Pool task phases. The driver publishes the phase before opening the
// gate; workers read it inside the claim loop.
const (
	phaseWindow int32 = iota
	phaseFlush
)

// shardPool is the persistent worker pool behind ShardedScheduler. It is
// created once and reused for every window and barrier of every RunUntil:
// workers park on the gate, wake when the driver opens a generation, claim
// tasks from a shared atomic ticket until the window is drained, then park
// again. The driver always participates in the claim loop itself, so a
// pool of w-1 goroutines yields w-way concurrency.
//
// Memory-model notes, load-bearing for the race-free claim loop:
//
//   - The driver writes phase/tasks/target and the window scratch
//     (busy/horizons or flushDst/inbound) BEFORE opening the gate. The
//     gate open (a buffered channel send per woken worker, or a mutex
//     release before Broadcast) is the happens-before edge that publishes
//     those plain writes to the workers it wakes.
//   - Workers that are not woken stay parked and touch nothing, so the
//     driver's resets of next/exited never race: between dispatches every
//     previously woken worker has incremented exited and gone back to the
//     gate, which is exactly what the driver's <-finished wait proves.
//   - exited is the completion edge back: each worker's shard-state writes
//     are synchronized-before its exited.Add, the adds chain through the
//     shared atomic, and the final add's channel send publishes the whole
//     window to the driver.
type shardPool struct {
	ss   *ShardedScheduler
	kind gateKind

	// next is the claim ticket; task k of the window is busy[k] or
	// flushDst[k] depending on phase.
	next atomic.Int32
	// exited counts woken workers that have drained the claim loop.
	exited atomic.Int32
	// finished carries the last exiting worker's completion signal.
	finished chan struct{}
	stopped  atomic.Bool

	// Plain fields published via the gate-open happens-before edge.
	phase  int32
	tasks  int32
	target int32

	// Channel gate: one buffered wake token slot per worker.
	wake []chan struct{}

	// Cond gate: generation counter under mu.
	mu   sync.Mutex
	cond *sync.Cond
	gen  uint64
}

// newShardPool starts n daemon workers parked on the chosen gate.
func newShardPool(ss *ShardedScheduler, n int, kind gateKind) *shardPool {
	p := &shardPool{
		ss:       ss,
		kind:     kind,
		finished: make(chan struct{}, 1),
	}
	switch kind {
	case gateChan:
		p.wake = make([]chan struct{}, n)
		for i := range p.wake {
			p.wake[i] = make(chan struct{}, 1)
			go p.chanWorker(i)
		}
	case gateCond:
		p.cond = sync.NewCond(&p.mu)
		for i := 0; i < n; i++ {
			go p.condWorker()
		}
		p.target = int32(n)
	}
	return p
}

// ensurePool lazily creates the pool the first time a window can use it.
func (ss *ShardedScheduler) ensurePool() {
	if ss.pool == nil {
		ss.pool = newShardPool(ss, ss.workers-1, ss.gate)
	}
}

// dispatch runs ntasks tasks of the given phase across the pool plus the
// calling driver, and returns when every task has completed and every
// woken worker has left the claim loop. Callers guarantee ntasks >= 2 and
// pool size >= 1.
func (p *shardPool) dispatch(phase int32, ntasks int) {
	p.phase = phase
	p.tasks = int32(ntasks)
	p.next.Store(0)
	switch p.kind {
	case gateChan:
		// Wake exactly the workers this window can use; the rest stay
		// parked. The sends never block: a worker's token slot is always
		// empty here, because the previous dispatch waited for it to
		// consume the token and exit.
		w := len(p.wake)
		if w > ntasks-1 {
			w = ntasks - 1
		}
		p.target = int32(w)
		for i := 0; i < w; i++ {
			p.wake[i] <- struct{}{}
		}
	case gateCond:
		p.mu.Lock()
		p.gen++
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	p.run()
	<-p.finished
	p.exited.Store(0)
}

// run is the claim loop: grab the next ticket, execute that task, repeat
// until the window is drained. It is executed by the driver and by every
// woken worker; tickets are unique, so each task runs exactly once.
func (p *shardPool) run() {
	ss := p.ss
	tasks := p.tasks
	if p.phase == phaseWindow {
		for {
			k := p.next.Add(1) - 1
			if k >= tasks {
				return
			}
			i := ss.busy[k]
			ss.shards[i].RunBefore(ss.horizons[i])
		}
	}
	for {
		k := p.next.Add(1) - 1
		if k >= tasks {
			return
		}
		ss.mergeInto(int(ss.flushDst[k]))
	}
}

// exit records a woken worker leaving the claim loop and signals the
// driver when it is the last one out. target is the worker count captured
// at wake time: reading p.target here instead would race with the
// driver's next dispatch (a delayed worker's post-Add read has no
// happens-before edge to the reset) and could match the wrong window.
func (p *shardPool) exit(target int32) {
	if p.exited.Add(1) == target {
		p.finished <- struct{}{}
	}
}

// chanWorker parks on its own token slot and services one generation per
// token.
func (p *shardPool) chanWorker(id int) {
	for range p.wake[id] {
		if p.stopped.Load() {
			return
		}
		target := p.target
		p.run()
		p.exit(target)
	}
}

// condWorker parks on the shared cond and services every generation.
func (p *shardPool) condWorker() {
	var seen uint64
	for {
		p.mu.Lock()
		for p.gen == seen && !p.stopped.Load() {
			p.cond.Wait()
		}
		seen = p.gen
		stop := p.stopped.Load()
		target := p.target
		p.mu.Unlock()
		if stop {
			return
		}
		p.run()
		p.exit(target)
	}
}

// close wakes every parked worker into termination. Must not run
// concurrently with dispatch; between dispatches all workers are parked,
// so every token slot is empty and the sends cannot block.
func (p *shardPool) close() {
	p.stopped.Store(true)
	switch p.kind {
	case gateChan:
		for i := range p.wake {
			p.wake[i] <- struct{}{}
		}
	case gateCond:
		p.mu.Lock()
		p.gen++
		p.mu.Unlock()
		p.cond.Broadcast()
	}
}
