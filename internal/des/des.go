// Package des is a discrete-event scheduler with a virtual clock. The
// packet-level emulation (fabric, hosts, agents) runs entirely on virtual
// time, which makes ICMP rate limits, retransmission timeouts and epoch
// boundaries exact and deterministic regardless of wall-clock load.
package des

import "container/heap"

// Time is virtual time in microseconds since the start of the run.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the pending event queue.
// The zero value is ready to use. Not safe for concurrent use: the
// emulation is single-threaded by design.
type Scheduler struct {
	now    Time
	nextID uint64
	events eventHeap
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn at absolute time t. Events in the past run "now": the
// clock never moves backward.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.nextID++
	heap.Push(&s.events, event{at: t, seq: s.nextID, fn: fn})
}

// After schedules fn d microseconds from now.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }

// Step runs the next event; it reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil executes events until the queue empties or the next event lies
// beyond deadline; the clock is then advanced to the deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Drain runs events until none remain, with a safety cap on event count.
// It returns the number of events executed.
func (s *Scheduler) Drain(maxEvents int) int {
	n := 0
	for n < maxEvents && s.Step() {
		n++
	}
	return n
}
