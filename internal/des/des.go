// Package des is a discrete-event scheduler with a virtual clock. The
// packet-level emulation (fabric, hosts, agents) runs entirely on virtual
// time, which makes ICMP rate limits, retransmission timeouts and epoch
// boundaries exact and deterministic regardless of wall-clock load.
//
// The queue is a monomorphic 4-ary min-heap over typed event records, so
// the hot path — scheduling a packet hop, a retransmission timeout or an
// epoch tick — allocates nothing: components implement Handler once and
// pass a kind tag, an integer argument and an optional pointer payload
// through Post/PostAfter. The closure form (At/After) remains for cold
// paths and tests; it costs exactly the closure the caller builds, with no
// further boxing inside the scheduler.
//
// Events fire in (time, key, submission order): simultaneous events with
// the same key run FIFO, and keys impose a deterministic order between
// simultaneous events from different origins. The key is an origin
// identifier chosen by the poster (a link, a host, a connection — see
// PostKeyed); because an origin's events are produced by exactly one
// sequential execution context, the (time, key, seq) order is identical
// whether the emulation runs on one scheduler or on a pod-sharded
// ShardedScheduler — the invariant the parallel packet plane's
// bit-identical-epochs contract rests on. Unkeyed events (key 0) keep the
// historical (time, submission order) behaviour.
package des

// Time is virtual time in microseconds since the start of the run.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// Handler consumes typed events. Implementations are long-lived objects (a
// fabric, a connection, a discovery agent): scheduling against them stores
// only the interface word pair, so no allocation happens per event. The
// kind tag is private to each handler — it only needs to disambiguate the
// events that handler itself schedules. arg carries a small integer
// (a link id, a generation counter, a flow slot); p carries an optional
// pointer-shaped payload (boxing a pointer into the any does not allocate).
type Handler interface {
	HandleEvent(kind int32, arg int64, p any)
}

// event is one queue entry. Closure events store the func() in p with a
// nil Handler; typed events use h/kind/arg/p directly.
type event struct {
	at   Time
	key  uint64 // origin key: orders simultaneous events across origins
	seq  uint64 // tie-break: FIFO among simultaneous same-key events
	arg  int64
	h    Handler
	p    any
	kind int32
}

// less orders events by (time, origin key, submission sequence).
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.key != o.key {
		return e.key < o.key
	}
	return e.seq < o.seq
}

// Scheduler owns the virtual clock and the pending event queue.
// The zero value is ready to use. Not safe for concurrent use: the
// emulation is single-threaded by design.
//
// The queue is two structures popped in one total (time, key, seq) order:
// a FIFO fast lane for the monotone stream the packet fabric generates
// (fixed link delays from a nondecreasing clock arrive already sorted,
// so they enqueue and dequeue in O(1)), and a 4-ary min-heap for
// everything else (timers, epoch ticks, spread-out flow starts). Step
// compares the two heads under the same ordering the heap alone would
// use, so the pop sequence — and with it the emulation — is bit-identical
// to a single-queue scheduler.
type Scheduler struct {
	now      Time
	nextID   uint64
	heap     []event // 4-ary min-heap
	fifo     []event // monotone fast lane; live region is fifo[fifoHead:]
	fifoHead int
}

// nearWindow bounds how far ahead of the clock an event may open an empty
// FIFO lane. Without it a lone far-future timer would squat at the lane
// head and force the monotone delivery stream back onto the heap until it
// fired. Link delays (and injected extra latency) sit well below it;
// retransmission and probe timeouts sit above.
const nearWindow = 10 * Millisecond

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn at absolute time t. Events in the past run "now": the
// clock never moves backward.
func (s *Scheduler) At(t Time, fn func()) {
	s.push(t, 0, nil, 0, 0, fn)
}

// After schedules fn d microseconds from now.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Post schedules a typed event at absolute time t without allocating.
// Past times are clamped to now, like At.
func (s *Scheduler) Post(t Time, h Handler, kind int32, arg int64, p any) {
	if h == nil {
		panic("des: Post with nil Handler")
	}
	s.push(t, 0, h, kind, arg, p)
}

// PostAfter schedules a typed event d microseconds from now.
func (s *Scheduler) PostAfter(d Time, h Handler, kind int32, arg int64, p any) {
	s.Post(s.now+d, h, kind, arg, p)
}

// PostKeyed schedules a typed event carrying an origin key. Simultaneous
// events order by key before submission sequence, so two posters that
// never observe each other's order (a link's deliveries vs a timer on
// another host) still fire in a deterministic total order that does not
// depend on which scheduler instance — or shard — carried them. Posters
// must choose keys so that one key is only ever used from one sequential
// execution context; by convention the high byte is a per-subsystem class
// and the low bits an origin id (a link, a host).
func (s *Scheduler) PostKeyed(t Time, key uint64, h Handler, kind int32, arg int64, p any) {
	if h == nil {
		panic("des: PostKeyed with nil Handler")
	}
	s.push(t, key, h, kind, arg, p)
}

// PostKeyedAfter schedules a keyed typed event d microseconds from now.
func (s *Scheduler) PostKeyedAfter(d Time, key uint64, h Handler, kind int32, arg int64, p any) {
	s.PostKeyed(s.now+d, key, h, kind, arg, p)
}

func (s *Scheduler) push(t Time, key uint64, h Handler, kind int32, arg int64, p any) {
	if t < s.now {
		t = s.now
	}
	s.nextID++
	e := event{at: t, key: key, seq: s.nextID, arg: arg, h: h, p: p, kind: kind}
	// Monotone fast lane: a near event no earlier — in (time, key) order —
	// than the lane's tail is already in sorted position. Far events are
	// excluded even when they would extend the tail — a 20ms timer at the
	// tail would force every following 5µs delivery onto the heap until it
	// fired.
	if t-s.now <= nearWindow {
		if n := len(s.fifo); n > s.fifoHead {
			tail := &s.fifo[n-1]
			if t > tail.at || (t == tail.at && key >= tail.key) {
				s.fifo = append(s.fifo, e)
				return
			}
		} else {
			s.fifo = s.fifo[:0]
			s.fifoHead = 0
			s.fifo = append(s.fifo, e)
			return
		}
	}
	s.heap = append(s.heap, e)
	// Sift up.
	ev := s.heap
	i := len(ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev[i].less(&ev[parent]) {
			break
		}
		ev[i], ev[parent] = ev[parent], ev[i]
		i = parent
	}
}

// popRoot removes the minimum heap event, restoring the heap. The vacated
// tail slot is zeroed so the queue does not pin handler or payload
// references.
func (s *Scheduler) popRoot() {
	ev := s.heap
	n := len(ev) - 1
	ev[0] = ev[n]
	ev[n] = event{}
	ev = ev[:n]
	s.heap = ev
	// Sift down (4-ary: children of i are 4i+1 .. 4i+4).
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if ev[j].less(&ev[m]) {
				m = j
			}
		}
		if !ev[m].less(&ev[i]) {
			return
		}
		ev[i], ev[m] = ev[m], ev[i]
		i = m
	}
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) + len(s.fifo) - s.fifoHead }

// peek returns the next event in (time, key, seq) order without removing
// it, or nil when the queue is empty.
func (s *Scheduler) peek() *event {
	var next *event
	if s.fifoHead < len(s.fifo) {
		next = &s.fifo[s.fifoHead]
	}
	if len(s.heap) > 0 && (next == nil || s.heap[0].less(next)) {
		next = &s.heap[0]
	}
	return next
}

// Step runs the next event; it reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	var e event
	if h := s.fifoHead; h < len(s.fifo) {
		if len(s.heap) > 0 && s.heap[0].less(&s.fifo[h]) {
			e = s.heap[0]
			s.popRoot()
		} else {
			e = s.fifo[h]
			s.fifo[h] = event{}
			s.fifoHead = h + 1
			if s.fifoHead == len(s.fifo) {
				s.fifo = s.fifo[:0]
				s.fifoHead = 0
			}
		}
	} else if len(s.heap) > 0 {
		e = s.heap[0]
		s.popRoot()
	} else {
		return false
	}
	s.now = e.at
	if e.h != nil {
		e.h.HandleEvent(e.kind, e.arg, e.p)
	} else {
		e.p.(func())()
	}
	return true
}

// RunUntil executes events until the queue empties or the next event lies
// beyond deadline; the clock is then advanced to the deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		next := s.peek()
		if next == nil || next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// NextEventAt reports the time of the next pending event; ok is false when
// the queue is empty. The window driver uses it to size execution windows.
func (s *Scheduler) NextEventAt() (t Time, ok bool) {
	next := s.peek()
	if next == nil {
		return 0, false
	}
	return next.at, true
}

// RunBefore executes every event strictly before horizon. Unlike RunUntil
// it leaves the clock at the last executed event: the caller (the sharded
// window driver) may still inject events at exactly horizon — cross-shard
// deliveries landing on the window edge — and those must not be clamped
// forward.
func (s *Scheduler) RunBefore(horizon Time) {
	for {
		next := s.peek()
		if next == nil || next.at >= horizon {
			return
		}
		s.Step()
	}
}

// Drain runs events until none remain, with a safety cap on event count.
// It returns the number of events executed and whether the queue drained
// clean: complete is false when the cap was hit with work still pending —
// without it a caller seeing n == maxEvents could not tell a clean drain
// of exactly maxEvents events from a truncated one.
func (s *Scheduler) Drain(maxEvents int) (n int, complete bool) {
	for n < maxEvents && s.Step() {
		n++
	}
	return n, s.Pending() == 0
}
