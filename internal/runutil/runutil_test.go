package runutil

import (
	"context"
	"syscall"
	"testing"
	"time"
)

func TestSignalContextCancelsOnSIGINT(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled after SIGINT")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}

func TestSecondSignalForcesExit(t *testing.T) {
	exited := make(chan int, 1)
	exit = func(code int) {
		exited <- code
		select {} // the real os.Exit never returns
	}
	defer func() { exit = func(int) {} }()

	ctx, stop := SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	<-ctx.Done()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("exit code %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT did not force exit")
	}
}

// stop must release the registration: a parent cancel path that never saw
// a signal leaves no goroutine waiting on one.
func TestStopReleasesRegistration(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
}
