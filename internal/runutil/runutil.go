// Package runutil holds the small process-lifecycle helpers the vigil
// binaries share — today, signal-driven shutdown contexts, so every
// command flushes profiles and settles in-flight epochs on Ctrl-C instead
// of dying mid-write.
package runutil

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exit is swapped out by tests; the second-signal path must be observable
// without killing the test process.
var exit = os.Exit

// SignalContext returns a context canceled on the first SIGINT or SIGTERM,
// giving the caller a graceful-shutdown window (stop the epoch loop, drain
// the pipeline, flush profiles). A second signal exits the process
// immediately with status 130 — the escape hatch when shutdown itself
// wedges. stop releases the signal registration; call it once shutdown
// completes so later signals regain their default behavior.
func SignalContext(parent context.Context) (ctx context.Context, stop func()) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	done := make(chan struct{})
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			cancel()
		case <-done:
			return
		}
		select {
		case <-ch:
			exit(130)
		case <-done:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel()
		})
	}
}
