// Package analysis implements 007's centralized analysis agent (§3, §5):
// it gathers the per-flow reports that host agents produce during an epoch,
// tallies votes, ranks links, runs Algorithm 1 to pick out problematic
// links, and issues a verdict for every failed flow.
//
// The per-epoch pipeline is parallel and deterministic: reports are fanned
// out in fixed-size chunks to tally workers that build shard-local tallies
// (and shard-local observed-path indexes), and the shards merge in chunk
// order. Chunk boundaries depend only on the report count — never the
// worker count — so the merged floating-point vote sums are identical at
// every Parallelism setting (they are the fixed-chunk pipeline's sums, not
// a flat sequential fold's). Verdict classification fans back out with
// each chunk writing into its own slots of the verdict slice.
package analysis

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vigil/internal/par"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// Options configures an analysis pass.
type Options struct {
	Detect vote.DetectOptions
	// Parallelism caps the tally/classify worker count; 0 means
	// runtime.GOMAXPROCS(0). Results are identical at every setting.
	Parallelism int
}

// Result is the outcome of analyzing one epoch.
type Result struct {
	// Tally is the raw vote tally (before Algorithm 1's adjustments).
	Tally *vote.Tally
	// Ranking is the link heat-map: descending vote order.
	Ranking []vote.LinkVotes
	// Detected is Algorithm 1's problematic-link set B, in blame order.
	Detected []topology.LinkID
	// Verdicts holds 007's per-flow conclusions, one per report.
	Verdicts []vote.Verdict
}

// reportChunk is the fan-out granularity: small enough to load-balance an
// epoch across workers, large enough that shard bookkeeping is noise.
// Chunk boundaries depend only on the report count (never the worker
// count), which is what keeps the chunk-ordered merge deterministic.
const reportChunk = 2048

// Analyze runs the full per-epoch pipeline over the collected reports.
//
// Because this agent receives the flow reports themselves (it needs them
// for per-flow verdicts), Algorithm 1's vote adjustment defaults to the
// exact observed-path overlap rather than the topology-based ECMP estimate.
// The estimate remains available via Options.Detect.Adjuster for
// deployments that ship only vote tallies to the center, and the two are
// compared by the abl-adjust ablation benchmark.
func Analyze(reports []vote.Report, opts Options) *Result {
	needObserved := opts.Detect.Adjuster == nil
	nchunks := par.Chunks(len(reports), reportChunk)

	// Fan out: shard-local tallies (and observed-path indexes), one per
	// chunk, merged below in chunk order.
	tallies := make([]*vote.Tally, nchunks)
	var adjusters []*vote.ObservedAdjuster
	if needObserved {
		adjusters = make([]*vote.ObservedAdjuster, nchunks)
	}
	par.ForEachChunk(len(reports), reportChunk, opts.Parallelism, func(c, lo, hi int) {
		t := vote.NewTally()
		t.AddAll(reports[lo:hi])
		tallies[c] = t
		if needObserved {
			adjusters[c] = vote.NewObservedAdjusterShard(reports[lo:hi], lo)
		}
	})

	t := vote.NewTally()
	for _, partial := range tallies {
		t.Merge(partial)
	}
	if needObserved {
		merged := vote.NewObservedAdjusterShard(nil, 0)
		for _, partial := range adjusters {
			merged.Merge(partial)
		}
		opts.Detect.Adjuster = merged
	}

	// Algorithm 1 is inherently iterative (each blame adjusts the next
	// pick) and runs on the merged tally.
	detected := vote.FindProblemLinks(t, opts.Detect)

	// Fan back out: verdicts are per-report independent reads of the
	// merged tally, so each chunk writes its own slots.
	verdicts := make([]vote.Verdict, len(reports))
	par.ForEachChunk(len(reports), reportChunk, opts.Parallelism, func(_, lo, hi int) {
		vote.ClassifyFlowsInto(verdicts[lo:hi], t, detected, reports[lo:hi])
	})

	return &Result{
		Tally:    t,
		Ranking:  t.Ranking(),
		Detected: detected,
		Verdicts: verdicts,
	}
}

// Agent is the long-running form of the analysis service: hosts stream
// reports in (concurrently, in the multi-node emulation), and the epoch is
// closed at the 30-second tick. The zero value is not ready; use NewAgent.
//
// The inbox is sharded: submissions take a sequence number from one atomic
// counter and land in per-shard mutex-guarded slices, so concurrent Submit
// calls from many emulated hosts contend on a shard each instead of
// serializing behind one lock. CloseEpoch drains every shard and restores
// global submission order by sequence number, so a single-threaded
// submit/close cycle behaves exactly like the old single-inbox agent.
type Agent struct {
	opts Options

	seq    atomic.Uint64
	shards []inboxShard

	// mu serializes the inbox drain and epoch increment only; the Analyze
	// call itself runs outside the lock, so concurrent CloseEpoch calls
	// analyze disjoint report batches in parallel. That is safe with the
	// default (nil) Adjuster, which Analyze builds fresh per call — a
	// caller-supplied stateful Adjuster in Options.Detect would be shared
	// across those concurrent analyses and must be safe for concurrent use
	// (the stock ObservedAdjuster/AnalyticAdjuster are not).
	mu    sync.Mutex
	epoch int64
}

// sequenced is a report stamped with its global submission order.
type sequenced struct {
	seq uint64
	r   vote.Report
}

// inboxShard is one slice of the agent's inbox, padded so shards on
// adjacent cache lines don't false-share under concurrent Submit.
type inboxShard struct {
	mu      sync.Mutex
	reports []sequenced
	_       [96]byte
}

// NewAgent returns an Agent that analyzes with opts, with one inbox shard
// per CPU.
func NewAgent(opts Options) *Agent {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return &Agent{opts: opts, shards: make([]inboxShard, n)}
}

// Epoch returns the current epoch index.
func (a *Agent) Epoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Submit adds a report to the current epoch. Safe for concurrent use; only
// the submitter's shard lock is taken.
func (a *Agent) Submit(r vote.Report) {
	seq := a.seq.Add(1)
	sh := &a.shards[seq%uint64(len(a.shards))]
	sh.mu.Lock()
	sh.reports = append(sh.reports, sequenced{seq: seq, r: r})
	sh.mu.Unlock()
}

// Pending returns the number of reports waiting in the current epoch.
func (a *Agent) Pending() int {
	n := 0
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		n += len(sh.reports)
		sh.mu.Unlock()
	}
	return n
}

// CloseEpoch drains the sharded inbox, restores submission order, advances
// the epoch counter and returns the analysis. Reports submitted
// concurrently with the close land in either the closing epoch or the next
// one — the same guarantee the single-inbox agent gave.
func (a *Agent) CloseEpoch() *Result {
	a.mu.Lock()
	var drained []sequenced
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		drained = append(drained, sh.reports...)
		sh.reports = nil
		sh.mu.Unlock()
	}
	a.epoch++
	a.mu.Unlock()

	sort.Slice(drained, func(i, j int) bool { return drained[i].seq < drained[j].seq })
	reports := make([]vote.Report, len(drained))
	for i, s := range drained {
		reports[i] = s.r
	}
	return Analyze(reports, a.opts)
}
