// Package analysis implements 007's centralized analysis agent (§3, §5):
// it gathers the per-flow reports that host agents produce during an epoch,
// tallies votes, ranks links, runs Algorithm 1 to pick out problematic
// links, and issues a verdict for every failed flow.
package analysis

import (
	"sync"

	"vigil/internal/topology"
	"vigil/internal/vote"
)

// Options configures an analysis pass.
type Options struct {
	Detect vote.DetectOptions
}

// Result is the outcome of analyzing one epoch.
type Result struct {
	// Tally is the raw vote tally (before Algorithm 1's adjustments).
	Tally *vote.Tally
	// Ranking is the link heat-map: descending vote order.
	Ranking []vote.LinkVotes
	// Detected is Algorithm 1's problematic-link set B, in blame order.
	Detected []topology.LinkID
	// Verdicts holds 007's per-flow conclusions, one per report.
	Verdicts []vote.Verdict
}

// Analyze runs the full per-epoch pipeline over the collected reports.
//
// Because this agent receives the flow reports themselves (it needs them
// for per-flow verdicts), Algorithm 1's vote adjustment defaults to the
// exact observed-path overlap rather than the topology-based ECMP estimate.
// The estimate remains available via Options.Detect.Adjuster for
// deployments that ship only vote tallies to the center, and the two are
// compared by the abl-adjust ablation benchmark.
func Analyze(reports []vote.Report, opts Options) *Result {
	t := vote.NewTally()
	t.AddAll(reports)
	if opts.Detect.Adjuster == nil {
		opts.Detect.Adjuster = vote.NewObservedAdjuster(reports)
	}
	detected := vote.FindProblemLinks(t, opts.Detect)
	return &Result{
		Tally:    t,
		Ranking:  t.Ranking(),
		Detected: detected,
		Verdicts: vote.ClassifyFlows(t, detected, reports),
	}
}

// Agent is the long-running form of the analysis service: hosts stream
// reports in (concurrently, in the multi-node emulation), and the epoch is
// closed at the 30-second tick. The zero value is not ready; use NewAgent.
type Agent struct {
	opts Options

	mu      sync.Mutex
	epoch   int64
	reports []vote.Report
}

// NewAgent returns an Agent that analyzes with opts.
func NewAgent(opts Options) *Agent {
	return &Agent{opts: opts}
}

// Epoch returns the current epoch index.
func (a *Agent) Epoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Submit adds a report to the current epoch. Safe for concurrent use.
func (a *Agent) Submit(r vote.Report) {
	a.mu.Lock()
	a.reports = append(a.reports, r)
	a.mu.Unlock()
}

// Pending returns the number of reports waiting in the current epoch.
func (a *Agent) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.reports)
}

// CloseEpoch tallies the epoch's reports, advances the epoch counter and
// returns the analysis.
func (a *Agent) CloseEpoch() *Result {
	a.mu.Lock()
	reports := a.reports
	a.reports = nil
	a.epoch++
	a.mu.Unlock()
	return Analyze(reports, a.opts)
}
