// Package analysis_test contains the end-to-end flow-level pipeline tests:
// inject failures into the simulator, run 007's full analysis, and check
// that the paper's headline behaviours hold (single- and multi-failure
// localization, noise robustness, ranking quality).
package analysis_test

import (
	"reflect"
	"sync"
	"testing"

	"vigil/internal/analysis"
	"vigil/internal/metrics"
	"vigil/internal/netem"
	"vigil/internal/opt"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// pipelineSim builds a simulator at the paper's §6 scale (4160 links).
// Algorithm 1's precision depends on that scale: with 32 hosts per ToR and
// 10 T1s per pod, each co-path link absorbs a small, well-estimated spill.
func pipelineSim(t testing.TB, seed uint64, conns int) *netem.Sim {
	t.Helper()
	topo, err := topology.New(topology.DefaultSimConfig)
	if err != nil {
		t.Fatal(err)
	}
	s, err := netem.New(netem.Config{
		Topo:    topo,
		NoiseLo: 0, NoiseHi: 1e-6,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: conns, Hi: conns},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEndToEndSingleFailure(t *testing.T) {
	s := pipelineSim(t, 1, 60) // the paper's 60 connections per host
	topo := s.Topology()
	bad := topo.LinksOfClass(topology.L1Up)[7]
	s.InjectFailure(bad, 0.01) // 1%
	ep := s.RunEpoch()
	res := analysis.Analyze(ep.Reports, analysis.Options{
		Detect: vote.DefaultDetectOptions(topo),
	})
	// The bad link must top the ranking.
	if len(res.Ranking) == 0 || res.Ranking[0].Link != bad {
		t.Fatalf("top-ranked link = %v, want %v (%s)", res.Ranking[0].Link, bad, topo.LinkName(bad))
	}
	// Algorithm 1 must detect it; at this reduced scale a few adjustment
	// residuals may slip over the 1% cutoff (the paper's own Fig. 4
	// precision ranges 75-100%), so precision is bounded, not exact.
	det := metrics.ScoreDetection(res.Detected, ep.FailedLinks)
	if det.Recall != 1 {
		t.Fatalf("recall = %v, detected %v", det.Recall, res.Detected)
	}
	if det.Precision < 0.5 {
		t.Fatalf("precision = %v, detected %v", det.Precision, res.Detected)
	}
	if res.Detected[0] != bad {
		t.Fatalf("first detected link = %v, want %v", res.Detected[0], bad)
	}
	// Per-flow accuracy on flows that crossed the failure.
	score := metrics.ScoreVerdicts(res.Verdicts, ep.Truth())
	if score.Considered == 0 {
		t.Fatal("no flows crossed the failure")
	}
	if acc := score.Accuracy(); acc < 0.9 {
		t.Fatalf("per-flow accuracy = %v, want >= 0.9", acc)
	}
}

func TestEndToEndMultipleFailures(t *testing.T) {
	s := pipelineSim(t, 2, 60)
	topo := s.Topology()
	rng := stats.NewRNG(3)
	bads := []topology.LinkID{
		topo.LinksOfClass(topology.L1Up)[1],
		topo.LinksOfClass(topology.L1Down)[10],
		topo.LinksOfClass(topology.L2Up)[5],
	}
	for _, l := range bads {
		s.InjectFailure(l, rng.Uniform(0.005, 0.01))
	}
	ep := s.RunEpoch()
	res := analysis.Analyze(ep.Reports, analysis.Options{Detect: vote.DefaultDetectOptions(topo)})
	det := metrics.ScoreDetection(res.Detected, ep.FailedLinks)
	if det.Recall < 1 {
		t.Fatalf("recall = %v (detected %v, want %v)", det.Recall, res.Detected, bads)
	}
	if det.Precision < 0.4 {
		t.Fatalf("precision = %v (detected %v)", det.Precision, res.Detected)
	}
	score := metrics.ScoreVerdicts(res.Verdicts, ep.Truth())
	if acc := score.Accuracy(); acc < 0.85 {
		t.Fatalf("accuracy = %v", acc)
	}
}

// The paper's key robustness claim (§6.3): noise on good links barely
// affects 007, while it degrades the set-cover optimization.
func TestNoiseRobustness(t *testing.T) {
	topo, err := topology.New(topology.DefaultSimConfig)
	if err != nil {
		t.Fatal(err)
	}
	s, err := netem.New(netem.Config{
		Topo:    topo,
		NoiseLo: 5e-6, NoiseHi: 1e-5, // an order of magnitude above default
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 40, Hi: 40},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := topo.LinksOfClass(topology.L1Up)[3]
	s.InjectFailure(bad, 0.01)
	ep := s.RunEpoch()
	res := analysis.Analyze(ep.Reports, analysis.Options{Detect: vote.DefaultDetectOptions(topo)})
	if res.Ranking[0].Link != bad {
		t.Fatalf("noise displaced the bad link from rank 1: %+v", res.Ranking[0])
	}
	score := metrics.ScoreVerdicts(res.Verdicts, ep.Truth())
	if acc := score.Accuracy(); acc < 0.85 {
		t.Fatalf("accuracy under noise = %v", acc)
	}
}

// "007 never marked a connection into the noisy category incorrectly" (§6).
func TestNoiseClassificationNeverWrong(t *testing.T) {
	for seed := uint64(10); seed < 15; seed++ {
		s := pipelineSim(t, seed, 30)
		topo := s.Topology()
		s.InjectFailure(topo.LinksOfClass(topology.L1Up)[int(seed)%10], 0.005)
		ep := s.RunEpoch()
		res := analysis.Analyze(ep.Reports, analysis.Options{Detect: vote.DefaultDetectOptions(topo)})
		score := metrics.ScoreVerdicts(res.Verdicts, ep.Truth())
		if score.NoiseErrors != 0 {
			t.Fatalf("seed %d: %d failure flows classified as noise", seed, score.NoiseErrors)
		}
	}
}

// 007's accuracy should not trail the integer program's on the same epoch
// (the paper finds it on par or better, Figures 3, 5-7).
func TestVotingOnParWithIntegerProgram(t *testing.T) {
	s := pipelineSim(t, 20, 40)
	topo := s.Topology()
	s.InjectFailure(topo.LinksOfClass(topology.L1Up)[2], 0.004)
	s.InjectFailure(topo.LinksOfClass(topology.L2Down)[9], 0.008)
	ep := s.RunEpoch()
	res := analysis.Analyze(ep.Reports, analysis.Options{Detect: vote.DefaultDetectOptions(topo)})
	truth := ep.Truth()
	acc007 := metrics.ScoreVerdicts(res.Verdicts, truth).Accuracy()

	in := opt.BuildInstance(ep.Reports)
	sol := in.SolveInteger(stats.NewRNG(1))
	accInt := metrics.ScoreBlamer(sol, ep.Reports, truth).Accuracy()

	if acc007 < accInt-0.1 {
		t.Fatalf("007 accuracy %v far below integer program %v", acc007, accInt)
	}
}

func TestAgentEpochLifecycle(t *testing.T) {
	a := analysis.NewAgent(analysis.Options{Detect: vote.DetectOptions{ThresholdFrac: 0.01}})
	if a.Epoch() != 0 {
		t.Fatal("fresh agent not at epoch 0")
	}
	a.Submit(vote.Report{FlowID: 1, Path: []topology.LinkID{1, 2}, Retx: 1})
	a.Submit(vote.Report{FlowID: 2, Path: []topology.LinkID{1, 3}, Retx: 2})
	if a.Pending() != 2 {
		t.Fatalf("pending = %d", a.Pending())
	}
	res := a.CloseEpoch()
	if a.Epoch() != 1 || a.Pending() != 0 {
		t.Fatal("epoch did not advance cleanly")
	}
	if res.Tally.Flows() != 2 {
		t.Fatalf("tally flows = %d", res.Tally.Flows())
	}
	if len(res.Ranking) == 0 || res.Ranking[0].Link != 1 {
		t.Fatalf("ranking = %+v", res.Ranking)
	}
	// Next epoch starts empty.
	res2 := a.CloseEpoch()
	if res2.Tally.Flows() != 0 || len(res2.Detected) != 0 {
		t.Fatal("epoch state leaked")
	}
}

// Analyze must produce identical results — including the floating-point
// vote sums its chunk-ordered merge reconstructs — at every Parallelism.
// The synthetic report set is large enough to span many tally chunks, the
// regime where worker interleaving could show through.
func TestAnalyzeDeterministicAcrossParallelism(t *testing.T) {
	rng := stats.NewRNG(31)
	reports := make([]vote.Report, 10000)
	for i := range reports {
		h := 4 + rng.Intn(3)
		path := make([]topology.LinkID, h)
		for j := range path {
			path[j] = topology.LinkID(rng.Intn(400))
		}
		// A hot link shows up on a third of the paths so detection has
		// something real to find.
		if rng.Bool(0.33) {
			path[rng.Intn(h)] = 7
		}
		reports[i] = vote.Report{FlowID: int64(i), Path: path, Retx: 1 + rng.Intn(3)}
	}
	want := analysis.Analyze(reports, analysis.Options{
		Detect: vote.DetectOptions{ThresholdFrac: 0.01}, Parallelism: 1,
	})
	if len(want.Detected) == 0 || want.Detected[0] != 7 {
		t.Fatalf("hot link not detected: %v", want.Detected)
	}
	for _, parallelism := range []int{2, 4, 8} {
		got := analysis.Analyze(reports, analysis.Options{
			Detect: vote.DetectOptions{ThresholdFrac: 0.01}, Parallelism: parallelism,
		})
		if !reflect.DeepEqual(want.Ranking, got.Ranking) {
			t.Fatalf("Parallelism %d changed the ranking", parallelism)
		}
		if !reflect.DeepEqual(want.Detected, got.Detected) {
			t.Fatalf("Parallelism %d changed detections", parallelism)
		}
		if !reflect.DeepEqual(want.Verdicts, got.Verdicts) {
			t.Fatalf("Parallelism %d changed verdicts", parallelism)
		}
	}
}

// Hammer the sharded inbox from many goroutines across an epoch boundary;
// run with -race. Every submitted report must land in exactly one epoch.
func TestAgentConcurrentSubmitAndClose(t *testing.T) {
	a := analysis.NewAgent(analysis.Options{Detect: vote.DetectOptions{ThresholdFrac: 0.01}})
	const (
		producers          = 16
		reportsPerProducer = 500
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < reportsPerProducer; i++ {
				a.Submit(vote.Report{
					FlowID: int64(p*reportsPerProducer + i),
					Path:   []topology.LinkID{topology.LinkID(p), topology.LinkID(100 + i%7)},
					Retx:   1,
				})
			}
		}(p)
	}
	// Close epochs concurrently with the submitters.
	results := make(chan *analysis.Result, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			results <- a.CloseEpoch()
		}
	}()
	wg.Wait()
	<-done
	// Drain whatever the concurrent closes missed.
	final := a.CloseEpoch()
	total := final.Tally.Flows()
	for i := 0; i < 4; i++ {
		total += (<-results).Tally.Flows()
	}
	if want := producers * reportsPerProducer; total != want {
		t.Fatalf("epochs saw %d reports in total, want %d (lost or duplicated submissions)", total, want)
	}
	if a.Epoch() != 5 {
		t.Fatalf("epoch counter = %d, want 5", a.Epoch())
	}
	if a.Pending() != 0 {
		t.Fatalf("%d reports stranded in the inbox", a.Pending())
	}
}

// Sequential submit order must survive the sharded inbox: verdicts come
// back in submission order, exactly like the single-inbox agent.
func TestAgentPreservesSubmissionOrder(t *testing.T) {
	a := analysis.NewAgent(analysis.Options{Detect: vote.DetectOptions{ThresholdFrac: 0.01}})
	const n = 100
	for i := 0; i < n; i++ {
		a.Submit(vote.Report{FlowID: int64(i), Path: []topology.LinkID{topology.LinkID(i % 10)}, Retx: 1})
	}
	res := a.CloseEpoch()
	if len(res.Verdicts) != n {
		t.Fatalf("%d verdicts, want %d", len(res.Verdicts), n)
	}
	for i, v := range res.Verdicts {
		if v.FlowID != int64(i) {
			t.Fatalf("verdict %d is for flow %d; submission order lost", i, v.FlowID)
		}
	}
}

func TestScoreDetectionEdgeCases(t *testing.T) {
	d := metrics.ScoreDetection(nil, nil)
	if d.Precision != 1 || d.Recall != 1 {
		t.Fatalf("empty/empty: %+v", d)
	}
	d = metrics.ScoreDetection(nil, []topology.LinkID{1})
	if d.Precision != 1 || d.Recall != 0 {
		t.Fatalf("none predicted: %+v", d)
	}
	d = metrics.ScoreDetection([]topology.LinkID{1, 2}, []topology.LinkID{2, 3})
	if d.TruePos != 1 || d.FalsePos != 1 || d.FalseNeg != 1 {
		t.Fatalf("mixed: %+v", d)
	}
	if d.Precision != 0.5 || d.Recall != 0.5 {
		t.Fatalf("mixed p/r: %+v", d)
	}
}
