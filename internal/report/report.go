// Package report renders experiment results as aligned ASCII tables and
// CSV, the two formats cmd/vigil-lab emits.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one table or figure's worth of rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly: fixed-point for ordinary values,
// scientific for very small ones.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.0001 && v > -0.0001:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// RenderASCII writes the table with aligned columns.
func (t *Table) RenderASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table in CSV form, title as a comment line.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
