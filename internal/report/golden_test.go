package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the golden files from the current renderer output:
//
//	go test ./internal/report -run Golden -update
//
// Goldens catch mechanical regressions in experiment table rendering —
// width computation, float formatting, separator layout, CSV quoting —
// that per-assertion tests historically missed.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenTables exercises the renderer's edge cases: float formats across
// the scientific-notation switch, ragged rows, rows wider than the header,
// cells needing CSV quoting, and an untitled table.
func goldenTables() []*Table {
	exp := &Table{
		Title:   "Figure X: accuracy vs drop rate",
		Columns: []string{"rate", "accuracy", "precision", "note"},
	}
	exp.AddRow(0.5, 0.987654, 1.0, "plain")
	exp.AddRow(1e-5, 0.5, 0.333333, "tiny rate switches to scientific")
	exp.AddRow(-2.5e-7, -0.25, 0.0, "negative tiny, zero")
	exp.AddRow(12345.678, 42, "0.9±0.1", "int and preformatted cells")

	ragged := &Table{
		Title:   "ragged, quoted",
		Columns: []string{"a", "b"},
	}
	ragged.AddRow("short")
	ragged.AddRow("x", "comma, quote \" and\nnewline")
	ragged.AddRow("one", "two", "three beyond the header")

	untitled := &Table{Columns: []string{"only", "header"}}

	return []*Table{exp, ragged, untitled}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n-- got --\n%s\n-- want --\n%s\n(run with -update to accept)", name, got, want)
	}
}

func TestRenderASCIIGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, tab := range goldenTables() {
		if err := tab.RenderASCII(&buf); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "tables.ascii.golden", buf.Bytes())
}

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, tab := range goldenTables() {
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "tables.csv.golden", buf.Bytes())
}
