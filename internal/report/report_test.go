package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderASCII(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-long-name", 0.000001)
	var buf bytes.Buffer
	if err := tab.RenderASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "1.00e-06") {
		t.Fatalf("tiny float not in scientific notation:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows... title+3
		// title + header + sep + 2 rows = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow(1, "x,y") // comma must be quoted
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# t\n") || !strings.Contains(out, `"x,y"`) {
		t.Fatalf("CSV output wrong:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		0.00005: "5.00e-05",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
