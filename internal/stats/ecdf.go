package stats

import "sort"

// ECDF is an empirical cumulative distribution function over float64 samples.
// The zero value is ready to use.
type ECDF struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (e *ECDF) Add(v float64) {
	e.samples = append(e.samples, v)
	e.sorted = false
}

// AddAll appends all samples.
func (e *ECDF) AddAll(vs []float64) {
	e.samples = append(e.samples, vs...)
	e.sorted = false
}

// N reports the number of samples.
func (e *ECDF) N() int { return len(e.samples) }

func (e *ECDF) sort() {
	if !e.sorted {
		sort.Float64s(e.samples)
		e.sorted = true
	}
}

// At returns P(X <= x), the fraction of samples at or below x.
// It returns 0 for an empty ECDF.
func (e *ECDF) At(x float64) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	e.sort()
	i := sort.SearchFloat64s(e.samples, x)
	// Advance over samples equal to x (SearchFloat64s returns the first).
	for i < len(e.samples) && e.samples[i] <= x {
		i++
	}
	return float64(i) / float64(len(e.samples))
}

// Quantile returns the q-th sample quantile, q in [0, 1].
// It returns 0 for an empty ECDF.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	e.sort()
	if q <= 0 {
		return e.samples[0]
	}
	if q >= 1 {
		return e.samples[len(e.samples)-1]
	}
	i := int(q * float64(len(e.samples)))
	if i >= len(e.samples) {
		i = len(e.samples) - 1
	}
	return e.samples[i]
}

// Points returns n evenly spaced (x, P(X<=x)) pairs spanning the sample
// range, suitable for plotting a CDF curve.
func (e *ECDF) Points(n int) (xs, ps []float64) {
	if len(e.samples) == 0 || n <= 0 {
		return nil, nil
	}
	e.sort()
	lo, hi := e.samples[0], e.samples[len(e.samples)-1]
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		ps[i] = e.At(x)
	}
	return xs, ps
}
