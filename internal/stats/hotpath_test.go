package stats

import (
	"math"
	"testing"
)

// The in-place reseeding forms must reproduce the allocating constructors
// bit for bit: the epoch hot path relies on Seed/Derive being drop-in
// replacements for NewRNG/DeriveRNG.
func TestSeedMatchesNewRNG(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		want := NewRNG(seed)
		var r RNG
		r.Seed(seed)
		for i := 0; i < 100; i++ {
			if got, w := r.Uint64(), want.Uint64(); got != w {
				t.Fatalf("seed %d: Seed diverged from NewRNG at draw %d", seed, i)
			}
		}
	}
}

func TestDeriveMatchesDeriveRNG(t *testing.T) {
	var r RNG
	for stream := uint64(0); stream < 50; stream++ {
		want := DeriveRNG(99, stream)
		r.Derive(99, stream) // reused across streams, like a worker would
		for i := 0; i < 20; i++ {
			if got, w := r.Uint64(), want.Uint64(); got != w {
				t.Fatalf("stream %d: Derive diverged from DeriveRNG at draw %d", stream, i)
			}
		}
	}
}

// DeriveUniform is the one-draw-per-stream gate: it must be a pure function
// of (seed, stream), in [0,1), roughly uniform across streams, and not a
// replay of the first draw of the Derive stream for the same pair.
func TestDeriveUniform(t *testing.T) {
	if DeriveUniform(7, 9) != DeriveUniform(7, 9) {
		t.Fatal("DeriveUniform is not deterministic")
	}
	var sum float64
	var r RNG
	const n = 20000
	for i := uint64(0); i < n; i++ {
		u := DeriveUniform(123, i)
		if u < 0 || u >= 1 {
			t.Fatalf("DeriveUniform out of [0,1): %g", u)
		}
		sum += u
		r.Derive(123, i)
		if r.Float64() == u {
			t.Fatalf("stream %d: gate draw replays the derived RNG's first draw", i)
		}
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("DeriveUniform mean %.4f, want ~0.5", mean)
	}
}

// binomialNonzeroExact is the brute-force reference: rejection-sample the
// Bernoulli-trial implementation until the result is nonzero.
func binomialNonzeroExact(r *RNG, n int, p float64) int {
	for {
		if d := r.BinomialExact(n, p); d > 0 {
			return d
		}
	}
}

// chiSquaredTwoSample computes the two-sample chi-squared statistic between
// integer sample sets a and b, pooling outcome bins until each holds at
// least 10 combined observations, and returns the statistic and the degrees
// of freedom (pooled bins - 1).
func chiSquaredTwoSample(a, b []int) (chi2 float64, df int) {
	max := 0
	for _, v := range a {
		if v > max {
			max = v
		}
	}
	for _, v := range b {
		if v > max {
			max = v
		}
	}
	ca := make([]float64, max+1)
	cb := make([]float64, max+1)
	for _, v := range a {
		ca[v]++
	}
	for _, v := range b {
		cb[v]++
	}
	k1 := math.Sqrt(float64(len(b)) / float64(len(a)))
	k2 := math.Sqrt(float64(len(a)) / float64(len(b)))
	var px, py float64 // pooled bin accumulators
	flush := func() {
		if px+py > 0 {
			d := k1*px - k2*py
			chi2 += d * d / (px + py)
			df++
		}
		px, py = 0, 0
	}
	for i := 0; i <= max; i++ {
		px += ca[i]
		py += cb[i]
		if px+py >= 10 {
			flush()
		}
	}
	flush()
	if df > 0 {
		df--
	}
	return chi2, df
}

// BinomialNonzero must agree in distribution with BinomialExact conditioned
// on a nonzero result. Moderate p lets the rejection reference run in
// reasonable time; tiny p is covered by netem's end-to-end sampler test.
func TestBinomialNonzeroMatchesExactConditional(t *testing.T) {
	for _, tc := range []struct {
		n       int
		p       float64
		samples int
	}{
		{100, 0.3, 20000},
		{50, 0.05, 20000},
		{100, 1e-3, 15000},
	} {
		fast := NewRNG(1)
		ref := NewRNG(2)
		a := make([]int, tc.samples)
		b := make([]int, tc.samples)
		for i := range a {
			a[i] = fast.BinomialNonzero(tc.n, tc.p)
			if a[i] < 1 || a[i] > tc.n {
				t.Fatalf("n=%d p=%g: BinomialNonzero returned %d", tc.n, tc.p, a[i])
			}
			b[i] = binomialNonzeroExact(ref, tc.n, tc.p)
		}
		chi2, df := chiSquaredTwoSample(a, b)
		// Deterministic seeds make this a regression bound, not a flaky
		// hypothesis test; 3·df+15 is far beyond any plausible quantile.
		if limit := 3*float64(df) + 15; chi2 > limit {
			t.Fatalf("n=%d p=%g: chi2=%.1f (df=%d) exceeds %.1f", tc.n, tc.p, chi2, df, limit)
		}
	}
}

func TestBinomialNonzeroEdgeCases(t *testing.T) {
	r := NewRNG(3)
	if got := r.BinomialNonzero(7, 1); got != 7 {
		t.Fatalf("p=1 should drop everything, got %d", got)
	}
	if got := r.BinomialNonzero(1, 0.25); got != 1 {
		t.Fatalf("n=1 conditioned nonzero must be 1, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BinomialNonzero(10, 0) did not panic")
		}
	}()
	r.BinomialNonzero(10, 0)
}
