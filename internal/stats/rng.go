// Package stats provides the deterministic random-number generation and
// small-sample statistics used throughout vigil.
//
// Every stochastic component in vigil (traffic generation, ECMP seeding,
// drop sampling, solver tie-breaking) draws from an explicitly seeded RNG so
// that simulations, experiments and tests are reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It is not safe for concurrent use;
// derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Two generators built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := new(RNG)
	r.Seed(seed)
	return r
}

// Seed resets r in place to the stream NewRNG(seed) would produce, without
// allocating. It is the hot-path form of NewRNG for callers that reuse one
// generator across many streams (e.g. one RNG value per worker reseeded per
// flow).
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent's state at the time of the call, so a
// fixed call order yields fixed children.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// DeriveRNG returns the generator for the stream-th named substream of seed.
// Unlike Split, the result depends only on (seed, stream) — not on how many
// other streams were derived before it — so stream i can be drawn by any
// worker in any order and still produce identical values. This is the basis
// of the parallel simulator's determinism: each flow's drop draws come from
// DeriveRNG(epochSeed, flowIndex), making the epoch independent of both the
// worker count and the flow processing order.
//
// Seed and stream are decorrelated by two SplitMix64 rounds before seeding
// xoshiro, so adjacent stream indices yield unrelated sequences.
func DeriveRNG(seed, stream uint64) *RNG {
	r := new(RNG)
	r.Derive(seed, stream)
	return r
}

// Derive resets r in place to the stream-th substream of seed, producing
// exactly the stream DeriveRNG(seed, stream) would, without allocating.
// This is the epoch hot path's per-flow reseed: each worker owns one RNG
// value and Derives it for every flow it simulates.
func (r *RNG) Derive(seed, stream uint64) {
	next, h1 := splitmix64(seed)
	_, h2 := splitmix64(next ^ stream)
	r.Seed(h1 ^ rotl(h2, 27))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// uniformDomain decorrelates DeriveUniform's output from the xoshiro stream
// that Derive(seed, stream) produces for the same (seed, stream) pair.
const uniformDomain = 0x53c5ca59b93161ff

// DeriveUniform returns a single uniform [0, 1) value for the stream-th
// substream of seed — the counter-based shortcut for code that needs exactly
// one draw per stream (the simulator's per-flow survival gate) and would
// waste time seeding a full generator for it. The value is a fixed function
// of (seed, stream) only, like DeriveRNG, and is decorrelated from the
// stream Derive(seed, stream) yields, so a caller may consume the gate draw
// here and fall back to the derived RNG for follow-up draws.
func DeriveUniform(seed, stream uint64) float64 {
	next, h1 := splitmix64(seed)
	_, h2 := splitmix64(next ^ stream)
	_, g := splitmix64(h1 ^ rotl(h2, 27) ^ uniformDomain)
	return float64(g>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // bias negligible for n << 2^64
}

// IntRange returns a uniform value in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto sample with shape alpha on [lo, hi],
// used for heavy-tailed flow sizes in the replay-style traffic generator.
func (r *RNG) Pareto(alpha, lo, hi float64) float64 {
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}
