package stats

import "math"

// Summary holds the mean and a 95% confidence half-width of a sample set,
// the form in which the paper reports repeated-seed experiment results.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation
	CI95 float64 // 95% confidence half-width (normal approximation)
}

// Summarize computes a Summary of vs. An empty slice yields a zero Summary.
func Summarize(vs []float64) Summary {
	n := len(vs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range vs {
		d := v - mean
		ss += d * d
	}
	s := Summary{N: n, Mean: mean}
	if n > 1 {
		s.Std = math.Sqrt(ss / float64(n-1))
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(n))
	}
	return s
}

// Mean returns the arithmetic mean of vs (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// BernoulliKL returns the Kullback-Leibler divergence D(q || r) between two
// Bernoulli distributions with success probabilities q and r, in nats.
// It is the exponent of the large-deviation bound in Theorem 2 (eq. 9).
func BernoulliKL(q, r float64) float64 {
	switch {
	case q < 0 || q > 1 || r <= 0 || r >= 1:
		return math.Inf(1)
	case q == 0:
		return -math.Log1p(-r)
	case q == 1:
		return -math.Log(r)
	}
	return q*math.Log(q/r) + (1-q)*math.Log((1-q)/(1-r))
}
