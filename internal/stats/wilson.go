package stats

import "math"

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion: successes out of trials, at critical value z
// (1.96 ≈ 95%, 2.576 ≈ 99%). Unlike the normal approximation it behaves at
// p near 0 or 1 and at small n — exactly the regimes a conformance suite
// hits when a detector's recall is ~1.0 over a few dozen epochs.
//
// The conformance suite asserts "metric ≥ bound" as "the interval's upper
// limit is ≥ bound": a run fails only when the data statistically rules the
// bound out, not when a single unlucky seed dips below it.
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	if z <= 0 {
		p := float64(successes) / float64(trials)
		return p, p
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	hw := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - hw
	hi = center + hw
	// Clamp to [0, 1] and snap the exact boundary cases (p = 0 or 1) whose
	// closed-form limit is the boundary but whose floating-point evaluation
	// leaves ~1e-17 residue.
	if lo < 0 || successes == 0 {
		lo = 0
	}
	if hi > 1 || successes == trials {
		hi = 1
	}
	return lo, hi
}
