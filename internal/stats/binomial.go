package stats

import "math"

// Binomial returns a sample from Binomial(n, p): the number of packets (out
// of n) dropped by a link with drop probability p.
//
// Datacenter drop rates are tiny (1e-8 .. 1e-2), so the expected count n*p is
// usually far below one. The sampler therefore uses geometric skipping —
// O(n*p + 1) expected work — instead of n Bernoulli trials, falling back to
// inversion only when p is large.
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		// Symmetry keeps the skip distances long.
		return n - r.Binomial(n, 1-p)
	}
	lq := math.Log1p(-p) // log(1-p), negative
	count := 0
	i := 0
	for {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		skip := int(math.Log(u) / lq) // failures before next success
		i += skip + 1
		if i > n {
			return count
		}
		count++
	}
}

// BinomialNonzero draws from Binomial(n, p) conditioned on the result being
// at least 1. It panics when the conditioning event is impossible (n <= 0 or
// p <= 0).
//
// Rejection-resampling Binomial(n, p) until nonzero would take an expected
// 1/(1-(1-p)^n) attempts — millions at datacenter noise rates — so instead
// the sampler is exact and O(n*p + 1): the index J of the first success is
// drawn from its closed-form conditional law (a geometric truncated to n
// trials, inverted analytically), and the remaining n-J trials contribute an
// unconditional Binomial(n-J, p). This is the survival-gated simulator's
// "first dropping link draws a nonzero count" primitive.
func (r *RNG) BinomialNonzero(n int, p float64) int {
	if n <= 0 || p <= 0 {
		panic("stats: BinomialNonzero conditioned on an impossible event")
	}
	if p >= 1 {
		return n
	}
	lq := math.Log1p(-p) // log(1-p), negative
	// T = P(X >= 1) = 1 - (1-p)^n, computed to full precision at tiny p.
	T := -math.Expm1(float64(n) * lq)
	u := r.Float64()
	// Invert P(J <= j | X >= 1) = (1 - (1-p)^j)/T at u.
	j := int(math.Ceil(math.Log1p(-u*T) / lq))
	if j < 1 {
		j = 1
	}
	if j > n {
		j = n
	}
	return 1 + r.Binomial(n-j, p)
}

// BinomialExact draws Binomial(n, p) with n independent Bernoulli trials.
// It exists as a reference implementation for tests of Binomial.
func (r *RNG) BinomialExact(n int, p float64) int {
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(p) {
			count++
		}
	}
	return count
}
