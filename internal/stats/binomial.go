package stats

import "math"

// Binomial returns a sample from Binomial(n, p): the number of packets (out
// of n) dropped by a link with drop probability p.
//
// Datacenter drop rates are tiny (1e-8 .. 1e-2), so the expected count n*p is
// usually far below one. The sampler therefore uses geometric skipping —
// O(n*p + 1) expected work — instead of n Bernoulli trials, falling back to
// inversion only when p is large.
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		// Symmetry keeps the skip distances long.
		return n - r.Binomial(n, 1-p)
	}
	lq := math.Log1p(-p) // log(1-p), negative
	count := 0
	i := 0
	for {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		skip := int(math.Log(u) / lq) // failures before next success
		i += skip + 1
		if i > n {
			return count
		}
		count++
	}
}

// BinomialExact draws Binomial(n, p) with n independent Bernoulli trials.
// It exists as a reference implementation for tests of Binomial.
func (r *RNG) BinomialExact(n int, p float64) int {
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(p) {
			count++
		}
	}
	return count
}
