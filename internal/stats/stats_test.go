package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntRange(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(10, 60)
		if v < 10 || v > 60 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 51 {
		t.Fatalf("IntRange covered %d/51 values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(1)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

// TestBinomialMatchesExact checks that the geometric-skip sampler and the
// n-trial reference sampler agree in mean across a range of (n, p).
func TestBinomialMatchesExact(t *testing.T) {
	r := NewRNG(123)
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.001}, {100, 0.01}, {100, 0.3}, {100, 0.7},
		{1000, 0.0001}, {10, 0.5}, {5, 0.9},
	}
	for _, c := range cases {
		const trials = 20000
		var skip, exact float64
		for i := 0; i < trials; i++ {
			skip += float64(r.Binomial(c.n, c.p))
			exact += float64(r.BinomialExact(c.n, c.p))
		}
		skip /= trials
		exact /= trials
		want := float64(c.n) * c.p
		tol := 4 * math.Sqrt(float64(c.n)*c.p*(1-c.p)/trials) * 2
		if tol < 1e-3 {
			tol = 1e-3
		}
		if math.Abs(skip-want) > tol {
			t.Errorf("Binomial(%d,%v) mean=%v want %v +- %v", c.n, c.p, skip, want, tol)
		}
		if math.Abs(exact-want) > tol {
			t.Errorf("BinomialExact(%d,%v) mean=%v want %v +- %v", c.n, c.p, exact, want, tol)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	r := NewRNG(77)
	err := quick.Check(func(n16 uint16, pv uint16) bool {
		n := int(n16 % 500)
		p := float64(pv) / 65535
		v := r.Binomial(n, p)
		return v >= 0 && v <= n
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := NewRNG(1)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Fatalf("Binomial(100, 0) = %d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Fatalf("Binomial(100, 1) = %d", got)
	}
}

func TestECDF(t *testing.T) {
	var e ECDF
	for _, v := range []float64{1, 2, 3, 4, 5} {
		e.Add(v)
	}
	if got := e.At(3); got != 0.6 {
		t.Fatalf("At(3) = %v, want 0.6", got)
	}
	if got := e.At(0); got != 0 {
		t.Fatalf("At(0) = %v, want 0", got)
	}
	if got := e.At(10); got != 1 {
		t.Fatalf("At(10) = %v, want 1", got)
	}
	if q := e.Quantile(0.5); q != 3 {
		t.Fatalf("Quantile(0.5) = %v, want 3", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", q)
	}
	if q := e.Quantile(1); q != 5 {
		t.Fatalf("Quantile(1) = %v, want 5", q)
	}
}

func TestECDFEmpty(t *testing.T) {
	var e ECDF
	if e.At(1) != 0 || e.Quantile(0.5) != 0 || e.N() != 0 {
		t.Fatal("empty ECDF should return zeros")
	}
	xs, ps := e.Points(5)
	if xs != nil || ps != nil {
		t.Fatal("empty ECDF Points should be nil")
	}
}

// ECDF.At must be monotone non-decreasing: a property-based check.
func TestECDFMonotone(t *testing.T) {
	r := NewRNG(4)
	var e ECDF
	for i := 0; i < 500; i++ {
		e.Add(r.Float64() * 100)
	}
	err := quick.Check(func(a, b float64) bool {
		x, y := math.Mod(math.Abs(a), 100), math.Mod(math.Abs(b), 100)
		if x > y {
			x, y = y, x
		}
		return e.At(x) <= e.At(y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestECDFPoints(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{0, 10})
	xs, ps := e.Points(11)
	if len(xs) != 11 || len(ps) != 11 {
		t.Fatalf("Points returned %d/%d entries", len(xs), len(ps))
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("final CDF point = %v, want 1", ps[len(ps)-1])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("std = %v, want ~2.138", s.Std)
	}
	if s.N != 8 {
		t.Fatalf("n = %d", s.N)
	}
	if s.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want > 0", s.CI95)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestBernoulliKL(t *testing.T) {
	if kl := BernoulliKL(0.5, 0.5); kl != 0 {
		t.Fatalf("KL(p||p) = %v, want 0", kl)
	}
	if kl := BernoulliKL(0.9, 0.1); kl <= 0 {
		t.Fatalf("KL(0.9||0.1) = %v, want > 0", kl)
	}
	// KL grows as the distributions separate.
	if BernoulliKL(0.9, 0.1) <= BernoulliKL(0.6, 0.4) {
		t.Fatal("KL not increasing with separation")
	}
	if !math.IsInf(BernoulliKL(0.5, 0), 1) {
		t.Fatal("KL against degenerate r should be +Inf")
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.2, 1, 1000)
		if v < 1-1e-9 || v > 1000+1e-6 {
			t.Fatalf("Pareto sample out of bounds: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(8)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.15 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func BenchmarkBinomialSmallP(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Binomial(100, 1e-4)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func TestWilsonInterval(t *testing.T) {
	// Reference: Wilson (1927) interval for 45/50 at z=1.96 is ~[0.787, 0.953].
	lo, hi := WilsonInterval(45, 50, 1.96)
	if lo < 0.78 || lo > 0.80 || hi < 0.94 || hi > 0.96 {
		t.Fatalf("WilsonInterval(45, 50, 1.96) = [%v, %v]", lo, hi)
	}
	// Degenerate and boundary behavior.
	if lo, hi := WilsonInterval(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Fatalf("zero trials: [%v, %v], want [0, 1]", lo, hi)
	}
	if lo, hi := WilsonInterval(10, 10, 0); lo != 1 || hi != 1 {
		t.Fatalf("z = 0 must collapse to the point estimate: [%v, %v]", lo, hi)
	}
	// p = 1 keeps a nontrivial lower limit and hi clamped to 1.
	lo, hi = WilsonInterval(20, 20, 2.576)
	if hi != 1 || lo >= 1 || lo < 0.7 {
		t.Fatalf("WilsonInterval(20, 20) = [%v, %v]", lo, hi)
	}
	// p = 0 mirrors it.
	lo, hi = WilsonInterval(0, 20, 2.576)
	if lo != 0 || hi <= 0 || hi > 0.3 {
		t.Fatalf("WilsonInterval(0, 20) = [%v, %v]", lo, hi)
	}
	// More trials must narrow the interval.
	lo1, hi1 := WilsonInterval(90, 100, 1.96)
	lo2, hi2 := WilsonInterval(900, 1000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval did not narrow with more trials")
	}
}
