package prof

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
)

// goroutineLabels dumps the debug=1 goroutine profile, the one public
// surface where goroutine label sets are observable: every labeled
// goroutine group prints its labels, so a phase name unique to the test
// appears in the dump iff some live goroutine carries it.
func goroutineLabels() string {
	var buf bytes.Buffer
	pprof.Lookup("goroutine").WriteTo(&buf, 1)
	return buf.String()
}

func TestPhaseBeginEnd(t *testing.T) {
	const name = "phase-begin-end-53ac1"
	p := NewPhase(name)
	p.Begin()
	if !strings.Contains(goroutineLabels(), name) {
		t.Fatal("Begin did not label the goroutine")
	}
	p.End()
	if strings.Contains(goroutineLabels(), name) {
		t.Fatal("End did not remove the label")
	}
}

func TestPhaseDo(t *testing.T) {
	const name = "phase-do-9b2e4"
	p := NewPhase(name)
	var inside string
	p.Do(func() { inside = goroutineLabels() })
	if !strings.Contains(inside, name) {
		t.Fatal("Do did not run fn under the phase label")
	}
	if strings.Contains(goroutineLabels(), name) {
		t.Fatal("label leaked past Do")
	}
}

// Goroutines spawned inside a phase inherit its label — the property the
// epoch pipeline relies on to attribute worker-pool samples to the phase
// that spawned the pool. The parent Ends before the child looks, so the
// label can only have come from inheritance.
func TestPhaseInheritance(t *testing.T) {
	const name = "phase-inherit-77d05"
	p := NewPhase(name)
	p.Begin()
	look := make(chan struct{})
	got := make(chan string)
	go func() {
		<-look
		got <- goroutineLabels()
	}()
	p.End()
	close(look)
	if !strings.Contains(<-got, name) {
		t.Fatal("spawned goroutine did not inherit the phase label")
	}
}

// Begin/End must stay allocation-free: they run inside the zero-alloc
// steady-state epoch budget (see netem's TestSteadyStateEpochAllocs).
func TestPhaseBeginEndAllocFree(t *testing.T) {
	p := NewPhase("phase-alloc-free")
	allocs := testing.AllocsPerRun(100, func() {
		p.Begin()
		p.End()
	})
	if allocs != 0 {
		t.Fatalf("Begin/End allocate %.1f times per cycle, want 0", allocs)
	}
}
