// Package prof wires the standard -cpuprofile / -memprofile flag pair
// into the vigil command-line tools, so every driver of the hot paths
// (vigil-sim, vigil-scenario, vigil-agents) can emit pprof data the same
// way.
package prof

import (
	"context"
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Phase is a precomputed pprof label set ("phase=<name>") that a hot path
// can enter and leave without allocating. A CPU profile taken while a
// phase is active (via -cpuprofile on a vigil tool or `go test
// -cpuprofile`) attributes every sample inside it to the phase, so the
// per-phase cost of an epoch — generate, shard, merge, traceroute — reads
// directly off `pprof -tags`.
//
// Begin/End label the calling goroutine in place; goroutines started while
// the label is set (the epoch's worker pool) inherit it. The label
// contexts are built once at construction, so Begin/End stay off the
// allocation budget of zero-alloc epochs — the reason the steady-state
// paths use a Phase instead of runtime/pprof.Do, which builds a fresh
// label context per call. Do remains the right form for cold paths.
type Phase struct {
	ctx, base context.Context
}

// NewPhase builds the label set for one named phase. Build phases once
// (package-level vars next to the code they time), not per call.
func NewPhase(name string) *Phase {
	base := context.Background()
	return &Phase{ctx: pprof.WithLabels(base, pprof.Labels("phase", name)), base: base}
}

// Begin tags the calling goroutine with the phase label. Pair with End;
// phases do not nest (End restores the empty label set, not the previous
// one).
func (p *Phase) Begin() { pprof.SetGoroutineLabels(p.ctx) }

// End removes the phase label from the calling goroutine.
func (p *Phase) End() { pprof.SetGoroutineLabels(p.base) }

// Do runs fn under the phase label — the convenient scoped form. It is
// Begin with a deferred End, so like them it restores the empty label set
// on return (phases do not nest). Note runtime/pprof.Do would be the wrong
// primitive here: it restores the labels of the context it was *given*, so
// handing it the phase context would leave the label stuck on the
// goroutine after the call.
func (p *Phase) Do(fn func()) {
	p.Begin()
	defer p.End()
	fn()
}

// Profiler owns the profiling flags and the running CPU profile.
type Profiler struct {
	cpu, mem string
	f        *os.File
}

// Register declares -cpuprofile and -memprofile on the default flag set;
// call it before flag.Parse.
func Register() *Profiler {
	p := &Profiler{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&p.mem, "memprofile", "", "write a heap profile (at exit) to this file")
	return p
}

// Start begins CPU profiling when -cpuprofile was given; call after
// flag.Parse.
func (p *Profiler) Start() error {
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.f = f
	return nil
}

// Stop flushes the CPU profile and, when -memprofile was given, writes a
// heap profile after settling the GC. It never double-stops, so error
// paths may call it unconditionally without discarding an already-written
// CPU profile.
func (p *Profiler) Stop() error {
	if p.f != nil {
		pprof.StopCPUProfile()
		err := p.f.Close()
		p.f = nil
		if err != nil {
			return err
		}
	}
	if p.mem == "" {
		return nil
	}
	f, err := os.Create(p.mem)
	if err != nil {
		return err
	}
	runtime.GC() // settle the heap so the profile shows retained state
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
