// Package prof wires the standard -cpuprofile / -memprofile flag pair
// into the vigil command-line tools, so every driver of the hot paths
// (vigil-sim, vigil-scenario, vigil-agents) can emit pprof data the same
// way.
package prof

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler owns the profiling flags and the running CPU profile.
type Profiler struct {
	cpu, mem string
	f        *os.File
}

// Register declares -cpuprofile and -memprofile on the default flag set;
// call it before flag.Parse.
func Register() *Profiler {
	p := &Profiler{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&p.mem, "memprofile", "", "write a heap profile (at exit) to this file")
	return p
}

// Start begins CPU profiling when -cpuprofile was given; call after
// flag.Parse.
func (p *Profiler) Start() error {
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.f = f
	return nil
}

// Stop flushes the CPU profile and, when -memprofile was given, writes a
// heap profile after settling the GC. It never double-stops, so error
// paths may call it unconditionally without discarding an already-written
// CPU profile.
func (p *Profiler) Stop() error {
	if p.f != nil {
		pprof.StopCPUProfile()
		err := p.f.Close()
		p.f = nil
		if err != nil {
			return err
		}
	}
	if p.mem == "" {
		return nil
	}
	f, err := os.Create(p.mem)
	if err != nil {
		return err
	}
	runtime.GC() // settle the heap so the profile shows retained state
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
