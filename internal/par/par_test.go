package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		in, want int
	}{
		{0, runtime.GOMAXPROCS(0)},
		{-5, runtime.GOMAXPROCS(0)},
		{1, 1},
		{7, 7},
	}
	for _, tc := range cases {
		if got := Workers(tc.in); got != tc.want {
			t.Fatalf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, size, want int
	}{
		{0, 10, 0},
		{-3, 10, 0},
		{10, 0, 0},
		{10, -1, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{1000, 64, 16},
	}
	for _, tc := range cases {
		if got := Chunks(tc.n, tc.size); got != tc.want {
			t.Fatalf("Chunks(%d, %d) = %d, want %d", tc.n, tc.size, got, tc.want)
		}
	}
}

// Every index must be visited exactly once, and chunk boundaries must be a
// pure function of (n, size) — lo = chunk*size — at every worker count.
func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	const n, size = 1000, 64
	for _, workers := range []int{1, 2, 3, 8, 100} {
		visits := make([]int32, n)
		ForEachChunk(n, size, workers, func(chunk, lo, hi int) {
			if lo != chunk*size {
				t.Errorf("chunk %d: lo = %d, want %d", chunk, lo, chunk*size)
			}
			if want := min(lo+size, n); hi != want {
				t.Errorf("chunk %d: hi = %d, want %d", chunk, hi, want)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// The single-worker path must run chunks in ascending order on the calling
// goroutine — the sequential path and the parallel path execute the same
// chunk set, but only the former guarantees order.
func TestForEachChunkSequentialOrdering(t *testing.T) {
	var order []int
	ForEachChunk(100, 10, 1, func(chunk, lo, hi int) {
		order = append(order, chunk) // no lock: must be the calling goroutine
	})
	if len(order) != 10 {
		t.Fatalf("ran %d chunks, want 10", len(order))
	}
	for i, c := range order {
		if c != i {
			t.Fatalf("sequential path ran chunk %d at position %d", c, i)
		}
	}
}

// Worker indices must stay within [0, min(workers, chunks)) so per-worker
// shard arrays can be sized up front.
func TestForEachChunkWorkerIndexBounds(t *testing.T) {
	cases := []struct {
		n, size, workers int
	}{
		{1000, 64, 4},  // more chunks than workers
		{100, 64, 8},   // fewer chunks (2) than workers
		{1000, 64, -1}, // default pool
	}
	for _, tc := range cases {
		bound := Workers(tc.workers)
		if nchunks := Chunks(tc.n, tc.size); bound > nchunks {
			bound = nchunks
		}
		var maxSeen atomic.Int64
		ForEachChunkWorker(tc.n, tc.size, tc.workers, func(worker, chunk, lo, hi int) {
			if worker < 0 || worker >= bound {
				t.Errorf("worker index %d outside [0, %d)", worker, bound)
			}
			for {
				cur := maxSeen.Load()
				if int64(worker) <= cur || maxSeen.CompareAndSwap(cur, int64(worker)) {
					break
				}
			}
		})
	}
}

// A panic in any chunk must propagate to the caller, on both the inline
// and the pooled path, and must not deadlock the pool.
func TestForEachChunkPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("recovered %v, want \"boom\"", r)
				}
			}()
			ForEachChunk(100, 10, workers, func(chunk, lo, hi int) {
				if chunk == 5 {
					panic("boom")
				}
			})
		})
	}
}

func TestForEachVisitsEveryIndex(t *testing.T) {
	const n = 257
	visits := make([]int32, n)
	ForEach(n, 8, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 8, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

// ForEachErr must return the error of the lowest failed index, regardless
// of completion order, and report nil when everything succeeds.
func TestForEachErr(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := ForEachErr(100, 8, func(i int) error {
		switch i {
		case 30:
			return errHigh
		case 7:
			return errLow
		}
		return nil
	})
	// Both 7 and 30 may or may not run depending on scheduling, but if any
	// error comes back it must be the lowest-index one that fired; with
	// index 7 always eligible before the fail-fast flag trips at 30 only
	// sometimes, accept either errLow alone or errLow-preferred.
	if err == nil {
		t.Fatal("errors swallowed")
	}
	if err == errHigh {
		// Legal only if index 7 never ran after the flag tripped — but 7 ran
		// before 30 in index order on some worker; the contract promises the
		// lowest *failed* index, so seeing errHigh means 7 returned nil,
		// which it cannot. Treat as failure.
		t.Fatal("got high-index error despite a lower failed index")
	}
	if err := ForEachErr(50, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("spurious error %v", err)
	}
}

// The fail-fast flag must stop later items from starting (already-running
// ones finish). With one worker, nothing after the failing index may run.
func TestForEachErrFailFast(t *testing.T) {
	var ran sync.Map
	failAt := 10
	err := ForEachErr(100, 1, func(i int) error {
		ran.Store(i, true)
		if i == failAt {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	count := 0
	ran.Range(func(any, any) bool { count++; return true })
	if count != failAt+1 {
		t.Fatalf("%d items ran after a fail-fast error at index %d", count, failAt)
	}
}

func TestGrain(t *testing.T) {
	cases := []struct {
		n, lo, hi, target int
		want              int
	}{
		{0, 16, 2048, 64, 16},         // empty input clamps to the floor
		{100, 16, 2048, 64, 16},       // small n clamps to the floor
		{6400, 16, 2048, 64, 100},     // exact target division
		{6401, 16, 2048, 64, 101},     // rounds the chunk size up, never the count
		{1 << 20, 16, 2048, 64, 2048}, // huge n clamps to the ceiling
		{100, 0, 0, 0, 1},             // degenerate bounds normalize
	}
	for _, c := range cases {
		if got := Grain(c.n, c.lo, c.hi, c.target); got != c.want {
			t.Errorf("Grain(%d,%d,%d,%d) = %d, want %d", c.n, c.lo, c.hi, c.target, got, c.want)
		}
	}
	// The determinism contract: the result is a pure function of the item
	// count and bounds — identical however many workers will consume it.
	for n := 0; n < 10_000; n += 37 {
		g := Grain(n, 16, 2048, 64)
		if g < 16 || g > 2048 {
			t.Fatalf("Grain(%d) = %d escapes [16, 2048]", n, g)
		}
		if g != Grain(n, 16, 2048, 64) {
			t.Fatalf("Grain(%d) is not deterministic", n)
		}
	}
}
