// Package par provides the deterministic fan-out primitives behind vigil's
// parallel epoch pipeline: fixed-size chunking with a bounded worker pool.
//
// Determinism contract: work is split into chunks whose boundaries depend
// only on the item count and chunk size — never on the worker count — and
// every chunk writes its result into a slot indexed by chunk number. A
// caller that merges chunk results in index order therefore observes the
// exact same reduction order (including floating-point grouping) at any
// parallelism, which is what makes same-seed epochs bit-identical whether
// they run on one core or sixty-four.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: n <= 0 means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Chunks returns how many size-sized chunks cover n items.
func Chunks(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// Grain picks a chunk size for fanning n items out. The result depends only
// on n and the bounds — never on the worker count — so chunk boundaries
// stay a pure function of the input size and the chunk-ordered merge stays
// bit-identical at any parallelism.
//
// It aims for about target chunks (enough to load-balance any realistic
// worker count with room for stragglers), clamped to [lo, hi]: the floor
// keeps tiny runs from sharding into per-item confetti, the ceiling keeps
// datacenter-scale runs from concentrating an epoch into so few chunks
// that workers idle.
func Grain(n, lo, hi, target int) int {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if target < 1 {
		target = 1
	}
	g := (n + target - 1) / target
	if g < lo {
		return lo
	}
	if g > hi {
		return hi
	}
	return g
}

// ForEachChunk runs fn(chunk, lo, hi) for every fixed-size chunk of [0, n),
// spread over at most workers goroutines. Chunk boundaries are a function of
// n and size alone, so downstream per-chunk results can be merged in chunk
// order to get worker-count-independent reductions. fn must not panic-swallow:
// a panic in any chunk propagates to the caller.
//
// workers <= 1 (or a single chunk) runs inline on the calling goroutine —
// the sequential path and the parallel path execute the same code.
func ForEachChunk(n, size, workers int, fn func(chunk, lo, hi int)) {
	ForEachChunkWorker(n, size, workers, func(_, chunk, lo, hi int) { fn(chunk, lo, hi) })
}

// ForEachChunkWorker is ForEachChunk with the pool slot exposed: worker is a
// stable index in [0, min(Workers(workers), chunk count)) identifying which
// goroutine runs the chunk. Use it for order-free accumulators (integer
// counters) that want O(workers) shards instead of O(chunks) — per-worker
// state must be merged order-insensitively, since chunk-to-worker assignment
// varies run to run.
func ForEachChunkWorker(n, size, workers int, fn func(worker, chunk, lo, hi int)) {
	nchunks := Chunks(n, size)
	if nchunks == 0 {
		return
	}
	workers = Workers(workers)
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 {
		for c := 0; c < nchunks; c++ {
			lo := c * size
			hi := min(lo+size, n)
			fn(0, c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * size
				hi := min(lo+size, n)
				if err := run(fn, w, c, lo, hi); err != nil {
					select {
					case panics <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// run invokes fn and converts a panic into a value so the pool can re-raise
// it on the calling goroutine instead of crashing the process from a worker.
func run(fn func(worker, chunk, lo, hi int), w, c, lo, hi int) (p any) {
	defer func() {
		if r := recover(); r != nil {
			p = r
		}
	}()
	fn(w, c, lo, hi)
	return nil
}

// ForEach runs fn(i) for every i in [0, n) over at most workers goroutines.
// It is ForEachChunk with chunk size 1 — the shape of multi-seed sweeps,
// where each item is one independent repetition writing into its own slot.
func ForEach(n, workers int, fn func(i int)) {
	ForEachChunk(n, 1, workers, func(_, lo, _ int) { fn(lo) })
}

// ForEachErr is ForEach with fail-fast error collection: after the first
// error, remaining items are skipped (already-running ones finish), and the
// error of the lowest failed index is returned. Items that ran still hold
// their side effects — callers discard partial results on error.
func ForEachErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	var failed atomic.Bool
	ForEach(n, workers, func(i int) {
		if failed.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
