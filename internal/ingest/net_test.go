package ingest

import (
	"context"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"vigil/internal/engine"
	"vigil/internal/metrics"
	"vigil/internal/topology"
	"vigil/internal/transport"
	"vigil/internal/vote"
)

// listen returns a loopback listener for a collector under test.
func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// fastTransport keeps networked tests snappy: tight polls, quick reconnect
// backoff, fast liveness.
func fastTransport() transport.ClientConfig {
	return transport.ClientConfig{
		WaitPoll:    10 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	}
}

// waitCollector bounds a collector Wait so a wedged pipeline fails the
// test instead of hanging it.
func waitCollector(t *testing.T, col *NetCollector) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := col.Wait(ctx); err != nil {
		t.Fatalf("collector never finished: %v", err)
	}
}

// The networked extension of TestFaultFreeBitIdentical: with no faults on
// the wire, epochs settled across a real TCP socket are bit-identical to
// the batch engine's EpochResults — on both planes.
func TestFaultFreeBitIdenticalNetworked(t *testing.T) {
	for _, plane := range []engine.Plane{engine.Flow, engine.Packet} {
		t.Run(string(plane), func(t *testing.T) {
			topoCfg := equivTopo
			epochs := 5
			if plane == engine.Packet {
				topoCfg = topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 2}
				epochs = 3
			}
			cfg := engine.Config{Plane: plane, Seed: 7, Parallelism: 4}
			batch := newTestEngine(t, cfg, topoCfg, 0.02)
			want := make([]*engine.EpochResult, epochs)
			for i := range want {
				want[i] = batch.RunEpoch()
			}

			eng := newTestEngine(t, cfg, topoCfg, 0.02)
			var mu sync.Mutex
			var got []*engine.EpochResult
			col, err := ServeCollector(CollectorConfig{
				Listener:    listen(t),
				Parallelism: 4,
				Sink: func(res *engine.EpochResult) {
					mu.Lock()
					got = append(got, res)
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer col.Close()

			if err := RunAgent(context.Background(), AgentConfig{
				Engine: eng, Addr: col.Addr(), Epochs: epochs, Seed: 7,
				Transport: fastTransport(),
			}); err != nil {
				t.Fatal(err)
			}
			waitCollector(t, col)

			if len(got) != epochs {
				t.Fatalf("settled %d epochs over the wire, want %d", len(got), epochs)
			}
			for i, res := range got {
				if !reflect.DeepEqual(res, want[i]) {
					t.Fatalf("epoch %d: networked settle diverged from batch RunEpoch", i)
				}
			}
		})
	}
}

// A collector crash mid-run loses nothing: the restarted collector loads
// the checkpoint, sessions resume and replay past their durable
// watermarks, and every epoch settles exactly once across the two
// incarnations.
func TestNetCollectorCrashRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	eng := newTestEngine(t, engine.Config{Seed: 9}, soakTopo, 0.05)
	const epochs = 6

	record := func(dst *[]int, mu *sync.Mutex) func(*engine.EpochResult) {
		return func(res *engine.EpochResult) {
			mu.Lock()
			*dst = append(*dst, res.Epoch)
			mu.Unlock()
		}
	}
	var mu sync.Mutex
	var settled1, settled2 []int

	col1, err := ServeCollector(CollectorConfig{
		Listener: listen(t), CheckpointPath: path, Sink: record(&settled1, &mu),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := transport.NewProxy("127.0.0.1:0", transport.ProxyConfig{Target: col1.Addr(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	tctr := &metrics.TransportCounters{}
	agentErr := make(chan error, 1)
	go func() {
		agentErr <- RunAgent(context.Background(), AgentConfig{
			Engine: eng, Addr: proxy.Addr(), Epochs: epochs, Seed: 9,
			Interval: 50 * time.Millisecond, Counters: tctr,
			Transport: fastTransport(),
		})
	}()

	// Crash the collector right after its second settle is durably
	// checkpointed (epochs 0 and 1). The agent is paced by Interval, so the
	// next settle is comfortably far away.
	deadline := time.Now().Add(30 * time.Second)
	for col1.TransportCounters().Checkpoints.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("collector never checkpointed twice")
		}
		time.Sleep(2 * time.Millisecond)
	}
	col1.Close()

	col2, err := ServeCollector(CollectorConfig{
		Listener: listen(t), CheckpointPath: path, Sink: record(&settled2, &mu),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	proxy.Retarget(col2.Addr())

	select {
	case err := <-agentErr:
		if err != nil {
			t.Fatalf("agent failed across the restart: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("agent never finished")
	}
	waitCollector(t, col2)

	mu.Lock()
	defer mu.Unlock()
	if want := []int{0, 1}; !reflect.DeepEqual(settled1, want) {
		t.Fatalf("incarnation 1 settled %v, want %v", settled1, want)
	}
	if want := []int{2, 3, 4, 5}; !reflect.DeepEqual(settled2, want) {
		t.Fatalf("incarnation 2 settled %v, want %v", settled2, want)
	}
	if tctr.Resumes.Load() < 1 {
		t.Fatal("the agent never resumed across the collector restart")
	}
}

// The networked chaos soak: seeded drops, duplicates, reorders and
// mid-frame cuts on the wire, plus a full partition healed mid-run. Every
// epoch still settles exactly once, in order; conservation holds; and the
// resume counter matches the injected cut count exactly.
func TestNetChaosSoak(t *testing.T) {
	eng := &countingEngine{Engine: newTestEngine(t, engine.Config{Seed: 23}, soakTopo, 0.05)}
	const epochs = 20

	var mu sync.Mutex
	var settled []int
	var proxy *transport.Proxy
	var partitionOnce sync.Once
	ictr := &metrics.IngestCounters{}
	col, err := ServeCollector(CollectorConfig{
		Listener:   listen(t),
		MaxRetries: 2,
		Counters:   ictr,
		Sink: func(res *engine.EpochResult) {
			mu.Lock()
			settled = append(settled, res.Epoch)
			mu.Unlock()
			if res.Epoch == 5 {
				// Sever everything mid-run and refuse reconnects for a
				// while: a real partition, not just a blip.
				partitionOnce.Do(func() {
					proxy.Partition()
					time.AfterFunc(150*time.Millisecond, proxy.Heal)
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	proxy, err = transport.NewProxy("127.0.0.1:0", transport.ProxyConfig{
		Target: col.Addr(), Seed: 77,
		Drop: 0.04, Dup: 0.04, Reorder: 0.04, Cut: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	tctr := &metrics.TransportCounters{}
	tc := fastTransport()
	tc.TokenResendEvery = 3
	if err := RunAgent(context.Background(), AgentConfig{
		Engine: eng, Addr: proxy.Addr(), Epochs: epochs, Seed: 23,
		Counters: tctr, Transport: tc,
	}); err != nil {
		t.Fatal(err)
	}
	waitCollector(t, col)

	mu.Lock()
	defer mu.Unlock()
	if len(settled) != epochs {
		t.Fatalf("settled %d epochs, want %d (got %v)", len(settled), epochs, settled)
	}
	for i, e := range settled {
		if e != i {
			t.Fatalf("settle order %v: epoch %d settled at position %d", settled, e, i)
		}
	}
	// Every resume maps to exactly one injected cut (the partition's sever
	// is counted as a cut), and vice versa.
	if got, want := tctr.Resumes.Load(), proxy.InjCuts.Load(); got != want {
		t.Fatalf("Resumes = %d, want InjCuts = %d", got, want)
	}
	if proxy.InjCuts.Load() < 1 {
		t.Fatal("the partition never cut a live connection")
	}
	// The fault mix actually fired.
	if proxy.InjDrops.Load() == 0 || proxy.InjDups.Load() == 0 || proxy.InjReorders.Load() == 0 {
		t.Fatalf("fault mix idle: drops %d, dups %d, reorders %d",
			proxy.InjDrops.Load(), proxy.InjDups.Load(), proxy.InjReorders.Load())
	}
	// Injected duplicates arrive as stale frames and die at the watermark.
	if col.TransportCounters().FramesDropped.Load() == 0 {
		t.Fatal("no stale frames dropped despite injected duplicates")
	}
	// Wire-level drops surface as ingest gaps and are recovered end to end.
	if ictr.Retries.Load() == 0 || ictr.Recovered.Load() == 0 {
		t.Fatalf("drop recovery idle: retries %d, recovered %d",
			ictr.Retries.Load(), ictr.Recovered.Load())
	}
	// Conservation across the whole stack: every emitted report was either
	// accepted into its epoch or accounted as lost — nothing vanished, and
	// nothing was double-counted.
	if got, want := ictr.Accepted.Load()+ictr.Lost.Load(), eng.emitted.Load(); got != want {
		t.Fatalf("conservation: Accepted+Lost = %d, want emitted = %d", got, want)
	}
}

// RunAgent and ServeCollector reject configurations the wire protocol
// cannot express or serve.
func TestNetworkedValidation(t *testing.T) {
	if err := RunAgent(context.Background(), AgentConfig{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	eng := newTestEngine(t, engine.Config{Seed: 1}, soakTopo, 0)
	if err := RunAgent(context.Background(), AgentConfig{Engine: eng, Addr: "x", Epochs: 0}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	// Analysis options that cannot ride the handshake must be rejected up
	// front — silently dropping them would break the bit-identity contract.
	topo, err := topology.New(soakTopo)
	if err != nil {
		t.Fatal(err)
	}
	withTopo, err := engine.New(engine.Config{
		Topo: topo, Seed: 1, Detect: vote.DefaultDetectOptions(topo),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunAgent(context.Background(), AgentConfig{Engine: withTopo, Addr: "x", Epochs: 1}); err == nil {
		t.Fatal("non-serializable Detect.Topo accepted")
	}
	if _, err := ServeCollector(CollectorConfig{}); err == nil {
		t.Fatal("collector without a listener accepted")
	}
}
