package ingest

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"vigil/internal/engine"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// soakTopo is a deliberately small Clos so chaos runs settle hundreds of
// epochs quickly; equivTopo matches the engine tests' flow fixture so the
// bit-identical contract is exercised on a non-trivial report volume.
var (
	soakTopo  = topology.Config{Pods: 2, ToRsPerPod: 2, T1PerPod: 2, T2: 1, HostsPerToR: 2}
	equivTopo = topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 4}
)

// newTestEngine builds an engine with one injected failure so every epoch
// carries a real vote signal.
func newTestEngine(t testing.TB, cfg engine.Config, topoCfg topology.Config, rate float64) engine.Engine {
	t.Helper()
	topo, err := topology.New(topoCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topo = topo
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	link := eng.Topology().LinksOfClass(topology.L1Up)[0]
	if err := eng.InjectFailure(link, rate); err != nil {
		t.Fatal(err)
	}
	return eng
}

// runService drives a service over n epochs and returns the settled
// results in settle order.
func runService(t testing.TB, cfg Config, n int) ([]*engine.EpochResult, *Service) {
	t.Helper()
	var settled []*engine.EpochResult
	userSink := cfg.Sink
	cfg.Sink = func(res *engine.EpochResult) {
		settled = append(settled, res)
		if userSink != nil {
			userSink(res)
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	return settled, s
}

// The core contract: with faults disabled, vigild's settled epochs are
// bit-identical to the batch engine's EpochResults — on both planes, at
// Parallelism 1 and 8 (parallelism shards the flow plane's analysis
// chunks; the packet plane ignores it by design).
func TestFaultFreeBitIdentical(t *testing.T) {
	for _, plane := range []engine.Plane{engine.Flow, engine.Packet} {
		for _, par := range []int{1, 8} {
			t.Run(string(plane)+"/par"+string(rune('0'+par)), func(t *testing.T) {
				topoCfg := equivTopo
				epochs := 5
				if plane == engine.Packet {
					topoCfg = topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 2}
					if testing.Short() {
						epochs = 3
					}
				}
				cfg := engine.Config{Plane: plane, Seed: 7, Parallelism: par}
				batch := newTestEngine(t, cfg, topoCfg, 0.02)
				want := make([]*engine.EpochResult, epochs)
				for i := range want {
					want[i] = batch.RunEpoch()
				}

				eng := newTestEngine(t, cfg, topoCfg, 0.02)
				got, _ := runService(t, Config{Engine: eng}, epochs)
				if len(got) != epochs {
					t.Fatalf("settled %d epochs, want %d", len(got), epochs)
				}
				for i, res := range got {
					if !reflect.DeepEqual(res, want[i]) {
						t.Fatalf("epoch %d: settled result diverged from batch RunEpoch", i)
					}
				}
			})
		}
	}
}

// countingEngine counts every report its Step emits, giving the tests the
// total offered load independently of the ingest counters under test.
type countingEngine struct {
	engine.Engine
	emitted atomic.Int64
}

func (e *countingEngine) Step(emit func(vote.Report)) *engine.EpochResult {
	return e.Engine.Step(func(r vote.Report) {
		e.emitted.Add(1)
		if emit != nil {
			emit(r)
		}
	})
}

func (e *countingEngine) RunEpoch() *engine.EpochResult { panic("use Step") }

// MaxRetries above 255 must be capped at construction: the attempt number
// is a uint8 through the whole retry path, and attempt 256 would wrap to 0
// — a retry masquerading as a first attempt in the fault identity and the
// recovery accounting.
func TestMaxRetriesCappedAtUint8(t *testing.T) {
	eng := newTestEngine(t, engine.Config{Seed: 3}, soakTopo, 0)
	s, err := New(Config{Engine: eng, MaxRetries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.MaxRetries != 255 {
		t.Fatalf("MaxRetries 1000 capped to %d, want 255", s.cfg.MaxRetries)
	}
	if s2, err := New(Config{Engine: eng, MaxRetries: 255}); err != nil || s2.cfg.MaxRetries != 255 {
		t.Fatalf("MaxRetries 255 altered: %d, err %v", s2.cfg.MaxRetries, err)
	}
	if _, err := New(Config{Engine: eng, MaxRetries: -1}); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
}

// With retries disabled every injected fault maps to exactly one observed
// counter; this is the counter algebra the ISSUE pins.
func TestFaultCounterAgreement(t *testing.T) {
	eng := &countingEngine{Engine: newTestEngine(t, engine.Config{Seed: 11}, soakTopo, 0.05)}
	// Crash and burst draw their window start over a span much wider than
	// these small agents' per-epoch report counts, so most windows miss;
	// the hot probabilities make every injected counter move anyway.
	faults := FaultConfig{
		Seed:      99,
		Drop:      0.05,
		Duplicate: 0.04,
		Delay:     0.06,
		DelayMax:  4, // grace is 2, so delays split across the grace boundary
		Burst:     0.1,
		Crash:     0.2,
	}
	_, s := runService(t, Config{Engine: eng, Faults: faults, MaxRetries: 0}, 40)
	c := s.Counters()

	if got := c.SettledEpochs.Load(); got != 40 {
		t.Fatalf("settled %d epochs, want 40", got)
	}
	for _, inj := range []struct {
		name string
		v    int64
	}{
		{"InjDrops", c.InjDrops.Load()},
		{"InjDuplicates", c.InjDuplicates.Load()},
		{"InjLateInGrace", c.InjLateInGrace.Load()},
		{"InjLatePastGrace", c.InjLatePastGrace.Load()},
		{"InjBurstDrops", c.InjBurstDrops.Load()},
		{"InjCrashDrops", c.InjCrashDrops.Load()},
	} {
		if inj.v == 0 {
			t.Errorf("%s = 0: the fault mix never exercised this fault", inj.name)
		}
	}
	if got, want := c.Duplicates.Load(), c.InjDuplicates.Load(); got != want {
		t.Errorf("Duplicates = %d, want InjDuplicates = %d", got, want)
	}
	if got, want := c.Late.Load(), c.InjLateInGrace.Load(); got != want {
		t.Errorf("Late = %d, want InjLateInGrace = %d", got, want)
	}
	if got, want := c.LateDropped.Load(), c.InjLatePastGrace.Load(); got != want {
		t.Errorf("LateDropped = %d, want InjLatePastGrace = %d", got, want)
	}
	// A past-grace report is lost to its epoch even though it physically
	// arrived (and was counted LateDropped on arrival).
	wantLost := c.InjDrops.Load() + c.InjBurstDrops.Load() + c.InjCrashDrops.Load() + c.InjLatePastGrace.Load()
	if got := c.Lost.Load(); got != wantLost {
		t.Errorf("Lost = %d, want InjDrops+InjBurstDrops+InjCrashDrops+InjLatePastGrace = %d", got, wantLost)
	}
	if c.Retries.Load() != 0 || c.Recovered.Load() != 0 {
		t.Errorf("Retries/Recovered nonzero with MaxRetries = 0")
	}
	emitted := eng.emitted.Load()
	if got := c.Accepted.Load() + c.Lost.Load(); got != emitted {
		t.Errorf("conservation: Accepted+Lost = %d, want emitted = %d", got, emitted)
	}
	wantRecv := emitted - c.InjDrops.Load() - c.InjBurstDrops.Load() - c.InjCrashDrops.Load() + c.InjDuplicates.Load()
	if got := c.Received.Load(); got != wantRecv {
		t.Errorf("Received = %d, want emitted-lost+duplicated = %d", got, wantRecv)
	}
}

// Retries re-request detected sequence gaps and recover dropped reports
// before their epoch settles.
func TestRetryRecovery(t *testing.T) {
	eng := &countingEngine{Engine: newTestEngine(t, engine.Config{Seed: 3}, soakTopo, 0.05)}
	_, s := runService(t, Config{
		Engine:     eng,
		Faults:     FaultConfig{Seed: 17, Drop: 0.2},
		MaxRetries: 2,
	}, 30)
	c := s.Counters()
	if c.Retries.Load() == 0 {
		t.Fatal("no retries issued under 20% drop")
	}
	if c.Recovered.Load() == 0 {
		t.Fatal("no reports recovered by retries")
	}
	if got, inj := c.Lost.Load(), c.InjDrops.Load(); got >= inj {
		t.Fatalf("Lost = %d not reduced below injected drops = %d", got, inj)
	}
	if got := c.Accepted.Load() + c.Lost.Load(); got != eng.emitted.Load() {
		t.Fatalf("conservation: Accepted+Lost = %d, want emitted = %d", got, eng.emitted.Load())
	}
}

// The chaos soak the CI chaos-short step runs: a few hundred settled
// epochs under combined faults, with bounded collector state, in-order
// settle, and a clean shutdown. Run with -race.
func TestChaosSoak(t *testing.T) {
	eng := newTestEngine(t, engine.Config{Seed: 23, Incremental: true}, soakTopo, 0.05)
	var (
		nextEpoch int32
		maxOpen   int64
	)
	cfg := Config{
		Engine: eng,
		Faults: FaultConfig{
			Seed:      5,
			Drop:      0.05,
			Duplicate: 0.05,
			Delay:     0.05,
			DelayMax:  3,
			Burst:     0.02,
			Crash:     0.02,
		},
		MaxRetries: 1,
	}
	var s *Service
	cfg.Sink = func(res *engine.EpochResult) {
		if int32(res.Epoch) != nextEpoch {
			t.Errorf("settled epoch %d out of order, want %d", res.Epoch, nextEpoch)
		}
		nextEpoch++
		if open := s.Counters().OpenEpochs.Load(); open > maxOpen {
			maxOpen = open
		}
	}
	var err error
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if got := c.SettledEpochs.Load(); got != 300 {
		t.Fatalf("settled %d epochs, want 300", got)
	}
	// Bounded state: open epochs never exceed the watermark window, and the
	// queues are empty once Run returns — no unbounded growth anywhere.
	if bound := int64(s.grace + 2); maxOpen > bound {
		t.Fatalf("open epochs peaked at %d, want <= %d", maxOpen, bound)
	}
	if got := c.QueueDepth.Load(); got != 0 {
		t.Fatalf("queue depth %d after shutdown, want 0", got)
	}
	if c.Duplicates.Load() == 0 || c.Lost.Load() == 0 || c.Late.Load() == 0 {
		t.Fatal("soak fault mix failed to exercise duplicates, loss and lateness")
	}
}

// Seeded chaos is reproducible: two runs with the same seeds agree on
// every fault-related counter and on what was detected.
func TestChaosDeterministic(t *testing.T) {
	type snapshot struct {
		received, accepted, dups, late, lateDropped, lost, retries, recovered int64
		detected                                                             []topology.LinkID
	}
	run := func() snapshot {
		eng := newTestEngine(t, engine.Config{Seed: 31}, soakTopo, 0.05)
		var detected []topology.LinkID
		settled, s := runService(t, Config{
			Engine:     eng,
			Faults:     FaultConfig{Seed: 41, Drop: 0.1, Duplicate: 0.05, Delay: 0.05, DelayMax: 3},
			MaxRetries: 1,
		}, 20)
		for _, res := range settled {
			detected = append(detected, res.Detected...)
		}
		c := s.Counters()
		return snapshot{
			c.Received.Load(), c.Accepted.Load(), c.Duplicates.Load(), c.Late.Load(),
			c.LateDropped.Load(), c.Lost.Load(), c.Retries.Load(), c.Recovered.Load(),
			detected,
		}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded chaos runs diverged:\n%+v\n%+v", a, b)
	}
}

// Canceling the context stops the epoch loop but still drains: every
// started epoch settles before Run returns.
func TestContextCancelCleanShutdown(t *testing.T) {
	eng := newTestEngine(t, engine.Config{Seed: 13}, soakTopo, 0.05)
	s, err := New(Config{Engine: eng, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := s.Run(ctx, 0); err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	c := s.Counters()
	if c.SettledEpochs.Load() == 0 {
		t.Fatal("no epochs settled before cancel")
	}
	if got, want := c.SettledEpochs.Load(), int64(s.epochsRun); got != want {
		t.Fatalf("settled %d epochs, want every started epoch (%d)", got, want)
	}
}

// Graceful degradation sheds the traceroute payload — never the vote —
// when the collector queue is full.
func TestShedPathsOnPressure(t *testing.T) {
	eng := newTestEngine(t, engine.Config{Seed: 1}, soakTopo, 0.05)
	s, err := New(Config{Engine: eng, QueueDepth: 1, ShedPathsOnPressure: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill the queue so the next forward must degrade.
	s.toCol <- item{kind: itemReport}
	done := make(chan item, 2)
	go func() {
		done <- <-s.toCol
		done <- <-s.toCol
	}()
	r := vote.Report{Src: 1, Path: []topology.LinkID{1, 2, 3}, Epoch: 0, Seq: 0}
	s.forward(item{kind: itemReport, r: r})
	<-done
	it := <-done
	if got := s.Counters().ShedPaths.Load(); got != 1 {
		t.Fatalf("ShedPaths = %d, want 1", got)
	}
	if it.r.Path != nil || !it.r.Partial {
		t.Fatal("shed report kept its path or was not marked partial")
	}
	if it.r.Src != r.Src || it.r.Seq != r.Seq {
		t.Fatal("shedding corrupted the vote itself")
	}
}

func TestNewValidation(t *testing.T) {
	eng := newTestEngine(t, engine.Config{Seed: 1}, soakTopo, 0.05)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil engine", Config{}},
		{"negative grace", Config{Engine: eng, Grace: -1}},
		{"drop out of range", Config{Engine: eng, Faults: FaultConfig{Drop: 1.5}}},
		{"negative duplicate", Config{Engine: eng, Faults: FaultConfig{Duplicate: -0.1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatal("error not reported")
			}
		})
	}
}

// Fault fates are pure functions of identity: recomputing a report's fate
// gives the same answer, and attempt is part of the identity.
func TestFaultFatePure(t *testing.T) {
	f := FaultConfig{Seed: 77, Drop: 0.3, Duplicate: 0.2, Delay: 0.2, DelayMax: 3, Burst: 0.1, Crash: 0.1}
	var differs bool
	for agent := topology.HostID(0); agent < 8; agent++ {
		for seq := int32(0); seq < 16; seq++ {
			r := vote.Report{Src: agent, Epoch: 4, Seq: seq}
			a, b := f.reportFate(r, 0), f.reportFate(r, 0)
			if a != b {
				t.Fatalf("fate of %v not reproducible: %+v vs %+v", r.ID(), a, b)
			}
			if a != f.reportFate(r, 1) {
				differs = true
			}
			if ft := f.reportFate(r, 1); ft.delay != 0 {
				t.Fatal("retransmission drew a delay; delays apply to first attempts only")
			}
		}
	}
	if !differs {
		t.Fatal("attempt number never changed any fate; it should be part of the identity")
	}
}
