// Package ingest is vigild's streaming boundary: a long-running service
// that wraps an engine.Engine behind per-agent sequenced channels, settles
// epochs on a watermark, and survives lossy, late, and lying agents.
//
// The pipeline has three stages connected by bounded channels:
//
//	source ──► lanes (fault layer, holdback) ──► collector ──► sink
//
// The source drives the engine one epoch (one "cycle") at a time through
// the Step seam, routing each report to its agent's lane — an agent always
// maps to the same lane, so per-agent FIFO order is a channel property.
// After the epoch's reports it pushes one token per lane carrying the
// epoch's per-agent expected report counts; tokens are reliable (the fault
// layer never touches them), which is what turns "did everything arrive?"
// into a local, per-agent comparison. Lanes apply the seeded fault layer
// (faults.go) and hold delayed reports back until their release cycle. The
// collector runs gap detection, duplicate suppression, the late-report
// grace window, and bounded retry re-requests (fed back to the source
// in-band with the lockstep cycle handshake), and settles epoch x when
// every lane's token for cycle x+Grace has been processed — the watermark.
// Settled epochs are analyzed over canonically sorted accepted reports
// through the same engine.Analysis() options batch RunEpoch uses.
//
// Determinism: the source waits for the collector's end-of-cycle handshake
// before starting the next epoch, every fault decision is a pure function
// of report identity, and all collector state is per-(agent, epoch) — so
// cross-agent arrival interleaving cannot change which reports settle into
// which epoch, and a seeded chaos run's settled results and fault counters
// are reproducible. With faults disabled the accepted set of each epoch is
// exactly the engine's report set, making settled epochs bit-identical to
// batch RunEpoch at any parallelism — the service's core contract.
package ingest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"vigil/internal/engine"
	"vigil/internal/metrics"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// Config parametrizes the service.
type Config struct {
	// Engine is the epoch driver; required. The service owns its epoch
	// loop from Run on — inject failures and schedules before running.
	Engine engine.Engine
	// Grace is the watermark lag in epochs: epoch x settles once every
	// lane's token for cycle x+Grace has been processed, so reports up to
	// Grace epochs late still count. 0 means the default of 2.
	Grace int
	// Lanes is the number of per-agent FIFO lanes (agents hash onto
	// lanes). 0 means the default of 4.
	Lanes int
	// LaneDepth and QueueDepth bound the source→lane and lane→collector
	// channels; full channels exert backpressure all the way into the
	// engine. 0 means 256 and 1024.
	LaneDepth, QueueDepth int
	// MaxRetries bounds gap re-requests per epoch; 0 disables retries
	// (every injected drop becomes an observed loss — the configuration
	// the fault-counter agreement tests use). Values above 255 are
	// capped there: the attempt number travels as a uint8 through the
	// retry path and the fault-identity hash, and a wrap at attempt 256
	// would alias a retry back onto a first attempt.
	MaxRetries int
	// RetryBackoff spaces successive re-requests of the same epoch, in
	// epochs (linear backoff: attempt k waits 1 + (k-1)*RetryBackoff
	// cycles). 0 means 1.
	RetryBackoff int
	// ShedPathsOnPressure enables graceful degradation: when the
	// collector queue is full, a lane strips the report's traceroute path
	// (the expensive payload) and delivers the bare vote with a blocking
	// send — traceroute budget is shed before votes, and votes are never
	// shed at all (only injected faults lose votes). Off by default
	// because shedding depends on scheduling, which would break the
	// fault-free bit-identical contract.
	ShedPathsOnPressure bool
	// Interval, when positive, paces the epoch loop on the wall clock —
	// the live-service mode. Zero runs epochs back to back.
	Interval time.Duration
	// Faults configures the chaos layer; the zero value injects nothing.
	Faults FaultConfig
	// Sink receives each settled epoch, in epoch order, on the collector
	// goroutine. Optional.
	Sink func(*engine.EpochResult)
	// Counters receives the service's observable state; one is allocated
	// when nil. Read it live via Service.Counters.
	Counters *metrics.IngestCounters
}

// itemKind tags pipeline items.
type itemKind uint8

const (
	itemReport itemKind = iota
	// itemToken marks the end of a cycle on a lane. Tokens are reliable
	// and carry the cycle's per-agent expected counts for the lane's
	// agents; a token with live=false is a drain cycle (no engine epoch).
	itemToken
)

// item is one unit on a lane: a (possibly retried) report or a token.
type item struct {
	kind    itemKind
	r       vote.Report
	attempt uint8
	delayed bool
	cycle   int32
	live    bool
	counts  []agentCount
}

// agentCount is one agent's expected report count for one epoch.
type agentCount struct {
	agent topology.HostID
	n     int32
}

// retryReq asks the source to retransmit one report.
type retryReq struct {
	id      vote.ReportID
	attempt uint8
}

// cycleEnd is the collector→source lockstep handshake: the collector has
// processed every lane's token for the cycle, and these re-requests are
// due for retransmission next cycle.
type cycleEnd struct {
	cycle   int32
	retries []retryReq
}

// Service is the running ingest pipeline. Build with New, drive with Run.
type Service struct {
	cfg      Config
	eng      engine.Engine
	ctr      *metrics.IngestCounters
	grace    int
	lanes    int
	backoff  int
	laneIn   []chan item
	toCol    chan item
	cycleEnd chan cycleEnd
	laneWG   sync.WaitGroup // the lane goroutines; gates closing toCol
	wg       sync.WaitGroup // the collector

	// ring holds the last Grace+2 epochs' Step results: the collector
	// reads ground truth from it at settle, the source re-reads reports
	// from it for retransmissions. Synchronized by the token chain: entry
	// e is written before cycle e's tokens and read only while e is
	// within the watermark window.
	ring []*engine.EpochResult

	pendingRetries []retryReq
	epochsRun      int
}

// New validates the configuration and builds a service.
func New(cfg Config) (*Service, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("ingest: Config.Engine is required")
	}
	if cfg.Grace < 0 || cfg.Lanes < 0 || cfg.MaxRetries < 0 || cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("ingest: negative Grace/Lanes/MaxRetries/RetryBackoff")
	}
	if cfg.Faults.Drop < 0 || cfg.Faults.Drop > 1 || cfg.Faults.Duplicate < 0 || cfg.Faults.Duplicate > 1 ||
		cfg.Faults.Delay < 0 || cfg.Faults.Delay > 1 || cfg.Faults.Burst < 0 || cfg.Faults.Burst > 1 ||
		cfg.Faults.Crash < 0 || cfg.Faults.Crash > 1 {
		return nil, fmt.Errorf("ingest: fault probabilities must be in [0, 1]")
	}
	if cfg.MaxRetries > 255 {
		// attempt is a uint8 end to end (retryReq, item, the fault
		// identity); more than 255 rounds would wrap attempt numbers onto
		// first attempts. Nothing sane retries an epoch 255 times, so cap
		// rather than reject.
		cfg.MaxRetries = 255
	}
	s := &Service{cfg: cfg, eng: cfg.Engine, ctr: cfg.Counters}
	if s.ctr == nil {
		s.ctr = &metrics.IngestCounters{}
	}
	s.grace = cfg.Grace
	if s.grace == 0 {
		s.grace = 2
	}
	s.lanes = cfg.Lanes
	if s.lanes == 0 {
		s.lanes = 4
	}
	s.backoff = cfg.RetryBackoff
	if s.backoff == 0 {
		s.backoff = 1
	}
	laneDepth := cfg.LaneDepth
	if laneDepth == 0 {
		laneDepth = 256
	}
	queueDepth := cfg.QueueDepth
	if queueDepth == 0 {
		queueDepth = 1024
	}
	s.laneIn = make([]chan item, s.lanes)
	for i := range s.laneIn {
		s.laneIn[i] = make(chan item, laneDepth)
	}
	s.toCol = make(chan item, queueDepth)
	s.cycleEnd = make(chan cycleEnd, 1)
	s.ring = make([]*engine.EpochResult, s.grace+2)
	return s, nil
}

// Counters returns the live counters; safe to read while Run is active.
func (s *Service) Counters() *metrics.IngestCounters { return s.ctr }

// Run drives the service: epochs engine epochs (<= 0 means until ctx is
// canceled), then a drain of Grace+DelayMax+1 empty cycles so every
// holdback releases and every epoch settles through the normal watermark
// machinery, then a clean stop. It blocks until the pipeline has fully
// shut down; every started epoch is settled and delivered to the sink
// before it returns. Returns ctx.Err when canceled early, nil otherwise.
func (s *Service) Run(ctx context.Context, epochs int) error {
	for i := range s.laneIn {
		s.laneWG.Add(1)
		go s.lane(i)
	}
	s.wg.Add(1)
	go s.collector()

	cycle := int32(0)
	for (epochs <= 0 || int(cycle) < epochs) && ctx.Err() == nil {
		if s.cfg.Interval > 0 && cycle > 0 {
			select {
			case <-time.After(s.cfg.Interval):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		s.emitRetries()
		res := s.eng.Step(func(r vote.Report) { s.route(r, 0) })
		s.ring[int(cycle)%len(s.ring)] = res
		s.pushTokens(cycle, res.Reports, true)
		ce := <-s.cycleEnd
		s.pendingRetries = ce.retries
		cycle++
	}
	s.epochsRun = int(cycle)

	// Drain: enough empty cycles that every holdback's release cycle
	// passes and the watermark crosses every started epoch. Retries still
	// flow, so a gap detected in the final epoch gets its re-requests.
	for d := 0; d < s.grace+s.cfg.Faults.delayMax()+1; d++ {
		s.emitRetries()
		s.pushTokens(cycle, nil, false)
		ce := <-s.cycleEnd
		s.pendingRetries = ce.retries
		cycle++
	}
	for _, ch := range s.laneIn {
		close(ch)
	}
	s.laneWG.Wait()
	close(s.toCol)
	s.wg.Wait()
	return ctx.Err()
}

// laneOf maps an agent to its lane; stable, so per-agent order is FIFO.
func (s *Service) laneOf(agent topology.HostID) int { return int(agent) % s.lanes }

// route sends one transmission into its agent's lane. A full lane blocks —
// backpressure propagates into the engine's emit callback.
func (s *Service) route(r vote.Report, attempt uint8) {
	s.laneIn[s.laneOf(r.Src)] <- item{kind: itemReport, r: r, attempt: attempt}
}

// emitRetries retransmits the re-requests the collector issued at the end
// of the previous cycle, reading each report back from the ring.
func (s *Service) emitRetries() {
	for _, req := range s.pendingRetries {
		if r, ok := s.lookup(req.id); ok {
			s.route(r, req.attempt)
		}
	}
	s.pendingRetries = nil
}

// lookup finds a report by identity in the ring's canonical report list.
func (s *Service) lookup(id vote.ReportID) (vote.Report, bool) {
	return lookupReport(s.ring, id)
}

// lookupReport finds a report by identity in a ring of Step results —
// shared by the in-process source and the networked agent for
// retransmissions.
func lookupReport(ring []*engine.EpochResult, id vote.ReportID) (vote.Report, bool) {
	res := ring[int(id.Epoch)%len(ring)]
	if res == nil || res.Epoch != int(id.Epoch) {
		return vote.Report{}, false
	}
	rs := res.Reports
	i := sort.Search(len(rs), func(i int) bool {
		if rs[i].Src != id.Agent {
			return rs[i].Src > id.Agent
		}
		return rs[i].Seq >= id.Seq
	})
	if i < len(rs) && rs[i].Src == id.Agent && rs[i].Seq == id.Seq {
		return rs[i], true
	}
	return vote.Report{}, false
}

// pushTokens ends cycle c on every lane: per-agent expected counts split
// by lane, computed from the epoch's canonical report list (agents are
// contiguous runs).
func (s *Service) pushTokens(cycle int32, reports []vote.Report, live bool) {
	perLane := make([][]agentCount, s.lanes)
	for i := 0; i < len(reports); {
		j := i
		for j < len(reports) && reports[j].Src == reports[i].Src {
			j++
		}
		l := s.laneOf(reports[i].Src)
		perLane[l] = append(perLane[l], agentCount{agent: reports[i].Src, n: int32(j - i)})
		i = j
	}
	for l, ch := range s.laneIn {
		ch <- item{kind: itemToken, cycle: cycle, live: live, counts: perLane[l]}
	}
}

// heldItem is a delayed transmission parked in a lane until its release
// cycle.
type heldItem struct {
	release int32
	it      item
}

// lane is the fault-and-holdback stage for one shard of agents. All fault
// decisions are pure functions of report identity (faults.go), so lanes
// need no RNG state and runs are reproducible whatever the scheduler does.
func (s *Service) lane(idx int) {
	defer s.laneWG.Done()
	var held []heldItem
	for it := range s.laneIn[idx] {
		if it.kind == itemToken {
			held = s.releaseDue(held, it.cycle)
			s.forward(it)
			continue
		}
		ft := s.cfg.Faults.reportFate(it.r, int(it.attempt))
		switch {
		case ft.crashed:
			s.ctr.InjCrashDrops.Add(1)
		case ft.burst:
			s.ctr.InjBurstDrops.Add(1)
		case ft.dropped:
			s.ctr.InjDrops.Add(1)
		case ft.delay > 0:
			if ft.delay <= s.grace {
				s.ctr.InjLateInGrace.Add(1)
			} else {
				s.ctr.InjLatePastGrace.Add(1)
			}
			it.delayed = true
			held = append(held, heldItem{release: it.r.Epoch + int32(ft.delay), it: it})
		default:
			s.forward(it)
			if ft.duplicate {
				s.ctr.InjDuplicates.Add(1)
				s.forward(it)
			}
		}
	}
}

// releaseDue forwards every holdback due by cycle c, in identity order so
// the release sequence is deterministic, and returns the remaining held
// items.
func (s *Service) releaseDue(held []heldItem, c int32) []heldItem {
	due := held[:0:0]
	keep := held[:0]
	for _, h := range held {
		if h.release <= c {
			due = append(due, h)
		} else {
			keep = append(keep, h)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i].it.r, due[j].it.r
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return vote.CanonicalLess(a, b)
	})
	for _, h := range due {
		s.forward(h.it)
	}
	return keep
}

// forward hands an item to the collector. Under ShedPathsOnPressure a
// full queue degrades gracefully: the traceroute path is stripped (and the
// report marked partial) so the vote itself still goes through with a
// blocking send — paths are shed before votes, votes never shed at all.
func (s *Service) forward(it item) {
	if it.kind == itemReport && s.cfg.ShedPathsOnPressure {
		select {
		case s.toCol <- it:
			return
		default:
			s.ctr.ShedPaths.Add(1)
			it.r.Path = nil
			it.r.Partial = true
		}
	}
	s.toCol <- it
}
