package ingest

import (
	"sort"

	"vigil/internal/analysis"
	"vigil/internal/engine"
	"vigil/internal/metrics"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// agentEpoch tracks one (agent, epoch) pair at the collector: which
// sequence numbers have been seen (duplicate suppression) and how many the
// agent's token said to expect (gap detection).
type agentEpoch struct {
	expected int32 // -1 until the epoch's token arrives
	got      int32
	seen     []uint64 // bitset by seq
}

func (a *agentEpoch) mark(seq int32) (dup bool) {
	w, b := int(seq)>>6, uint(seq)&63
	for len(a.seen) <= w {
		a.seen = append(a.seen, 0)
	}
	if a.seen[w]&(1<<b) != 0 {
		return true
	}
	a.seen[w] |= 1 << b
	a.got++
	return false
}

func (a *agentEpoch) has(seq int32) bool {
	w, b := int(seq)>>6, uint(seq)&63
	return w < len(a.seen) && a.seen[w]&(1<<b) != 0
}

// epochState is one open (not yet settled) epoch at the collector.
type epochState struct {
	epoch    int32
	agents   map[topology.HostID]*agentEpoch
	accepted []vote.Report
	// missing is the identity set gap detection is currently chasing;
	// attempts counts re-request rounds issued, nextRetry the cycle the
	// next round is due.
	missing   map[vote.ReportID]struct{}
	attempts  int
	nextRetry int32
	expected  int64 // total expected reports (sum of token counts)
}

// collectorState is the collector goroutine's working set.
type collectorState struct {
	open        map[int32]*epochState
	tokens      int   // lanes heard from this cycle
	lastSettled int32 // newest settled epoch; -1 initially
	maxLive     int32 // newest cycle that was an engine epoch; -1 initially
}

// collector is the settle stage: it drains the merged lane queue, runs
// duplicate suppression, late accounting and gap bookkeeping per
// (agent, epoch), and settles epoch x once all lanes' tokens for cycle
// x+Grace are in — the watermark. All of its state is keyed by (agent,
// epoch), so the cross-lane interleaving of the shared queue cannot change
// any outcome.
func (s *Service) collector() {
	defer s.wg.Done()
	st := collectorState{open: make(map[int32]*epochState), lastSettled: -1, maxLive: -1}
	for it := range s.toCol {
		if it.kind == itemToken {
			s.onToken(&st, it)
			continue
		}
		s.onReport(&st, it)
	}
}

// epochFor returns (creating if needed) the open state for epoch e.
func (st *collectorState) epochFor(e int32) *epochState {
	eps := st.open[e]
	if eps == nil {
		eps = &epochState{epoch: e, agents: make(map[topology.HostID]*agentEpoch)}
		st.open[e] = eps
	}
	return eps
}

// onReport admits one arriving transmission.
func (s *Service) onReport(st *collectorState, it item) {
	s.ctr.Received.Add(1)
	e := it.r.Epoch
	if e <= st.lastSettled {
		// Its epoch settled before it arrived: past the grace window.
		s.ctr.LateDropped.Add(1)
		return
	}
	eps := st.epochFor(e)
	ag := eps.agents[it.r.Src]
	if ag == nil {
		ag = &agentEpoch{expected: -1}
		eps.agents[it.r.Src] = ag
	}
	if ag.mark(it.r.Seq) {
		s.ctr.Duplicates.Add(1)
		return
	}
	s.ctr.Accepted.Add(1)
	if it.delayed {
		s.ctr.Late.Add(1)
	}
	if eps.missing != nil {
		id := it.r.ID()
		if _, was := eps.missing[id]; was {
			delete(eps.missing, id)
			if it.attempt > 0 {
				s.ctr.Recovered.Add(1)
			}
		}
	}
	eps.accepted = append(eps.accepted, it.r)
}

// onToken merges one lane's cycle token; the lanes'th token of a cycle
// completes it and runs the end-of-cycle work.
func (s *Service) onToken(st *collectorState, it item) {
	if len(it.counts) > 0 {
		eps := st.epochFor(it.cycle)
		for _, ac := range it.counts {
			ag := eps.agents[ac.agent]
			if ag == nil {
				ag = &agentEpoch{expected: -1}
				eps.agents[ac.agent] = ag
			}
			ag.expected = ac.n
			eps.expected += int64(ac.n)
		}
	}
	if it.live && it.cycle > st.maxLive {
		st.maxLive = it.cycle
	}
	st.tokens++
	if st.tokens < s.lanes {
		return
	}
	st.tokens = 0
	s.endCycle(st, it.cycle)
}

// endCycle runs once all lanes' tokens for a cycle are in: seal the
// cycle's own epoch (its expected counts are now complete, so gaps are
// known), issue due re-requests for every open epoch, settle the epoch
// crossing the watermark, and hand the lockstep baton back to the source.
func (s *Service) endCycle(st *collectorState, cycle int32) {
	if eps := st.open[cycle]; eps != nil {
		s.sealExpected(eps)
	}
	var retries []retryReq
	for _, eps := range st.open {
		retries = s.collectRetries(eps, cycle, retries)
	}
	// Deterministic retransmission order across the map iteration.
	sortRetries(retries)
	if sEpoch := cycle - int32(s.grace); sEpoch >= 0 {
		s.settle(st, sEpoch)
	}
	s.ctr.OpenEpochs.Store(int64(len(st.open)))
	s.ctr.WatermarkLag.Store(int64(cycle - st.lastSettled))
	depth := len(s.toCol)
	for _, ch := range s.laneIn {
		depth += len(ch)
	}
	s.ctr.QueueDepth.Store(int64(depth))
	s.cycleEnd <- cycleEnd{cycle: cycle, retries: retries}
}

// sealExpected computes the epoch's initial missing set from the now
// complete expected counts — the sequence-gap detection the dense
// per-agent numbering exists for.
func (eps *epochState) sealExpectedInto(missing map[vote.ReportID]struct{}) {
	for agent, ag := range eps.agents {
		for seq := int32(0); seq < ag.expected; seq++ {
			if !ag.has(seq) {
				missing[vote.ReportID{Agent: agent, Epoch: eps.epoch, Seq: seq}] = struct{}{}
			}
		}
	}
}

func (s *Service) sealExpected(eps *epochState) {
	sealEpochGaps(eps)
}

// sealEpochGaps computes the epoch's initial missing set and schedules the
// first re-request round — shared by the in-process and networked
// collectors.
func sealEpochGaps(eps *epochState) {
	eps.missing = make(map[vote.ReportID]struct{})
	eps.sealExpectedInto(eps.missing)
	eps.nextRetry = eps.epoch // due immediately, at this cycle's end
}

// collectRetries appends the epoch's due re-requests, honoring the retry
// budget and linear backoff.
func (s *Service) collectRetries(eps *epochState, cycle int32, out []retryReq) []retryReq {
	return collectRetriesFor(eps, cycle, s.cfg.MaxRetries, s.backoff, s.ctr, out)
}

// collectRetriesFor is the shared retry-budget engine: one round per call
// at most, linear backoff between rounds, every still-missing identity
// re-requested in the round.
func collectRetriesFor(eps *epochState, cycle int32, maxRetries, backoff int, ctr *metrics.IngestCounters, out []retryReq) []retryReq {
	if len(eps.missing) == 0 || eps.attempts >= maxRetries || cycle < eps.nextRetry {
		return out
	}
	eps.attempts++
	eps.nextRetry = cycle + 1 + int32((eps.attempts-1)*backoff)
	for id := range eps.missing {
		out = append(out, retryReq{id: id, attempt: uint8(eps.attempts)})
	}
	ctr.Retries.Add(int64(len(eps.missing)))
	return out
}

// sortRetries orders re-requests deterministically across map iteration.
func sortRetries(retries []retryReq) {
	sort.Slice(retries, func(i, j int) bool {
		a, b := retries[i].id, retries[j].id
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Agent != b.Agent {
			return a.Agent < b.Agent
		}
		return a.Seq < b.Seq
	})
}

// settle closes epoch e: whatever is still missing is lost, the accepted
// reports are canonically sorted and analyzed with the engine's own
// options, and the result — ground truth attached from the engine's Step —
// goes to the sink. Every live cycle settles, reports or not, so quiet
// epochs flow downstream exactly as the batch engine emits them.
func (s *Service) settle(st *collectorState, e int32) {
	eps := st.open[e]
	delete(st.open, e)
	st.lastSettled = e
	if e > st.maxLive {
		// A drain cycle: nothing was ever expected or accepted here.
		return
	}
	res := s.ring[int(e)%len(s.ring)]
	if res == nil || res.Epoch != int(e) {
		// Cannot happen while the ring covers the watermark window; guard
		// against misconfiguration rather than emit wrong truth.
		panic("ingest: settled epoch fell out of the ring window")
	}
	var accepted []vote.Report
	if eps != nil {
		// Conservation: every expected report is accounted for exactly once,
		// as accepted or as lost. Holds under every fault mix because
		// duplicates are suppressed, post-settle stragglers stay in missing,
		// and shedding strips paths, never votes.
		if int64(len(eps.accepted)+len(eps.missing)) != eps.expected {
			panic("ingest: epoch conservation violated (accepted + lost != expected)")
		}
		s.ctr.Lost.Add(int64(len(eps.missing)))
		accepted = eps.accepted
	}
	vote.SortCanonical(accepted)
	an := analysis.Analyze(accepted, s.eng.Analysis())
	out := &engine.EpochResult{
		Epoch:       res.Epoch,
		FailedLinks: res.FailedLinks,
		Reports:     accepted,
		Ranking:     an.Ranking,
		Detected:    an.Detected,
		Verdicts:    an.Verdicts,
		Truth:       res.Truth,
		TotalFlows:  res.TotalFlows,
		FailedFlows: res.FailedFlows,
		TotalDrops:  res.TotalDrops,
	}
	s.ctr.SettledEpochs.Add(1)
	s.ctr.DetectedLinks.Add(int64(len(out.Detected)))
	s.ctr.Verdicts.Add(int64(len(out.Verdicts)))
	if s.cfg.Sink != nil {
		s.cfg.Sink(out)
	}
}
