package ingest

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"vigil/internal/analysis"
	"vigil/internal/engine"
	"vigil/internal/metrics"
	"vigil/internal/topology"
	"vigil/internal/transport"
	"vigil/internal/vote"
)

// This file is the networked face of the ingest pipeline: the same
// gap-detection, bounded-retry, grace-window settle machinery as the
// in-process Service, but with the agent and the collector on opposite
// ends of a transport session instead of opposite ends of a channel.
// RunAgent is the reporter side (drives the engine, ships reports and
// cycle tokens, answers re-requests); ServeCollector is the vigild side
// (settles epochs, checkpoints durability, survives crashes). The
// transport layer below deduplicates and resequences, so this layer sees
// exactly the at-most-once in-order stream the in-process collector sees —
// which is why a fault-free networked run settles bit-identical to both
// the in-process Service and batch RunEpoch.

// AgentConfig parametrizes a networked reporter session.
type AgentConfig struct {
	// Engine is the epoch driver; required. Its analysis options must be
	// wire-expressible: Detect.Topo and Detect.Adjuster must be nil (they
	// cannot be serialized; the collector rebuilds its analyzer from the
	// ThresholdFrac/MaxLinks carried in the handshake).
	Engine engine.Engine
	// Addr is the collector (or chaos proxy) address; required.
	Addr string
	// Session identifies this reporter across reconnects; stable for the
	// run. 0 is valid.
	Session uint64
	// Grace must equal the collector's grace window: the agent runs
	// Grace+1 drain cycles after its last epoch so every started epoch
	// crosses the settle watermark. 0 means the default of 2.
	Grace int
	// Epochs is the number of live epochs to run; must be positive.
	Epochs int
	// Interval, when positive, paces the epoch loop on the wall clock.
	Interval time.Duration
	// Seed derives reconnect jitter.
	Seed uint64
	// Transport tunes the session; Addr/Session/ThresholdFrac/MaxLinks/
	// Seed are filled in from this config and the engine.
	Transport transport.ClientConfig
	// Counters receives the session's transport counters; one is
	// allocated when nil.
	Counters *metrics.TransportCounters
}

// buildToken assembles the cycle token for a live epoch: per-agent
// expected counts (contiguous runs over the canonical report order) plus
// the epoch summary the collector settles against.
func buildToken(cycle int32, res *engine.EpochResult) transport.Token {
	t := transport.Token{Cycle: cycle, Live: true}
	rs := res.Reports
	for i := 0; i < len(rs); {
		j := i
		for j < len(rs) && rs[j].Src == rs[i].Src {
			j++
		}
		t.Counts = append(t.Counts, transport.AgentCount{Agent: rs[i].Src, N: int32(j - i)})
		i = j
	}
	sum := &transport.EpochSummary{
		Epoch:       int32(res.Epoch),
		TotalFlows:  int32(res.TotalFlows),
		FailedFlows: int32(res.FailedFlows),
		TotalDrops:  int32(res.TotalDrops),
		HasFailed:   res.FailedLinks != nil,
		HasTruth:    res.Truth != nil,
	}
	if sum.HasFailed {
		sum.FailedLinks = append([]topology.LinkID{}, res.FailedLinks...)
	}
	if sum.HasTruth {
		sum.Truth = make([]transport.TruthEntry, 0, len(res.Truth))
		for id, ft := range res.Truth {
			sum.Truth = append(sum.Truth, transport.TruthEntry{
				FlowID: id, Culprit: ft.Culprit, CrossedFailure: ft.CrossedFailure,
			})
		}
		sort.Slice(sum.Truth, func(i, j int) bool { return sum.Truth[i].FlowID < sum.Truth[j].FlowID })
	}
	t.Summary = sum
	return t
}

// RunAgent drives cfg.Epochs engine epochs over a resumable transport
// session: each cycle it retransmits the collector's re-requests, streams
// the epoch's reports, ships the cycle token, and waits for the lockstep
// cycle-end; then Grace+1 drain cycles push every epoch across the settle
// watermark, and the session closes cleanly. Connection loss anywhere —
// partition, cut, collector restart — is absorbed by the transport's
// resume protocol; RunAgent returns early only on ctx cancellation or a
// protocol-level failure (e.g. the send window overflowing).
func RunAgent(ctx context.Context, cfg AgentConfig) error {
	if cfg.Engine == nil {
		return fmt.Errorf("ingest: AgentConfig.Engine is required")
	}
	if cfg.Epochs <= 0 {
		return fmt.Errorf("ingest: AgentConfig.Epochs must be positive")
	}
	an := cfg.Engine.Analysis()
	if an.Detect.Topo != nil || an.Detect.Adjuster != nil {
		return fmt.Errorf("ingest: networked agents require wire-expressible analysis options (Detect.Topo and Detect.Adjuster must be nil)")
	}
	grace := cfg.Grace
	if grace == 0 {
		grace = 2
	}
	tc := cfg.Transport
	tc.Addr = cfg.Addr
	tc.Session = cfg.Session
	tc.ThresholdFrac = an.Detect.ThresholdFrac
	tc.MaxLinks = int32(an.Detect.MaxLinks)
	if tc.Seed == 0 {
		tc.Seed = cfg.Seed
	}
	if tc.Counters == nil {
		tc.Counters = cfg.Counters
	}
	cli, err := transport.NewClient(tc)
	if err != nil {
		return err
	}
	defer cli.Close()

	eng := cfg.Engine
	ring := make([]*engine.EpochResult, grace+2)
	var pending []transport.RetryReq
	emitRetries := func() error {
		for _, q := range pending {
			id := vote.ReportID{Agent: q.Agent, Epoch: q.Epoch, Seq: q.Seq}
			if r, ok := lookupReport(ring, id); ok {
				if err := cli.SendReport(ctx, r, q.Attempt); err != nil {
					return err
				}
			}
		}
		pending = nil
		return nil
	}

	cycle := int32(0)
	for int(cycle) < cfg.Epochs {
		if cfg.Interval > 0 && cycle > 0 {
			t := time.NewTimer(cfg.Interval)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		if err := emitRetries(); err != nil {
			return err
		}
		var sendErr error
		res := eng.Step(func(r vote.Report) {
			if sendErr == nil {
				sendErr = cli.SendReport(ctx, r, 0)
			}
		})
		if sendErr != nil {
			return sendErr
		}
		ring[int(cycle)%len(ring)] = res
		if err := cli.SendToken(ctx, buildToken(cycle, res)); err != nil {
			return err
		}
		ce, err := cli.WaitCycleEnd(ctx, cycle)
		if err != nil {
			return err
		}
		pending = ce.Retries
		cycle++
	}
	// Drain: push the watermark across every started epoch, still
	// answering re-requests along the way.
	for d := 0; d < grace+1; d++ {
		if err := emitRetries(); err != nil {
			return err
		}
		if err := cli.SendToken(ctx, transport.Token{Cycle: cycle, Live: false}); err != nil {
			return err
		}
		ce, err := cli.WaitCycleEnd(ctx, cycle)
		if err != nil {
			return err
		}
		pending = ce.Retries
		cycle++
	}
	return nil
}

// CollectorConfig parametrizes the networked collector.
type CollectorConfig struct {
	// Listener is the accept socket; required (use net.Listen("tcp",
	// "127.0.0.1:0") in tests). The collector owns it.
	Listener net.Listener
	// Sessions is the number of reporter sessions; a cycle completes when
	// every session's token for it has been processed. 0 means 1.
	Sessions int
	// Grace, MaxRetries, RetryBackoff mirror the in-process Config fields
	// (same defaults, same semantics).
	Grace        int
	MaxRetries   int
	RetryBackoff int
	// Parallelism caps the settle-time analysis workers; results are
	// identical at every setting.
	Parallelism int
	// CheckpointPath enables crash recovery; see transport.ServerConfig.
	CheckpointPath string
	// QueueDepth bounds the transport→collector event channel; a full
	// channel backpressures into TCP. 0 means 1024.
	QueueDepth int
	// ReadTimeout/WriteTimeout tune the transport server deadlines.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Sink receives each settled epoch, in epoch order, on the collector
	// goroutine — before the settle is checkpointed, so a crash inside
	// the sink re-delivers on restart (at-least-once at the sink; the
	// epoch number makes downstream dedupe trivial).
	Sink func(*engine.EpochResult)
	// Counters receives ingest-level state; allocated when nil.
	Counters *metrics.IngestCounters
	// Transport receives wire-level state; allocated when nil.
	Transport *metrics.TransportCounters
}

type netEventKind uint8

const (
	evHello netEventKind = iota
	evReport
	evToken
	evBye
)

type netEvent struct {
	kind    netEventKind
	sess    uint64
	seq     uint64
	r       vote.Report
	attempt uint8
	hello   transport.Hello
	tok     transport.Token
}

// NetCollector is the networked settle stage: the in-process collector's
// per-(agent, epoch) machinery fed by transport sessions instead of lanes,
// with per-session durable watermarks committed at every settle.
type NetCollector struct {
	cfg      CollectorConfig
	ctr      *metrics.IngestCounters
	grace    int
	sessions int
	maxRet   int
	backoff  int
	srv      *transport.Server

	ev       chan netEvent
	quit     chan struct{}
	loopDone chan struct{}

	// Collector goroutine state (single-threaded).
	open        map[int32]*epochState
	summaries   map[int32]*transport.EpochSummary
	tokens      map[int32]int               // sessions heard, per cycle
	tokenSeq    map[int32]map[uint64]uint64 // cycle → session → token frame seq
	agentSess   map[topology.HostID]uint64  // agent → owning session
	sessSeen    map[uint64]struct{}
	lastSettled int32
	maxLive     int32
	nextEnd     int32 // next cycle whose completion runs endCycle
	byes        int
	an          analysis.Options
	anSet       bool
}

// ServeCollector starts a networked collector. If a checkpoint exists at
// cfg.CheckpointPath, the collector resumes mid-cycle: sessions replay
// every frame past their durable watermark, which rebuilds the open
// epochs' reports, expected counts and summaries; settled epochs stay
// settled (replayed stragglers for them are dropped as late).
func ServeCollector(cfg CollectorConfig) (*NetCollector, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("ingest: CollectorConfig.Listener is required")
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Grace == 0 {
		cfg.Grace = 2
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 1
	}
	if cfg.MaxRetries > 255 {
		cfg.MaxRetries = 255
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 1024
	}
	c := &NetCollector{
		cfg:       cfg,
		ctr:       cfg.Counters,
		grace:     cfg.Grace,
		sessions:  cfg.Sessions,
		maxRet:    cfg.MaxRetries,
		backoff:   cfg.RetryBackoff,
		ev:        make(chan netEvent, cfg.QueueDepth),
		quit:      make(chan struct{}),
		loopDone:  make(chan struct{}),
		open:      make(map[int32]*epochState),
		summaries: make(map[int32]*transport.EpochSummary),
		tokens:    make(map[int32]int),
		tokenSeq:  make(map[int32]map[uint64]uint64),
		agentSess: make(map[topology.HostID]uint64),
		sessSeen:  make(map[uint64]struct{}),
	}
	if c.ctr == nil {
		c.ctr = &metrics.IngestCounters{}
	}
	srv, err := transport.Serve(transport.ServerConfig{
		Listener:       cfg.Listener,
		Handler:        (*netHandler)(c),
		Sessions:       cfg.Sessions,
		CheckpointPath: cfg.CheckpointPath,
		AppFresh:       -1,
		ReadTimeout:    cfg.ReadTimeout,
		WriteTimeout:   cfg.WriteTimeout,
		Counters:       cfg.Transport,
	})
	if err != nil {
		return nil, err
	}
	c.srv = srv
	c.lastSettled = int32(srv.AppState())
	c.maxLive = c.lastSettled
	if c.lastSettled >= 0 {
		c.nextEnd = c.lastSettled + int32(c.grace) + 1
		// The crash may have landed between checkpointing a settle and
		// delivering its cycle-end; re-offer the newest completed cycle's
		// end (with no retries — any pre-crash re-requests surface as
		// Lost, which conservation accounts for) so no agent stays stuck.
		// Agents that already saw it ignore the stale re-send.
		for _, id := range srv.SessionIDs() {
			c.sessSeen[id] = struct{}{}
			srv.SendCycleEnd(id, transport.CycleEnd{Cycle: c.nextEnd - 1})
		}
	}
	go c.loop()
	return c, nil
}

// netHandler adapts transport callbacks onto the collector's event
// channel without exporting the Handler methods on NetCollector itself.
type netHandler NetCollector

func (h *netHandler) post(e netEvent) {
	select {
	case h.ev <- e:
	case <-h.quit:
	}
}

func (h *netHandler) OnHello(sess uint64, hello transport.Hello) {
	h.post(netEvent{kind: evHello, sess: sess, hello: hello})
}

func (h *netHandler) OnReport(sess uint64, r vote.Report, attempt uint8) {
	h.post(netEvent{kind: evReport, sess: sess, r: r, attempt: attempt})
}

func (h *netHandler) OnToken(sess uint64, seq uint64, t transport.Token) {
	h.post(netEvent{kind: evToken, sess: sess, seq: seq, tok: t})
}

func (h *netHandler) OnBye(sess uint64) {
	h.post(netEvent{kind: evBye, sess: sess})
}

// Addr returns the listen address.
func (c *NetCollector) Addr() string { return c.srv.Addr() }

// Counters returns the live ingest counters.
func (c *NetCollector) Counters() *metrics.IngestCounters { return c.ctr }

// TransportCounters returns the live wire-level counters.
func (c *NetCollector) TransportCounters() *metrics.TransportCounters { return c.srv.Counters() }

// Wait blocks until every session has closed cleanly (or ctx ends).
func (c *NetCollector) Wait(ctx context.Context) error {
	select {
	case <-c.loopDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close tears the collector down without a final checkpoint — state
// beyond the last settle-time Commit is exactly what crash recovery
// rebuilds, so Close mid-run IS the simulated crash.
func (c *NetCollector) Close() error {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	return c.srv.Close()
}

func (c *NetCollector) loop() {
	defer close(c.loopDone)
	for {
		select {
		case e := <-c.ev:
			c.handle(e)
			if c.byes >= c.sessions {
				return
			}
		case <-c.quit:
			return
		}
	}
}

func (c *NetCollector) handle(e netEvent) {
	switch e.kind {
	case evHello:
		c.sessSeen[e.sess] = struct{}{}
		if !c.anSet {
			c.an = analysis.Options{
				Detect: vote.DetectOptions{
					ThresholdFrac: e.hello.ThresholdFrac,
					MaxLinks:      int(e.hello.MaxLinks),
				},
				Parallelism: c.cfg.Parallelism,
			}
			c.anSet = true
		}
	case evReport:
		c.handleReport(e.sess, e.r, e.attempt)
	case evToken:
		c.handleToken(e.sess, e.seq, e.tok)
	case evBye:
		c.byes++
	}
}

// epochFor returns (creating if needed) the open state for epoch e.
func (c *NetCollector) epochFor(e int32) *epochState {
	eps := c.open[e]
	if eps == nil {
		eps = &epochState{epoch: e, agents: make(map[topology.HostID]*agentEpoch)}
		c.open[e] = eps
	}
	return eps
}

// handleReport admits one report — the networked twin of
// Service.onReport. The transport has already deduplicated the wire
// (replays, proxy-injected duplicates of the same frame), so duplicates
// seen here are ingest-level ones: the same identity re-sent as a retry
// answer that crossed its own recovery.
func (c *NetCollector) handleReport(sess uint64, r vote.Report, attempt uint8) {
	c.ctr.Received.Add(1)
	if r.Epoch <= c.lastSettled {
		c.ctr.LateDropped.Add(1)
		return
	}
	c.agentSess[r.Src] = sess
	eps := c.epochFor(r.Epoch)
	ag := eps.agents[r.Src]
	if ag == nil {
		ag = &agentEpoch{expected: -1}
		eps.agents[r.Src] = ag
	}
	if ag.mark(r.Seq) {
		c.ctr.Duplicates.Add(1)
		return
	}
	c.ctr.Accepted.Add(1)
	if eps.missing != nil {
		id := r.ID()
		if _, was := eps.missing[id]; was {
			delete(eps.missing, id)
			if attempt > 0 {
				c.ctr.Recovered.Add(1)
			}
		}
	}
	eps.accepted = append(eps.accepted, r)
}

// handleToken merges one session's cycle token. Tokens replayed after a
// restart rebuild open epochs' expected counts and summaries without
// re-firing already-completed cycles: only cycles at or past nextEnd count
// toward completion, and completion fires strictly in cycle order.
func (c *NetCollector) handleToken(sess uint64, seq uint64, t transport.Token) {
	c.sessSeen[sess] = struct{}{}
	if t.Cycle > c.lastSettled {
		if len(t.Counts) > 0 {
			eps := c.epochFor(t.Cycle)
			for _, ac := range t.Counts {
				c.agentSess[ac.Agent] = sess
				ag := eps.agents[ac.Agent]
				if ag == nil {
					ag = &agentEpoch{expected: -1}
					eps.agents[ac.Agent] = ag
				}
				ag.expected = ac.N
				eps.expected += int64(ac.N)
			}
		}
		if t.Summary != nil && c.summaries[t.Cycle] == nil {
			c.summaries[t.Cycle] = t.Summary
		}
		m := c.tokenSeq[t.Cycle]
		if m == nil {
			m = make(map[uint64]uint64, c.sessions)
			c.tokenSeq[t.Cycle] = m
		}
		m[sess] = seq
	}
	if t.Live && t.Cycle > c.maxLive {
		c.maxLive = t.Cycle
	}
	if t.Cycle < c.nextEnd {
		return // replayed token for an already-completed cycle
	}
	c.tokens[t.Cycle]++
	for c.tokens[c.nextEnd] >= c.sessions {
		cycle := c.nextEnd
		delete(c.tokens, cycle)
		c.nextEnd++
		c.endCycle(cycle)
	}
}

// endCycle mirrors Service.endCycle: seal the completed cycle's epoch,
// collect due re-requests across open epochs, settle the epoch crossing
// the watermark, then fan the cycle-end (with each session's retries) out
// to every session.
func (c *NetCollector) endCycle(cycle int32) {
	if eps := c.open[cycle]; eps != nil {
		sealEpochGaps(eps)
	}
	var retries []retryReq
	for _, eps := range c.open {
		retries = collectRetriesFor(eps, cycle, c.maxRet, c.backoff, c.ctr, retries)
	}
	sortRetries(retries)
	if e := cycle - int32(c.grace); e >= 0 {
		c.settle(e)
	}
	c.ctr.OpenEpochs.Store(int64(len(c.open)))
	c.ctr.WatermarkLag.Store(int64(cycle - c.lastSettled))
	c.ctr.QueueDepth.Store(int64(len(c.ev)))

	perSess := make(map[uint64][]transport.RetryReq)
	for _, q := range retries {
		sess, ok := c.agentSess[q.id.Agent]
		if !ok {
			continue // unreachable: missing identities come from session tokens
		}
		perSess[sess] = append(perSess[sess], transport.RetryReq{
			Agent: q.id.Agent, Epoch: q.id.Epoch, Seq: q.id.Seq, Attempt: q.attempt,
		})
	}
	for sess := range c.sessSeen {
		c.srv.SendCycleEnd(sess, transport.CycleEnd{Cycle: cycle, Retries: perSess[sess]})
	}
}

// settle closes epoch e exactly once across collector incarnations: the
// conservation invariant is asserted, the accepted reports are analyzed
// with the handshake-derived options, the result goes to the sink, and
// THEN the settle is committed — checkpoint plus durable acks up to each
// session's token for e — so a crash at any point either re-settles e
// from replay (sink sees it again, dedupable by epoch) or finds it
// durably behind the watermark.
func (c *NetCollector) settle(e int32) {
	if e <= c.lastSettled {
		return
	}
	eps := c.open[e]
	delete(c.open, e)
	c.lastSettled = e
	sum := c.summaries[e]
	delete(c.summaries, e)
	marks := c.tokenSeq[e]
	delete(c.tokenSeq, e)
	if e > c.maxLive {
		// A drain cycle: nothing was expected; still commit so the drain
		// tokens are durably acked.
		c.srv.Commit(int64(e), marks)
		return
	}
	if sum == nil {
		panic("ingest: live epoch settled without a summary token")
	}
	var accepted []vote.Report
	if eps != nil {
		if int64(len(eps.accepted)+len(eps.missing)) != eps.expected {
			panic("ingest: epoch conservation violated (accepted + lost != expected)")
		}
		c.ctr.Lost.Add(int64(len(eps.missing)))
		accepted = eps.accepted
	}
	vote.SortCanonical(accepted)
	an := analysis.Analyze(accepted, c.an)
	out := &engine.EpochResult{
		Epoch:       int(sum.Epoch),
		Reports:     accepted,
		Ranking:     an.Ranking,
		Detected:    an.Detected,
		Verdicts:    an.Verdicts,
		TotalFlows:  int(sum.TotalFlows),
		FailedFlows: int(sum.FailedFlows),
		TotalDrops:  int(sum.TotalDrops),
	}
	if sum.HasFailed {
		out.FailedLinks = sum.FailedLinks
		if out.FailedLinks == nil {
			out.FailedLinks = []topology.LinkID{}
		}
	}
	if sum.HasTruth {
		out.Truth = make(map[int64]metrics.FlowTruth, len(sum.Truth))
		for _, te := range sum.Truth {
			out.Truth[te.FlowID] = metrics.FlowTruth{Culprit: te.Culprit, CrossedFailure: te.CrossedFailure}
		}
	}
	c.ctr.SettledEpochs.Add(1)
	c.ctr.DetectedLinks.Add(int64(len(out.Detected)))
	c.ctr.Verdicts.Add(int64(len(out.Verdicts)))
	if c.cfg.Sink != nil {
		c.cfg.Sink(out)
	}
	c.srv.Commit(int64(e), marks)
}
