// Fault injection on the agent→collector path.
//
// Every fault decision is a pure function of the report's identity (agent,
// epoch, seq, attempt) and the fault seed, drawn through stats.DeriveRNG's
// counter-based streams. No fault state lives anywhere: two runs with the
// same seed inject byte-for-byte the same chaos however the pipeline's
// goroutines interleave, and a report's fate can be recomputed after the
// fact — which is how the chaos tests assert that the collector's observed
// counters agree exactly with what was injected.
package ingest

import (
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// FaultConfig describes the chaos injected on the agent→collector path.
// All probabilities are per original report unless noted; the zero value
// injects nothing (the fault-free mode whose settled epochs are
// bit-identical to the batch engine).
type FaultConfig struct {
	// Seed drives every fault draw; runs with equal seeds inject identical
	// chaos.
	Seed uint64
	// Drop is the probability a transmission is lost outright. It applies
	// to every attempt, retries included.
	Drop float64
	// Duplicate is the probability a surviving on-time transmission is
	// delivered twice (back to back, preserving per-agent FIFO order).
	// Delayed transmissions never duplicate, which keeps each observed
	// counter the image of exactly one injected counter.
	Duplicate float64
	// Delay is the probability a surviving first transmission is held back;
	// held reports release 1..DelayMax epochs later (reordering them past
	// everything their agent sends in between).
	Delay float64
	// DelayMax bounds the holdback in epochs; 0 with Delay > 0 means 1.
	DelayMax int
	// Burst is the per-(agent, epoch) probability of a burst-loss window:
	// BurstLen consecutive sequence numbers vanish.
	Burst float64
	// BurstLen is the burst window length; 0 with Burst > 0 means 8.
	BurstLen int
	// Crash is the per-(agent, epoch) probability the agent crashes
	// mid-epoch: every report from a uniformly drawn sequence point to the
	// end of the epoch is lost. The agent restarts at the next epoch.
	Crash float64
}

// enabled reports whether any fault can fire.
func (f FaultConfig) enabled() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.Delay > 0 || f.Burst > 0 || f.Crash > 0
}

// delayMax returns the effective holdback bound.
func (f FaultConfig) delayMax() int {
	if f.Delay <= 0 {
		return 0
	}
	if f.DelayMax <= 0 {
		return 1
	}
	return f.DelayMax
}

// Domain separators for the fault streams, mixed into the stream index so
// per-report and per-(agent, epoch) draws never collide.
const (
	faultDomainReport = 0x9e3779b97f4a7c15
	faultDomainAgent  = 0xc2b2ae3d27d4eb4f
	crashSpan         = 64 // crash points draw uniformly over [0, crashSpan)
	burstSpan         = 64 // burst windows start uniformly in [0, burstSpan)
)

// reportStream indexes the per-transmission fault stream. Attempt is part
// of the identity: a retried transmission re-rolls its fate.
func reportStream(agent topology.HostID, epoch, seq int32, attempt int) uint64 {
	x := uint64(uint32(agent))<<40 ^ uint64(uint32(epoch))<<20 ^ uint64(uint32(seq))
	return x<<6 ^ uint64(uint8(attempt)) ^ faultDomainReport
}

// agentStream indexes the per-(agent, epoch) fault stream (crash and burst
// draws, shared by every report of the pair).
func agentStream(agent topology.HostID, epoch int32) uint64 {
	return uint64(uint32(agent))<<32 ^ uint64(uint32(epoch)) ^ faultDomainAgent
}

// fate is one transmission's injected outcome.
type fate struct {
	dropped   bool // lost outright (Drop roll)
	crashed   bool // lost to the agent-epoch crash tail
	burst     bool // lost to the agent-epoch burst window
	duplicate bool // delivered twice
	delay     int  // epochs of holdback; 0 = on time
}

// lost reports whether the transmission never reaches the collector.
func (ft fate) lost() bool { return ft.dropped || ft.crashed || ft.burst }

// reportFate draws one transmission's fate. The draw order within each
// stream is fixed (drop, delay, duplicate), so fates are stable functions
// of identity. Crash and burst apply only to first transmissions: a
// retransmission happens after the agent restarted, and re-requests are
// unicast rather than part of the sequenced burst.
func (f FaultConfig) reportFate(r vote.Report, attempt int) fate {
	var ft fate
	if !f.enabled() {
		return ft
	}
	if attempt == 0 && (f.Crash > 0 || f.Burst > 0) {
		var arng stats.RNG
		arng.Derive(f.Seed, agentStream(r.Src, r.Epoch))
		if f.Crash > 0 && arng.Bool(f.Crash) {
			if point := int32(arng.Intn(crashSpan)); r.Seq >= point {
				ft.crashed = true
			}
		} else if f.Crash > 0 {
			arng.Intn(crashSpan) // keep the stream position fixed either way
		}
		if f.Burst > 0 && arng.Bool(f.Burst) {
			blen := f.BurstLen
			if blen <= 0 {
				blen = 8
			}
			start := int32(arng.Intn(burstSpan))
			if r.Seq >= start && r.Seq < start+int32(blen) {
				ft.burst = true
			}
		}
		if ft.crashed || ft.burst {
			return ft
		}
	}
	var rng stats.RNG
	rng.Derive(f.Seed, reportStream(r.Src, r.Epoch, r.Seq, attempt))
	if f.Drop > 0 && rng.Bool(f.Drop) {
		ft.dropped = true
		return ft
	}
	if f.Delay > 0 && attempt == 0 && rng.Bool(f.Delay) {
		ft.delay = 1 + rng.Intn(f.delayMax())
		return ft
	}
	if f.Duplicate > 0 && rng.Bool(f.Duplicate) {
		ft.duplicate = true
	}
	return ft
}
