// Package schedule holds the epoch-indexed rate schedules shared by both
// evaluation planes: the flow-level simulator (internal/netem, the paper's
// §6 plane) and the packet-level fabric emulation (internal/fabric +
// internal/cluster, the §7/§8 plane). A RateSchedule scripts one link's
// drop rate as a function of the epoch index; the scenario engine
// (internal/scenario) composes them into link flaps, intermittent low-rate
// drops, rolling failure waves and congestion bursts that run unmodified
// on either plane.
//
// Schedules are pure functions of the epoch index: RateAt(e) must be
// identical however many times and in whatever order it is called. Both
// planes rely on this — they settle every scheduled link's rate at the top
// of an epoch, before any randomness is drawn, so dynamics never perturb
// the planes' determinism contracts (DESIGN.md).
package schedule

import (
	"fmt"
	"math"

	"vigil/internal/stats"
)

// RateSchedule gives a link's drop rate for each epoch.
//
// RateAt returns the rate the link drops at during the given epoch and
// whether the link counts as *failed* (injected, part of detection ground
// truth) that epoch. When active is false the rate is ignored and the link
// runs at its baseline (noise) rate. Implementations must be pure
// functions of the epoch index.
type RateSchedule interface {
	RateAt(epoch int) (rate float64, active bool)
}

// ConstantRate fails the link at Rate in every epoch — the static injection
// of InjectFailure in schedule form.
type ConstantRate struct {
	Rate float64
}

// RateAt implements RateSchedule.
func (c ConstantRate) RateAt(int) (float64, bool) { return c.Rate, true }

// Window fails the link at Rate during epochs [Start, End) and leaves it
// healthy outside. Staggered windows across links compose into rolling
// failure waves.
type Window struct {
	Rate       float64
	Start, End int
}

// RateAt implements RateSchedule.
func (w Window) RateAt(epoch int) (float64, bool) {
	return w.Rate, epoch >= w.Start && epoch < w.End
}

// Flap cycles the link through an on/off duty cycle: within each Period-long
// cycle the link is failed at Rate for the first On epochs (shifted by
// Phase). Flap{Rate, Period: 4, On: 2} is a 50% duty-cycle flap; a nonzero
// Phase staggers several flapping links against each other.
type Flap struct {
	Rate              float64
	Period, On, Phase int
}

// RateAt implements RateSchedule.
func (f Flap) RateAt(epoch int) (float64, bool) {
	if f.Period <= 0 || f.On <= 0 {
		return f.Rate, false
	}
	p := (epoch + f.Phase) % f.Period
	if p < 0 {
		p += f.Period
	}
	return f.Rate, p < f.On
}

// Intermittent fails the link at Rate in a random Prob fraction of epochs.
// Epoch membership is a counter-based draw on (Seed, epoch) — deterministic,
// order-free and independent of every other RNG stream in the simulator, so
// an intermittent link neither consumes simulator randomness nor changes any
// other link's draws.
type Intermittent struct {
	Rate float64
	Prob float64
	Seed uint64
}

// RateAt implements RateSchedule.
func (i Intermittent) RateAt(epoch int) (float64, bool) {
	return i.Rate, stats.DeriveUniform(i.Seed, uint64(epoch)) < i.Prob
}

// ValidRate reports whether rate is a probability.
func ValidRate(rate float64) bool {
	return !math.IsNaN(rate) && rate >= 0 && rate <= 1
}

// CheckRate validates the rate of the built-in schedule shapes up front.
// Custom RateSchedule implementations are opaque here and pass; the planes
// validate their rates epoch by epoch as each schedule is applied.
func CheckRate(sched RateSchedule) error {
	var rate float64
	switch sc := sched.(type) {
	case ConstantRate:
		rate = sc.Rate
	case Window:
		rate = sc.Rate
	case Flap:
		rate = sc.Rate
	case Intermittent:
		rate = sc.Rate
	default:
		return nil
	}
	if !ValidRate(rate) {
		return fmt.Errorf("schedule: drop rate %v outside [0, 1]", rate)
	}
	return nil
}

// Probe evaluates the schedule over epochs [0, epochs) and returns an error
// on the first active epoch whose rate is not a probability. RateSchedules
// are pure, so probing a whole scripted horizon costs nothing but
// arithmetic — the scenario engine runs this before committing a script to
// either plane.
func Probe(sched RateSchedule, epochs int) error {
	for e := 0; e < epochs; e++ {
		rate, active := sched.RateAt(e)
		if active && !ValidRate(rate) {
			return fmt.Errorf("schedule: epoch %d: drop rate %v outside [0, 1]", e, rate)
		}
	}
	return nil
}
