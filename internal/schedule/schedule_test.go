package schedule

import (
	"math"
	"testing"
)

func TestShapeActivity(t *testing.T) {
	cases := []struct {
		name  string
		sched RateSchedule
		// active[i] is the wanted activity flag for epoch i.
		active []bool
	}{
		{"constant", ConstantRate{Rate: 0.1}, []bool{true, true, true}},
		{"window", Window{Rate: 0.1, Start: 1, End: 3}, []bool{false, true, true, false}},
		{"flap-50", Flap{Rate: 0.1, Period: 4, On: 2}, []bool{true, true, false, false, true}},
		{"flap-phase", Flap{Rate: 0.1, Period: 4, On: 2, Phase: 3}, []bool{false, true, true, false}},
		{"flap-degenerate-period", Flap{Rate: 0.1, Period: 0, On: 1}, []bool{false, false}},
		{"flap-degenerate-on", Flap{Rate: 0.1, Period: 4, On: 0}, []bool{false, false}},
		{"intermittent-always", Intermittent{Rate: 0.1, Prob: 1, Seed: 9}, []bool{true, true}},
		{"intermittent-never", Intermittent{Rate: 0.1, Prob: 0, Seed: 9}, []bool{false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for e, want := range tc.active {
				rate, active := tc.sched.RateAt(e)
				if active != want {
					t.Fatalf("epoch %d: active = %v, want %v", e, active, want)
				}
				if rate != 0.1 {
					t.Fatalf("epoch %d: rate = %v, want 0.1", e, rate)
				}
			}
		})
	}
}

// A negative epoch (e.g. a Phase pushing the cycle position below zero)
// must still resolve to a sane duty-cycle slot.
func TestFlapNegativePosition(t *testing.T) {
	f := Flap{Rate: 0.1, Period: 4, On: 2, Phase: -1}
	if _, active := f.RateAt(0); active {
		t.Fatal("position -1 reported active in a 2-of-4 duty cycle")
	}
	if _, active := f.RateAt(1); !active {
		t.Fatal("position 0 reported inactive")
	}
}

// Intermittent membership is a pure function of (Seed, epoch) and its
// empirical on-fraction tracks Prob.
func TestIntermittentPureAndCalibrated(t *testing.T) {
	s := Intermittent{Rate: 0.01, Prob: 0.3, Seed: 42}
	const n = 10000
	on := 0
	for e := n - 1; e >= 0; e-- { // reverse order on purpose
		_, a1 := s.RateAt(e)
		_, a2 := s.RateAt(e)
		if a1 != a2 {
			t.Fatalf("epoch %d: RateAt not pure", e)
		}
		if a1 {
			on++
		}
	}
	frac := float64(on) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("on-fraction %v far from Prob 0.3", frac)
	}
}

func TestValidRate(t *testing.T) {
	for _, rate := range []float64{0, 0.5, 1} {
		if !ValidRate(rate) {
			t.Fatalf("ValidRate(%v) = false", rate)
		}
	}
	for _, rate := range []float64{-0.001, 1.001, math.NaN(), math.Inf(1)} {
		if ValidRate(rate) {
			t.Fatalf("ValidRate(%v) = true", rate)
		}
	}
}

// customSched stands in for a user-defined shape CheckRate cannot see into.
type customSched struct{ rate float64 }

func (c customSched) RateAt(int) (float64, bool) { return c.rate, true }

func TestCheckRate(t *testing.T) {
	for _, sched := range []RateSchedule{
		ConstantRate{Rate: 0.1},
		Window{Rate: 1},
		Flap{Rate: 0},
		Intermittent{Rate: 0.5},
		customSched{rate: 99}, // opaque: validated per-epoch, not here
	} {
		if err := CheckRate(sched); err != nil {
			t.Fatalf("CheckRate(%T) = %v", sched, err)
		}
	}
	for _, sched := range []RateSchedule{
		ConstantRate{Rate: -0.1},
		Window{Rate: 1.5},
		Flap{Rate: math.NaN()},
		Intermittent{Rate: 2},
	} {
		if err := CheckRate(sched); err == nil {
			t.Fatalf("CheckRate(%T) accepted an out-of-range rate", sched)
		}
	}
}

func TestProbe(t *testing.T) {
	if err := Probe(Window{Rate: 0.2, Start: 0, End: 4}, 10); err != nil {
		t.Fatal(err)
	}
	// An out-of-range rate in an inactive epoch is unreachable and passes.
	if err := Probe(Window{Rate: 7, Start: 20, End: 30}, 10); err != nil {
		t.Fatal(err)
	}
	if err := Probe(customSched{rate: 1.5}, 10); err == nil {
		t.Fatal("Probe accepted an out-of-range active rate")
	}
}
