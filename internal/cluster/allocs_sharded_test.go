package cluster

import (
	"testing"

	"vigil/internal/des"
	"vigil/internal/topology"
	"vigil/internal/traffic"
)

// The sharded steady state must stay within shouting distance of the
// single-threaded path's ~34 allocs/epoch: the persistent worker pool,
// recycled cross queues and zero-alloc barrier merges replaced the ~5.9k
// allocs/epoch the per-window goroutine spawns and merge scratch used to
// cost. The ceiling is deliberately loose (500) so the test pins the
// architecture — no per-window allocation — without flaking on runtime
// noise, and it holds even on the 1-CPU CI runner where the pool's
// workers mostly run serialized.
func TestShardedSteadyStateAllocs(t *testing.T) {
	topo, err := topology.New(quadPodQuickTopo)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Topo: topo, Seed: 3, EphemeralFlows: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 10, Hi: 10},
		PacketsPerFlow: traffic.IntRange{Lo: 75, Hi: 150},
	}
	epoch := func() {
		cl.StartWorkload(w, 20*des.Second)
		if res := cl.RunEpoch(); res == nil {
			t.Fatal("no result")
		}
	}
	// Warm every pool: packet buffers, scheduler lanes, cross queues,
	// merge scratch, the worker pool itself, conns, records, tuple maps.
	for i := 0; i < 2; i++ {
		epoch()
	}
	if flows := cl.LastEpoch().Flows; flows < 200 {
		t.Fatalf("want a full workload epoch, got %d flows", flows)
	}
	avg := testing.AllocsPerRun(5, epoch)
	t.Logf("sharded steady-state epoch: %.0f allocs (%d flows)", avg, cl.LastEpoch().Flows)
	if avg > 500 {
		t.Fatalf("sharded steady-state epoch allocates %.0f times, ceiling 500", avg)
	}
}
