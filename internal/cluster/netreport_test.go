package cluster

import (
	"encoding/json"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"vigil/internal/analysis"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

func newCollector(t *testing.T) (*CollectorServer, *analysis.Agent) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := analysis.NewAgent(analysis.Options{})
	s := ServeCollector(agent, ln)
	t.Cleanup(func() { s.Close() })
	return s, agent
}

func testReport(epoch, seq int32) vote.Report {
	return vote.Report{
		FlowID: int64(epoch)<<16 | int64(seq),
		Src:    topology.HostID(1), Dst: topology.HostID(2),
		Path: []topology.LinkID{3, 4, 5}, Retx: 1,
		Epoch: epoch, Seq: seq,
	}
}

// poll spins until cond holds or the deadline passes.
func poll(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A connection that turns to garbage mid-stream loses only itself: the
// reports acknowledged before the corruption stay counted exactly once,
// the connection is closed, and fresh reporters are unaffected.
func TestMalformedJSONMidStream(t *testing.T) {
	s, agent := newCollector(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(toWire(testReport(0, 0))); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(conn, ack); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("{\"flow_id\": not json at all")); err != nil {
		t.Fatal(err)
	}
	// The collector must abandon the stream: the next read sees EOF, not a
	// resynchronized decoder limping along.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, ack); err == nil {
		t.Fatal("collector kept the connection alive past malformed JSON")
	}
	if got := s.Received.Load(); got != 1 {
		t.Fatalf("Received = %d, want 1 (only the acknowledged report)", got)
	}
	if got := agent.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}

	// A fresh reporter connects and reports as if nothing happened.
	rep, err := DialReporter(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.Report(testReport(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Received.Load(); got != 2 {
		t.Fatalf("Received = %d after fresh reporter, want 2", got)
	}
}

// A report truncated by connection loss mid-object is never submitted —
// half a report must not count.
func TestTruncatedJSONThenClose(t *testing.T) {
	s, agent := newCollector(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var whole []byte
	if whole, err = json.Marshal(toWire(testReport(0, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(whole[:len(whole)/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Give the handler time to hit the decode error; the counts must not
	// move.
	time.Sleep(50 * time.Millisecond)
	if got := s.Received.Load(); got != 0 {
		t.Fatalf("Received = %d for a truncated report, want 0", got)
	}
	if got := agent.Pending(); got != 0 {
		t.Fatalf("Pending = %d for a truncated report, want 0", got)
	}
}

// A connection cut between the collector's decode and the reporter reading
// the ack counts the report exactly once: the submit already happened, and
// nothing re-submits it.
func TestCutBetweenDecodeAndAck(t *testing.T) {
	s, agent := newCollector(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(conn).Encode(toWire(testReport(0, 0))); err != nil {
		t.Fatal(err)
	}
	// Close without reading the ack: the collector's ack write lands on a
	// dying connection.
	conn.Close()
	poll(t, "the report to be counted", func() bool { return s.Received.Load() == 1 })
	time.Sleep(50 * time.Millisecond)
	if got := s.Received.Load(); got != 1 {
		t.Fatalf("Received = %d, want exactly 1 — the cut must not double-count", got)
	}
	if got := agent.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want exactly 1", got)
	}
}

// Concurrent reporters land every report exactly once: distinct identities
// in, the same number pending.
func TestConcurrentReporters(t *testing.T) {
	s, agent := newCollector(t)
	const reporters, perReporter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, reporters)
	for i := 0; i < reporters; i++ {
		wg.Add(1)
		go func(agentID int) {
			defer wg.Done()
			rep, err := DialReporter(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer rep.Close()
			for seq := 0; seq < perReporter; seq++ {
				r := testReport(0, int32(seq))
				r.Src = topology.HostID(agentID)
				if err := rep.Report(r); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	const want = reporters * perReporter
	if got := s.Received.Load(); got != want {
		t.Fatalf("Received = %d, want %d", got, want)
	}
	if got := agent.Pending(); got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
}

// A collector that accepts a report but never acknowledges it must surface
// as a timeout at the reporter, not a hang.
func TestReporterTimeoutOnSilentCollector(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Drain forever, ack never.
		io.Copy(io.Discard, conn)
	}()
	rep, err := DialReporterTimeout(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	rep.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	if err := rep.Report(testReport(0, 0)); err == nil {
		t.Fatal("Report returned nil against a collector that never acks")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Report took %v to fail; the 50ms deadline did not bound it", elapsed)
	}
}

// flakyAcceptListener fails the first n Accepts with a transient error,
// then delegates to the real listener.
type flakyAcceptListener struct {
	net.Listener
	mu   sync.Mutex
	fail int
}

type tempErr struct{}

func (tempErr) Error() string   { return "transient accept failure" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (l *flakyAcceptListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fail > 0 {
		l.fail--
		l.mu.Unlock()
		return nil, tempErr{}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// Transient Accept errors must not kill the collector's only front door:
// after a burst of failures the accept loop recovers and serves normally.
func TestAcceptBackoffSurvivesTransientErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := analysis.NewAgent(analysis.Options{})
	s := ServeCollector(agent, &flakyAcceptListener{Listener: inner, fail: 3})
	defer s.Close()

	rep, err := DialReporter(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.Report(testReport(0, 0)); err != nil {
		t.Fatalf("report after transient accept errors: %v", err)
	}
	if got := s.Received.Load(); got != 1 {
		t.Fatalf("Received = %d, want 1", got)
	}
}
