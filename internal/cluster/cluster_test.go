package cluster

import (
	"net"
	"testing"

	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/everflow"
	"vigil/internal/metrics"
	"vigil/internal/schedule"
	"vigil/internal/slb"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

func testCluster(t testing.TB, seed uint64) *Cluster {
	t.Helper()
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Topo: topo, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestLosslessTransferCompletes(t *testing.T) {
	cl := testCluster(t, 1)
	f := traffic.Flow{
		Src: cl.Topo.HostAt(0, 0, 0), Dst: cl.Topo.HostAt(0, 5, 1),
		Tuple: ecmp.FiveTuple{
			SrcIP:   cl.Topo.Hosts[cl.Topo.HostAt(0, 0, 0)].IP,
			DstIP:   cl.Topo.Hosts[cl.Topo.HostAt(0, 5, 1)].IP,
			SrcPort: 40000, DstPort: 443, Proto: ecmp.ProtoTCP,
		},
		Packets: 200,
	}
	cl.StartFlow(f, 0)
	res := cl.RunEpoch()
	conn := cl.Flows()[0].Conn()
	if conn == nil || !conn.Done || conn.Failed {
		t.Fatalf("transfer did not complete: %+v", conn)
	}
	if conn.Retransmits != 0 {
		t.Fatalf("%d retransmits on a clean fabric", conn.Retransmits)
	}
	if len(res.Ranking) != 0 {
		t.Fatalf("votes cast on a clean fabric: %+v", res.Ranking)
	}
}

// A lossy link must cause genuine retransmissions, traceroutes that follow
// the data path exactly, and a tally in which the bad link leads.
func TestLossyLinkLocalizedEndToEnd(t *testing.T) {
	cl := testCluster(t, 2)
	topo := cl.Topo
	// The §7.3 scenario: induce drops on a T1→ToR link.
	bad := topo.LinksOfClass(topology.L1Down)[7]
	cl.InjectFailure(bad, 0.03)

	rng := stats.NewRNG(3)
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 6, Hi: 6},
		PacketsPerFlow: traffic.IntRange{Lo: 60, Hi: 60},
	}
	for _, f := range w.Generate(rng, topo) {
		cl.StartFlow(f, des.Time(rng.Intn(int(10*des.Second))))
	}
	res := cl.RunEpoch()
	if res.Tally.Flows() == 0 {
		t.Fatal("no reports reached the analysis agent")
	}
	if len(res.Ranking) == 0 || res.Ranking[0].Link != bad {
		t.Fatalf("top-ranked = %v (%s), want %s",
			res.Ranking[0].Link, topo.LinkName(res.Ranking[0].Link), topo.LinkName(bad))
	}
	found := false
	for _, l := range res.Detected {
		if l == bad {
			found = true
		}
	}
	if !found {
		t.Fatalf("Algorithm 1 missed the bad link: %v", res.Detected)
	}
	// Per-flow verdicts score well against tap-harvested ground truth.
	score := metrics.ScoreVerdicts(res.Verdicts, cl.Truth())
	if score.Considered == 0 {
		t.Fatal("no scored flows")
	}
	if acc := score.Accuracy(); acc < 0.8 {
		t.Fatalf("per-flow accuracy = %v", acc)
	}
}

// The traceroute's discovered path must equal the path the data packets
// actually took — EverFlow cross-validation, §8.2 ("each path recorded by
// 007 matches exactly the path taken by that flow's packets").
func TestTraceroutePathMatchesEverFlow(t *testing.T) {
	cl := testCluster(t, 4)
	topo := cl.Topo
	ef := everflow.New(topo, nil)
	cl.Net.AddTap(ef.Tap())
	bad := topo.LinksOfClass(topology.L1Up)[3]
	cl.InjectFailure(bad, 0.05)

	var reports []vote.Report
	base := cl.Reporter
	cl.Reporter = func(r vote.Report) { reports = append(reports, r); base(r) }

	rng := stats.NewRNG(5)
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 4, Hi: 4},
		PacketsPerFlow: traffic.IntRange{Lo: 50, Hi: 50},
	}
	for _, f := range w.Generate(rng, topo) {
		cl.StartFlow(f, des.Time(rng.Intn(int(5*des.Second))))
	}
	cl.RunEpoch()
	if len(reports) == 0 {
		t.Fatal("no traceroute reports")
	}
	checked := 0
	for _, r := range reports {
		if r.Partial {
			continue
		}
		var rec *flowRecord
		for _, fr := range cl.Flows() {
			if fr.id == r.FlowID {
				rec = fr
				break
			}
		}
		if rec == nil {
			t.Fatalf("report for unknown flow %d", r.FlowID)
		}
		want, ok := ef.PathOf(rec.wireTuple)
		if !ok {
			continue // flow's packets all died before the first mirror
		}
		if len(want) != len(r.Path) {
			t.Fatalf("flow %d: 007 found %d links, EverFlow %d", r.FlowID, len(r.Path), len(want))
		}
		for i := range want {
			if want[i] != r.Path[i] {
				t.Fatalf("flow %d: path mismatch at hop %d: 007=%s everflow=%s",
					r.FlowID, i, topo.LinkName(r.Path[i]), topo.LinkName(want[i]))
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no complete traceroutes to validate")
	}
}

// A near-dead link kills the traceroute too; the agent must produce a
// partial report whose prefix still points at the failure (§4.2:
// "traceroute itself may fail... this actually helps us").
func TestPartialTraceroute(t *testing.T) {
	cl := testCluster(t, 6)
	topo := cl.Topo
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 9, 3)
	// Kill every uplink of the source ToR beyond the first hop.
	tor := topo.Hosts[src].ToR
	for _, up := range topo.Switches[tor].Uplinks {
		cl.InjectFailure(up, 1.0)
	}
	var reports []vote.Report
	cl.Reporter = func(r vote.Report) { reports = append(reports, r) }
	cl.StartFlow(traffic.Flow{
		Src: src, Dst: dst,
		Tuple: ecmp.FiveTuple{
			SrcIP: topo.Hosts[src].IP, DstIP: topo.Hosts[dst].IP,
			SrcPort: 41000, DstPort: 443, Proto: ecmp.ProtoTCP,
		},
		Packets: 20,
	}, 0)
	cl.RunEpoch()
	if len(reports) == 0 {
		t.Fatal("no report for a blackholed flow")
	}
	r := reports[0]
	if !r.Partial {
		t.Fatal("blackholed traceroute not marked partial")
	}
	// The prefix must reach exactly the ToR (host uplink only).
	if len(r.Path) != 1 || r.Path[0] != topo.Hosts[src].Uplink {
		t.Fatalf("partial path = %v", r.Path)
	}
}

// VIP flows: ETW sees the VIP, the wire carries the DIP, and path
// discovery must translate through the SLB before probing.
func TestVIPFlowTracedViaSLB(t *testing.T) {
	cl := testCluster(t, 7)
	topo := cl.Topo
	vip := slb.VIP(1)
	backends := []topology.HostID{topo.HostAt(0, 5, 0), topo.HostAt(0, 6, 1)}
	if err := cl.SLB.RegisterVIP(vip, backends); err != nil {
		t.Fatal(err)
	}
	// Fail a T1→ToR link into a backend rack so VIP data paths cross it.
	bad, ok := topo.LinkBetween(
		topology.SwitchNode(topo.T1(0, 2)), topology.SwitchNode(topo.ToR(0, 5)))
	if !ok {
		t.Fatal("no T1→ToR link")
	}
	cl.InjectFailure(bad, 0.08)

	var reports []vote.Report
	cl.Reporter = func(r vote.Report) { reports = append(reports, r) }
	rng := stats.NewRNG(8)
	for i := 0; i < 120; i++ {
		src := topology.HostID(rng.Intn(len(topo.Hosts)))
		if err := cl.StartVIPFlow(src, vip, 443, 60, des.Time(rng.Intn(int(5*des.Second)))); err != nil {
			t.Fatal(err)
		}
	}
	cl.RunEpoch()
	if len(reports) == 0 {
		t.Fatal("no reports for VIP traffic")
	}
	// Every complete report must end at a backend, not at the VIP.
	for _, r := range reports {
		if r.Partial {
			continue
		}
		if r.Dst != backends[0] && r.Dst != backends[1] {
			t.Fatalf("trace ended at host %d, not a backend", r.Dst)
		}
	}
	if cl.SLB.Queries == 0 {
		t.Fatal("path discovery never queried the SLB")
	}
}

// When the SLB query fails, no traceroute may be sent (§4.2).
func TestSLBFailureSuppressesTraceroute(t *testing.T) {
	cl := testCluster(t, 9)
	topo := cl.Topo
	vip := slb.VIP(1)
	if err := cl.SLB.RegisterVIP(vip, []topology.HostID{topo.HostAt(0, 5, 0)}); err != nil {
		t.Fatal(err)
	}
	cl.SLB.QueryFailRate = 1.0
	cl.InjectFailure(topo.LinksOfClass(topology.L1Up)[0], 0.3)
	var reports []vote.Report
	cl.Reporter = func(r vote.Report) { reports = append(reports, r) }
	rng := stats.NewRNG(10)
	for i := 0; i < 60; i++ {
		src := topology.HostID(rng.Intn(len(topo.Hosts)))
		if err := cl.StartVIPFlow(src, vip, 443, 40, des.Time(rng.Intn(int(3*des.Second)))); err != nil {
			t.Fatal(err)
		}
	}
	cl.RunEpoch()
	if len(reports) != 0 {
		t.Fatalf("%d traceroutes sent despite SLB failures", len(reports))
	}
	var skipped int64
	for _, h := range cl.Hosts {
		skipped += h.Path.SLBFailures
	}
	if skipped == 0 {
		t.Fatal("no SLB failures recorded")
	}
}

// The host Ct budget must bound traceroutes per host per second
// (Theorem 1's host-side enforcement).
func TestHostTracerouteBudget(t *testing.T) {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Topo: topo, Seed: 11, Ct: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every link lossy: every flow retransmits.
	for id := range topo.Links {
		cl.InjectFailure(topology.LinkID(id), 0.3)
	}
	rng := stats.NewRNG(12)
	src := topo.HostAt(0, 0, 0)
	for i := 0; i < 40; i++ {
		dst := traffic.Uniform{}.Pick(rng, topo, src)
		cl.StartFlow(traffic.Flow{
			Src: src, Dst: dst,
			Tuple: ecmp.FiveTuple{
				SrcIP: topo.Hosts[src].IP, DstIP: topo.Hosts[dst].IP,
				SrcPort: uint16(42000 + i), DstPort: 443, Proto: ecmp.ProtoTCP,
			},
			Packets: 30,
		}, des.Time(i)*100*des.Millisecond) // 40 flows over 4 seconds
	}
	cl.RunEpoch()
	h := cl.Hosts[src]
	if h.Path.RateLimited == 0 {
		t.Fatal("budget never engaged")
	}
	// 2/s over ~32 seconds of epoch: traces well below flow count.
	if h.Path.Traces > 2*34 {
		t.Fatalf("traces = %d exceed the Ct budget envelope", h.Path.Traces)
	}
}

// Reports delivered over real loopback TCP must land in the collector
// identically to in-process delivery.
func TestLoopbackTCPReporting(t *testing.T) {
	cl := testCluster(t, 13)
	topo := cl.Topo
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeCollector(cl.Agent, ln)
	defer srv.Close()
	rep, err := DialReporter(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	cl.Reporter = func(r vote.Report) {
		if err := rep.Report(r); err != nil {
			t.Errorf("report failed: %v", err)
		}
	}
	bad := topo.LinksOfClass(topology.L1Down)[5]
	cl.InjectFailure(bad, 0.05)
	rng := stats.NewRNG(14)
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 3, Hi: 3},
		PacketsPerFlow: traffic.IntRange{Lo: 40, Hi: 40},
	}
	for _, f := range w.Generate(rng, topo) {
		cl.StartFlow(f, des.Time(rng.Intn(int(5*des.Second))))
	}
	res := cl.RunEpoch()
	if srv.Received.Load() == 0 {
		t.Fatal("collector received nothing over TCP")
	}
	if int64(res.Tally.Flows()) != srv.Received.Load() {
		t.Fatalf("tally flows %d != received %d", res.Tally.Flows(), srv.Received.Load())
	}
	if len(res.Ranking) == 0 || res.Ranking[0].Link != bad {
		t.Fatalf("TCP-delivered analysis wrong: top = %+v", res.Ranking[0])
	}
}

// Connections that exhaust their retries fail — the paper's VM-reboot
// signal — and 007 must explain them.
func TestConnFailuresDiagnosed(t *testing.T) {
	cl := testCluster(t, 15)
	topo := cl.Topo
	bad := topo.Hosts[topo.HostAt(0, 3, 0)].Downlink // ToR→host, §8.3's top cause
	cl.InjectFailure(bad, 0.9)
	rng := stats.NewRNG(16)
	for i := 0; i < 10; i++ {
		src := topology.HostID(rng.Intn(len(topo.Hosts)))
		if topo.Hosts[src].ToR == topo.Hosts[topo.HostAt(0, 3, 0)].ToR {
			continue
		}
		cl.StartFlow(traffic.Flow{
			Src: src, Dst: topo.HostAt(0, 3, 0),
			Tuple: ecmp.FiveTuple{
				SrcIP: topo.Hosts[src].IP, DstIP: topo.Hosts[topo.HostAt(0, 3, 0)].IP,
				SrcPort: uint16(43000 + i), DstPort: 443, Proto: ecmp.ProtoTCP,
			},
			Packets: 50,
		}, des.Time(i)*des.Second)
	}
	res := cl.RunEpoch()
	if cl.FailedConns() == 0 {
		t.Fatal("no connection failed through a 90% loss link")
	}
	if len(res.Ranking) == 0 || res.Ranking[0].Link != bad {
		t.Fatalf("failed-connection cause not localized: %+v", res.Ranking)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, float64) {
		cl := testCluster(t, 42)
		topo := cl.Topo
		cl.InjectFailure(topo.LinksOfClass(topology.L1Up)[1], 0.05)
		rng := stats.NewRNG(43)
		w := traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 2, Hi: 2},
			PacketsPerFlow: traffic.IntRange{Lo: 30, Hi: 30},
		}
		for _, f := range w.Generate(rng, topo) {
			cl.StartFlow(f, des.Time(rng.Intn(int(3*des.Second))))
		}
		res := cl.RunEpoch()
		return res.Tally.Flows(), res.Tally.Total()
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v", f1, t1, f2, t2)
	}
}

// The §9.2 latency extension: a link with injected delay (no drops at all)
// must be localized through RTT-threshold-triggered voting.
func TestLatencyDiagnosis(t *testing.T) {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Topo: topo, Seed: 31, RTTThresholdMicros: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// 3ms of extra one-way delay on one T1→ToR link; nothing drops.
	slow := topo.LinksOfClass(topology.L1Down)[11]
	if err := cl.Net.SetExtraDelay(slow, 3*des.Millisecond); err != nil {
		t.Fatal(err)
	}

	rng := stats.NewRNG(32)
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 6, Hi: 6},
		PacketsPerFlow: traffic.IntRange{Lo: 40, Hi: 40},
	}
	for _, f := range w.Generate(rng, topo) {
		cl.StartFlow(f, des.Time(rng.Intn(int(10*des.Second))))
	}
	res := cl.RunEpoch()
	if res.Tally.Flows() == 0 {
		t.Fatal("no latency-triggered reports")
	}
	if len(res.Ranking) == 0 || res.Ranking[0].Link != slow {
		t.Fatalf("top-ranked %s, want the slow link %s",
			topo.LinkName(res.Ranking[0].Link), topo.LinkName(slow))
	}
	// And no retransmissions happened: this is purely latency signal.
	for _, f := range cl.Flows() {
		if c := f.Conn(); c != nil && c.Retransmits > 0 {
			t.Fatal("delay-only fault caused retransmissions")
		}
	}
}

// Without a threshold configured, RTT samples must not trigger anything.
func TestLatencyDisabledByDefault(t *testing.T) {
	cl := testCluster(t, 33)
	topo := cl.Topo
	if err := cl.Net.SetExtraDelay(topo.LinksOfClass(topology.L1Down)[2], 5*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(34)
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 2, Hi: 2},
		PacketsPerFlow: traffic.IntRange{Lo: 20, Hi: 20},
	}
	for _, f := range w.Generate(rng, topo) {
		cl.StartFlow(f, des.Time(rng.Intn(int(5*des.Second))))
	}
	res := cl.RunEpoch()
	if res.Tally.Flows() != 0 {
		t.Fatalf("delay-only fault produced %d reports with latency diagnosis off", res.Tally.Flows())
	}
}

// InjectFailure and ClearFailure must validate their inputs (the fabric
// got validated setters; the cluster surfaces them).
func TestInjectFailureValidation(t *testing.T) {
	cl := testCluster(t, 20)
	nlinks := len(cl.Topo.Links)
	good := cl.Topo.LinksOfClass(topology.L1Up)[0]
	for _, l := range []topology.LinkID{-1, topology.LinkID(nlinks)} {
		if err := cl.InjectFailure(l, 0.1); err == nil {
			t.Fatalf("InjectFailure accepted link %d", l)
		}
		if err := cl.ClearFailure(l); err == nil {
			t.Fatalf("ClearFailure accepted link %d", l)
		}
	}
	for _, rate := range []float64{-0.1, 1.5} {
		if err := cl.InjectFailure(good, rate); err == nil {
			t.Fatalf("InjectFailure accepted rate %v", rate)
		}
	}
	if err := cl.InjectFailure(good, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := cl.FailedLinks(); len(got) != 1 || got[0] != good {
		t.Fatalf("FailedLinks = %v", got)
	}
	// A rejected injection must not enter the failure set.
	if err := cl.InjectFailure(cl.Topo.LinksOfClass(topology.L1Up)[1], 2.0); err == nil {
		t.Fatal("bad rate accepted")
	}
	if got := cl.FailedLinks(); len(got) != 1 {
		t.Fatalf("rejected injection leaked into FailedLinks: %v", got)
	}
	if err := cl.ClearFailure(good); err != nil {
		t.Fatal(err)
	}
	if got := cl.FailedLinks(); len(got) != 0 {
		t.Fatalf("FailedLinks = %v after clear", got)
	}
}

// A scheduled link must rotate with the epochs: failed (and dropping)
// during its scripted window, healthy outside it, with the per-epoch frame
// recording exactly the settled set.
func TestScheduledFailureRotatesAcrossEpochs(t *testing.T) {
	cl := testCluster(t, 21)
	topo := cl.Topo
	bad := topo.LinksOfClass(topology.L1Down)[3]
	if err := cl.ScheduleFailure(bad, schedule.Window{Rate: 0.05, Start: 1, End: 2}); err != nil {
		t.Fatal(err)
	}
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 4, Hi: 4},
		PacketsPerFlow: traffic.IntRange{Lo: 60, Hi: 60},
	}
	for e := 0; e < 3; e++ {
		if got := cl.EpochIndex(); got != e {
			t.Fatalf("EpochIndex = %d before epoch %d", got, e)
		}
		cl.StartWorkload(w, 10*des.Second)
		res := cl.RunEpoch()
		fr := cl.LastEpoch()
		if fr.Index != e {
			t.Fatalf("frame index = %d, want %d", fr.Index, e)
		}
		if fr.Flows == 0 {
			t.Fatalf("epoch %d: no flows recorded", e)
		}
		active := e == 1
		if active {
			if len(fr.FailedLinks) != 1 || fr.FailedLinks[0] != bad {
				t.Fatalf("epoch %d: frame FailedLinks = %v, want [%v]", e, fr.FailedLinks, bad)
			}
			if fr.Drops == 0 || fr.FailedFlows == 0 || len(fr.Truth) != fr.FailedFlows {
				t.Fatalf("epoch %d: no drop signal in frame: %+v", e, fr)
			}
			if len(res.Ranking) == 0 || res.Ranking[0].Link != bad {
				t.Fatalf("epoch %d: scheduled link not top-ranked", e)
			}
			crossed := false
			for _, tr := range fr.Truth {
				if tr.CrossedFailure {
					crossed = true
				}
			}
			if !crossed {
				t.Fatalf("epoch %d: no truth entry crossed the scheduled failure", e)
			}
		} else if len(fr.FailedLinks) != 0 {
			t.Fatalf("epoch %d: frame FailedLinks = %v, want none", e, fr.FailedLinks)
		}
	}
	cl.ClearSchedules()
	if got := cl.FailedLinks(); len(got) != 0 {
		t.Fatalf("ClearSchedules left failures: %v", got)
	}
}

// ScheduleFailure must validate its inputs like the flow plane does.
func TestScheduleFailureValidation(t *testing.T) {
	cl := testCluster(t, 23)
	good := cl.Topo.LinksOfClass(topology.L1Up)[0]
	if err := cl.ScheduleFailure(-1, schedule.ConstantRate{Rate: 0.1}); err == nil {
		t.Fatal("unknown link accepted")
	}
	if err := cl.ScheduleFailure(good, nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if err := cl.ScheduleFailure(good, schedule.ConstantRate{Rate: 1.5}); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if err := cl.ScheduleFailure(good, schedule.ConstantRate{Rate: 0.1}); err != nil {
		t.Fatal(err)
	}
}

// Configured noise must surface as a baseline: failures cleared on a noisy
// link return to the drawn noise rate, not to zero, and bad ranges error.
func TestClusterNoiseBaseline(t *testing.T) {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Topo: topo, Seed: 24, NoiseLo: 0.5, NoiseHi: 0.1}); err == nil {
		t.Fatal("inverted noise range accepted")
	}
	cl, err := New(Config{Topo: topo, Seed: 24, NoiseLo: 1e-7, NoiseHi: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	l := topo.LinksOfClass(topology.L1Up)[2]
	base := cl.Net.DropRate(l)
	if base < 1e-7 || base >= 1e-6 {
		t.Fatalf("noise baseline %v outside [1e-7, 1e-6)", base)
	}
	if err := cl.InjectFailure(l, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := cl.ClearFailure(l); err != nil {
		t.Fatal(err)
	}
	if got := cl.Net.DropRate(l); got != base {
		t.Fatalf("cleared link at %v, want its noise baseline %v", got, base)
	}
}

// Ephemeral flow recycling must be invisible to the epoch pipeline: the
// same seed and workload produce identical tallies, rankings and
// ground-truth frames whether per-flow state is retained or recycled.
func TestEphemeralFlowsMatchRetained(t *testing.T) {
	run := func(ephemeral bool) (flows []int, totals []float64, frames []EpochFrame) {
		topo, err := topology.New(topology.TestClusterConfig)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := New(Config{Topo: topo, Seed: 51, EphemeralFlows: ephemeral})
		if err != nil {
			t.Fatal(err)
		}
		bad := topo.LinksOfClass(topology.L1Down)[4]
		if err := cl.InjectFailure(bad, 0.02); err != nil {
			t.Fatal(err)
		}
		w := traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: 4, Hi: 4},
			PacketsPerFlow: traffic.IntRange{Lo: 40, Hi: 80},
		}
		for e := 0; e < 3; e++ {
			cl.StartWorkload(w, 10*des.Second)
			res := cl.RunEpoch()
			flows = append(flows, res.Tally.Flows())
			totals = append(totals, res.Tally.Total())
			frames = append(frames, cl.LastEpoch())
		}
		return
	}
	f1, t1, fr1 := run(false)
	f2, t2, fr2 := run(true)
	for e := range f1 {
		if f1[e] != f2[e] || t1[e] != t2[e] {
			t.Fatalf("epoch %d diverged: %d/%v vs %d/%v", e, f1[e], t1[e], f2[e], t2[e])
		}
		a, b := fr1[e], fr2[e]
		if a.Flows != b.Flows || a.FailedFlows != b.FailedFlows || a.Drops != b.Drops {
			t.Fatalf("epoch %d frames diverged: %+v vs %+v", e, a, b)
		}
		if len(a.Truth) != len(b.Truth) {
			t.Fatalf("epoch %d truth sizes diverged: %d vs %d", e, len(a.Truth), len(b.Truth))
		}
		for id, tr := range a.Truth {
			if b.Truth[id] != tr {
				t.Fatalf("epoch %d flow %d truth diverged: %+v vs %+v", e, id, tr, b.Truth[id])
			}
		}
	}
}

// The steady-state packet-plane epoch must be (near) allocation-free: with
// ephemeral flows, a warmed cluster runs whole no-failure epochs — every
// data packet, ACK and epoch roll — reusing pooled state. This mirrors the
// flow plane's TestSteadyStateEpochAllocs budget.
func TestClusterEpochAllocs(t *testing.T) {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Topo: topo, Seed: 3, EphemeralFlows: true})
	if err != nil {
		t.Fatal(err)
	}
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 10, Hi: 10},
		PacketsPerFlow: traffic.IntRange{Lo: 75, Hi: 150},
	}
	epoch := func() {
		cl.StartWorkload(w, 20*des.Second)
		res := cl.RunEpoch()
		if cl.LastEpoch().Flows == 0 {
			t.Fatal("no flows")
		}
		if res == nil {
			t.Fatal("no result")
		}
	}
	// Warm every pool: packet buffers, scheduler lanes, conns, records,
	// tuple maps, the analysis inbox.
	for i := 0; i < 2; i++ {
		epoch()
	}
	flows := cl.LastEpoch().Flows
	if flows < 300 {
		t.Fatalf("want a full workload epoch, got %d flows", flows)
	}
	avg := testing.AllocsPerRun(5, epoch)
	// ~400 connections and ~90k emulated packets per epoch settle around
	// 34 allocations — the fixed per-epoch cost (frame, empty analysis
	// close, map growth remnants). The budget leaves slack for runtime
	// variation but pins per-flow cost to zero.
	if avg > 120 {
		t.Fatalf("steady-state cluster epoch allocates %.0f times for %d flows", avg, flows)
	}
}
