package cluster

import (
	"fmt"
	"hash/fnv"
	"testing"

	"vigil/internal/des"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// quadPodQuickTopo is a small multi-pod Clos for sharded-path tests: every
// link class present, four pods so worker counts up to 4 get real shards.
var quadPodQuickTopo = topology.Config{Pods: 4, ToRsPerPod: 3, T1PerPod: 3, T2: 2, HostsPerToR: 2}

// twoPodQuickTopo mirrors the scenario package's packet quick topology
// (which cluster tests cannot import — the scenario package imports the
// engine, which imports this package).
var twoPodQuickTopo = topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 2}

// delayEvent applies a scripted extra-delay change from inside the DES —
// on the shard that owns the link, the only place a mid-epoch link
// mutation is legal on a sharded fabric.
type delayEvent struct {
	cl   *Cluster
	link topology.LinkID
}

func (d *delayEvent) HandleEvent(_ int32, arg int64, _ any) {
	if err := d.cl.Net.SetExtraDelay(d.link, des.Time(arg)); err != nil {
		panic(err)
	}
}

// shardedEpochLog runs a fixed three-epoch workload against one injected
// failure and serializes everything the epoch produced — every report
// field, the epoch frame, the detection result and the fabric's forwarding
// counters — into one canonical string. Two runs are bit-identical iff
// their logs match. mutate, when non-nil, is invoked before each epoch to
// script per-epoch perturbations.
func shardedEpochLog(t *testing.T, cfg topology.Config, workers int, mutate func(epoch int, cl *Cluster)) string {
	t.Helper()
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Topo: topo, Seed: 6, EphemeralFlows: true, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var log string
	var epochReports []vote.Report
	base := cl.Reporter
	cl.Reporter = func(r vote.Report) {
		r.Path = append([]topology.LinkID(nil), r.Path...)
		epochReports = append(epochReports, r)
		base(r)
	}
	bad := topo.LinksOfClass(topology.L1Down)[1]
	if err := cl.InjectFailure(bad, 0.08); err != nil {
		t.Fatal(err)
	}
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 6, Hi: 6},
		PacketsPerFlow: traffic.IntRange{Lo: 60, Hi: 60},
	}
	for e := 0; e < 3; e++ {
		if mutate != nil {
			mutate(e, cl)
		}
		cl.StartWorkload(w, 10*des.Second)
		res := cl.RunEpoch()
		fr := cl.LastEpoch()
		// Reports are compared in canonical order: the sharded plane flushes
		// its per-shard buffers canonically at settle, while the legacy
		// scheduler emits live in virtual-time order — the analysis settles
		// both the same way, so the emission order is not part of the
		// bit-identity contract but the report set and every field is.
		vote.SortCanonical(epochReports)
		for _, r := range epochReports {
			log += fmt.Sprintf("r src=%d ep=%d seq=%d flow=%d path=%v retx=%d partial=%v\n",
				r.Src, r.Epoch, r.Seq, r.FlowID, r.Path, r.Retx, r.Partial)
		}
		epochReports = epochReports[:0]
		var fwd, drp, icmp, supp int64
		for _, v := range cl.Net.LinkForwarded {
			fwd += v
		}
		for _, v := range cl.Net.LinkDropped {
			drp += v
		}
		for _, v := range cl.Net.ICMPSent {
			icmp += v
		}
		for _, v := range cl.Net.ICMPSuppressed {
			supp += v
		}
		log += fmt.Sprintf("epoch %d: flows=%d failed=%d drops=%d detected=%v truth=%d fwd=%d drp=%d icmp=%d supp=%d\n",
			e, fr.Flows, fr.FailedFlows, fr.Drops, res.Detected, len(fr.Truth), fwd, drp, icmp, supp)
	}
	return log
}

func epochHash(log string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(log))
	return h.Sum64()
}

// The tentpole contract: epochs are bit-identical between the legacy
// single scheduler (Workers=0) and the pod-sharded conservative DES at
// every worker count, on both the §7-scale test cluster (one pod — the
// degenerate single-shard case) and multi-pod topologies where windows,
// barriers and cross-pod queues all engage.
func TestClusterBitIdenticalAcrossWorkers(t *testing.T) {
	for _, cfg := range []topology.Config{topology.TestClusterConfig, twoPodQuickTopo, quadPodQuickTopo} {
		ref := shardedEpochLog(t, cfg, 0, nil)
		if len(ref) == 0 {
			t.Fatalf("pods=%d: empty reference log", cfg.Pods)
		}
		want := epochHash(ref)
		for _, workers := range []int{1, 2, 4, 8} {
			got := shardedEpochLog(t, cfg, workers, nil)
			if epochHash(got) != want {
				t.Errorf("pods=%d workers=%d diverged from single-threaded (hash %x vs %x):\n--- workers=0 ---\n%s--- workers=%d ---\n%s",
					cfg.Pods, workers, epochHash(got), want, ref, workers, got)
				break
			}
		}
	}
}

// SetExtraDelay scripted mid-epoch: growing a pod's delivery latency
// stretches its windows, shrinking it back tightens them, and neither may
// perturb bit-identity — the conservative lookahead is the base LinkDelay,
// a floor no extra delay can undercut. The change itself executes as a DES
// event on the owning shard (SchedOfLink), the only legal mutation point
// mid-run.
func TestClusterBitIdenticalUnderExtraDelayChurn(t *testing.T) {
	for _, cfg := range []topology.Config{twoPodQuickTopo, quadPodQuickTopo} {
		mutate := func(e int, cl *Cluster) {
			// An inter-pod hop: T1 → T2 crosses the pod boundary.
			slow := cl.Topo.LinksOfClass(topology.L2Up)[1]
			sched, err := cl.Net.SchedOfLink(slow)
			if err != nil {
				t.Fatal(err)
			}
			// Grow to 400µs mid-epoch 0, shrink to 20µs mid-epoch 1, clear
			// mid-epoch 2. Posted before the run, executed mid-epoch; key 0
			// sorts the mutation ahead of same-tick deliveries in both modes.
			var extra des.Time
			switch e {
			case 0:
				extra = 400 * des.Microsecond
			case 1:
				extra = 20 * des.Microsecond
			}
			sched.PostKeyed(cl.Now()+3*des.Second, 0, &delayEvent{cl: cl, link: slow}, 0, int64(extra), nil)
		}
		ref := shardedEpochLog(t, cfg, 0, mutate)
		for _, workers := range []int{1, 2, 4, 8} {
			if got := shardedEpochLog(t, cfg, workers, mutate); got != ref {
				t.Errorf("pods=%d workers=%d diverged under extra-delay churn:\n--- workers=0 ---\n%s--- workers=%d ---\n%s",
					cfg.Pods, workers, ref, workers, got)
				break
			}
		}
	}
}

// TestShardedClusterSoak keeps a multi-pod sharded epoch under full
// concurrency; it exists chiefly for the -race CI job, which runs it in
// short mode to hunt interleavings in the window/barrier protocol and the
// per-shard fabric state.
func TestShardedClusterSoak(t *testing.T) {
	if log := shardedEpochLog(t, quadPodQuickTopo, 4, nil); len(log) == 0 {
		t.Fatal("soak produced no epochs")
	}
}
