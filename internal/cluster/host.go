package cluster

import (
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/etw"
	"vigil/internal/monitor"
	"vigil/internal/pathdisc"
	"vigil/internal/topology"
	"vigil/internal/wire"
)

// Host is one emulated end host: a minimal reliable-delivery TCP-style
// stack (enough to produce genuine retransmissions under loss), the ETW
// bus, and 007's monitoring and path discovery agents — the composition of
// Figure 2.
type Host struct {
	cl *Cluster
	id topology.HostID
	ip uint32

	Bus  *etw.Bus
	Mon  *monitor.Agent
	Path *pathdisc.Agent

	conns map[ecmp.FiveTuple]*Conn  // keyed by forward wire tuple
	rx    map[ecmp.FiveTuple]uint32 // receiver: next expected seq per flow
}

// Conn is one outgoing reliable connection. Loss recovery is a compact
// cumulative-ACK scheme: three duplicate ACKs trigger fast retransmit, a
// doubling RTO timer triggers timeout retransmit, and MaxRetries
// consecutive RTOs fail the connection (the paper's "VM panic" scenario:
// a storage connection that cannot make progress).
type Conn struct {
	host *Host
	// wireTuple addresses the physical DIP; appTuple is what TCP (and so
	// ETW and 007) sees — the VIP for load-balanced connections.
	wireTuple ecmp.FiveTuple
	appTuple  ecmp.FiveTuple

	total    uint32 // packets to deliver
	nextSend uint32
	acked    uint32
	dupAcks  int
	retries  int
	rto      des.Time
	rtoGen   uint64

	// sentAt records first-transmission times for RTT sampling; following
	// Karn's rule, retransmitted segments are never sampled.
	sentAt map[uint32]des.Time
	srtt   des.Time

	Retransmits int
	Done        bool
	Failed      bool
	onClose     func(c *Conn)
}

func newHost(cl *Cluster, id topology.HostID) *Host {
	h := &Host{
		cl:    cl,
		id:    id,
		ip:    cl.Topo.Hosts[id].IP,
		Bus:   &etw.Bus{},
		conns: make(map[ecmp.FiveTuple]*Conn),
		rx:    make(map[ecmp.FiveTuple]uint32),
	}
	h.Path = pathdisc.New(pathdisc.Config{
		Topo:         cl.Topo,
		Host:         id,
		SLB:          cl.SLB,
		Send:         func(data []byte) { cl.Net.SendFromHost(id, data) },
		Sched:        cl.Sched,
		Ct:           cl.cfg.Ct,
		ProbeTimeout: cl.cfg.ProbeTimeout,
		OnReport:     cl.report,
		Retx:         func(flow ecmp.FiveTuple) int { return h.Mon.Retx(flow) },
		FlowID:       cl.flowID,
	})
	h.Mon = monitor.New(h.Path.Discover)
	h.Mon.RTTThresholdMicros = cl.cfg.RTTThresholdMicros
	h.Mon.Attach(h.Bus)
	cl.Net.OnHostPacket(id, h.receive)
	return h
}

// receive is the host's packet entry point: ICMP goes to path discovery,
// valid TCP to the stack, everything else (including 007's bad-checksum
// probes) is dropped exactly as a real stack would drop it.
func (h *Host) receive(data []byte) {
	var ip wire.IPv4
	payload, err := wire.DecodeIPv4(data, &ip)
	if err != nil {
		return
	}
	switch ip.Protocol {
	case wire.ProtoICMP:
		var ic wire.ICMP
		if wire.DecodeICMP(payload, &ic) == nil {
			h.Path.HandleICMP(ip.Src, &ic)
		}
	case wire.ProtoTCP:
		if !wire.VerifyTCPChecksum(payload, ip.Src, ip.Dst) {
			return // bad checksum: probes and corruption die here
		}
		var tcp wire.TCP
		if _, err := wire.DecodeTCP(payload, &tcp); err != nil {
			return
		}
		tuple := ecmp.FiveTuple{
			SrcIP: ip.Src, DstIP: ip.Dst,
			SrcPort: tcp.SrcPort, DstPort: tcp.DstPort, Proto: ecmp.ProtoTCP,
		}
		if tcp.Flags&wire.FlagPSH != 0 {
			h.receiveData(tuple, tcp.Seq)
		} else if tcp.Flags&wire.FlagACK != 0 {
			if c, ok := h.conns[tuple.Reverse()]; ok {
				c.onAck(tcp.Ack)
			}
		}
	}
}

// receiveData handles one data segment: advance the cumulative counter on
// in-order arrival, and always acknowledge what is expected next (so gaps
// produce duplicate ACKs at the sender).
func (h *Host) receiveData(tuple ecmp.FiveTuple, seq uint32) {
	next := h.rx[tuple]
	if seq == next {
		next++
		h.rx[tuple] = next
	}
	h.sendSegment(tuple.Reverse(), wire.TCP{
		SrcPort: tuple.DstPort, DstPort: tuple.SrcPort,
		Ack: next, Flags: wire.FlagACK, Window: 64,
	})
}

func (h *Host) sendSegment(tuple ecmp.FiveTuple, tcp wire.TCP) {
	buf := wire.NewBuffer(wire.IPv4HeaderLen + wire.TCPHeaderLen)
	ip := wire.IPv4{TTL: 64, Protocol: wire.ProtoTCP, Src: tuple.SrcIP, Dst: tuple.DstIP}
	tcp.SrcPort, tcp.DstPort = tuple.SrcPort, tuple.DstPort
	tcp.SerializeTo(buf, &ip)
	ip.SerializeTo(buf)
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	h.cl.Net.SendFromHost(h.id, out)
}

// openConn starts a connection sending total packets to the wire tuple.
func (h *Host) openConn(wireTuple, appTuple ecmp.FiveTuple, total int, onClose func(*Conn)) *Conn {
	c := &Conn{
		host:      h,
		wireTuple: wireTuple,
		appTuple:  appTuple,
		total:     uint32(total),
		rto:       h.cl.cfg.RTO,
		onClose:   onClose,
		sentAt:    make(map[uint32]des.Time),
	}
	h.conns[wireTuple] = c
	h.Bus.Publish(etw.Event{Kind: etw.ConnEstablished, Flow: appTuple})
	c.pump()
	c.armRTO()
	return c
}

func (c *Conn) sendData(seq uint32) {
	c.host.sendSegment(c.wireTuple, wire.TCP{
		Seq: seq, Flags: wire.FlagPSH | wire.FlagACK, Window: 64,
	})
}

// pump sends new data while the window allows.
func (c *Conn) pump() {
	win := uint32(c.host.cl.cfg.Window)
	for c.nextSend < c.total && c.nextSend < c.acked+win {
		c.sentAt[c.nextSend] = c.host.cl.Sched.Now()
		c.sendData(c.nextSend)
		c.nextSend++
	}
}

func (c *Conn) onAck(ackN uint32) {
	if c.Done || c.Failed {
		return
	}
	switch {
	case ackN > c.acked:
		c.sampleRTT(ackN)
		c.acked = ackN
		c.dupAcks = 0
		c.retries = 0
		c.rto = c.host.cl.cfg.RTO
		if c.acked >= c.total {
			c.close(false)
			return
		}
		c.pump()
		c.armRTO()
	case ackN == c.acked:
		c.dupAcks++
		if c.dupAcks >= 3 {
			c.dupAcks = 0
			c.retransmit(false)
		}
	}
}

// retransmit resends the lowest unacknowledged segment and publishes the
// ETW retransmission event that wakes 007.
func (c *Conn) retransmit(timeout bool) {
	c.Retransmits++
	delete(c.sentAt, c.acked) // Karn: never RTT-sample a retransmission
	c.host.Bus.Publish(etw.Event{
		Kind: etw.Retransmit, Flow: c.appTuple, Seq: c.acked, Timeout: timeout,
	})
	c.sendData(c.acked)
	c.armRTO()
}

// sampleRTT folds the newly acknowledged segment's round trip into the
// smoothed estimate (RFC 6298's 7/8-1/8 EWMA) and publishes it — the
// per-ACK SRTT stream that §9.2's latency diagnosis thresholds.
func (c *Conn) sampleRTT(ackN uint32) {
	at, ok := c.sentAt[ackN-1]
	for seq := c.acked; seq < ackN; seq++ {
		delete(c.sentAt, seq)
	}
	if !ok {
		return
	}
	sample := c.host.cl.Sched.Now() - at
	if c.srtt == 0 {
		c.srtt = sample
	} else {
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.host.Bus.Publish(etw.Event{
		Kind: etw.RTTSample, Flow: c.appTuple, SRTTMicros: int64(c.srtt),
	})
}

func (c *Conn) armRTO() {
	c.rtoGen++
	gen := c.rtoGen
	c.host.cl.Sched.After(c.rto, func() { c.onRTO(gen) })
}

func (c *Conn) onRTO(gen uint64) {
	if c.Done || c.Failed || gen != c.rtoGen {
		return
	}
	c.retries++
	if c.retries > c.host.cl.cfg.MaxRetries {
		c.close(true)
		return
	}
	if c.rto < 4*des.Second {
		c.rto *= 2
	}
	c.retransmit(true)
}

func (c *Conn) close(failed bool) {
	c.Done = !failed
	c.Failed = failed
	delete(c.host.conns, c.wireTuple)
	c.host.Bus.Publish(etw.Event{Kind: etw.ConnClosed, Flow: c.appTuple, Timeout: failed})
	if c.onClose != nil {
		c.onClose(c)
	}
}
