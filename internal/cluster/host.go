package cluster

import (
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/etw"
	"vigil/internal/monitor"
	"vigil/internal/pathdisc"
	"vigil/internal/topology"
	"vigil/internal/wire"
)

// Host is one emulated end host: a minimal reliable-delivery TCP-style
// stack (enough to produce genuine retransmissions under loss), the ETW
// bus, and 007's monitoring and path discovery agents — the composition of
// Figure 2.
type Host struct {
	cl *Cluster
	id topology.HostID
	ip uint32
	// sched is the DES scheduler owning this host's pod shard (the single
	// scheduler when Workers == 0); shard is the matching slice of cluster
	// state. All of the host's own events — connection timers, flow starts,
	// traceroute timeouts — post here, never across shards.
	sched *des.Scheduler
	shard *clusterShard

	Bus  *etw.Bus
	Mon  *monitor.Agent
	Path *pathdisc.Agent

	conns map[ecmp.FiveTuple]*Conn  // keyed by forward wire tuple
	rx    map[ecmp.FiveTuple]uint32 // receiver: next expected seq per flow
}

// connEvRTO is the connection's one typed DES event: a retransmission
// timer firing (arg = the generation that armed it).
const connEvRTO int32 = 1

// Conn is one outgoing reliable connection. Loss recovery is a compact
// cumulative-ACK scheme: three duplicate ACKs trigger fast retransmit, a
// doubling RTO timer triggers timeout retransmit, and MaxRetries
// consecutive RTOs fail the connection (the paper's "VM panic" scenario:
// a storage connection that cannot make progress).
type Conn struct {
	host *Host
	// wireTuple addresses the physical DIP; appTuple is what TCP (and so
	// ETW and 007) sees — the VIP for load-balanced connections.
	wireTuple ecmp.FiveTuple
	appTuple  ecmp.FiveTuple

	total    uint32 // packets to deliver
	nextSend uint32
	acked    uint32
	dupAcks  int
	retries  int
	rto      des.Time
	// The retransmission timer is lazy: armRTO records the live deadline
	// and posts a DES event only when no pending timer event fires at or
	// before it — an ACK-heavy connection keeps one queue entry instead of
	// one per ACK. pending tracks this connection's outstanding timer
	// events' fire times, ascending; since DES events fire in time order,
	// the front is always the next to arrive. The invariant "some pending
	// fire time ≤ rtoDeadline while armed" means a fire lands at exactly
	// the live deadline — the same virtual time an eager per-arm event
	// would have used — including when the deadline moves earlier (RTO
	// doubled by a timeout, then reset by an ACK).
	rtoDeadline des.Time
	pending     []des.Time
	// incarnation distinguishes pooled reuses: timer events carry it, so a
	// straggler event from a previous life of this object is ignored
	// without touching the live timer state.
	incarnation uint64

	// sentAt rings first-transmission times for RTT sampling, indexed by
	// seq & sentMask; noSample marks entries suppressed under Karn's rule
	// (retransmitted segments are never sampled). The in-flight window
	// never exceeds the ring size, so slots are unambiguous.
	sentAt   []des.Time
	sentMask uint32
	srtt     des.Time

	Retransmits int
	Done        bool
	Failed      bool
	// orphan marks a connection whose flow record was already recycled
	// (EphemeralFlows): it returns itself to the pool when it closes.
	orphan  bool
	onClose func(c *Conn)
}

// noSample is the sentAt sentinel for Karn-suppressed slots (virtual time
// is never negative).
const noSample des.Time = -1

func newHost(cl *Cluster, id topology.HostID) *Host {
	h := &Host{
		cl:    cl,
		id:    id,
		ip:    cl.Topo.Hosts[id].IP,
		sched: cl.Net.SchedOfHost(id),
		shard: cl.shardStates[cl.hostShard[id]],
		Bus:   &etw.Bus{},
		conns: make(map[ecmp.FiveTuple]*Conn),
		rx:    make(map[ecmp.FiveTuple]uint32),
	}
	h.Path = pathdisc.New(pathdisc.Config{
		Topo:         cl.Topo,
		Host:         id,
		SLB:          cl.SLB,
		NewPacket:    func() *wire.Buffer { return cl.Net.NewPacketFor(id) },
		SendPacket:   func(pkt *wire.Buffer) { cl.Net.Send(id, pkt) },
		Sched:        h.sched,
		EventKey:     keyClassPath | uint64(id),
		Ct:           cl.cfg.Ct,
		ProbeTimeout: cl.cfg.ProbeTimeout,
		OnReport:     cl.report,
		Retx:         func(flow ecmp.FiveTuple) int { return h.Mon.Retx(flow) },
		FlowID:       cl.flowID,
	})
	h.Mon = monitor.New(h.Path.Discover)
	h.Mon.RTTThresholdMicros = cl.cfg.RTTThresholdMicros
	h.Mon.Attach(h.Bus)
	cl.Net.OnHostPacket(id, h.receive)
	return h
}

// receive is the host's packet entry point: ICMP goes to path discovery,
// valid TCP to the stack, everything else (including 007's bad-checksum
// probes) is dropped exactly as a real stack would drop it. data is
// borrowed from the fabric's packet pool and must not be retained.
func (h *Host) receive(data []byte) {
	var ip wire.IPv4
	payload, err := wire.DecodeIPv4(data, &ip)
	if err != nil {
		return
	}
	switch ip.Protocol {
	case wire.ProtoICMP:
		var ic wire.ICMP
		if wire.DecodeICMP(payload, &ic) == nil {
			h.Path.HandleICMP(ip.Src, &ic)
		}
	case wire.ProtoTCP:
		if !wire.VerifyTCPChecksum(payload, ip.Src, ip.Dst) {
			return // bad checksum: probes and corruption die here
		}
		var tcp wire.TCP
		if _, err := wire.DecodeTCP(payload, &tcp); err != nil {
			return
		}
		tuple := ecmp.FiveTuple{
			SrcIP: ip.Src, DstIP: ip.Dst,
			SrcPort: tcp.SrcPort, DstPort: tcp.DstPort, Proto: ecmp.ProtoTCP,
		}
		if tcp.Flags&wire.FlagPSH != 0 {
			h.receiveData(tuple, tcp.Seq)
		} else if tcp.Flags&wire.FlagACK != 0 {
			if c, ok := h.conns[tuple.Reverse()]; ok {
				c.onAck(tcp.Ack)
			}
		}
	}
}

// receiveData handles one data segment: advance the cumulative counter on
// in-order arrival, and always acknowledge what is expected next (so gaps
// produce duplicate ACKs at the sender).
func (h *Host) receiveData(tuple ecmp.FiveTuple, seq uint32) {
	next := h.rx[tuple]
	if seq == next {
		next++
		h.rx[tuple] = next
	}
	h.sendSegment(tuple.Reverse(), wire.TCP{
		SrcPort: tuple.DstPort, DstPort: tuple.SrcPort,
		Ack: next, Flags: wire.FlagACK, Window: 64,
	})
}

// sendSegment serializes one TCP segment into a pooled packet buffer and
// hands it to the fabric (which owns it from then on).
func (h *Host) sendSegment(tuple ecmp.FiveTuple, tcp wire.TCP) {
	pkt := h.cl.Net.NewPacketFor(h.id)
	ip := wire.IPv4{TTL: 64, Protocol: wire.ProtoTCP, Src: tuple.SrcIP, Dst: tuple.DstIP}
	tcp.SrcPort, tcp.DstPort = tuple.SrcPort, tuple.DstPort
	tcp.SerializeTo(pkt, &ip)
	ip.SerializeTo(pkt)
	h.cl.Net.Send(h.id, pkt)
}

// openConn starts a connection sending total packets to the wire tuple.
// Connection objects come from the cluster's pool; each reuse is a new
// incarnation, so stale timer events from a previous life can never fire.
func (h *Host) openConn(wireTuple, appTuple ecmp.FiveTuple, total int, onClose func(*Conn)) *Conn {
	c := h.shard.getConn()
	c.host = h
	c.wireTuple = wireTuple
	c.appTuple = appTuple
	c.total = uint32(total)
	c.rto = h.cl.cfg.RTO
	c.onClose = onClose
	c.ensureRing(h.cl.cfg.Window)
	h.conns[wireTuple] = c
	h.Bus.Publish(etw.Event{Kind: etw.ConnEstablished, Flow: appTuple})
	c.pump()
	c.armRTO()
	return c
}

// ensureRing sizes the sentAt ring to the smallest power of two that holds
// the send window, reusing prior capacity across pooled incarnations.
func (c *Conn) ensureRing(window int) {
	size := 1
	for size < window {
		size <<= 1
	}
	if cap(c.sentAt) >= size {
		c.sentAt = c.sentAt[:size]
	} else {
		c.sentAt = make([]des.Time, size)
	}
	c.sentMask = uint32(size - 1)
}

func (c *Conn) sendData(seq uint32) {
	c.host.sendSegment(c.wireTuple, wire.TCP{
		Seq: seq, Flags: wire.FlagPSH | wire.FlagACK, Window: 64,
	})
}

// pump sends new data while the window allows.
func (c *Conn) pump() {
	win := uint32(c.host.cl.cfg.Window)
	for c.nextSend < c.total && c.nextSend < c.acked+win {
		c.sentAt[c.nextSend&c.sentMask] = c.host.sched.Now()
		c.sendData(c.nextSend)
		c.nextSend++
	}
}

func (c *Conn) onAck(ackN uint32) {
	if c.Done || c.Failed {
		return
	}
	switch {
	case ackN > c.acked:
		c.sampleRTT(ackN)
		c.acked = ackN
		c.dupAcks = 0
		c.retries = 0
		c.rto = c.host.cl.cfg.RTO
		if c.acked >= c.total {
			c.close(false)
			return
		}
		c.pump()
		c.armRTO()
	case ackN == c.acked:
		c.dupAcks++
		if c.dupAcks >= 3 {
			c.dupAcks = 0
			c.retransmit(false)
		}
	}
}

// retransmit resends the lowest unacknowledged segment and publishes the
// ETW retransmission event that wakes 007.
func (c *Conn) retransmit(timeout bool) {
	c.Retransmits++
	c.sentAt[c.acked&c.sentMask] = noSample // Karn: never RTT-sample a retransmission
	c.host.Bus.Publish(etw.Event{
		Kind: etw.Retransmit, Flow: c.appTuple, Seq: c.acked, Timeout: timeout,
	})
	c.sendData(c.acked)
	c.armRTO()
}

// sampleRTT folds the newly acknowledged segment's round trip into the
// smoothed estimate (RFC 6298's 7/8-1/8 EWMA) and publishes it — the
// per-ACK SRTT stream that §9.2's latency diagnosis thresholds. The
// cumulative ACK only ever covers sent segments, so the ring slot for
// ackN-1 is either that segment's first-transmission time or the Karn
// sentinel.
func (c *Conn) sampleRTT(ackN uint32) {
	at := c.sentAt[(ackN-1)&c.sentMask]
	if at == noSample {
		return
	}
	sample := c.host.sched.Now() - at
	if c.srtt == 0 {
		c.srtt = sample
	} else {
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.host.Bus.Publish(etw.Event{
		Kind: etw.RTTSample, Flow: c.appTuple, SRTTMicros: int64(c.srtt),
	})
}

func (c *Conn) armRTO() {
	c.rtoDeadline = c.host.sched.Now() + c.rto
	if len(c.pending) == 0 || c.rtoDeadline < c.pending[0] {
		c.postTimer(c.rtoDeadline)
	}
}

// postTimer schedules a timer event at `at` and records it at the front
// of pending (callers only post times strictly before the current front,
// so the ascending order is maintained by prepending).
func (c *Conn) postTimer(at des.Time) {
	c.pending = append(c.pending, 0)
	copy(c.pending[1:], c.pending)
	c.pending[0] = at
	c.host.sched.PostKeyed(at, keyClassConn|uint64(c.host.id), c, connEvRTO, int64(c.incarnation), nil)
}

// HandleEvent receives the connection's RTO timer events from the DES.
func (c *Conn) HandleEvent(kind int32, arg int64, _ any) {
	_ = kind // connEvRTO is the only kind a Conn schedules
	if uint64(arg) != c.incarnation {
		return // a previous pooled life's timer
	}
	// This fire is pending's front: this incarnation's events fire in
	// posting-time order.
	copy(c.pending, c.pending[1:])
	c.pending = c.pending[:len(c.pending)-1]
	if c.Done || c.Failed {
		return
	}
	if now := c.host.sched.Now(); now < c.rtoDeadline {
		// Superseded by a later re-arm: make sure something still fires at
		// the live deadline, then stand down.
		if len(c.pending) == 0 || c.rtoDeadline < c.pending[0] {
			c.postTimer(c.rtoDeadline)
		}
		return
	}
	c.onRTO()
}

func (c *Conn) onRTO() {
	c.retries++
	if c.retries > c.host.cl.cfg.MaxRetries {
		c.close(true)
		return
	}
	if c.rto < 4*des.Second {
		c.rto *= 2
	}
	c.retransmit(true)
}

func (c *Conn) close(failed bool) {
	c.Done = !failed
	c.Failed = failed
	delete(c.host.conns, c.wireTuple)
	c.host.Bus.Publish(etw.Event{Kind: etw.ConnClosed, Flow: c.appTuple, Timeout: failed})
	if c.onClose != nil {
		c.onClose(c)
	}
	if c.orphan {
		c.host.shard.putConn(c)
	}
}
