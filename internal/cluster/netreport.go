package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"vigil/internal/analysis"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// This file carries vote reports over a real TCP connection — the
// deployment shape of Figure 2, where host agents report to a centralized
// analysis service. The protocol is JSON lines with a one-byte
// acknowledgement per report, which keeps epoch boundaries exact: when a
// send returns, the collector has the report.

// wireReport is the on-the-wire form of vote.Report. Epoch and seq carry
// the report's stable identity so a streaming collector can detect gaps
// and suppress duplicates per agent.
type wireReport struct {
	FlowID  int64   `json:"flow_id"`
	Src     int32   `json:"src"`
	Dst     int32   `json:"dst"`
	Path    []int32 `json:"path"`
	Retx    int     `json:"retx"`
	Partial bool    `json:"partial,omitempty"`
	Epoch   int32   `json:"epoch"`
	Seq     int32   `json:"seq"`
}

func toWire(r vote.Report) wireReport {
	w := wireReport{
		FlowID: r.FlowID, Src: int32(r.Src), Dst: int32(r.Dst),
		Retx: r.Retx, Partial: r.Partial, Epoch: r.Epoch, Seq: r.Seq,
	}
	w.Path = make([]int32, len(r.Path))
	for i, l := range r.Path {
		w.Path[i] = int32(l)
	}
	return w
}

func fromWire(w wireReport) vote.Report {
	r := vote.Report{
		FlowID: w.FlowID, Src: topology.HostID(w.Src), Dst: topology.HostID(w.Dst),
		Retx: w.Retx, Partial: w.Partial, Epoch: w.Epoch, Seq: w.Seq,
	}
	r.Path = make([]topology.LinkID, len(w.Path))
	for i, l := range w.Path {
		r.Path[i] = topology.LinkID(l)
	}
	return r
}

// CollectorServer accepts host-agent connections and feeds their reports
// into an analysis agent.
type CollectorServer struct {
	agent *analysis.Agent
	ln    net.Listener
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	Received int64
}

// ServeCollector starts a collector on ln; it owns the listener.
func ServeCollector(agent *analysis.Agent, ln net.Listener) *CollectorServer {
	s := &CollectorServer{agent: agent, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *CollectorServer) Addr() string { return s.ln.Addr().String() }

func (s *CollectorServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *CollectorServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	dec := json.NewDecoder(br)
	for {
		var w wireReport
		if err := dec.Decode(&w); err != nil {
			return
		}
		s.agent.Submit(fromWire(w))
		s.mu.Lock()
		s.Received++
		s.mu.Unlock()
		if _, err := conn.Write([]byte{'.'}); err != nil {
			return
		}
	}
}

// Close shuts the listener down and waits for handlers to finish.
func (s *CollectorServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPReporter ships reports to a collector over TCP, one acknowledged
// JSON line per report. Safe for concurrent use.
type TCPReporter struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	ack  [1]byte
}

// DialReporter connects to a collector.
func DialReporter(addr string) (*TCPReporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing collector: %w", err)
	}
	return &TCPReporter{conn: conn, enc: json.NewEncoder(conn)}, nil
}

// Report sends one report and waits for the collector's acknowledgement.
func (t *TCPReporter) Report(r vote.Report) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(toWire(r)); err != nil {
		return err
	}
	_, err := t.conn.Read(t.ack[:])
	return err
}

// Close tears the connection down.
func (t *TCPReporter) Close() error { return t.conn.Close() }
