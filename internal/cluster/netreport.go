package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vigil/internal/analysis"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// This file carries vote reports over a real TCP connection — the
// deployment shape of Figure 2, where host agents report to a centralized
// analysis service. The protocol is JSON lines with a one-byte
// acknowledgement per report, which keeps epoch boundaries exact: when a
// send returns, the collector has the report. (The resumable, checkpointed
// ingest transport lives in internal/transport; this simpler protocol
// remains for batch-style agents that want per-report acknowledgement.)

// wireReport is the on-the-wire form of vote.Report. Epoch and seq carry
// the report's stable identity so a streaming collector can detect gaps
// and suppress duplicates per agent.
type wireReport struct {
	FlowID  int64   `json:"flow_id"`
	Src     int32   `json:"src"`
	Dst     int32   `json:"dst"`
	Path    []int32 `json:"path"`
	Retx    int     `json:"retx"`
	Partial bool    `json:"partial,omitempty"`
	Epoch   int32   `json:"epoch"`
	Seq     int32   `json:"seq"`
}

func toWire(r vote.Report) wireReport {
	w := wireReport{
		FlowID: r.FlowID, Src: int32(r.Src), Dst: int32(r.Dst),
		Retx: r.Retx, Partial: r.Partial, Epoch: r.Epoch, Seq: r.Seq,
	}
	w.Path = make([]int32, len(r.Path))
	for i, l := range r.Path {
		w.Path[i] = int32(l)
	}
	return w
}

func fromWire(w wireReport) vote.Report {
	r := vote.Report{
		FlowID: w.FlowID, Src: topology.HostID(w.Src), Dst: topology.HostID(w.Dst),
		Retx: w.Retx, Partial: w.Partial, Epoch: w.Epoch, Seq: w.Seq,
	}
	r.Path = make([]topology.LinkID, len(w.Path))
	for i, l := range w.Path {
		r.Path[i] = topology.LinkID(l)
	}
	return r
}

// CollectorServer accepts host-agent connections and feeds their reports
// into an analysis agent.
type CollectorServer struct {
	agent *analysis.Agent
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// Received counts acknowledged reports; read it with Received.Load.
	Received atomic.Int64
}

// ServeCollector starts a collector on ln; it owns the listener.
func ServeCollector(agent *analysis.Agent, ln net.Listener) *CollectorServer {
	s := &CollectorServer{agent: agent, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *CollectorServer) Addr() string { return s.ln.Addr().String() }

func (s *CollectorServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// acceptLoop accepts until the listener closes. A transient Accept error
// (ECONNABORTED, EMFILE under fd pressure, ...) must not kill the
// collector's only front door, so errors are retried with capped
// exponential backoff; only listener closure ends the loop.
func (s *CollectorServer) acceptLoop() {
	defer s.wg.Done()
	backoff := time.Millisecond
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = time.Millisecond
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *CollectorServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	dec := json.NewDecoder(br)
	for {
		var w wireReport
		if err := dec.Decode(&w); err != nil {
			return
		}
		s.agent.Submit(fromWire(w))
		s.Received.Add(1)
		if _, err := conn.Write([]byte{'.'}); err != nil {
			return
		}
	}
}

// Close shuts the listener down and waits for handlers to finish.
func (s *CollectorServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPReporter ships reports to a collector over TCP, one acknowledged
// JSON line per report. Safe for concurrent use.
type TCPReporter struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *json.Encoder
	ack     [1]byte
	timeout time.Duration
}

// DialReporter connects to a collector with the given dial timeout (0
// means 5s). The connection starts with a matching I/O timeout on each
// Report; adjust with SetTimeout.
func DialReporter(addr string) (*TCPReporter, error) {
	return DialReporterTimeout(addr, 0)
}

// DialReporterTimeout connects to a collector, bounding the dial by
// timeout (0 means 5s).
func DialReporterTimeout(addr string, timeout time.Duration) (*TCPReporter, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing collector: %w", err)
	}
	return &TCPReporter{conn: conn, enc: json.NewEncoder(conn), timeout: 30 * time.Second}, nil
}

// SetTimeout bounds each Report's write and acknowledgement read — a hung
// collector then surfaces as a timeout error instead of blocking the
// reporter (and everyone queued on its mutex) forever. 0 disables the
// deadlines.
func (t *TCPReporter) SetTimeout(d time.Duration) {
	t.mu.Lock()
	t.timeout = d
	t.mu.Unlock()
}

// Report sends one report and waits for the collector's acknowledgement.
func (t *TCPReporter) Report(r vote.Report) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.timeout > 0 {
		t.conn.SetDeadline(time.Now().Add(t.timeout))
	} else {
		t.conn.SetDeadline(time.Time{})
	}
	if err := t.enc.Encode(toWire(r)); err != nil {
		return err
	}
	if _, err := io.ReadFull(t.conn, t.ack[:]); err != nil {
		return err
	}
	return nil
}

// Close tears the connection down.
func (t *TCPReporter) Close() error { return t.conn.Close() }
