// Package cluster is the multi-node emulation: every host runs the real
// 007 agents (monitor → SLB query → traceroute → vote report) over the
// packet-level fabric, and a central analysis agent tallies the epoch —
// the same composition as the paper's test cluster (§7) and production
// deployment (§8). Reports can be delivered in-process or over real
// loopback TCP (see netreport.go), exercising the full wire path.
package cluster

import (
	"fmt"

	"vigil/internal/analysis"
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/fabric"
	"vigil/internal/metrics"
	"vigil/internal/schedule"
	"vigil/internal/slb"
	"vigil/internal/stats"
	"vigil/internal/theory"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Config assembles a cluster.
type Config struct {
	Topo *topology.Topology
	Seed uint64
	// NoiseLo/NoiseHi bound the per-link baseline (noise) drop rate of good
	// links, mirroring the flow simulator's good-link noise: each link's
	// baseline is drawn uniformly from [NoiseLo, NoiseHi). Both zero means
	// no noise — the seed emulation's historical behaviour.
	NoiseLo, NoiseHi float64
	// Tmax is the switch ICMP cap (default 100/s); Ct the host traceroute
	// budget (default: the Theorem 1 bound for this topology and Tmax).
	Tmax float64
	Ct   float64
	// EpochLength is the tally interval (default 30 virtual seconds).
	EpochLength des.Time
	// ProbeTimeout bounds traceroute collection (default 20ms).
	ProbeTimeout des.Time
	// Window, RTO and MaxRetries parametrize the host stack.
	Window     int
	RTO        des.Time
	MaxRetries int
	// RTTThresholdMicros, when positive, also triggers path discovery for
	// flows whose smoothed RTT crosses the threshold — the §9.2 latency
	// diagnosis extension.
	RTTThresholdMicros int64
	// Detect configures the analysis agent.
	Detect vote.DetectOptions
}

// Cluster is a running emulation.
type Cluster struct {
	cfg    Config
	Topo   *topology.Topology
	Sched  *des.Scheduler
	Router *ecmp.Router
	Net    *fabric.Net
	SLB    *slb.SLB
	Agent  *analysis.Agent
	Hosts  []*Host

	rng *stats.RNG
	// Reporter delivers host reports to the collector; the default submits
	// in-process. Replaced by the loopback-TCP reporter in net mode.
	Reporter func(vote.Report)

	failures map[topology.LinkID]float64
	flowIDs  map[ecmp.FiveTuple]int64
	flows    []*flowRecord
	// wireFlows indexes the forward wire tuple of every started connection
	// to its flow id (latest flow wins a reused tuple, as in real TCP).
	// The ground-truth tap matches against it, so reverse-direction ACKs
	// and stray packets never enter the drop bookkeeping.
	wireFlows map[ecmp.FiveTuple]int64
	// dropsByFlow is ground truth harvested from fabric drop taps, keyed
	// by flow id.
	dropsByFlow map[int64]map[topology.LinkID]int

	epochStart des.Time
	// Epoch rotation state: epochIdx feeds the fabric's rate schedules;
	// epochFirstFlow marks where the current epoch's flows begin in flows;
	// epochDrops counts data-packet drops observed this epoch; lastEpoch is
	// the frame RunEpoch captured before rolling.
	epochIdx       int
	epochFirstFlow int
	epochDrops     int
	lastEpoch      EpochFrame
}

// EpochFrame is the per-epoch ground-truth bookkeeping the plane-agnostic
// engine scores against: the failure set that was live during the epoch and
// the outcome of the flows started in it.
type EpochFrame struct {
	// Index is the epoch's index (the value fed to RateSchedule.RateAt).
	Index int
	// FailedLinks is the epoch's settled failure set, sorted.
	FailedLinks []topology.LinkID
	// Flows counts connections started this epoch; FailedFlows those that
	// lost at least one data packet; Drops the epoch's total data-packet
	// drops (probes and ACKs excluded, matching the paper's attribution
	// semantics).
	Flows       int
	FailedFlows int
	Drops       int
	// Truth maps this epoch's failed flows to their ground truth.
	Truth map[int64]metrics.FlowTruth
}

// flowRecord tracks one started connection for ground-truth scoring.
type flowRecord struct {
	id        int64
	appTuple  ecmp.FiveTuple
	wireTuple ecmp.FiveTuple
	src, dst  topology.HostID
	conn      *Conn
}

// New builds a cluster over the topology.
func New(cfg Config) (*Cluster, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("cluster: Config.Topo is required")
	}
	if cfg.Tmax <= 0 {
		cfg.Tmax = 100
	}
	if cfg.Ct <= 0 {
		cfg.Ct = theory.CtBound(cfg.Topo.Cfg, cfg.Tmax)
	}
	if cfg.EpochLength <= 0 {
		cfg.EpochLength = 30 * des.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 20 * des.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 6
	}
	if cfg.Detect.ThresholdFrac <= 0 {
		cfg.Detect.ThresholdFrac = 0.01
	}
	rng := stats.NewRNG(cfg.Seed)
	sched := &des.Scheduler{}
	router := ecmp.NewRouter(cfg.Topo, ecmp.NewSeeds(cfg.Topo, rng.Split()))
	net, err := fabric.New(fabric.Config{
		Topo: cfg.Topo, Router: router, Sched: sched, RNG: rng.Split(), Tmax: cfg.Tmax,
	})
	if err != nil {
		return nil, err
	}
	if cfg.NoiseHi < cfg.NoiseLo || cfg.NoiseLo < 0 || cfg.NoiseHi > 1 {
		return nil, fmt.Errorf("cluster: bad noise range [%g,%g)", cfg.NoiseLo, cfg.NoiseHi)
	}
	cl := &Cluster{
		cfg:         cfg,
		Topo:        cfg.Topo,
		Sched:       sched,
		Router:      router,
		Net:         net,
		SLB:         slb.New(cfg.Topo, rng.Split()),
		Agent:       analysis.NewAgent(analysis.Options{Detect: cfg.Detect}),
		rng:         rng,
		failures:    make(map[topology.LinkID]float64),
		flowIDs:     make(map[ecmp.FiveTuple]int64),
		wireFlows:   make(map[ecmp.FiveTuple]int64),
		dropsByFlow: make(map[int64]map[topology.LinkID]int),
	}
	if cfg.NoiseHi > 0 {
		// Baseline noise rates come from a stream derived from the seed, not
		// from cl.rng, so enabling noise does not shift any of the existing
		// RNG splits (routing seeds, SLB, workload generation).
		noiseRNG := stats.DeriveRNG(cfg.Seed, noiseDomain)
		for l := range cfg.Topo.Links {
			if err := net.SetBaseRate(topology.LinkID(l), noiseRNG.Uniform(cfg.NoiseLo, cfg.NoiseHi)); err != nil {
				return nil, err
			}
		}
	}
	cl.Reporter = cl.Agent.Submit
	net.AddTap(cl.groundTruthTap)
	cl.Hosts = make([]*Host, len(cfg.Topo.Hosts))
	for i := range cl.Hosts {
		cl.Hosts[i] = newHost(cl, topology.HostID(i))
	}
	return cl, nil
}

// noiseDomain derives the baseline-noise stream from the cluster seed.
const noiseDomain = 0x7c5a31e49f0b8d27

// InjectFailure sets a directed link's drop rate. The rate must be a
// probability in [0, 1]; the link must exist in the emulated topology.
func (cl *Cluster) InjectFailure(l topology.LinkID, rate float64) error {
	if err := cl.Net.SetDropRate(l, rate); err != nil {
		return err
	}
	cl.failures[l] = rate
	return nil
}

// ClearFailure removes an injected failure, restoring the link to its
// baseline (noise) rate.
func (cl *Cluster) ClearFailure(l topology.LinkID) error {
	if err := cl.Net.ResetDropRate(l); err != nil {
		return err
	}
	delete(cl.failures, l)
	return nil
}

// ScheduleFailure attaches an epoch-indexed rate schedule to a link: from
// the next epoch on, the link follows the schedule — re-injected at the
// scripted rate when active, restored to its baseline rate when not —
// overriding manual injections on the same link, exactly as on the flow
// plane (netem.Sim.Schedule). Built-in shapes' rates are validated here; a
// custom RateSchedule is validated epoch by epoch as it is applied.
func (cl *Cluster) ScheduleFailure(l topology.LinkID, s schedule.RateSchedule) error {
	return cl.Net.Schedule(l, s)
}

// ClearSchedules detaches every rate schedule and restores the scheduled
// links to their baseline rates, dropping them from the failure set.
func (cl *Cluster) ClearSchedules() {
	for _, ls := range cl.Net.Schedules() {
		delete(cl.failures, ls.Link)
	}
	cl.Net.ClearSchedules()
}

// EpochIndex returns the index the next RunEpoch call will emulate (the
// number of epochs run so far).
func (cl *Cluster) EpochIndex() int { return cl.epochIdx }

// applySchedules settles every scheduled link for the current epoch: the
// fabric applies the scripted rates, and the failure map — detection ground
// truth — mirrors the scripted active set. It runs at the top of RunEpoch,
// before any of the epoch's queued packets fly (StartWorkload and StartFlow
// only enqueue virtual-time events; nothing transmits until RunUntil). A
// schedule emitting a rate outside [0, 1] is a broken script and panics
// loudly, matching the flow plane's contract.
func (cl *Cluster) applySchedules() {
	if err := cl.Net.ApplySchedules(cl.epochIdx); err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	for _, ls := range cl.Net.Schedules() {
		if rate, active := ls.Schedule.RateAt(cl.epochIdx); active {
			cl.failures[ls.Link] = rate
		} else {
			delete(cl.failures, ls.Link)
		}
	}
}

// FailedLinks returns the injected failure set.
func (cl *Cluster) FailedLinks() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(cl.failures))
	for l := range cl.failures {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (cl *Cluster) report(r vote.Report) {
	if cl.Reporter != nil {
		cl.Reporter(r)
	}
}

func (cl *Cluster) flowID(flow ecmp.FiveTuple) int64 {
	if id, ok := cl.flowIDs[flow]; ok {
		return id
	}
	return -1
}

// groundTruthTap harvests per-flow per-link drops of data packets. Probes
// carry a non-zero IP ID and are excluded; ACKs and any other traffic not
// matching a started connection's forward wire tuple fall through the
// wireFlows lookup, so only forward-direction data drops count — the
// paper's attribution semantics.
func (cl *Cluster) groundTruthTap(ev fabric.TapEvent) {
	if !ev.Dropped || ev.IP.Protocol != ecmp.ProtoTCP || ev.IP.ID != 0 {
		return
	}
	tuple := ecmp.FiveTuple{
		SrcIP: ev.IP.Src, DstIP: ev.IP.Dst,
		SrcPort: ev.SrcPort, DstPort: ev.DstPort, Proto: ecmp.ProtoTCP,
	}
	id, ok := cl.wireFlows[tuple]
	if !ok {
		return
	}
	m := cl.dropsByFlow[id]
	if m == nil {
		m = make(map[topology.LinkID]int)
		cl.dropsByFlow[id] = m
	}
	m[ev.Egress]++
	cl.epochDrops++
}

// StartFlow opens a direct (DIP-addressed) connection at time at.
func (cl *Cluster) StartFlow(f traffic.Flow, at des.Time) {
	cl.startConn(f.Src, f.Dst, f.Tuple, f.Tuple, f.Packets, at)
}

// StartVIPFlow opens a connection to a VIP service: the SLB assigns a DIP
// (and the flow's packets carry it) while TCP — and therefore 007's
// monitoring — sees the VIP.
func (cl *Cluster) StartVIPFlow(src topology.HostID, vip uint32, vipPort uint16, packets int, at des.Time) error {
	srcPort := uint16(cl.rng.IntRange(32768, 65535))
	dip, err := cl.SLB.Connect(src, srcPort, vip, vipPort)
	if err != nil {
		return err
	}
	appTuple := ecmp.FiveTuple{
		SrcIP: cl.Topo.Hosts[src].IP, DstIP: vip,
		SrcPort: srcPort, DstPort: vipPort, Proto: ecmp.ProtoTCP,
	}
	wireTuple := appTuple
	wireTuple.DstIP = cl.Topo.Hosts[dip].IP
	cl.startConn(src, dip, wireTuple, appTuple, packets, at)
	return nil
}

func (cl *Cluster) startConn(src, dst topology.HostID, wireTuple, appTuple ecmp.FiveTuple, packets int, at des.Time) {
	rec := &flowRecord{
		id:        int64(len(cl.flows)),
		appTuple:  appTuple,
		wireTuple: wireTuple,
		src:       src,
		dst:       dst,
	}
	cl.flows = append(cl.flows, rec)
	cl.flowIDs[appTuple] = rec.id
	cl.wireFlows[wireTuple] = rec.id
	cl.Sched.At(at, func() {
		rec.conn = cl.Hosts[src].openConn(wireTuple, appTuple, packets, nil)
	})
}

// StartWorkload schedules a whole epoch's traffic, spread uniformly over
// the first spread microseconds.
func (cl *Cluster) StartWorkload(w traffic.Workload, spread des.Time) {
	flows := w.Generate(cl.rng.Split(), cl.Topo)
	for _, f := range flows {
		cl.StartFlow(f, cl.epochStart+des.Time(cl.rng.Intn(int(spread))))
	}
}

// RunEpoch drives one epoch of the emulation: settle scripted link rates,
// run virtual time to the end of the epoch (plus a small grace period for
// in-flight traceroutes), capture the epoch's ground-truth frame, roll the
// host agents' epochs and close the analysis epoch.
func (cl *Cluster) RunEpoch() *analysis.Result {
	cl.applySchedules()
	end := cl.epochStart + cl.cfg.EpochLength
	cl.Sched.RunUntil(end + 2*des.Second)
	cl.epochStart = cl.Sched.Now()
	for _, h := range cl.Hosts {
		h.Mon.NewEpoch()
		h.Path.NewEpoch()
	}
	cl.captureEpochFrame()
	return cl.Agent.CloseEpoch()
}

// captureEpochFrame snapshots the closing epoch's ground truth — while
// cl.failures still holds the epoch's settled failure set — and rolls the
// per-epoch flow bookkeeping.
func (cl *Cluster) captureEpochFrame() {
	epochFlows := cl.flows[cl.epochFirstFlow:]
	fr := EpochFrame{
		Index:       cl.epochIdx,
		FailedLinks: cl.FailedLinks(),
		Flows:       len(epochFlows),
		Drops:       cl.epochDrops,
		Truth:       make(map[int64]metrics.FlowTruth, len(epochFlows)),
	}
	for _, rec := range epochFlows {
		tr, failed := cl.flowTruth(rec)
		if !failed {
			continue
		}
		fr.FailedFlows++
		fr.Truth[rec.id] = tr
	}
	cl.lastEpoch = fr
	cl.epochIdx++
	cl.epochFirstFlow = len(cl.flows)
	cl.epochDrops = 0
}

// LastEpoch returns the ground-truth frame of the most recently completed
// epoch. The plane-agnostic engine (internal/engine) scores against it.
func (cl *Cluster) LastEpoch() EpochFrame { return cl.lastEpoch }

// flowTruth derives one flow's ground truth from the tap-harvested drop
// counts and the current failure set; failed is false when the flow lost no
// data packets.
func (cl *Cluster) flowTruth(rec *flowRecord) (tr metrics.FlowTruth, failed bool) {
	drops := cl.dropsByFlow[rec.id]
	if len(drops) == 0 {
		return metrics.FlowTruth{}, false
	}
	best := topology.NoLink
	bestN := 0
	for l, n := range drops {
		if n > bestN || (n == bestN && best != topology.NoLink && l < best) {
			best, bestN = l, n
		}
	}
	tr = metrics.FlowTruth{Culprit: best}
	if path, err := cl.Router.Path(rec.src, rec.dst, rec.wireTuple); err == nil {
		for _, l := range path.Links {
			if _, bad := cl.failures[l]; bad {
				tr.CrossedFailure = true
				break
			}
		}
	}
	return tr, true
}

// Truth builds the ground-truth map for scoring, from the fabric's drop
// taps and the injected failure set, over every flow started so far. Only
// forward-direction data-packet drops count, matching the paper's
// attribution semantics.
func (cl *Cluster) Truth() map[int64]metrics.FlowTruth {
	out := make(map[int64]metrics.FlowTruth)
	for _, rec := range cl.flows {
		if tr, failed := cl.flowTruth(rec); failed {
			out[rec.id] = tr
		}
	}
	return out
}

// Flows returns records of all started flows.
func (cl *Cluster) Flows() []*flowRecord { return cl.flows }

// FailedConns counts connections that gave up (the "VM reboot" signal of
// the paper's motivating scenario).
func (cl *Cluster) FailedConns() int {
	n := 0
	for _, rec := range cl.flows {
		if rec.conn != nil && rec.conn.Failed {
			n++
		}
	}
	return n
}

// ID returns a flow record's identifier.
func (f *flowRecord) ID() int64 { return f.id }

// AppTuple returns the tuple as TCP sees it (VIP for load-balanced flows).
func (f *flowRecord) AppTuple() ecmp.FiveTuple { return f.appTuple }

// WireTuple returns the on-the-wire tuple (always DIP-addressed).
func (f *flowRecord) WireTuple() ecmp.FiveTuple { return f.wireTuple }

// Conn returns the underlying connection once started (nil before).
func (f *flowRecord) Conn() *Conn { return f.conn }
