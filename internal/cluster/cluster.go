// Package cluster is the multi-node emulation: every host runs the real
// 007 agents (monitor → SLB query → traceroute → vote report) over the
// packet-level fabric, and a central analysis agent tallies the epoch —
// the same composition as the paper's test cluster (§7) and production
// deployment (§8). Reports can be delivered in-process or over real
// loopback TCP (see netreport.go), exercising the full wire path.
//
// Epoch state is kept dense for the hot path: per-flow drop counts live in
// a flow-indexed arena of small inline link/count sets (not nested maps),
// the settled failure set is cached sorted, and — with EphemeralFlows —
// flow records, connections and tuple indexes are recycled at each epoch
// boundary so steady-state epochs run allocation-free and long scenario
// timelines stay bounded in memory.
package cluster

import (
	"fmt"

	"vigil/internal/analysis"
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/fabric"
	"vigil/internal/metrics"
	"vigil/internal/schedule"
	"vigil/internal/slb"
	"vigil/internal/stats"
	"vigil/internal/theory"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Config assembles a cluster.
type Config struct {
	Topo *topology.Topology
	Seed uint64
	// NoiseLo/NoiseHi bound the per-link baseline (noise) drop rate of good
	// links, mirroring the flow simulator's good-link noise: each link's
	// baseline is drawn uniformly from [NoiseLo, NoiseHi). Both zero means
	// no noise — the seed emulation's historical behaviour.
	NoiseLo, NoiseHi float64
	// Tmax is the switch ICMP cap (default 100/s); Ct the host traceroute
	// budget (default: the Theorem 1 bound for this topology and Tmax).
	Tmax float64
	Ct   float64
	// EpochLength is the tally interval (default 30 virtual seconds).
	EpochLength des.Time
	// ProbeTimeout bounds traceroute collection (default 20ms).
	ProbeTimeout des.Time
	// Window, RTO and MaxRetries parametrize the host stack.
	Window     int
	RTO        des.Time
	MaxRetries int
	// RTTThresholdMicros, when positive, also triggers path discovery for
	// flows whose smoothed RTT crosses the threshold — the §9.2 latency
	// diagnosis extension.
	RTTThresholdMicros int64
	// Workers selects the packet plane's execution mode. Zero keeps the
	// single-threaded scheduler (the golden reference). Any positive value
	// shards the DES by pod on a des.ShardedScheduler — one shard per pod,
	// link propagation delay as the conservative lookahead — with up to
	// Workers goroutines driving the shards inside each delay-bounded
	// window. EpochResults are bit-identical at every setting, including
	// against Workers == 0.
	Workers int
	// EphemeralFlows recycles flow records, connections and tuple indexes
	// at each epoch boundary, right after the epoch's ground-truth frame is
	// captured. Steady-state epochs then allocate (near) nothing and memory
	// stays bounded over arbitrarily long runs — the mode the plane-agnostic
	// engine uses for scenarios and conformance sweeps. The whole-run views
	// (Flows, Truth, FailedConns) cover only the current epoch; LastEpoch
	// frames are unaffected. Flow IDs stay globally unique either way.
	EphemeralFlows bool
	// Detect configures the analysis agent.
	Detect vote.DetectOptions
}

// Cluster is a running emulation.
type Cluster struct {
	cfg  Config
	Topo *topology.Topology
	// Sched is the single-threaded scheduler (Workers == 0); nil on a
	// sharded cluster, where no single queue exists — use Now for the
	// clock and Sharded for per-shard access.
	Sched   *des.Scheduler
	Sharded *des.ShardedScheduler
	Router  *ecmp.Router
	Net     *fabric.Net
	SLB     *slb.SLB
	Agent   *analysis.Agent
	Hosts   []*Host

	// shardStates partitions the run-time-mutable epoch state by execution
	// shard (exactly one entry when Workers == 0): drop arenas, report
	// buffers, pending-start counts and connection pools are only ever
	// touched by their shard's goroutine during a window, then merged
	// deterministically at the epoch boundary.
	shardStates []*clusterShard
	hostShard   []int32

	rng *stats.RNG
	// Reporter delivers host reports to the collector; the default submits
	// in-process. Replaced by the loopback-TCP reporter in net mode.
	Reporter func(vote.Report)

	failures map[topology.LinkID]float64
	// failedSorted caches FailedLinks' sorted snapshot; nil means dirty.
	// Rebuilds allocate a fresh slice, so a returned snapshot is never
	// mutated under a caller.
	failedSorted []topology.LinkID

	flowIDs map[ecmp.FiveTuple]int64
	flows   []*flowRecord
	// nextFlowID numbers flows across the whole run; it never resets, so
	// recycled epochs still emit globally unique, deterministic IDs.
	nextFlowID int64
	// wireFlows indexes the forward wire tuple of every started connection
	// to its slot in flows (latest flow wins a reused tuple, as in real
	// TCP). The ground-truth tap matches against it, so reverse-direction
	// ACKs and stray packets never enter the drop bookkeeping.
	wireFlows map[ecmp.FiveTuple]int32

	// recPool is the flow-record free list (EphemeralFlows); it is only
	// touched at setup and settle, so it stays on the cluster. Connection
	// pools live per shard.
	recPool []*flowRecord

	// genFlows is StartWorkload's reusable generation buffer.
	genFlows []traffic.Flow
	// pathBuf is the flow-truth path scratch.
	pathBuf ecmp.PathBuf
	// reportBuf is the sharded settle flush's merge scratch.
	reportBuf []vote.Report

	epochStart des.Time
	// Epoch rotation state: epochIdx feeds the fabric's rate schedules;
	// epochFirstFlow marks where the current epoch's flows begin in flows;
	// lastEpoch is the frame RunEpoch captured before rolling.
	epochIdx       int
	epochFirstFlow int
	lastEpoch      EpochFrame
	// agentSeq assigns each host agent's next report sequence number,
	// dense by HostID, reset at every epoch roll — reports leave the
	// cluster with the (agent, epoch, seq) identity streaming ingest keys
	// gap detection and duplicate suppression on.
	agentSeq []int32
}

// flowDropSet is one flow's per-link drop counts: an inline set sized for
// the longest Clos path (6 links), chained through next in the (never
// observed) case a flow's drops spread over more links.
type flowDropSet struct {
	links [8]topology.LinkID
	cnts  [8]int32
	n     int32
	next  int32 // arena index of the overflow set, -1 if none
}

// Origin-key classes for the cluster's DES events (see
// des.Scheduler.PostKeyed and the fabric's class 4 deliver keys): flow
// starts and connection timers key on the owning host, so simultaneous
// events order identically on one scheduler and across shards.
const (
	keyClassStart uint64 = 1 << 56
	keyClassConn  uint64 = 2 << 56
	keyClassPath  uint64 = 3 << 56
)

// clusterShard is one execution shard's slice of the run-time-mutable
// cluster state. During a window only the shard's goroutine touches it;
// the epoch boundary merges shards deterministically (drop chains are
// per-link and a link lives on one shard, so the merge is a disjoint
// union). A Workers == 0 cluster has exactly one.
type clusterShard struct {
	cl    *Cluster
	id    int32
	sched *des.Scheduler

	// dropIdx/dropArena are the shard's dense per-flow drop ground truth:
	// dropIdx parallels flows (slot → arena index, -1 when the flow lost
	// nothing on this shard's links), grown lazily on first drop; the
	// arena holds small inline link/count sets — no nested maps on the tap
	// path.
	dropIdx   []int32
	dropArena []flowDropSet
	// epochDrops counts data-packet drops observed on this shard's links
	// this epoch.
	epochDrops int
	// pendingStarts counts scheduled-but-unfired flow starts on this
	// shard; recycling is skipped while any are outstanding.
	pendingStarts int
	// connPool recycles connections of this shard's hosts.
	connPool []*Conn
	// reports buffers this shard's stamped host reports during a sharded
	// window; the settle flush merges and emits them in canonical order.
	// Unused (nil) on a single-threaded cluster, which emits live.
	reports []vote.Report
}

// HandleEvent opens a scheduled connection (the cluster's typed DES event,
// posted to the flow's source-host shard).
func (s *clusterShard) HandleEvent(kind int32, arg int64, _ any) {
	_ = kind // evStartFlow is the only kind the cluster schedules
	s.pendingStarts--
	cl := s.cl
	rec := cl.flows[arg]
	rec.conn = cl.Hosts[rec.src].openConn(rec.wireTuple, rec.appTuple, rec.packets, nil)
}

// countDrop records one dropped data packet against a flow slot in the
// shard's dense arena, growing the slot index lazily.
func (s *clusterShard) countDrop(slot int32, l topology.LinkID) {
	for int(slot) >= len(s.dropIdx) {
		s.dropIdx = append(s.dropIdx, -1)
	}
	di := s.dropIdx[slot]
	if di < 0 {
		di = s.newDropSet()
		s.dropIdx[slot] = di
	}
	for {
		set := &s.dropArena[di]
		for i := int32(0); i < set.n; i++ {
			if set.links[i] == l {
				set.cnts[i]++
				return
			}
		}
		if set.n < int32(len(set.links)) {
			set.links[set.n] = l
			set.cnts[set.n] = 1
			set.n++
			return
		}
		if set.next < 0 {
			next := s.newDropSet()
			// The append in newDropSet may have moved the arena.
			s.dropArena[di].next = next
			di = next
		} else {
			di = set.next
		}
	}
}

// newDropSet claims a fresh arena entry (the arena is truncated, not
// freed, when epochs recycle, so steady state reuses capacity).
func (s *clusterShard) newDropSet() int32 {
	s.dropArena = append(s.dropArena, flowDropSet{next: -1})
	return int32(len(s.dropArena) - 1)
}

// getConn produces a connection object from the shard pool. Pooled reuse
// bumps the incarnation counter (so a previous life's timer events stay
// dead) and keeps the sentAt ring and pending-timer capacity; everything
// else resets.
func (s *clusterShard) getConn() *Conn {
	if n := len(s.connPool); n > 0 {
		c := s.connPool[n-1]
		s.connPool[n-1] = nil
		s.connPool = s.connPool[:n-1]
		inc, ring, pend := c.incarnation, c.sentAt, c.pending[:0]
		*c = Conn{incarnation: inc + 1, sentAt: ring, pending: pend}
		return c
	}
	return &Conn{}
}

func (s *clusterShard) putConn(c *Conn) { s.connPool = append(s.connPool, c) }

// EpochFrame is the per-epoch ground-truth bookkeeping the plane-agnostic
// engine scores against: the failure set that was live during the epoch and
// the outcome of the flows started in it.
type EpochFrame struct {
	// Index is the epoch's index (the value fed to RateSchedule.RateAt).
	Index int
	// FailedLinks is the epoch's settled failure set, sorted.
	FailedLinks []topology.LinkID
	// Flows counts connections started this epoch; FailedFlows those that
	// lost at least one data packet; Drops the epoch's total data-packet
	// drops (probes and ACKs excluded, matching the paper's attribution
	// semantics).
	Flows       int
	FailedFlows int
	Drops       int
	// Truth maps this epoch's failed flows to their ground truth.
	Truth map[int64]metrics.FlowTruth
}

// flowRecord tracks one started connection for ground-truth scoring.
type flowRecord struct {
	id        int64
	appTuple  ecmp.FiveTuple
	wireTuple ecmp.FiveTuple
	src, dst  topology.HostID
	packets   int
	conn      *Conn
}

// evStartFlow is the cluster's typed DES event: a scheduled connection
// opening (arg = the flow's slot in flows).
const evStartFlow int32 = 1

// New builds a cluster over the topology.
func New(cfg Config) (*Cluster, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("cluster: Config.Topo is required")
	}
	if cfg.Tmax <= 0 {
		cfg.Tmax = 100
	}
	if cfg.Ct <= 0 {
		cfg.Ct = theory.CtBound(cfg.Topo.Cfg, cfg.Tmax)
	}
	if cfg.EpochLength <= 0 {
		cfg.EpochLength = 30 * des.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 20 * des.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 6
	}
	if cfg.Detect.ThresholdFrac <= 0 {
		cfg.Detect.ThresholdFrac = 0.01
	}
	rng := stats.NewRNG(cfg.Seed)
	router := ecmp.NewRouter(cfg.Topo, ecmp.NewSeeds(cfg.Topo, rng.Split()))
	// Workers == 0 runs the golden single-threaded scheduler; any positive
	// count shards the DES one-shard-per-pod under the link-delay
	// lookahead. The shard structure depends only on the topology — worker
	// count just bounds window concurrency — so results are bit-identical
	// at every positive setting, and the keyed event order plus the
	// fabric's per-link drop draws make them match Workers == 0 too.
	var sched *des.Scheduler
	var sharded *des.ShardedScheduler
	fcfg := fabric.Config{Topo: cfg.Topo, Router: router, RNG: rng.Split(), Tmax: cfg.Tmax}
	if cfg.Workers > 0 {
		var err error
		sharded, err = des.NewSharded(cfg.Topo.Cfg.Pods, fabric.DefaultLinkDelay, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		fcfg.Sharded = sharded
	} else {
		sched = &des.Scheduler{}
		fcfg.Sched = sched
	}
	net, err := fabric.New(fcfg)
	if err != nil {
		return nil, err
	}
	if cfg.NoiseHi < cfg.NoiseLo || cfg.NoiseLo < 0 || cfg.NoiseHi > 1 {
		return nil, fmt.Errorf("cluster: bad noise range [%g,%g)", cfg.NoiseLo, cfg.NoiseHi)
	}
	cl := &Cluster{
		cfg:       cfg,
		Topo:      cfg.Topo,
		Sched:     sched,
		Sharded:   sharded,
		Router:    router,
		Net:       net,
		SLB:       slb.New(cfg.Topo, rng.Split()),
		Agent:     analysis.NewAgent(analysis.Options{Detect: cfg.Detect}),
		rng:       rng,
		failures:  make(map[topology.LinkID]float64),
		flowIDs:   make(map[ecmp.FiveTuple]int64),
		wireFlows: make(map[ecmp.FiveTuple]int32),
		agentSeq:  make([]int32, len(cfg.Topo.Hosts)),
	}
	nShards := 1
	if sharded != nil {
		nShards = sharded.Shards()
	}
	cl.shardStates = make([]*clusterShard, nShards)
	for i := range cl.shardStates {
		s := &clusterShard{cl: cl, id: int32(i)}
		if sharded != nil {
			s.sched = sharded.Shard(i)
		} else {
			s.sched = sched
		}
		cl.shardStates[i] = s
	}
	cl.hostShard, _ = cfg.Topo.ShardMap(nShards)
	if cfg.NoiseHi > 0 {
		// Baseline noise rates come from a stream derived from the seed, not
		// from cl.rng, so enabling noise does not shift any of the existing
		// RNG splits (routing seeds, SLB, workload generation).
		noiseRNG := stats.DeriveRNG(cfg.Seed, noiseDomain)
		for l := range cfg.Topo.Links {
			if err := net.SetBaseRate(topology.LinkID(l), noiseRNG.Uniform(cfg.NoiseLo, cfg.NoiseHi)); err != nil {
				return nil, err
			}
		}
	}
	cl.Reporter = cl.Agent.Submit
	net.AddDropTap(cl.groundTruthTap)
	cl.Hosts = make([]*Host, len(cfg.Topo.Hosts))
	for i := range cl.Hosts {
		cl.Hosts[i] = newHost(cl, topology.HostID(i))
	}
	return cl, nil
}

// noiseDomain derives the baseline-noise stream from the cluster seed.
const noiseDomain = 0x7c5a31e49f0b8d27

// InjectFailure sets a directed link's drop rate. The rate must be a
// probability in [0, 1]; the link must exist in the emulated topology.
func (cl *Cluster) InjectFailure(l topology.LinkID, rate float64) error {
	if err := cl.Net.SetDropRate(l, rate); err != nil {
		return err
	}
	cl.failures[l] = rate
	cl.failedSorted = nil
	return nil
}

// ClearFailure removes an injected failure, restoring the link to its
// baseline (noise) rate.
func (cl *Cluster) ClearFailure(l topology.LinkID) error {
	if err := cl.Net.ResetDropRate(l); err != nil {
		return err
	}
	delete(cl.failures, l)
	cl.failedSorted = nil
	return nil
}

// ScheduleFailure attaches an epoch-indexed rate schedule to a link: from
// the next epoch on, the link follows the schedule — re-injected at the
// scripted rate when active, restored to its baseline rate when not —
// overriding manual injections on the same link, exactly as on the flow
// plane (netem.Sim.Schedule). Built-in shapes' rates are validated here; a
// custom RateSchedule is validated epoch by epoch as it is applied.
func (cl *Cluster) ScheduleFailure(l topology.LinkID, s schedule.RateSchedule) error {
	return cl.Net.Schedule(l, s)
}

// ClearSchedules detaches every rate schedule and restores the scheduled
// links to their baseline rates, dropping them from the failure set.
func (cl *Cluster) ClearSchedules() {
	for _, ls := range cl.Net.Schedules() {
		delete(cl.failures, ls.Link)
	}
	cl.failedSorted = nil
	cl.Net.ClearSchedules()
}

// EpochIndex returns the index the next RunEpoch call will emulate (the
// number of epochs run so far).
func (cl *Cluster) EpochIndex() int { return cl.epochIdx }

// applySchedules settles every scheduled link for the current epoch: the
// fabric applies the scripted rates, and the failure map — detection ground
// truth — mirrors the scripted active set. It runs at the top of RunEpoch,
// before any of the epoch's queued packets fly (StartWorkload and StartFlow
// only enqueue virtual-time events; nothing transmits until RunUntil). A
// schedule emitting a rate outside [0, 1] is a broken script and panics
// loudly, matching the flow plane's contract.
func (cl *Cluster) applySchedules() {
	if err := cl.Net.ApplySchedules(cl.epochIdx); err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	for _, ls := range cl.Net.Schedules() {
		if rate, active := ls.Schedule.RateAt(cl.epochIdx); active {
			cl.failures[ls.Link] = rate
		} else {
			delete(cl.failures, ls.Link)
		}
		cl.failedSorted = nil
	}
}

// FailedLinks returns the injected failure set, sorted. The snapshot is
// cached between failure-set changes; callers must not mutate it.
func (cl *Cluster) FailedLinks() []topology.LinkID {
	if cl.failedSorted == nil {
		out := make([]topology.LinkID, 0, len(cl.failures))
		for l := range cl.failures {
			out = append(out, l)
		}
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		cl.failedSorted = out
	}
	return cl.failedSorted
}

// report stamps a host agent's report with its stable identity — the
// reporting agent (Src), the current epoch, and the agent's next dense
// sequence number — and hands it to the Reporter. Stamping here, at the
// single choke point every report passes through, is what guarantees the
// gap-free-per-(agent, epoch) invariant ingest relies on.
func (cl *Cluster) report(r vote.Report) {
	r.Epoch = int32(cl.epochIdx)
	r.Seq = cl.agentSeq[r.Src]
	cl.agentSeq[r.Src]++
	if cl.Sharded != nil {
		// During a sharded window the Reporter (and the analysis agent
		// behind it) must not be touched concurrently; buffer on the
		// reporting host's shard and flush canonically at the settle.
		// Seq stamping above stays safe: one host lives on one shard, so
		// agentSeq[r.Src] is only ever touched by that shard's goroutine.
		sh := cl.shardStates[cl.hostShard[r.Src]]
		sh.reports = append(sh.reports, r)
		return
	}
	if cl.Reporter != nil {
		cl.Reporter(r)
	}
}

// flushReports merges every shard's buffered reports and emits them through
// the Reporter in canonical (Src, Seq, ...) order. The analysis agent sorts
// drained reports by sequence anyway, so submission order does not affect
// epoch results — canonical order just keeps any external Reporter (e.g.
// the loopback-TCP path) deterministic too.
func (cl *Cluster) flushReports() {
	cl.reportBuf = cl.reportBuf[:0]
	for _, s := range cl.shardStates {
		cl.reportBuf = append(cl.reportBuf, s.reports...)
		s.reports = s.reports[:0]
	}
	vote.SortCanonical(cl.reportBuf)
	if cl.Reporter != nil {
		for i := range cl.reportBuf {
			cl.Reporter(cl.reportBuf[i])
		}
	}
}

// Now returns the cluster's virtual clock in either execution mode.
func (cl *Cluster) Now() des.Time {
	if cl.Sharded != nil {
		return cl.Sharded.Now()
	}
	return cl.Sched.Now()
}

func (cl *Cluster) flowID(flow ecmp.FiveTuple) int64 {
	if id, ok := cl.flowIDs[flow]; ok {
		return id
	}
	return -1
}

// groundTruthTap harvests per-flow per-link drops of data packets. Probes
// carry a non-zero IP ID and are excluded; ACKs and any other traffic not
// matching a started connection's forward wire tuple fall through the
// wireFlows lookup, so only forward-direction data drops count — the
// paper's attribution semantics.
func (cl *Cluster) groundTruthTap(ev fabric.TapEvent) {
	if !ev.Dropped || ev.IP.Protocol != ecmp.ProtoTCP || ev.IP.ID != 0 {
		return
	}
	tuple := ecmp.FiveTuple{
		SrcIP: ev.IP.Src, DstIP: ev.IP.Dst,
		SrcPort: ev.SrcPort, DstPort: ev.DstPort, Proto: ecmp.ProtoTCP,
	}
	slot, ok := cl.wireFlows[tuple]
	if !ok {
		return
	}
	// The tap fires on the shard that owns the dropping link; record the
	// drop in that shard's arena. Disjoint per-link ownership is what makes
	// the epoch merge a plain union.
	s := cl.shardStates[ev.Shard]
	s.countDrop(slot, ev.Egress)
	s.epochDrops++
}

// StartFlow opens a direct (DIP-addressed) connection at time at.
func (cl *Cluster) StartFlow(f traffic.Flow, at des.Time) {
	cl.startConn(f.Src, f.Dst, f.Tuple, f.Tuple, f.Packets, at)
}

// StartVIPFlow opens a connection to a VIP service: the SLB assigns a DIP
// (and the flow's packets carry it) while TCP — and therefore 007's
// monitoring — sees the VIP.
func (cl *Cluster) StartVIPFlow(src topology.HostID, vip uint32, vipPort uint16, packets int, at des.Time) error {
	srcPort := uint16(cl.rng.IntRange(32768, 65535))
	dip, err := cl.SLB.Connect(src, srcPort, vip, vipPort)
	if err != nil {
		return err
	}
	appTuple := ecmp.FiveTuple{
		SrcIP: cl.Topo.Hosts[src].IP, DstIP: vip,
		SrcPort: srcPort, DstPort: vipPort, Proto: ecmp.ProtoTCP,
	}
	wireTuple := appTuple
	wireTuple.DstIP = cl.Topo.Hosts[dip].IP
	cl.startConn(src, dip, wireTuple, appTuple, packets, at)
	return nil
}

// getRecord produces a flow record, recycling one when available.
func (cl *Cluster) getRecord() *flowRecord {
	if n := len(cl.recPool); n > 0 {
		rec := cl.recPool[n-1]
		cl.recPool[n-1] = nil
		cl.recPool = cl.recPool[:n-1]
		*rec = flowRecord{}
		return rec
	}
	return &flowRecord{}
}

func (cl *Cluster) startConn(src, dst topology.HostID, wireTuple, appTuple ecmp.FiveTuple, packets int, at des.Time) {
	rec := cl.getRecord()
	rec.id = cl.nextFlowID
	rec.appTuple = appTuple
	rec.wireTuple = wireTuple
	rec.src = src
	rec.dst = dst
	rec.packets = packets
	cl.nextFlowID++
	slot := len(cl.flows)
	cl.flows = append(cl.flows, rec)
	cl.flowIDs[appTuple] = rec.id
	cl.wireFlows[wireTuple] = int32(slot)
	// The start fires on the source host's shard; the host-keyed event
	// order makes simultaneous starts sequence identically in both modes.
	sh := cl.shardStates[cl.hostShard[src]]
	sh.pendingStarts++
	sh.sched.PostKeyed(at, keyClassStart|uint64(src), sh, evStartFlow, int64(slot), nil)
}

// StartWorkload schedules a whole epoch's traffic, spread uniformly over
// the first spread microseconds. Generation reuses the cluster's flow
// buffer, and the draw order matches traffic.Workload.Generate exactly.
func (cl *Cluster) StartWorkload(w traffic.Workload, spread des.Time) {
	var rng stats.RNG
	rng.Seed(cl.rng.Uint64()) // the same child stream rng.Split() would derive
	cl.genFlows = w.GenerateInto(cl.genFlows[:0], &rng, cl.Topo)
	for _, f := range cl.genFlows {
		cl.StartFlow(f, cl.epochStart+des.Time(cl.rng.Intn(int(spread))))
	}
}

// RunEpoch drives one epoch of the emulation: settle scripted link rates,
// run virtual time to the end of the epoch (plus a small grace period for
// in-flight traceroutes), capture the epoch's ground-truth frame, roll the
// host agents' epochs and close the analysis epoch.
func (cl *Cluster) RunEpoch() *analysis.Result {
	cl.applySchedules()
	end := cl.epochStart + cl.cfg.EpochLength
	if cl.Sharded != nil {
		cl.Sharded.RunUntil(end + 2*des.Second)
		cl.flushReports()
	} else {
		cl.Sched.RunUntil(end + 2*des.Second)
	}
	cl.epochStart = cl.Now()
	for _, h := range cl.Hosts {
		h.Mon.NewEpoch()
		h.Path.NewEpoch()
	}
	cl.captureEpochFrame()
	return cl.Agent.CloseEpoch()
}

// captureEpochFrame snapshots the closing epoch's ground truth — while
// cl.failures still holds the epoch's settled failure set — and rolls the
// per-epoch flow bookkeeping (recycling it under EphemeralFlows).
func (cl *Cluster) captureEpochFrame() {
	epochFlows := cl.flows[cl.epochFirstFlow:]
	drops, pending := 0, 0
	for _, s := range cl.shardStates {
		drops += s.epochDrops
		pending += s.pendingStarts
	}
	fr := EpochFrame{
		Index:       cl.epochIdx,
		FailedLinks: cl.FailedLinks(),
		Flows:       len(epochFlows),
		Drops:       drops,
		Truth:       make(map[int64]metrics.FlowTruth, 8),
	}
	for i, rec := range epochFlows {
		tr, failed := cl.flowTruth(cl.epochFirstFlow+i, rec)
		if !failed {
			continue
		}
		fr.FailedFlows++
		fr.Truth[rec.id] = tr
	}
	cl.lastEpoch = fr
	cl.epochIdx++
	for _, s := range cl.shardStates {
		s.epochDrops = 0
	}
	clear(cl.agentSeq)
	if cl.cfg.EphemeralFlows && pending == 0 {
		cl.recycleFlows()
	} else {
		cl.epochFirstFlow = len(cl.flows)
	}
}

// recycleFlows returns the epoch's flow records (and their finished
// connections) to the free lists and resets the tuple indexes and drop
// arena, keeping capacity. Connections still in flight across the boundary
// are marked orphan: they recycle themselves when they close.
func (cl *Cluster) recycleFlows() {
	for _, rec := range cl.flows {
		if c := rec.conn; c != nil {
			if c.Done || c.Failed {
				cl.shardStates[cl.hostShard[rec.src]].putConn(c)
			} else {
				c.orphan = true
			}
		}
		rec.conn = nil
		cl.recPool = append(cl.recPool, rec)
	}
	for i := range cl.flows {
		cl.flows[i] = nil
	}
	cl.flows = cl.flows[:0]
	for _, s := range cl.shardStates {
		s.dropIdx = s.dropIdx[:0]
		s.dropArena = s.dropArena[:0]
	}
	clear(cl.flowIDs)
	clear(cl.wireFlows)
	cl.epochFirstFlow = 0
}

// LastEpoch returns the ground-truth frame of the most recently completed
// epoch. The plane-agnostic engine (internal/engine) scores against it.
func (cl *Cluster) LastEpoch() EpochFrame { return cl.lastEpoch }

// flowTruth derives one flow's ground truth from the tap-harvested drop
// counts and the current failure set; failed is false when the flow lost no
// data packets.
func (cl *Cluster) flowTruth(slot int, rec *flowRecord) (tr metrics.FlowTruth, failed bool) {
	// Each shard holds the drop counts of its own links; a flow's ground
	// truth is the max-count (min-link on ties) over the union of every
	// shard's chain — order-independent, so shard iteration order is
	// immaterial.
	best := topology.NoLink
	bestN := int32(0)
	for _, s := range cl.shardStates {
		if slot >= len(s.dropIdx) {
			continue
		}
		for i := s.dropIdx[slot]; i >= 0; i = s.dropArena[i].next {
			set := &s.dropArena[i]
			for j := int32(0); j < set.n; j++ {
				l, n := set.links[j], set.cnts[j]
				if n > bestN || (n == bestN && best != topology.NoLink && l < best) {
					best, bestN = l, n
				}
			}
		}
	}
	if best == topology.NoLink {
		return metrics.FlowTruth{}, false
	}
	tr = metrics.FlowTruth{Culprit: best}
	if err := cl.Router.PathInto(rec.src, rec.dst, rec.wireTuple, &cl.pathBuf); err == nil {
		for _, l := range cl.pathBuf.Links() {
			if _, bad := cl.failures[l]; bad {
				tr.CrossedFailure = true
				break
			}
		}
	}
	return tr, true
}

// Truth builds the ground-truth map for scoring, from the fabric's drop
// taps and the injected failure set, over every flow started so far (the
// current epoch's flows under EphemeralFlows). Only forward-direction
// data-packet drops count, matching the paper's attribution semantics.
func (cl *Cluster) Truth() map[int64]metrics.FlowTruth {
	out := make(map[int64]metrics.FlowTruth)
	for slot, rec := range cl.flows {
		if tr, failed := cl.flowTruth(slot, rec); failed {
			out[rec.id] = tr
		}
	}
	return out
}

// Flows returns records of all started flows (the current epoch's under
// EphemeralFlows).
func (cl *Cluster) Flows() []*flowRecord { return cl.flows }

// FailedConns counts connections that gave up (the "VM reboot" signal of
// the paper's motivating scenario).
func (cl *Cluster) FailedConns() int {
	n := 0
	for _, rec := range cl.flows {
		if rec.conn != nil && rec.conn.Failed {
			n++
		}
	}
	return n
}

// ID returns a flow record's identifier.
func (f *flowRecord) ID() int64 { return f.id }

// AppTuple returns the tuple as TCP sees it (VIP for load-balanced flows).
func (f *flowRecord) AppTuple() ecmp.FiveTuple { return f.appTuple }

// WireTuple returns the on-the-wire tuple (always DIP-addressed).
func (f *flowRecord) WireTuple() ecmp.FiveTuple { return f.wireTuple }

// Conn returns the underlying connection once started (nil before).
func (f *flowRecord) Conn() *Conn { return f.conn }
