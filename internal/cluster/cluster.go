// Package cluster is the multi-node emulation: every host runs the real
// 007 agents (monitor → SLB query → traceroute → vote report) over the
// packet-level fabric, and a central analysis agent tallies the epoch —
// the same composition as the paper's test cluster (§7) and production
// deployment (§8). Reports can be delivered in-process or over real
// loopback TCP (see netreport.go), exercising the full wire path.
package cluster

import (
	"fmt"

	"vigil/internal/analysis"
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/fabric"
	"vigil/internal/metrics"
	"vigil/internal/slb"
	"vigil/internal/stats"
	"vigil/internal/theory"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Config assembles a cluster.
type Config struct {
	Topo *topology.Topology
	Seed uint64
	// Tmax is the switch ICMP cap (default 100/s); Ct the host traceroute
	// budget (default: the Theorem 1 bound for this topology and Tmax).
	Tmax float64
	Ct   float64
	// EpochLength is the tally interval (default 30 virtual seconds).
	EpochLength des.Time
	// ProbeTimeout bounds traceroute collection (default 20ms).
	ProbeTimeout des.Time
	// Window, RTO and MaxRetries parametrize the host stack.
	Window     int
	RTO        des.Time
	MaxRetries int
	// RTTThresholdMicros, when positive, also triggers path discovery for
	// flows whose smoothed RTT crosses the threshold — the §9.2 latency
	// diagnosis extension.
	RTTThresholdMicros int64
	// Detect configures the analysis agent.
	Detect vote.DetectOptions
}

// Cluster is a running emulation.
type Cluster struct {
	cfg    Config
	Topo   *topology.Topology
	Sched  *des.Scheduler
	Router *ecmp.Router
	Net    *fabric.Net
	SLB    *slb.SLB
	Agent  *analysis.Agent
	Hosts  []*Host

	rng *stats.RNG
	// Reporter delivers host reports to the collector; the default submits
	// in-process. Replaced by the loopback-TCP reporter in net mode.
	Reporter func(vote.Report)

	failures map[topology.LinkID]float64
	flowIDs  map[ecmp.FiveTuple]int64
	flows    []*flowRecord
	// dropsByFlow is ground truth harvested from fabric drop taps.
	dropsByFlow map[ecmp.FiveTuple]map[topology.LinkID]int

	epochStart des.Time
}

// flowRecord tracks one started connection for ground-truth scoring.
type flowRecord struct {
	id        int64
	appTuple  ecmp.FiveTuple
	wireTuple ecmp.FiveTuple
	src, dst  topology.HostID
	conn      *Conn
}

// New builds a cluster over the topology.
func New(cfg Config) (*Cluster, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("cluster: Config.Topo is required")
	}
	if cfg.Tmax <= 0 {
		cfg.Tmax = 100
	}
	if cfg.Ct <= 0 {
		cfg.Ct = theory.CtBound(cfg.Topo.Cfg, cfg.Tmax)
	}
	if cfg.EpochLength <= 0 {
		cfg.EpochLength = 30 * des.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 20 * des.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 6
	}
	if cfg.Detect.ThresholdFrac <= 0 {
		cfg.Detect.ThresholdFrac = 0.01
	}
	rng := stats.NewRNG(cfg.Seed)
	sched := &des.Scheduler{}
	router := ecmp.NewRouter(cfg.Topo, ecmp.NewSeeds(cfg.Topo, rng.Split()))
	net, err := fabric.New(fabric.Config{
		Topo: cfg.Topo, Router: router, Sched: sched, RNG: rng.Split(), Tmax: cfg.Tmax,
	})
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg:         cfg,
		Topo:        cfg.Topo,
		Sched:       sched,
		Router:      router,
		Net:         net,
		SLB:         slb.New(cfg.Topo, rng.Split()),
		Agent:       analysis.NewAgent(analysis.Options{Detect: cfg.Detect}),
		rng:         rng,
		failures:    make(map[topology.LinkID]float64),
		flowIDs:     make(map[ecmp.FiveTuple]int64),
		dropsByFlow: make(map[ecmp.FiveTuple]map[topology.LinkID]int),
	}
	cl.Reporter = cl.Agent.Submit
	net.AddTap(cl.groundTruthTap)
	cl.Hosts = make([]*Host, len(cfg.Topo.Hosts))
	for i := range cl.Hosts {
		cl.Hosts[i] = newHost(cl, topology.HostID(i))
	}
	return cl, nil
}

// InjectFailure sets a directed link's drop rate.
func (cl *Cluster) InjectFailure(l topology.LinkID, rate float64) {
	cl.failures[l] = rate
	cl.Net.SetDropRate(l, rate)
}

// ClearFailure removes an injected failure.
func (cl *Cluster) ClearFailure(l topology.LinkID) {
	delete(cl.failures, l)
	cl.Net.SetDropRate(l, 0)
}

// FailedLinks returns the injected failure set.
func (cl *Cluster) FailedLinks() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(cl.failures))
	for l := range cl.failures {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (cl *Cluster) report(r vote.Report) {
	if cl.Reporter != nil {
		cl.Reporter(r)
	}
}

func (cl *Cluster) flowID(flow ecmp.FiveTuple) int64 {
	if id, ok := cl.flowIDs[flow]; ok {
		return id
	}
	return -1
}

// groundTruthTap harvests per-flow per-link drops of data packets (probes
// carry a non-zero IP ID and are excluded).
func (cl *Cluster) groundTruthTap(ev fabric.TapEvent) {
	if !ev.Dropped || ev.IP.Protocol != ecmp.ProtoTCP || ev.IP.ID != 0 {
		return
	}
	tuple := ecmp.FiveTuple{
		SrcIP: ev.IP.Src, DstIP: ev.IP.Dst,
		SrcPort: ev.SrcPort, DstPort: ev.DstPort, Proto: ecmp.ProtoTCP,
	}
	m := cl.dropsByFlow[tuple]
	if m == nil {
		m = make(map[topology.LinkID]int)
		cl.dropsByFlow[tuple] = m
	}
	m[ev.Egress]++
}

// StartFlow opens a direct (DIP-addressed) connection at time at.
func (cl *Cluster) StartFlow(f traffic.Flow, at des.Time) {
	cl.startConn(f.Src, f.Dst, f.Tuple, f.Tuple, f.Packets, at)
}

// StartVIPFlow opens a connection to a VIP service: the SLB assigns a DIP
// (and the flow's packets carry it) while TCP — and therefore 007's
// monitoring — sees the VIP.
func (cl *Cluster) StartVIPFlow(src topology.HostID, vip uint32, vipPort uint16, packets int, at des.Time) error {
	srcPort := uint16(cl.rng.IntRange(32768, 65535))
	dip, err := cl.SLB.Connect(src, srcPort, vip, vipPort)
	if err != nil {
		return err
	}
	appTuple := ecmp.FiveTuple{
		SrcIP: cl.Topo.Hosts[src].IP, DstIP: vip,
		SrcPort: srcPort, DstPort: vipPort, Proto: ecmp.ProtoTCP,
	}
	wireTuple := appTuple
	wireTuple.DstIP = cl.Topo.Hosts[dip].IP
	cl.startConn(src, dip, wireTuple, appTuple, packets, at)
	return nil
}

func (cl *Cluster) startConn(src, dst topology.HostID, wireTuple, appTuple ecmp.FiveTuple, packets int, at des.Time) {
	rec := &flowRecord{
		id:        int64(len(cl.flows)),
		appTuple:  appTuple,
		wireTuple: wireTuple,
		src:       src,
		dst:       dst,
	}
	cl.flows = append(cl.flows, rec)
	cl.flowIDs[appTuple] = rec.id
	cl.Sched.At(at, func() {
		rec.conn = cl.Hosts[src].openConn(wireTuple, appTuple, packets, nil)
	})
}

// StartWorkload schedules a whole epoch's traffic, spread uniformly over
// the first spread microseconds.
func (cl *Cluster) StartWorkload(w traffic.Workload, spread des.Time) {
	flows := w.Generate(cl.rng.Split(), cl.Topo)
	for _, f := range flows {
		cl.StartFlow(f, cl.epochStart+des.Time(cl.rng.Intn(int(spread))))
	}
}

// RunEpoch drives the emulation to the end of the current epoch (plus a
// small grace period for in-flight traceroutes), rolls the host agents'
// epochs and closes the analysis epoch.
func (cl *Cluster) RunEpoch() *analysis.Result {
	end := cl.epochStart + cl.cfg.EpochLength
	cl.Sched.RunUntil(end + 2*des.Second)
	cl.epochStart = cl.Sched.Now()
	for _, h := range cl.Hosts {
		h.Mon.NewEpoch()
		h.Path.NewEpoch()
	}
	return cl.Agent.CloseEpoch()
}

// Truth builds the ground-truth map for scoring, from the fabric's drop
// taps and the injected failure set. Only forward-direction data-packet
// drops count, matching the paper's attribution semantics.
func (cl *Cluster) Truth() map[int64]metrics.FlowTruth {
	out := make(map[int64]metrics.FlowTruth)
	for _, rec := range cl.flows {
		drops := cl.dropsByFlow[rec.wireTuple]
		if len(drops) == 0 {
			continue
		}
		best := topology.NoLink
		bestN := 0
		for l, n := range drops {
			if n > bestN || (n == bestN && best != topology.NoLink && l < best) {
				best, bestN = l, n
			}
		}
		tr := metrics.FlowTruth{Culprit: best}
		if path, err := cl.Router.Path(rec.src, rec.dst, rec.wireTuple); err == nil {
			for _, l := range path.Links {
				if _, bad := cl.failures[l]; bad {
					tr.CrossedFailure = true
					break
				}
			}
		}
		out[rec.id] = tr
	}
	return out
}

// Flows returns records of all started flows.
func (cl *Cluster) Flows() []*flowRecord { return cl.flows }

// FailedConns counts connections that gave up (the "VM reboot" signal of
// the paper's motivating scenario).
func (cl *Cluster) FailedConns() int {
	n := 0
	for _, rec := range cl.flows {
		if rec.conn != nil && rec.conn.Failed {
			n++
		}
	}
	return n
}

// ID returns a flow record's identifier.
func (f *flowRecord) ID() int64 { return f.id }

// AppTuple returns the tuple as TCP sees it (VIP for load-balanced flows).
func (f *flowRecord) AppTuple() ecmp.FiveTuple { return f.appTuple }

// WireTuple returns the on-the-wire tuple (always DIP-addressed).
func (f *flowRecord) WireTuple() ecmp.FiveTuple { return f.wireTuple }

// Conn returns the underlying connection once started (nil before).
func (f *flowRecord) Conn() *Conn { return f.conn }
