package cluster

import (
	"testing"

	"vigil/internal/des"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// The packet plane stamps every report at the cl.report choke point with
// the (agent, epoch, seq) identity ingest's gap detection relies on:
// per-(agent, epoch) sequences dense 0..k-1 in emission order, epoch equal
// to the running epoch's index.
func TestPacketPlaneReportSequencesDense(t *testing.T) {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Topo: topo, Seed: 6, EphemeralFlows: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []vote.Report
	base := cl.Reporter
	cl.Reporter = func(r vote.Report) {
		got = append(got, r)
		base(r)
	}
	// A rate high enough that every epoch reliably drops registered data
	// on the failed link: marginal epochs (few forward flows hashed onto
	// it) must still produce reports, or the density assertions below
	// would silently check nothing.
	bad := topo.LinksOfClass(topology.L1Down)[3]
	cl.InjectFailure(bad, 0.10)

	rng := stats.NewRNG(9)
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 6, Hi: 6},
		PacketsPerFlow: traffic.IntRange{Lo: 60, Hi: 60},
	}
	for e := 0; e < 3; e++ {
		got = got[:0]
		for _, f := range w.Generate(rng.Split(), topo) {
			cl.StartFlow(f, cl.Sched.Now()+des.Time(rng.Intn(int(10*des.Second))))
		}
		cl.RunEpoch()
		if len(got) == 0 {
			t.Fatalf("epoch %d: no reports — the fixture is not exercising anything", e)
		}
		next := make([]int32, len(topo.Hosts))
		for i, r := range got {
			if r.Epoch != int32(e) {
				t.Fatalf("epoch %d report %d (agent %d): epoch stamp %d", e, i, r.Src, r.Epoch)
			}
			if r.Seq != next[r.Src] {
				t.Fatalf("epoch %d report %d: agent %d sequence gap: got %d, want %d",
					e, i, r.Src, r.Seq, next[r.Src])
			}
			next[r.Src]++
		}
	}
}
