package experiments

import (
	"fmt"

	"vigil/internal/netem"
	"vigil/internal/par"
	"vigil/internal/report"
	"vigil/internal/stats"
	"vigil/internal/theory"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

func failCounts(o Options) []int {
	if o.Scale == Quick {
		return []int{2, 6}
	}
	return []int{2, 6, 10, 14} // the paper's x-axis
}

func rateSweep(o Options) []float64 {
	if o.Scale == Quick {
		return []float64{0.001, 0.01}
	}
	return []float64{0.0005, 0.001, 0.002, 0.004, 0.006, 0.008, 0.01}
}

func init() {
	register("fig1", "Figure 1: drops are spread across many flows", runFig1)
	register("fig3", "Figure 3: per-flow accuracy vs number of failed links (Theorem 2 regime)", runFig3)
	register("fig4", "Figure 4: Algorithm 1 precision/recall vs number of failed links", runFig4)
	register("fig5", "Figure 5: accuracy for varying drop rates", runFig5)
	register("fig6", "Figure 6: accuracy for varying noise levels", runFig6)
	register("fig7", "Figure 7: accuracy for varying number of connections", runFig7)
	register("fig8", "Figure 8: accuracy under skewed traffic", runFig8)
	register("fig9", "Figure 9: impact of a hot ToR", runFig9)
	register("fig10", "Figure 10: Algorithm 1 with a single failure", runFig10)
	register("fig11", "Figure 11: impact of failed-link location", runFig11)
	register("fig12", "Figure 12: Algorithm 1 with heavily skewed multi-failure drop rates", runFig12)
	register("netsize", "Section 6.7: effects of network size", runNetSize)
	register("theorem2", "Theorem 2: bounds and empirical error decay", runTheorem2)
	register("abl-adjust", "Ablation: Algorithm 1 vote adjustment strategy", runAblAdjust)
	register("abl-threshold", "Ablation: Algorithm 1 detection threshold sweep", runAblThreshold)
	register("abl-votevalue", "Ablation: 1/h votes vs unit votes", runAblVoteValue)
	register("abl-ratelimit", "Ablation: traceroute rate cap vs accuracy", runAblRateLimit)
}

// runFig1 reproduces the motivation figure: condition epochs on the total
// number of drops and report how many flows share them and the largest
// per-flow share.
func runFig1(opts Options) (*Result, error) {
	topoCfg := opts.topoConfig()
	topo, err := topology.New(topoCfg)
	if err != nil {
		return nil, err
	}
	sim, err := netem.New(netem.Config{
		Topo: topo,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		NoiseLo: 1e-7, NoiseHi: 2e-6, // occasional lone drops
		Seed: opts.Seed + 11,
	})
	if err != nil {
		return nil, err
	}
	// A rotating population of low-rate failures produces the production
	// mix of quiet and lossy intervals.
	rng := stats.NewRNG(opts.Seed + 12)
	epochs := 40
	if opts.Scale == Quick {
		epochs = 10
	}
	type obs struct {
		totalDrops int
		flows      int
		maxShare   float64
	}
	var all []obs
	for e := 0; e < epochs; e++ {
		sim.ClearAllFailures()
		if rng.Bool(0.7) {
			for _, l := range randomLinks(rng, topo, rng.IntRange(1, 3)) {
				sim.InjectFailure(l, rng.Uniform(0.00005, 0.001))
			}
		}
		ep := sim.RunEpoch()
		o := obs{totalDrops: ep.TotalDrops, flows: len(ep.Failed)}
		for _, f := range ep.Failed {
			if share := float64(f.Drops) / float64(ep.TotalDrops); share > o.maxShare {
				o.maxShare = share
			}
		}
		all = append(all, o)
	}
	t1 := &report.Table{
		Title:   "Fig 1a: flows sharing the epoch's drops, conditioned on total drops",
		Columns: []string{"condition", "epochs", "median flows", "p5 flows", "frac with >=3 flows"},
	}
	t2 := &report.Table{
		Title:   "Fig 1b: largest fraction of an epoch's drops on any single flow",
		Columns: []string{"condition", "epochs", "median max-share", "p80 max-share"},
	}
	for _, min := range []int{1, 2, 10, 30, 50} {
		var flows, shares stats.ECDF
		n := 0
		atLeast3 := 0
		for _, o := range all {
			if o.totalDrops < min {
				continue
			}
			n++
			flows.Add(float64(o.flows))
			shares.Add(o.maxShare)
			if o.flows >= 3 {
				atLeast3++
			}
		}
		cond := fmt.Sprintf(">=%d drops", min)
		if n == 0 {
			t1.AddRow(cond, 0, "-", "-", "-")
			t2.AddRow(cond, 0, "-", "-")
			continue
		}
		t1.AddRow(cond, n, flows.Quantile(0.5), flows.Quantile(0.05), float64(atLeast3)/float64(n))
		t2.AddRow(cond, n, shares.Quantile(0.5), shares.Quantile(0.8))
	}
	return &Result{
		ID: "fig1", Title: "Figure 1", Tables: []*report.Table{t1, t2},
		Notes: []string{
			"Paper: conditioned on >=10 drops, at least 3 flows see drops 95% of the time,",
			"and in >=80% of cases no flow holds more than ~34% of the drops.",
		},
	}, nil
}

// runFig3 sweeps the failure count in the Theorem 2 regime and compares
// 007's per-flow accuracy with the integer program's.
func runFig3(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Fig 3: per-flow accuracy, drop rates U(0.05%,1%)",
		Columns: []string{"failed links", "007 accuracy", "integer opt accuracy", "failure flows"},
	}
	for _, k := range failCounts(opts) {
		outs, err := sweepPoint(simSpec{
			topo:     opts.topoConfig(),
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: uniformFailures(k, 0.0005, 0.01),
		}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(k,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })),
			int(mean(outs, func(o simOutcome) float64 { return float64(o.failFlows) }).Mean),
		)
	}
	return &Result{ID: "fig3", Title: "Figure 3", Tables: []*report.Table{t},
		Notes: []string{"Paper: 007 average accuracy >96% in almost all cases, at or above the integer optimization."}}, nil
}

func runFig4(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Fig 4: Algorithm 1 precision/recall, drop rates U(0.05%,1%)",
		Columns: []string{"failed links", "007 prec", "007 recall", "int prec", "int recall", "bin prec", "bin recall"},
	}
	for _, k := range failCounts(opts) {
		outs, err := sweepPoint(simSpec{
			topo:     opts.topoConfig(),
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: uniformFailures(k, 0.0005, 0.01),
		}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(k,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Recall })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detInt.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detInt.Recall })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detBin.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detBin.Recall })),
		)
	}
	return &Result{ID: "fig4", Title: "Figure 4", Tables: []*report.Table{t},
		Notes: []string{"Paper: 007 keeps high recall and precision across k; the binary program trails under noise."}}, nil
}

func runFig5(opts Options) (*Result, error) {
	ta := &report.Table{
		Title:   "Fig 5a: single failure, accuracy vs drop rate",
		Columns: []string{"drop rate", "007 accuracy", "integer opt accuracy"},
	}
	for _, rate := range rateSweep(opts) {
		outs, err := sweepPoint(simSpec{
			topo:     opts.topoConfig(),
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: singleFailure(rate),
		}, opts)
		if err != nil {
			return nil, err
		}
		ta.AddRow(fmt.Sprintf("%.2f%%", rate*100),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })))
	}
	tb := &report.Table{
		Title:   "Fig 5b: multiple failures, rates U(0.01%,1%)",
		Columns: []string{"failed links", "007 accuracy", "integer opt accuracy"},
	}
	for _, k := range failCounts(opts) {
		outs, err := sweepPoint(simSpec{
			topo:     opts.topoConfig(),
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: uniformFailures(k, 0.0001, 0.01),
		}, opts)
		if err != nil {
			return nil, err
		}
		tb.AddRow(k,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })))
	}
	return &Result{ID: "fig5", Title: "Figure 5", Tables: []*report.Table{ta, tb},
		Notes: []string{"Paper: 007 stays accurate even below the Theorem 2 bounds and with disparate rates."}}, nil
}

func runFig6(opts Options) (*Result, error) {
	noises := []float64{1e-6, 2e-6, 5e-6, 1e-5}
	if opts.Scale == Quick {
		noises = []float64{1e-6, 1e-5}
	}
	mk := func(title string, failures func(*stats.RNG, *topology.Topology) map[topology.LinkID]float64) (*report.Table, error) {
		t := &report.Table{Title: title, Columns: []string{"noise hi", "007 accuracy", "integer opt accuracy"}}
		for _, hi := range noises {
			outs, err := sweepPoint(simSpec{
				topo:     opts.topoConfig(),
				workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
				noiseLo:  0, noiseHi: hi,
				failures: failures,
			}, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(report.FormatFloat(hi),
				fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
				fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })))
		}
		return t, nil
	}
	ta, err := mk("Fig 6a: single failure (0.5%), rising noise", singleFailure(0.005))
	if err != nil {
		return nil, err
	}
	tb, err := mk("Fig 6b: 5 failures U(0.05%,1%), rising noise", uniformFailures(5, 0.0005, 0.01))
	if err != nil {
		return nil, err
	}
	return &Result{ID: "fig6", Title: "Figure 6", Tables: []*report.Table{ta, tb},
		Notes: []string{"Paper: noise barely moves 007; the optimization grows large confidence intervals."}}, nil
}

func runFig7(opts Options) (*Result, error) {
	w := traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: 10, Hi: 60}}
	ta := &report.Table{
		Title:   "Fig 7a: single failure, conns/host U(10,60)",
		Columns: []string{"drop rate", "007 accuracy", "integer opt accuracy"},
	}
	for _, rate := range rateSweep(opts) {
		outs, err := sweepPoint(simSpec{topo: opts.topoConfig(), workload: w, failures: singleFailure(rate)}, opts)
		if err != nil {
			return nil, err
		}
		ta.AddRow(fmt.Sprintf("%.2f%%", rate*100),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })))
	}
	tb := &report.Table{
		Title:   "Fig 7b: multiple failures, conns/host U(10,60)",
		Columns: []string{"failed links", "007 accuracy", "integer opt accuracy"},
	}
	for _, k := range failCounts(opts) {
		outs, err := sweepPoint(simSpec{topo: opts.topoConfig(), workload: w, failures: uniformFailures(k, 0.0005, 0.01)}, opts)
		if err != nil {
			return nil, err
		}
		tb.AddRow(k,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })))
	}
	return &Result{ID: "fig7", Title: "Figure 7", Tables: []*report.Table{ta, tb},
		Notes: []string{"Paper: fewer connections starve the optimization of constraints; 007 keeps its accuracy."}}, nil
}

func runFig8(opts Options) (*Result, error) {
	// 80% of flows to 25% of the ToRs.
	mkWorkload := func(topo *topology.Topology, rng *stats.RNG) traffic.Workload {
		hot := traffic.RandomToRs(rng, topo, topo.Cfg.Pods*topo.Cfg.ToRsPerPod/4)
		return traffic.Workload{
			Pattern:      traffic.SkewedToRs{Hot: hot, Frac: 0.8},
			ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()},
		}
	}
	// Build one hot set per options seed (fixed across the sweep, like the
	// paper's "we pick 10 ToRs at random").
	topoForPick, err := topology.New(opts.topoConfig())
	if err != nil {
		return nil, err
	}
	w := mkWorkload(topoForPick, stats.NewRNG(opts.Seed+77))

	ta := &report.Table{
		Title:   "Fig 8a: single failure under 80/25 skew",
		Columns: []string{"drop rate", "007 accuracy", "integer opt accuracy"},
	}
	for _, rate := range rateSweep(opts) {
		outs, err := sweepPoint(simSpec{topo: opts.topoConfig(), workload: w, failures: singleFailure(rate)}, opts)
		if err != nil {
			return nil, err
		}
		ta.AddRow(fmt.Sprintf("%.2f%%", rate*100),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })))
	}
	tb := &report.Table{
		Title:   "Fig 8b: multiple failures under 80/25 skew",
		Columns: []string{"failed links", "007 accuracy", "integer opt accuracy"},
	}
	for _, k := range failCounts(opts) {
		outs, err := sweepPoint(simSpec{topo: opts.topoConfig(), workload: w, failures: uniformFailures(k, 0.0005, 0.01)}, opts)
		if err != nil {
			return nil, err
		}
		tb.AddRow(k,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })))
	}
	return &Result{ID: "fig8", Title: "Figure 8", Tables: []*report.Table{ta, tb},
		Notes: []string{"Paper: skew hits the optimization much harder; 007 keeps >=85% accuracy above 0.1% drop rates."}}, nil
}

func runFig9(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Fig 9: accuracy with a hot ToR sink",
		Columns: []string{"skew", "k=0", "k=5", "k=10", "k=15"},
	}
	skews := []float64{0.1, 0.3, 0.5, 0.7}
	ks := []int{0, 5, 10, 15}
	if opts.Scale == Quick {
		skews = []float64{0.3, 0.7}
		ks = []int{0, 5}
		t.Columns = []string{"skew", "k=0", "k=5"}
	}
	for _, skew := range skews {
		row := []interface{}{fmt.Sprintf("%.0f%%", skew*100)}
		for _, k := range ks {
			k := k
			spec := simSpec{
				topo: opts.topoConfig(),
				workload: traffic.Workload{
					ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()},
				},
				failures: uniformFailures(k, 0.0005, 0.01),
			}
			topo, err := topology.New(spec.topo)
			if err != nil {
				return nil, err
			}
			spec.workload.Pattern = traffic.HotToR{Sink: topo.ToR(0, 0), Frac: skew}
			outs, err := sweepPoint(spec, opts)
			if err != nil {
				return nil, err
			}
			if k == 0 {
				// No failures: accuracy over failure flows is trivially 1;
				// report noise misclassifications instead.
				row = append(row, fmtMeanCI(mean(outs, func(o simOutcome) float64 { return 1 - float64(o.noiseErrs)/float64(max(1, o.flows)) })))
			} else {
				row = append(row, fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })))
			}
		}
		t.AddRow(row...)
	}
	return &Result{ID: "fig9", Title: "Figure 9", Tables: []*report.Table{t},
		Notes: []string{"Paper: up to 50% skew is tolerated with negligible degradation; above that, accuracy drops when failures are many (>=10)."}}, nil
}

func runFig10(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Fig 10: Algorithm 1, single failure",
		Columns: []string{"drop rate", "007 prec", "007 recall", "int prec", "int recall", "bin prec", "bin recall"},
	}
	for _, rate := range rateSweep(opts) {
		outs, err := sweepPoint(simSpec{
			topo:     opts.topoConfig(),
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: singleFailure(rate),
		}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f%%", rate*100),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Recall })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detInt.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detInt.Recall })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detBin.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detBin.Recall })))
	}
	return &Result{ID: "fig10", Title: "Figure 10", Tables: []*report.Table{t},
		Notes: []string{"Paper: 007 beats the optimizations, which lack constraints to pin the failure; binary over-blames."}}, nil
}

func runFig11(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Fig 11: Algorithm 1 vs failed-link location (rate sweep)",
		Columns: []string{"drop rate", "ToR-T1 p/r", "T1-T2 p/r", "T2-T1 p/r", "T1-ToR p/r"},
	}
	classes := []topology.LinkClass{topology.L1Up, topology.L2Up, topology.L2Down, topology.L1Down}
	for _, rate := range rateSweep(opts) {
		row := []interface{}{fmt.Sprintf("%.2f%%", rate*100)}
		for _, class := range classes {
			class := class
			outs, err := sweepPoint(simSpec{
				topo:     opts.topoConfig(),
				workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
				failures: func(rng *stats.RNG, topo *topology.Topology) map[topology.LinkID]float64 {
					links := topo.LinksOfClass(class)
					return map[topology.LinkID]float64{links[rng.Intn(len(links))]: rate}
				},
			}, opts)
			if err != nil {
				return nil, err
			}
			p := mean(outs, func(o simOutcome) float64 { return o.det007.Precision })
			r := mean(outs, func(o simOutcome) float64 { return o.det007.Recall })
			row = append(row, fmt.Sprintf("%.2f/%.2f", p.Mean, r.Mean))
		}
		t.AddRow(row...)
	}
	return &Result{ID: "fig11", Title: "Figure 11", Tables: []*report.Table{t},
		Notes: []string{"Paper: all locations detectable; deeper (level-2) links carry fewer flows per link and need slightly higher rates."}}, nil
}

func runFig12(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Fig 12: Algorithm 1, one severe failure (10-100%) among weak ones (0.01-0.1%)",
		Columns: []string{"failed links", "007 prec", "007 recall", "int prec", "int recall"},
	}
	for _, k := range failCounts(opts) {
		outs, err := sweepPoint(simSpec{
			topo:     opts.topoConfig(),
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: func(rng *stats.RNG, topo *topology.Topology) map[topology.LinkID]float64 {
				links := randomLinks(rng, topo, k)
				out := make(map[topology.LinkID]float64, k)
				for i, l := range links {
					if i == 0 {
						out[l] = rng.Uniform(0.1, 1.0)
					} else {
						out[l] = rng.Uniform(0.0001, 0.001)
					}
				}
				return out
			},
		}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(k,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Recall })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detInt.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.detInt.Recall })))
	}
	return &Result{ID: "fig12", Title: "Figure 12", Tables: []*report.Table{t},
		Notes: []string{
			"Paper: precision >90% through 7 failures; recall decays with k because the severe link",
			"inflates everyone's votes and with them the 1% cutoff.",
		}}, nil
}

func runNetSize(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Sec 6.7: single-failure accuracy and detection vs pod count",
		Columns: []string{"pods", "007 accuracy", "int accuracy", "007 prec", "007 recall"},
	}
	pods := []int{1, 2, 3, 4}
	if opts.Scale == Quick {
		pods = []int{1, 2}
	}
	for _, p := range pods {
		cfg := opts.topoConfig()
		cfg.Pods = p
		outs, err := sweepPoint(simSpec{
			topo:     cfg,
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: singleFailure(0.005),
		}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(p,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.accInt })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Precision })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Recall })))
	}
	// The ">=30 failures" spot check.
	t30 := &report.Table{
		Title:   "Sec 6.7: 30 simultaneous failures",
		Columns: []string{"failed links", "007 accuracy", "007 recall"},
	}
	if opts.Scale == Full {
		outs, err := sweepPoint(simSpec{
			topo:     opts.topoConfig(),
			workload: traffic.Workload{ConnsPerHost: traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()}},
			failures: uniformFailures(30, 0.0005, 0.01),
		}, opts)
		if err != nil {
			return nil, err
		}
		t30.AddRow(30,
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.acc007 })),
			fmtMeanCI(mean(outs, func(o simOutcome) float64 { return o.det007.Recall })))
	}
	return &Result{ID: "netsize", Title: "Section 6.7", Tables: []*report.Table{t, t30},
		Notes: []string{"Paper: 98/92/91/90% accuracy for 1-4 pods vs 94/72/79/77% for the optimization;",
			"per-flow accuracy stays ~98% even at 30 failures."}}, nil
}

func runTheorem2(opts Options) (*Result, error) {
	cfg := opts.topoConfig()
	t := &report.Table{
		Title:   "Theorem 2: alpha and tolerable noise vs failure count (pb=0.05%, 100-packet flows)",
		Columns: []string{"k", "alpha", "max pg", "conditions hold"},
	}
	for _, k := range []int{1, 2, 5, 10, 14} {
		ok, _ := theory.Conditions(cfg, k)
		t.AddRow(k, theory.Alpha(cfg, k), theory.PgBound(cfg, k, 0.0005, 10, 100), ok)
	}
	// Empirical decay of ranking errors with N (eq. 9): run growing
	// connection counts and measure how often any good link outranks the
	// bad one.
	te := &report.Table{
		Title:   "Theorem 2: empirical misranking rate vs connections per host",
		Columns: []string{"conns/host", "misrank rate", "epsilon bound (per-link)"},
	}
	conns := []int{5, 15, 40}
	if opts.Scale == Quick {
		conns = []int{5, 20}
	}
	for _, c := range conns {
		trials := opts.seeds() * 4
		missed := make([]bool, trials)
		inner := opts.innerParallelism(trials)
		err := par.ForEachErr(trials, opts.parallelism(), func(s int) error {
			topo, err := topology.New(cfg)
			if err != nil {
				return err
			}
			sim, err := netem.New(netem.Config{
				Topo: topo,
				Workload: traffic.Workload{
					Pattern:        traffic.Uniform{},
					ConnsPerHost:   traffic.IntRange{Lo: c, Hi: c},
					PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
				},
				NoiseLo: 0, NoiseHi: 1e-6,
				Seed:        opts.Seed + uint64(1000*c+s),
				Parallelism: inner,
			})
			if err != nil {
				return err
			}
			bad := randomLinks(stats.NewRNG(uint64(s)+3), topo, 1)[0]
			sim.InjectFailure(bad, 0.005)
			ep := sim.RunEpoch()
			tl := vote.NewTally()
			tl.AddAll(ep.Reports)
			if r := tl.Ranking(); len(r) == 0 || r[0].Link != bad {
				missed[s] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		miss := 0
		for s := 0; s < trials; s++ {
			if missed[s] {
				miss++
			}
		}
		n := cfg.Hosts() * c
		vb, vg := theory.VoteProbBounds(cfg, theory.RetxProb(0.005, 100), theory.RetxProb(1e-6, 100), 1)
		te.AddRow(c, float64(miss)/float64(trials), theory.EpsilonBound(n, vg, vb, 0))
	}
	return &Result{ID: "theorem2", Title: "Theorem 2", Tables: []*report.Table{t, te},
		Notes: []string{"Misranking probability decays with N as the large-deviation bound predicts (the bound is per good link and conservative)."}}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
