package experiments

import (
	"vigil/internal/analysis"
	"vigil/internal/metrics"
	"vigil/internal/netem"
	"vigil/internal/report"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// ablEpoch runs one standard 3-failure epoch and returns its reports and
// ground truth, shared by the ablations.
func ablEpoch(opts Options, seed uint64) (*netem.Epoch, *topology.Topology, error) {
	topo, err := topology.New(opts.topoConfig())
	if err != nil {
		return nil, nil, err
	}
	sim, err := netem.New(netem.Config{
		Topo: topo,
		Workload: traffic.Workload{
			Pattern:        traffic.Uniform{},
			ConnsPerHost:   traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()},
			PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
		},
		NoiseLo: 0, NoiseHi: 1e-6,
		Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	rng := stats.NewRNG(seed + 5)
	for _, l := range randomLinks(rng, topo, 3) {
		sim.InjectFailure(l, rng.Uniform(0.0005, 0.01))
	}
	return sim.RunEpoch(), topo, nil
}

// runAblAdjust compares Algorithm 1's vote-adjustment strategies: the
// paper's topology-based ECMP estimate, the exact observed-path overlap,
// and no adjustment.
func runAblAdjust(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Ablation: Algorithm 1 adjustment strategy (3 failures)",
		Columns: []string{"adjuster", "precision", "recall"},
	}
	type strat struct {
		name string
		mk   func(ep *netem.Epoch, topo *topology.Topology) vote.Adjuster
	}
	strats := []strat{
		{"observed paths", func(ep *netem.Epoch, _ *topology.Topology) vote.Adjuster {
			return vote.NewObservedAdjuster(ep.Reports)
		}},
		{"ECMP estimate (paper)", func(_ *netem.Epoch, topo *topology.Topology) vote.Adjuster {
			return &vote.AnalyticAdjuster{Topo: topo}
		}},
		{"none", func(*netem.Epoch, *topology.Topology) vote.Adjuster { return vote.NoAdjuster{} }},
	}
	for _, st := range strats {
		var ps, rs []float64
		for s := 0; s < opts.seeds(); s++ {
			ep, topo, err := ablEpoch(opts, opts.Seed+uint64(s)*31+7)
			if err != nil {
				return nil, err
			}
			res := analysis.Analyze(ep.Reports, analysis.Options{
				Detect: vote.DetectOptions{ThresholdFrac: 0.01, Adjuster: st.mk(ep, topo)},
			})
			d := metrics.ScoreDetection(res.Detected, ep.FailedLinks)
			ps = append(ps, d.Precision)
			rs = append(rs, d.Recall)
		}
		t.AddRow(st.name, fmtMeanCI(stats.Summarize(ps)), fmtMeanCI(stats.Summarize(rs)))
	}
	return &Result{ID: "abl-adjust", Title: "Adjustment ablation", Tables: []*report.Table{t},
		Notes: []string{"The paper reports the adjustment cuts false positives by ~5%; exact overlap does strictly better than the estimate."}}, nil
}

// runAblThreshold sweeps Algorithm 1's cutoff, the paper's stated
// precision/recall trade-off behind the 1% choice.
func runAblThreshold(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Ablation: detection threshold sweep (3 failures)",
		Columns: []string{"threshold", "precision", "recall"},
	}
	for _, th := range []float64{0.001, 0.005, 0.01, 0.02, 0.05} {
		var ps, rs []float64
		for s := 0; s < opts.seeds(); s++ {
			ep, _, err := ablEpoch(opts, opts.Seed+uint64(s)*31+7)
			if err != nil {
				return nil, err
			}
			res := analysis.Analyze(ep.Reports, analysis.Options{
				Detect: vote.DetectOptions{ThresholdFrac: th, Adjuster: vote.NewObservedAdjuster(ep.Reports)},
			})
			d := metrics.ScoreDetection(res.Detected, ep.FailedLinks)
			ps = append(ps, d.Precision)
			rs = append(rs, d.Recall)
		}
		t.AddRow(th, fmtMeanCI(stats.Summarize(ps)), fmtMeanCI(stats.Summarize(rs)))
	}
	return &Result{ID: "abl-threshold", Title: "Threshold ablation", Tables: []*report.Table{t},
		Notes: []string{"Higher thresholds trade recall for precision, exactly the paper's rationale for 1% (§5.1)."}}, nil
}

// runAblVoteValue compares the paper's 1/h votes with unit votes.
func runAblVoteValue(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Ablation: vote value (single 0.5% failure)",
		Columns: []string{"vote value", "top-1 hit rate"},
	}
	for _, unit := range []bool{false, true} {
		hits, trials := 0, 0
		for s := 0; s < opts.seeds()*3; s++ {
			topo, err := topology.New(opts.topoConfig())
			if err != nil {
				return nil, err
			}
			sim, err := netem.New(netem.Config{
				Topo: topo,
				Workload: traffic.Workload{
					Pattern:        traffic.Uniform{},
					ConnsPerHost:   traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()},
					PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
				},
				NoiseLo: 0, NoiseHi: 1e-6,
				Seed: opts.Seed + uint64(s)*17 + 3,
			})
			if err != nil {
				return nil, err
			}
			bad := randomLinks(stats.NewRNG(uint64(s)+9), topo, 1)[0]
			sim.InjectFailure(bad, 0.005)
			ep := sim.RunEpoch()
			tl := vote.NewTally()
			if unit {
				// Unit votes: each path link gets a full vote (a
				// single-link "path" makes 1/h = 1).
				for _, r := range ep.Reports {
					for _, l := range r.Path {
						tl.Add(vote.Report{FlowID: r.FlowID, Path: []topology.LinkID{l}})
					}
				}
			} else {
				tl.AddAll(ep.Reports)
			}
			trials++
			if rk := tl.Ranking(); len(rk) > 0 && rk[0].Link == bad {
				hits++
			}
		}
		name := "1/h (paper)"
		if unit {
			name = "1 per link"
		}
		t.AddRow(name, float64(hits)/float64(trials))
	}
	return &Result{ID: "abl-votevalue", Title: "Vote value ablation", Tables: []*report.Table{t},
		Notes: []string{"Ranking the single failure works under both; 1/h keeps totals flow-normalized, which the threshold and Lemma 1 rely on."}}, nil
}

// runAblRateLimit sweeps the host traceroute cap: the accuracy cost of the
// Ct budget (§9.1).
func runAblRateLimit(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Ablation: traceroute cap vs detection (3 failures at 1%)",
		Columns: []string{"traces/host/epoch", "traced share", "007 recall", "007 accuracy"},
	}
	caps := []int{1, 3, 10, 0}
	for _, cap := range caps {
		var rec, acc, share []float64
		for s := 0; s < opts.seeds(); s++ {
			topo, err := topology.New(opts.topoConfig())
			if err != nil {
				return nil, err
			}
			sim, err := netem.New(netem.Config{
				Topo: topo,
				Workload: traffic.Workload{
					Pattern:        traffic.Uniform{},
					ConnsPerHost:   traffic.IntRange{Lo: opts.conns(), Hi: opts.conns()},
					PacketsPerFlow: traffic.IntRange{Lo: 100, Hi: 100},
				},
				NoiseLo: 0, NoiseHi: 1e-6,
				TracerouteCap: cap,
				Seed:          opts.Seed + uint64(s)*13 + 1,
			})
			if err != nil {
				return nil, err
			}
			rng := stats.NewRNG(uint64(s) + 21)
			for _, l := range randomLinks(rng, topo, 3) {
				sim.InjectFailure(l, 0.01)
			}
			ep := sim.RunEpoch()
			res := analysis.Analyze(ep.Reports, analysis.Options{})
			d := metrics.ScoreDetection(res.Detected, ep.FailedLinks)
			rec = append(rec, d.Recall)
			acc = append(acc, metrics.ScoreVerdicts(res.Verdicts, ep.Truth()).Accuracy())
			if len(ep.Failed) > 0 {
				share = append(share, float64(len(ep.Reports))/float64(len(ep.Failed)))
			}
		}
		label := "unlimited"
		if cap > 0 {
			label = report.FormatFloat(float64(cap))
		}
		t.AddRow(label, fmtMeanCI(stats.Summarize(share)), fmtMeanCI(stats.Summarize(rec)), fmtMeanCI(stats.Summarize(acc)))
	}
	return &Result{ID: "abl-ratelimit", Title: "Rate limit ablation", Tables: []*report.Table{t},
		Notes: []string{"Per §9.1: by the time the cap engages, enough paths are known to localize; per-flow coverage is what degrades."}}, nil
}
