// Dynamic failure experiments: the intermittent-failure table from the
// extended 007 evaluation (arXiv:1802.07222 §V evaluates transient and
// overlapping failures; the NSDI paper's §6.3 sweeps the static analogue).
// Built on the scenario engine instead of single-epoch sweeps: each data
// point scripts a multi-epoch run and pools per-epoch scores.
package experiments

import (
	"fmt"

	"vigil/internal/engine"
	"vigil/internal/netem"
	"vigil/internal/par"
	"vigil/internal/report"
	"vigil/internal/scenario"
	"vigil/internal/stats"
	"vigil/internal/topology"
)

func init() {
	register("dyn-intermittent", "Extension (arXiv:1802.07222 §V): detection under intermittent failures vs on-probability", runDynIntermittent)
	register("dyn-crossplane", "Extension (arXiv:1802.07222 §V): dynamic scenarios on both planes — flow simulation vs packet emulation", runDynCrossplane)
}

// intermittentSpec scripts one random switch-to-switch link that drops at a
// low rate in a random prob fraction of epochs.
func intermittentSpec(topo topology.Config, prob float64, epochs int) scenario.Spec {
	return scenario.Spec{
		Name:   fmt.Sprintf("dyn-intermittent-p%02.0f", prob*100),
		Title:  fmt.Sprintf("intermittent failure, on-probability %.2f", prob),
		Epochs: epochs,
		Topo:   topo,
		Script: func(rng *stats.RNG, t *topology.Topology) []scenario.LinkSchedule {
			l := randomLinks(rng, t, 1)[0]
			return []scenario.LinkSchedule{{
				Link: l,
				Schedule: netem.Intermittent{
					Rate: rng.Uniform(0.002, 0.008),
					Prob: prob,
					Seed: rng.Uint64(),
				},
			}}
		},
	}
}

// runDynCrossplane runs the shared dynamic scenarios on both evaluation
// planes through the one plane-agnostic scenario path and tabulates the
// pooled scores side by side — the extended paper's claim that 007's
// hardest regimes (transient and overlapping failures) hold in simulation
// AND emulation. Flow-plane repetitions fan out across the worker pool as
// usual; packet-plane repetitions are independent single-threaded DES
// replicas — one cluster emulation per seed — fanned out across the same
// pool, so the sweep parallelizes across replicas while each replica stays
// deterministic.
func runDynCrossplane(opts Options) (*Result, error) {
	scenarios := []string{"intermittent-failure", "link-flap"}
	epochs := 12
	if opts.Scale == Quick {
		epochs = 6
	}
	table := &report.Table{
		Title:   "Dynamic scenarios, flow simulation vs packet emulation: pooled detection and attribution",
		Columns: []string{"scenario", "plane", "active-epochs", "precision", "recall", "accuracy"},
	}
	n := opts.seeds()
	for _, name := range scenarios {
		spec, ok := scenario.Find(name)
		if !ok {
			return nil, fmt.Errorf("dyn-crossplane: unknown scenario %q", name)
		}
		for _, plane := range []engine.Plane{engine.Flow, engine.Packet} {
			results := make([]*scenario.Result, n)
			err := par.ForEachErr(n, opts.parallelism(), func(i int) error {
				var err error
				results[i], err = scenario.Run(spec, scenario.Config{
					Seed:        opts.Seed + uint64(i)*7919 + 1,
					Epochs:      epochs,
					Plane:       plane,
					Parallelism: 1, // the replica sweep already saturates the pool
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			var active float64
			prec := make([]float64, n)
			rec := make([]float64, n)
			acc := make([]float64, n)
			for i, r := range results {
				active += float64(r.ActiveEpochs)
				prec[i] = r.Precision
				rec[i] = r.Recall
				acc[i] = r.Accuracy
			}
			table.AddRow(
				name,
				string(plane),
				fmt.Sprintf("%.1f/%d", active/float64(n), epochs),
				fmtMeanCI(stats.Summarize(prec)),
				fmtMeanCI(stats.Summarize(rec)),
				fmtMeanCI(stats.Summarize(acc)),
			)
		}
	}
	return &Result{
		ID:     "dyn-crossplane",
		Title:  "Dynamic scenarios across both planes",
		Tables: []*report.Table{table},
		Notes: []string{
			"one scenario.Run code path drives both planes; packet-plane replicas (one DES emulation per seed) fan out across the worker pool",
			"the packet plane runs fewer, heavier flows, so its per-seed scores are noisier; the conformance suite pools them into Wilson envelopes",
		},
	}, nil
}

func runDynIntermittent(opts Options) (*Result, error) {
	probs := []float64{0.25, 0.5, 0.75, 1.0}
	epochs := 16
	if opts.Scale == Quick {
		epochs = 8
	}
	table := &report.Table{
		Title:   "Intermittent single failure: pooled detection and attribution vs on-probability",
		Columns: []string{"on-prob", "active-epochs", "precision", "recall", "accuracy"},
	}
	n := opts.seeds()
	inner := opts.innerParallelism(n)
	for _, prob := range probs {
		spec := intermittentSpec(opts.topoConfig(), prob, epochs)
		results := make([]*scenario.Result, n)
		err := par.ForEachErr(n, opts.parallelism(), func(i int) error {
			var err error
			results[i], err = scenario.Run(spec, scenario.Config{
				Seed:        opts.Seed + uint64(i)*7919 + 1,
				Parallelism: inner,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		var active float64
		prec := make([]float64, n)
		rec := make([]float64, n)
		acc := make([]float64, n)
		for i, r := range results {
			active += float64(r.ActiveEpochs)
			prec[i] = r.Precision
			rec[i] = r.Recall
			acc[i] = r.Accuracy
		}
		table.AddRow(
			fmt.Sprintf("%.2f", prob),
			fmt.Sprintf("%.1f/%d", active/float64(n), epochs),
			fmtMeanCI(stats.Summarize(prec)),
			fmtMeanCI(stats.Summarize(rec)),
			fmtMeanCI(stats.Summarize(acc)),
		)
	}
	return &Result{
		ID:     "dyn-intermittent",
		Title:  "Detection under intermittent failures",
		Tables: []*report.Table{table},
		Notes: []string{
			"recall stays ~1 down to low on-probabilities: an epoch with the failure live yields enough failure-crossing flows to clear Algorithm 1's threshold",
			"precision dips in the low-rate regime because lone noise drops cross the relative 1% cutoff when the true signal is weak — the static analogue is Fig. 5's low-rate tail",
		},
	}, nil
}
