package experiments

import (
	"fmt"

	"vigil/internal/cluster"
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/everflow"
	"vigil/internal/metrics"
	"vigil/internal/report"
	"vigil/internal/slb"
	"vigil/internal/stats"
	"vigil/internal/theory"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

func init() {
	register("table1", "Table 1: ICMP messages per second per switch", runTable1)
	register("theorem1", "Theorem 1: Ct bound vs observed switch ICMP load", runTheorem1)
	register("fig13", "Figure 13: vote gap between the bad link and the best good link", runFig13)
	register("cluster2", "Section 7.2: per-connection attribution with two unequal failures", runCluster2)
	register("cluster3", "Section 7.3: rank placement with two close failures", runCluster3)
	register("prod-everflow", "Section 8.2: EverFlow cross-validation of paths and blame", runProdEverflow)
	register("prod-reboots", "Section 8.3 + Figure 14: VM reboot diagnosis", runProdReboots)
}

func clusterEpochs(o Options) int {
	if o.Scale == Quick {
		return 2
	}
	return 8
}

// newTestCluster builds the §7 test-cluster emulation.
func newTestCluster(seed uint64) (*cluster.Cluster, error) {
	topo, err := topology.New(topology.TestClusterConfig)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{Topo: topo, Seed: seed})
}

func runClusterWorkload(cl *cluster.Cluster, rng *stats.RNG, conns, packets int) {
	w := traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: conns, Hi: conns},
		PacketsPerFlow: traffic.IntRange{Lo: packets / 2, Hi: packets},
	}
	cl.StartWorkload(w, 20*des.Second)
}

// runTable1 drives the packet plane with a lossy link (so traceroutes
// fire) and tabulates the per-switch per-second ICMP distribution.
func runTable1(opts Options) (*Result, error) {
	cl, err := newTestCluster(opts.Seed + 1)
	if err != nil {
		return nil, err
	}
	topo := cl.Topo
	rng := stats.NewRNG(opts.Seed + 2)
	bad := topo.LinksOfClass(topology.L1Down)[3]
	cl.InjectFailure(bad, 0.05)
	epochs := clusterEpochs(opts)
	for e := 0; e < epochs; e++ {
		runClusterWorkload(cl, rng, 10, 150)
		cl.RunEpoch()
	}
	seconds := int64(cl.Sched.Now() / des.Second)
	zero, low, high, max := cl.Net.ICMPSecondStats(seconds)
	t := &report.Table{
		Title:   "Table 1: distribution of ICMP/s per switch (T)",
		Columns: []string{"T = 0", "0 < T <= 3", "T > 3", "max(T)"},
	}
	t.AddRow(fmt.Sprintf("%.1f%%", zero*100), fmt.Sprintf("%.2f%%", low*100),
		fmt.Sprintf("%.3f%%", high*100), max)
	if float64(max) > 100 {
		t.Title += "  [VIOLATION: max exceeded Tmax]"
	}
	return &Result{ID: "table1", Title: "Table 1", Tables: []*report.Table{t},
		Notes: []string{"Paper: 69% zero, 30.98% in (0,3], 0.02% above 3, max 11 — always below Tmax=100."}}, nil
}

// runTheorem1 prints the Ct bound for both topologies and checks the
// emulated switches never exceeded Tmax even under traceroute storms.
func runTheorem1(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Theorem 1: host traceroute budget Ct (Tmax=100)",
		Columns: []string{"topology", "n0", "n1", "n2", "pods", "H", "Ct bound (/s)"},
	}
	for _, c := range []struct {
		name string
		cfg  topology.Config
	}{
		{"paper simulator", topology.DefaultSimConfig},
		{"test cluster", topology.TestClusterConfig},
	} {
		t.AddRow(c.name, c.cfg.ToRsPerPod, c.cfg.T1PerPod, c.cfg.T2, c.cfg.Pods,
			c.cfg.HostsPerToR, theory.CtBound(c.cfg, 100))
	}

	// Stress the emulation: every link lossy, every flow traced.
	cl, err := newTestCluster(opts.Seed + 3)
	if err != nil {
		return nil, err
	}
	for id := range cl.Topo.Links {
		cl.InjectFailure(topology.LinkID(id), 0.05)
	}
	rng := stats.NewRNG(opts.Seed + 4)
	runClusterWorkload(cl, rng, 6, 60)
	cl.RunEpoch()
	var worst int64
	for sw := range cl.Topo.Switches {
		if cl.Net.ICMPSent[sw] > worst {
			worst = cl.Net.ICMPSent[sw]
		}
	}
	_, _, _, maxPerSec := cl.Net.ICMPSecondStats(int64(cl.Sched.Now() / des.Second))
	te := &report.Table{
		Title:   "Empirical check under a traceroute storm",
		Columns: []string{"max ICMP in any switch-second", "Tmax", "within bound"},
	}
	te.AddRow(maxPerSec, 100, maxPerSec <= 100)
	return &Result{ID: "theorem1", Title: "Theorem 1", Tables: []*report.Table{t, te},
		Notes: []string{"The switch-side token bucket and host-side Ct keep every switch-second at or below Tmax."}}, nil
}

// runFig13 reproduces the vote-gap experiment: induce one drop rate on a
// T1→ToR link and record, per epoch, bad-link votes minus the highest
// good-link votes.
func runFig13(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Fig 13: [bad link votes] - [max good link votes], per epoch",
		Columns: []string{"drop rate", "epochs", "median gap", "p10 gap", "bad is top (%)", "bad in top-2 (%)"},
	}
	rates := []float64{0.0005, 0.005, 0.01}
	epochs := clusterEpochs(opts) * 2
	for _, rate := range rates {
		cl, err := newTestCluster(opts.Seed + uint64(rate*1e6))
		if err != nil {
			return nil, err
		}
		topo := cl.Topo
		bad := topo.LinksOfClass(topology.L1Down)[5]
		cl.InjectFailure(bad, rate)
		rng := stats.NewRNG(opts.Seed + 31)
		var gaps stats.ECDF
		top1, top2 := 0, 0
		for e := 0; e < epochs; e++ {
			runClusterWorkload(cl, rng, 15, 200)
			res := cl.RunEpoch()
			var badV, bestGood float64
			for _, lv := range res.Ranking {
				if lv.Link == bad {
					badV = lv.Votes
				} else if lv.Votes > bestGood {
					bestGood = lv.Votes
				}
			}
			gaps.Add(badV - bestGood)
			if len(res.Ranking) > 0 && res.Ranking[0].Link == bad {
				top1++
			}
			for i, lv := range res.Ranking {
				if i < 2 && lv.Link == bad {
					top2++
					break
				}
			}
		}
		t.AddRow(fmt.Sprintf("%.2f%%", rate*100), epochs,
			gaps.Quantile(0.5), gaps.Quantile(0.1),
			100*float64(top1)/float64(epochs), 100*float64(top2)/float64(epochs))
	}
	return &Result{ID: "fig13", Title: "Figure 13", Tables: []*report.Table{t},
		Notes: []string{"Paper: gap grows with the drop rate; at 0.05% the bad link tops the tally 88.89% of epochs",
			"and is always within the top 2; at 0.1%+ it is always first."}}, nil
}

// runCluster2 is §7.2: two failures at 0.2% and 0.05%; among flows through
// at least one of them, how often is the blamed link the true (heavier)
// culprit?
func runCluster2(opts Options) (*Result, error) {
	cl, err := newTestCluster(opts.Seed + 41)
	if err != nil {
		return nil, err
	}
	topo := cl.Topo
	l1 := topo.LinksOfClass(topology.L1Down)[1]
	l2 := topo.LinksOfClass(topology.L1Down)[18]
	cl.InjectFailure(l1, 0.002)
	cl.InjectFailure(l2, 0.0005)
	rng := stats.NewRNG(opts.Seed + 42)
	correct, considered := 0, 0
	for e := 0; e < clusterEpochs(opts)*2; e++ {
		runClusterWorkload(cl, rng, 15, 200)
		res := cl.RunEpoch()
		truth := cl.Truth()
		s := metrics.ScoreVerdicts(res.Verdicts, truth)
		correct += s.Correct
		considered += s.Considered
	}
	t := &report.Table{
		Title:   "Sec 7.2: attribution among flows crossing a failed link (0.2% vs 0.05%)",
		Columns: []string{"flows considered", "correctly attributed", "accuracy"},
	}
	acc := 0.0
	if considered > 0 {
		acc = float64(correct) / float64(considered)
	}
	t.AddRow(considered, correct, acc)
	return &Result{ID: "cluster2", Title: "Section 7.2", Tables: []*report.Table{t},
		Notes: []string{"Paper: 90.47% of such flows attributed to the correct (higher-rate) link."}}, nil
}

// runCluster3 is §7.3's multi-failure rank experiment: 0.2% and 0.1%
// links; where do they land in the ranking across epochs?
func runCluster3(opts Options) (*Result, error) {
	cl, err := newTestCluster(opts.Seed + 51)
	if err != nil {
		return nil, err
	}
	topo := cl.Topo
	hi := topo.LinksOfClass(topology.L1Down)[9]
	lo := topo.LinksOfClass(topology.L1Down)[30]
	cl.InjectFailure(hi, 0.002)
	cl.InjectFailure(lo, 0.001)
	rng := stats.NewRNG(opts.Seed + 52)
	epochs := clusterEpochs(opts) * 2
	hiTop, loTop2, loTop5 := 0, 0, 0
	for e := 0; e < epochs; e++ {
		runClusterWorkload(cl, rng, 15, 200)
		res := cl.RunEpoch()
		for i, lv := range res.Ranking {
			if lv.Link == hi && i == 0 {
				hiTop++
			}
			if lv.Link == lo {
				if i < 2 {
					loTop2++
				}
				if i < 5 {
					loTop5++
				}
			}
		}
	}
	t := &report.Table{
		Title:   "Sec 7.3: rank placement over epochs (0.2% and 0.1% links)",
		Columns: []string{"epochs", "0.2% link ranked #1 (%)", "0.1% link in top 2 (%)", "0.1% link in top 5 (%)"},
	}
	t.AddRow(epochs, 100*float64(hiTop)/float64(epochs),
		100*float64(loTop2)/float64(epochs), 100*float64(loTop5)/float64(epochs))
	return &Result{ID: "cluster3", Title: "Section 7.3", Tables: []*report.Table{t},
		Notes: []string{"Paper: higher-rate link first 100% of the time; the second stays within the top 5 always",
			"(top 2 47% of the time)."}}, nil
}

// runProdEverflow is §8.2: mirror a few source hosts with EverFlow and
// check 007's discovered paths and per-flow blame against it.
func runProdEverflow(opts Options) (*Result, error) {
	cl, err := newTestCluster(opts.Seed + 61)
	if err != nil {
		return nil, err
	}
	topo := cl.Topo
	rng := stats.NewRNG(opts.Seed + 62)
	// Sample 9 hosts, as the paper did.
	sampled := make([]topology.HostID, 0, 9)
	for _, i := range rng.Perm(len(topo.Hosts))[:9] {
		sampled = append(sampled, topology.HostID(i))
	}
	ef := everflow.New(topo, everflow.SourceHostFilter(topo, sampled))
	cl.Net.AddTap(ef.Tap())
	bad := topo.LinksOfClass(topology.L1Down)[12]
	cl.InjectFailure(bad, 0.02)

	var reports []vote.Report
	base := cl.Reporter
	cl.Reporter = func(r vote.Report) { reports = append(reports, r); base(r) }

	inSample := make(map[topology.HostID]bool)
	for _, h := range sampled {
		inSample[h] = true
	}
	var res *vigilResult
	for e := 0; e < clusterEpochs(opts); e++ {
		runClusterWorkload(cl, rng, 15, 200)
		r := cl.RunEpoch()
		res = &vigilResult{tally: r.Tally, verdicts: r.Verdicts}
	}
	pathsChecked, pathsMatched := 0, 0
	blameChecked, blameMatched := 0, 0
	for _, r := range reports {
		if r.Partial || !inSample[r.Src] {
			continue
		}
		rec := findFlow(cl, r.FlowID)
		if rec == nil {
			continue
		}
		want, ok := ef.PathOf(rec.WireTuple())
		if !ok {
			continue
		}
		pathsChecked++
		if pathsEqual(want, r.Path) {
			pathsMatched++
		}
		// Blame check: EverFlow's drop site vs 007's verdict.
		if culprit, ok := ef.Culprit(rec.WireTuple()); ok && res != nil {
			if blame, ok := res.tally.BlameOnPath(r.Path); ok {
				blameChecked++
				if blame == culprit {
					blameMatched++
				}
			}
		}
	}
	t := &report.Table{
		Title:   "Sec 8.2: EverFlow cross-validation (9 mirrored hosts)",
		Columns: []string{"paths checked", "paths matched", "blames checked", "blames matched", "mirror volume"},
	}
	t.AddRow(pathsChecked, pathsMatched, blameChecked, blameMatched, ef.Observations)
	notes := []string{"Paper: every checked flow matched on both path and drop location."}
	if pathsChecked > 0 && pathsMatched != pathsChecked {
		notes = append(notes, "MISMATCH: some paths diverged — investigate re-routing during traces.")
	}
	return &Result{ID: "prod-everflow", Title: "Section 8.2", Tables: []*report.Table{t}, Notes: notes}, nil
}

type vigilResult struct {
	tally    *vote.Tally
	verdicts []vote.Verdict
}

func findFlow(cl *cluster.Cluster, id int64) interface {
	WireTuple() ecmp.FiveTuple
} {
	for _, f := range cl.Flows() {
		if f.ID() == id {
			return f
		}
	}
	return nil
}

func pathsEqual(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runProdReboots reproduces the §8.3 / Figure 14 scenario: storage-service
// connections (VIP-fronted) whose failure reboots a VM; 007 names a cause
// for each reboot, dominated by host-ToR links.
func runProdReboots(opts Options) (*Result, error) {
	cl, err := newTestCluster(opts.Seed + 71)
	if err != nil {
		return nil, err
	}
	topo := cl.Topo
	rng := stats.NewRNG(opts.Seed + 72)
	// Storage service: one VIP over four backends.
	vip := slb.VIP(1)
	backends := []topology.HostID{
		topo.HostAt(0, 8, 0), topo.HostAt(0, 8, 1), topo.HostAt(0, 9, 0), topo.HostAt(0, 9, 1),
	}
	if err := cl.SLB.RegisterVIP(vip, backends); err != nil {
		return nil, err
	}
	// Failure mix per §8.3: mostly transient host-ToR drops, some ToR
	// downlinks, a flapping T1 link.
	hostLinks := []topology.LinkID{
		topo.Hosts[backends[0]].Downlink,
		topo.Hosts[backends[2]].Downlink,
	}
	flap := topo.LinksOfClass(topology.L1Down)[16]

	epochs := clusterEpochs(opts) * 2
	type reboot struct {
		epoch int
		cause topology.LinkID
		noise bool
	}
	var reboots []reboot
	for e := 0; e < epochs; e++ {
		// Transient failures come and go, like the paper's config updates
		// and flaps.
		for _, l := range hostLinks {
			if rng.Bool(0.6) {
				cl.InjectFailure(l, rng.Uniform(0.3, 0.8))
			} else {
				cl.ClearFailure(l)
			}
		}
		if e%3 == 0 {
			cl.InjectFailure(flap, 0.85)
		} else {
			cl.ClearFailure(flap)
		}
		for i := 0; i < 40; i++ {
			src := topology.HostID(rng.Intn(len(topo.Hosts)))
			if err := cl.StartVIPFlow(src, vip, 443, 60, des.Time(rng.Intn(int(20*des.Second)))); err != nil {
				return nil, err
			}
		}
		res := cl.RunEpoch()
		// Every failed connection is a "VM reboot"; ask 007 for its cause.
		byFlow := make(map[int64]vote.Verdict, len(res.Verdicts))
		for _, v := range res.Verdicts {
			byFlow[v.FlowID] = v
		}
		for _, f := range cl.Flows() {
			c := f.Conn()
			if c == nil || !c.Failed {
				continue
			}
			if v, ok := byFlow[f.ID()]; ok {
				reboots = append(reboots, reboot{epoch: e, cause: v.Link, noise: v.Noise})
			}
		}
	}
	// Classify causes by link class, the paper's §8.3 breakdown.
	classCount := map[string]int{}
	explained := 0
	for _, rb := range reboots {
		if rb.cause == topology.NoLink {
			classCount["unexplained"]++
			continue
		}
		explained++
		classCount[topo.Links[rb.cause].Class.String()]++
	}
	t := &report.Table{
		Title:   "Sec 8.3: causes 007 assigned to failed storage connections (\"VM reboots\")",
		Columns: []string{"cause class", "count", "share"},
	}
	for _, class := range []string{"ToR-host", "host-ToR", "T1-ToR", "ToR-T1", "T2-T1", "T1-T2", "unexplained"} {
		if n := classCount[class]; n > 0 {
			t.AddRow(class, n, fmt.Sprintf("%.0f%%", 100*float64(n)/float64(len(reboots))))
		}
	}
	t2 := &report.Table{
		Title:   "Fig 14: reboot events per epoch",
		Columns: []string{"epoch", "reboots"},
	}
	perEpoch := make([]int, epochs)
	for _, rb := range reboots {
		perEpoch[rb.epoch]++
	}
	for e, n := range perEpoch {
		t2.AddRow(e, n)
	}
	notes := []string{
		fmt.Sprintf("007 assigned a cause to %d of %d reboot events.", explained, len(reboots)),
		"Paper: every one of 281 unexplained reboots got a cause; most traced to host-ToR links,",
		"some to ToR drops, configuration updates and link flaps.",
	}
	return &Result{ID: "prod-reboots", Title: "Section 8.3 / Figure 14",
		Tables: []*report.Table{t, t2}, Notes: notes}, nil
}

func init() {
	register("ext-latency", "Extension (§9.2): latency diagnosis via RTT thresholds", runExtLatency)
}

// runExtLatency exercises the paper's §9.2 extension: a link with injected
// delay and zero drops is localized by thresholding TCP's smoothed RTT.
func runExtLatency(opts Options) (*Result, error) {
	t := &report.Table{
		Title:   "Extension: RTT-threshold localization of a slow (non-dropping) link",
		Columns: []string{"extra one-way delay", "epochs", "slow link top-1 (%)", "reports/epoch"},
	}
	epochs := clusterEpochs(opts)
	for _, extra := range []des.Time{1 * des.Millisecond, 3 * des.Millisecond} {
		topo, err := topology.New(topology.TestClusterConfig)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{Topo: topo, Seed: opts.Seed + 81, RTTThresholdMicros: 800})
		if err != nil {
			return nil, err
		}
		slow := topo.LinksOfClass(topology.L1Down)[7]
		if err := cl.Net.SetExtraDelay(slow, extra); err != nil {
			return nil, err
		}
		rng := stats.NewRNG(opts.Seed + 82)
		top1, reports := 0, 0
		for e := 0; e < epochs; e++ {
			runClusterWorkload(cl, rng, 8, 60)
			res := cl.RunEpoch()
			reports += res.Tally.Flows()
			if len(res.Ranking) > 0 && res.Ranking[0].Link == slow {
				top1++
			}
		}
		t.AddRow(fmt.Sprintf("%dms", extra/des.Millisecond), epochs,
			100*float64(top1)/float64(epochs), reports/epochs)
	}
	return &Result{ID: "ext-latency", Title: "Latency extension", Tables: []*report.Table{t},
		Notes: []string{"§9.2: thresholding ETW's smoothed RTT turns 007 into a latency localizer with no new machinery;",
			"the slow link wins the vote despite dropping nothing."}}, nil
}
