package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every registered experiment must run clean at Quick scale and produce
// renderable, non-empty tables — the smoke test for the whole harness.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	runners := All()
	if len(runners) < 20 {
		t.Fatalf("only %d experiments registered", len(runners))
	}
	for _, r := range runners {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			res, err := r.Run(Options{Scale: Quick, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if res.ID != r.ID {
				t.Fatalf("result ID %q != runner ID %q", res.ID, r.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", r.ID)
			}
			for _, tab := range res.Tables {
				var buf bytes.Buffer
				if err := tab.RenderASCII(&buf); err != nil {
					t.Fatal(err)
				}
				if err := tab.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				if len(tab.Columns) == 0 {
					t.Fatalf("%s: table %q has no columns", r.ID, tab.Title)
				}
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("fig3"); !ok {
		t.Fatal("fig3 not registered")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %q", r.ID)
		}
		seen[r.ID] = true
		if r.Title == "" || !strings.ContainsAny(r.ID, "abcdefghijklmnopqrstuvwxyz") {
			t.Fatalf("experiment %q missing metadata", r.ID)
		}
	}
}

// Headline shape checks at Quick scale: 007's single-failure accuracy must
// be high, and its detection must beat the binary program's precision
// under noise (the paper's central comparative claims).
func TestShapeSingleFailure(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	outs, err := sweepPoint(simSpec{
		topo:     Options{Scale: Quick}.topoConfig(),
		failures: singleFailure(0.01),
	}, Options{Scale: Quick, Seeds: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	acc := mean(outs, func(o simOutcome) float64 { return o.acc007 })
	if acc.Mean < 0.85 {
		t.Fatalf("007 single-failure accuracy = %v", acc.Mean)
	}
	rec := mean(outs, func(o simOutcome) float64 { return o.det007.Recall })
	if rec.Mean < 0.9 {
		t.Fatalf("007 single-failure recall = %v", rec.Mean)
	}
}
