// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6 simulations, §7 test cluster, §8 production),
// plus the ablations DESIGN.md calls out. cmd/vigil-lab renders them;
// bench_test.go wraps each in a benchmark.
//
// Runners are deterministic for a fixed Options.Seed and average over
// Options.Seeds independent repetitions, reporting mean and 95% CI like
// the paper's error bars.
package experiments

import (
	"fmt"
	"sort"

	"vigil/internal/analysis"
	"vigil/internal/metrics"
	"vigil/internal/netem"
	"vigil/internal/opt"
	"vigil/internal/par"
	"vigil/internal/report"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Scale selects experiment size.
type Scale int

// Scales: Full reproduces the paper's parameters; Quick shrinks topology
// and repetition counts for benchmarks and smoke tests.
const (
	Full Scale = iota
	Quick
)

// Options configures a run.
type Options struct {
	Scale Scale
	Seeds int // repetitions; 0 means the scale default
	Seed  uint64
	// Parallelism bounds the worker pool that runs a sweep's seed
	// repetitions concurrently; 0 means runtime.GOMAXPROCS(0). Results are
	// identical at every setting — repetitions are independent and write
	// into per-seed slots.
	Parallelism int
}

func (o Options) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Scale == Quick {
		return 2
	}
	return 5
}

func (o Options) parallelism() int { return par.Workers(o.Parallelism) }

// innerParallelism spreads the worker budget between the seed pool and each
// seed's epoch engine: with at least as many repetitions as workers the
// epochs run single-threaded (the sweep already saturates the pool); a
// lone repetition gets the whole budget.
func (o Options) innerParallelism(reps int) int {
	p := o.parallelism()
	if reps < 1 {
		reps = 1
	}
	if reps > p {
		return 1
	}
	return p / reps
}

func (o Options) topoConfig() topology.Config {
	if o.Scale == Quick {
		return topology.Config{Pods: 2, ToRsPerPod: 8, T1PerPod: 8, T2: 4, HostsPerToR: 8}
	}
	return topology.DefaultSimConfig
}

func (o Options) conns() int {
	if o.Scale == Quick {
		return 20
	}
	return 60
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

// Runner produces a Result.
type Runner struct {
	ID    string
	Title string
	Run   func(opts Options) (*Result, error)
}

var registry []Runner

func register(id, title string, run func(Options) (*Result, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in registration order.
func All() []Runner { return registry }

// Find returns the runner with the given ID.
func Find(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// ---- shared simulation helpers ----

// simSpec describes one simulated condition.
type simSpec struct {
	topo     topology.Config
	workload traffic.Workload
	noiseLo  float64
	noiseHi  float64
	// failures picks the failed links and their rates for one repetition.
	failures func(rng *stats.RNG, topo *topology.Topology) map[topology.LinkID]float64
	// detect overrides default detection options (optional).
	detect func(topo *topology.Topology) vote.DetectOptions
}

// simOutcome aggregates one repetition's scores.
type simOutcome struct {
	acc007    float64
	accInt    float64
	det007    metrics.Detection
	detInt    metrics.Detection
	detBin    metrics.Detection
	flows     int
	failFlows int
	noiseErrs int
}

// runOne simulates one epoch under the spec and scores everything.
// parallelism is the epoch engine's worker count — 1 when the caller is
// already fanning seeds out over the pool.
func runOne(spec simSpec, seed uint64, parallelism int) (simOutcome, error) {
	topo, err := topology.New(spec.topo)
	if err != nil {
		return simOutcome{}, err
	}
	if spec.noiseHi == 0 {
		spec.noiseHi = 1e-6
	}
	w := spec.workload
	if w.Pattern == nil {
		w.Pattern = traffic.Uniform{}
	}
	if w.ConnsPerHost.Lo == 0 && w.ConnsPerHost.Hi == 0 {
		w.ConnsPerHost = traffic.IntRange{Lo: 60, Hi: 60}
	}
	if w.PacketsPerFlow.Lo == 0 && w.PacketsPerFlow.Hi == 0 {
		w.PacketsPerFlow = traffic.IntRange{Lo: 100, Hi: 100}
	}
	sim, err := netem.New(netem.Config{
		Topo: topo, Workload: w,
		NoiseLo: spec.noiseLo, NoiseHi: spec.noiseHi,
		Seed:        seed,
		Parallelism: parallelism,
	})
	if err != nil {
		return simOutcome{}, err
	}
	rng := stats.NewRNG(seed ^ 0xfeedface)
	for l, rate := range spec.failures(rng, topo) {
		sim.InjectFailure(l, rate)
	}
	ep := sim.RunEpoch()
	truth := ep.Truth()

	detectOpts := vote.DetectOptions{ThresholdFrac: 0.01}
	if spec.detect != nil {
		detectOpts = spec.detect(topo)
	}
	res := analysis.Analyze(ep.Reports, analysis.Options{Detect: detectOpts, Parallelism: parallelism})

	out := simOutcome{flows: ep.TotalFlows}
	score := metrics.ScoreVerdicts(res.Verdicts, truth)
	out.acc007 = score.Accuracy()
	out.failFlows = score.Considered
	out.noiseErrs = score.NoiseErrors
	out.det007 = metrics.ScoreDetection(res.Detected, ep.FailedLinks)

	in := opt.BuildInstance(ep.Reports)
	intSol := in.SolveInteger(stats.NewRNG(seed ^ 0xabcdef))
	out.accInt = metrics.ScoreBlamer(intSol, ep.Reports, truth).Accuracy()
	// The integer program's detection uses its extra information: links
	// assigned only a lone drop are noise by the paper's definition.
	out.detInt = metrics.ScoreDetection(intSol.FailedLinks(2), ep.FailedLinks)

	// Binary program: exact when tractable, greedy (MAX COVERAGE / Tomo)
	// otherwise — the paper's own fallback.
	var binLinks []topology.LinkID
	if in.Flows() <= 30 {
		binLinks, _ = in.SolveBinaryExact(100000)
	} else {
		binLinks = in.SolveBinaryGreedy()
	}
	out.detBin = metrics.ScoreDetection(binLinks, ep.FailedLinks)
	return out, nil
}

// sweepPoint runs Seeds repetitions of one condition concurrently through
// the bounded worker pool. Each repetition derives its own seed and writes
// into its own slot, so the sweep's output is independent of the pool size.
// A failed repetition stops the remaining ones from starting.
func sweepPoint(spec simSpec, opts Options) ([]simOutcome, error) {
	n := opts.seeds()
	outs := make([]simOutcome, n)
	inner := opts.innerParallelism(n)
	err := par.ForEachErr(n, opts.parallelism(), func(i int) error {
		var err error
		outs[i], err = runOne(spec, opts.Seed+uint64(i)*7919+1, inner)
		return err
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

func mean(outs []simOutcome, f func(simOutcome) float64) stats.Summary {
	vs := make([]float64, len(outs))
	for i, o := range outs {
		vs[i] = f(o)
	}
	return stats.Summarize(vs)
}

func fmtMeanCI(s stats.Summary) string {
	return fmt.Sprintf("%.3f±%.3f", s.Mean, s.CI95)
}

// randomLinks picks n distinct links uniformly over all non-host links
// (the paper injects failures on switch-to-switch links unless the
// experiment says otherwise).
func randomLinks(rng *stats.RNG, topo *topology.Topology, n int) []topology.LinkID {
	var pool []topology.LinkID
	for _, class := range []topology.LinkClass{topology.L1Up, topology.L1Down, topology.L2Up, topology.L2Down} {
		pool = append(pool, topo.LinksOfClass(class)...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		n = len(pool)
	}
	out := append([]topology.LinkID(nil), pool[:n]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// uniformFailures injects k failures with rates U(lo, hi).
func uniformFailures(k int, lo, hi float64) func(*stats.RNG, *topology.Topology) map[topology.LinkID]float64 {
	return func(rng *stats.RNG, topo *topology.Topology) map[topology.LinkID]float64 {
		out := make(map[topology.LinkID]float64, k)
		for _, l := range randomLinks(rng, topo, k) {
			out[l] = rng.Uniform(lo, hi)
		}
		return out
	}
}

// singleFailure injects one failure at exactly the given rate.
func singleFailure(rate float64) func(*stats.RNG, *topology.Topology) map[topology.LinkID]float64 {
	return func(rng *stats.RNG, topo *topology.Topology) map[topology.LinkID]float64 {
		l := randomLinks(rng, topo, 1)[0]
		return map[topology.LinkID]float64{l: rate}
	}
}
