// Package wire implements the packet formats the emulated fabric carries:
// IPv4, TCP and ICMP. It follows the gopacket conventions — layers
// serialize by prepending onto a buffer (payload first, headers outward)
// and decode into preallocated layer structs — but is self-contained on the
// standard library.
//
// 007's path discovery (§4.2) depends on three wire-level details all
// implemented here: traceroute probes carry the traced flow's exact
// five-tuple so ECMP hashes them onto the data path; the probe's TTL is
// echoed in the IP ID field so concurrent traceroutes can be disambiguated
// when the expired header comes back inside an ICMP time-exceeded message;
// and probes carry a deliberately bad TCP checksum so the destination's
// stack drops them without disturbing the live connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes in bytes.
const (
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	ICMPHeaderLen = 8
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// ICMP types/codes used by the emulation.
const (
	ICMPTypeTimeExceeded  uint8 = 11
	ICMPCodeTTLExpired    uint8 = 0
	ICMPTypeEchoReply     uint8 = 0
	ICMPTypeDestUnreach   uint8 = 3
	ICMPCodePortUnreached uint8 = 3
)

// IPv4 is a 20-byte IPv4 header (no options).
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length incl. header; filled by SerializeTo
	ID       uint16 // 007 encodes the probe TTL here
	TTL      uint8
	Protocol uint8
	Checksum uint16 // filled by SerializeTo, verified by Decode
	Src, Dst uint32
}

// TCP is a 20-byte TCP header (no options).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	// BadChecksum asks SerializeTo to emit a deliberately wrong checksum,
	// 007's trick to keep probes from reaching the peer's TCP state machine.
	BadChecksum bool
}

// ICMP is an ICMP header plus body. For time-exceeded messages the body is
// the expired packet's IP header and the first 8 payload bytes (RFC 792),
// which is exactly what lets 007 recover the probe's five-tuple and IP ID.
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
	Body       []byte
}

// Buffer accumulates a packet during serialization. Layers prepend, so a
// packet is built payload-first: buf.Append(payload); tcp.SerializeTo(buf);
// ip.SerializeTo(buf).
type Buffer struct {
	data  []byte
	start int
}

// NewBuffer returns a Buffer with room to prepend headroom bytes.
func NewBuffer(headroom int) *Buffer {
	return &Buffer{data: make([]byte, headroom), start: headroom}
}

// Reset empties the buffer in place, leaving room to prepend headroom
// bytes. Capacity is retained, so a reset buffer serializes the next
// packet without allocating.
func (b *Buffer) Reset(headroom int) {
	if cap(b.data) < headroom {
		b.data = make([]byte, headroom)
	}
	b.data = b.data[:headroom]
	b.start = headroom
}

// Pool is a free list of packet Buffers. The emulation is single-threaded
// on virtual time, so the pool is deliberately lock-free and NOT safe for
// concurrent use. Ownership is explicit: Get hands the caller an empty
// buffer, and exactly one component must Put it back once the packet dies
// (see the fabric's release rules).
type Pool struct {
	free []*Buffer
}

// Get returns an empty buffer with the given headroom, reusing a released
// one when available.
func (p *Pool) Get(headroom int) *Buffer {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.Reset(headroom)
		return b
	}
	return NewBuffer(headroom)
}

// Put releases a buffer back to the pool. The caller must not touch b (or
// any slice previously obtained from it) afterwards.
func (p *Pool) Put(b *Buffer) {
	p.free = append(p.free, b)
}

// Free returns the number of idle buffers in the pool.
func (p *Pool) Free() int { return len(p.free) }

// Bytes returns the serialized packet so far.
func (b *Buffer) Bytes() []byte { return b.data[b.start:] }

// Prepend makes n bytes of space before the current content.
func (b *Buffer) Prepend(n int) []byte {
	if b.start < n {
		content := b.data[b.start:]
		grown := make([]byte, n+64+len(content))
		copy(grown[n+64:], content)
		b.data = grown
		b.start = n + 64
	}
	b.start -= n
	return b.data[b.start : b.start+n]
}

// Append adds payload bytes after the current content.
func (b *Buffer) Append(p []byte) {
	b.data = append(b.data, p...)
}

// SerializeTo prepends the IPv4 header, fixing Length and Checksum.
func (ip *IPv4) SerializeTo(b *Buffer) {
	total := len(b.Bytes()) + IPv4HeaderLen
	h := b.Prepend(IPv4HeaderLen)
	h[0] = 0x45 // version 4, IHL 5
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:], uint16(total))
	binary.BigEndian.PutUint16(h[4:], ip.ID)
	h[6], h[7] = 0, 0 // flags+fragment offset
	h[8] = ip.TTL
	h[9] = ip.Protocol
	h[10], h[11] = 0, 0 // checksum placeholder
	binary.BigEndian.PutUint32(h[12:], ip.Src)
	binary.BigEndian.PutUint32(h[16:], ip.Dst)
	ip.Length = uint16(total)
	ip.Checksum = Checksum(h)
	binary.BigEndian.PutUint16(h[10:], ip.Checksum)
}

// SerializeTo prepends the TCP header, computing the checksum over the
// pseudo-header, header and current buffer contents (the payload). ip
// supplies the pseudo-header addresses.
func (t *TCP) SerializeTo(b *Buffer, ip *IPv4) {
	payloadLen := len(b.Bytes())
	h := b.Prepend(TCPHeaderLen)
	binary.BigEndian.PutUint16(h[0:], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:], t.DstPort)
	binary.BigEndian.PutUint32(h[4:], t.Seq)
	binary.BigEndian.PutUint32(h[8:], t.Ack)
	h[12] = 5 << 4 // data offset: 5 words
	h[13] = t.Flags
	binary.BigEndian.PutUint16(h[14:], t.Window)
	h[16], h[17] = 0, 0 // checksum placeholder
	h[18], h[19] = 0, 0 // urgent
	sum := tcpChecksum(h[:TCPHeaderLen+payloadLen], ip.Src, ip.Dst)
	if t.BadChecksum {
		sum ^= 0x5555
		if sum == 0 {
			sum = 0x5555
		}
	}
	t.Checksum = sum
	binary.BigEndian.PutUint16(h[16:], sum)
}

// SerializeTo prepends the ICMP header and body.
func (ic *ICMP) SerializeTo(b *Buffer) {
	b.Prepend(len(ic.Body))
	copy(b.Bytes(), ic.Body)
	ic.SerializeHeaderTo(b)
}

// SerializeHeaderTo prepends just the 8-byte ICMP header over a body the
// caller already placed in b, checksumming header plus body. It is the
// allocation-free path for replies whose body is copied straight from the
// packet being answered (see fabric's time-exceeded generation); Body is
// ignored.
func (ic *ICMP) SerializeHeaderTo(b *Buffer) {
	h := b.Prepend(ICMPHeaderLen)
	h[0] = ic.Type
	h[1] = ic.Code
	h[2], h[3] = 0, 0
	h[4], h[5], h[6], h[7] = 0, 0, 0, 0 // unused
	ic.Checksum = Checksum(b.Bytes())
	binary.BigEndian.PutUint16(h[2:], ic.Checksum)
}

// Checksum computes the RFC 1071 internet checksum of data.
func Checksum(data []byte) uint16 {
	return ^fold(sumWords(0, data))
}

// sumWords accumulates data's big-endian 16-bit words onto acc without
// folding: a uint64 holds the carries of any realistic packet, and reading
// 32 bits per step (two words: the high half collects the even words, the
// low half the odd ones) halves the loads on the per-hop header and
// segment checksums.
func sumWords(acc uint64, data []byte) uint64 {
	for len(data) >= 4 {
		acc += uint64(binary.BigEndian.Uint32(data))
		data = data[4:]
	}
	if len(data) >= 2 {
		acc += uint64(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		acc += uint64(data[0]) << 8
	}
	return acc
}

// fold reduces an unfolded word sum to the 16-bit one's-complement total.
func fold(acc uint64) uint16 {
	// 32-bit reads leave even words in the high halves: fold 64→32, then
	// carry-fold to 16 bits (the loop runs at most three times).
	sum := acc>>32 + acc&0xffffffff
	sum = sum>>32 + sum&0xffffffff
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

func tcpChecksum(segment []byte, src, dst uint32) uint16 {
	acc := uint64(src>>16) + uint64(src&0xffff) +
		uint64(dst>>16) + uint64(dst&0xffff) +
		uint64(ProtoTCP) + uint64(len(segment))
	return ^fold(sumWords(acc, segment))
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: not an IPv4 packet")
	ErrBadChecksum = errors.New("wire: header checksum mismatch")
)

// DecodeIPv4 parses an IPv4 header from data, returning the payload.
// The header checksum is verified.
func DecodeIPv4(data []byte, ip *IPv4) (payload []byte, err error) {
	if len(data) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return nil, ErrTruncated
	}
	if Checksum(data[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:])
	ip.ID = binary.BigEndian.Uint16(data[4:])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:])
	ip.Src = binary.BigEndian.Uint32(data[12:])
	ip.Dst = binary.BigEndian.Uint32(data[16:])
	end := int(ip.Length)
	if end < ihl || end > len(data) {
		end = len(data)
	}
	return data[ihl:end], nil
}

// DecodeTCP parses a TCP header from data, returning the payload.
// Checksum verification is the caller's concern (see VerifyTCPChecksum):
// hosts verify, switches do not.
func DecodeTCP(data []byte, t *TCP) (payload []byte, err error) {
	if len(data) < TCPHeaderLen {
		return nil, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:])
	t.DstPort = binary.BigEndian.Uint16(data[2:])
	t.Seq = binary.BigEndian.Uint32(data[4:])
	t.Ack = binary.BigEndian.Uint32(data[8:])
	off := int(data[12]>>4) * 4
	if off < TCPHeaderLen || len(data) < off {
		return nil, ErrTruncated
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:])
	t.Checksum = binary.BigEndian.Uint16(data[16:])
	return data[off:], nil
}

// VerifyTCPChecksum reports whether the TCP segment's checksum is valid
// under the given pseudo-header addresses.
func VerifyTCPChecksum(segment []byte, src, dst uint32) bool {
	return tcpChecksum(segment, src, dst) == 0
}

// DecodeICMP parses an ICMP message from data.
func DecodeICMP(data []byte, ic *ICMP) error {
	if len(data) < ICMPHeaderLen {
		return ErrTruncated
	}
	if Checksum(data) != 0 {
		return ErrBadChecksum
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:])
	ic.Body = data[ICMPHeaderLen:]
	return nil
}

// TimeExceeded builds the ICMP time-exceeded reply a switch sends when a
// packet's TTL expires: the expired packet's IP header plus its first 8
// payload bytes come back as the body.
func TimeExceeded(expired []byte) ICMP {
	n := IPv4HeaderLen + 8
	if n > len(expired) {
		n = len(expired)
	}
	body := make([]byte, n)
	copy(body, expired[:n])
	return ICMP{Type: ICMPTypeTimeExceeded, Code: ICMPCodeTTLExpired, Body: body}
}

// ExpiredProbe extracts the original probe's identity from a time-exceeded
// body: the embedded IP header and, when the embedded packet was TCP, its
// source/destination ports (the first 4 payload bytes). It returns the
// embedded IP header, the ports, and whether ports were present.
func ExpiredProbe(body []byte) (ip IPv4, srcPort, dstPort uint16, ok bool, err error) {
	if len(body) < IPv4HeaderLen {
		return IPv4{}, 0, 0, false, ErrTruncated
	}
	// The embedded header's checksum was valid when the packet expired.
	if _, err := DecodeIPv4(body[:IPv4HeaderLen], &ip); err != nil {
		return IPv4{}, 0, 0, false, err
	}
	if ip.Protocol == ProtoTCP && len(body) >= IPv4HeaderLen+4 {
		srcPort = binary.BigEndian.Uint16(body[IPv4HeaderLen:])
		dstPort = binary.BigEndian.Uint16(body[IPv4HeaderLen+2:])
		return ip, srcPort, dstPort, true, nil
	}
	return ip, 0, 0, false, nil
}

// String renders the header compactly for logs.
func (ip *IPv4) String() string {
	return fmt.Sprintf("IPv4{%d.%d.%d.%d→%d.%d.%d.%d ttl=%d id=%d proto=%d}",
		byte(ip.Src>>24), byte(ip.Src>>16), byte(ip.Src>>8), byte(ip.Src),
		byte(ip.Dst>>24), byte(ip.Dst>>16), byte(ip.Dst>>8), byte(ip.Dst),
		ip.TTL, ip.ID, ip.Protocol)
}
