package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildTCPPacket(ip IPv4, tcp TCP, payload []byte) []byte {
	buf := NewBuffer(64)
	buf.Append(payload)
	tcp.SerializeTo(buf, &ip)
	ip.SerializeTo(buf)
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, src, dst uint32, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		in := IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: ProtoTCP, Src: src, Dst: dst}
		buf := NewBuffer(32)
		buf.Append(payload)
		in.SerializeTo(buf)
		var out IPv4
		got, err := DecodeIPv4(buf.Bytes(), &out)
		if err != nil {
			return false
		}
		return out.TOS == tos && out.ID == id && out.TTL == ttl &&
			out.Src == src && out.Dst == dst && out.Protocol == ProtoTCP &&
			bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, win uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: 0x0a000001, Dst: 0x0a000002}
		in := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: FlagACK, Window: win}
		pkt := buildTCPPacket(ip, in, payload)
		var gotIP IPv4
		seg, err := DecodeIPv4(pkt, &gotIP)
		if err != nil {
			return false
		}
		var out TCP
		got, err := DecodeTCP(seg, &out)
		if err != nil {
			return false
		}
		return out.SrcPort == sp && out.DstPort == dp && out.Seq == seq &&
			out.Ack == ack && out.Window == win && out.Flags == FlagACK &&
			bytes.Equal(got, payload) &&
			VerifyTCPChecksum(seg, ip.Src, ip.Dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBadChecksumProbe(t *testing.T) {
	ip := IPv4{TTL: 5, Protocol: ProtoTCP, Src: 1, Dst: 2}
	probe := TCP{SrcPort: 31337, DstPort: 443, BadChecksum: true}
	pkt := buildTCPPacket(ip, probe, nil)
	var gotIP IPv4
	seg, err := DecodeIPv4(pkt, &gotIP)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyTCPChecksum(seg, ip.Src, ip.Dst) {
		t.Fatal("deliberately bad checksum verified as good")
	}
	// The header itself still decodes: switches forward it fine.
	var out TCP
	if _, err := DecodeTCP(seg, &out); err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != 31337 || out.DstPort != 443 {
		t.Fatal("probe ports corrupted")
	}
}

func TestIPChecksumDetectsCorruption(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: 10, Dst: 20, ID: 7}
	buf := NewBuffer(32)
	ip.SerializeTo(buf)
	pkt := make([]byte, len(buf.Bytes()))
	copy(pkt, buf.Bytes())
	pkt[8] ^= 0xff // flip the TTL without fixing the checksum
	var out IPv4
	if _, err := DecodeIPv4(pkt, &out); err != ErrBadChecksum {
		t.Fatalf("corrupted header decoded with err=%v, want ErrBadChecksum", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	var ip IPv4
	if _, err := DecodeIPv4(nil, &ip); err != ErrTruncated {
		t.Fatalf("nil: %v", err)
	}
	if _, err := DecodeIPv4(make([]byte, 10), &ip); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	v6 := make([]byte, 40)
	v6[0] = 0x60
	if _, err := DecodeIPv4(v6, &ip); err != ErrBadVersion {
		t.Fatalf("v6: %v", err)
	}
	var tc TCP
	if _, err := DecodeTCP(make([]byte, 8), &tc); err != ErrTruncated {
		t.Fatalf("short tcp: %v", err)
	}
	var ic ICMP
	if err := DecodeICMP(make([]byte, 4), &ic); err != ErrTruncated {
		t.Fatalf("short icmp: %v", err)
	}
}

func TestTimeExceededRoundTrip(t *testing.T) {
	// Build a probe the way the path discovery agent does: TTL in IP ID.
	ip := IPv4{TTL: 3, ID: 3, Protocol: ProtoTCP, Src: 0x0a010203, Dst: 0x0a040506}
	probe := TCP{SrcPort: 50000, DstPort: 443, BadChecksum: true}
	pkt := buildTCPPacket(ip, probe, nil)

	// Switch expires it and answers.
	reply := TimeExceeded(pkt)
	buf := NewBuffer(64)
	reply.SerializeTo(buf)
	replyIP := IPv4{TTL: 64, Protocol: ProtoICMP, Src: 0x0ac80001, Dst: ip.Src}
	replyIP.SerializeTo(buf)

	// Host decodes the reply and recovers the probe identity.
	var outIP IPv4
	icmpData, err := DecodeIPv4(buf.Bytes(), &outIP)
	if err != nil {
		t.Fatal(err)
	}
	var ic ICMP
	if err := DecodeICMP(icmpData, &ic); err != nil {
		t.Fatal(err)
	}
	if ic.Type != ICMPTypeTimeExceeded || ic.Code != ICMPCodeTTLExpired {
		t.Fatalf("wrong ICMP type/code: %d/%d", ic.Type, ic.Code)
	}
	embedded, sp, dp, hasPorts, err := ExpiredProbe(ic.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !hasPorts || sp != 50000 || dp != 443 {
		t.Fatalf("ports not recovered: %d→%d (ok=%v)", sp, dp, hasPorts)
	}
	if embedded.ID != 3 {
		t.Fatalf("IP ID (encoded TTL) = %d, want 3", embedded.ID)
	}
	if embedded.Src != ip.Src || embedded.Dst != ip.Dst {
		t.Fatal("embedded addresses corrupted")
	}
}

func TestTimeExceededTruncatedBody(t *testing.T) {
	reply := TimeExceeded([]byte{0x45, 0x00})
	if len(reply.Body) != 2 {
		t.Fatalf("body length %d", len(reply.Body))
	}
	if _, _, _, _, err := ExpiredProbe(reply.Body); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

// ICMP messages with odd and even body lengths must both verify after
// serialization — the checksum padding rule is easy to get wrong.
func TestICMPChecksumOddEvenBodies(t *testing.T) {
	f := func(body []byte) bool {
		if len(body) > 600 {
			body = body[:600]
		}
		ic := ICMP{Type: ICMPTypeTimeExceeded, Code: 0, Body: body}
		buf := NewBuffer(16)
		ic.SerializeTo(buf)
		var out ICMP
		if err := DecodeICMP(buf.Bytes(), &out); err != nil {
			return false
		}
		return out.Type == ic.Type && bytes.Equal(out.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPrependGrowth(t *testing.T) {
	buf := NewBuffer(0) // no headroom: every prepend must grow
	buf.Append([]byte{9, 9})
	h := buf.Prepend(4)
	copy(h, []byte{1, 2, 3, 4})
	h2 := buf.Prepend(3)
	copy(h2, []byte{5, 6, 7})
	want := []byte{5, 6, 7, 1, 2, 3, 4, 9, 9}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("buffer = %v, want %v", buf.Bytes(), want)
	}
}

func TestIPv4String(t *testing.T) {
	ip := IPv4{Src: 0x0a000102, Dst: 0x0a000203, TTL: 4, ID: 9, Protocol: 6}
	if got := ip.String(); got != "IPv4{10.0.1.2→10.0.2.3 ttl=4 id=9 proto=6}" {
		t.Fatalf("String = %q", got)
	}
}

func BenchmarkSerializeTCPPacket(b *testing.B) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: 1, Dst: 2}
	tcp := TCP{SrcPort: 1000, DstPort: 443, Seq: 1}
	payload := make([]byte, 512)
	buf := NewBuffer(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*buf = Buffer{data: buf.data[:64], start: 64}
		buf.Append(payload)
		tcp.SerializeTo(buf, &ip)
		ip.SerializeTo(buf)
	}
}

func BenchmarkDecodeTCPPacket(b *testing.B) {
	pkt := buildTCPPacket(
		IPv4{TTL: 64, Protocol: ProtoTCP, Src: 1, Dst: 2},
		TCP{SrcPort: 1000, DstPort: 443}, make([]byte, 512))
	var ip IPv4
	var tcp TCP
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg, err := DecodeIPv4(pkt, &ip)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeTCP(seg, &tcp); err != nil {
			b.Fatal(err)
		}
	}
}
