package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vigil/internal/topology"
	"vigil/internal/vote"
)

// recHandler records the deduplicated frame stream a server delivers.
type recHandler struct {
	mu      sync.Mutex
	hellos  []Hello
	reports []Report
	tokens  []Token
	byes    int
	onToken func(sess uint64, seq uint64, t Token)
}

func (h *recHandler) OnHello(sess uint64, hello Hello) {
	h.mu.Lock()
	h.hellos = append(h.hellos, hello)
	h.mu.Unlock()
}

func (h *recHandler) OnReport(sess uint64, r vote.Report, attempt uint8) {
	h.mu.Lock()
	h.reports = append(h.reports, Report{Attempt: attempt, R: r})
	h.mu.Unlock()
}

func (h *recHandler) OnToken(sess uint64, seq uint64, t Token) {
	h.mu.Lock()
	h.tokens = append(h.tokens, t)
	cb := h.onToken
	h.mu.Unlock()
	if cb != nil {
		cb(sess, seq, t)
	}
}

func (h *recHandler) OnBye(sess uint64) {
	h.mu.Lock()
	h.byes++
	h.mu.Unlock()
}

func (h *recHandler) snapshot() (reports []Report, tokens []Token) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Report{}, h.reports...), append([]Token{}, h.tokens...)
}

func newTestServer(t *testing.T, h Handler, cfg ServerConfig) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Listener = ln
	cfg.Handler = h
	srv, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func newTestClient(t *testing.T, addr string, cfg ClientConfig) *Client {
	t.Helper()
	cfg.Addr = addr
	if cfg.WaitPoll == 0 {
		cfg.WaitPoll = 10 * time.Millisecond
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 50 * time.Millisecond
	}
	cli, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// The lockstep happy path: reports and a token flow up, the handler sees
// them once each, a Commit acks durably (trimming the client's replay
// buffer), and the cycle-end comes back.
func TestSessionLockstep(t *testing.T) {
	h := &recHandler{}
	tokenSeq := make(chan uint64, 1)
	h.onToken = func(sess, seq uint64, tok Token) { tokenSeq <- seq }
	srv := newTestServer(t, h, ServerConfig{})
	cli := newTestClient(t, srv.Addr(), ClientConfig{Session: 7, ThresholdFrac: 0.75, MaxLinks: 3})

	ctx := context.Background()
	for i := int32(0); i < 3; i++ {
		r := vote.Report{Src: 1, Epoch: 0, Seq: i, Path: []topology.LinkID{1, 2}}
		if err := cli.SendReport(ctx, r, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.SendToken(ctx, Token{Cycle: 0, Live: true,
		Counts: []AgentCount{{Agent: 1, N: 3}}, Summary: &EpochSummary{Epoch: 0}}); err != nil {
		t.Fatal(err)
	}
	seq := <-tokenSeq
	if err := srv.Commit(0, map[uint64]uint64{7: seq}); err != nil {
		t.Fatal(err)
	}
	srv.SendCycleEnd(7, CycleEnd{Cycle: 0, Retries: []RetryReq{{Agent: 1, Epoch: 0, Seq: 2, Attempt: 1}}})
	ce, err := cli.WaitCycleEnd(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Cycle != 0 || len(ce.Retries) != 1 || ce.Retries[0].Seq != 2 {
		t.Fatalf("cycle end = %+v", ce)
	}
	// The Ack preceded the CycleEnd on the same connection, so by now the
	// replay buffer is empty and the durable watermark covers the token.
	if cli.Buffered() != 0 || cli.Durable() != seq {
		t.Fatalf("buffered %d, durable %d, want 0 and %d", cli.Buffered(), cli.Durable(), seq)
	}
	reports, tokens := h.snapshot()
	if len(reports) != 3 || len(tokens) != 1 {
		t.Fatalf("handler saw %d reports, %d tokens; want 3, 1", len(reports), len(tokens))
	}
	h.mu.Lock()
	hello := h.hellos[0]
	h.mu.Unlock()
	if hello.ThresholdFrac != 0.75 || hello.MaxLinks != 3 {
		t.Fatalf("hello = %+v", hello)
	}

	// A clean Bye fires Done.
	cli.Close()
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done never fired after Bye")
	}
}

// A severed connection loses nothing: unacked frames are replayed on
// resume, already-processed frames are deduplicated by the server's
// watermark, and the handler sees each sequence number exactly once.
func TestResumeReplaysExactlyOnce(t *testing.T) {
	h := &recHandler{}
	tokenSeq := make(chan uint64, 1)
	h.onToken = func(sess, seq uint64, tok Token) { tokenSeq <- seq }
	srv := newTestServer(t, h, ServerConfig{})
	cli := newTestClient(t, srv.Addr(), ClientConfig{Session: 1})

	ctx := context.Background()
	for i := int32(0); i < 4; i++ {
		if err := cli.SendReport(ctx, vote.Report{Src: 2, Seq: i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is committed yet, so every frame is still buffered.
	if cli.Buffered() != 4 {
		t.Fatalf("buffered %d, want 4", cli.Buffered())
	}
	// Sever the wire out from under the client. The next send hits the dead
	// socket, reconnects, and replays everything past the server's resume
	// watermark — the server drops what it already processed.
	cli.conn.Close()
	if err := cli.SendReport(ctx, vote.Report{Src: 2, Seq: 4}, 0); err != nil {
		t.Fatal(err)
	}
	if got := cli.ctr.Resumes.Load(); got != 1 {
		t.Fatalf("Resumes = %d, want 1", got)
	}
	if err := cli.SendToken(ctx, Token{Cycle: 0, Live: true}); err != nil {
		t.Fatal(err)
	}
	seq := <-tokenSeq
	if err := srv.Commit(0, map[uint64]uint64{1: seq}); err != nil {
		t.Fatal(err)
	}
	srv.SendCycleEnd(1, CycleEnd{Cycle: 0})
	if _, err := cli.WaitCycleEnd(ctx, 0); err != nil {
		t.Fatal(err)
	}

	if got := cli.ctr.Reconnects.Load(); got < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", got)
	}
	reports, _ := h.snapshot()
	seen := map[int32]int{}
	for _, f := range reports {
		seen[f.R.Seq]++
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("report seq %d delivered %d times", s, n)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct reports arrived, want >= 5", len(seen))
	}
}

// A restarted server resumes sessions from the checkpoint: durable
// watermarks survive, the client replays only what the checkpoint does
// not cover, and pre-durable frames are never re-delivered as new.
func TestServerRestartFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	h1 := &recHandler{}
	tokenSeq := make(chan uint64, 1)
	h1.onToken = func(sess, seq uint64, tok Token) { tokenSeq <- seq }
	srv1 := newTestServer(t, h1, ServerConfig{CheckpointPath: path, AppFresh: -1})
	cli := newTestClient(t, srv1.Addr(), ClientConfig{Session: 5})

	ctx := context.Background()
	if err := cli.SendReport(ctx, vote.Report{Src: 1, Seq: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := cli.SendToken(ctx, Token{Cycle: 0, Live: true}); err != nil {
		t.Fatal(err)
	}
	seq := <-tokenSeq
	if err := srv1.Commit(3, map[uint64]uint64{5: seq}); err != nil {
		t.Fatal(err)
	}
	// Send one more frame the checkpoint does NOT cover, then crash.
	if err := cli.SendReport(ctx, vote.Report{Src: 1, Seq: 1}, 0); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	h2 := &recHandler{}
	srv2 := newTestServer(t, h2, ServerConfig{CheckpointPath: path, AppFresh: -1})
	if got := srv2.AppState(); got != 3 {
		t.Fatalf("restarted AppState = %d, want 3", got)
	}
	if ids := srv2.SessionIDs(); len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("restarted sessions = %v, want [5]", ids)
	}
	// Point the client at the new incarnation (same logical address role).
	cli.cfg.Addr = srv2.Addr()
	cli.dropConn()
	if err := cli.SendReport(ctx, vote.Report{Src: 1, Seq: 2}, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		reports, _ := h2.snapshot()
		if len(reports) >= 2 {
			// Replay delivered exactly the post-checkpoint frames: seq 1
			// (unacked at the crash) and seq 2 — never seq 0 or the token.
			seen := map[int32]bool{}
			for _, f := range reports {
				seen[f.R.Seq] = true
			}
			if seen[0] || !seen[1] || !seen[2] || len(reports) != 2 {
				t.Fatalf("restart replay delivered %+v", reports)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted server never saw the replay; got %+v", reports)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, tokens := h2.snapshot(); len(tokens) != 0 {
		t.Fatal("durably-acked token re-delivered after restart")
	}
}

// flakyListener fails its first n Accepts with a transient error; the
// accept loop must retry with backoff, not exit.
type flakyListener struct {
	net.Listener
	mu   sync.Mutex
	fail int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fail > 0 {
		l.fail--
		l.mu.Unlock()
		return nil, fmt.Errorf("accept: transient resource exhaustion")
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &recHandler{}
	srv, err := Serve(ServerConfig{Listener: &flakyListener{Listener: ln, fail: 3}, Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := newTestClient(t, ln.Addr().String(), ClientConfig{Session: 2})
	if err := cli.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := srv.Counters().AcceptRetries.Load(); got != 3 {
		t.Fatalf("AcceptRetries = %d, want 3", got)
	}
}

// The send window is a hard bound: a client racing unboundedly ahead of
// the collector's durable watermark is an error, not silent growth.
func TestSendWindowBounded(t *testing.T) {
	h := &recHandler{}
	srv := newTestServer(t, h, ServerConfig{})
	cli := newTestClient(t, srv.Addr(), ClientConfig{Session: 3, Window: 2})

	ctx := context.Background()
	for i := int32(0); i < 2; i++ {
		if err := cli.SendReport(ctx, vote.Report{Seq: i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.SendReport(ctx, vote.Report{Seq: 2}, 0); err == nil {
		t.Fatal("send beyond the window succeeded")
	}
}

// A lost cycle-end is recovered without losing lockstep: the client
// re-sends its token, the server sees it as stale and answers with the
// stored newest cycle-end.
func TestLostCycleEndRecovered(t *testing.T) {
	h := &recHandler{}
	gotToken := make(chan struct{}, 1)
	h.onToken = func(sess, seq uint64, tok Token) {
		select {
		case gotToken <- struct{}{}:
		default:
		}
	}
	srv := newTestServer(t, h, ServerConfig{})
	cli := newTestClient(t, srv.Addr(), ClientConfig{
		Session: 4, WaitPoll: 5 * time.Millisecond, TokenResendEvery: 2, DeadPolls: 1000,
	})

	ctx := context.Background()
	if err := cli.SendToken(ctx, Token{Cycle: 0, Live: true}); err != nil {
		t.Fatal(err)
	}
	<-gotToken
	// Deliver the cycle-end only after a stale token re-send proves the
	// recovery path ran: SendCycleEnd stores it, and the NEXT stale token
	// triggers the server-side re-send.
	go func() {
		deadline := time.Now().Add(2 * time.Second)
		for srv.Counters().FramesDropped.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		srv.SendCycleEnd(4, CycleEnd{Cycle: 0})
	}()
	if _, err := cli.WaitCycleEnd(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if cli.ctr.TokenResends.Load() == 0 {
		t.Fatal("cycle-end arrived without any token re-send")
	}
	if srv.Counters().FramesDropped.Load() == 0 {
		t.Fatal("server never saw the stale token re-send")
	}
}

// Reconnect backoff is exponential, capped, and jittered inside [d/2, d].
func TestBackoffShape(t *testing.T) {
	cli, err := NewClient(ClientConfig{
		Addr: "127.0.0.1:1", Session: 9, Seed: 3,
		BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for attempt, want := range []time.Duration{10, 20, 40, 80, 80, 80} {
		wantD := want * time.Millisecond
		d := cli.backoff(attempt)
		if d < wantD/2 || d > wantD {
			t.Fatalf("backoff(%d) = %v outside [%v, %v]", attempt, d, wantD/2, wantD)
		}
	}
}

// Dial failures surface as counted retries, and a context cancellation
// ends the dial loop instead of spinning forever.
func TestConnectFailureAndCancel(t *testing.T) {
	// A listener we immediately close: dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cli := newTestClient(t, addr, ClientConfig{Session: 8, DialTimeout: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := cli.Connect(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Connect = %v, want context deadline", err)
	}
	if cli.ctr.DialFailures.Load() == 0 {
		t.Fatal("no dial failures counted")
	}
}

// collect reads frames from a raw connection until EOF, recording types
// and report sequence numbers.
func collect(t *testing.T, ln net.Listener, types *[]byte, seqs *[]uint64, mu *sync.Mutex, done chan<- struct{}) {
	t.Helper()
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			typ, payload, err := ReadFrame(br, 0)
			if err != nil {
				return
			}
			mu.Lock()
			*types = append(*types, typ)
			if seq, ok := SeqOf(typ, payload); ok {
				*seqs = append(*seqs, seq)
			}
			mu.Unlock()
		}
	}()
}

// The proxy's fates are deterministic per (connection, frame) and the
// injection ledger matches what the target observes.
func TestProxyFates(t *testing.T) {
	newTarget := func(t *testing.T) (net.Listener, *[]byte, *[]uint64, *sync.Mutex, chan struct{}) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		var types []byte
		var seqs []uint64
		var mu sync.Mutex
		done := make(chan struct{})
		collect(t, ln, &types, &seqs, &mu, done)
		return ln, &types, &seqs, &mu, done
	}
	sendReports := func(t *testing.T, addr string, n int) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(Frame(AppendHello(nil, Hello{Version: Version, Session: 1})))
		for i := 1; i <= n; i++ {
			conn.Write(Frame(AppendReport(nil, Report{Seq: uint64(i)})))
		}
		time.Sleep(50 * time.Millisecond) // let the pump drain before EOF
		conn.Close()
	}

	t.Run("drop", func(t *testing.T) {
		ln, types, _, mu, done := newTarget(t)
		p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: ln.Addr().String(), Seed: 1, Drop: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		sendReports(t, p.Addr(), 5)
		<-done
		mu.Lock()
		defer mu.Unlock()
		// Every sequenced frame dropped; only the Hello got through.
		if len(*types) != 1 || (*types)[0] != TypeHello {
			t.Fatalf("target saw %v, want only the hello", *types)
		}
		if got := p.InjDrops.Load(); got != 5 {
			t.Fatalf("InjDrops = %d, want 5", got)
		}
	})

	t.Run("dup", func(t *testing.T) {
		ln, _, seqs, mu, done := newTarget(t)
		p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: ln.Addr().String(), Seed: 1, Dup: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		sendReports(t, p.Addr(), 4)
		<-done
		mu.Lock()
		defer mu.Unlock()
		if len(*seqs) != 8 {
			t.Fatalf("target saw %d sequenced frames, want 8 (each doubled)", len(*seqs))
		}
		if got := p.InjDups.Load(); got != 4 {
			t.Fatalf("InjDups = %d, want 4", got)
		}
	})

	t.Run("reorder", func(t *testing.T) {
		ln, _, seqs, mu, done := newTarget(t)
		p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: ln.Addr().String(), Seed: 1, Reorder: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		sendReports(t, p.Addr(), 4)
		<-done
		mu.Lock()
		defer mu.Unlock()
		// Every odd frame is held one slot: 1,2,3,4 arrives as 2,1,4,3.
		want := []uint64{2, 1, 4, 3}
		if len(*seqs) != 4 {
			t.Fatalf("target saw %d sequenced frames, want 4", len(*seqs))
		}
		for i, s := range *seqs {
			if s != want[i] {
				t.Fatalf("reordered stream = %v, want %v", *seqs, want)
			}
		}
		if got := p.InjReorders.Load(); got != 2 {
			t.Fatalf("InjReorders = %d, want 2", got)
		}
	})

	t.Run("cut", func(t *testing.T) {
		ln, types, _, mu, done := newTarget(t)
		p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: ln.Addr().String(), Seed: 1, Cut: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		sendReports(t, p.Addr(), 3)
		<-done
		mu.Lock()
		defer mu.Unlock()
		// Frame 1 (the hello) is never cut; frame 2 is cut mid-frame, so
		// the target's framer errors out after the hello.
		if len(*types) != 1 || (*types)[0] != TypeHello {
			t.Fatalf("target saw %v, want only the hello before the cut", *types)
		}
		if got := p.InjCuts.Load(); got != 1 {
			t.Fatalf("InjCuts = %d, want 1", got)
		}
	})

	t.Run("partition", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					buf := make([]byte, 1024)
					for {
						if _, err := conn.Read(buf); err != nil {
							conn.Close()
							return
						}
					}
				}()
			}
		}()
		p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: ln.Addr().String(), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(Frame(AppendHello(nil, Hello{Version: Version, Session: 1})))
		deadline := time.Now().Add(2 * time.Second)
		for p.Live() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("pair never registered")
			}
			time.Sleep(time.Millisecond)
		}
		if cut := p.Partition(); cut != 1 {
			t.Fatalf("Partition cut %d pairs, want 1", cut)
		}
		// The severed side sees EOF.
		conn.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("read on a partitioned connection succeeded")
		}
		// New connections are refused (accepted then dropped) while
		// partitioned, and flow again after Heal.
		c2, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c2.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := c2.Read(make([]byte, 1)); err == nil {
			t.Fatal("read on a connection dialed during partition succeeded")
		}
		c2.Close()
		p.Heal()
		c3, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c3.Write(Frame(AppendHello(nil, Hello{Version: Version, Session: 2})))
		deadline = time.Now().Add(2 * time.Second)
		for p.Live() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("healed proxy never forwarded a new connection")
			}
			time.Sleep(time.Millisecond)
		}
		c3.Close()
	})
}

// Config validation and handshake rejection paths.
func TestHandshakeValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("client without Addr accepted")
	}
	if _, err := Serve(ServerConfig{}); err == nil {
		t.Fatal("server without listener/handler accepted")
	}

	h := &recHandler{}
	srv := newTestServer(t, h, ServerConfig{})
	// A connection that opens with a non-Hello frame is rejected.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(Frame(AppendControl(nil, TypePing)))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a connection that never said hello")
	}
	conn.Close()
	// A wrong protocol version is rejected before any state is touched.
	conn, err = net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(Frame(AppendHello(nil, Hello{Version: 99, Session: 1})))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server accepted an unknown protocol version")
	}
	conn.Close()
	h.mu.Lock()
	nHellos := len(h.hellos)
	h.mu.Unlock()
	if nHellos != 0 {
		t.Fatal("rejected handshakes reached the handler")
	}
}
