package transport

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vigil/internal/stats"
)

// ProxyConfig parametrizes a deterministic wire-level fault injector. The
// proxy sits between agents and collector, parses the agent-to-collector
// frame stream, and assigns each frame a fate drawn from a counter-based
// substream — stats.DeriveRNG(Seed, conn<<20|frame) — so a given seed
// yields the same partitions, cuts, drops, duplicates and reorders on
// every run, independent of scheduling.
type ProxyConfig struct {
	// Target is the real collector address; retargetable at runtime for
	// crash/restart tests.
	Target string
	// Seed derives every fate.
	Seed uint64
	// Per-frame fate probabilities, applied (in this precedence) to
	// agent-to-collector frames: Cut kills both directions mid-frame
	// (half the frame is forwarded first); Drop swallows a sequenced
	// frame whole; Reorder holds a sequenced frame back one slot (the
	// following frame overtakes it); Dup forwards a sequenced frame
	// twice. Cuts are never applied to a connection's first frames (so a
	// cut always lands on an established session) nor to a Bye (nothing
	// remains to resume after a goodbye), keeping the Resumes == InjCuts
	// invariant exact; drop/reorder/dup apply only to sequenced frames so
	// handshakes and heartbeats always flow.
	Drop, Dup, Reorder, Cut float64
	// Delay, when positive, sleeps this long before forwarding roughly
	// every 16th frame — enough to exercise timeout paths without
	// stalling the soak.
	Delay time.Duration
	// MaxFrame bounds parsed frames; 0 means DefaultMaxFrame.
	MaxFrame int
}

type proxyPair struct {
	client, server net.Conn
	once           sync.Once
}

func (p *proxyPair) kill() {
	p.once.Do(func() {
		p.client.Close()
		p.server.Close()
	})
}

// Proxy is the running fault injector.
type Proxy struct {
	cfg ProxyConfig
	ln  net.Listener

	target      atomic.Value // string
	partitioned atomic.Bool

	mu     sync.Mutex
	pairs  map[*proxyPair]struct{}
	closed bool

	connIdx atomic.Uint64
	wg      sync.WaitGroup

	// Injection ledger, matched against transport counters by the chaos
	// tests.
	InjDrops    atomic.Int64
	InjDups     atomic.Int64
	InjReorders atomic.Int64
	InjCuts     atomic.Int64
	Forwarded   atomic.Int64
}

// NewProxy starts a fault proxy listening on addr ("127.0.0.1:0" for an
// ephemeral test port).
func NewProxy(addr string, cfg ProxyConfig) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, pairs: make(map[*proxyPair]struct{})}
	p.target.Store(cfg.Target)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what agents dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Retarget points subsequent connections at a new collector address (the
// restarted collector in crash-recovery tests).
func (p *Proxy) Retarget(target string) { p.target.Store(target) }

// Partition refuses new connections and severs live ones until Heal. It
// returns the number of live pairs cut.
func (p *Proxy) Partition() int {
	p.partitioned.Store(true)
	return p.CutAll()
}

// Heal ends a partition.
func (p *Proxy) Heal() { p.partitioned.Store(false) }

// CutAll severs every live pair (counting each as an injected cut) and
// returns how many were cut. Call it in steady state — with sessions
// established — so each cut maps to exactly one resume.
func (p *Proxy) CutAll() int {
	p.mu.Lock()
	pairs := make([]*proxyPair, 0, len(p.pairs))
	for pr := range p.pairs {
		pairs = append(pairs, pr)
	}
	p.mu.Unlock()
	for _, pr := range pairs {
		pr.kill()
	}
	p.InjCuts.Add(int64(len(pairs)))
	return len(pairs)
}

// Live returns the number of live proxied connections.
func (p *Proxy) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pairs)
}

// Close shuts the proxy down, severing everything (without counting the
// severs as injected cuts).
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	pairs := make([]*proxyPair, 0, len(p.pairs))
	for pr := range p.pairs {
		pairs = append(pairs, pr)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, pr := range pairs {
		pr.kill()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.partitioned.Load() {
			conn.Close()
			continue
		}
		idx := p.connIdx.Add(1)
		p.wg.Add(1)
		go p.serve(conn, idx)
	}
}

func (p *Proxy) serve(clientConn net.Conn, idx uint64) {
	defer p.wg.Done()
	serverConn, err := net.DialTimeout("tcp", p.target.Load().(string), 2*time.Second)
	if err != nil {
		clientConn.Close()
		return
	}
	pr := &proxyPair{client: clientConn, server: serverConn}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pr.kill()
		return
	}
	p.pairs[pr] = struct{}{}
	p.mu.Unlock()

	done := func() {
		pr.kill()
		p.mu.Lock()
		delete(p.pairs, pr)
		p.mu.Unlock()
	}
	var half sync.WaitGroup
	half.Add(2)
	// Collector-to-agent direction forwards verbatim: the interesting
	// faults (loss, duplication, reordering of sequenced state) live on
	// the agent-to-collector stream; acks and cycle-ends die with the
	// connection when a cut fate fires, which is fault enough.
	go func() {
		defer half.Done()
		io.Copy(clientConn, serverConn)
		pr.kill()
	}()
	go func() {
		defer half.Done()
		p.pump(pr, idx)
	}()
	half.Wait()
	done()
}

func sequencedType(typ byte) bool {
	return typ == TypeReport || typ == TypeToken
}

// pump relays the agent-to-collector frame stream, applying seeded fates.
func (p *Proxy) pump(pr *proxyPair, idx uint64) {
	br := bufio.NewReader(pr.client)
	var rng stats.RNG
	var held []byte // reorder slot: one frame held back until the next
	var frameIdx uint64
	flushHeld := func() bool {
		if held == nil {
			return true
		}
		_, err := pr.server.Write(held)
		held = nil
		return err == nil
	}
	for {
		typ, payload, err := ReadFrame(br, p.cfg.MaxFrame)
		if err != nil {
			flushHeld()
			pr.kill()
			return
		}
		frameIdx++
		body := make([]byte, 0, 1+len(payload))
		body = append(body, typ)
		body = append(body, payload...)
		framed := Frame(body)
		rng.Derive(p.cfg.Seed, idx<<20|frameIdx)

		if p.cfg.Delay > 0 && frameIdx%16 == 5 {
			time.Sleep(p.cfg.Delay)
		}
		if p.cfg.Cut > 0 && frameIdx >= 2 && typ != TypeBye && rng.Bool(p.cfg.Cut) {
			// Mid-frame cut: half the frame escapes, then the wire dies
			// in both directions. The collector's framer must discard the
			// torn prefix; the agent must resume and replay.
			pr.server.Write(framed[:len(framed)/2])
			p.InjCuts.Add(1)
			pr.kill()
			return
		}
		if sequencedType(typ) {
			if p.cfg.Drop > 0 && rng.Bool(p.cfg.Drop) {
				p.InjDrops.Add(1)
				continue
			}
			if p.cfg.Reorder > 0 && held == nil && rng.Bool(p.cfg.Reorder) {
				p.InjReorders.Add(1)
				held = framed
				continue
			}
		}
		if _, err := pr.server.Write(framed); err != nil {
			pr.kill()
			return
		}
		p.Forwarded.Add(1)
		if !flushHeld() {
			pr.kill()
			return
		}
		if sequencedType(typ) && p.cfg.Dup > 0 && rng.Bool(p.cfg.Dup) {
			p.InjDups.Add(1)
			if _, err := pr.server.Write(framed); err != nil {
				pr.kill()
				return
			}
		}
	}
}
