package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vigil/internal/metrics"
	"vigil/internal/vote"
)

// Handler receives the decoded, deduplicated frame stream. Calls for one
// session are serialized (the per-session processing lock covers the brief
// overlap of an old and a new connection during a resume); calls for
// different sessions are concurrent, so handlers that need a total order
// funnel into a channel.
type Handler interface {
	// OnHello runs once per (re)connection, after the session watermark
	// check but before any of the connection's frames.
	OnHello(sess uint64, h Hello)
	// OnReport delivers one non-stale report.
	OnReport(sess uint64, r vote.Report, attempt uint8)
	// OnToken delivers one non-stale cycle token. seq is the frame's
	// session sequence — the durable mark a Commit may later ack.
	OnToken(sess uint64, seq uint64, t Token)
	// OnBye runs when the session ends cleanly.
	OnBye(sess uint64)
}

// ServerConfig parametrizes a collector-side transport server.
type ServerConfig struct {
	// Listener is the accept socket; required. The server owns it.
	Listener net.Listener
	// Handler receives the frame stream; required.
	Handler Handler
	// Sessions is the number of agent sessions expected to Bye before Done
	// fires. 0 means 1.
	Sessions int
	// CheckpointPath enables crash recovery: Commit writes the durable
	// watermarks there (atomic rename), and Serve loads it so a restarted
	// collector resumes sessions from their last durable state. Empty
	// disables durability (acks then mean "settled", not "settled and on
	// disk").
	CheckpointPath string
	// AppFresh is the application watermark of a fresh (no checkpoint
	// file) start; the ingest collector uses -1 (nothing settled).
	AppFresh int64
	// ReadTimeout bounds the silence tolerated on a connection before it
	// is presumed dead and closed (the session survives; the agent
	// reconnects). Agents heartbeat well inside it. 0 means 15s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each outbound frame write. 0 means 10s.
	WriteTimeout time.Duration
	// Outbox bounds each connection's outbound send window: when it is
	// full the frame is shed (acks are cumulative and cycle-ends are
	// recovered by the token-resend path, so shedding is safe) instead of
	// buffering without bound. 0 means 32.
	Outbox int
	// MaxFrame bounds frame payloads; 0 means DefaultMaxFrame.
	MaxFrame int
	// Counters receives the transport's observable state; one is
	// allocated when nil.
	Counters *metrics.TransportCounters
}

// session is one agent's durable state at the server. It outlives any
// individual connection.
type session struct {
	id uint64

	// procMu serializes frame processing (watermark check + handler call)
	// across the brief overlap of an old and a new connection.
	procMu  sync.Mutex
	recv    uint64 // processed watermark: highest sequenced frame handled
	durable uint64 // durable watermark: highest frame covered by Commit

	mu     sync.Mutex // guards conn/out/gen/lastCE/bye
	conn   net.Conn
	out    chan []byte
	gen    int
	lastCE []byte // framed CycleEnd, re-sent on resume and on stale tokens
	bye    bool
}

// Server accepts resumable agent sessions and feeds their frames to a
// Handler.
type Server struct {
	cfg ServerConfig
	ctr *metrics.TransportCounters
	ln  net.Listener

	mu       sync.Mutex
	sessions map[uint64]*session
	app      int64
	closed   bool
	byes     int

	done chan struct{}
	wg   sync.WaitGroup
}

// Serve builds a server on cfg.Listener, loading the checkpoint (if
// configured) so sessions resume from their durable watermarks, and starts
// accepting.
func Serve(cfg ServerConfig) (*Server, error) {
	if cfg.Listener == nil || cfg.Handler == nil {
		return nil, fmt.Errorf("transport: ServerConfig.Listener and Handler are required")
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 15 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Outbox <= 0 {
		cfg.Outbox = 32
	}
	s := &Server{
		cfg:      cfg,
		ctr:      cfg.Counters,
		ln:       cfg.Listener,
		sessions: make(map[uint64]*session),
		app:      cfg.AppFresh,
		done:     make(chan struct{}),
	}
	if s.ctr == nil {
		s.ctr = &metrics.TransportCounters{}
	}
	if cfg.CheckpointPath != "" {
		cp, err := LoadCheckpoint(cfg.CheckpointPath, cfg.AppFresh)
		if err != nil {
			return nil, err
		}
		s.app = cp.App
		for id, mark := range cp.Sessions {
			s.sessions[id] = &session{id: id, recv: mark, durable: mark}
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AppState returns the application watermark loaded from the checkpoint
// (AppFresh when none existed) — the restarted ingest collector's last
// settled epoch.
func (s *Server) AppState() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.app
}

// SessionIDs returns the IDs of every known session — after Serve, the
// sessions loaded from the checkpoint; later also sessions that connected.
func (s *Server) SessionIDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint64, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	return ids
}

// Done is closed once every expected session has said Bye.
func (s *Server) Done() <-chan struct{} { return s.done }

// Counters returns the live transport counters.
func (s *Server) Counters() *metrics.TransportCounters { return s.ctr }

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// acceptLoop accepts until the listener closes. Transient accept errors
// (EMFILE, ECONNABORTED, ...) are retried with capped exponential backoff
// rather than killing the collector's front door.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := time.Millisecond
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.ctr.AcceptRetries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = time.Millisecond
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// sessionFor returns (creating if needed) the session record for id.
func (s *Server) sessionFor(id uint64) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		sess = &session{id: id}
		s.sessions[id] = sess
	}
	return sess
}

// attach makes conn the session's live connection: any previous connection
// is closed (its reader and writer unwind), a fresh bounded outbox and
// writer start, and the handshake answer plus any pending cycle-end are
// queued.
func (s *Server) attach(sess *session, conn net.Conn) (gen int) {
	sess.procMu.Lock()
	resume := sess.recv
	sess.procMu.Unlock()

	sess.mu.Lock()
	durable := sess.durable
	if sess.conn != nil {
		sess.conn.Close()
		close(sess.out) // the old writer drains and exits
	} else {
		s.ctr.SessionsConnected.Add(1)
	}
	sess.gen++
	gen = sess.gen
	sess.conn = conn
	sess.out = make(chan []byte, s.cfg.Outbox)
	out := sess.out
	lastCE := sess.lastCE
	sess.mu.Unlock()

	s.wg.Add(1)
	go s.writer(conn, out)

	s.enqueue(sess, gen, Frame(AppendHelloAck(nil, HelloAck{Resume: resume, Durable: durable})))
	if lastCE != nil {
		// The cycle may have ended while the agent was away; the stale
		// re-send is ignored by an agent that already saw it.
		s.enqueue(sess, gen, lastCE)
		s.ctr.CycleEndsSent.Add(1)
	}
	return gen
}

// detach clears the session's live connection if it is still generation
// gen, closing its outbox so the writer goroutine exits.
func (s *Server) detach(sess *session, gen int) {
	sess.mu.Lock()
	if sess.gen == gen && sess.conn != nil {
		sess.conn.Close()
		close(sess.out)
		sess.conn = nil
		sess.out = nil
		s.ctr.SessionsConnected.Add(-1)
	}
	sess.mu.Unlock()
}

// enqueue offers a framed message to the session's current outbox (if the
// connection generation still matches); a full outbox sheds the frame —
// bounded memory beats unbounded buffering, and every shed frame is
// recoverable (acks are cumulative, cycle-ends ride the token-resend
// path, pongs are heartbeats).
func (s *Server) enqueue(sess *session, gen int, framed []byte) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.conn == nil || (gen >= 0 && sess.gen != gen) {
		return
	}
	select {
	case sess.out <- framed:
	default:
		s.ctr.SendWindowDrops.Add(1)
	}
}

// writer drains one connection's outbox onto the socket.
func (s *Server) writer(conn net.Conn, out chan []byte) {
	defer s.wg.Done()
	for framed := range out {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := conn.Write(framed); err != nil {
			conn.Close() // unwinds the reader; the agent reconnects
			// Keep draining so enqueuers never block on a dead conn.
			for range out {
			}
			return
		}
	}
}

// handle runs one connection: handshake, then the frame loop.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReader(conn)

	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	typ, payload, err := ReadFrame(br, s.cfg.MaxFrame)
	if err != nil || typ != TypeHello {
		conn.Close()
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil || hello.Version != Version {
		conn.Close()
		return
	}
	sess := s.sessionFor(hello.Session)
	gen := s.attach(sess, conn)
	defer s.detach(sess, gen)
	s.cfg.Handler.OnHello(hello.Session, hello)

	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		typ, payload, err := ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			return
		}
		switch typ {
		case TypeReport:
			f, err := DecodeReport(payload)
			if err != nil {
				return
			}
			sess.procMu.Lock()
			if f.Seq <= sess.recv {
				sess.procMu.Unlock()
				s.ctr.FramesDropped.Add(1)
				continue
			}
			sess.recv = f.Seq
			s.ctr.FramesReceived.Add(1)
			s.cfg.Handler.OnReport(sess.id, f.R, f.Attempt)
			sess.procMu.Unlock()
		case TypeToken:
			t, err := DecodeToken(payload)
			if err != nil {
				return
			}
			sess.procMu.Lock()
			if t.Seq <= sess.recv {
				sess.procMu.Unlock()
				s.ctr.FramesDropped.Add(1)
				// A re-sent token means the agent never saw the cycle-end;
				// re-send the newest one.
				sess.mu.Lock()
				lastCE := sess.lastCE
				sess.mu.Unlock()
				if lastCE != nil {
					s.enqueue(sess, gen, lastCE)
					s.ctr.CycleEndsSent.Add(1)
				}
				continue
			}
			sess.recv = t.Seq
			s.ctr.FramesReceived.Add(1)
			s.cfg.Handler.OnToken(sess.id, t.Seq, t)
			sess.procMu.Unlock()
		case TypePing:
			s.enqueue(sess, gen, Frame(AppendControl(nil, TypePong)))
		case TypeBye:
			s.bye(sess)
			return
		default:
			// Unknown frame from a same-version client: protocol error.
			return
		}
	}
}

func (s *Server) bye(sess *session) {
	sess.mu.Lock()
	first := !sess.bye
	sess.bye = true
	sess.mu.Unlock()
	if !first {
		return
	}
	s.cfg.Handler.OnBye(sess.id)
	s.mu.Lock()
	s.byes++
	fire := s.byes == s.cfg.Sessions && !s.closed
	s.mu.Unlock()
	if fire {
		close(s.done)
	}
}

// SendCycleEnd records ce as the session's newest cycle-end and offers it
// to the live connection. The record is what makes cycle-ends loss-proof:
// it is re-sent on resume and whenever a stale token re-send signals the
// agent missed it.
func (s *Server) SendCycleEnd(sessID uint64, ce CycleEnd) {
	sess := s.sessionFor(sessID)
	framed := Frame(AppendCycleEnd(nil, ce))
	sess.mu.Lock()
	sess.lastCE = framed
	sess.mu.Unlock()
	s.enqueue(sess, -1, framed)
	s.ctr.CycleEndsSent.Add(1)
}

// Commit advances durability: app is the new application watermark (the
// ingest collector's last settled epoch) and marks gives, per session, the
// frame sequence now fully reflected in settled state. The checkpoint is
// written (atomically) BEFORE watermarks advance or acks go out, so an
// acked frame is always recoverable: either it is reflected in the
// checkpoint the restarted collector loads, or the agent still holds it.
func (s *Server) Commit(app int64, marks map[uint64]uint64) error {
	s.mu.Lock()
	s.app = app
	snapshot := make(map[uint64]*session, len(s.sessions))
	for id, sess := range s.sessions {
		snapshot[id] = sess
	}
	s.mu.Unlock()
	if s.cfg.CheckpointPath != "" {
		cp := Checkpoint{V: 1, App: app, Sessions: make(map[uint64]uint64, len(snapshot))}
		for id, sess := range snapshot {
			sess.mu.Lock()
			d := sess.durable
			sess.mu.Unlock()
			if mark, ok := marks[id]; ok && mark > d {
				d = mark
			}
			cp.Sessions[id] = d
		}
		if err := cp.Save(s.cfg.CheckpointPath); err != nil {
			return err
		}
		s.ctr.Checkpoints.Add(1)
		s.ctr.CheckpointUnixNano.Store(time.Now().UnixNano())
	}
	for id, mark := range marks {
		sess := s.sessionFor(id)
		sess.mu.Lock()
		if mark > sess.durable {
			sess.durable = mark
		}
		durable := sess.durable
		sess.mu.Unlock()
		s.enqueue(sess, -1, Frame(AppendAck(nil, Ack{Durable: durable})))
		s.ctr.AcksSent.Add(1)
	}
	return nil
}

// Close shuts the listener and every connection down and waits for the
// server's goroutines. Session state is NOT checkpointed here — durability
// is Commit's job — so closing a server without a final Commit is exactly
// the crash the recovery path handles.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.conn != nil {
			sess.conn.Close()
		}
		sess.mu.Unlock()
	}
	// Closing a conn unwinds its reader, whose deferred detach closes the
	// outbox, which lets the writer exit; the re-close loop below catches
	// any connection that attached between the snapshot and ln.Close.
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return err
		case <-time.After(10 * time.Millisecond):
			s.mu.Lock()
			for _, sess := range s.sessions {
				sess.mu.Lock()
				if sess.conn != nil {
					sess.conn.Close()
				}
				sess.mu.Unlock()
			}
			s.mu.Unlock()
		}
	}
}
