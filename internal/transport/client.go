package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"

	"vigil/internal/metrics"
	"vigil/internal/stats"
	"vigil/internal/vote"
)

// ClientConfig parametrizes one agent-side resumable session.
type ClientConfig struct {
	// Addr is the collector (or fault proxy) address; required.
	Addr string
	// Session identifies this agent session across reconnects; required
	// to be stable for the life of the ingest run.
	Session uint64
	// ThresholdFrac and MaxLinks ride the Hello frame so the collector
	// can validate engine-configuration agreement.
	ThresholdFrac float64
	MaxLinks      int32
	// DialTimeout bounds each TCP dial. 0 means 5s.
	DialTimeout time.Duration
	// IOTimeout bounds each frame write, the handshake read, and how long
	// a frame may stay partially read before the connection is presumed
	// dead. 0 means 10s.
	IOTimeout time.Duration
	// WaitPoll is the read-poll granularity while waiting for a
	// cycle-end: each expiry sends a heartbeat and every few expiries
	// re-sends the cycle token (recovering a lost cycle-end). 0 means
	// 250ms.
	WaitPoll time.Duration
	// TokenResendEvery is the number of WaitPoll expiries between token
	// re-sends. 0 means 4.
	TokenResendEvery int
	// DeadPolls is the number of consecutive silent polls after which the
	// connection is presumed dead and rebuilt. 0 means 40.
	DeadPolls int
	// BackoffBase/BackoffMax shape the reconnect backoff (exponential,
	// seeded jitter). 0 means 20ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed derives the jitter substream (stats.DeriveRNG), keeping chaos
	// runs reproducible.
	Seed uint64
	// Window bounds the unacknowledged-frame buffer: the client refuses
	// to race further ahead of the collector's durable watermark. 0 means
	// 1<<16 frames.
	Window int
	// MaxFrame bounds inbound frame payloads; 0 means DefaultMaxFrame.
	MaxFrame int
	// Dial overrides the dialer (tests route through in-process proxies).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Counters receives the transport's observable state; one is
	// allocated when nil.
	Counters *metrics.TransportCounters
}

type bufFrame struct {
	seq    uint64
	framed []byte
}

// Client is one resumable agent session. It is synchronous and
// single-goroutine by design: the ingest agent loop alternates
// SendReport/SendToken with WaitCycleEnd, mirroring the lockstep cycle
// protocol, and every method transparently reconnects and replays on
// connection loss. Not safe for concurrent use.
type Client struct {
	cfg ClientConfig
	ctr *metrics.TransportCounters

	conn net.Conn
	br   *bufio.Reader

	nextSeq     uint64     // last assigned sequence number
	buf         []bufFrame // sequenced frames not yet durably acked
	durable     uint64     // collector's durable watermark
	established bool       // a handshake has completed at least once

	lastToken      []byte // framed copy of the newest token, for re-sends
	lastTokenCycle int32

	jitterN uint64
}

// NewClient builds a session; no connection is made until the first send
// (or an explicit Connect).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("transport: ClientConfig.Addr is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	if cfg.WaitPoll <= 0 {
		cfg.WaitPoll = 250 * time.Millisecond
	}
	if cfg.TokenResendEvery <= 0 {
		cfg.TokenResendEvery = 4
	}
	if cfg.DeadPolls <= 0 {
		cfg.DeadPolls = 40
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 20 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 1 << 16
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	c := &Client{cfg: cfg, ctr: cfg.Counters}
	if c.ctr == nil {
		c.ctr = &metrics.TransportCounters{}
	}
	return c, nil
}

// Counters returns the live transport counters.
func (c *Client) Counters() *metrics.TransportCounters { return c.ctr }

// Durable returns the collector's durable watermark as last acknowledged.
func (c *Client) Durable() uint64 { return c.durable }

// Buffered returns the number of frames held for potential replay.
func (c *Client) Buffered() int { return len(c.buf) }

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// onAck trims the replay buffer up to the collector's durable watermark —
// the ONLY place frames leave the buffer. Trimming on anything weaker
// (say, the resume watermark) would lose frames if the collector crashed
// between processing and checkpointing them.
func (c *Client) onAck(durable uint64) {
	if durable <= c.durable {
		return
	}
	c.durable = durable
	i := 0
	for i < len(c.buf) && c.buf[i].seq <= durable {
		i++
	}
	if i > 0 {
		c.buf = c.buf[:copy(c.buf, c.buf[i:])]
	}
}

func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 0; i < attempt && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	// Seeded full-jitter on the top half keeps herds apart without
	// sacrificing reproducibility.
	c.jitterN++
	rng := stats.DeriveRNG(c.cfg.Seed, c.cfg.Session<<32|c.jitterN)
	return d/2 + time.Duration(rng.Intn(int(d/2)+1))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Connect establishes (or re-establishes) the session: dial with backoff,
// handshake, replay everything past the collector's resume watermark. The
// replayed frames STAY buffered until a durable ack covers them.
func (c *Client) Connect(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
dialing:
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			if err := sleepCtx(ctx, c.backoff(attempt-1)); err != nil {
				return err
			}
		}
		c.ctr.Dials.Add(1)
		conn, err := c.cfg.Dial(c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			c.ctr.DialFailures.Add(1)
			continue
		}
		if c.established {
			c.ctr.Reconnects.Add(1)
		}
		conn.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout))
		hello := Hello{Version: Version, Session: c.cfg.Session,
			ThresholdFrac: c.cfg.ThresholdFrac, MaxLinks: c.cfg.MaxLinks}
		if _, err := conn.Write(Frame(AppendHello(nil, hello))); err != nil {
			conn.Close()
			c.ctr.DialFailures.Add(1)
			continue
		}
		br := bufio.NewReader(conn)
		conn.SetReadDeadline(time.Now().Add(c.cfg.IOTimeout))
		typ, payload, err := ReadFrame(br, c.cfg.MaxFrame)
		if err != nil || typ != TypeHelloAck {
			conn.Close()
			c.ctr.DialFailures.Add(1)
			continue
		}
		ack, err := DecodeHelloAck(payload)
		if err != nil {
			conn.Close()
			c.ctr.DialFailures.Add(1)
			continue
		}
		if c.established {
			c.ctr.Resumes.Add(1)
		}
		// Replay every buffered frame the collector has not processed.
		for _, f := range c.buf {
			if f.seq <= ack.Resume {
				continue
			}
			conn.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout))
			if _, err := conn.Write(f.framed); err != nil {
				conn.Close()
				continue dialing
			}
			c.ctr.FramesResent.Add(1)
		}
		c.conn = conn
		c.br = br
		c.established = true
		c.onAck(ack.Durable)
		return nil
	}
}

// send buffers a sequenced frame and puts it on the wire, reconnecting
// (which replays it) on any write failure.
func (c *Client) send(ctx context.Context, framed []byte, seq uint64) error {
	if len(c.buf) >= c.cfg.Window {
		return fmt.Errorf("transport: session %d send window full (%d unacked frames)",
			c.cfg.Session, len(c.buf))
	}
	c.buf = append(c.buf, bufFrame{seq: seq, framed: framed})
	c.ctr.FramesSent.Add(1)
	if c.conn == nil {
		return c.Connect(ctx)
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout))
	if _, err := c.conn.Write(framed); err != nil {
		c.dropConn()
		return c.Connect(ctx)
	}
	return nil
}

// SendReport ships one vote report on the session's FIFO lane.
func (c *Client) SendReport(ctx context.Context, r vote.Report, attempt uint8) error {
	c.nextSeq++
	framed := Frame(AppendReport(nil, Report{Seq: c.nextSeq, Attempt: attempt, R: r}))
	return c.send(ctx, framed, c.nextSeq)
}

// SendToken ships the cycle token that closes this agent's lane for the
// cycle; a framed copy is kept so WaitCycleEnd can re-send it (same
// sequence number — the collector treats the re-send as a stale frame and
// answers with the newest cycle-end).
func (c *Client) SendToken(ctx context.Context, t Token) error {
	c.nextSeq++
	t.Seq = c.nextSeq
	framed := Frame(AppendToken(nil, t))
	c.lastToken = framed
	c.lastTokenCycle = t.Cycle
	return c.send(ctx, framed, c.nextSeq)
}

// WaitCycleEnd blocks until the collector ends cycle (processing acks and
// heartbeats along the way). Lost cycle-ends are recovered by periodically
// re-sending the cycle token; a silent connection is eventually presumed
// dead and rebuilt.
func (c *Client) WaitCycleEnd(ctx context.Context, cycle int32) (CycleEnd, error) {
	// polls counts consecutive silent reads (reset by ANY inbound frame —
	// it detects a dead connection); ticks counts every timeout since the
	// wait began and drives the token-resend cadence. Keeping them separate
	// matters: a server answering pings resets polls on every pong, and a
	// resend cadence keyed to polls would then never fire — a cycle-end
	// shed from a full outbox would be lost forever on a healthy wire.
	polls, ticks := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return CycleEnd{}, err
		}
		if c.conn == nil {
			if err := c.Connect(ctx); err != nil {
				return CycleEnd{}, err
			}
			polls = 0
		}
		// Peek under the poll deadline: a timeout here has consumed no
		// bytes, so the frame stream stays in sync.
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.WaitPoll))
		_, err := c.br.Peek(1)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				polls++
				ticks++
				if polls >= c.cfg.DeadPolls {
					c.dropConn()
					continue
				}
				if ticks%c.cfg.TokenResendEvery == 0 && c.lastToken != nil {
					c.conn.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout))
					if _, werr := c.conn.Write(c.lastToken); werr != nil {
						c.dropConn()
						continue
					}
					c.ctr.TokenResends.Add(1)
				} else {
					c.conn.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout))
					if _, werr := c.conn.Write(Frame(AppendControl(nil, TypePing))); werr != nil {
						c.dropConn()
						continue
					}
					c.ctr.Pings.Add(1)
				}
				continue
			}
			c.dropConn()
			continue
		}
		// Data is ready; read the whole frame under the IO deadline — a
		// frame stuck half-delivered past it means a dead connection.
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.IOTimeout))
		typ, payload, err := ReadFrame(c.br, c.cfg.MaxFrame)
		if err != nil {
			c.dropConn()
			continue
		}
		polls = 0
		switch typ {
		case TypeAck:
			a, err := DecodeAck(payload)
			if err != nil {
				c.dropConn()
				continue
			}
			c.onAck(a.Durable)
		case TypeCycleEnd:
			ce, err := DecodeCycleEnd(payload)
			if err != nil {
				c.dropConn()
				continue
			}
			if ce.Cycle == cycle {
				return ce, nil
			}
			// Stale cycle-end from a re-send race: ignore.
		case TypePong, TypeHelloAck:
			// Heartbeat answer / duplicate handshake echo: ignore.
		default:
			c.dropConn()
		}
	}
}

// Close says goodbye (best effort) and drops the connection. The replay
// buffer is discarded: Close is for a session whose every frame has been
// durably acknowledged (or abandoned on purpose).
func (c *Client) Close() error {
	if c.conn != nil {
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout))
		c.conn.Write(Frame(AppendControl(nil, TypeBye)))
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
	return nil
}
