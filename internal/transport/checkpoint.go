package transport

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is the collector's durable state: an opaque application
// watermark (the ingest collector stores its last settled epoch there) and
// each session's durable frame-sequence watermark. Everything else the
// collector needs to resume mid-cycle — open epochs' reports, cycle
// tokens, ground-truth summaries — is reconstructed by session replay:
// agents buffer every sequenced frame until it is durably acknowledged,
// and durable acknowledgements advance only to watermarks recorded here.
// The checkpoint is therefore deliberately tiny and O(sessions), not
// O(in-flight reports).
type Checkpoint struct {
	V        int               `json:"v"`
	App      int64             `json:"app"`
	Sessions map[uint64]uint64 `json:"sessions"`
}

// LoadCheckpoint reads a checkpoint file. A missing file is a fresh start,
// not an error: it returns an empty checkpoint with App = fresh.
func LoadCheckpoint(path string, fresh int64) (Checkpoint, error) {
	cp := Checkpoint{V: 1, App: fresh, Sessions: map[uint64]uint64{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cp, nil
	}
	if err != nil {
		return cp, fmt.Errorf("transport: reading checkpoint: %w", err)
	}
	var got Checkpoint
	if err := json.Unmarshal(data, &got); err != nil {
		return cp, fmt.Errorf("transport: decoding checkpoint %s: %w", path, err)
	}
	if got.V != 1 {
		return cp, fmt.Errorf("transport: checkpoint %s has unknown version %d", path, got.V)
	}
	if got.Sessions == nil {
		got.Sessions = map[uint64]uint64{}
	}
	return got, nil
}

// Save writes the checkpoint atomically: a temp file in the same directory
// fsynced and renamed over the target, so a crash mid-write leaves the
// previous checkpoint intact.
func (cp Checkpoint) Save(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("transport: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("transport: writing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("transport: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("transport: committing checkpoint: %w", err)
	}
	return nil
}
