package transport

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vigil/internal/topology"
	"vigil/internal/vote"
)

// reframe pushes an encoded body through the wire path — Frame, then
// ReadFrame — and returns the decoded type and payload.
func reframe(t *testing.T, body []byte) (byte, []byte) {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(Frame(body)))
	typ, payload, err := ReadFrame(br, 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return typ, payload
}

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{Version: Version, Session: 1<<40 + 7, ThresholdFrac: 0.8125, MaxLinks: 5}
	typ, payload := reframe(t, AppendHello(nil, in))
	if typ != TypeHello {
		t.Fatalf("type = %d, want TypeHello", typ)
	}
	out, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed Hello: %+v -> %+v", in, out)
	}
}

func TestHelloAckAckRoundTrip(t *testing.T) {
	ha := HelloAck{Resume: 42, Durable: 17}
	typ, payload := reframe(t, AppendHelloAck(nil, ha))
	if typ != TypeHelloAck {
		t.Fatalf("type = %d, want TypeHelloAck", typ)
	}
	if got, err := DecodeHelloAck(payload); err != nil || got != ha {
		t.Fatalf("HelloAck round trip: %+v, %v", got, err)
	}
	a := Ack{Durable: 1 << 33}
	typ, payload = reframe(t, AppendAck(nil, a))
	if typ != TypeAck {
		t.Fatalf("type = %d, want TypeAck", typ)
	}
	if got, err := DecodeAck(payload); err != nil || got != a {
		t.Fatalf("Ack round trip: %+v, %v", got, err)
	}
}

// Report frames must preserve the full vote identity — including the
// nil-vs-empty distinction on Path, which the bit-identity contract
// depends on.
func TestReportRoundTrip(t *testing.T) {
	cases := []Report{
		{Seq: 1, Attempt: 0, R: vote.Report{
			FlowID: 99, Src: 3, Dst: 7, Retx: 2, Epoch: 4, Seq: 11,
			Path: []topology.LinkID{1, 5, 9},
		}},
		{Seq: 2, Attempt: 3, R: vote.Report{
			FlowID: -1, Src: 0, Dst: 1, Partial: true, Epoch: 0, Seq: 0,
			Path: nil,
		}},
		{Seq: 3, R: vote.Report{Path: []topology.LinkID{}}},
	}
	for i, in := range cases {
		typ, payload := reframe(t, AppendReport(nil, in))
		if typ != TypeReport {
			t.Fatalf("case %d: type = %d, want TypeReport", i, typ)
		}
		out, err := DecodeReport(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("case %d: round trip changed Report:\n in %+v\nout %+v", i, in, out)
		}
		if (out.R.Path == nil) != (in.R.Path == nil) {
			t.Fatalf("case %d: Path nil-ness not preserved", i)
		}
	}
}

// Token frames carry the expected counts and the full epoch summary,
// preserving the nil-ness of FailedLinks and Truth.
func TestTokenRoundTrip(t *testing.T) {
	cases := []Token{
		{Seq: 9, Cycle: 2, Live: false},
		{Seq: 10, Cycle: 3, Live: true,
			Counts:  []AgentCount{{Agent: 1, N: 4}, {Agent: 6, N: 0}},
			Summary: &EpochSummary{Epoch: 3, TotalFlows: 40, FailedFlows: 3, TotalDrops: 17}},
		{Seq: 11, Cycle: 4, Live: true,
			Summary: &EpochSummary{
				Epoch: 4, HasFailed: true,
				FailedLinks: []topology.LinkID{3, 8},
				HasTruth:    true,
				Truth: []TruthEntry{
					{FlowID: 5, Culprit: 3, CrossedFailure: true},
					{FlowID: 9, Culprit: -1},
				},
			}},
		{Seq: 12, Cycle: 5, Live: true,
			Summary: &EpochSummary{Epoch: 5, HasFailed: true, FailedLinks: []topology.LinkID{}, HasTruth: true, Truth: []TruthEntry{}}},
	}
	for i, in := range cases {
		typ, payload := reframe(t, AppendToken(nil, in))
		if typ != TypeToken {
			t.Fatalf("case %d: type = %d, want TypeToken", i, typ)
		}
		out, err := DecodeToken(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("case %d: round trip changed Token:\n in %+v\nout %+v", i, in, out)
		}
	}
}

func TestCycleEndRoundTrip(t *testing.T) {
	cases := []CycleEnd{
		{Cycle: 0},
		{Cycle: 7, Retries: []RetryReq{
			{Agent: 2, Epoch: 5, Seq: 3, Attempt: 1},
			{Agent: 9, Epoch: 6, Seq: 0, Attempt: 2},
		}},
	}
	for i, in := range cases {
		typ, payload := reframe(t, AppendCycleEnd(nil, in))
		if typ != TypeCycleEnd {
			t.Fatalf("case %d: type = %d, want TypeCycleEnd", i, typ)
		}
		out, err := DecodeCycleEnd(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("case %d: round trip changed CycleEnd:\n in %+v\nout %+v", i, in, out)
		}
	}
}

// Malformed payloads must decode to errors, never to silently-wrong
// values: truncation anywhere, trailing garbage, a count that promises
// more entries than the payload can hold, and a present count with an
// absent nil flag.
func TestDecodeMalformed(t *testing.T) {
	hello := AppendHello(nil, Hello{Version: 1, Session: 3})[1:]
	report := AppendReport(nil, Report{Seq: 1, R: vote.Report{Path: []topology.LinkID{1, 2}}})[1:]
	token := AppendToken(nil, Token{Seq: 2, Cycle: 1, Live: true,
		Counts: []AgentCount{{Agent: 1, N: 2}}, Summary: &EpochSummary{Epoch: 1}})[1:]
	ce := AppendCycleEnd(nil, CycleEnd{Cycle: 1, Retries: []RetryReq{{Agent: 1}}})[1:]

	// Truncation at every prefix length must error, not misdecode.
	for name, tc := range map[string]struct {
		payload []byte
		dec     func([]byte) error
	}{
		"hello":    {hello, func(b []byte) error { _, err := DecodeHello(b); return err }},
		"report":   {report, func(b []byte) error { _, err := DecodeReport(b); return err }},
		"token":    {token, func(b []byte) error { _, err := DecodeToken(b); return err }},
		"cycleEnd": {ce, func(b []byte) error { _, err := DecodeCycleEnd(b); return err }},
	} {
		for n := 0; n < len(tc.payload); n++ {
			if err := tc.dec(tc.payload[:n]); err == nil {
				t.Errorf("%s truncated to %d bytes decoded cleanly", name, n)
			}
		}
		if err := tc.dec(append(append([]byte{}, tc.payload...), 0xFF)); err == nil {
			t.Errorf("%s with a trailing byte decoded cleanly", name)
		}
	}

	// A count field promising far more entries than the payload holds must
	// be rejected before any allocation is attempted.
	huge := appendU64(nil, 1) // seq
	huge = appendI32(huge, 0) // cycle
	huge = appendBool(huge, true)
	huge = appendU32(huge, 1<<30) // counts: absurd
	if _, err := DecodeToken(huge); err == nil {
		t.Error("token with absurd count decoded cleanly")
	}

	// Path count > 0 with the nil flag unset is a contradiction.
	bad := appendU64(nil, 1) // seq
	bad = appendU8(bad, 0)   // attempt
	bad = appendI64(bad, 0)  // flow
	bad = appendI32(bad, 0)  // src
	bad = appendI32(bad, 0)  // dst
	bad = appendI32(bad, 0)  // retx
	bad = appendBool(bad, false)
	bad = appendI32(bad, 0)      // epoch
	bad = appendI32(bad, 0)      // seq
	bad = appendBool(bad, false) // path nil
	bad = appendU16(bad, 3)      // ...but 3 entries
	bad = appendI32(bad, 1)
	bad = appendI32(bad, 2)
	bad = appendI32(bad, 3)
	if _, err := DecodeReport(bad); err == nil {
		t.Error("report with nil path flag but nonzero count decoded cleanly")
	}
}

func TestReadFrameBounds(t *testing.T) {
	// Zero-length frame: no type byte, protocol violation.
	br := bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 0}))
	if _, _, err := ReadFrame(br, 0); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversize length prefix.
	br = bufio.NewReader(bytes.NewReader(Frame(make([]byte, 100))))
	if _, _, err := ReadFrame(br, 50); err == nil {
		t.Error("frame above maxFrame accepted")
	}
	// Torn frame: the length promises more than the stream holds — exactly
	// what a mid-frame cut produces.
	whole := Frame(AppendControl(nil, TypePing))
	br = bufio.NewReader(bytes.NewReader(whole[:len(whole)-1]))
	if _, _, err := ReadFrame(br, 0); err == nil {
		t.Error("torn frame accepted")
	}
	// WriteFrame and Frame must produce identical bytes.
	var buf bytes.Buffer
	body := AppendHelloAck(nil, HelloAck{Resume: 5})
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), Frame(body)) {
		t.Error("WriteFrame and Frame disagree")
	}
}

func TestSeqOf(t *testing.T) {
	rep := AppendReport(nil, Report{Seq: 77})
	if seq, ok := SeqOf(rep[0], rep[1:]); !ok || seq != 77 {
		t.Fatalf("SeqOf(report) = %d, %v", seq, ok)
	}
	tok := AppendToken(nil, Token{Seq: 78})
	if seq, ok := SeqOf(tok[0], tok[1:]); !ok || seq != 78 {
		t.Fatalf("SeqOf(token) = %d, %v", seq, ok)
	}
	if _, ok := SeqOf(TypePing, nil); ok {
		t.Fatal("SeqOf accepted a control frame")
	}
	if _, ok := SeqOf(TypeReport, []byte{1, 2}); ok {
		t.Fatal("SeqOf accepted a truncated payload")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")

	// Missing file: a fresh start with the caller's watermark, not an error.
	cp, err := LoadCheckpoint(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if cp.App != -1 || len(cp.Sessions) != 0 {
		t.Fatalf("fresh checkpoint = %+v", cp)
	}

	in := Checkpoint{V: 1, App: 41, Sessions: map[uint64]uint64{3: 900, 9: 12}}
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	out, err := LoadCheckpoint(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip changed checkpoint: %+v -> %+v", in, out)
	}

	// Overwrites are atomic renames: the new state fully replaces the old.
	in.App = 42
	in.Sessions[3] = 1000
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	if out, _ = LoadCheckpoint(path, -1); out.App != 42 || out.Sessions[3] != 1000 {
		t.Fatalf("overwrite not visible: %+v", out)
	}

	// Corrupt JSON and unknown versions are hard errors — resuming from
	// garbage would silently break exactly-once settlement.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, -1); err == nil {
		t.Error("corrupt checkpoint loaded cleanly")
	}
	if err := os.WriteFile(path, []byte(`{"v":99,"app":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, -1); err == nil {
		t.Error("unknown-version checkpoint loaded cleanly")
	}
}
