// Package transport is the networked ingest boundary: a length-prefixed
// binary framed protocol that carries the ingest sequencing identity —
// agent ID, epoch, per-agent sequence, cycle tokens with expected-count
// headers — end to end over TCP, between vigil-agents-style reporters and
// a vigild collector.
//
// The robustness model has two layers with a sharp division of labor:
//
//   - The transport layer provides resumable, in-order, at-most-once
//     delivery per session. Every data frame carries a session-scoped
//     sequence number; the collector keeps a per-session processed
//     watermark (stale frames are dropped, never double-delivered) and a
//     durable watermark (advanced only when the covered epochs have
//     settled and, if configured, been checkpointed to disk). An agent
//     buffers every sequenced frame until it is durably acknowledged, so a
//     reconnect — after a partition, a mid-frame cut, or a collector crash
//     — replays exactly the frames the collector's current state has not
//     absorbed. A partition therefore never loses or duplicates a report.
//
//   - The ingest layer above (internal/ingest) provides exactly-once epoch
//     settlement: per-agent sequence-gap detection, duplicate suppression,
//     bounded retry, and the grace-window watermark. Wire-level frame loss
//     injected between the watermarks (a lossy middlebox, the chaos proxy)
//     surfaces as ingest-level gaps and is recovered by ingest's
//     end-to-end re-requests — or accounted as Lost, never silently.
//
// Liveness is explicit on both ends: agents heartbeat while waiting on the
// collector and re-send their cycle token when a cycle-end goes missing;
// both ends run read/write deadlines so a hung peer surfaces as a
// reconnect, not a stuck pipeline. proxy.go provides a deterministic
// wire-level fault injector for reproducible chaos tests.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"vigil/internal/topology"
	"vigil/internal/vote"
)

// Version is the protocol version carried in every Hello.
const Version = 1

// Frame types. Report and Token are "sequenced": they carry a
// session-scoped sequence number, are buffered by the sender until durably
// acknowledged, and are deduplicated by the receiver's watermark. The rest
// are control frames.
const (
	TypeHello    byte = 1 // client→server: open or resume a session
	TypeHelloAck byte = 2 // server→client: resume point
	TypeReport   byte = 3 // client→server: one vote report (sequenced)
	TypeToken    byte = 4 // client→server: end-of-cycle token (sequenced)
	TypeAck      byte = 5 // server→client: durable cumulative acknowledgement
	TypeCycleEnd byte = 6 // server→client: cycle complete + retry requests
	TypePing     byte = 7 // client→server: liveness probe
	TypePong     byte = 8 // server→client: liveness answer
	TypeBye      byte = 9 // client→server: clean end of session
)

// DefaultMaxFrame bounds a frame's payload; a length prefix beyond it is a
// protocol violation (or line noise) and kills the connection.
const DefaultMaxFrame = 1 << 22

// Hello opens (or resumes) a session. ThresholdFrac and MaxLinks carry the
// engine's Algorithm 1 parameters so the collector's analysis of settled
// epochs is bit-identical to the agent-side batch engine's.
type Hello struct {
	Version       uint8
	Session       uint64
	ThresholdFrac float64
	MaxLinks      int32
}

// HelloAck answers a Hello: the server has processed every sequenced frame
// up to Resume, so the client replays only frames after it. Durable is the
// server's durable watermark; frames at or below it may be forgotten.
type HelloAck struct {
	Resume  uint64
	Durable uint64
}

// Report is one sequenced vote report.
type Report struct {
	Seq     uint64
	Attempt uint8
	R       vote.Report
}

// AgentCount is one agent's expected report count for one epoch, the
// header gap detection runs on.
type AgentCount struct {
	Agent topology.HostID
	N     int32
}

// TruthEntry is one flow's ground truth in an epoch summary.
type TruthEntry struct {
	FlowID         int64
	Culprit        topology.LinkID
	CrossedFailure bool
}

// EpochSummary is the epoch's ground truth and totals, shipped with the
// cycle token so the collector can settle the epoch into a complete
// EpochResult without sharing memory with the engine.
type EpochSummary struct {
	Epoch       int32
	TotalFlows  int32
	FailedFlows int32
	TotalDrops  int32
	// HasFailed/HasTruth preserve nil-ness across the wire so fault-free
	// networked results compare bit-identical to in-process ones.
	HasFailed   bool
	FailedLinks []topology.LinkID
	HasTruth    bool
	Truth       []TruthEntry // sorted by FlowID
}

// Token ends one cycle on a session: the per-agent expected counts for the
// cycle's epoch, plus the epoch summary when the cycle ran a live epoch.
type Token struct {
	Seq     uint64
	Cycle   int32
	Live    bool
	Counts  []AgentCount
	Summary *EpochSummary // nil unless Live
}

// Ack is the server's durable cumulative acknowledgement: every sequenced
// frame at or below Durable is reflected in settled (and, if configured,
// checkpointed) collector state and may be forgotten by the client.
type Ack struct {
	Durable uint64
}

// RetryReq asks an agent session to retransmit one report.
type RetryReq struct {
	Agent   topology.HostID
	Epoch   int32
	Seq     int32
	Attempt uint8
}

// CycleEnd is the collector's lockstep handshake: the cycle is complete on
// every session, and these reports are due for retransmission.
type CycleEnd struct {
	Cycle   int32
	Retries []RetryReq
}

// --- encoding ------------------------------------------------------------

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int32) []byte  { return appendU32(b, uint32(v)) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// reader is a cursor over a frame payload; decode errors latch.
type reader struct {
	b   []byte
	err bool
}

func (r *reader) take(n int) []byte {
	if r.err || len(r.b) < n {
		r.err = true
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) i64() int64 { return int64(r.u64()) }
func (r *reader) bool() bool { return r.u8() != 0 }
func (r *reader) done() error {
	if r.err {
		return fmt.Errorf("transport: short frame")
	}
	if len(r.b) != 0 {
		return fmt.Errorf("transport: %d trailing bytes in frame", len(r.b))
	}
	return nil
}

// AppendHello encodes a Hello frame body (type byte included) onto dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendU8(dst, TypeHello)
	dst = appendU8(dst, h.Version)
	dst = appendU64(dst, h.Session)
	dst = appendU64(dst, math.Float64bits(h.ThresholdFrac))
	dst = appendI32(dst, h.MaxLinks)
	return dst
}

func DecodeHello(payload []byte) (Hello, error) {
	r := reader{b: payload}
	h := Hello{
		Version:       r.u8(),
		Session:       r.u64(),
		ThresholdFrac: math.Float64frombits(r.u64()),
		MaxLinks:      r.i32(),
	}
	return h, r.done()
}

func AppendHelloAck(dst []byte, a HelloAck) []byte {
	dst = appendU8(dst, TypeHelloAck)
	dst = appendU64(dst, a.Resume)
	dst = appendU64(dst, a.Durable)
	return dst
}

func DecodeHelloAck(payload []byte) (HelloAck, error) {
	r := reader{b: payload}
	a := HelloAck{Resume: r.u64(), Durable: r.u64()}
	return a, r.done()
}

func AppendReport(dst []byte, f Report) []byte {
	dst = appendU8(dst, TypeReport)
	dst = appendU64(dst, f.Seq)
	dst = appendU8(dst, f.Attempt)
	dst = appendI64(dst, f.R.FlowID)
	dst = appendI32(dst, int32(f.R.Src))
	dst = appendI32(dst, int32(f.R.Dst))
	dst = appendI32(dst, int32(f.R.Retx))
	dst = appendBool(dst, f.R.Partial)
	dst = appendI32(dst, f.R.Epoch)
	dst = appendI32(dst, f.R.Seq)
	dst = appendBool(dst, f.R.Path != nil)
	dst = appendU16(dst, uint16(len(f.R.Path)))
	for _, l := range f.R.Path {
		dst = appendI32(dst, int32(l))
	}
	return dst
}

func DecodeReport(payload []byte) (Report, error) {
	r := reader{b: payload}
	var f Report
	f.Seq = r.u64()
	f.Attempt = r.u8()
	f.R.FlowID = r.i64()
	f.R.Src = topology.HostID(r.i32())
	f.R.Dst = topology.HostID(r.i32())
	f.R.Retx = int(r.i32())
	f.R.Partial = r.bool()
	f.R.Epoch = r.i32()
	f.R.Seq = r.i32()
	hasPath := r.bool()
	n := int(r.u16())
	if hasPath {
		f.R.Path = make([]topology.LinkID, n)
		for i := 0; i < n; i++ {
			f.R.Path[i] = topology.LinkID(r.i32())
		}
	} else if n > 0 {
		r.err = true
	}
	return f, r.done()
}

func AppendToken(dst []byte, t Token) []byte {
	dst = appendU8(dst, TypeToken)
	dst = appendU64(dst, t.Seq)
	dst = appendI32(dst, t.Cycle)
	dst = appendBool(dst, t.Live)
	dst = appendU32(dst, uint32(len(t.Counts)))
	for _, c := range t.Counts {
		dst = appendI32(dst, int32(c.Agent))
		dst = appendI32(dst, c.N)
	}
	dst = appendBool(dst, t.Summary != nil)
	if s := t.Summary; s != nil {
		dst = appendI32(dst, s.Epoch)
		dst = appendI32(dst, s.TotalFlows)
		dst = appendI32(dst, s.FailedFlows)
		dst = appendI32(dst, s.TotalDrops)
		dst = appendBool(dst, s.HasFailed)
		dst = appendU32(dst, uint32(len(s.FailedLinks)))
		for _, l := range s.FailedLinks {
			dst = appendI32(dst, int32(l))
		}
		dst = appendBool(dst, s.HasTruth)
		dst = appendU32(dst, uint32(len(s.Truth)))
		for _, e := range s.Truth {
			dst = appendI64(dst, e.FlowID)
			dst = appendI32(dst, int32(e.Culprit))
			dst = appendBool(dst, e.CrossedFailure)
		}
	}
	return dst
}

func DecodeToken(payload []byte) (Token, error) {
	r := reader{b: payload}
	var t Token
	t.Seq = r.u64()
	t.Cycle = r.i32()
	t.Live = r.bool()
	if n := int(r.u32()); n > 0 && !r.err {
		if n > len(r.b)/8+1 {
			return t, fmt.Errorf("transport: token count overflow")
		}
		t.Counts = make([]AgentCount, n)
		for i := range t.Counts {
			t.Counts[i] = AgentCount{Agent: topology.HostID(r.i32()), N: r.i32()}
		}
	}
	if r.bool() {
		s := &EpochSummary{}
		s.Epoch = r.i32()
		s.TotalFlows = r.i32()
		s.FailedFlows = r.i32()
		s.TotalDrops = r.i32()
		s.HasFailed = r.bool()
		if n := int(r.u32()); !r.err {
			if n > len(r.b)/4+1 {
				return t, fmt.Errorf("transport: failed-link count overflow")
			}
			if s.HasFailed {
				s.FailedLinks = make([]topology.LinkID, n)
				for i := range s.FailedLinks {
					s.FailedLinks[i] = topology.LinkID(r.i32())
				}
			} else if n > 0 {
				r.err = true
			}
		}
		s.HasTruth = r.bool()
		if n := int(r.u32()); !r.err {
			if n > len(r.b)/13+1 {
				return t, fmt.Errorf("transport: truth count overflow")
			}
			if s.HasTruth {
				s.Truth = make([]TruthEntry, n)
				for i := range s.Truth {
					s.Truth[i] = TruthEntry{
						FlowID:         r.i64(),
						Culprit:        topology.LinkID(r.i32()),
						CrossedFailure: r.bool(),
					}
				}
			} else if n > 0 {
				r.err = true
			}
		}
		t.Summary = s
	}
	return t, r.done()
}

func AppendAck(dst []byte, a Ack) []byte {
	dst = appendU8(dst, TypeAck)
	dst = appendU64(dst, a.Durable)
	return dst
}

func DecodeAck(payload []byte) (Ack, error) {
	r := reader{b: payload}
	a := Ack{Durable: r.u64()}
	return a, r.done()
}

func AppendCycleEnd(dst []byte, ce CycleEnd) []byte {
	dst = appendU8(dst, TypeCycleEnd)
	dst = appendI32(dst, ce.Cycle)
	dst = appendU32(dst, uint32(len(ce.Retries)))
	for _, q := range ce.Retries {
		dst = appendI32(dst, int32(q.Agent))
		dst = appendI32(dst, q.Epoch)
		dst = appendI32(dst, q.Seq)
		dst = appendU8(dst, q.Attempt)
	}
	return dst
}

func DecodeCycleEnd(payload []byte) (CycleEnd, error) {
	r := reader{b: payload}
	var ce CycleEnd
	ce.Cycle = r.i32()
	if n := int(r.u32()); n > 0 && !r.err {
		if n > len(r.b)/13+1 {
			return ce, fmt.Errorf("transport: retry count overflow")
		}
		ce.Retries = make([]RetryReq, n)
		for i := range ce.Retries {
			ce.Retries[i] = RetryReq{
				Agent:   topology.HostID(r.i32()),
				Epoch:   r.i32(),
				Seq:     r.i32(),
				Attempt: r.u8(),
			}
		}
	}
	return ce, r.done()
}

// AppendControl encodes a bodyless control frame (Ping, Pong, Bye).
func AppendControl(dst []byte, typ byte) []byte { return appendU8(dst, typ) }

// WriteFrame writes one frame — uint32 length prefix, then body (type byte
// plus payload) — to w.
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Frame encodes a complete frame (length prefix included) ready to write.
func Frame(body []byte) []byte {
	out := make([]byte, 0, 4+len(body))
	out = appendU32(out, uint32(len(body)))
	return append(out, body...)
}

// ReadFrame reads one frame from br, returning its type and payload (the
// body after the type byte). maxFrame bounds the body length; 0 means
// DefaultMaxFrame.
func ReadFrame(br *bufio.Reader, maxFrame int) (typ byte, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: frame length %d outside [1, %d]", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// SeqOf extracts the session sequence number from a sequenced frame's
// payload (Report and Token lay it out first). ok is false for control
// frames or truncated payloads.
func SeqOf(typ byte, payload []byte) (seq uint64, ok bool) {
	if (typ != TypeReport && typ != TypeToken) || len(payload) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(payload), true
}
