// Package etw is the event-tracing bus that feeds 007's TCP monitoring
// agent. On Windows the paper uses Event Tracing for Windows, which
// "notifies the agent as soon as an active flow suffers a retransmission";
// the Linux analogue is an eBPF program attached to the
// tcp_retransmit_skb tracepoint publishing through a ring buffer. This
// package reproduces that contract — a host-local publish/subscribe bus
// carrying TCP state events — independent of the event source.
package etw

import (
	"sync"
	"sync/atomic"

	"vigil/internal/ecmp"
)

// Kind enumerates event types.
type Kind uint8

// Event kinds.
const (
	// Retransmit fires when a flow retransmits a segment, the trigger for
	// 007's path discovery.
	Retransmit Kind = iota
	// RTTSample carries a smoothed RTT estimate on each received ACK; §9.2
	// describes thresholding these to extend 007 to latency diagnosis.
	RTTSample
	// ConnEstablished fires when a connection completes its handshake.
	ConnEstablished
	// ConnClosed fires when a connection terminates (normally or not).
	ConnClosed
)

// Event is one TCP state notification.
type Event struct {
	Kind Kind
	Flow ecmp.FiveTuple
	// Seq is the retransmitted sequence number for Retransmit events.
	Seq uint32
	// SRTTMicros is the smoothed RTT for RTTSample events.
	SRTTMicros int64
	// Timeout marks a retransmission driven by an RTO rather than dup-ACKs.
	Timeout bool
}

// Bus is a host-local event bus. Subscribing and unsubscribing are
// expected at setup/teardown time; publishing is hot-path and lock-free:
// the subscriber list is an atomic copy-on-write snapshot, so a publish
// costs one atomic load (the emulation publishes an RTT sample per
// received ACK). Safe for concurrent use: a publish racing a subscription
// change delivers to some consistent snapshot of the subscriber set.
type Bus struct {
	mu   sync.Mutex // serializes subscriber-set changes
	subs atomic.Pointer[[]*subscription]
}

// subscription wraps a handler so an active subscription has a stable
// identity (funcs are not comparable) for unsubscribe to find.
type subscription struct {
	fn func(Event)
}

// Subscribe registers fn for all future events and returns the matching
// unsubscribe. Unsubscribing is idempotent; after it returns, fn sees no
// events from later Publish calls (a concurrent Publish that already
// loaded its snapshot may still deliver one last event).
func (b *Bus) Subscribe(fn func(Event)) (unsubscribe func()) {
	s := &subscription{fn: fn}
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur []*subscription
	if p := b.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]*subscription, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	b.subs.Store(&next)
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		cur := *b.subs.Load()
		next := make([]*subscription, 0, len(cur))
		for _, o := range cur {
			if o != s {
				next = append(next, o)
			}
		}
		b.subs.Store(&next)
	}
}

// Publish delivers e to all subscribers synchronously, in subscription
// order.
func (b *Bus) Publish(e Event) {
	p := b.subs.Load()
	if p == nil {
		return
	}
	for _, s := range *p {
		s.fn(e)
	}
}
