// Package etw is the event-tracing bus that feeds 007's TCP monitoring
// agent. On Windows the paper uses Event Tracing for Windows, which
// "notifies the agent as soon as an active flow suffers a retransmission";
// the Linux analogue is an eBPF program attached to the
// tcp_retransmit_skb tracepoint publishing through a ring buffer. This
// package reproduces that contract — a host-local publish/subscribe bus
// carrying TCP state events — independent of the event source.
package etw

import (
	"sync"

	"vigil/internal/ecmp"
)

// Kind enumerates event types.
type Kind uint8

// Event kinds.
const (
	// Retransmit fires when a flow retransmits a segment, the trigger for
	// 007's path discovery.
	Retransmit Kind = iota
	// RTTSample carries a smoothed RTT estimate on each received ACK; §9.2
	// describes thresholding these to extend 007 to latency diagnosis.
	RTTSample
	// ConnEstablished fires when a connection completes its handshake.
	ConnEstablished
	// ConnClosed fires when a connection terminates (normally or not).
	ConnClosed
)

// Event is one TCP state notification.
type Event struct {
	Kind Kind
	Flow ecmp.FiveTuple
	// Seq is the retransmitted sequence number for Retransmit events.
	Seq uint32
	// SRTTMicros is the smoothed RTT for RTTSample events.
	SRTTMicros int64
	// Timeout marks a retransmission driven by an RTO rather than dup-ACKs.
	Timeout bool
}

// Bus is a host-local event bus. Subscribing is expected at setup time;
// publishing is hot-path and lock-cheap. Safe for concurrent use.
type Bus struct {
	mu   sync.RWMutex
	subs []func(Event)
}

// Subscribe registers fn for all future events.
func (b *Bus) Subscribe(fn func(Event)) {
	b.mu.Lock()
	b.subs = append(b.subs, fn)
	b.mu.Unlock()
}

// Publish delivers e to all subscribers synchronously, in subscription
// order.
func (b *Bus) Publish(e Event) {
	b.mu.RLock()
	subs := b.subs
	b.mu.RUnlock()
	for _, fn := range subs {
		fn(e)
	}
}
