package etw

import (
	"sync"
	"testing"

	"vigil/internal/ecmp"
)

func TestPublishOrderAndFanout(t *testing.T) {
	var bus Bus
	var got []string
	bus.Subscribe(func(e Event) { got = append(got, "a") })
	bus.Subscribe(func(e Event) { got = append(got, "b") })
	bus.Publish(Event{Kind: Retransmit})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("delivery order = %v", got)
	}
}

func TestEventPayload(t *testing.T) {
	var bus Bus
	var seen Event
	bus.Subscribe(func(e Event) { seen = e })
	flow := ecmp.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	bus.Publish(Event{Kind: RTTSample, Flow: flow, SRTTMicros: 150, Seq: 9, Timeout: true})
	if seen.Kind != RTTSample || seen.Flow != flow || seen.SRTTMicros != 150 ||
		seen.Seq != 9 || !seen.Timeout {
		t.Fatalf("payload corrupted: %+v", seen)
	}
}

func TestConcurrentPublish(t *testing.T) {
	var bus Bus
	var mu sync.Mutex
	count := 0
	bus.Subscribe(func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				bus.Publish(Event{Kind: Retransmit})
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Fatalf("delivered %d events, want 800", count)
	}
}

func TestNoSubscribers(t *testing.T) {
	var bus Bus
	bus.Publish(Event{Kind: ConnClosed}) // must not panic
}

// Subscribing mid-publish from another goroutine must not corrupt the
// subscriber list (the race job runs this under -race).
func TestSubscribeDuringPublish(t *testing.T) {
	var bus Bus
	var mu sync.Mutex
	count := 0
	bus.Subscribe(func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			bus.Publish(Event{Kind: Retransmit})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			bus.Subscribe(func(Event) {})
		}
	}()
	wg.Wait()
	if count != 100 {
		t.Fatalf("original subscriber saw %d events, want 100", count)
	}
}

// Unsubscribe removes exactly its own subscription, preserves the order
// of the rest, and is idempotent.
func TestUnsubscribe(t *testing.T) {
	var bus Bus
	var got []string
	unsubA := bus.Subscribe(func(Event) { got = append(got, "a") })
	bus.Subscribe(func(Event) { got = append(got, "b") })
	bus.Subscribe(func(Event) { got = append(got, "c") })
	unsubA()
	unsubA() // idempotent
	bus.Publish(Event{Kind: Retransmit})
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("delivery after unsubscribe = %v", got)
	}
}

// Duplicate handlers are distinct subscriptions: unsubscribing one leaves
// the other delivering.
func TestUnsubscribeOneOfDuplicates(t *testing.T) {
	var bus Bus
	n := 0
	fn := func(Event) { n++ }
	unsub1 := bus.Subscribe(fn)
	bus.Subscribe(fn)
	unsub1()
	bus.Publish(Event{Kind: Retransmit})
	if n != 1 {
		t.Fatalf("remaining duplicate saw %d events, want 1", n)
	}
}

// The full churn mix — concurrent subscribe, publish and unsubscribe —
// must stay race-free and never corrupt the subscriber set (the race job
// runs this under -race). A permanent subscriber counts deliveries; the
// churning subscriptions come and go around it.
func TestConcurrentSubscribePublishUnsubscribe(t *testing.T) {
	var bus Bus
	var mu sync.Mutex
	count := 0
	bus.Subscribe(func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	const (
		publishers = 4
		churners   = 4
		events     = 200
		churns     = 50
	)
	var wg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < events; j++ {
				bus.Publish(Event{Kind: Retransmit})
			}
		}()
	}
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < churns; j++ {
				unsub := bus.Subscribe(func(Event) {})
				unsub()
			}
		}()
	}
	wg.Wait()
	if count != publishers*events {
		t.Fatalf("permanent subscriber saw %d events, want %d", count, publishers*events)
	}
	// After the churn, only the permanent subscriber remains.
	before := count
	bus.Publish(Event{Kind: Retransmit})
	if count != before+1 {
		t.Fatalf("post-churn publish delivered %d times, want 1", count-before)
	}
}

// Late subscribers see only future events — the bus has no replay.
func TestLateSubscriberSeesNoHistory(t *testing.T) {
	var bus Bus
	bus.Publish(Event{Kind: Retransmit})
	n := 0
	bus.Subscribe(func(Event) { n++ })
	bus.Publish(Event{Kind: Retransmit})
	if n != 1 {
		t.Fatalf("late subscriber saw %d events, want 1", n)
	}
}
