package engine

import (
	"vigil/internal/analysis"
	"vigil/internal/cluster"
	"vigil/internal/des"
	"vigil/internal/schedule"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// packetWorkloadDefault is the packet plane's default per-epoch traffic: a
// uniform pattern light enough that a DES replica — which emulates every
// data packet, ACK, probe and ICMP reply individually — finishes an epoch
// in tens of milliseconds, while still putting enough flows across a
// failed link that Algorithm 1 has a signal every active epoch.
func packetWorkloadDefault() traffic.Workload {
	return traffic.Workload{
		Pattern:        traffic.Uniform{},
		ConnsPerHost:   traffic.IntRange{Lo: 24, Hi: 24},
		PacketsPerFlow: traffic.IntRange{Lo: 80, Hi: 160},
	}
}

// workloadSpread is how far into the epoch new connections are spread —
// matching the experiment harness's 20 virtual seconds, which leaves every
// flow time to finish (or fail) before the epoch closes.
const workloadSpread = 20 * des.Second

// packetEngine adapts cluster.Cluster: every epoch it starts a fresh
// workload, drives the DES to the epoch boundary (the cluster settles
// scripted rates and rolls its ground-truth frame), then analyzes the
// epoch's captured reports in canonical order and pairs the output with
// the frame.
type packetEngine struct {
	cl       *cluster.Cluster
	workload traffic.Workload
	an       analysis.Options
	// reports accumulates the epoch's reports via the cluster's Reporter
	// hook; the engine analyzes them itself (in canonical order, through
	// the same settle path as the flow plane and the streaming service)
	// instead of using the cluster's embedded submission-order agent.
	reports []vote.Report
	// emit, when set by Step, sees each report live as the DES produces it.
	emit func(vote.Report)
}

func newPacketEngine(cfg Config) (*packetEngine, error) {
	cl, err := cluster.New(cluster.Config{
		Topo:    cfg.Topo,
		Seed:    cfg.Seed,
		NoiseLo: cfg.NoiseLo,
		NoiseHi: cfg.NoiseHi,
		Detect:  cfg.Detect,
		// The engine scores each epoch off its captured frame, never off
		// whole-run flow history, so the cluster can recycle per-flow state
		// at every boundary: scenario sweeps and conformance runs stay
		// allocation-free and memory-bounded however many epochs they span.
		EphemeralFlows: true,
		Workers:        cfg.PacketWorkers,
	})
	if err != nil {
		return nil, err
	}
	e := &packetEngine{
		cl:       cl,
		workload: cfg.Workload,
		an:       analysis.Options{Detect: cfg.Detect, Parallelism: cfg.Parallelism},
	}
	if e.workload.Pattern == nil {
		e.workload = packetWorkloadDefault()
	}
	// Capture instead of forwarding to the cluster's embedded agent: the
	// engine runs the analysis itself over the canonical report order, so
	// the in-DES submission-order analysis would be dead work.
	cl.Reporter = func(r vote.Report) {
		e.reports = append(e.reports, r)
		if e.emit != nil {
			e.emit(r)
		}
	}
	return e, nil
}

func (e *packetEngine) Plane() Plane                 { return Packet }
func (e *packetEngine) Topology() *topology.Topology { return e.cl.Topo }

func (e *packetEngine) InjectFailure(l topology.LinkID, rate float64) error {
	return e.cl.InjectFailure(l, rate)
}

func (e *packetEngine) ClearFailure(l topology.LinkID) error {
	return e.cl.ClearFailure(l)
}

func (e *packetEngine) Schedule(l topology.LinkID, s schedule.RateSchedule) error {
	return e.cl.ScheduleFailure(l, s)
}

func (e *packetEngine) ClearAllFailures() {
	for _, l := range e.cl.FailedLinks() {
		e.cl.ClearFailure(l) // validated link; cannot fail
	}
}

func (e *packetEngine) ClearSchedules() { e.cl.ClearSchedules() }
func (e *packetEngine) EpochIndex() int { return e.cl.EpochIndex() }

func (e *packetEngine) Analysis() analysis.Options { return e.an }

// Step drives one epoch of the DES. emit sees each report live, in the
// deterministic virtual-time order host agents submit them; the returned
// result carries the same reports re-sorted into canonical (agent, epoch,
// seq) order — on this plane that is a real sort, since virtual-time
// submission interleaves agents.
func (e *packetEngine) Step(emit func(vote.Report)) *EpochResult {
	e.reports = e.reports[:0]
	e.emit = emit
	e.cl.StartWorkload(e.workload, workloadSpread)
	e.cl.RunEpoch() // embedded-agent result unused; reports analyzed at settle
	e.emit = nil
	fr := e.cl.LastEpoch()
	reports := make([]vote.Report, len(e.reports))
	copy(reports, e.reports)
	vote.SortCanonical(reports)
	return &EpochResult{
		Epoch:       fr.Index,
		FailedLinks: fr.FailedLinks,
		Reports:     reports,
		Truth:       fr.Truth,
		TotalFlows:  fr.Flows,
		FailedFlows: fr.FailedFlows,
		TotalDrops:  fr.Drops,
	}
}

func (e *packetEngine) RunEpoch() *EpochResult {
	return analyzeStep(e, e.Step(nil))
}
