// Package engine is the plane-agnostic epoch engine: one interface over
// the paper's two validation substrates — the flow-level simulator
// (internal/netem, §6) and the packet-level cluster emulation
// (internal/cluster over internal/fabric, §7/§8). Each epoch an Engine
// settles its scripted link rates, drives one 30-second round of its
// plane, runs 007's full analysis cycle and yields an EpochResult carrying
// the epoch's ground truth next to 007's output.
//
// Everything above this package — the scenario engine, the conformance
// suite, the experiment harness, the vigil facade — is plane-generic: the
// five named dynamic scenarios run unmodified on either plane, and the
// cross-plane conformance suite holds the two planes to the same
// statistical envelopes (the extended paper's point that 007's hardest
// regimes hold in both simulation and emulation).
//
// Determinism: a seeded engine is deterministic — same seed and same
// schedules give bit-identical EpochResults across repeated runs. The flow
// plane is additionally bit-identical at every Parallelism setting. The
// packet plane's DES shards by pod under conservative windows
// (Config.PacketWorkers, see des.ShardedScheduler) with EpochResults
// bit-identical at every worker count; replica fan-out across seeds (one
// engine per seed on the internal/par pool) composes with it.
package engine

import (
	"fmt"

	"vigil/internal/analysis"
	"vigil/internal/metrics"
	"vigil/internal/netem"
	"vigil/internal/schedule"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Plane names an evaluation substrate.
type Plane string

// The two planes of the paper's evaluation.
const (
	// Flow is the flow-level simulation plane (§6): fast, scales to the
	// paper's 4160-link datacenter, drops sampled per flow.
	Flow Plane = "flow"
	// Packet is the packet-level emulation plane (§7/§8): real host agents,
	// TCP-like retransmissions, crafted-probe traceroutes, ICMP rate
	// limiting, serialized packets on a DES fabric.
	Packet Plane = "packet"
)

// Valid reports whether p names a known plane.
func (p Plane) Valid() bool { return p == Flow || p == Packet }

// EpochResult is the plane-agnostic outcome of one epoch: 007's outputs
// (reports, ranking, detections, verdicts) next to the epoch's ground
// truth (settled failure set, per-flow culprits, drop totals).
type EpochResult struct {
	// Epoch is the epoch's index (the value schedules saw in RateAt).
	Epoch int
	// FailedLinks is the epoch's settled failure set, sorted. It may share
	// storage with other epochs of the same engine; treat it as read-only.
	FailedLinks []topology.LinkID
	// Reports carries what 007's analysis agent received this epoch.
	Reports []vote.Report
	// Ranking is the vote heat-map, highest first.
	Ranking []vote.LinkVotes
	// Detected is Algorithm 1's problematic link set, in blame order.
	Detected []topology.LinkID
	// Verdicts are 007's per-flow conclusions for every reported flow.
	Verdicts []vote.Verdict
	// Truth maps failed flows (>= 1 packet lost) to their ground truth.
	Truth map[int64]metrics.FlowTruth
	// TotalFlows, FailedFlows and TotalDrops summarize the epoch.
	TotalFlows  int
	FailedFlows int
	TotalDrops  int
}

// Engine is one plane's epoch driver. Implementations settle scripted
// rates at the top of each epoch, before any of the epoch's randomness is
// drawn, and score the epoch against the settled failure set.
type Engine interface {
	// Plane identifies the substrate.
	Plane() Plane
	// Topology returns the emulated or simulated network.
	Topology() *topology.Topology
	// InjectFailure sets a directed link's drop rate (a probability).
	InjectFailure(l topology.LinkID, rate float64) error
	// ClearFailure restores a link to its baseline (noise) rate.
	ClearFailure(l topology.LinkID) error
	// ClearAllFailures restores every manually injected link.
	ClearAllFailures()
	// Schedule attaches an epoch-indexed rate schedule to a link.
	Schedule(l topology.LinkID, s schedule.RateSchedule) error
	// ClearSchedules detaches every schedule.
	ClearSchedules()
	// EpochIndex returns the index the next RunEpoch call will run.
	EpochIndex() int
	// RunEpoch drives one epoch and returns its result.
	RunEpoch() *EpochResult
	// Step drives one epoch like RunEpoch but leaves 007's analysis to the
	// caller — the feed seam of a streaming service, where the engine never
	// stops and epochs settle downstream. Every report of the epoch is
	// streamed through emit (if non-nil) as the plane produces it, in a
	// deterministic but plane-specific order; the returned result carries
	// the epoch's reports in canonical (agent, epoch, seq) order and its
	// ground truth, with Ranking/Detected/Verdicts nil. Analyzing the
	// returned reports with Analysis() reproduces RunEpoch bit for bit.
	Step(emit func(vote.Report)) *EpochResult
	// Analysis returns the options an external analyzer must use for its
	// output on an epoch's canonical reports to be bit-identical with
	// RunEpoch's.
	Analysis() analysis.Options
}

// Config parametrizes an engine of either plane.
type Config struct {
	// Plane selects the substrate; empty means Flow.
	Plane Plane
	// Topo is the network; required.
	Topo *topology.Topology
	// Workload is the per-epoch traffic; a nil Pattern means the plane
	// default (the paper's uniform 60 conns/host on the flow plane, a
	// lighter uniform workload on the packet plane, where every packet is
	// individually emulated).
	Workload traffic.Workload
	// NoiseLo/NoiseHi bound good-link noise rates; both zero means the
	// paper's (0, 1e-6).
	NoiseLo, NoiseHi float64
	// TracerouteCap limits traced flows per host per epoch on the flow
	// plane (0 = unlimited). The packet plane enforces the real limits
	// natively — the host-side Ct budget and switch-side Tmax token bucket.
	TracerouteCap int
	// Seed drives every random choice of the engine.
	Seed uint64
	// Incremental enables the flow plane's datacenter-scale delta epochs:
	// the epoch seed and flow set freeze after the first epoch and later
	// epochs re-score only the flows whose paths touch links whose rates
	// changed, with results bit-identical to full re-scoring of the frozen
	// workload (see netem.Config.Incremental). The packet plane ignores it.
	Incremental bool
	// Parallelism is the flow plane's epoch worker count (0 = all cores);
	// results are bit-identical at every setting. The packet plane ignores
	// it — its intra-replica concurrency is PacketWorkers.
	Parallelism int
	// PacketWorkers is the packet plane's DES worker count: 0 keeps the
	// single-threaded scheduler, ≥1 shards the DES by pod under
	// conservative windows (see des.ShardedScheduler). EpochResults are
	// bit-identical at every setting. The flow plane ignores it.
	PacketWorkers int
	// Detect configures Algorithm 1; the zero value means the paper's 1%
	// threshold.
	Detect vote.DetectOptions
}

// New builds an engine on the configured plane.
func New(cfg Config) (Engine, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("engine: Config.Topo is required")
	}
	plane := cfg.Plane
	if plane == "" {
		plane = Flow
	}
	if cfg.NoiseLo == 0 && cfg.NoiseHi == 0 {
		cfg.NoiseHi = 1e-6
	}
	if cfg.Detect.ThresholdFrac == 0 {
		cfg.Detect.ThresholdFrac = 0.01
	}
	switch plane {
	case Flow:
		return newFlowEngine(cfg)
	case Packet:
		return newPacketEngine(cfg)
	default:
		return nil, fmt.Errorf("engine: unknown plane %q", plane)
	}
}

// flowEngine adapts netem.Sim: simulate the epoch, then run the parallel
// analysis pipeline over its reports.
type flowEngine struct {
	sim *netem.Sim
	an  analysis.Options
}

func newFlowEngine(cfg Config) (*flowEngine, error) {
	w := cfg.Workload
	if w.Pattern == nil {
		w = traffic.DefaultWorkload()
	}
	sim, err := netem.New(netem.Config{
		Topo:          cfg.Topo,
		Workload:      w,
		NoiseLo:       cfg.NoiseLo,
		NoiseHi:       cfg.NoiseHi,
		TracerouteCap: cfg.TracerouteCap,
		Seed:          cfg.Seed,
		Parallelism:   cfg.Parallelism,
		Incremental:   cfg.Incremental,
	})
	if err != nil {
		return nil, err
	}
	return &flowEngine{
		sim: sim,
		an:  analysis.Options{Detect: cfg.Detect, Parallelism: cfg.Parallelism},
	}, nil
}

func (e *flowEngine) Plane() Plane                 { return Flow }
func (e *flowEngine) Topology() *topology.Topology { return e.sim.Topology() }

func (e *flowEngine) checkLink(l topology.LinkID) error {
	return e.sim.Topology().CheckLink(l)
}

func (e *flowEngine) InjectFailure(l topology.LinkID, rate float64) error {
	if err := e.checkLink(l); err != nil {
		return err
	}
	if !schedule.ValidRate(rate) {
		return fmt.Errorf("engine: drop rate %v outside [0, 1]", rate)
	}
	e.sim.InjectFailure(l, rate)
	return nil
}

func (e *flowEngine) ClearFailure(l topology.LinkID) error {
	if err := e.checkLink(l); err != nil {
		return err
	}
	e.sim.ClearFailure(l)
	return nil
}

func (e *flowEngine) Schedule(l topology.LinkID, s schedule.RateSchedule) error {
	if err := e.checkLink(l); err != nil {
		return err
	}
	if s == nil {
		return fmt.Errorf("engine: nil RateSchedule")
	}
	if err := schedule.CheckRate(s); err != nil {
		return err
	}
	e.sim.Schedule(l, s)
	return nil
}

func (e *flowEngine) ClearAllFailures() { e.sim.ClearAllFailures() }
func (e *flowEngine) ClearSchedules()   { e.sim.ClearSchedules() }
func (e *flowEngine) EpochIndex() int   { return e.sim.EpochIndex() }

func (e *flowEngine) Analysis() analysis.Options { return e.an }

// Step simulates one epoch and streams its reports. The simulator emits
// reports in (agent, seq) order already — sources ascend and one source's
// flows are contiguous — so the canonical sort is a verification scan on
// every workload without repeated hosts.
func (e *flowEngine) Step(emit func(vote.Report)) *EpochResult {
	epoch := e.sim.EpochIndex()
	ep := e.sim.RunEpoch()
	vote.SortCanonical(ep.Reports)
	if emit != nil {
		for _, r := range ep.Reports {
			emit(r)
		}
	}
	return &EpochResult{
		Epoch:       epoch,
		FailedLinks: ep.FailedLinks,
		Reports:     ep.Reports,
		Truth:       ep.Truth(),
		TotalFlows:  ep.TotalFlows,
		FailedFlows: len(ep.Failed),
		TotalDrops:  ep.TotalDrops,
	}
}

func (e *flowEngine) RunEpoch() *EpochResult {
	return analyzeStep(e, e.Step(nil))
}

// analyzeStep completes a Step result into a RunEpoch result by running
// the plane's analysis over the epoch's canonical reports — the single
// settle path both planes and the streaming service share, which is what
// makes "vigild's fault-free settled epochs are bit-identical to batch
// RunEpoch" a structural property rather than a test-enforced one.
func analyzeStep(e Engine, res *EpochResult) *EpochResult {
	an := analysis.Analyze(res.Reports, e.Analysis())
	res.Ranking = an.Ranking
	res.Detected = an.Detected
	res.Verdicts = an.Verdicts
	return res
}
