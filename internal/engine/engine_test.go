package engine

import (
	"math"
	"reflect"
	"testing"

	"vigil/internal/schedule"
	"vigil/internal/topology"
	"vigil/internal/traffic"
)

// flowTopo is a small flow-plane Clos; packetTopo the packet-plane default
// shape (every link class present, tiny host count so DES epochs are fast).
var (
	flowTopo   = topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 4}
	packetTopo = topology.Config{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 2}
)

func newEngine(t testing.TB, plane Plane, seed uint64) Engine {
	t.Helper()
	topoCfg := flowTopo
	if plane == Packet {
		topoCfg = packetTopo
	}
	topo, err := topology.New(topoCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Plane: plane, Topo: topo, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewErrors(t *testing.T) {
	topo, err := topology.New(flowTopo)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil topo", Config{Plane: Flow}},
		{"unknown plane", Config{Plane: "quantum", Topo: topo}},
		{"bad noise range flow", Config{Plane: Flow, Topo: topo, NoiseLo: 0.5, NoiseHi: 0.1}},
		{"bad noise range packet", Config{Plane: Packet, Topo: topo, NoiseLo: 0.5, NoiseHi: 0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatal("error not reported")
			}
		})
	}
}

func TestPlaneValid(t *testing.T) {
	if !Flow.Valid() || !Packet.Valid() {
		t.Fatal("known planes reported invalid")
	}
	if Plane("quantum").Valid() || Plane("").Valid() {
		t.Fatal("unknown plane reported valid")
	}
}

// Both planes must expose the same validated control surface: bad links and
// bad rates come back as errors, never as silent corruption.
func TestValidationErrorsOnBothPlanes(t *testing.T) {
	for _, plane := range []Plane{Flow, Packet} {
		t.Run(string(plane), func(t *testing.T) {
			eng := newEngine(t, plane, 1)
			good := eng.Topology().LinksOfClass(topology.L1Up)[0]
			nlinks := len(eng.Topology().Links)
			if err := eng.InjectFailure(-1, 0.1); err == nil {
				t.Fatal("negative link accepted")
			}
			if err := eng.InjectFailure(topology.LinkID(nlinks), 0.1); err == nil {
				t.Fatal("out-of-range link accepted")
			}
			for _, rate := range []float64{-0.1, 1.5, math.NaN()} {
				if err := eng.InjectFailure(good, rate); err == nil {
					t.Fatalf("rate %v accepted", rate)
				}
			}
			if err := eng.InjectFailure(good, 0.1); err != nil {
				t.Fatalf("valid injection rejected: %v", err)
			}
			if err := eng.ClearFailure(good); err != nil {
				t.Fatalf("valid clear rejected: %v", err)
			}
			if err := eng.ClearFailure(-1); err == nil {
				t.Fatal("clearing a negative link accepted")
			}
			if err := eng.Schedule(-1, schedule.ConstantRate{Rate: 0.1}); err == nil {
				t.Fatal("schedule on negative link accepted")
			}
			if err := eng.Schedule(good, nil); err == nil {
				t.Fatal("nil schedule accepted")
			}
			if err := eng.Schedule(good, schedule.ConstantRate{Rate: 1.5}); err == nil {
				t.Fatal("out-of-range schedule rate accepted")
			}
			if err := eng.Schedule(good, schedule.Flap{Rate: 0.1, Period: 2, On: 1}); err != nil {
				t.Fatalf("valid schedule rejected: %v", err)
			}
			eng.ClearSchedules()
		})
	}
}

// The plane-agnostic contract, end to end on both planes: an injected
// failure appears in FailedLinks and in the detections, ground truth names
// failed flows, and the epoch index advances.
func TestEpochCycleOnBothPlanes(t *testing.T) {
	for _, plane := range []Plane{Flow, Packet} {
		t.Run(string(plane), func(t *testing.T) {
			eng := newEngine(t, plane, 2)
			if eng.Plane() != plane {
				t.Fatalf("Plane() = %v", eng.Plane())
			}
			bad := eng.Topology().LinksOfClass(topology.L1Down)[1]
			if err := eng.InjectFailure(bad, 0.05); err != nil {
				t.Fatal(err)
			}
			if got := eng.EpochIndex(); got != 0 {
				t.Fatalf("EpochIndex = %d before the first epoch", got)
			}
			er := eng.RunEpoch()
			if got := eng.EpochIndex(); got != 1 {
				t.Fatalf("EpochIndex = %d after one epoch", got)
			}
			if er.Epoch != 0 {
				t.Fatalf("EpochResult.Epoch = %d", er.Epoch)
			}
			if len(er.FailedLinks) != 1 || er.FailedLinks[0] != bad {
				t.Fatalf("FailedLinks = %v, want [%v]", er.FailedLinks, bad)
			}
			if er.TotalFlows == 0 || er.TotalDrops == 0 || er.FailedFlows == 0 {
				t.Fatalf("no signal: %+v", er)
			}
			if len(er.Reports) == 0 || len(er.Verdicts) == 0 {
				t.Fatal("no reports or verdicts")
			}
			if len(er.Truth) == 0 {
				t.Fatal("no ground truth for failed flows")
			}
			found := false
			for _, l := range er.Detected {
				if l == bad {
					found = true
				}
			}
			if !found {
				t.Fatalf("bad link not detected: %v", er.Detected)
			}
			crossed := 0
			for _, tr := range er.Truth {
				if tr.CrossedFailure {
					crossed++
				}
			}
			if crossed == 0 {
				t.Fatal("no flow crossed the injected failure")
			}
		})
	}
}

// Scheduled rotation must settle at epoch boundaries on both planes: a
// Window schedule is quiet, then active, then quiet again.
func TestScheduleRotationOnBothPlanes(t *testing.T) {
	for _, plane := range []Plane{Flow, Packet} {
		t.Run(string(plane), func(t *testing.T) {
			eng := newEngine(t, plane, 3)
			bad := eng.Topology().LinksOfClass(topology.L1Up)[2]
			if err := eng.Schedule(bad, schedule.Window{Rate: 0.1, Start: 1, End: 2}); err != nil {
				t.Fatal(err)
			}
			for e := 0; e < 3; e++ {
				er := eng.RunEpoch()
				active := e == 1
				if active && (len(er.FailedLinks) != 1 || er.FailedLinks[0] != bad) {
					t.Fatalf("epoch %d: FailedLinks = %v, want [%v]", e, er.FailedLinks, bad)
				}
				if !active && len(er.FailedLinks) != 0 {
					t.Fatalf("epoch %d: FailedLinks = %v, want none", e, er.FailedLinks)
				}
			}
			eng.ClearSchedules()
			if er := eng.RunEpoch(); len(er.FailedLinks) != 0 {
				t.Fatalf("ClearSchedules left failures: %v", er.FailedLinks)
			}
		})
	}
}

func TestClearAllFailuresOnBothPlanes(t *testing.T) {
	for _, plane := range []Plane{Flow, Packet} {
		t.Run(string(plane), func(t *testing.T) {
			eng := newEngine(t, plane, 4)
			links := eng.Topology().LinksOfClass(topology.L1Up)
			for _, l := range links[:2] {
				if err := eng.InjectFailure(l, 0.2); err != nil {
					t.Fatal(err)
				}
			}
			eng.ClearAllFailures()
			if er := eng.RunEpoch(); len(er.FailedLinks) != 0 {
				t.Fatalf("failures survived ClearAllFailures: %v", er.FailedLinks)
			}
		})
	}
}

// The packet-plane determinism contract (mirror of the flow plane's
// cross-parallelism test): same seed + same schedules must give
// bit-identical EpochResults across repeated runs.
func TestPacketEngineBitIdenticalAcrossRuns(t *testing.T) {
	run := func() []*EpochResult {
		eng := newEngine(t, Packet, 42)
		topo := eng.Topology()
		if err := eng.Schedule(topo.LinksOfClass(topology.L1Up)[1], schedule.Flap{Rate: 0.03, Period: 2, On: 1}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Schedule(topo.LinksOfClass(topology.L2Down)[0], schedule.Intermittent{Rate: 0.02, Prob: 0.5, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		var out []*EpochResult
		for e := 0; e < 3; e++ {
			out = append(out, eng.RunEpoch())
		}
		return out
	}
	want := run()
	drops := 0
	for _, er := range want {
		drops += er.TotalDrops
	}
	if drops == 0 {
		t.Fatal("scheduled packet run produced no drops to compare")
	}
	if got := run(); !reflect.DeepEqual(want, got) {
		t.Fatal("same seed + same schedules diverged across packet-plane runs")
	}
}

// The tentpole acceptance criterion, at the engine layer: the packet
// plane's EpochResults — every report field, truth set and aggregate —
// must be bit-identical between the single-threaded DES (PacketWorkers=0)
// and the pod-sharded conservative DES at workers 1/2/4/8, under scripted
// time-varying failures, on both the multi-pod quick shape and the
// §7-scale test cluster.
func TestPacketEpochResultsBitIdenticalAcrossWorkers(t *testing.T) {
	for _, topoCfg := range []topology.Config{packetTopo, topology.TestClusterConfig} {
		run := func(workers int) []*EpochResult {
			topo, err := topology.New(topoCfg)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(Config{Plane: Packet, Topo: topo, Seed: 42, PacketWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Schedule(topo.LinksOfClass(topology.L1Up)[1], schedule.Flap{Rate: 0.03, Period: 2, On: 1}); err != nil {
				t.Fatal(err)
			}
			var out []*EpochResult
			for e := 0; e < 3; e++ {
				out = append(out, eng.RunEpoch())
			}
			return out
		}
		want := run(0)
		drops := 0
		for _, er := range want {
			drops += er.TotalDrops
		}
		if drops == 0 {
			t.Fatalf("pods=%d: scheduled packet run produced no drops to compare", topoCfg.Pods)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			if got := run(workers); !reflect.DeepEqual(want, got) {
				t.Fatalf("pods=%d: PacketWorkers=%d diverged from the single-threaded DES", topoCfg.Pods, workers)
			}
		}
	}
}

// The flow engine must produce exactly what the pre-engine pipeline
// produced: the facade and the scenario engine both ride on it, so a
// changed workload default or draw order would silently shift every
// calibrated envelope.
func TestFlowEngineDefaultWorkloadMatchesPaper(t *testing.T) {
	eng := newEngine(t, Flow, 5)
	er := eng.RunEpoch()
	hosts := len(eng.Topology().Hosts)
	want := hosts * 60 // the paper's 60 conns/host default
	if er.TotalFlows != want {
		t.Fatalf("default flow workload produced %d flows, want %d", er.TotalFlows, want)
	}
}

// A custom workload must reach the plane.
func TestCustomWorkload(t *testing.T) {
	for _, plane := range []Plane{Flow, Packet} {
		t.Run(string(plane), func(t *testing.T) {
			topoCfg := flowTopo
			if plane == Packet {
				topoCfg = packetTopo
			}
			topo, err := topology.New(topoCfg)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(Config{
				Plane: plane,
				Topo:  topo,
				Seed:  6,
				Workload: traffic.Workload{
					Pattern:        traffic.Uniform{},
					ConnsPerHost:   traffic.IntRange{Lo: 2, Hi: 2},
					PacketsPerFlow: traffic.IntRange{Lo: 20, Hi: 20},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			er := eng.RunEpoch()
			if want := len(topo.Hosts) * 2; er.TotalFlows != want {
				t.Fatalf("custom workload produced %d flows, want %d", er.TotalFlows, want)
			}
		})
	}
}
