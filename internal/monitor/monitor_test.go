package monitor

import (
	"testing"

	"vigil/internal/ecmp"
	"vigil/internal/etw"
)

func flow(port uint16) ecmp.FiveTuple {
	return ecmp.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: port, DstPort: 443, Proto: ecmp.ProtoTCP}
}

func TestTriggerOncePerFlowPerEpoch(t *testing.T) {
	var triggered []ecmp.FiveTuple
	a := New(func(f ecmp.FiveTuple) { triggered = append(triggered, f) })
	f1 := flow(1000)
	for i := 0; i < 5; i++ {
		a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f1})
	}
	if len(triggered) != 1 {
		t.Fatalf("triggered %d times for one flow in one epoch", len(triggered))
	}
	if a.Retx(f1) != 5 {
		t.Fatalf("retx count = %d, want 5", a.Retx(f1))
	}
	// A second flow triggers independently.
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: flow(1001)})
	if len(triggered) != 2 {
		t.Fatalf("second flow did not trigger")
	}
	if a.FlowsWithRetx() != 2 {
		t.Fatalf("FlowsWithRetx = %d", a.FlowsWithRetx())
	}
}

func TestNewEpochReopensTrigger(t *testing.T) {
	n := 0
	a := New(func(ecmp.FiveTuple) { n++ })
	f := flow(2000)
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f})
	a.NewEpoch()
	if a.Retx(f) != 0 {
		t.Fatal("retx count survived the epoch roll")
	}
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f})
	if n != 2 {
		t.Fatalf("triggered %d times across two epochs, want 2", n)
	}
}

func TestIgnoresNonRetransmitEvents(t *testing.T) {
	n := 0
	a := New(func(ecmp.FiveTuple) { n++ })
	a.OnEvent(etw.Event{Kind: etw.ConnEstablished, Flow: flow(1)})
	a.OnEvent(etw.Event{Kind: etw.RTTSample, Flow: flow(1)})
	a.OnEvent(etw.Event{Kind: etw.ConnClosed, Flow: flow(1)})
	if n != 0 {
		t.Fatal("non-retransmit events triggered discovery")
	}
}

func TestAttachViaBus(t *testing.T) {
	n := 0
	a := New(func(ecmp.FiveTuple) { n++ })
	var bus etw.Bus
	a.Attach(&bus)
	bus.Publish(etw.Event{Kind: etw.Retransmit, Flow: flow(3)})
	if n != 1 {
		t.Fatal("bus subscription not working")
	}
}
