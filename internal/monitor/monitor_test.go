package monitor

import (
	"testing"

	"vigil/internal/ecmp"
	"vigil/internal/etw"
)

func flow(port uint16) ecmp.FiveTuple {
	return ecmp.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: port, DstPort: 443, Proto: ecmp.ProtoTCP}
}

func TestTriggerOncePerFlowPerEpoch(t *testing.T) {
	var triggered []ecmp.FiveTuple
	a := New(func(f ecmp.FiveTuple) { triggered = append(triggered, f) })
	f1 := flow(1000)
	for i := 0; i < 5; i++ {
		a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f1})
	}
	if len(triggered) != 1 {
		t.Fatalf("triggered %d times for one flow in one epoch", len(triggered))
	}
	if a.Retx(f1) != 5 {
		t.Fatalf("retx count = %d, want 5", a.Retx(f1))
	}
	// A second flow triggers independently.
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: flow(1001)})
	if len(triggered) != 2 {
		t.Fatalf("second flow did not trigger")
	}
	if a.FlowsWithRetx() != 2 {
		t.Fatalf("FlowsWithRetx = %d", a.FlowsWithRetx())
	}
}

func TestNewEpochReopensTrigger(t *testing.T) {
	n := 0
	a := New(func(ecmp.FiveTuple) { n++ })
	f := flow(2000)
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f})
	a.NewEpoch()
	if a.Retx(f) != 0 {
		t.Fatal("retx count survived the epoch roll")
	}
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f})
	if n != 2 {
		t.Fatalf("triggered %d times across two epochs, want 2", n)
	}
}

func TestIgnoresNonRetransmitEvents(t *testing.T) {
	n := 0
	a := New(func(ecmp.FiveTuple) { n++ })
	a.OnEvent(etw.Event{Kind: etw.ConnEstablished, Flow: flow(1)})
	a.OnEvent(etw.Event{Kind: etw.RTTSample, Flow: flow(1)})
	a.OnEvent(etw.Event{Kind: etw.ConnClosed, Flow: flow(1)})
	if n != 0 {
		t.Fatal("non-retransmit events triggered discovery")
	}
}

func TestAttachViaBus(t *testing.T) {
	n := 0
	a := New(func(ecmp.FiveTuple) { n++ })
	var bus etw.Bus
	a.Attach(&bus)
	bus.Publish(etw.Event{Kind: etw.Retransmit, Flow: flow(3)})
	if n != 1 {
		t.Fatal("bus subscription not working")
	}
}

// The §9.2 latency extension: RTT samples over the threshold trigger path
// discovery (once per flow per epoch), samples under it do nothing, and a
// zero threshold disables the path entirely.
func TestRTTThresholdTriggering(t *testing.T) {
	var triggered []ecmp.FiveTuple
	a := New(func(f ecmp.FiveTuple) { triggered = append(triggered, f) })
	a.RTTThresholdMicros = 1000
	f := flow(3000)
	a.OnEvent(etw.Event{Kind: etw.RTTSample, Flow: f, SRTTMicros: 999})
	if len(triggered) != 0 || a.SlowFlows() != 0 {
		t.Fatal("sub-threshold RTT triggered discovery")
	}
	a.OnEvent(etw.Event{Kind: etw.RTTSample, Flow: f, SRTTMicros: 1500})
	a.OnEvent(etw.Event{Kind: etw.RTTSample, Flow: f, SRTTMicros: 2000})
	if len(triggered) != 1 {
		t.Fatalf("triggered %d times for one slow flow in one epoch", len(triggered))
	}
	if a.SlowFlows() != 1 {
		t.Fatalf("SlowFlows = %d", a.SlowFlows())
	}
	a.NewEpoch()
	if a.SlowFlows() != 0 {
		t.Fatal("slow-flow set survived the epoch roll")
	}
	a.OnEvent(etw.Event{Kind: etw.RTTSample, Flow: f, SRTTMicros: 1500})
	if len(triggered) != 2 {
		t.Fatal("slow flow did not re-trigger after the epoch roll")
	}
}

// A retransmission and a slow-RTT sample on the same flow in the same
// epoch share the one trigger budget — path discovery runs once.
func TestRetxAndRTTShareTriggerBudget(t *testing.T) {
	n := 0
	a := New(func(ecmp.FiveTuple) { n++ })
	a.RTTThresholdMicros = 1000
	f := flow(3001)
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f})
	a.OnEvent(etw.Event{Kind: etw.RTTSample, Flow: f, SRTTMicros: 5000})
	if n != 1 {
		t.Fatalf("triggered %d times, want 1", n)
	}
}

// A nil trigger function is legal: the agent still counts.
func TestNilTrigger(t *testing.T) {
	a := New(nil)
	f := flow(3002)
	a.OnEvent(etw.Event{Kind: etw.Retransmit, Flow: f}) // must not panic
	if a.Retx(f) != 1 {
		t.Fatalf("Retx = %d", a.Retx(f))
	}
}

// Retx on an unknown flow is zero, not a panic.
func TestRetxUnknownFlow(t *testing.T) {
	a := New(nil)
	if got := a.Retx(flow(9999)); got != 0 {
		t.Fatalf("Retx(unknown) = %d", got)
	}
}

// Per-host isolation under concurrency: each host's agent on its own bus,
// every host driven from its own goroutine — the deployment shape of the
// emulation, where agents share nothing. The race job runs this under
// -race; any accidental cross-agent state shows up as a data race or a
// wrong count.
func TestAgentsConcurrentPerHost(t *testing.T) {
	const hosts, events = 8, 500
	type hostState struct {
		bus       etw.Bus
		agent     *Agent
		triggered int
	}
	states := make([]hostState, hosts)
	done := make(chan int, hosts)
	for h := range states {
		h := h
		st := &states[h]
		st.agent = New(func(ecmp.FiveTuple) { st.triggered++ })
		st.agent.Attach(&st.bus)
		go func() {
			for i := 0; i < events; i++ {
				st.bus.Publish(etw.Event{Kind: etw.Retransmit, Flow: flow(uint16(1000 + i%5))})
			}
			st.agent.NewEpoch()
			st.bus.Publish(etw.Event{Kind: etw.Retransmit, Flow: flow(1000)})
			done <- h
		}()
	}
	for range states {
		<-done
	}
	for h := range states {
		// 5 distinct flows trigger once each, plus one re-trigger after the
		// epoch roll.
		if got := states[h].triggered; got != 6 {
			t.Fatalf("host %d triggered %d times, want 6", h, got)
		}
	}
}

// Attaching and detaching agents while another goroutine publishes must be
// race-free on a shared bus (the publisher alone drives every attached
// agent's handler, matching the bus's delivery contract).
func TestAttachDetachDuringPublish(t *testing.T) {
	var bus etw.Bus
	permanent := New(nil)
	permanent.Attach(&bus)
	const events = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < events; i++ {
			bus.Publish(etw.Event{Kind: etw.Retransmit, Flow: flow(uint16(i))})
		}
	}()
	for i := 0; i < 50; i++ {
		detach := New(nil).Attach(&bus)
		detach()
	}
	<-done
	if got := permanent.FlowsWithRetx(); got != events {
		t.Fatalf("permanent agent saw %d flows, want %d", got, events)
	}
}
